// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, plus the ablations called out in DESIGN.md §5. Each BenchmarkFigN
// / BenchmarkTableN exercises the measured computation of the corresponding
// table or figure at a benchmark-friendly size; the full-scale sweeps
// (exact published sizes and thread counts) live in cmd/experiments.
//
//	go test -bench=. -benchmem
package repro

import (
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/binned"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/exact"
	"repro/internal/floatsum"
	"repro/internal/hallberg"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/phi"
	"repro/internal/rblas"
	"repro/internal/rng"
	"repro/internal/scan"
	"repro/internal/stats"
)

// ---- Figure 1 / Figure 2: accuracy workload (zero-sum random orders) ----

func zeroSumSet(n int) []float64 {
	return rng.ZeroSum(rng.New(1), n, 0.001)
}

// BenchmarkFig1_Double measures the plain float64 pass over one Figure 1
// trial (n = 1024).
func BenchmarkFig1_Double(b *testing.B) {
	xs := zeroSumSet(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = floatsum.Naive(xs)
	}
}

// BenchmarkFig1_HP192 measures the HP(N=3,k=2) pass over one Figure 1
// trial, the configuration that achieves exact zero in the paper.
func BenchmarkFig1_HP192(b *testing.B) {
	xs := zeroSumSet(1024)
	acc := core.NewAccumulator(core.Params192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc.Reset()
		acc.AddAll(xs)
	}
	if acc.Err() != nil {
		b.Fatal(acc.Err())
	}
}

// BenchmarkFig2_HistogramTrial measures one Figure 2 trial: shuffle, sum,
// and bin the residual.
func BenchmarkFig2_HistogramTrial(b *testing.B) {
	set := zeroSumSet(1024)
	r := rng.New(2)
	h := stats.NewHistogram(-1e-16, 1e-16, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		xs := rng.Reorder(r, set)
		h.Add(floatsum.Naive(xs))
	}
}

// ---- Table 1 / Table 2: parameter computation ----

func BenchmarkTable1_Params(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, p := range []core.Params{core.Params128, core.Params192,
			core.Params384, core.Params512} {
			sink += p.MaxRange() + p.Smallest()
		}
	}
	_ = sink
}

func BenchmarkTable2_ParamsFor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, budget := range []int64{2048, 1 << 20, 64 << 20} {
			if _, err := hallberg.ParamsFor(512, budget); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- Figure 4: HP(8,4) vs Hallberg on wide-range values ----

func wideRangeSet(n int) []float64 {
	return rng.WideRangeQuantized(rng.New(3), n, -223, 191, -256)
}

// BenchmarkFig4_HP512 measures HP(N=8,k=4) accumulation per value.
func BenchmarkFig4_HP512(b *testing.B) {
	xs := wideRangeSet(1 << 16)
	acc := core.NewAccumulator(core.Params512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Reset()
		acc.AddAll(xs)
	}
	if acc.Err() != nil {
		b.Fatal(acc.Err())
	}
}

// BenchmarkFig4_Hallberg measures the Hallberg method at each Table 2
// parameterization over the same values.
func BenchmarkFig4_Hallberg(b *testing.B) {
	xs := wideRangeSet(1 << 16)
	for _, p := range []hallberg.Params{
		hallberg.New(10, 52), hallberg.New(12, 43), hallberg.New(14, 37),
	} {
		b.Run(p.String(), func(b *testing.B) {
			acc := hallberg.NewAccumulator(p)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc.Reset()
				acc.AddAll(xs)
			}
			if acc.Err() != nil && acc.Err() != hallberg.ErrTooManySummands {
				b.Fatal(acc.Err())
			}
		})
	}
}

// ---- Figure 5: OpenMP-substrate strong scaling ----

func uniformSet(n int) []float64 {
	return rng.UniformSet(rng.New(4), n, -0.5, 0.5)
}

func BenchmarkFig5_OMP(b *testing.B) {
	xs := uniformSet(1 << 18)
	for _, threads := range []int{1, 2, 4, 8} {
		team := omp.NewTeam(threads)
		b.Run(bname("double", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = *omp.Reduce(team, len(xs),
					func(int) *float64 { v := 0.0; return &v },
					func(local *float64, _, lo, hi int) {
						s := 0.0
						for _, x := range xs[lo:hi] {
							s += x
						}
						*local += s
					},
					func(into, from *float64) { *into += *from })
			}
		})
		b.Run(bname("hp384", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := omp.Reduce(team, len(xs),
					func(int) *core.Accumulator { return core.NewAccumulator(core.Params384) },
					func(local *core.Accumulator, _, lo, hi int) { local.AddAll(xs[lo:hi]) },
					func(into, from *core.Accumulator) { into.Merge(from) })
				if total.Err() != nil {
					b.Fatal(total.Err())
				}
			}
		})
		b.Run(bname("hallberg", threads), func(b *testing.B) {
			p := hallberg.New(10, 38)
			for i := 0; i < b.N; i++ {
				total := omp.Reduce(team, len(xs),
					func(int) *hallberg.Accumulator { return hallberg.NewAccumulator(p) },
					func(local *hallberg.Accumulator, _, lo, hi int) { local.AddAll(xs[lo:hi]) },
					func(into, from *hallberg.Accumulator) { into.AddNum(from.Sum(), from.Count()) })
				if total.Err() != nil {
					b.Fatal(total.Err())
				}
			}
		})
	}
}

// ---- Figure 6: MPI-substrate reduction ----

func BenchmarkFig6_MPIReduceHP(b *testing.B) {
	xs := uniformSet(1 << 16)
	p := core.Params384
	for _, size := range []int{1, 4, 16} {
		op := mpi.OpSumHP(p)
		b.Run(bname("ranks", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mpi.Run(size, func(c *mpi.Comm) error {
					lo := c.Rank() * len(xs) / size
					hi := (c.Rank() + 1) * len(xs) / size
					acc := core.NewAccumulator(p)
					acc.AddAll(xs[lo:hi])
					if acc.Err() != nil {
						return acc.Err()
					}
					_, err := c.Reduce(0, mpi.EncodeHP(acc.Sum()), op)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 7: CUDA-substrate atomic accumulation ----

func BenchmarkFig7_CUDAAtomics(b *testing.B) {
	xs := uniformSet(1 << 16)
	device := cuda.TeslaK20m()
	cfg := cuda.Config{Blocks: 4, ThreadsPerBlock: 256}
	const partials = 256
	b.Run("double_cas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ps := make([]cuda.AtomicFloat64, partials)
			err := device.Launch(cfg, func(tc cuda.ThreadCtx) {
				total := tc.Cfg.Threads()
				dst := &ps[tc.Global%partials]
				for j := tc.Global; j < len(xs); j += total {
					dst.Add(xs[j])
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hp384_cas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ps := make([]*core.Atomic, partials)
			for j := range ps {
				ps[j] = core.NewAtomic(core.Params384)
			}
			err := device.Launch(cfg, func(tc cuda.ThreadCtx) {
				scratch := core.New(core.Params384)
				total := tc.Cfg.Threads()
				dst := ps[tc.Global%partials]
				for j := tc.Global; j < len(xs); j += total {
					if err := scratch.SetFloat64(xs[j]); err != nil {
						panic(err)
					}
					dst.AddHPCAS(scratch)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hallberg_cas", func(b *testing.B) {
		p := hallberg.New(10, 38)
		for i := 0; i < b.N; i++ {
			ps := make([]*hallberg.Atomic, partials)
			for j := range ps {
				ps[j] = hallberg.NewAtomic(p)
			}
			err := device.Launch(cfg, func(tc cuda.ThreadCtx) {
				scratch := hallberg.NewNum(p)
				total := tc.Cfg.Threads()
				dst := ps[tc.Global%partials]
				for j := tc.Global; j < len(xs); j += total {
					if err := scratch.SetFloat64(xs[j]); err != nil {
						panic(err)
					}
					dst.AddNumCAS(scratch)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Figure 8: Xeon Phi offload ----

func BenchmarkFig8_PhiOffloadHP(b *testing.B) {
	xs := uniformSet(1 << 16)
	device := &phi.Device{Name: "bench", MaxThreads: 240} // no modeled wire time in benches
	for _, threads := range []int{1, 8, 64, 240} {
		b.Run(bname("threads", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buf := device.OffloadIn(xs)
				partials := make([]*core.Accumulator, threads)
				used, err := device.Run(threads, buf.Len(), func(tid, lo, hi int) {
					acc := core.NewAccumulator(core.Params384)
					acc.AddAll(buf.Data()[lo:hi])
					partials[tid] = acc
				})
				if err != nil {
					b.Fatal(err)
				}
				final := core.NewAccumulator(core.Params384)
				for _, p := range partials[:used] {
					final.Merge(p)
				}
				if final.Err() != nil {
					b.Fatal(final.Err())
				}
			}
		})
	}
}

// ---- Analytic model (eqs. 3-6) ----

func BenchmarkModel_SpeedupBounds(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += hallberg.PredictedSpeedup(1, 511, 43) +
			hallberg.SpeedupBoundEq5(1, 511, 43) +
			hallberg.SpeedupLowerBound(1, 43)
	}
	_ = sink
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationConvert compares the exact bit-decomposition conversion
// against the paper's Listing 1 float loop.
func BenchmarkAblationConvert(b *testing.B) {
	xs := wideRangeSet(4096)
	z := core.New(core.Params512)
	b.Run("bit_decompose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range xs {
				if err := z.SetFloat64(x); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("listing1_float_loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range xs {
				if err := z.SetFloat64Listing1(x); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationAdd compares the math/bits.Add64 carry chain against the
// paper's Listing 2 comparison-based carries.
func BenchmarkAblationAdd(b *testing.B) {
	xs := wideRangeSet(4096)
	vals := make([]*core.HP, len(xs))
	for i, x := range xs {
		v, err := core.FromFloat64(core.Params512, x)
		if err != nil {
			b.Fatal(err)
		}
		vals[i] = v
	}
	acc := core.New(core.Params512)
	b.Run("bits_add64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range vals {
				acc.Add(v)
			}
		}
	})
	b.Run("listing2_compare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range vals {
				acc.AddListing2(v)
			}
		}
	})
}

// BenchmarkAblationAtomic compares the fetch-add atomic adder against the
// paper's CAS-loop construction under contention.
func BenchmarkAblationAtomic(b *testing.B) {
	xs := uniformSet(1 << 12)
	team := omp.NewTeam(8)
	for _, flavor := range []struct {
		name string
		add  func(a *core.Atomic, x *core.HP)
	}{
		{"fetch_add", func(a *core.Atomic, x *core.HP) { a.AddHP(x) }},
		{"cas_loop", func(a *core.Atomic, x *core.HP) { a.AddHPCAS(x) }},
	} {
		b.Run(flavor.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				acc := core.NewAtomic(core.Params384)
				team.Run(func(tid int) {
					scratch := core.New(core.Params384)
					lo, hi := omp.StaticBlock(len(xs), team.Threads(), tid)
					for _, x := range xs[lo:hi] {
						if err := scratch.SetFloat64(x); err != nil {
							panic(err)
						}
						flavor.add(acc, scratch)
					}
				})
			}
		})
	}
}

// BenchmarkAblationToFloat compares the correctly rounded HP-to-double
// conversion against the paper's multiply-accumulate inverse of Listing 1.
func BenchmarkAblationToFloat(b *testing.B) {
	xs := wideRangeSet(512)
	vals := make([]*core.HP, len(xs))
	for i, x := range xs {
		v, err := core.FromFloat64(core.Params512, x)
		if err != nil {
			b.Fatal(err)
		}
		vals[i] = v
	}
	var sink float64
	b.Run("correctly_rounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range vals {
				sink += v.Float64()
			}
		}
	})
	b.Run("listing1_inverse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range vals {
				sink += v.Float64Listing1Inverse()
			}
		}
	})
	_ = sink
}

// BenchmarkAblationOracle prices the exact big.Int oracle against HP,
// quantifying what the fixed-size limb representation buys.
func BenchmarkAblationOracle(b *testing.B) {
	xs := uniformSet(1 << 12)
	b.Run("hp384", func(b *testing.B) {
		acc := core.NewAccumulator(core.Params384)
		for i := 0; i < b.N; i++ {
			acc.Reset()
			acc.AddAll(xs)
		}
	})
	b.Run("bigint_oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := exact.New()
			a.AddAll(xs)
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := core.NewAdaptive(core.Params384)
			if err := a.AddAll(xs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFixed384 compares the general slice-based HP(6,3)
// accumulator against the array-based, fully unrolled specialization.
func BenchmarkAblationFixed384(b *testing.B) {
	xs := uniformSet(1 << 14)
	b.Run("general_slice", func(b *testing.B) {
		acc := core.NewAccumulator(core.Params384)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc.Reset()
			acc.AddAll(xs)
		}
		if acc.Err() != nil {
			b.Fatal(acc.Err())
		}
	})
	b.Run("fixed_unrolled", func(b *testing.B) {
		acc := core.NewAccum384()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc.Reset()
			acc.AddAll(xs)
		}
		if acc.Err() != nil {
			b.Fatal(acc.Err())
		}
	})
}

// BenchmarkAblationKernelShape compares the paper's Figure 7 kernel
// (per-element atomics into 256 shared partials) against the classic
// shared-memory block-tree reduction with one atomic per block.
func BenchmarkAblationKernelShape(b *testing.B) {
	xs := uniformSet(1 << 16)
	device := cuda.TeslaK20m()
	cfg := cuda.Config{Blocks: 8, ThreadsPerBlock: 64}
	p := core.Params384
	b.Run("global_atomics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partials := make([]*core.Atomic, 256)
			for j := range partials {
				partials[j] = core.NewAtomic(p)
			}
			err := device.Launch(cfg, func(tc cuda.ThreadCtx) {
				scratch := core.New(p)
				total := tc.Cfg.Threads()
				dst := partials[tc.Global%256]
				for j := tc.Global; j < len(xs); j += total {
					if err := scratch.SetFloat64(xs[j]); err != nil {
						panic(err)
					}
					dst.AddHPCAS(scratch)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("block_tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			global := core.NewAtomic(p)
			shared := make([][]*core.Accumulator, cfg.Blocks)
			for blk := range shared {
				shared[blk] = make([]*core.Accumulator, cfg.ThreadsPerBlock)
				for t := range shared[blk] {
					shared[blk][t] = core.NewAccumulator(p)
				}
			}
			err := device.LaunchSync(cfg, func(tc cuda.ThreadCtx, sync func()) {
				mine := shared[tc.Block][tc.Thread]
				total := tc.Cfg.Threads()
				for j := tc.Global; j < len(xs); j += total {
					mine.Add(xs[j])
				}
				sync()
				for stride := tc.Cfg.ThreadsPerBlock / 2; stride > 0; stride /= 2 {
					if tc.Thread < stride {
						shared[tc.Block][tc.Thread].Merge(shared[tc.Block][tc.Thread+stride])
					}
					sync()
				}
				if tc.Thread == 0 {
					global.AddHP(shared[tc.Block][0].Sum())
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFamilies compares the per-add cost of the three
// order-invariant summation families at ~comparable guarantees.
func BenchmarkAblationFamilies(b *testing.B) {
	xs := uniformSet(1 << 14)
	b.Run("hp384", func(b *testing.B) {
		acc := core.NewAccumulator(core.Params384)
		for i := 0; i < b.N; i++ {
			acc.Reset()
			acc.AddAll(xs)
		}
	})
	b.Run("hallberg_10_38", func(b *testing.B) {
		acc := hallberg.NewAccumulator(hallberg.New(10, 38))
		for i := 0; i < b.N; i++ {
			acc.Reset()
			acc.AddAll(xs)
		}
	})
	b.Run("binned_w36", func(b *testing.B) {
		acc := binned.New(36)
		for i := 0; i < b.N; i++ {
			acc.Reset()
			acc.AddAll(xs)
		}
	})
}

// BenchmarkAblationPadding compares the cache-line padded AtomicArray bank
// against tightly packed per-limb atomics under cross-slot contention
// (false sharing). On a multi-core host the padded layout wins; on one
// core the difference collapses, which is itself informative.
func BenchmarkAblationPadding(b *testing.B) {
	p := core.Params384
	const slots = 4
	const workers = 8
	xs := uniformSet(1 << 12)
	team := omp.NewTeam(workers)
	b.Run("padded_bank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bank := core.NewAtomicArray(p, slots)
			team.Run(func(tid int) {
				scratch := core.New(p)
				lo, hi := omp.StaticBlock(len(xs), workers, tid)
				for j := lo; j < hi; j++ {
					if err := scratch.SetFloat64(xs[j]); err != nil {
						panic(err)
					}
					bank.AddHP(tid%slots, scratch)
				}
			})
		}
	})
	b.Run("tight_slots", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Unpadded: slot limbs packed back to back in one array.
			tight := make([]atomic.Uint64, slots*p.N)
			team.Run(func(tid int) {
				scratch := core.New(p)
				slot := tight[(tid%slots)*p.N : (tid%slots)*p.N+p.N]
				lo, hi := omp.StaticBlock(len(xs), workers, tid)
				for j := lo; j < hi; j++ {
					if err := scratch.SetFloat64(xs[j]); err != nil {
						panic(err)
					}
					limbs := scratch.Limbs()
					var carry uint64
					for k := p.N - 1; k >= 0; k-- {
						delta := limbs[k] + carry
						carry = 0
						if delta < limbs[k] {
							carry = 1
						}
						if delta == 0 {
							continue
						}
						next := slot[k].Add(delta)
						if next < delta {
							carry++
						}
					}
				}
			})
		}
	})
}

// BenchmarkAblationTopology compares the tree Allreduce (Reduce+Bcast)
// against recursive doubling on the MPI substrate — both bit-identical for
// the HP op, differing only in rounds and message volume.
func BenchmarkAblationTopology(b *testing.B) {
	p := core.Params384
	local, err := core.FromFloat64(p, 1.25)
	if err != nil {
		b.Fatal(err)
	}
	payload := mpi.EncodeHP(local)
	for _, size := range []int{8, 16, 32} {
		op := mpi.OpSumHP(p)
		b.Run(bname("tree", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mpi.Run(size, func(c *mpi.Comm) error {
					_, err := c.Allreduce(payload, op)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(bname("recursive_doubling", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mpi.Run(size, func(c *mpi.Comm) error {
					_, err := c.AllreduceRD(payload, op)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScan prices the reproducible prefix sum against a naive float64
// scan.
func BenchmarkScan(b *testing.B) {
	xs := uniformSet(1 << 14)
	b.Run("float64_naive", func(b *testing.B) {
		out := make([]float64, len(xs))
		for i := 0; i < b.N; i++ {
			s := 0.0
			for j, x := range xs {
				s += x
				out[j] = s
			}
		}
	})
	b.Run("hp_exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scan.Inclusive(core.Params384, xs, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRBLAS prices the reproducible BLAS-1 layer.
func BenchmarkRBLAS(b *testing.B) {
	xs := uniformSet(1 << 14)
	ys := uniformSet(1 << 14)
	cfg := rblas.Default()
	b.Run("Sum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rblas.Sum(cfg, xs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Dot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rblas.Dot(cfg, xs, ys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Nrm2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rblas.Nrm2(cfg, xs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDotProduct prices the exact dot product against the plain
// float64 inner loop.
func BenchmarkDotProduct(b *testing.B) {
	n := 1 << 14
	xs := uniformSet(n)
	ys := uniformSet(n)
	b.Run("float64", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			s := 0.0
			for j := range xs {
				s += xs[j] * ys[j]
			}
			sink += s
		}
		_ = sink
	})
	b.Run("exact_hp512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Dot(core.Params512, xs, ys); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFacadeParallelSum exercises the public entry point end to end.
func BenchmarkFacadeParallelSum(b *testing.B) {
	xs := uniformSet(1 << 16)
	for _, workers := range []int{1, 4} {
		b.Run(bname("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ParallelSum(Params384, xs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func bname(prefix string, n int) string {
	return prefix + "_" + strconv.Itoa(n)
}
