package repro

import (
	"repro/internal/core"
	"repro/internal/rblas"
	"repro/internal/scan"
)

// Reproducible BLAS-1-style reductions: results are internally exact and
// bit-identical for every worker count. workers <= 1 runs sequentially.
// See internal/rblas for the semantics of each operation.

func blasCfg(p Params, workers int) rblas.Config {
	return rblas.Config{Params: p, Workers: workers}
}

// ASum returns the reproducible sum of absolute values (BLAS dasum).
func ASum(p Params, xs []float64, workers int) (float64, error) {
	return rblas.ASum(blasCfg(p, workers), xs)
}

// Nrm2 returns the reproducible Euclidean norm: the sum of squares is
// exact; one deterministic high-precision square root follows.
func Nrm2(p Params, xs []float64, workers int) (float64, error) {
	return rblas.Nrm2(blasCfg(p, workers), xs)
}

// Mean returns the reproducible arithmetic mean (exact sum, one rounding).
func Mean(p Params, xs []float64, workers int) (float64, error) {
	return rblas.Mean(blasCfg(p, workers), xs)
}

// Variance returns the reproducible unbiased sample variance, evaluated
// exactly so the textbook formula cannot cancel catastrophically.
func Variance(p Params, xs []float64, workers int) (float64, error) {
	return rblas.Variance(blasCfg(p, workers), xs)
}

// DotParallel is Dot with a multi-worker reduction (bit-identical to the
// sequential result for every worker count).
func DotParallel(p Params, xs, ys []float64, workers int) (float64, error) {
	return rblas.Dot(blasCfg(p, workers), xs, ys)
}

// PrefixSum returns the reproducible inclusive prefix sums of xs: each
// out[i] is the correctly rounded exact sum of xs[0..i], bit-identical for
// every worker count.
func PrefixSum(p Params, xs []float64, workers int) ([]float64, error) {
	return scan.Inclusive(p, xs, workers)
}

// PrefixSumExclusive is PrefixSum with out[0] = 0 and a one-slot shift.
func PrefixSumExclusive(p Params, xs []float64, workers int) ([]float64, error) {
	return scan.Exclusive(p, xs, workers)
}

// AccumulatorMerge is re-exported for building custom parallel reductions:
// into.Merge(from) folds a partial accumulator and its sticky error.
var _ = (*core.Accumulator).Merge
