// Command benchsum is the reproducible summation benchmark runner behind
// BENCH_sum.json. It times one pass over a fixed pseudorandom workload
// through each HP summation path — the pre-PR Listing 1+2 loop, the fused
// sparse kernel, the carry-save batch kernel, the exponent-indexed
// superaccumulator (plus its forced-spill stress), the omp reduction, the
// atomic XADD/CAS/bulk-flush accumulators, the two-phase scan, and the
// gossip-convergence cluster sweep (nodes x fanout, frames/sec plus
// rounds-to-convergence) — and writes a schema-tagged JSON report with throughput, speedup over the
// legacy baseline, heap-allocation rates, and the machine's measured
// memory-bandwidth ceiling. Parallel workloads are swept over worker counts
// 1/2/4/NumCPU; every configuration must produce the same checksum
// bit-for-bit.
//
//	benchsum -count 1048576 -trials 5 -out BENCH_sum.json
//	benchsum -validate BENCH_sum.json
//	benchsum -against BENCH_sum.json   # regression gate for CI
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/gossip"
	"repro/internal/omp"
	"repro/internal/rng"
	"repro/internal/scan"
	"repro/internal/server"
	"repro/internal/trace"
)

type config struct {
	params core.Params
	count  int
	trials int
	// sweep is the worker counts the parallel workloads run at.
	sweep []int
	seed  uint64
	// replicas is the server-loopback replication factor (1 = unreplicated,
	// matching committed reports).
	replicas int
}

// guardedWorkloads are the paths the -against regression gate holds to
// within maxSpeedupDrop of the committed report's speedup. super-spill is
// guarded alongside the hot loops: the spill fold is the fixed cost every
// superaccumulator pays, and a regression there hides inside serial-super's
// amortization until the spill cadence changes.
var guardedWorkloads = []string{"serial-fused", "serial-batch", "serial-super", "super-spill"}

const maxSpeedupDrop = 0.25

func main() {
	var (
		hpn      = flag.Int("n", 6, "HP total limbs N")
		hpk      = flag.Int("k", 3, "HP fractional limbs k")
		count    = flag.Int("count", 1<<20, "summands per trial")
		trials   = flag.Int("trials", 5, "timed repetitions (median reported)")
		workers  = flag.Int("workers", runtime.NumCPU(), "max threads for the parallel workload sweep")
		seed     = flag.Uint64("seed", 20160523, "workload PRNG seed")
		replicas = flag.Int("replicas", 1, "server-loopback replication factor (k-of-n certification overhead; keep 1 for committed reports)")
		out      = flag.String("out", "BENCH_sum.json", "report output path")
		validate = flag.String("validate", "", "validate an existing report and exit")
		against  = flag.String("against", "", "committed report to gate against: fail on checksum drift or >25% speedup drop")

		noasm       = flag.Bool("noasm", false, "disable the assembly kernels and AVX2 front loop (generic Go lanes only; equivalent to REPRO_NOASM=1)")
		traceOn     = flag.Bool("trace", false, "record spans while benchmarking (perturbs timings; off for committed reports)")
		traceSample = flag.Uint64("trace-sample", 1, "record 1 in every N traces (1 = all)")
		flightDump  = flag.String("flight-dump", "", "write flight-recorder JSON here on SIGQUIT or overflow trip")
	)
	flag.Parse()
	if *noasm {
		core.SetAsmEnabled(false)
	}
	if *traceOn {
		trace.SetEnabled(true)
		trace.SetSampling(*traceSample)
	}
	stopFlight := trace.StartFlightDump(*flightDump)
	defer stopFlight()
	outSet := false
	flag.Visit(func(f *flag.Flag) { outSet = outSet || f.Name == "out" })

	if *validate != "" {
		r, err := bench.ReadReport(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: schema %s ok, %d workloads, count=%d\n",
			*validate, r.Schema, len(r.Workloads), r.Count)
		return
	}

	cfg := config{
		params:   core.Params{N: *hpn, K: *hpk},
		count:    *count,
		trials:   *trials,
		sweep:    workerSweep(*workers),
		seed:     *seed,
		replicas: *replicas,
	}
	report, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
		os.Exit(1)
	}
	if *against != "" {
		committed, err := bench.ReadReport(*against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
			os.Exit(1)
		}
		printTable(report)
		if err := bench.CompareReports(report, committed, guardedWorkloads, maxSpeedupDrop); err != nil {
			fmt.Fprintf(os.Stderr, "benchsum: regression vs %s: %v\n", *against, err)
			os.Exit(1)
		}
		fmt.Printf("no regression vs %s (checksums bit-identical, guarded speedups within %.0f%%)\n",
			*against, maxSpeedupDrop*100)
		// Gate mode is read-only: don't clobber the baseline it just read
		// unless an output path was asked for explicitly.
		if !outSet {
			return
		}
	}
	if err := report.WriteJSON(*out); err != nil {
		fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
		os.Exit(1)
	}
	if *against == "" {
		printTable(report)
	}
	fmt.Printf("wrote %s\n", *out)
}

// workerSweep returns the parallel workloads' worker counts: 1, 2, 4, and
// the requested maximum (normally NumCPU), deduplicated. Counts above the
// CPU count are kept — oversubscribed teams still demonstrate that the
// checksum is invariant in the worker count, which is the sweep's point.
func workerSweep(max int) []int {
	if max < 1 {
		max = 1
	}
	sweep := []int{1, 2, 4}
	if !slices.Contains(sweep, max) {
		sweep = append(sweep, max)
	}
	slices.Sort(sweep)
	return sweep
}

// workload is one measured code path: fn sums xs once and returns the
// rounded result.
type workload struct {
	name    string
	workers int
	exact   bool // checksum must match the other exact paths bit-for-bit
	frames  int  // wire frames per pass, for service workloads (0 otherwise)
	fn      func(xs []float64) (float64, error)
}

// baselineName is the pre-fused-kernel reference path every speedup is
// relative to: the paper's Listing 1 conversion into a scratch HP followed
// by the Listing 2 full-width add, per element.
const baselineName = "serial-legacy"

func workloads(cfg config) []workload {
	p := cfg.params
	ws := []workload{
		{baselineName, 1, true, 0, func(xs []float64) (float64, error) {
			sum := core.New(p)
			scratch := core.New(p)
			for _, x := range xs {
				if err := scratch.SetFloat64Listing1(x); err != nil {
					return 0, err
				}
				if sum.AddListing2(scratch) {
					return 0, fmt.Errorf("overflow")
				}
			}
			return sum.Float64(), nil
		}},
		{"serial-fused", 1, true, 0, func(xs []float64) (float64, error) {
			acc := core.NewAccumulator(p)
			acc.AddAll(xs)
			return acc.Float64(), acc.Err()
		}},
		{"serial-batch", 1, true, 0, func(xs []float64) (float64, error) {
			b := core.NewBatch(p)
			b.AddSlice(xs)
			return b.Float64(), b.Err()
		}},
		{"serial-super", 1, true, 0, func(xs []float64) (float64, error) {
			s := core.NewSuper(p)
			s.AddSlice(xs)
			return s.Float64(), s.Err()
		}},
		// Forced-spill stress: feed the superaccumulator in 64-value slices
		// with an explicit Spill after each, so the bin fold runs ~16x more
		// often than the counted bound requires. The gap between this and
		// serial-super is the amortized spill overhead; the checksum is
		// bit-identical regardless (spill placement is invariant).
		{"super-spill", 1, true, 0, func(xs []float64) (float64, error) {
			s := core.NewSuper(p)
			for len(xs) > 0 {
				n := min(64, len(xs))
				s.AddSlice(xs[:n])
				s.Spill()
				xs = xs[n:]
			}
			return s.Float64(), s.Err()
		}},
	}
	for _, workers := range cfg.sweep {
		workers := workers
		ws = append(ws,
			workload{"omp-reduce", workers, true, 0, func(xs []float64) (float64, error) {
				team := omp.NewTeam(workers)
				total := omp.Reduce(team, len(xs),
					func(int) *core.SuperAccumulator { return core.NewSuper(p) },
					func(local *core.SuperAccumulator, _, lo, hi int) {
						local.AddSlice(xs[lo:hi])
					},
					func(into, from *core.SuperAccumulator) { into.MergeChecked(from) })
				return total.Float64(), total.Err()
			}},
			workload{"atomic-xadd", workers, true, 0, func(xs []float64) (float64, error) {
				dst := core.NewAtomic(p)
				errs := make([]error, workers)
				omp.NewTeam(workers).For(len(xs), func(tid, lo, hi int) {
					for i := lo; i < hi; i++ {
						if err := dst.AddFloat64(xs[i]); err != nil {
							errs[tid] = err
							return
						}
					}
				})
				for _, err := range errs {
					if err != nil {
						return 0, err
					}
				}
				return dst.Snapshot().Float64(), nil
			}},
			workload{"atomic-cas", workers, true, 0, func(xs []float64) (float64, error) {
				dst := core.NewAtomic(p)
				errs := make([]error, workers)
				omp.NewTeam(workers).For(len(xs), func(tid, lo, hi int) {
					for i := lo; i < hi; i++ {
						if err := dst.AddFloat64CAS(xs[i]); err != nil {
							errs[tid] = err
							return
						}
					}
				})
				for _, err := range errs {
					if err != nil {
						return 0, err
					}
				}
				return dst.Snapshot().Float64(), nil
			}},
			// Bulk flush: each thread folds its block through a local batch
			// and lands it in the shared accumulator with one full-width
			// atomic pass — the AtomicArray.AddSlice path.
			workload{"atomic-batch", workers, true, 0, func(xs []float64) (float64, error) {
				bank := core.NewAtomicArray(p, workers)
				errs := make([]error, workers)
				omp.NewTeam(workers).For(len(xs), func(tid, lo, hi int) {
					errs[tid] = bank.AddSlice(tid, xs[lo:hi], nil)
				})
				for _, err := range errs {
					if err != nil {
						return 0, err
					}
				}
				total, err := bank.Combine()
				if err != nil {
					return 0, err
				}
				return total.Float64(), nil
			}},
			// The scan emits n rounded prefixes, not one sum; its checksum is
			// the final prefix, which equals the reduction result exactly.
			workload{"scan-inclusive", workers, true, 0, func(xs []float64) (float64, error) {
				out, err := scan.Inclusive(p, xs, workers)
				if err != nil {
					return 0, err
				}
				return out[len(out)-1], nil
			}},
		)
	}
	ws = append(ws, serverLoopback(cfg))
	return ws
}

// serverLoopback measures the full network service path: an in-process
// hpsumd handler on a real loopback TCP listener, fed by concurrent clients
// streaming CRC-framed binary batches. It is an exact workload — the
// service merge is bit-identical to the serial paths — so its checksum
// rides the same cross-path identity check, and it is the only workload
// reporting frames/sec.
func serverLoopback(cfg config) workload {
	p := cfg.params
	clients := cfg.sweep[len(cfg.sweep)-1]
	const frameLen = 4096
	frames := 0
	for i := 0; i < clients; i++ {
		sz := cfg.count / clients
		if i < cfg.count%clients {
			sz++
		}
		frames += (sz + frameLen - 1) / frameLen
	}
	return workload{"server-loopback", clients, true, frames, func(xs []float64) (float64, error) {
		s := server.New(server.Config{Params: p, Replicas: cfg.replicas})
		defer s.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		base := "http://" + ln.Addr().String()

		c := &server.Client{Base: base, FrameLen: frameLen}
		if _, err := c.Create("bench", core.Params{}); err != nil {
			return 0, err
		}
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for i := 0; i < clients; i++ {
			lo := i * len(xs) / clients
			hi := (i + 1) * len(xs) / clients
			wg.Add(1)
			go func(i int, part []float64) {
				defer wg.Done()
				cl := &server.Client{Base: base, FrameLen: frameLen}
				_, errs[i] = cl.Stream("bench", part)
			}(i, xs[lo:hi])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		info, err := c.Get("bench")
		if err != nil {
			return 0, err
		}
		if info.Err != "" {
			return 0, fmt.Errorf("server-loopback: sticky error %s", info.Err)
		}
		return info.Sum, nil
	}}
}

// gossipWorkload is a workload whose wire traffic is data-dependent: the
// gossip frame count and the rounds a cluster needs to converge vary with
// goroutine scheduling, so instead of the static frames field it carries a
// stats hook reporting the last pass's measured numbers.
type gossipWorkload struct {
	workload
	stats func() (frames, rounds float64)
}

// gossipWorkloads is the nodes x fanout convergence sweep: each pass
// stands up an in-process gossip cluster, partitions the summands across
// the member nodes, and spins until every node's cluster read agrees
// bit-for-bit. The merged sum rides the exact-path identity check like
// every other exact workload.
func gossipWorkloads(cfg config) []gossipWorkload {
	var ws []gossipWorkload
	for _, nodes := range []int{3, 5} {
		for _, fanout := range []int{1, 2} {
			ws = append(ws, gossipConvergence(cfg, nodes, fanout))
		}
	}
	return ws
}

// memGossipTransport delivers frames synchronously between the in-process
// nodes of one gossip-convergence pass, counting every frame.
type memGossipTransport struct {
	mu     sync.RWMutex
	nodes  map[string]*gossip.Node
	frames atomic.Int64
}

func (m *memGossipTransport) add(n *gossip.Node) {
	m.mu.Lock()
	m.nodes[n.Self().ID] = n
	m.mu.Unlock()
}

func (m *memGossipTransport) Send(dst gossip.Peer, frame []byte) error {
	m.mu.RLock()
	n := m.nodes[dst.ID]
	m.mu.RUnlock()
	if n == nil {
		return fmt.Errorf("gossip-convergence: unknown peer %s", dst.ID)
	}
	m.frames.Add(1)
	return n.Handle(frame)
}

// staticLocal serves one precomputed partial as a node's sole contribution.
type staticLocal struct{ c gossip.Contribution }

func (l staticLocal) Contributions() ([]gossip.Contribution, error) {
	return []gossip.Contribution{l.c}, nil
}

func gossipConvergence(cfg config, nodes, fanout int) gossipWorkload {
	p := cfg.params
	name := fmt.Sprintf("gossip-convergence-n%df%d", nodes, fanout)
	var lastFrames, lastRounds float64
	fn := func(xs []float64) (float64, error) {
		tr := &memGossipTransport{nodes: make(map[string]*gossip.Node, nodes)}
		peers := make([]gossip.Peer, nodes)
		for i := range peers {
			id := fmt.Sprintf("bench-%d", i)
			peers[i] = gossip.Peer{ID: id, Addr: id}
		}
		ns := make([]*gossip.Node, 0, nodes)
		defer func() {
			for _, n := range ns {
				n.Close()
			}
		}()
		for i := 0; i < nodes; i++ {
			lo := i * len(xs) / nodes
			hi := (i + 1) * len(xs) / nodes
			h, err := core.SumHP(p, xs[lo:hi])
			if err != nil {
				return 0, err
			}
			seeds := make([]gossip.Peer, 0, nodes-1)
			for j, q := range peers {
				if j != i {
					seeds = append(seeds, q)
				}
			}
			n, err := gossip.NewNode(gossip.Config{
				Self:      peers[i],
				Epoch:     1,
				Params:    p,
				Seeds:     seeds,
				Interval:  time.Millisecond,
				Fanout:    fanout,
				Local:     staticLocal{gossip.Contribution{Acc: "bench", HP: h, Adds: uint64(hi - lo), Frames: 1}},
				Transport: tr,
			})
			if err != nil {
				return 0, err
			}
			tr.add(n)
			ns = append(ns, n)
		}
		for _, n := range ns {
			n.Start()
		}

		want := uint64(len(xs))
		deadline := time.Now().Add(30 * time.Second)
		var info gossip.ClusterInfo
		for {
			converged, digest := true, ""
			for _, n := range ns {
				ci, err := n.ClusterRead("bench")
				if err != nil {
					return 0, err
				}
				if ci.Adds != want || ci.Contributors != nodes ||
					(digest != "" && ci.Digest != digest) {
					converged = false
					break
				}
				digest, info = ci.Digest, ci
			}
			if converged {
				break
			}
			if time.Now().After(deadline) {
				return 0, fmt.Errorf("%s: cluster did not converge", name)
			}
			time.Sleep(200 * time.Microsecond)
		}
		var rounds uint64
		for _, n := range ns {
			if s := n.Stats(); s.Rounds > rounds {
				rounds = s.Rounds
			}
		}
		lastFrames, lastRounds = float64(tr.frames.Load()), float64(rounds)
		return info.Sum, nil
	}
	return gossipWorkload{
		workload: workload{name, nodes, true, 0, fn},
		stats:    func() (float64, float64) { return lastFrames, lastRounds },
	}
}

func run(cfg config) (*bench.Report, error) {
	if err := cfg.params.Validate(); err != nil {
		return nil, err
	}
	if cfg.count < 1 || cfg.trials < 1 || len(cfg.sweep) == 0 {
		return nil, fmt.Errorf("count=%d trials=%d sweep=%v", cfg.count, cfg.trials, cfg.sweep)
	}
	xs := rng.UniformSet(rng.New(cfg.seed), cfg.count, -0.5, 0.5)

	report := &bench.Report{
		Schema:      bench.SumReportSchema,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CPUFeatures: cpu.Features(),
		HPLimbs:     cfg.params.N,
		HPFrac:      cfg.params.K,
		Count:       cfg.count,
		Trials:      cfg.trials,
		Baseline:    baselineName,
	}

	var wantSum float64
	haveWant := false
	for _, w := range workloads(cfg) {
		// Warm-up run doubles as the correctness and allocation probe.
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		sum, err := w.fn(xs)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, fmt.Errorf("%s workers=%d: %w", w.name, w.workers, err)
		}
		if w.exact {
			if !haveWant {
				wantSum, haveWant = sum, true
			} else if math.Float64bits(sum) != math.Float64bits(wantSum) {
				return nil, fmt.Errorf("%s workers=%d: checksum %x, want %x (paths not bit-identical)",
					w.name, w.workers, math.Float64bits(sum), math.Float64bits(wantSum))
			}
		}

		var failed error
		d := bench.MeasureMedian(cfg.trials, func() {
			if _, err := w.fn(xs); err != nil && failed == nil {
				failed = err
			}
		})
		if failed != nil {
			return nil, fmt.Errorf("%s workers=%d: %w", w.name, w.workers, failed)
		}
		wl := bench.Workload{
			Name:            w.name,
			Workers:         w.workers,
			Backend:         core.KernelBackend(cfg.params),
			SecondsPerTrial: d.Seconds(),
			AddsPerSec:      float64(cfg.count) / d.Seconds(),
			MallocsPerOp:    float64(after.Mallocs-before.Mallocs) / float64(cfg.count),
			Checksum:        sum,
		}
		if w.frames > 0 {
			wl.FramesPerSec = float64(w.frames) / d.Seconds()
		}
		report.Workloads = append(report.Workloads, wl)
	}

	// The gossip convergence sweep runs in a second pass because its wire
	// traffic is data-dependent — frames and rounds come from the stats
	// hook, not the static frames field.
	for _, g := range gossipWorkloads(cfg) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		sum, err := g.fn(xs)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.name, err)
		}
		if haveWant && math.Float64bits(sum) != math.Float64bits(wantSum) {
			return nil, fmt.Errorf("%s: checksum %x, want %x (cluster merge not bit-identical)",
				g.name, math.Float64bits(sum), math.Float64bits(wantSum))
		}

		var failed error
		d := bench.MeasureMedian(cfg.trials, func() {
			if _, err := g.fn(xs); err != nil && failed == nil {
				failed = err
			}
		})
		if failed != nil {
			return nil, fmt.Errorf("%s: %w", g.name, failed)
		}
		frames, rounds := g.stats()
		report.Workloads = append(report.Workloads, bench.Workload{
			Name:                g.name,
			Workers:             g.workers,
			Backend:             core.KernelBackend(cfg.params),
			SecondsPerTrial:     d.Seconds(),
			AddsPerSec:          float64(cfg.count) / d.Seconds(),
			MallocsPerOp:        float64(after.Mallocs-before.Mallocs) / float64(cfg.count),
			FramesPerSec:        frames / d.Seconds(),
			RoundsToConvergence: rounds,
			Checksum:            sum,
		})
	}
	if err := report.FillSpeedups(); err != nil {
		return nil, err
	}
	report.MemBandwidthBytesPerSec = measureBandwidth(xs, cfg.trials)
	report.CeilingAddsPerSec = report.MemBandwidthBytesPerSec / 8
	return report, nil
}

// bandwidthSink keeps the compiler from eliding the bandwidth pass.
var bandwidthSink uint64

// measureBandwidth times a pure streaming read over the workload buffer —
// 64-bit loads folded with xor, no summation arithmetic at all — and
// returns the best bytes/sec across the trials. Best, not median: the pass
// measures the machine's ceiling, so cache-warm best-case is the honest
// roofline for the serial kernels, which walk the same buffer.
func measureBandwidth(xs []float64, trials int) float64 {
	words := make([]uint64, len(xs))
	for i, x := range xs {
		words[i] = math.Float64bits(x)
	}
	bytes := float64(len(words) * 8)
	best := math.MaxFloat64
	for t := 0; t < trials+1; t++ { // +1: first pass warms the cache
		var acc uint64
		start := time.Now()
		for _, w := range words {
			acc ^= w
		}
		elapsed := time.Since(start).Seconds()
		bandwidthSink += acc
		if t > 0 && elapsed < best {
			best = elapsed
		}
	}
	if best <= 0 || len(words) == 0 {
		return 0
	}
	return bytes / best
}

func printTable(r *bench.Report) {
	t := bench.Table{
		Title: fmt.Sprintf("benchsum: N=%d k=%d, %s summands, median of %d trials",
			r.HPLimbs, r.HPFrac, bench.N(r.Count), r.Trials),
		Headers: []string{"workload", "workers", "backend", "s/trial", "adds/sec", "speedup", "mallocs/op"},
	}
	for _, w := range r.Workloads {
		t.AddRow(w.Name, fmt.Sprintf("%d", w.Workers), w.Backend, bench.F(w.SecondsPerTrial),
			bench.F(w.AddsPerSec), bench.F(w.Speedup), bench.F(w.MallocsPerOp))
	}
	t.Fprint(os.Stdout)
	for _, w := range r.Workloads {
		if w.RoundsToConvergence > 0 {
			fmt.Printf("%s: %s gossip frames/sec, converged in %.0f rounds\n",
				w.Name, bench.N(int(w.FramesPerSec)), w.RoundsToConvergence)
		}
	}
	if r.CPUFeatures != "" {
		fmt.Printf("cpu features: %s\n", r.CPUFeatures)
	}
	if r.MemBandwidthBytesPerSec > 0 {
		fmt.Printf("memory-bandwidth ceiling: %s B/s streaming read = %s adds/sec upper bound (serial-super reaches %.0f%%)\n",
			bench.N(int(r.MemBandwidthBytesPerSec)), bench.N(int(r.CeilingAddsPerSec)),
			ceilingFraction(r)*100)
	}
}

// ceilingFraction is serial-super's adds/sec as a fraction of the measured
// memory-bandwidth ceiling (0 when either is absent).
func ceilingFraction(r *bench.Report) float64 {
	w := r.Lookup("serial-super")
	if w == nil || r.CeilingAddsPerSec <= 0 {
		return 0
	}
	return w.AddsPerSec / r.CeilingAddsPerSec
}
