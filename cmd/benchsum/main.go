// Command benchsum is the reproducible summation benchmark runner behind
// BENCH_sum.json. It times one pass over a fixed pseudorandom workload
// through each HP summation path — the pre-PR Listing 1+2 loop, the fused
// sparse kernel, the omp reduction, the atomic XADD and CAS accumulators,
// and the two-phase scan — and writes a schema-tagged JSON report with
// throughput, speedup over the legacy baseline, and heap-allocation rates.
//
//	benchsum -count 1048576 -trials 5 -out BENCH_sum.json
//	benchsum -validate BENCH_sum.json
//
// Every path sums the same values, so the exact workloads' checksums must
// agree bit-for-bit; the runner fails if they do not.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/omp"
	"repro/internal/rng"
	"repro/internal/scan"
)

type config struct {
	params  core.Params
	count   int
	trials  int
	workers int
	seed    uint64
}

func main() {
	var (
		hpn      = flag.Int("n", 6, "HP total limbs N")
		hpk      = flag.Int("k", 3, "HP fractional limbs k")
		count    = flag.Int("count", 1<<20, "summands per trial")
		trials   = flag.Int("trials", 5, "timed repetitions (median reported)")
		workers  = flag.Int("workers", runtime.NumCPU(), "threads for the parallel workloads")
		seed     = flag.Uint64("seed", 20160523, "workload PRNG seed")
		out      = flag.String("out", "BENCH_sum.json", "report output path")
		validate = flag.String("validate", "", "validate an existing report and exit")
	)
	flag.Parse()

	if *validate != "" {
		r, err := bench.ReadReport(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: schema %s ok, %d workloads, count=%d\n",
			*validate, r.Schema, len(r.Workloads), r.Count)
		return
	}

	cfg := config{
		params:  core.Params{N: *hpn, K: *hpk},
		count:   *count,
		trials:  *trials,
		workers: *workers,
		seed:    *seed,
	}
	report, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
		os.Exit(1)
	}
	if err := report.WriteJSON(*out); err != nil {
		fmt.Fprintf(os.Stderr, "benchsum: %v\n", err)
		os.Exit(1)
	}
	printTable(report)
	fmt.Printf("wrote %s\n", *out)
}

// workload is one measured code path: fn sums xs once and returns the
// rounded result.
type workload struct {
	name    string
	workers int
	exact   bool // checksum must match the other exact paths bit-for-bit
	fn      func(xs []float64) (float64, error)
}

// baselineName is the pre-fused-kernel reference path every speedup is
// relative to: the paper's Listing 1 conversion into a scratch HP followed
// by the Listing 2 full-width add, per element.
const baselineName = "serial-legacy"

func workloads(cfg config) []workload {
	p := cfg.params
	return []workload{
		{baselineName, 1, true, func(xs []float64) (float64, error) {
			sum := core.New(p)
			scratch := core.New(p)
			for _, x := range xs {
				if err := scratch.SetFloat64Listing1(x); err != nil {
					return 0, err
				}
				if sum.AddListing2(scratch) {
					return 0, fmt.Errorf("overflow")
				}
			}
			return sum.Float64(), nil
		}},
		{"serial-fused", 1, true, func(xs []float64) (float64, error) {
			acc := core.NewAccumulator(p)
			acc.AddAll(xs)
			return acc.Float64(), acc.Err()
		}},
		{"omp-reduce", cfg.workers, true, func(xs []float64) (float64, error) {
			team := omp.NewTeam(cfg.workers)
			total := omp.Reduce(team, len(xs),
				func(tid int) *core.Accumulator { return core.NewAccumulator(p) },
				func(local *core.Accumulator, tid, lo, hi int) {
					local.AddAll(xs[lo:hi])
				},
				func(into, from *core.Accumulator) { into.Merge(from) })
			return total.Float64(), total.Err()
		}},
		{"atomic-xadd", cfg.workers, true, func(xs []float64) (float64, error) {
			dst := core.NewAtomic(p)
			errs := make([]error, cfg.workers)
			omp.NewTeam(cfg.workers).For(len(xs), func(tid, lo, hi int) {
				for i := lo; i < hi; i++ {
					if err := dst.AddFloat64(xs[i]); err != nil {
						errs[tid] = err
						return
					}
				}
			})
			for _, err := range errs {
				if err != nil {
					return 0, err
				}
			}
			return dst.Snapshot().Float64(), nil
		}},
		{"atomic-cas", cfg.workers, true, func(xs []float64) (float64, error) {
			dst := core.NewAtomic(p)
			errs := make([]error, cfg.workers)
			omp.NewTeam(cfg.workers).For(len(xs), func(tid, lo, hi int) {
				for i := lo; i < hi; i++ {
					if err := dst.AddFloat64CAS(xs[i]); err != nil {
						errs[tid] = err
						return
					}
				}
			})
			for _, err := range errs {
				if err != nil {
					return 0, err
				}
			}
			return dst.Snapshot().Float64(), nil
		}},
		// The scan emits n rounded prefixes, not one sum; its checksum is
		// the final prefix, which equals the reduction result exactly.
		{"scan-inclusive", cfg.workers, true, func(xs []float64) (float64, error) {
			out, err := scan.Inclusive(p, xs, cfg.workers)
			if err != nil {
				return 0, err
			}
			return out[len(out)-1], nil
		}},
	}
}

func run(cfg config) (*bench.Report, error) {
	if err := cfg.params.Validate(); err != nil {
		return nil, err
	}
	if cfg.count < 1 || cfg.trials < 1 || cfg.workers < 1 {
		return nil, fmt.Errorf("count=%d trials=%d workers=%d", cfg.count, cfg.trials, cfg.workers)
	}
	xs := rng.UniformSet(rng.New(cfg.seed), cfg.count, -0.5, 0.5)

	report := &bench.Report{
		Schema:    bench.SumReportSchema,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		HPLimbs:   cfg.params.N,
		HPFrac:    cfg.params.K,
		Count:     cfg.count,
		Trials:    cfg.trials,
		Baseline:  baselineName,
	}

	var wantSum float64
	haveWant := false
	for _, w := range workloads(cfg) {
		// Warm-up run doubles as the correctness and allocation probe.
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		sum, err := w.fn(xs)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		if w.exact {
			if !haveWant {
				wantSum, haveWant = sum, true
			} else if math.Float64bits(sum) != math.Float64bits(wantSum) {
				return nil, fmt.Errorf("%s: checksum %x, want %x (paths not bit-identical)",
					w.name, math.Float64bits(sum), math.Float64bits(wantSum))
			}
		}

		var failed error
		d := bench.MeasureMedian(cfg.trials, func() {
			if _, err := w.fn(xs); err != nil && failed == nil {
				failed = err
			}
		})
		if failed != nil {
			return nil, fmt.Errorf("%s: %w", w.name, failed)
		}
		report.Workloads = append(report.Workloads, bench.Workload{
			Name:            w.name,
			Workers:         w.workers,
			SecondsPerTrial: d.Seconds(),
			AddsPerSec:      float64(cfg.count) / d.Seconds(),
			MallocsPerOp:    float64(after.Mallocs-before.Mallocs) / float64(cfg.count),
			Checksum:        sum,
		})
	}
	if err := report.FillSpeedups(); err != nil {
		return nil, err
	}
	return report, nil
}

func printTable(r *bench.Report) {
	t := bench.Table{
		Title: fmt.Sprintf("benchsum: N=%d k=%d, %s summands, median of %d trials",
			r.HPLimbs, r.HPFrac, bench.N(r.Count), r.Trials),
		Headers: []string{"workload", "workers", "s/trial", "adds/sec", "speedup", "mallocs/op"},
	}
	for _, w := range r.Workloads {
		t.AddRow(w.Name, fmt.Sprintf("%d", w.Workers), bench.F(w.SecondsPerTrial),
			bench.F(w.AddsPerSec), bench.F(w.Speedup), bench.F(w.MallocsPerOp))
	}
	t.Fprint(os.Stdout)
}
