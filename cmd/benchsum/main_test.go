package main

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

func smallConfig() config {
	return config{
		params:  core.Params384,
		count:   4096,
		trials:  2,
		workers: 3,
		seed:    1,
	}
}

// TestRunProducesValidReport exercises the whole runner at a CI-friendly
// size: every workload must execute, validate, and agree on the checksum.
func TestRunProducesValidReport(t *testing.T) {
	r, err := run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"serial-legacy", "serial-fused", "omp-reduce",
		"atomic-xadd", "atomic-cas", "scan-inclusive",
	} {
		if r.Lookup(name) == nil {
			t.Errorf("workload %q missing from report", name)
		}
	}
	want := r.Lookup(baselineName).Checksum
	for _, w := range r.Workloads {
		if math.Float64bits(w.Checksum) != math.Float64bits(want) {
			t.Errorf("%s checksum %g, want %g", w.Name, w.Checksum, want)
		}
	}
	if base := r.Lookup(baselineName); base.Speedup != 1 {
		t.Errorf("baseline speedup %g", base.Speedup)
	}
}

// TestReportRoundTrip writes and re-reads the JSON artifact, which also
// covers the CI schema check end to end.
func TestReportRoundTrip(t *testing.T) {
	r, err := run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_sum.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := bench.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != r.Count || len(got.Workloads) != len(r.Workloads) {
		t.Errorf("round trip lost data: count %d/%d, workloads %d/%d",
			got.Count, r.Count, len(got.Workloads), len(r.Workloads))
	}
}

// TestValidateRejectsBrokenReports pins the validator's failure modes so a
// CI schema bump or field rename cannot pass silently.
func TestValidateRejectsBrokenReports(t *testing.T) {
	fresh := func() *bench.Report {
		r, err := run(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cases := map[string]func(*bench.Report){
		"wrong schema":     func(r *bench.Report) { r.Schema = "repro/bench-sum/v0" },
		"no workloads":     func(r *bench.Report) { r.Workloads = nil },
		"missing baseline": func(r *bench.Report) { r.Baseline = "nope" },
		"dup workload":     func(r *bench.Report) { r.Workloads = append(r.Workloads, r.Workloads[0]) },
		"zero throughput":  func(r *bench.Report) { r.Workloads[0].AddsPerSec = 0 },
		"bad format":       func(r *bench.Report) { r.HPFrac = r.HPLimbs },
	}
	for name, breakIt := range cases {
		r := fresh()
		breakIt(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken report", name)
		}
	}
}
