package main

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

func smallConfig() config {
	return config{
		params: core.Params384,
		count:  4096,
		trials: 2,
		sweep:  []int{1, 3},
		seed:   1,
	}
}

// TestRunProducesValidReport exercises the whole runner at a CI-friendly
// size: every workload must execute at every swept worker count, validate,
// and agree on the checksum bit-for-bit.
func TestRunProducesValidReport(t *testing.T) {
	r, err := run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"serial-legacy", "serial-fused", "serial-batch"} {
		if r.LookupWorkers(name, 1) == nil {
			t.Errorf("workload %q missing from report", name)
		}
	}
	for _, name := range []string{
		"omp-reduce", "atomic-xadd", "atomic-cas", "atomic-batch", "scan-inclusive",
	} {
		for _, workers := range smallConfig().sweep {
			if r.LookupWorkers(name, workers) == nil {
				t.Errorf("workload %q workers=%d missing from report", name, workers)
			}
		}
	}
	want := r.Lookup(baselineName).Checksum
	for _, w := range r.Workloads {
		if math.Float64bits(w.Checksum) != math.Float64bits(want) {
			t.Errorf("%s workers=%d checksum %g, want %g", w.Name, w.Workers, w.Checksum, want)
		}
	}
	if base := r.Lookup(baselineName); base.Speedup != 1 {
		t.Errorf("baseline speedup %g", base.Speedup)
	}
	if r.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs %d not recorded", r.GOMAXPROCS)
	}
}

// TestWorkerSweep pins the sweep shape: 1/2/4/max, deduplicated, sorted,
// capped at max.
func TestWorkerSweep(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1, 2, 4}},
		{2, []int{1, 2, 4}},
		{3, []int{1, 2, 3, 4}},
		{4, []int{1, 2, 4}},
		{8, []int{1, 2, 4, 8}},
		{0, []int{1, 2, 4}},
	}
	for _, c := range cases {
		got := workerSweep(c.max)
		if len(got) != len(c.want) {
			t.Errorf("workerSweep(%d) = %v, want %v", c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("workerSweep(%d) = %v, want %v", c.max, got, c.want)
				break
			}
		}
	}
}

// TestReportRoundTrip writes and re-reads the JSON artifact, which also
// covers the CI schema check end to end.
func TestReportRoundTrip(t *testing.T) {
	r, err := run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_sum.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := bench.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != r.Count || len(got.Workloads) != len(r.Workloads) {
		t.Errorf("round trip lost data: count %d/%d, workloads %d/%d",
			got.Count, r.Count, len(got.Workloads), len(r.Workloads))
	}
}

// TestRegressionGate drives the -against comparison the CI bench job runs:
// a re-run of the same configuration passes, a checksum flip or a guarded
// speedup collapse fails.
func TestRegressionGate(t *testing.T) {
	committed, err := run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur, err := run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic workload, exact arithmetic: a fresh run must gate clean
	// regardless of timing noise in the unguarded workloads.
	if err := bench.CompareReports(cur, committed, nil, maxSpeedupDrop); err != nil {
		t.Fatalf("identical rerun failed the gate: %v", err)
	}

	flipped := *committed
	flipped.Workloads = append([]bench.Workload(nil), committed.Workloads...)
	flipped.Workloads[0].Checksum = math.Nextafter(flipped.Workloads[0].Checksum, 2)
	if err := bench.CompareReports(cur, &flipped, nil, maxSpeedupDrop); err == nil {
		t.Error("checksum drift passed the gate")
	}

	slow := *cur
	slow.Workloads = append([]bench.Workload(nil), cur.Workloads...)
	for i := range slow.Workloads {
		if slow.Workloads[i].Name == "serial-batch" {
			slow.Workloads[i].Speedup /= 10
		}
	}
	if err := bench.CompareReports(&slow, committed, guardedWorkloads, maxSpeedupDrop); err == nil {
		t.Error("10x speedup drop on a guarded workload passed the gate")
	}

	other := *committed
	other.Count = committed.Count * 2
	if err := bench.CompareReports(cur, &other, nil, maxSpeedupDrop); err == nil {
		t.Error("mismatched counts compared as if comparable")
	}
}

// TestValidateRejectsBrokenReports pins the validator's failure modes so a
// CI schema bump or field rename cannot pass silently.
func TestValidateRejectsBrokenReports(t *testing.T) {
	fresh := func() *bench.Report {
		r, err := run(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cases := map[string]func(*bench.Report){
		"wrong schema":     func(r *bench.Report) { r.Schema = "repro/bench-sum/v0" },
		"no workloads":     func(r *bench.Report) { r.Workloads = nil },
		"missing baseline": func(r *bench.Report) { r.Baseline = "nope" },
		"dup workload":     func(r *bench.Report) { r.Workloads = append(r.Workloads, r.Workloads[0]) },
		"zero throughput":  func(r *bench.Report) { r.Workloads[0].AddsPerSec = 0 },
		"bad format":       func(r *bench.Report) { r.HPFrac = r.HPLimbs },
		"no gomaxprocs":    func(r *bench.Report) { r.GOMAXPROCS = 0 },
	}
	for name, breakIt := range cases {
		r := fresh()
		breakIt(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken report", name)
		}
	}
}
