// Command experiments regenerates the paper's tables and figures.
//
// Each experiment prints the rows/series of one published table or figure;
// absolute times are host-dependent, but the shapes (who wins, by what
// factor, where crossovers fall) reproduce the paper. Run everything at a
// reduced scale with:
//
//	experiments -exp all -scale 0.01
//
// or a single experiment at full published scale (slow):
//
//	experiments -exp fig4 -scale 1
//
// Use -csv to also write each table as CSV for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiment names, or 'all'; see -list")
		list       = flag.Bool("list", false, "list available experiments and exit")
		scale      = flag.Float64("scale", 0.01, "problem-size multiplier (1.0 = paper scale)")
		trials     = flag.Int("trials", 0, "override timing repetitions (0 = per-experiment default)")
		seed       = flag.Uint64("seed", 2016, "workload RNG seed")
		maxThreads = flag.Int("maxthreads", 0, "cap thread/rank sweeps (0 = paper maxima)")
		csvDir     = flag.String("csv", "", "directory for CSV output (empty = none)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (enables telemetry)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stop, err := telemetry.StartFromFlags(*metricsAddr, *cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer stop()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	var names []string
	if *expFlag == "all" {
		for _, e := range experiments.All() {
			names = append(names, e.Name)
		}
	} else {
		names = strings.Split(*expFlag, ",")
	}

	cfg := experiments.Config{
		Seed:       *seed,
		Scale:      *scale,
		Trials:     *trials,
		MaxThreads: *maxThreads,
		Out:        os.Stdout,
		CSVDir:     *csvDir,
	}
	fmt.Printf("# order-invariant summation experiments (scale %g, seed %d, GOMAXPROCS %d)\n\n",
		*scale, *seed, runtime.GOMAXPROCS(0))
	start := time.Now()
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := experiments.RunAndReport(name, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			stop() // os.Exit skips defers; flush profiles first
			os.Exit(1)
		}
	}
	fmt.Printf("# total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}
