// Command hpaudit is the offline auditor for an hpsumd deployment running
// with -journal/-audit-log. It replays the recorded frame journal against
// the hash-linked audit log and proves — by exact re-summation, bit for bit
// — that every attested watermark is the sum of exactly the accepted frames,
// or it names the first divergent link (the record and accumulator where the
// two files stop telling the same story).
//
//	hpaudit -log audit.hpal -journal frames.hpfj
//	hpaudit -log ... -journal ... -acc metrics -expect "<canonical HP text>"
//
// The proof needs no trust in the daemon: HP addition is exactly
// associative and commutative, so the auditor's serial replay of the
// journal must land on the identical canonical envelope the log attests.
// With -acc/-expect it additionally proves a total reported elsewhere (a
// dashboard, an invoice) is the final attested state of that accumulator.
//
// Exit status 0 means the whole chain verified (and -expect matched);
// anything else is a named divergence.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/audit"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpaudit:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hpaudit", flag.ContinueOnError)
	var (
		logPath     = fs.String("log", "", "hash-linked audit log path (required)")
		journalPath = fs.String("journal", "", "frame journal path (required)")
		accName     = fs.String("acc", "", "accumulator whose final attested total must equal -expect")
		expect      = fs.String("expect", "", "reported total to prove, as canonical HP text")
		verbose     = fs.Bool("v", false, "print every record in the chain")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" || *journalPath == "" {
		return errors.New("-log and -journal are both required")
	}
	if (*accName == "") != (*expect == "") {
		return errors.New("-acc and -expect must be set together")
	}

	// Stage 1: the chain itself. ReadLog verifies CRC, sequence continuity,
	// and the prev_hash links, naming the first record that breaks.
	logData, err := os.ReadFile(*logPath)
	if err != nil {
		return err
	}
	records, err := audit.ReadLog(logData)
	if err != nil {
		return fmt.Errorf("DIVERGENT: %w", err)
	}
	fmt.Fprintf(out, "chain: %d record(s), hash-linked and CRC-clean\n", len(records))
	if *verbose {
		for _, r := range records {
			fmt.Fprintf(out, "  record %d (%s): %d accumulator(s)\n", r.Seq, r.Reason, len(r.Entries))
			for _, e := range r.Entries {
				fmt.Fprintf(out, "    %-20s frames=%-8d adds=%-10d digest=%x...\n",
					e.Name, e.Frames, e.Adds, e.Digest[:8])
			}
		}
	}

	// Stage 2: the replay. Every attested watermark is re-summed from the
	// journaled frames and compared bit for bit.
	jf, err := os.Open(*journalPath)
	if err != nil {
		return err
	}
	defer jf.Close()
	res, err := audit.Verify(records, audit.NewJournalReader(jf))
	if err != nil {
		var d *audit.Divergence
		if errors.As(err, &d) {
			return fmt.Errorf("DIVERGENT: %w", d)
		}
		return err
	}
	fmt.Fprintf(out, "replay: %d frame(s), %d value(s) re-summed; every watermark matches bit for bit\n",
		res.FramesReplayed, res.ValuesReplayed)
	if res.UnauditedFrames > 0 {
		fmt.Fprintf(out, "note: %d journaled frame(s) past the last watermark (accepted but not yet attested)\n",
			res.UnauditedFrames)
	}
	if res.TornTail {
		fmt.Fprintln(out, "note: journal ends mid-entry (torn append; all attested frames are before the tear)")
	}
	for name, e := range res.Final {
		hp, err := hpText(e.Env)
		if err != nil {
			return fmt.Errorf("final entry %q: %w", name, err)
		}
		fmt.Fprintf(out, "final %-20s frames=%-8d adds=%-10d hp=%s\n", name, e.Frames, e.Adds, hp)
	}

	// Stage 3 (optional): prove a reported total.
	if *accName != "" {
		e, ok := res.Final[*accName]
		if !ok {
			return fmt.Errorf("no record attests accumulator %q", *accName)
		}
		hp, err := hpText(e.Env)
		if err != nil {
			return err
		}
		if hp != *expect {
			return fmt.Errorf("DIVERGENT: reported total is not the attested sum of %q's accepted frames:\n reported %s\n attested %s",
				*accName, *expect, hp)
		}
		fmt.Fprintf(out, "PROVEN: %q's reported total is the exact sum of its %d accepted frame(s)\n",
			*accName, e.Frames)
	}
	return nil
}

// hpText renders a canonical HP envelope as its canonical text.
func hpText(env []byte) (string, error) {
	var h core.HP
	if err := h.UnmarshalBinary(env); err != nil {
		return "", err
	}
	txt, err := h.MarshalText()
	if err != nil {
		return "", err
	}
	return string(txt), nil
}
