package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/server"
)

// writeAuditedRun produces a real journal + audit log pair by driving an
// in-process replicated server, and returns the oracle total.
func writeAuditedRun(t *testing.T, jpath, lpath string) string {
	t.Helper()
	s := server.New(server.Config{Shards: 2, Replicas: 3, Quorum: 2})
	if err := s.EnableAudit(jpath, lpath); err != nil {
		t.Fatal(err)
	}
	a, _, err := s.Create("metrics", core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	xs := rng.UniformSet(rng.New(17), 700, -1, 1)
	for off := 0; off < len(xs); off += 70 {
		if err := a.AddFloats(append([]float64(nil), xs[off:off+70]...)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AuditRecord("periodic"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AuditRecord("sigterm"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.CloseAudit(); err != nil {
		t.Fatal(err)
	}
	b := core.NewBatch(core.Params384)
	b.AddSlice(xs)
	txt, err := b.Sum().MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	return string(txt)
}

func TestHPAuditVerifiesCleanRunAndProvesTotal(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "frames.hpfj")
	lpath := filepath.Join(dir, "audit.hpal")
	oracle := writeAuditedRun(t, jpath, lpath)

	var out bytes.Buffer
	if err := run([]string{"-log", lpath, "-journal", jpath, "-v"}, &out); err != nil {
		t.Fatalf("clean run did not verify: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"chain: 2 record(s)", "every watermark matches", "final metrics"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}

	out.Reset()
	err := run([]string{"-log", lpath, "-journal", jpath, "-acc", "metrics", "-expect", oracle}, &out)
	if err != nil {
		t.Fatalf("true total not proven: %v", err)
	}
	if !strings.Contains(out.String(), "PROVEN") {
		t.Fatalf("no proof line:\n%s", out.String())
	}

	// A falsified reported total must be rejected.
	err = run([]string{"-log", lpath, "-journal", jpath, "-acc", "metrics", "-expect", "0x0p0"}, &out)
	if err == nil || !strings.Contains(err.Error(), "DIVERGENT") {
		t.Fatalf("falsified total accepted: %v", err)
	}
}

func TestHPAuditNamesDivergentLink(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "frames.hpfj")
	lpath := filepath.Join(dir, "audit.hpal")
	writeAuditedRun(t, jpath, lpath)

	// Corrupt the tail record: the chain walk must name record 1.
	logData, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatal(err)
	}
	logData[len(logData)-7] ^= 0x20
	mauled := filepath.Join(dir, "mauled.hpal")
	if err := os.WriteFile(mauled, logData, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"-log", mauled, "-journal", jpath}, &out)
	if err == nil || !strings.Contains(err.Error(), "DIVERGENT") || !strings.Contains(err.Error(), "record 1") {
		t.Fatalf("tampered log not named: %v", err)
	}

	// Truncate the journal below the attested watermark: the replay must
	// name the accumulator whose frames went missing.
	jdata, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.hpfj")
	if err := os.WriteFile(cut, jdata[:len(jdata)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-log", lpath, "-journal", cut}, &out)
	if err == nil || !strings.Contains(err.Error(), "DIVERGENT") || !strings.Contains(err.Error(), `"metrics"`) {
		t.Fatalf("truncated journal not named: %v", err)
	}
}
