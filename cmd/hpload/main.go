// Command hpload drives an hpsumd instance with concurrent clients and
// verifies the service's headline claim end to end: K clients streaming
// shuffled partitions of one seeded workload must leave the accumulator
// bit-identical (MarshalText equal) to a serial in-process oracle, because
// HP addition is exactly associative and commutative.
//
//	hpload -addr http://127.0.0.1:8080 -clients 8 -count 1000000 -seed 1
//	hpload -addr ... -duration 5s            # soak: repeat rounds until the clock runs out
//	hpload -addr ... -corrupt                # also probe the 4xx rejection paths
//	hpload -cluster -addr http://n1:8080,http://n2:8080,http://n3:8080
//
// With -cluster the tool drives a gossip-replicated deployment instead of a
// single daemon: -addr lists every node, writes are sprayed across all of
// them, and each node's /gossip/sum read is polled until the whole cluster
// serves one bit-identical total (verified against the serial oracle). The
// summary line reports per-node convergence lag as p50/p95/p99.
//
// Exit status 0 means every round verified; any mismatch, transport error,
// or rejection-path surprise is fatal. The tool prints per-round throughput
// (values/s) and the certificate prefix so runs are comparable.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpload:", err)
		os.Exit(1)
	}
}

type config struct {
	addr     string
	clients  int
	count    int
	seed     uint64
	rounds   int
	duration time.Duration
	frameLen int
	corrupt  bool
	// expectDivergence tolerates (and requires) fail-closed 503 reads from a
	// daemon running with an injected replica-fault plan: reads are retried
	// until the quorum heals, and the run fails if no divergence was ever
	// observed.
	expectDivergence bool
	// keep leaves each round's accumulator on the server instead of deleting
	// it, so a daemon running with -audit-log can attest the verified totals
	// in its shutdown record (deletion would orphan the journaled frames).
	keep bool
	// cluster treats addr as a comma-separated node list: spray writes
	// across all nodes and verify gossip convergence instead of a
	// single-node certified read.
	cluster bool
	params  core.Params
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hpload", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "hpsumd base URL")
	fs.IntVar(&cfg.clients, "clients", 8, "concurrent streaming clients")
	fs.IntVar(&cfg.count, "count", 100000, "values per round")
	fs.Uint64Var(&cfg.seed, "seed", 1, "workload PRNG seed (round i uses seed+i)")
	fs.IntVar(&cfg.rounds, "rounds", 1, "verification rounds (ignored when -duration is set)")
	fs.DurationVar(&cfg.duration, "duration", 0, "soak mode: run rounds until this much time has passed")
	fs.IntVar(&cfg.frameLen, "frame", 4096, "values per ingest frame")
	fs.BoolVar(&cfg.corrupt, "corrupt", false, "also send corrupt/oversize/non-finite frames and require 4xx")
	fs.BoolVar(&cfg.expectDivergence, "expect-divergence", false, "require >=1 fail-closed 503 read (daemon must be running a -replica-fault-plan)")
	fs.BoolVar(&cfg.keep, "keep", false, "leave round accumulators on the server (so a shutdown audit record can attest them)")
	fs.BoolVar(&cfg.cluster, "cluster", false, "treat -addr as a comma-separated list of clustered nodes; spray writes and verify gossip convergence")
	n := fs.Int("n", 6, "HP total limbs N")
	k := fs.Int("k", 3, "HP fractional limbs k")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg.params = core.Params{N: *n, K: *k}
	if err := cfg.params.Validate(); err != nil {
		return err
	}
	// Per-stage latency percentiles come from the client's own trace spans;
	// recording is in-process only and provably does not perturb the sums
	// (the server certificate check below would catch it if it did).
	defer trace.SetEnabled(trace.SetEnabled(true))

	deadline := time.Time{}
	rounds := cfg.rounds
	if cfg.duration > 0 {
		deadline = time.Now().Add(cfg.duration)
		rounds = int(math.MaxInt32)
	}
	if cfg.cluster {
		return clusterRun(cfg, rounds, deadline, out)
	}
	divergences := 0
	for i := 0; i < rounds; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		d, err := round(cfg, cfg.seed+uint64(i), out)
		divergences += d
		if err != nil {
			return fmt.Errorf("round %d (seed %d): %w", i, cfg.seed+uint64(i), err)
		}
	}
	if cfg.expectDivergence && divergences == 0 {
		return fmt.Errorf("expected at least one replica divergence, saw none (is the daemon running a -replica-fault-plan?)")
	}
	if divergences > 0 {
		fmt.Fprintf(out, "replica divergences absorbed: %d (every read that succeeded was certified)\n", divergences)
	}
	if cfg.corrupt {
		if err := corruptProbes(cfg); err != nil {
			return fmt.Errorf("corrupt probes: %w", err)
		}
		fmt.Fprintln(out, "corrupt probes: all rejected with 4xx")
	}
	return nil
}

// round creates a fresh accumulator, streams one seeded workload through
// cfg.clients concurrent clients (each with a private shuffled partition),
// and verifies the result against a serial oracle bit for bit. It returns
// how many fail-closed divergence reads it absorbed along the way.
func round(cfg config, seed uint64, out io.Writer) (int, error) {
	trace.Reset() // stage percentiles are per round
	c := &server.Client{Base: cfg.addr, FrameLen: cfg.frameLen}
	name := fmt.Sprintf("hpload-%d", seed)
	if _, err := c.Create(name, cfg.params); err != nil {
		return 0, err
	}
	if !cfg.keep {
		defer c.Delete(name)
	}

	xs := rng.UniformSet(rng.New(seed), cfg.count, -0.5, 0.5)
	parts := make([][]float64, cfg.clients)
	for i, x := range xs {
		parts[i%cfg.clients] = append(parts[i%cfg.clients], x)
	}
	for i := range parts {
		rng.New(seed ^ uint64(i+1)).Shuffle(parts[i])
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, cfg.clients)
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := &server.Client{Base: cfg.addr, FrameLen: cfg.frameLen}
			_, errs[i] = cl.Stream(name, parts[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("client %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)

	// The read is certified (k-of-n agreement) on a replicated daemon. A
	// divergence pass fails closed with 503 while the server quarantines and
	// reseeds the minority; with -expect-divergence those reads are retried
	// until the quorum heals, and counted.
	var info server.Info
	divergences := 0
	for {
		var err error
		info, err = c.Get(name)
		if err == nil {
			break
		}
		if cfg.expectDivergence && strings.Contains(err.Error(), "HTTP 503") && divergences < 100 {
			divergences++
			time.Sleep(50 * time.Millisecond)
			continue
		}
		return divergences, err
	}
	oracle := core.NewAccumulator(cfg.params)
	oracle.AddAll(xs)
	if err := oracle.Err(); err != nil {
		return divergences, err
	}
	txt, err := oracle.Sum().MarshalText()
	if err != nil {
		return divergences, err
	}
	if info.HP != string(txt) {
		return divergences, fmt.Errorf("certificate mismatch:\n server %s\n oracle %s", info.HP, txt)
	}
	if info.Adds != uint64(len(xs)) {
		return divergences, fmt.Errorf("adds %d, want %d", info.Adds, len(xs))
	}
	if info.Err != "" {
		return divergences, fmt.Errorf("sticky error: %s", info.Err)
	}
	// Agreement certificate: the digest must cover the exact served value
	// with a full quorum of shares. An unreplicated daemon (n=1) certifies
	// with itself; the check is identical.
	if info.Cert == nil {
		return divergences, fmt.Errorf("read carried no agreement certificate")
	}
	if err := info.Cert.Verify(info.HP); err != nil {
		return divergences, fmt.Errorf("agreement certificate: %w", err)
	}
	if info.Cert.Adds != info.Adds || info.Cert.Frames != info.Frames {
		return divergences, fmt.Errorf("certificate counters %d/%d disagree with info %d/%d",
			info.Cert.Frames, info.Cert.Adds, info.Frames, info.Adds)
	}
	fmt.Fprintf(out, "seed %d: %d values x %d clients verified bit-identical in %v (%.0f values/s) cert=%d-of-%d hp=%.24s... %s\n",
		seed, len(xs), cfg.clients, elapsed.Round(time.Millisecond),
		float64(len(xs))/elapsed.Seconds(), info.Cert.K, info.Cert.N, info.HP, stageLine())
	return divergences, nil
}

// stageLine summarizes the round's client-side trace spans as per-stage
// p50/p95/p99 latency percentiles: TCP connects, POST round-trips, 429
// backoff waits, and the final flush-and-read.
func stageLine() string {
	byName := map[string][]float64{}
	for _, r := range trace.Snapshot() {
		switch r.Name {
		case "client.connect", "client.send", "client.resume", "client.read":
			byName[r.Name] = append(byName[r.Name], float64(r.Dur)/1e6)
		}
	}
	stage := func(name string) string {
		ds := byName[name]
		if len(ds) == 0 {
			return "-"
		}
		sort.Float64s(ds)
		q := func(p float64) float64 { return ds[int(p*float64(len(ds)-1)+0.5)] }
		return fmt.Sprintf("%.2f/%.2f/%.2f", q(0.50), q(0.95), q(0.99))
	}
	return fmt.Sprintf("stages(ms,p50/p95/p99) connect=%s send=%s resume429=%s read=%s",
		stage("client.connect"), stage("client.send"),
		stage("client.resume"), stage("client.read"))
}

// corruptProbes sends frames the server must refuse — CRC damage, an
// oversize length prefix, NaN payloads, and a bad accumulator name — and
// requires a 4xx verdict for each without poisoning a healthy accumulator.
func corruptProbes(cfg config) error {
	c := &server.Client{Base: cfg.addr}
	name := "hpload-corrupt"
	if _, err := c.Create(name, cfg.params); err != nil {
		return err
	}
	defer c.Delete(name)
	if _, err := c.Stream(name, []float64{1, 2}); err != nil {
		return err
	}

	post := func(body []byte, accName string) (int, error) {
		resp, err := http.Post(cfg.addr+"/v1/acc/"+accName+"/add",
			"application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	crcFlipped := server.AppendFloatFrame(nil, []float64{3, 4})
	crcFlipped[len(crcFlipped)-1] ^= 0xff
	probes := []struct {
		desc string
		body []byte
		acc  string
	}{
		{"crc-flip", crcFlipped, name},
		{"oversize-length", []byte{'f', 0xff, 0xff, 0xff, 0xf8}, name},
		{"nan-payload", server.AppendFloatFrame(nil, []float64{math.NaN()}), name},
		{"bad-type", append([]byte{'z'}, crcFlipped[1:]...), name},
		{"missing-acc", server.AppendFloatFrame(nil, []float64{1}), "hpload-no-such-acc"},
	}
	for _, p := range probes {
		status, err := post(p.body, p.acc)
		if err != nil {
			return fmt.Errorf("%s: %w", p.desc, err)
		}
		if status < 400 || status > 499 {
			return fmt.Errorf("%s: HTTP %d, want 4xx", p.desc, status)
		}
	}
	// The healthy accumulator must be untouched by all of the above.
	info, err := c.Get(name)
	if err != nil {
		return err
	}
	if info.Sum != 3 || info.Err != "" {
		return fmt.Errorf("probes damaged the accumulator: sum=%v err=%q", info.Sum, info.Err)
	}
	return nil
}

// clusterRun drives a gossip-replicated deployment: every round sprays one
// seeded workload across all nodes and polls each node's cluster read until
// the whole cluster serves the oracle total bit for bit. Per-node
// convergence lags (write completion to first bit-identical read) accumulate
// across rounds into the closing p50/p95/p99 summary line.
func clusterRun(cfg config, rounds int, deadline time.Time, out io.Writer) error {
	var peers []string
	for _, a := range strings.Split(cfg.addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			peers = append(peers, a)
		}
	}
	if len(peers) < 2 {
		return fmt.Errorf("-cluster needs at least two comma-separated node URLs in -addr, got %d", len(peers))
	}
	var lags []time.Duration
	for i := 0; i < rounds; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		roundLags, err := clusterRound(cfg, peers, cfg.seed+uint64(i), out)
		lags = append(lags, roundLags...)
		if err != nil {
			return fmt.Errorf("round %d (seed %d): %w", i, cfg.seed+uint64(i), err)
		}
	}
	sort.Slice(lags, func(a, b int) bool { return lags[a] < lags[b] })
	q := func(p float64) float64 {
		return float64(lags[int(p*float64(len(lags)-1)+0.5)]) / 1e6
	}
	fmt.Fprintf(out, "cluster of %d nodes: convergence lag(ms) p50/p95/p99 = %.1f/%.1f/%.1f over %d node-reads\n",
		len(peers), q(0.50), q(0.95), q(0.99), len(lags))
	return nil
}

// clusterRead fetches one node's merged cluster view of the accumulator.
func clusterRead(base, name string) (gossip.ClusterInfo, error) {
	var info gossip.ClusterInfo
	resp, err := http.Get(base + "/gossip/sum/" + name)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("GET /gossip/sum/%s: HTTP %d", name, resp.StatusCode)
	}
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// clusterRound creates the accumulator on every node, streams shuffled
// client partitions sprayed round-robin across nodes, then polls until every
// node's cluster read matches the serial oracle bit for bit with one digest.
// It returns each node's convergence lag.
func clusterRound(cfg config, peers []string, seed uint64, out io.Writer) ([]time.Duration, error) {
	name := fmt.Sprintf("hpload-%d", seed)
	for _, p := range peers {
		c := &server.Client{Base: p, FrameLen: cfg.frameLen}
		if _, err := c.Create(name, cfg.params); err != nil {
			return nil, fmt.Errorf("create on %s: %w", p, err)
		}
	}

	xs := rng.UniformSet(rng.New(seed), cfg.count, -0.5, 0.5)
	parts := make([][]float64, cfg.clients)
	for i, x := range xs {
		parts[i%cfg.clients] = append(parts[i%cfg.clients], x)
	}
	for i := range parts {
		rng.New(seed ^ uint64(i+1)).Shuffle(parts[i])
	}

	oracle := core.NewAccumulator(cfg.params)
	oracle.AddAll(xs)
	if err := oracle.Err(); err != nil {
		return nil, err
	}
	txt, err := oracle.Sum().MarshalText()
	if err != nil {
		return nil, err
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.clients)
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := &server.Client{Base: peers[i%len(peers)], FrameLen: cfg.frameLen}
			_, errs[i] = cl.Stream(name, parts[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("client %d (node %s): %w", i, peers[i%len(peers)], err)
		}
	}
	written := time.Now()

	// Poll every node until its merged read IS the oracle. Lag is measured
	// per node from write completion to its first bit-identical read.
	lags := make([]time.Duration, len(peers))
	converged := make([]bool, len(peers))
	infos := make([]gossip.ClusterInfo, len(peers))
	pollDeadline := time.Now().Add(60 * time.Second)
	for remaining := len(peers); remaining > 0; {
		for i, p := range peers {
			if converged[i] {
				continue
			}
			info, err := clusterRead(p, name)
			if err != nil {
				continue // the node may still be assembling contributions
			}
			infos[i] = info
			if info.Adds == uint64(len(xs)) && info.HP == string(txt) {
				converged[i] = true
				lags[i] = time.Since(written)
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
		if time.Now().After(pollDeadline) {
			return nil, fmt.Errorf("cluster never converged: %+v", infos)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Bit-identical means one digest everywhere, not just equal sums.
	for i := range peers {
		if infos[i].Digest != infos[0].Digest {
			return nil, fmt.Errorf("digest divergence: node %s has %s, node %s has %s",
				peers[i], infos[i].Digest, peers[0], infos[0].Digest)
		}
	}

	maxLag := time.Duration(0)
	for _, l := range lags {
		if l > maxLag {
			maxLag = l
		}
	}
	fmt.Fprintf(out, "seed %d: %d values x %d clients sprayed over %d nodes, all converged bit-identical (lag max %v, digest %.16s...)\n",
		seed, len(xs), cfg.clients, len(peers), maxLag.Round(time.Millisecond), infos[0].Digest)
	return lags, nil
}
