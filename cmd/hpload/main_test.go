package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/server"
)

// startServer runs an in-process summation service — the same Handler
// hpsumd mounts — so the tool's full verification loop executes without a
// separate process.
func startServer(t *testing.T) string {
	t.Helper()
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

func TestRoundsVerifyAgainstOracle(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", url, "-clients", "8", "-count", "20000",
		"-seed", "1", "-rounds", "2", "-frame", "512",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "verified bit-identical"); got != 2 {
		t.Fatalf("want 2 verified rounds, got %d:\n%s", got, out.String())
	}
}

func TestCorruptProbes(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	err := run([]string{"-addr", url, "-count", "1000", "-rounds", "1", "-corrupt"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "corrupt probes: all rejected") {
		t.Fatalf("corrupt probe summary missing:\n%s", out.String())
	}
}

func TestSoakDuration(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", url, "-clients", "2", "-count", "2000", "-duration", "300ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified bit-identical") {
		t.Fatalf("soak completed no rounds:\n%s", out.String())
	}
}

func TestBadFlagsRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "1", "-k", "9"}, &out); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// startCluster brings up n in-process clustered nodes — each the same
// /v1 + /gossip mux hpsumd mounts — daisy-chain seeded, and returns their
// base URLs.
func startCluster(t *testing.T, n int) []string {
	t.Helper()
	var urls []string
	for i := 0; i < n; i++ {
		s := server.New(server.Config{})
		var gn atomic.Pointer[gossip.Node]
		mux := http.NewServeMux()
		mux.Handle("/v1/", s.Handler())
		gh := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			gn.Load().Handler().ServeHTTP(w, r)
		})
		mux.Handle("/gossip", gh)
		mux.Handle("/gossip/", gh)
		ts := httptest.NewServer(mux)

		var seeds []gossip.Peer
		if i > 0 {
			seeds = []gossip.Peer{{ID: urls[i-1], Addr: urls[i-1]}}
		}
		node, err := gossip.NewNode(gossip.Config{
			Self:      gossip.Peer{ID: fmt.Sprintf("node%d", i), Addr: ts.URL},
			Epoch:     1,
			Params:    core.Params384,
			Seeds:     seeds,
			Interval:  10 * time.Millisecond,
			Local:     gossip.ServerLocal{S: s},
			Transport: gossip.NewHTTPTransport(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		gn.Store(node)
		node.Start()
		t.Cleanup(func() {
			node.Close()
			ts.Close()
			s.Close()
		})
		urls = append(urls, ts.URL)
	}
	return urls
}

func TestClusterModeConvergesAndReportsLag(t *testing.T) {
	urls := startCluster(t, 3)
	var out bytes.Buffer
	err := run([]string{
		"-cluster", "-addr", strings.Join(urls, ","),
		"-clients", "4", "-count", "6000", "-rounds", "2", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"all converged bit-identical",
		"cluster of 3 nodes: convergence lag(ms) p50/p95/p99",
		"over 6 node-reads",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestClusterModeRejectsSingleNode(t *testing.T) {
	if err := run([]string{"-cluster", "-addr", "http://one"}, &bytes.Buffer{}); err == nil {
		t.Fatal("single-node cluster accepted")
	}
}
