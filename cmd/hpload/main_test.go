package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

// startServer runs an in-process summation service — the same Handler
// hpsumd mounts — so the tool's full verification loop executes without a
// separate process.
func startServer(t *testing.T) string {
	t.Helper()
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

func TestRoundsVerifyAgainstOracle(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", url, "-clients", "8", "-count", "20000",
		"-seed", "1", "-rounds", "2", "-frame", "512",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "verified bit-identical"); got != 2 {
		t.Fatalf("want 2 verified rounds, got %d:\n%s", got, out.String())
	}
}

func TestCorruptProbes(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	err := run([]string{"-addr", url, "-count", "1000", "-rounds", "1", "-corrupt"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "corrupt probes: all rejected") {
		t.Fatalf("corrupt probe summary missing:\n%s", out.String())
	}
}

func TestSoakDuration(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", url, "-clients", "2", "-count", "2000", "-duration", "300ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified bit-identical") {
		t.Fatalf("soak completed no rounds:\n%s", out.String())
	}
}

func TestBadFlagsRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "1", "-k", "9"}, &out); err == nil {
		t.Fatal("invalid params accepted")
	}
}
