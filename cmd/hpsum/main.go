// Command hpsum sums floating-point numbers exactly from stdin or files,
// one value per line (blank lines and #-comments ignored), using the
// order-invariant HP method.
//
//	hpsum < values.txt
//	hpsum -n 8 -k 4 values.txt
//	hpsum -adaptive -compare values.txt
//
// With -compare it also prints the naive left-to-right float64 sum and the
// difference, showing the rounding error the HP method removed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/floatsum"
	"repro/internal/telemetry"
)

func main() {
	var (
		nFlag       = flag.Int("n", 6, "HP total limbs N")
		kFlag       = flag.Int("k", 3, "HP fractional limbs k")
		adaptive    = flag.Bool("adaptive", false, "use the adaptive accumulator (any finite range)")
		compare     = flag.Bool("compare", false, "also print the naive float64 sum and difference")
		exactOut    = flag.Bool("exact", false, "print the exact sum as a rational number")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (enables telemetry)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stop, err := telemetry.StartFromFlags(*metricsAddr, *cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpsum: %v\n", err)
		os.Exit(1)
	}
	if err := run(*nFlag, *kFlag, *adaptive, *compare, *exactOut, flag.Args(), os.Stdout); err != nil {
		stop()
		fmt.Fprintf(os.Stderr, "hpsum: %v\n", err)
		os.Exit(1)
	}
	stop()
}

func run(n, k int, adaptive, compare, exactOut bool, files []string, out io.Writer) error {
	var readers []io.Reader
	if len(files) == 0 {
		readers = append(readers, os.Stdin)
	} else {
		for _, f := range files {
			fh, err := os.Open(f)
			if err != nil {
				return err
			}
			defer fh.Close()
			readers = append(readers, fh)
		}
	}

	params := core.Params{N: n, K: k}
	if err := params.Validate(); err != nil {
		return err
	}
	var addExact func(x float64) error
	var result func() (*core.HP, float64)
	if adaptive {
		acc := core.NewAdaptive(core.Params128)
		addExact = acc.Add
		result = func() (*core.HP, float64) { return acc.Sum(), acc.Float64() }
	} else {
		acc := core.NewAccumulator(params)
		addExact = func(x float64) error {
			acc.Add(x)
			return acc.Err()
		}
		result = func() (*core.HP, float64) { return acc.Sum(), acc.Float64() }
	}

	var values []float64
	count := 0
	for _, r := range readers {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			for _, field := range strings.Fields(line) {
				x, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return fmt.Errorf("parse %q: %w", field, err)
				}
				if err := addExact(x); err != nil {
					return fmt.Errorf("value %g: %w", x, err)
				}
				count++
				if compare {
					values = append(values, x)
				}
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}

	hp, sum := result()
	fmt.Fprintf(out, "count: %d\n", count)
	fmt.Fprintf(out, "hp sum: %.17g\n", sum)
	if exactOut {
		fmt.Fprintf(out, "exact: %s\n", hp.Rat().RatString())
	}
	if compare {
		naive := floatsum.Naive(values)
		fmt.Fprintf(out, "naive float64 sum: %.17g\n", naive)
		fmt.Fprintf(out, "difference (hp - naive): %.17g\n", sum-naive)
	}
	return nil
}
