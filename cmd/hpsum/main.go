// Command hpsum sums floating-point numbers exactly from stdin or files,
// one value per line (blank lines and #-comments ignored), using the
// order-invariant HP method.
//
//	hpsum < values.txt
//	hpsum -n 8 -k 4 values.txt
//	hpsum -adaptive -compare values.txt
//	hpsum -ranks 4 values.txt
//	hpsum -ranks 4 -fault-plan 'seed=42;drop:p=0.1;crash:rank=1,after=20' values.txt
//
// With -compare it also prints the naive left-to-right float64 sum and the
// difference, showing the rounding error the HP method removed.
//
// With -ranks P > 1 the sum runs on the in-process MPI substrate: the
// values are sharded across P ranks, each rank accumulates its shard with
// periodic checkpoints of its partial sum, and the shards are combined with
// a fault-tolerant allreduce. -fault-plan injects deterministic faults
// (message drop, delay, duplication, corruption, rank crashes) into that
// run; because HP addition is exactly associative and lost ranks are
// recovered from checkpoints by deterministic replay, the printed sum is
// bit-identical to the serial one no matter which faults fire.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/floatsum"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// config carries every run option; the zero value plus params is a plain
// serial sum.
type config struct {
	params   core.Params
	adaptive bool // adaptive accumulator (any finite range); serial only
	compare  bool // also print the naive float64 sum and difference
	exactOut bool // print the exact sum as a rational

	ranks              int           // world size; <= 1 means serial
	faultPlan          string        // faults.ParsePlan syntax; distributed only
	checkpointInterval int           // values per partial-sum checkpoint
	stallTimeout       time.Duration // stall watchdog; 0 disables
}

func main() {
	var (
		nFlag       = flag.Int("n", 6, "HP total limbs N")
		kFlag       = flag.Int("k", 3, "HP fractional limbs k")
		adaptive    = flag.Bool("adaptive", false, "use the adaptive accumulator (any finite range)")
		compare     = flag.Bool("compare", false, "also print the naive float64 sum and difference")
		exactOut    = flag.Bool("exact", false, "print the exact sum as a rational number")
		ranks       = flag.Int("ranks", 1, "distribute the sum over this many in-process MPI ranks")
		faultPlan   = flag.String("fault-plan", "", "deterministic fault plan for the distributed run, e.g. 'seed=42;drop:p=0.1;crash:rank=1,after=20'")
		ckptEvery   = flag.Int("checkpoint-interval", 4096, "values accumulated between partial-sum checkpoints (distributed mode)")
		stall       = flag.Duration("stall-timeout", 0, "abort the distributed run if any receive blocks this long (0 disables the watchdog)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (enables telemetry)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOn     = flag.Bool("trace", false, "record spans (export at /debug/trace when -metrics-addr is set)")
		traceSample = flag.Uint64("trace-sample", 1, "record 1 in every N traces (1 = all)")
		flightDump  = flag.String("flight-dump", "", "write flight-recorder JSON here on SIGQUIT, stall, or crash")
	)
	flag.Parse()

	stop, err := telemetry.StartFromFlags(*metricsAddr, *cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpsum: %v\n", err)
		os.Exit(1)
	}
	if *traceOn {
		trace.SetEnabled(true)
		trace.SetSampling(*traceSample)
	}
	stopFlight := trace.StartFlightDump(*flightDump)
	defer stopFlight()
	cfg := config{
		params:             core.Params{N: *nFlag, K: *kFlag},
		adaptive:           *adaptive,
		compare:            *compare,
		exactOut:           *exactOut,
		ranks:              *ranks,
		faultPlan:          *faultPlan,
		checkpointInterval: *ckptEvery,
		stallTimeout:       *stall,
	}
	if err := run(cfg, flag.Args(), os.Stdout); err != nil {
		stopFlight() // os.Exit skips defers; any trip dump is already on disk
		stop()
		fmt.Fprintf(os.Stderr, "hpsum: %v\n", err)
		os.Exit(1)
	}
	stop()
}

// readValues parses every value from the files (or stdin when none).
func readValues(files []string) ([]float64, error) {
	var readers []io.Reader
	if len(files) == 0 {
		readers = append(readers, os.Stdin)
	} else {
		for _, f := range files {
			fh, err := os.Open(f)
			if err != nil {
				return nil, err
			}
			defer fh.Close()
			readers = append(readers, fh)
		}
	}
	var values []float64
	for _, r := range readers {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			for _, field := range strings.Fields(line) {
				x, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("parse %q: %w", field, err)
				}
				values = append(values, x)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	return values, nil
}

func run(cfg config, files []string, out io.Writer) error {
	if err := cfg.params.Validate(); err != nil {
		return err
	}
	if cfg.ranks > 1 {
		if cfg.adaptive {
			return fmt.Errorf("-adaptive is serial-only; drop it or use -ranks 1")
		}
		return runDistributed(cfg, files, out)
	}
	if cfg.faultPlan != "" {
		return fmt.Errorf("-fault-plan needs a distributed run (-ranks > 1)")
	}
	return runSerial(cfg, files, out)
}

func runSerial(cfg config, files []string, out io.Writer) error {
	var addExact func(x float64) error
	var result func() (*core.HP, float64)
	if cfg.adaptive {
		acc := core.NewAdaptive(core.Params128)
		addExact = acc.Add
		result = func() (*core.HP, float64) { return acc.Sum(), acc.Float64() }
	} else {
		acc := core.NewAccumulator(cfg.params)
		addExact = func(x float64) error {
			acc.Add(x)
			return acc.Err()
		}
		result = func() (*core.HP, float64) { return acc.Sum(), acc.Float64() }
	}

	values, err := readValues(files)
	if err != nil {
		return err
	}
	for _, x := range values {
		if err := addExact(x); err != nil {
			return fmt.Errorf("value %g: %w", x, err)
		}
	}
	hp, sum := result()
	return report(cfg, out, len(values), hp, sum, values)
}

// hbTag is the user tag of the heartbeat each rank sends its neighbor after
// every checkpointed chunk. Heartbeats carry no data and are never awaited;
// they exist so a distributed accumulation has steady outgoing traffic —
// which is what gives crash fault rules ('crash:rank=R,after=N') send
// events to trigger on in the middle of a rank's work, and what a stalled
// neighbor's watchdog would notice going quiet.
const hbTag = 1

// runDistributed shards the values across cfg.ranks in-process MPI ranks,
// accumulates with periodic SumCheckpoint snapshots, and combines shard
// sums with a fault-tolerant allreduce. Ranks lost to injected crashes are
// recovered by deterministically replaying their shard from the last
// checkpoint, so the output is bit-identical to the serial sum.
func runDistributed(cfg config, files []string, out io.Writer) error {
	values, err := readValues(files)
	if err != nil {
		return err
	}
	var inject *faults.Injector
	if cfg.faultPlan != "" {
		inject, err = faults.Parse(cfg.faultPlan)
		if err != nil {
			return err
		}
	}
	interval := cfg.checkpointInterval
	if interval <= 0 {
		interval = 4096
	}
	p := cfg.params
	op := mpi.OpSumHP(p)
	store := mpi.NewCheckpointStore()
	size := cfg.ranks

	shard := func(rank int) (int, int) {
		return rank * len(values) / size, (rank + 1) * len(values) / size
	}
	// replay reconstructs rank's full shard sum from a checkpoint (nil
	// envelope = from scratch). Exactness of HP addition makes this replay
	// produce the same bytes the lost rank would have.
	replay := func(rank int, envelope []byte, ok bool) ([]byte, error) {
		lo, hi := shard(rank)
		acc := core.NewAccumulator(p)
		start := lo
		if ok {
			var ck core.SumCheckpoint
			if err := ck.UnmarshalBinary(envelope); err != nil {
				return nil, fmt.Errorf("rank %d checkpoint: %w", rank, err)
			}
			if ck.Sum.Params() != p {
				return nil, fmt.Errorf("rank %d checkpoint has params %v, want %v",
					rank, ck.Sum.Params(), p)
			}
			if ck.Step > uint64(hi-lo) {
				return nil, fmt.Errorf("rank %d checkpoint step %d exceeds shard size %d",
					rank, ck.Step, hi-lo)
			}
			acc.AddHP(ck.Sum)
			start = lo + int(ck.Step)
		}
		acc.AddAll(values[start:hi])
		if err := acc.Err(); err != nil {
			return nil, err
		}
		return mpi.EncodeHP(acc.Sum()), nil
	}

	results := make([][]byte, size)
	worldErr := mpi.RunWith(size, mpi.RunOpts{Inject: inject, StallTimeout: cfg.stallTimeout},
		func(c *mpi.Comm) error {
			rank := c.Rank()
			lo, hi := shard(rank)
			acc := core.NewAccumulator(p)
			checkpoint := func(step int) error {
				enc, err := (&core.SumCheckpoint{Step: uint64(step), Sum: acc.Sum()}).MarshalBinary()
				if err != nil {
					return err
				}
				store.Put(rank, enc)
				return nil
			}
			if err := checkpoint(0); err != nil {
				return err
			}
			for off := 0; off < hi-lo; off += interval {
				end := off + interval
				if end > hi-lo {
					end = hi - lo
				}
				acc.AddAll(values[lo+off : lo+end])
				if err := acc.Err(); err != nil {
					return fmt.Errorf("rank %d: %w", rank, err)
				}
				if err := checkpoint(end); err != nil {
					return err
				}
				// Heartbeat to the neighbor; see hbTag. A crash rule may
				// fire inside this send, killing the rank mid-shard.
				if err := c.Send((rank+1)%size, hbTag, nil); err != nil {
					return err
				}
			}
			got, err := c.AllreduceFT(mpi.EncodeHP(acc.Sum()), op, mpi.FTOpts{
				Store:            store,
				Timeout:          5 * time.Second,
				NoSelfCheckpoint: true, // the periodic envelopes above are richer
				Recover:          replay,
			})
			if err != nil {
				return fmt.Errorf("rank %d: %w", rank, err)
			}
			results[rank] = got
			return nil
		})
	// Injected rank crashes are survivable by design; anything else is not.
	if worldErr != nil && !faults.OnlyCrashes(worldErr) {
		return worldErr
	}
	var combined []byte
	for _, r := range results {
		if r != nil {
			combined = r
			break
		}
	}
	if combined == nil {
		return fmt.Errorf("no rank survived to report the sum (world error: %v)", worldErr)
	}
	hp, err := mpi.DecodeHP(p, combined)
	if err != nil {
		return err
	}
	if inject != nil {
		fmt.Fprintf(out, "faults injected: %s\n", inject.Summary())
	}
	return report(cfg, out, len(values), hp, hp.Float64(), values)
}

// report prints the result lines; the "count:" and "hp sum:" lines are
// byte-identical between serial and distributed runs.
func report(cfg config, out io.Writer, count int, hp *core.HP, sum float64, values []float64) error {
	fmt.Fprintf(out, "count: %d\n", count)
	fmt.Fprintf(out, "hp sum: %.17g\n", sum)
	if cfg.exactOut {
		fmt.Fprintf(out, "exact: %s\n", hp.Rat().RatString())
	}
	if cfg.compare {
		naive := floatsum.Naive(values)
		fmt.Fprintf(out, "naive float64 sum: %.17g\n", naive)
		fmt.Fprintf(out, "difference (hp - naive): %.17g\n", sum-naive)
	}
	return nil
}
