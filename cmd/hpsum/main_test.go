package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "values.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasicSum(t *testing.T) {
	path := writeTemp(t, "1.5\n2.25\n# comment\n\n-0.75\n")
	var out strings.Builder
	if err := run(6, 3, false, false, false, []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "count: 3") {
		t.Errorf("missing count: %q", got)
	}
	if !strings.Contains(got, "hp sum: 3\n") {
		t.Errorf("missing sum: %q", got)
	}
}

func TestRunMultipleValuesPerLine(t *testing.T) {
	path := writeTemp(t, "1 2 3\n4 5\n")
	var out strings.Builder
	if err := run(6, 3, false, false, false, []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "count: 5") ||
		!strings.Contains(out.String(), "hp sum: 15") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunCompareAndExact(t *testing.T) {
	path := writeTemp(t, "0.1\n0.2\n-0.3\n")
	var out strings.Builder
	if err := run(6, 3, false, true, true, []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"naive float64 sum:", "difference", "exact:"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestRunAdaptiveWideRange(t *testing.T) {
	path := writeTemp(t, "1e300\n-1e300\n2.5\n1e-300\n")
	var out strings.Builder
	if err := run(2, 1, true, false, false, []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hp sum: 2.5") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	// Parse error.
	bad := writeTemp(t, "not-a-number\n")
	if err := run(6, 3, false, false, false, []string{bad}, &out); err == nil {
		t.Error("parse error not surfaced")
	}
	// Range error without adaptive.
	big := writeTemp(t, "1e300\n")
	if err := run(2, 1, false, false, false, []string{big}, &out); err == nil {
		t.Error("overflow not surfaced")
	}
	// Invalid params.
	small := writeTemp(t, "1\n")
	if err := run(2, 5, false, false, false, []string{small}, &out); err == nil {
		t.Error("invalid params accepted")
	}
	// Missing file.
	if err := run(6, 3, false, false, false, []string{"/nonexistent/file"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}
