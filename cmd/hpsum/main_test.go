package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "values.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// serialCfg is the default flag set: -n 6 -k 3, everything else off.
func serialCfg() config {
	return config{params: core.Params{N: 6, K: 3}, ranks: 1}
}

func TestRunBasicSum(t *testing.T) {
	path := writeTemp(t, "1.5\n2.25\n# comment\n\n-0.75\n")
	var out strings.Builder
	if err := run(serialCfg(), []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "count: 3") {
		t.Errorf("missing count: %q", got)
	}
	if !strings.Contains(got, "hp sum: 3\n") {
		t.Errorf("missing sum: %q", got)
	}
}

func TestRunMultipleValuesPerLine(t *testing.T) {
	path := writeTemp(t, "1 2 3\n4 5\n")
	var out strings.Builder
	if err := run(serialCfg(), []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "count: 5") ||
		!strings.Contains(out.String(), "hp sum: 15") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunCompareAndExact(t *testing.T) {
	path := writeTemp(t, "0.1\n0.2\n-0.3\n")
	var out strings.Builder
	cfg := serialCfg()
	cfg.compare = true
	cfg.exactOut = true
	if err := run(cfg, []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"naive float64 sum:", "difference", "exact:"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestRunAdaptiveWideRange(t *testing.T) {
	path := writeTemp(t, "1e300\n-1e300\n2.5\n1e-300\n")
	var out strings.Builder
	cfg := config{params: core.Params{N: 2, K: 1}, adaptive: true, ranks: 1}
	if err := run(cfg, []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hp sum: 2.5") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	// Parse error.
	bad := writeTemp(t, "not-a-number\n")
	if err := run(serialCfg(), []string{bad}, &out); err == nil {
		t.Error("parse error not surfaced")
	}
	// Range error without adaptive.
	big := writeTemp(t, "1e300\n")
	if err := run(config{params: core.Params{N: 2, K: 1}, ranks: 1}, []string{big}, &out); err == nil {
		t.Error("overflow not surfaced")
	}
	// Invalid params.
	small := writeTemp(t, "1\n")
	if err := run(config{params: core.Params{N: 2, K: 5}, ranks: 1}, []string{small}, &out); err == nil {
		t.Error("invalid params accepted")
	}
	// Missing file.
	if err := run(serialCfg(), []string{"/nonexistent/file"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	// Adaptive mode cannot distribute.
	one := writeTemp(t, "1\n")
	cfg := serialCfg()
	cfg.adaptive = true
	cfg.ranks = 4
	if err := run(cfg, []string{one}, &out); err == nil ||
		!strings.Contains(err.Error(), "serial-only") {
		t.Errorf("adaptive+ranks error = %v", err)
	}
	// Fault plan without ranks.
	cfg = serialCfg()
	cfg.faultPlan = "seed=1;drop:p=0.5"
	if err := run(cfg, []string{one}, &out); err == nil ||
		!strings.Contains(err.Error(), "-ranks") {
		t.Errorf("fault plan without ranks error = %v", err)
	}
	// Malformed fault plan.
	cfg = serialCfg()
	cfg.ranks = 2
	cfg.faultPlan = "drop:p=banana"
	if err := run(cfg, []string{one}, &out); err == nil {
		t.Error("malformed fault plan accepted")
	}
}

// chaosInput builds an adversarial input file (mixed magnitudes and signs)
// and returns its path plus the serial reference output.
func chaosInput(t *testing.T, n int) (string, string) {
	t.Helper()
	r := rng.New(424242)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		// Magnitudes spread over ~12 orders so naive summation would lose
		// bits; HP must not.
		x := (r.Float64()*2 - 1) * float64(uint64(1)<<r.Intn(40))
		fmt.Fprintf(&sb, "%.17g\n", x/4096)
	}
	path := writeTemp(t, sb.String())
	var serial strings.Builder
	if err := run(serialCfg(), []string{path}, &serial); err != nil {
		t.Fatal(err)
	}
	return path, serial.String()
}

// sumLines extracts the "count:" and "hp sum:" lines, which must be
// byte-identical between serial and every distributed/chaos run.
func sumLines(t *testing.T, output string) string {
	t.Helper()
	var keep []string
	for _, line := range strings.Split(output, "\n") {
		if strings.HasPrefix(line, "count:") || strings.HasPrefix(line, "hp sum:") {
			keep = append(keep, line)
		}
	}
	if len(keep) != 2 {
		t.Fatalf("output missing sum lines: %q", output)
	}
	return strings.Join(keep, "\n")
}

func TestRunDistributedMatchesSerial(t *testing.T) {
	path, serial := chaosInput(t, 1000)
	cfg := serialCfg()
	cfg.ranks = 4
	cfg.checkpointInterval = 64
	var out strings.Builder
	if err := run(cfg, []string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if got, want := sumLines(t, out.String()), sumLines(t, serial); got != want {
		t.Errorf("distributed sum diverged:\n%s\nwant:\n%s", got, want)
	}
}

func TestRunDistributedUnderMessageFaultsMatchesSerial(t *testing.T) {
	path, serial := chaosInput(t, 600)
	for _, plan := range []string{
		"seed=21;drop:p=0.2",
		"seed=22;dup:p=0.3",
		"seed=23;corrupt:p=0.2",
		"seed=24;drop:p=0.1;delay:p=0.2,d=200us;dup:p=0.1;corrupt:p=0.1",
	} {
		t.Run(plan, func(t *testing.T) {
			cfg := serialCfg()
			cfg.ranks = 4
			cfg.checkpointInterval = 50
			cfg.faultPlan = plan
			cfg.stallTimeout = 30 * time.Second
			var out strings.Builder
			if err := run(cfg, []string{path}, &out); err != nil {
				t.Fatal(err)
			}
			if got, want := sumLines(t, out.String()), sumLines(t, serial); got != want {
				t.Errorf("sum diverged under %q:\n%s\nwant:\n%s", plan, got, want)
			}
			if !strings.Contains(out.String(), "faults injected:") {
				t.Errorf("missing fault summary in %q", out.String())
			}
		})
	}
}

func TestRunDistributedRecoversCrashedRank(t *testing.T) {
	path, serial := chaosInput(t, 800)
	// Small checkpoint interval → each rank's 200-value shard makes several
	// heartbeat sends, so the crash fires mid-accumulation and the recovery
	// replays from a partial checkpoint rather than from scratch.
	for _, plan := range []string{
		"seed=31;crash:rank=1,after=3",
		"seed=32;crash:rank=0,after=2", // leader crash
		"seed=33;crash:rank=2,after=0;drop:p=0.1",
	} {
		t.Run(plan, func(t *testing.T) {
			cfg := serialCfg()
			cfg.ranks = 4
			cfg.checkpointInterval = 40
			cfg.faultPlan = plan
			cfg.stallTimeout = 30 * time.Second
			var out strings.Builder
			if err := run(cfg, []string{path}, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			if g, want := sumLines(t, got), sumLines(t, serial); g != want {
				t.Errorf("sum diverged under %q:\n%s\nwant:\n%s", plan, g, want)
			}
			if !strings.Contains(got, "crash=1") {
				t.Errorf("crash did not fire: %q", got)
			}
		})
	}
}
