// Command hpsumd serves order-invariant summation as a network service: a
// sharded registry of named HP accumulators behind a streaming binary ingest
// API. Because HP addition is exactly associative and commutative, any
// number of clients may stream frames concurrently, in any interleaving,
// and the final sum is bit-identical to a serial pass — the service can
// shard, batch, and reorder freely without ever changing a ulp.
//
//	hpsumd -addr :8080                          # serve with Params384 default
//	hpsumd -addr :8080 -snapshot state.hpss     # snapshot on graceful shutdown
//	hpsumd -addr :8080 -restore state.hpss -snapshot state.hpss
//	hpsumd -addr :8080 -replicas 3              # 2-of-3 certified reads
//	hpsumd -addr :8080 -journal f.hpfj -audit-log a.hpal -audit-interval 30s
//	hpsumd -addr :8081 -node-id b -peers http://127.0.0.1:8080 \
//	    -gossip-interval 500ms -gossip-state b.hpgc   # join a gossip cluster
//
// With -peers (or -node-id) the daemon joins a gossip cluster: Brahms-style
// membership keeps a bounded peer view, and per-round anti-entropy
// exchanges HP envelope digests so every node converges to bit-identical
// cluster totals (served at /gossip/sum/<name>). -gossip-state persists the
// contribution store across restarts; a restarted node reseeds from it
// under a fresh epoch and catches up via anti-entropy.
//
// With -replicas n every accumulator runs n lock-step replicas and reads
// are served only under a k-of-n agreement certificate (fail-closed 503 on
// divergence; minority replicas are quarantined and reseeded). With
// -journal/-audit-log every accepted frame is journaled and each snapshot
// cut is chained into a hash-linked audit log that cmd/hpaudit can replay
// offline to prove the served totals.
//
// One listener carries both the service API (/v1/...) and the telemetry
// exporter (/metrics, /debug/vars, /debug/pprof/). SIGINT or SIGTERM
// triggers a graceful shutdown: stop accepting requests, drain every shard
// queue, write the snapshot (if -snapshot is set), then exit. Restarting
// with -restore reloads the snapshot byte-identically: the restored
// accumulators carry the exact limbs, counters, and sticky errors they held
// at shutdown, and adds accepted after restart continue the same exact
// trajectory.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gossip"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "hpsumd:", err)
		os.Exit(1)
	}
}

// run is main with injectable args and an optional ready channel (tests use
// it to learn the bound address of ":0" listeners). It returns once the
// server has fully shut down.
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("hpsumd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (service API + telemetry on one listener)")
		hpn         = fs.Int("n", 6, "default HP total limbs N for new accumulators")
		hpk         = fs.Int("k", 3, "default HP fractional limbs k")
		shards      = fs.Int("shards", runtime.GOMAXPROCS(0), "drain lanes per accumulator")
		queue       = fs.Int("queue", 256, "per-shard queue depth (backpressure bound)")
		wait        = fs.Duration("enqueue-wait", 5*time.Millisecond, "how long ingest waits for queue room before 429")
		snapshot    = fs.String("snapshot", "", "write a snapshot to this path on graceful shutdown")
		restore     = fs.String("restore", "", "reload accumulators from this snapshot at startup")
		replicas    = fs.Int("replicas", 1, "in-process replicas per accumulator (k-of-n certified reads)")
		quorum      = fs.Int("quorum", 0, "replicas that must agree to serve a read (0 = majority)")
		journal     = fs.String("journal", "", "append every accepted frame to this journal (required with -audit-log)")
		auditLog    = fs.String("audit-log", "", "append hash-linked audit records to this path (required with -journal)")
		auditEvery  = fs.Duration("audit-interval", 0, "cut a periodic audit record this often (0 = shutdown record only)")
		faultPlan   = fs.String("replica-fault-plan", "", "inject Byzantine replica faults, e.g. \"seed=7;lie:replica=1,limit=1\" (testing only)")
		peers       = fs.String("peers", "", "comma-separated peer base URLs to gossip with (enables clustering)")
		gossipEvery = fs.Duration("gossip-interval", time.Second, "push/pull round interval")
		gossipFan   = fs.Int("gossip-fanout", 2, "peers contacted per gossip round")
		nodeID      = fs.String("node-id", "", "stable cluster identity (default: the listen address; enables clustering)")
		gossipState = fs.String("gossip-state", "", "persist the gossip contribution store here on shutdown and reseed from it at startup")
		traceOn     = fs.Bool("trace", false, "record spans (export at /debug/trace as Chrome trace-event JSON)")
		traceSample = fs.Uint64("trace-sample", 1, "record 1 in every N traces (1 = all)")
		flightDump  = fs.String("flight-dump", "", "write flight-recorder JSON here on SIGQUIT, stall, crash, or 5xx")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := core.Params{N: *hpn, K: *hpk}
	if err := p.Validate(); err != nil {
		return err
	}
	if (*journal == "") != (*auditLog == "") {
		return fmt.Errorf("-journal and -audit-log must be set together")
	}
	if *traceOn {
		trace.SetEnabled(true)
		trace.SetSampling(*traceSample)
	}
	stopFlight := trace.StartFlightDump(*flightDump)
	defer stopFlight()

	var hook func(int, []byte) []byte
	if *faultPlan != "" {
		plan, err := faults.ParseReplicaPlan(*faultPlan)
		if err != nil {
			return fmt.Errorf("replica-fault-plan: %w", err)
		}
		hook = plan.NewReplicaInjector().OnReport
		fmt.Fprintf(os.Stderr, "hpsumd: WARNING: injecting replica faults (%s)\n", *faultPlan)
	}

	s := server.New(server.Config{
		Params:      p,
		Shards:      *shards,
		QueueDepth:  *queue,
		EnqueueWait: *wait,
		Replicas:    *replicas,
		Quorum:      *quorum,
		ReportHook:  hook,
	})
	audited := *journal != ""
	if audited {
		// Before any accumulator exists, so the journal sees every frame.
		if err := s.EnableAudit(*journal, *auditLog); err != nil {
			return fmt.Errorf("enable audit: %w", err)
		}
		fmt.Fprintf(os.Stderr, "hpsumd: auditing to %s (journal %s)\n", *auditLog, *journal)
	}
	if *restore != "" {
		n, err := s.Restore(*restore)
		if err != nil {
			return fmt.Errorf("restore %s: %w", *restore, err)
		}
		fmt.Fprintf(os.Stderr, "hpsumd: restored %d accumulator(s) from %s\n", n, *restore)
	}

	// Service API takes /v1/; gossip (if enabled) takes /gossip; everything
	// else (/, /metrics, /debug/...) falls through to the telemetry
	// exporter. The gossip node needs the bound address for its own
	// identity, so the routes go in first through a holder that 503s until
	// the node exists.
	clustered := *peers != "" || *nodeID != ""
	var gnode atomic.Pointer[gossip.Node]
	mux := http.NewServeMux()
	mux.Handle("/v1/", s.Handler())
	if clustered {
		gossipHandler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n := gnode.Load()
			if n == nil {
				http.Error(w, "gossip: node starting", http.StatusServiceUnavailable)
				return
			}
			n.Handler().ServeHTTP(w, r)
		})
		mux.Handle("/gossip", gossipHandler)
		mux.Handle("/gossip/", gossipHandler)
	}
	mux.Handle("/", telemetry.Handler())
	srv, err := telemetry.ServeHandler(*addr, mux)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hpsumd: serving on %s (N=%d, k=%d, %d shards)\n", srv.Addr(), p.N, p.K, *shards)

	if clustered {
		id := *nodeID
		if id == "" {
			id = srv.Addr()
		}
		var seeds []gossip.Peer
		for _, u := range strings.Split(*peers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				seeds = append(seeds, gossip.Peer{ID: u, Addr: u})
			}
		}
		var recovery []byte
		epoch := uint64(time.Now().Unix())
		if *gossipState != "" {
			if blob, err := os.ReadFile(*gossipState); err == nil {
				// A lagging clock must not reuse a checkpointed epoch: the
				// restart always moves to a strictly newer one.
				if rec, err := gossip.NewStore(p).RestoreCheckpoint(blob); err == nil && rec >= epoch {
					epoch = rec + 1
				}
				recovery = blob
			}
		}
		n, err := gossip.NewNode(gossip.Config{
			Self:      gossip.Peer{ID: id, Addr: "http://" + srv.Addr()},
			Epoch:     epoch,
			Params:    p,
			Seeds:     seeds,
			Interval:  *gossipEvery,
			Fanout:    *gossipFan,
			Local:     gossip.ServerLocal{S: s},
			Transport: gossip.NewHTTPTransport(0),
			Recovery:  recovery,
		})
		if err != nil {
			srv.Close()
			s.Close()
			return fmt.Errorf("gossip: %w", err)
		}
		gnode.Store(n)
		n.Start()
		fmt.Fprintf(os.Stderr, "hpsumd: gossiping as %s (epoch %d, %d seed(s), every %s, fanout %d)\n",
			id, epoch, len(seeds), *gossipEvery, *gossipFan)
	}
	if ready != nil {
		ready <- srv.Addr()
	}

	// Periodic audit records ride a ticker; each cut is a quiescent-point
	// quorum read of every accumulator, chained into the log.
	stopAudit := make(chan struct{})
	var auditWG sync.WaitGroup
	if audited && *auditEvery > 0 {
		auditWG.Add(1)
		go func() {
			defer auditWG.Done()
			tick := time.NewTicker(*auditEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopAudit:
					return
				case <-tick.C:
					if _, err := s.AuditRecord("periodic"); err != nil {
						fmt.Fprintf(os.Stderr, "hpsumd: periodic audit: %v\n", err)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	got := <-sig
	fmt.Fprintf(os.Stderr, "hpsumd: %s: shutting down\n", got)

	// Shutdown order matters: stop the HTTP layer first so nothing can
	// enqueue anymore, snapshot and cut the shutdown audit record while the
	// shards are still draining (the flush ops queue behind every accepted
	// frame, so both reflect all acked work), and only then close the drain
	// goroutines and the audit files.
	close(stopAudit)
	auditWG.Wait()
	if n := gnode.Load(); n != nil {
		// Checkpoint before Close (a closed node cannot cut one), then
		// announce departure and stop gossiping before the listener drops.
		if *gossipState != "" {
			if blob, err := n.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "hpsumd: gossip checkpoint: %v\n", err)
			} else if err := os.WriteFile(*gossipState, blob, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "hpsumd: gossip state %s: %v\n", *gossipState, err)
			} else {
				fmt.Fprintf(os.Stderr, "hpsumd: gossip state written to %s\n", *gossipState)
			}
		}
		n.Close()
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "hpsumd: http shutdown: %v\n", err)
	}
	if *snapshot != "" {
		if err := s.Snapshot(*snapshot); err != nil {
			s.Close()
			return fmt.Errorf("snapshot %s: %w", *snapshot, err)
		}
		fmt.Fprintf(os.Stderr, "hpsumd: snapshot written to %s\n", *snapshot)
	}
	if audited {
		if rec, err := s.AuditRecord("sigterm"); err != nil {
			fmt.Fprintf(os.Stderr, "hpsumd: shutdown audit: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "hpsumd: audit record %d written\n", rec.Seq)
		}
	}
	s.Close()
	if audited {
		if err := s.CloseAudit(); err != nil {
			return fmt.Errorf("close audit: %w", err)
		}
	}
	return nil
}
