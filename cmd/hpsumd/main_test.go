package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/server"
)

// startDaemon runs the real hpsumd entrypoint on an ephemeral port and
// returns its base URL plus a channel that yields run's final error. Stop
// it by signalling the test process: run's signal.Notify handler picks it
// up exactly as a real deployment would.
func startDaemon(t *testing.T, extra ...string) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { done <- run(args, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, done
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
		return "", nil
	}
}

func stopDaemon(t *testing.T, done chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestServeSnapshotRestore is the full lifecycle the ISSUE acceptance
// demands: serve, stream, SIGTERM with -snapshot, then a second daemon with
// -restore must report the byte-identical certificate and continue the
// exact trajectory.
func TestServeSnapshotRestore(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.hpss")
	xs := rng.UniformSet(rng.New(11), 30000, -0.5, 0.5)

	url, done := startDaemon(t, "-snapshot", snap, "-shards", "2", "-queue", "8")
	c := &server.Client{Base: url, FrameLen: 1024}
	if _, err := c.Create("acc", core.Params{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream("acc", xs); err != nil {
		t.Fatal(err)
	}
	before, err := c.Get("acc")
	if err != nil {
		t.Fatal(err)
	}
	// Telemetry must ride the same listener as the service API.
	if names, err := c.List(); err != nil || len(names) != 1 {
		t.Fatalf("list: %v %v", names, err)
	}
	stopDaemon(t, done)
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	url2, done2 := startDaemon(t, "-restore", snap)
	c2 := &server.Client{Base: url2}
	after, err := c2.Get("acc")
	if err != nil {
		t.Fatal(err)
	}
	if after.HP != before.HP {
		t.Fatalf("restore lost bits:\n before %s\n  after %s", before.HP, after.HP)
	}
	if after.Adds != uint64(len(xs)) {
		t.Fatalf("adds %d, want %d", after.Adds, len(xs))
	}
	// Continue the trajectory: tail adds after restart agree with a single
	// serial pass over the full workload.
	tail := rng.UniformSet(rng.New(12), 5000, -0.5, 0.5)
	if _, err := c2.Stream("acc", tail); err != nil {
		t.Fatal(err)
	}
	final, err := c2.Get("acc")
	if err != nil {
		t.Fatal(err)
	}
	oracle := core.NewAccumulator(core.Params384)
	oracle.AddAll(xs)
	oracle.AddAll(tail)
	txt, err := oracle.Sum().MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if final.HP != string(txt) {
		t.Fatalf("post-restart trajectory diverged:\n server %s\n oracle %s", final.HP, txt)
	}
	stopDaemon(t, done2)
}

func TestTelemetrySharesListener(t *testing.T) {
	url, done := startDaemon(t)
	c := &server.Client{Base: url}
	if _, err := c.Create("m", core.Params{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream("m", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := httpGet(url + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp != 200 {
			t.Fatalf("GET %s: HTTP %d", path, resp)
		}
	}
	stopDaemon(t, done)
}

func httpGet(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-n", "2", "-k", "5"}, nil); err == nil {
		t.Fatal("invalid HP params accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-restore", "/no/such/snapshot"}, nil); err == nil {
		t.Fatal("missing restore file accepted")
	}
}

// TestReplicatedAuditedLifecycle drives the full Byzantine-auditable
// deployment: a replicated daemon with audit files, certified reads, a
// SIGTERM that chains a shutdown record, a restart that restores and keeps
// extending the same chain, and a final offline replay proving the totals.
func TestReplicatedAuditedLifecycle(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "state.hpss")
	jpath := filepath.Join(dir, "frames.hpfj")
	lpath := filepath.Join(dir, "audit.hpal")
	auditFlags := []string{"-replicas", "3", "-journal", jpath, "-audit-log", lpath, "-snapshot", snap}

	xs := rng.UniformSet(rng.New(13), 20000, -0.5, 0.5)
	url, done := startDaemon(t, append(auditFlags, "-shards", "2")...)
	c := &server.Client{Base: url, FrameLen: 1024}
	if _, err := c.Create("acc", core.Params{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream("acc", xs); err != nil {
		t.Fatal(err)
	}
	info, err := c.Get("acc")
	if err != nil {
		t.Fatal(err)
	}
	if info.Cert == nil || info.Cert.K != 2 || info.Cert.N != 3 {
		t.Fatalf("read not certified 2-of-3: %+v", info.Cert)
	}
	if err := info.Cert.Verify(info.HP); err != nil {
		t.Fatal(err)
	}
	stopDaemon(t, done)

	tail := rng.UniformSet(rng.New(14), 5000, -0.5, 0.5)
	url2, done2 := startDaemon(t, append(auditFlags, "-restore", snap)...)
	c2 := &server.Client{Base: url2, FrameLen: 1024}
	if _, err := c2.Stream("acc", tail); err != nil {
		t.Fatal(err)
	}
	stopDaemon(t, done2)

	// Offline replay over both daemon lifetimes.
	logData, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatal(err)
	}
	records, err := audit.ReadLog(logData)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("%d audit records, want 2 (one per SIGTERM)", len(records))
	}
	jf, err := os.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	res, err := audit.Verify(records, audit.NewJournalReader(jf))
	if err != nil {
		t.Fatalf("audit replay across restart failed: %v", err)
	}
	fe := res.Final["acc"]
	var fh core.HP
	if err := fh.UnmarshalBinary(fe.Env); err != nil {
		t.Fatal(err)
	}
	txt, err := fh.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	oracle := core.NewAccumulator(core.Params384)
	oracle.AddAll(xs)
	oracle.AddAll(tail)
	want, err := oracle.Sum().MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if string(txt) != string(want) {
		t.Fatalf("attested total diverges from oracle:\n attested %s\n oracle   %s", txt, want)
	}
	if fe.Adds != uint64(len(xs)+len(tail)) {
		t.Fatalf("attested adds %d, want %d", fe.Adds, len(xs)+len(tail))
	}
}

// TestGossipCluster: two clustered daemons, each ingesting its own slice of
// the workload into the same named accumulator, must converge to one
// bit-identical cluster total served from /gossip/sum on both nodes.
func TestGossipCluster(t *testing.T) {
	xs := rng.UniformSet(rng.New(23), 4000, -1, 1)
	half := len(xs) / 2

	urlA, doneA := startDaemon(t, "-node-id", "alpha", "-gossip-interval", "20ms")
	urlB, doneB := startDaemon(t, "-node-id", "beta", "-gossip-interval", "20ms",
		"-peers", urlA)

	for i, part := range [][]float64{xs[:half], xs[half:]} {
		c := &server.Client{Base: []string{urlA, urlB}[i]}
		if _, err := c.Create("t", core.Params{}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stream("t", part); err != nil {
			t.Fatal(err)
		}
	}

	oracle := core.NewAccumulator(core.Params384)
	oracle.AddAll(xs)
	txt, err := oracle.Sum().MarshalText()
	if err != nil {
		t.Fatal(err)
	}

	read := func(base string) (gossip.ClusterInfo, error) {
		var info gossip.ClusterInfo
		resp, err := http.Get(base + "/gossip/sum/t")
		if err != nil {
			return info, err
		}
		defer resp.Body.Close()
		return info, json.NewDecoder(resp.Body).Decode(&info)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		a, errA := read(urlA)
		b, errB := read(urlB)
		if errA == nil && errB == nil &&
			a.Adds == uint64(len(xs)) && a.Digest == b.Digest && a.HP == string(txt) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged:\n a=%+v (%v)\n b=%+v (%v)\n oracle %s",
				a, errA, b, errB, txt)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Membership is mutual even though only beta was seeded.
	resp, err := http.Get(urlA + "/gossip/peers")
	if err != nil {
		t.Fatal(err)
	}
	var peersReplyA struct {
		Peers []gossip.Peer `json:"peers"`
	}
	err = json.NewDecoder(resp.Body).Decode(&peersReplyA)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range peersReplyA.Peers {
		if p.ID == "beta" {
			found = true
		}
	}
	if !found {
		t.Fatalf("alpha never learned beta: %+v", peersReplyA.Peers)
	}

	// One SIGTERM reaches both daemons; each must shut down cleanly.
	stopDaemon(t, doneA)
	select {
	case err := <-doneB:
		if err != nil {
			t.Fatalf("second daemon shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second daemon did not shut down")
	}
}
