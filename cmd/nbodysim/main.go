// Command nbodysim runs the reproducible N-body engine: the paper's
// motivating application as a tool. It integrates a random gravitational
// or Lennard-Jones system, reports energy drift, and in -verify mode runs
// the same simulation under several worker decompositions and compares
// state fingerprints — demonstrating (or, in float64 mode, refuting)
// bit-reproducibility.
//
//	nbodysim -n 64 -steps 500 -mode hp -verify
//	nbodysim -n 64 -steps 500 -mode float64 -verify
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

func main() {
	var (
		n       = flag.Int("n", 64, "particle count")
		steps   = flag.Int("steps", 200, "integration steps")
		dt      = flag.Float64("dt", 1e-3, "time step")
		workers = flag.Int("workers", 4, "force-pass workers")
		modeStr = flag.String("mode", "hp", "force accumulation: hp | float64")
		force   = flag.String("force", "gravity", "force law: gravity | lj")
		seed    = flag.Uint64("seed", 2016, "initial-condition seed")
		verify  = flag.Bool("verify", false, "run with several worker counts and compare fingerprints")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (enables telemetry)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stop, err := telemetry.StartFromFlags(*metricsAddr, *cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nbodysim: %v\n", err)
		os.Exit(1)
	}
	if err := run(*n, *steps, *dt, *workers, *modeStr, *force, *seed, *verify, os.Stdout); err != nil {
		stop()
		fmt.Fprintf(os.Stderr, "nbodysim: %v\n", err)
		os.Exit(1)
	}
	stop()
}

func run(n, steps int, dt float64, workers int, modeStr, forceStr string,
	seed uint64, verify bool, out io.Writer) error {
	var mode nbody.Mode
	switch modeStr {
	case "hp":
		mode = nbody.HPMode
	case "float64":
		mode = nbody.Float64Mode
	default:
		return fmt.Errorf("unknown mode %q", modeStr)
	}
	var force nbody.Force
	switch forceStr {
	case "gravity":
		force = nbody.Gravity{G: 1, Softening2: 0.05}
	case "lj":
		force = nbody.LennardJones{Epsilon: 0.1, Sigma: 0.3}
	default:
		return fmt.Errorf("unknown force %q", forceStr)
	}

	base := nbody.RandomSystem(rng.New(seed), n)
	cfg := nbody.Config{Force: force, DT: dt, Workers: workers, Mode: mode}

	simulate := func(w int) (*nbody.Sim, error) {
		c := cfg
		c.Workers = w
		s, err := nbody.New(base.Clone(), c)
		if err != nil {
			return nil, err
		}
		return s, s.Steps(steps)
	}

	s, err := simulate(workers)
	if err != nil {
		return err
	}
	ke, pe, err := s.Energy()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: n=%d steps=%d dt=%g mode=%s workers=%d\n",
		force.Name(), n, steps, dt, mode, workers)
	fmt.Fprintf(out, "final energy: kinetic %.10g, potential %.10g, total %.10g\n",
		ke, pe, ke+pe)
	fx, fy, fz, err := s.NetForce()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "net force (exact HP sum): (%s, %s, %s)\n", fx, fy, fz)
	fmt.Fprintf(out, "fingerprint: %s\n", s.Fingerprint())

	if !verify {
		return nil
	}
	fmt.Fprintf(out, "\nverify: rerunning with worker counts 1, 2, 3, 8\n")
	ref := ""
	identical := true
	for _, w := range []int{1, 2, 3, 8} {
		sw, err := simulate(w)
		if err != nil {
			return err
		}
		fp := sw.Fingerprint()
		fmt.Fprintf(out, "  workers=%d  %s\n", w, fp[:16])
		if ref == "" {
			ref = fp
		} else if fp != ref {
			identical = false
		}
	}
	if identical {
		fmt.Fprintln(out, "verify: PASS — all decompositions bit-identical")
	} else {
		fmt.Fprintln(out, "verify: DIVERGED — trajectories depend on the decomposition")
		if mode == nbody.HPMode {
			return fmt.Errorf("HP mode diverged: this is a bug")
		}
	}
	return nil
}
