package main

import (
	"strings"
	"testing"
)

func TestRunHPVerifyPasses(t *testing.T) {
	var out strings.Builder
	if err := run(16, 10, 1e-3, 2, "hp", "gravity", 1, true, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verify: PASS") {
		t.Errorf("HP verify did not pass:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "net force (exact HP sum): (0, 0, 0)") {
		t.Errorf("net force not exactly zero:\n%s", out.String())
	}
}

func TestRunFloat64Mode(t *testing.T) {
	var out strings.Builder
	// float64 mode may or may not diverge at this tiny size; it must not
	// error either way.
	if err := run(16, 10, 1e-3, 2, "float64", "gravity", 1, true, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fingerprint:") {
		t.Error("missing fingerprint")
	}
}

func TestRunLennardJones(t *testing.T) {
	var out strings.Builder
	if err := run(12, 5, 1e-4, 1, "hp", "lj", 2, false, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "lennard-jones") {
		t.Error("missing force name")
	}
}

func TestRunValidation(t *testing.T) {
	var out strings.Builder
	if err := run(8, 1, 1e-3, 1, "quantum", "gravity", 1, false, &out); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run(8, 1, 1e-3, 1, "hp", "strong-nuclear", 1, false, &out); err == nil {
		t.Error("bad force accepted")
	}
}
