// Command roundoff explores floating-point rounding error interactively:
// it builds a zero-sum set of n semi-random values (paper §II.A), sums it
// in many random orders with each summation algorithm, and reports the
// error statistics — a compact, runnable version of the paper's Figures 1
// and 2 plus the compensated baselines.
//
//	roundoff -n 1024 -trials 4096
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/bench"
	"repro/internal/binned"
	"repro/internal/core"
	"repro/internal/floatsum"
	"repro/internal/hallberg"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	var (
		n      = flag.Int("n", 1024, "set size (even)")
		trials = flag.Int("trials", 4096, "random-order trials")
		maxMag = flag.Float64("max", 0.001, "value magnitude bound")
		seed   = flag.Uint64("seed", 2016, "RNG seed")
	)
	flag.Parse()
	if err := run(*n, *trials, *maxMag, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "roundoff: %v\n", err)
		os.Exit(1)
	}
}

func run(n, trials int, maxMag float64, seed uint64) error {
	if n < 2 || n%2 != 0 {
		return fmt.Errorf("n must be even and >= 2, got %d", n)
	}
	if trials < 1 {
		return fmt.Errorf("trials must be >= 1, got %d", trials)
	}
	r := rng.New(seed)
	set := rng.ZeroSum(r, n, maxMag)
	hallP := hallberg.New(6, 40)
	binW, err := binned.WFor(int64(n))
	if err != nil {
		return err
	}

	type method struct {
		name string
		sum  func(xs []float64) (float64, error)
	}
	methods := []method{
		{"naive float64", func(xs []float64) (float64, error) {
			return floatsum.Naive(xs), nil
		}},
		{"pairwise", func(xs []float64) (float64, error) {
			return floatsum.Pairwise(xs), nil
		}},
		{"kahan", func(xs []float64) (float64, error) {
			return floatsum.Kahan(xs), nil
		}},
		{"neumaier", func(xs []float64) (float64, error) {
			return floatsum.Neumaier(xs), nil
		}},
		{"sorted |x|", func(xs []float64) (float64, error) {
			return floatsum.SortedByMagnitude(xs), nil
		}},
		{"expansion", func(xs []float64) (float64, error) {
			return floatsum.ExpansionSum(xs), nil
		}},
		{"hallberg(6,40)", func(xs []float64) (float64, error) {
			return hallberg.Sum(hallP, xs)
		}},
		{fmt.Sprintf("binned W=%d", binW), func(xs []float64) (float64, error) {
			return binned.Sum(binW, xs)
		}},
		{"HP(3,2)", func(xs []float64) (float64, error) {
			return core.Sum(core.Params192, xs)
		}},
	}

	runs := make([]stats.Running, len(methods))
	exactZero := make([]bool, len(methods))
	for i := range exactZero {
		exactZero[i] = true
	}
	for t := 0; t < trials; t++ {
		xs := rng.Reorder(r, set)
		for i, m := range methods {
			v, err := m.sum(xs)
			if err != nil {
				return fmt.Errorf("%s: %w", m.name, err)
			}
			runs[i].Add(v)
			if v != 0 {
				exactZero[i] = false
			}
		}
	}

	fmt.Printf("zero-sum set: n=%d, |x| <= %g, true sum = 0, %d random-order trials\n\n",
		n, maxMag, trials)
	tbl := &bench.Table{
		Headers: []string{"method", "mean", "sigma", "max|error|", "always_exact"},
	}
	for i, m := range methods {
		maxAbs := math.Max(math.Abs(runs[i].Min()), math.Abs(runs[i].Max()))
		tbl.AddRow(m.name, bench.F(runs[i].Mean()), bench.F(runs[i].StdDev()),
			bench.F(maxAbs), fmt.Sprintf("%v", exactZero[i]))
	}
	tbl.Fprint(os.Stdout)
	fmt.Println("\nOnly the fixed-point methods return the true sum for every ordering;")
	fmt.Println("compensated methods shrink the error but remain order-dependent.")
	return nil
}
