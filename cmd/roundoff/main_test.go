package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run(64, 20, 0.001, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(3, 10, 0.001, 1); err == nil {
		t.Error("odd n accepted")
	}
	if err := run(0, 10, 0.001, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if err := run(64, 0, 0.001, 1); err == nil {
		t.Error("trials=0 accepted")
	}
}
