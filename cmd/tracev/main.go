// Command tracev validates observability artifacts produced by the trace
// package: flight-recorder dumps (the schema-versioned JSON written on
// SIGQUIT, stall-watchdog trips, injected crashes, and server 5xx) and
// Chrome trace-event JSON exported at /debug/trace. CI's trace smoke job
// uses it to prove that a soaked, faulted, SIGQUIT-ed run leaves behind
// artifacts a human (or Perfetto) can actually open.
//
//	tracev -flight dump.json                   # validate a flight-recorder dump
//	tracev -flight dump.json -reason stall-watchdog
//	tracev -flight dump.json -expect-event mpi/stall-edge
//	tracev -chrome trace.json                  # validate Chrome trace-event JSON
//	tracev -chrome trace.json -min-events 10
//
// Exit status 0 means every requested check passed; any structural problem,
// schema mismatch, or unmet expectation is reported on stderr and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/trace"
)

func main() {
	var (
		flight      = flag.String("flight", "", "flight-recorder dump JSON to validate")
		reason      = flag.String("reason", "", "require the flight dump's trip reason to equal this")
		expectEvent = flag.String("expect-event", "", "comma-separated subsystem/event names the flight dump must contain, e.g. 'mpi/stall-edge,server/backpressure-429'")
		chrome      = flag.String("chrome", "", "Chrome trace-event JSON (from /debug/trace) to validate")
		minEvents   = flag.Int("min-events", 1, "minimum traceEvents the Chrome trace must contain")
	)
	flag.Parse()
	if *flight == "" && *chrome == "" {
		fmt.Fprintln(os.Stderr, "tracev: nothing to do; pass -flight and/or -chrome")
		flag.Usage()
		os.Exit(2)
	}
	if *flight != "" {
		if err := checkFlight(*flight, *reason, *expectEvent); err != nil {
			fmt.Fprintln(os.Stderr, "tracev:", err)
			os.Exit(1)
		}
	}
	if *chrome != "" {
		if err := checkChrome(*chrome, *minEvents); err != nil {
			fmt.Fprintln(os.Stderr, "tracev:", err)
			os.Exit(1)
		}
	}
}

func checkFlight(path, wantReason, expectEvents string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	d, err := trace.ValidateDump(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if wantReason != "" && d.Reason != wantReason {
		return fmt.Errorf("%s: trip reason %q, want %q", path, d.Reason, wantReason)
	}
	if expectEvents != "" {
		for _, want := range strings.Split(expectEvents, ",") {
			want = strings.TrimSpace(want)
			if want == "" {
				continue
			}
			sub, name, ok := strings.Cut(want, "/")
			if !ok {
				return fmt.Errorf("-expect-event %q: want subsystem/name", want)
			}
			if !hasEvent(d, sub, name) {
				return fmt.Errorf("%s: no %q event in subsystem %q (reason %q, subsystems %v)",
					path, name, sub, d.Reason, subsystemNames(d))
			}
		}
	}
	events := 0
	for _, evs := range d.Subsystems {
		events += len(evs)
	}
	fmt.Printf("%s: ok (schema %s, reason %q, %d subsystems, %d events, %d in-flight spans, %d slow ops)\n",
		path, trace.DumpSchema, d.Reason, len(d.Subsystems), events, len(d.InFlight), len(d.SlowOps))
	return nil
}

func hasEvent(d *trace.Dump, sub, name string) bool {
	for _, ev := range d.Subsystems[sub] {
		if ev.Name == name {
			return true
		}
	}
	return false
}

func subsystemNames(d *trace.Dump) []string {
	names := make([]string, 0, len(d.Subsystems))
	for name := range d.Subsystems {
		names = append(names, name)
	}
	return names
}

func checkChrome(path string, minEvents int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	n, err := trace.ValidateChromeTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if n < minEvents {
		return fmt.Errorf("%s: %d trace events, want at least %d", path, n, minEvents)
	}
	fmt.Printf("%s: ok (%d Chrome trace events)\n", path, n)
	return nil
}
