// Command verify produces and checks reproducibility certificates: the
// exact accumulator states (hex limbs) after running canonical seeded
// workloads through every order-invariant method in this repository, with
// sequential and parallel evaluation. Because the methods reduce real
// arithmetic to integer arithmetic, the certificate must be byte-identical
// on every machine, OS, and Go release.
//
//	verify > cert.txt          # on machine A
//	verify -check cert.txt     # on machine B: exits 1 on any mismatch
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/binned"
	"repro/internal/core"
	"repro/internal/hallberg"
	"repro/internal/rng"
)

func main() {
	check := ""
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-check", "--check":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "verify: -check needs a file")
				os.Exit(2)
			}
			i++
			check = args[i]
		case "-h", "-help", "--help":
			fmt.Println("usage: verify [-check cert.txt]")
			return
		default:
			fmt.Fprintf(os.Stderr, "verify: unknown flag %q\n", args[i])
			os.Exit(2)
		}
	}

	if check == "" {
		if err := emit(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "verify: %v\n", err)
			os.Exit(1)
		}
		return
	}
	f, err := os.Open(check)
	if err != nil {
		fmt.Fprintf(os.Stderr, "verify: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	mismatches, err := compare(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "verify: %v\n", err)
		os.Exit(1)
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "verify: %d certificate line(s) mismatched\n", mismatches)
		os.Exit(1)
	}
	fmt.Println("certificate verified: all sums bit-identical")
}

// entries computes the certificate lines in a fixed order.
func entries() ([][2]string, error) {
	var out [][2]string
	add := func(name, value string) { out = append(out, [2]string{name, value}) }

	hpText := func(h *core.HP) string {
		t, _ := h.MarshalText()
		return string(t)
	}

	// HP over the three canonical workloads, sequential and parallel.
	uni := rng.UniformSet(rng.New(2016), 1<<20, -0.5, 0.5)
	seqU, err := repro.SumHP(repro.Params384, uni)
	if err != nil {
		return nil, fmt.Errorf("hp-uniform: %w", err)
	}
	add("hp-uniform-seq", hpText(seqU))
	parU, err := repro.ParallelSumHP(repro.Params384, uni, 8)
	if err != nil {
		return nil, fmt.Errorf("hp-uniform-par: %w", err)
	}
	add("hp-uniform-par8", hpText(parU))

	wide := rng.WideRangeQuantized(rng.New(7), 1<<18, -223, 191, -256)
	seqW, err := repro.SumHP(repro.Params512, wide)
	if err != nil {
		return nil, fmt.Errorf("hp-widerange: %w", err)
	}
	add("hp-widerange-seq", hpText(seqW))

	zero := rng.ZeroSum(rng.New(3), 1<<16, 0.001)
	seqZ, err := repro.SumHP(repro.Params192, zero)
	if err != nil {
		return nil, fmt.Errorf("hp-zerosum: %w", err)
	}
	add("hp-zerosum-seq", hpText(seqZ))

	r := rng.New(99)
	xs := rng.UniformSet(r, 1<<16, -1, 1)
	ys := rng.UniformSet(r, 1<<16, -1, 1)
	dot, err := repro.DotHP(repro.Params512, xs, ys)
	if err != nil {
		return nil, fmt.Errorf("hp-dot: %w", err)
	}
	add("hp-dot-seq", hpText(dot))

	// Hallberg limbs (normalized canonical form).
	hp := hallberg.New(10, 38)
	hacc := hallberg.NewAccumulator(hp)
	hacc.AddAll(uni[:1<<18])
	if hacc.Err() != nil {
		return nil, fmt.Errorf("hallberg: %w", hacc.Err())
	}
	if _, err := hacc.Sum().Normalize(); err != nil {
		return nil, fmt.Errorf("hallberg normalize: %w", err)
	}
	add("hallberg-uniform-seq", fmt.Sprintf("%x", hacc.Sum().Limbs()))

	// Binned bins (float64 bit patterns).
	bacc := binned.New(30)
	bacc.AddAll(uni[:1<<18])
	if bacc.Err() != nil {
		return nil, fmt.Errorf("binned: %w", bacc.Err())
	}
	var sb strings.Builder
	for _, v := range bacc.Bins() {
		if v != 0 {
			fmt.Fprintf(&sb, "%x.", v)
		}
	}
	add("binned-uniform-seq", sb.String())

	return out, nil
}

// emit writes the certificate to w.
func emit(w io.Writer) error {
	es, err := entries()
	if err != nil {
		return err
	}
	for _, e := range es {
		if _, err := fmt.Fprintf(w, "%s\t%s\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return nil
}

// compare recomputes the certificate and diffs it against r, returning the
// number of mismatched or missing lines.
func compare(r io.Reader) (int, error) {
	es, err := entries()
	if err != nil {
		return 0, err
	}
	want := make(map[string]string, len(es))
	order := make([]string, 0, len(es))
	for _, e := range es {
		want[e[0]] = e[1]
		order = append(order, e[0])
	}
	got := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, "\t")
		if !ok {
			return 0, fmt.Errorf("malformed certificate line %q", line)
		}
		got[name] = value
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	mismatches := 0
	for _, name := range order {
		switch {
		case got[name] == "":
			fmt.Fprintf(os.Stderr, "missing: %s\n", name)
			mismatches++
		case got[name] != want[name]:
			fmt.Fprintf(os.Stderr, "MISMATCH %s:\n  theirs %s\n  ours   %s\n",
				name, got[name], want[name])
			mismatches++
		}
	}
	return mismatches, nil
}
