package main

import (
	"strings"
	"testing"
)

func TestEmitAndVerifyRoundTrip(t *testing.T) {
	var cert strings.Builder
	if err := emit(&cert); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cert.String(), "hp-uniform-seq\thp:6,3:") {
		t.Errorf("certificate missing expected entry:\n%s", cert.String())
	}
	// Self-verification must pass.
	mismatches, err := compare(strings.NewReader(cert.String()))
	if err != nil {
		t.Fatal(err)
	}
	if mismatches != 0 {
		t.Errorf("self-verification found %d mismatches", mismatches)
	}
}

func TestSequentialEqualsParallelInCertificate(t *testing.T) {
	es, err := entries()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]string{}
	for _, e := range es {
		vals[e[0]] = e[1]
	}
	if vals["hp-uniform-seq"] != vals["hp-uniform-par8"] {
		t.Error("sequential and 8-worker sums differ in the certificate")
	}
	// The zero-sum workload must certify as exactly zero.
	if !strings.Contains(vals["hp-zerosum-seq"], ":000000000000000") {
		t.Errorf("zero-sum certificate not zero: %s", vals["hp-zerosum-seq"])
	}
}

func TestCompareDetectsTampering(t *testing.T) {
	var cert strings.Builder
	if err := emit(&cert); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(cert.String(), "hp:6,3:", "hp:6,3:f", 1)
	mismatches, err := compare(strings.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	if mismatches == 0 {
		t.Error("tampered certificate verified")
	}
	// Missing lines are detected too.
	short := strings.SplitN(cert.String(), "\n", 2)[1]
	mismatches, err = compare(strings.NewReader(short))
	if err != nil {
		t.Fatal(err)
	}
	if mismatches == 0 {
		t.Error("truncated certificate verified")
	}
	// Malformed lines are rejected.
	if _, err := compare(strings.NewReader("garbage-without-tab")); err == nil {
		t.Error("malformed certificate accepted")
	}
}
