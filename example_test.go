package repro_test

import (
	"fmt"

	"repro"
)

// The float64 sum of these three values depends on the order; the HP sum
// does not, and is exactly the rounded true value.
func ExampleSum() {
	naive := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	orderA := []float64{1 << 53, 1, -(1 << 53)} // the 1 is absorbed and lost
	orderB := []float64{1 << 53, -(1 << 53), 1} // the 1 survives
	sumA, err := repro.Sum(repro.Params384, orderA)
	if err != nil {
		panic(err)
	}
	sumB, err := repro.Sum(repro.Params384, orderB)
	if err != nil {
		panic(err)
	}
	fmt.Println("naive order A:", naive(orderA))
	fmt.Println("naive order B:", naive(orderB))
	fmt.Println("HP order A:   ", sumA)
	fmt.Println("HP order B:   ", sumB)
	// Output:
	// naive order A: 0
	// naive order B: 1
	// HP order A:    1
	// HP order B:    1
}

func ExampleAccumulator() {
	acc := repro.NewAccumulator(repro.Params384)
	for _, x := range []float64{0.1, 0.2, 0.3, -0.6} {
		acc.Add(x)
	}
	if err := acc.Err(); err != nil {
		panic(err)
	}
	// The exact sum of the BINARY values nearest those decimals is not 0;
	// HP reports it faithfully instead of hiding it.
	fmt.Printf("%.17g\n", acc.Float64())
	// Output:
	// 2.7755575615628914e-17
}

func ExampleParallelSum() {
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = 0.1
	}
	s1, _ := repro.ParallelSum(repro.Params384, xs, 1)
	s8, _ := repro.ParallelSum(repro.Params384, xs, 8)
	fmt.Println("1 worker == 8 workers:", s1 == s8)
	// Output:
	// 1 worker == 8 workers: true
}

func ExampleAdaptiveSum() {
	// No format choice needed: any finite float64 works.
	sum, err := repro.AdaptiveSum([]float64{1e308, -1e308, 2.5, 1e-308})
	if err != nil {
		panic(err)
	}
	fmt.Println(sum)
	// Output:
	// 2.5
}

func ExampleDot() {
	// The large products cancel exactly; float64 loses the residual.
	xs := []float64{1e15, -1e15, 1}
	ys := []float64{1e15, 1e15, 0.5}
	naive := xs[0]*ys[0] + xs[1]*ys[1] + xs[2]*ys[2]
	dot, err := repro.Dot(repro.Params512, xs, ys)
	if err != nil {
		panic(err)
	}
	fmt.Println("naive:", naive)
	fmt.Println("exact:", dot)
	// Output:
	// naive: 0.5
	// exact: 0.5
}

func ExampleVariance() {
	// Textbook-formula variance of near-identical large values: exact
	// internally, so no catastrophic cancellation.
	v, err := repro.Variance(repro.Params512, []float64{1e9, 1e9 + 1, 1e9 + 2}, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output:
	// 1
}

func ExampleFromFloat64() {
	hp, err := repro.FromFloat64(repro.Params192, -0.8125)
	if err != nil {
		panic(err)
	}
	fmt.Println(hp.Float64())
	fmt.Println(hp.Rat().RatString())
	// Output:
	// -0.8125
	// -13/16
}
