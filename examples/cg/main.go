// Reproducible conjugate gradients.
//
//	go run ./examples/cg
//
// Krylov solvers are steered entirely by inner products: every alpha and
// beta is a ratio of dot products, so reduction rounding changes the
// search directions, the iterate path, and even the iteration count at
// which convergence is declared. This example solves the same SPD system
// twice — once with float64 dot products whose summation order differs
// between runs (simulating different worker decompositions), once with the
// exact repro.Dot — and compares the paths.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/rng"
)

const (
	dim  = 400
	iter = 200
	tol  = 1e-10
)

// matvec computes y = A x for the SPD tridiagonal-plus-rank-noise matrix
// A = tridiag(-1, d_i, -1) with d_i in [2.5, 3.5].
func matvec(diag []float64, x []float64) []float64 {
	n := len(x)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := diag[i] * x[i]
		if i > 0 {
			v -= x[i-1]
		}
		if i+1 < n {
			v -= x[i+1]
		}
		y[i] = v
	}
	return y
}

// dotFn computes a dot product; the two implementations below differ only
// in reduction strategy.
type dotFn func(a, b []float64) float64

// floatDot sums in blocks of the given width, mimicking a parallel
// reduction with that many workers.
func floatDot(blocks int) dotFn {
	return func(a, b []float64) float64 {
		n := len(a)
		partials := make([]float64, blocks)
		for w := 0; w < blocks; w++ {
			lo, hi := w*n/blocks, (w+1)*n/blocks
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a[i] * b[i]
			}
			partials[w] = s
		}
		s := 0.0
		for _, p := range partials {
			s += p
		}
		return s
	}
}

// exactDot is the order-invariant dot product.
func exactDot(a, b []float64) float64 {
	d, err := repro.Dot(repro.Params512, a, b)
	if err != nil {
		log.Fatal(err)
	}
	return d
}

// cg runs conjugate gradients and returns the iterate, the iterations
// used, and the final residual norm.
func cg(diag, rhs []float64, dot dotFn) ([]float64, int, float64) {
	n := len(rhs)
	x := make([]float64, n)
	r := append([]float64(nil), rhs...)
	p := append([]float64(nil), rhs...)
	rs := dot(r, r)
	k := 0
	for ; k < iter && math.Sqrt(rs) > tol; k++ {
		ap := matvec(diag, p)
		alpha := rs / dot(p, ap)
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		beta := rsNew / rs
		rs = rsNew
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
	}
	return x, k, math.Sqrt(rs)
}

func main() {
	r := rng.New(17)
	diag := make([]float64, dim)
	rhs := make([]float64, dim)
	for i := range diag {
		diag[i] = r.Uniform(2.5, 3.5)
		rhs[i] = r.Uniform(-1, 1)
	}

	fmt.Printf("CG on a %dx%d SPD system, tol %g\n\n", dim, dim, tol)
	fmt.Printf("%-28s %-6s %-14s %-24s\n", "dot product", "iters", "residual", "x[0]")

	solutions := map[float64]bool{}
	for _, blocks := range []int{1, 2, 4, 8, 16} {
		x, k, res := cg(diag, rhs, floatDot(blocks))
		solutions[x[0]] = true
		fmt.Printf("float64, %2d-block reduction  %-6d %-14.4g %-24.17g\n",
			blocks, k, res, x[0])
	}

	exactSeen := map[float64]bool{}
	for range []int{0, 1, 2} {
		x, k, res := cg(diag, rhs, exactDot)
		exactSeen[x[0]] = true
		fmt.Printf("%-28s %-6d %-14.4g %-24.17g\n", "exact (repro.Dot)", k, res, x[0])
	}

	fmt.Printf("\nfloat64 reductions: %d distinct solver paths across decompositions\n",
		len(solutions))
	fmt.Printf("exact reductions:   %d distinct path — same iterates everywhere\n",
		len(exactSeen))
}
