// Exact dot products: reproducible inner products for iterative solvers.
//
//	go run ./examples/dotprod
//
// Inner products are the other reduction at the heart of scientific codes
// (residual norms, conjugate-gradient coefficients). This example builds an
// ill-conditioned dot product whose float64 value is dominated by rounding
// error, then computes it exactly with repro.Dot, which splits every
// product error-free before accumulating into the HP fixed-point sum.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/rng"
)

func main() {
	// An ill-conditioned pair: huge cancelling products hide a small
	// residual. Condition number ~1e32.
	r := rng.New(13)
	n := 100_000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i += 2 {
		big := math.Ldexp(1+r.Float64(), 50)
		xs[i], ys[i] = big, big
		xs[i+1], ys[i+1] = big, -big // cancels the previous product exactly
	}
	// Hide a tiny signal at the end, leaving every cancelling pair intact.
	xs = append(xs, 3)
	ys = append(ys, 0.125)
	n = len(xs)

	// Plain float64 dot product, two different loop orders.
	fwd := 0.0
	for i := 0; i < n; i++ {
		fwd += xs[i] * ys[i]
	}
	rev := 0.0
	for i := n - 1; i >= 0; i-- {
		rev += xs[i] * ys[i]
	}

	exactDot, err := repro.Dot(repro.Params512, xs, ys)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n = %d, true dot product = 0.375 (all large products cancel)\n\n", n)
	fmt.Printf("float64, forward loop:   %.17g\n", fwd)
	fmt.Printf("float64, reverse loop:   %.17g\n", rev)
	fmt.Printf("repro.Dot (exact):       %.17g\n", exactDot)

	if exactDot == 0.375 {
		fmt.Println("\nThe exact dot product recovered the hidden signal;")
		fmt.Println("the float64 loops returned order-dependent noise.")
	} else {
		fmt.Println("\nUNEXPECTED: exact dot product is wrong!")
	}
}
