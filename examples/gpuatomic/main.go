// GPU-style atomic accumulation demo: the paper's Figure 7 kernel
// structure and the §III.B.2 atomicity property.
//
//	go run ./examples/gpuatomic
//
// Thousands of simulated device threads race to accumulate a large array
// into 256 shared partial sums, each thread updating partial (t mod 256)
// with atomic operations — compare-and-swap loops for the double-precision
// baseline (as CUDA required before compute capability 6.0) and the HP
// CAS adder for the high-precision sums. The float64 result changes from
// launch to launch; the HP result is bit-identical every time.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cuda"
	"repro/internal/rng"
)

const (
	nValues      = 1 << 20
	partialCount = 256
)

func main() {
	r := rng.New(9)
	xs := rng.UniformSet(r, nValues, -0.5, 0.5)
	device := cuda.TeslaK20m()
	params := repro.Params384

	fmt.Printf("%s: %d values, %d shared partial sums\n\n", device.Name, nValues, partialCount)
	fmt.Printf("%-10s %-14s %-26s %-20s\n", "launch", "geometry", "float64 atomics", "HP atomics")

	seqHP, err := repro.SumHP(params, xs)
	if err != nil {
		log.Fatal(err)
	}

	doubleSeen := map[float64]bool{}
	hpAllEqual := true
	for launch, threads := range map[int]int{0: 1024, 1: 1024, 2: 4096, 3: 16384} {
		cfg := cuda.Config{Blocks: threads / 256, ThreadsPerBlock: 256}

		// float64: per-element CAS adds into the shared partials.
		dPartials := make([]cuda.AtomicFloat64, partialCount)
		if err := device.Launch(cfg, func(tc cuda.ThreadCtx) {
			total := tc.Cfg.Threads()
			dst := &dPartials[tc.Global%partialCount]
			for i := tc.Global; i < nValues; i += total {
				dst.Add(xs[i])
			}
		}); err != nil {
			log.Fatal(err)
		}
		dSum := 0.0
		for i := range dPartials {
			dSum += dPartials[i].Load()
		}

		// HP: the same kernel with the CAS-based HP atomic adder.
		hPartials := make([]*repro.Atomic, partialCount)
		for i := range hPartials {
			hPartials[i] = repro.NewAtomic(params)
		}
		if err := device.Launch(cfg, func(tc cuda.ThreadCtx) {
			total := tc.Cfg.Threads()
			dst := hPartials[tc.Global%partialCount]
			for i := tc.Global; i < nValues; i += total {
				if err := dst.AddFloat64CAS(xs[i]); err != nil {
					panic(err)
				}
			}
		}); err != nil {
			log.Fatal(err)
		}
		hSum := repro.NewAccumulator(params)
		for _, p := range hPartials {
			hSum.AddHP(p.Snapshot())
		}
		if err := hSum.Err(); err != nil {
			log.Fatal(err)
		}
		if !hSum.Sum().Equal(seqHP) {
			hpAllEqual = false
		}
		doubleSeen[dSum] = true
		fmt.Printf("%-10d %-14s %-26.18g %-20.18g\n",
			launch, fmt.Sprintf("%dx%d", cfg.Blocks, cfg.ThreadsPerBlock),
			dSum, hSum.Float64())
	}

	fmt.Printf("\nfloat64 atomics: %d distinct results across launches (scheduling-dependent)\n",
		len(doubleSeen))
	if hpAllEqual {
		fmt.Println("HP atomics: every launch matched the sequential sum bit-for-bit.")
	} else {
		fmt.Println("UNEXPECTED: HP result varied!")
	}
}
