// Reproducible Monte Carlo integration.
//
//	go run ./examples/montecarlo
//
// Monte Carlo estimates are means of millions of small contributions — the
// exact workload where parallel reduction order perturbs results. This
// example integrates f(x) = exp(-x^2) over [0, 1] with 4M samples, first
// with float64 partial sums (the estimate changes with the worker count),
// then with HP partial sums (bit-identical for every decomposition — so a
// checkpoint/restart on different hardware reproduces the published
// number).
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/omp"
	"repro/internal/rng"
)

const samples = 1 << 22

func f(x float64) float64 { return math.Exp(-x * x) }

// sample returns the i-th quasi-deterministic sample point: every worker
// decomposition evaluates the same multiset of points, isolating the
// reduction order as the only difference.
func samplePoints() []float64 {
	r := rng.New(2016)
	xs := make([]float64, samples)
	for i := range xs {
		xs[i] = r.Float64()
	}
	return xs
}

func estimateFloat64(points []float64, workers int) float64 {
	team := omp.NewTeam(workers)
	total := omp.Reduce(team, len(points),
		func(int) *float64 { v := 0.0; return &v },
		func(local *float64, _, lo, hi int) {
			s := 0.0
			for _, x := range points[lo:hi] {
				s += f(x)
			}
			*local += s
		},
		func(into, from *float64) { *into += *from })
	return *total / samples
}

func estimateHP(points []float64, workers int) (float64, error) {
	team := omp.NewTeam(workers)
	total := omp.Reduce(team, len(points),
		func(int) *repro.Accumulator { return repro.NewAccumulator(repro.Params384) },
		func(local *repro.Accumulator, _, lo, hi int) {
			for _, x := range points[lo:hi] {
				local.Add(f(x))
			}
		},
		func(into, from *repro.Accumulator) { into.Merge(from) })
	if err := total.Err(); err != nil {
		return 0, err
	}
	return total.Float64() / samples, nil
}

func main() {
	points := samplePoints()
	truth := 0.7468241328124271 // erf(1) * sqrt(pi) / 2

	fmt.Printf("∫₀¹ exp(-x²) dx with %d samples (true value %.16g)\n\n", samples, truth)
	fmt.Printf("%-9s %-24s %-24s\n", "workers", "float64 estimate", "HP estimate")

	floatSeen := map[float64]bool{}
	hpSeen := map[float64]bool{}
	for _, workers := range []int{1, 2, 3, 5, 8, 13} {
		fe := estimateFloat64(points, workers)
		he, err := estimateHP(points, workers)
		if err != nil {
			log.Fatal(err)
		}
		floatSeen[fe] = true
		hpSeen[he] = true
		fmt.Printf("%-9d %-24.17g %-24.17g\n", workers, fe, he)
	}
	fmt.Printf("\nfloat64: %d distinct estimates across worker counts\n", len(floatSeen))
	fmt.Printf("HP:      %d distinct estimate(s) — reduction order eliminated\n", len(hpSeen))
}
