// Distributed global reduction demo: the climate-model scenario behind the
// original Hallberg method and the paper's Figure 6 experiment.
//
//	go run ./examples/mpireduce
//
// A "planet" of grid cells is partitioned over MPI-style ranks. Each rank
// computes a local energy budget and the world reduces the partials with a
// custom reduction operator — once with MPI_SUM over doubles (the result
// depends on the world size) and once with the HP operator (bit-identical
// for every world size, so a restart on a different node count reproduces
// the same diagnostic output).
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/mpi"
	"repro/internal/rng"
)

const cells = 1 << 18 // global grid cells

// cellEnergy returns a synthetic per-cell energy anomaly: small positive
// and negative contributions that nearly cancel globally, like flux
// residuals in a conservation check.
func cellEnergy(i int) float64 {
	x := float64(i) * 1e-3
	return 1e-6 * (math.Sin(3*x) + 0.5*math.Sin(17*x+1) - 0.25*math.Cos(5*x))
}

func main() {
	// Precompute the grid once; ranks will slice into it by ownership.
	grid := make([]float64, cells)
	r := rng.New(4)
	for i := range grid {
		grid[i] = cellEnergy(i) + r.Uniform(-1e-9, 1e-9)
	}

	fmt.Printf("global energy budget over %d cells, reduced on varying world sizes\n\n", cells)
	fmt.Printf("%-8s %-26s %-26s\n", "ranks", "MPI_SUM over float64", "HP custom op")

	params := repro.Params384
	var hpRef string
	var doubleResults []float64
	for _, size := range []int{1, 2, 4, 8, 16, 32} {
		var doubleSum float64
		var hpSum *repro.HP
		err := mpi.Run(size, func(c *mpi.Comm) error {
			lo := c.Rank() * cells / size
			hi := (c.Rank() + 1) * cells / size

			// Conventional reduction: local float64 partial, MPI_SUM.
			local := 0.0
			for _, e := range grid[lo:hi] {
				local += e
			}
			dbuf, err := c.Reduce(0, mpi.EncodeFloat64s([]float64{local}), mpi.OpSumFloat64)
			if err != nil {
				return err
			}

			// Reproducible reduction: local HP partial, custom op.
			acc := repro.NewAccumulator(params)
			for _, e := range grid[lo:hi] {
				acc.Add(e)
			}
			if err := acc.Err(); err != nil {
				return err
			}
			hbuf, err := c.Reduce(0, mpi.EncodeHP(acc.Sum()), mpi.OpSumHP(params))
			if err != nil {
				return err
			}

			if c.Rank() == 0 {
				vals, err := mpi.DecodeFloat64s(dbuf)
				if err != nil {
					return err
				}
				doubleSum = vals[0]
				hpSum, err = mpi.DecodeHP(params, hbuf)
				if err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		hpHex := fmt.Sprintf("%x", hpSum.Limbs())
		if hpRef == "" {
			hpRef = hpHex
		} else if hpHex != hpRef {
			log.Fatalf("HP result changed with world size %d!", size)
		}
		doubleResults = append(doubleResults, doubleSum)
		fmt.Printf("%-8d %-26.18g %-26.18g\n", size, doubleSum, hpSum.Float64())
	}

	distinct := map[float64]bool{}
	for _, v := range doubleResults {
		distinct[v] = true
	}
	fmt.Printf("\nfloat64 reduction produced %d distinct answers across world sizes;\n", len(distinct))
	fmt.Println("the HP reduction produced one bit-identical answer (limbs verified equal).")
}
