// N-body reproducibility demo: the paper's motivating workload (§II.A).
//
//	go run ./examples/nbody
//
// A small gravitational N-body system is integrated twice with different
// parallel decompositions of the force accumulation. With plain float64
// accumulation the trajectories drift apart — the per-particle force sums
// pick up order-dependent rounding, which the symplectic integrator then
// amplifies step after step. With HP accumulation the two runs stay
// bit-identical for the whole simulation.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/omp"
	"repro/internal/rng"
)

const (
	nBodies = 64
	steps   = 2000
	dt      = 1e-3
	soft2   = 1e-4 // softening^2 keeps close encounters finite
)

type system struct {
	px, py, vx, vy, mass []float64
}

func newSystem(seed uint64) *system {
	r := rng.New(seed)
	s := &system{
		px: make([]float64, nBodies), py: make([]float64, nBodies),
		vx: make([]float64, nBodies), vy: make([]float64, nBodies),
		mass: make([]float64, nBodies),
	}
	for i := 0; i < nBodies; i++ {
		s.px[i] = r.Uniform(-1, 1)
		s.py[i] = r.Uniform(-1, 1)
		s.vx[i] = r.Uniform(-0.1, 0.1)
		s.vy[i] = r.Uniform(-0.1, 0.1)
		s.mass[i] = r.Uniform(0.5, 1.5)
	}
	return s
}

// pairForce returns the x/y force components exerted on body i by body j.
func (s *system) pairForce(i, j int) (fx, fy float64) {
	dx := s.px[j] - s.px[i]
	dy := s.py[j] - s.py[i]
	r2 := dx*dx + dy*dy + soft2
	inv := s.mass[i] * s.mass[j] / (r2 * math.Sqrt(r2))
	return dx * inv, dy * inv
}

// stepFloat64 advances the system one leapfrog step, accumulating each
// body's force with plain float64 adds. The per-body partial forces are
// computed by a team of workers, each covering a block of source bodies,
// and combined in worker order — so the ORDER of the additions depends on
// the worker count, and with it the rounded result.
func (s *system) stepFloat64(team *omp.Team) {
	n := nBodies
	type partial struct{ fx, fy []float64 }
	total := omp.Reduce(team, n,
		func(int) *partial {
			return &partial{fx: make([]float64, n), fy: make([]float64, n)}
		},
		func(p *partial, _, lo, hi int) {
			for j := lo; j < hi; j++ { // source bodies in this worker's block
				for i := 0; i < n; i++ {
					if i == j {
						continue
					}
					fx, fy := s.pairForce(i, j)
					p.fx[i] += fx
					p.fy[i] += fy
				}
			}
		},
		func(into, from *partial) {
			for i := 0; i < n; i++ {
				into.fx[i] += from.fx[i]
				into.fy[i] += from.fy[i]
			}
		})
	s.kick(func(i int) (float64, float64) { return total.fx[i], total.fy[i] })
}

// stepHP is stepFloat64 with HP force accumulators: the combined force is
// exact, so the result is independent of the worker decomposition.
func (s *system) stepHP(team *omp.Team, params repro.Params) error {
	n := nBodies
	type partial struct{ fx, fy []*repro.Accumulator }
	total := omp.Reduce(team, n,
		func(int) *partial {
			p := &partial{fx: make([]*repro.Accumulator, n), fy: make([]*repro.Accumulator, n)}
			for i := 0; i < n; i++ {
				p.fx[i] = repro.NewAccumulator(params)
				p.fy[i] = repro.NewAccumulator(params)
			}
			return p
		},
		func(p *partial, _, lo, hi int) {
			for j := lo; j < hi; j++ {
				for i := 0; i < n; i++ {
					if i == j {
						continue
					}
					fx, fy := s.pairForce(i, j)
					p.fx[i].Add(fx)
					p.fy[i].Add(fy)
				}
			}
		},
		func(into, from *partial) {
			for i := 0; i < n; i++ {
				into.fx[i].Merge(from.fx[i])
				into.fy[i].Merge(from.fy[i])
			}
		})
	for i := 0; i < n; i++ {
		if err := total.fx[i].Err(); err != nil {
			return err
		}
		if err := total.fy[i].Err(); err != nil {
			return err
		}
	}
	s.kick(func(i int) (float64, float64) {
		return total.fx[i].Float64(), total.fy[i].Float64()
	})
	return nil
}

// kick applies one leapfrog velocity+position update from the force getter.
func (s *system) kick(force func(i int) (fx, fy float64)) {
	for i := 0; i < nBodies; i++ {
		fx, fy := force(i)
		s.vx[i] += dt * fx / s.mass[i]
		s.vy[i] += dt * fy / s.mass[i]
	}
	for i := 0; i < nBodies; i++ {
		s.px[i] += dt * s.vx[i]
		s.py[i] += dt * s.vy[i]
	}
}

// maxDivergence returns the largest coordinate difference between two runs.
func maxDivergence(a, b *system) float64 {
	d := 0.0
	for i := 0; i < nBodies; i++ {
		d = math.Max(d, math.Abs(a.px[i]-b.px[i]))
		d = math.Max(d, math.Abs(a.py[i]-b.py[i]))
	}
	return d
}

func main() {
	fmt.Printf("N-body: %d bodies, %d leapfrog steps, dt=%g\n\n", nBodies, steps, dt)

	// Two decompositions of the same simulation.
	team1 := omp.NewTeam(1)
	team3 := omp.NewTeam(3)

	// float64 force accumulation.
	f1, f3 := newSystem(11), newSystem(11)
	for s := 0; s < steps; s++ {
		f1.stepFloat64(team1)
		f3.stepFloat64(team3)
	}
	fmt.Printf("float64 forces: max coordinate divergence (1 vs 3 workers) = %.3g\n",
		maxDivergence(f1, f3))

	// HP force accumulation.
	h1, h3 := newSystem(11), newSystem(11)
	for s := 0; s < steps; s++ {
		if err := h1.stepHP(team1, repro.Params384); err != nil {
			log.Fatal(err)
		}
		if err := h3.stepHP(team3, repro.Params384); err != nil {
			log.Fatal(err)
		}
	}
	div := maxDivergence(h1, h3)
	fmt.Printf("HP forces:      max coordinate divergence (1 vs 3 workers) = %.3g\n", div)
	if div == 0 {
		fmt.Println("\nbit-identical trajectories: the reduction order no longer matters.")
	} else {
		fmt.Println("\nUNEXPECTED divergence with HP accumulation!")
	}
}
