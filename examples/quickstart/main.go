// Quickstart: the order-invariant summation API in one minute.
//
//	go run ./examples/quickstart
//
// It demonstrates the rounding problem (two orderings of the same values
// giving different float64 sums), then the HP accumulator returning one
// bit-identical result for both orders, plus the parallel and adaptive
// entry points.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/rng"
)

func main() {
	// A set of 100k small values whose exact sum is zero — the kind of
	// force accumulation an N-body step performs.
	r := rng.New(7)
	forward := rng.ZeroSum(r, 100_000, 0.001)
	shuffled := rng.Reorder(r, forward)

	// Plain float64: the result depends on the order.
	naive := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	fmt.Println("true sum:                 0")
	fmt.Printf("float64, order A:         %.20g\n", naive(forward))
	fmt.Printf("float64, order B:         %.20g\n", naive(shuffled))

	// HP: one exact answer, whatever the order.
	sumA, err := repro.Sum(repro.Params384, forward)
	if err != nil {
		log.Fatal(err)
	}
	sumB, err := repro.Sum(repro.Params384, shuffled)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HP, order A:              %.20g\n", sumA)
	fmt.Printf("HP, order B:              %.20g\n", sumB)

	// Parallel reduction: bit-identical for any worker count.
	for _, workers := range []int{1, 4, 16} {
		s, err := repro.ParallelSum(repro.Params384, forward, workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("HP, %2d workers:           %.20g\n", workers, s)
	}

	// Incremental accumulation with explicit error handling.
	acc := repro.NewAccumulator(repro.Params384)
	for _, x := range forward {
		acc.Add(x)
	}
	if err := acc.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HP, incremental:          %.20g\n", acc.Float64())

	// Adaptive: no range choice needed, any finite float64 works.
	s, err := repro.AdaptiveSum([]float64{1e300, 2.5, -1e300, 1e-300})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive wide-range sum:  %.20g (exact: 2.5 + 1e-300)\n", s)
}
