// Package audit makes the summation service externally verifiable. Because
// the HP representation is order-invariant and exact, "did the server sum
// what it accepted?" has a binary answer: replaying the accepted frames
// through any conforming accumulator must reproduce the served limbs bit
// for bit. The package provides the two durable artifacts that turn this
// property into an enforced audit trail, plus the replayer that checks one
// against the other:
//
//   - a hash-linked audit log (schema repro/audit-log/v1): every snapshot
//     the daemon takes — SIGTERM and periodic — appends one record carrying
//     the per-accumulator frame-count watermark, the SHA-256 digest of the
//     canonical HP envelope, and the envelope itself, chained to the
//     previous record by its SHA-256 so no record can be altered, dropped,
//     or reordered without breaking every later link;
//
//   - a frame journal (schema repro/frame-journal/v1): an append-only
//     record of every accepted ingest frame (and every restore hand-off),
//     in per-accumulator admission order, so the exact accepted multiset is
//     re-summable offline.
//
// cmd/hpaudit replays the journal against the log: for each record it folds
// journal entries until the accumulator's frame count reaches the record's
// watermark and then requires the replayed envelope to equal the recorded
// one bit for bit — any tampering, lost frame, or wrong serve shows up as a
// named divergent link.
package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Schema identifies the audit-log record format.
const Schema = "repro/audit-log/v1"

// Audit log wire format. A log file is a concatenation of records:
//
//	magic "HPAR" | version(1) | prevHash(32) | seq(8, big-endian) |
//	reasonLen(1) | reason | count(4) | entries | crc32(4)
//
// with each entry
//
//	nameLen(2) | name | frames(8) | adds(8) | errLen(2) | err |
//	digest(32) | envLen(4) | env
//
// where env is the accumulator's canonical core.HP MarshalBinary envelope at
// the snapshot point, digest = SHA-256(env), frames is the accepted-frame
// watermark, and the CRC-32 (IEEE, the repo-wide convention) covers every
// preceding byte of the record. A record's hash — the value the *next*
// record's prevHash must equal — is the SHA-256 of its complete bytes,
// CRC included. The genesis record carries an all-zero prevHash and seq 0.
const (
	recordMagic   = "HPAR"
	recordVersion = 1

	// HashLen is the length of record hashes and envelope digests.
	HashLen = sha256.Size

	maxReasonLen = 255
	maxNameLen   = 128
	maxEnvLen    = 1 << 16
)

// Decoding errors; all decode failures wrap one of these with positional
// context so an auditor can name the first broken link.
var (
	ErrLogTruncated = errors.New("audit: truncated log record")
	ErrLogCorrupt   = errors.New("audit: corrupt log record")
	ErrChainBroken  = errors.New("audit: hash chain broken")
)

// Entry is one accumulator's state within a Record.
type Entry struct {
	Name    string
	Frames  uint64 // accepted-frame watermark at the snapshot point
	Adds    uint64 // accepted float64 values
	ErrText string // sticky accumulator error, if any
	Digest  [HashLen]byte
	Env     []byte // canonical core.HP MarshalBinary envelope
}

// Record is one link of the audit log.
type Record struct {
	Seq      uint64
	PrevHash [HashLen]byte
	Reason   string // e.g. "sigterm", "periodic"
	Entries  []Entry
	Hash     [HashLen]byte // SHA-256 of the encoded record, filled on encode/decode
}

// DigestEnv returns the SHA-256 digest of a canonical HP envelope.
func DigestEnv(env []byte) [HashLen]byte { return sha256.Sum256(env) }

// EncodeRecord appends r's wire image to buf, filling r.Hash, and returns
// the extended slice.
func EncodeRecord(buf []byte, r *Record) ([]byte, error) {
	if len(r.Reason) > maxReasonLen {
		return buf, fmt.Errorf("audit: reason of %d bytes exceeds %d", len(r.Reason), maxReasonLen)
	}
	start := len(buf)
	buf = append(buf, recordMagic...)
	buf = append(buf, recordVersion)
	buf = append(buf, r.PrevHash[:]...)
	buf = binary.BigEndian.AppendUint64(buf, r.Seq)
	buf = append(buf, byte(len(r.Reason)))
	buf = append(buf, r.Reason...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Entries)))
	for i := range r.Entries {
		e := &r.Entries[i]
		if len(e.Name) > maxNameLen {
			return buf, fmt.Errorf("audit: entry name of %d bytes exceeds %d", len(e.Name), maxNameLen)
		}
		if len(e.Env) > maxEnvLen {
			return buf, fmt.Errorf("audit: envelope of %d bytes exceeds %d", len(e.Env), maxEnvLen)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Name)))
		buf = append(buf, e.Name...)
		buf = binary.BigEndian.AppendUint64(buf, e.Frames)
		buf = binary.BigEndian.AppendUint64(buf, e.Adds)
		if len(e.ErrText) > 65535 {
			e.ErrText = e.ErrText[:65535]
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.ErrText)))
		buf = append(buf, e.ErrText...)
		buf = append(buf, e.Digest[:]...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Env)))
		buf = append(buf, e.Env...)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	r.Hash = sha256.Sum256(buf[start:])
	return buf, nil
}

// DecodeRecord decodes one record from the front of data, returning the
// record and the number of bytes consumed. Allocation is bounded by the
// bytes actually present, never by header claims.
func DecodeRecord(data []byte) (*Record, int, error) {
	const headerLen = 4 + 1 + HashLen + 8 + 1
	if len(data) < headerLen {
		return nil, 0, fmt.Errorf("%w: %d header bytes, need %d", ErrLogTruncated, len(data), headerLen)
	}
	if string(data[:4]) != recordMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrLogCorrupt, data[:4])
	}
	if data[4] != recordVersion {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrLogCorrupt, data[4])
	}
	r := &Record{}
	copy(r.PrevHash[:], data[5:5+HashLen])
	off := 5 + HashLen
	r.Seq = binary.BigEndian.Uint64(data[off:])
	off += 8
	reasonLen := int(data[off])
	off++
	need := func(n int) error {
		if len(data)-off < n {
			return fmt.Errorf("%w: offset %d, need %d more bytes", ErrLogTruncated, off, n)
		}
		return nil
	}
	if err := need(reasonLen + 4); err != nil {
		return nil, 0, err
	}
	r.Reason = string(data[off : off+reasonLen])
	off += reasonLen
	count := int(binary.BigEndian.Uint32(data[off:]))
	off += 4
	r.Entries = make([]Entry, 0, min(count, 1024))
	for i := 0; i < count; i++ {
		var e Entry
		if err := need(2); err != nil {
			return nil, 0, err
		}
		nameLen := int(binary.BigEndian.Uint16(data[off:]))
		off += 2
		if nameLen > maxNameLen {
			return nil, 0, fmt.Errorf("%w: entry %d name of %d bytes exceeds %d", ErrLogCorrupt, i, nameLen, maxNameLen)
		}
		if err := need(nameLen + 8 + 8 + 2); err != nil {
			return nil, 0, err
		}
		e.Name = string(data[off : off+nameLen])
		off += nameLen
		e.Frames = binary.BigEndian.Uint64(data[off:])
		off += 8
		e.Adds = binary.BigEndian.Uint64(data[off:])
		off += 8
		errLen := int(binary.BigEndian.Uint16(data[off:]))
		off += 2
		if err := need(errLen + HashLen + 4); err != nil {
			return nil, 0, err
		}
		e.ErrText = string(data[off : off+errLen])
		off += errLen
		copy(e.Digest[:], data[off:])
		off += HashLen
		envLen := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if envLen > maxEnvLen {
			return nil, 0, fmt.Errorf("%w: entry %d envelope of %d bytes exceeds %d", ErrLogCorrupt, i, envLen, maxEnvLen)
		}
		if err := need(envLen); err != nil {
			return nil, 0, err
		}
		e.Env = append([]byte(nil), data[off:off+envLen]...)
		off += envLen
		if e.Digest != DigestEnv(e.Env) {
			return nil, 0, fmt.Errorf("%w: entry %q digest does not match its envelope", ErrLogCorrupt, e.Name)
		}
		r.Entries = append(r.Entries, e)
	}
	if err := need(4); err != nil {
		return nil, 0, err
	}
	stored := binary.BigEndian.Uint32(data[off:])
	if got := crc32.ChecksumIEEE(data[:off]); got != stored {
		return nil, 0, fmt.Errorf("%w: crc mismatch (stored %08x, computed %08x)", ErrLogCorrupt, stored, got)
	}
	off += 4
	r.Hash = sha256.Sum256(data[:off])
	return r, off, nil
}

// ReadLog decodes and chain-verifies a whole log image: every record's CRC,
// prevHash linkage, and sequence continuity. The error from a broken chain
// names the first divergent link by sequence number.
func ReadLog(data []byte) ([]*Record, error) {
	var records []*Record
	var prev *Record
	off := 0
	for off < len(data) {
		r, n, err := DecodeRecord(data[off:])
		if err != nil {
			return records, fmt.Errorf("audit: record %d (offset %d): %w", len(records), off, err)
		}
		if prev == nil {
			if r.PrevHash != ([HashLen]byte{}) {
				return records, fmt.Errorf("%w: record 0 has nonzero prev_hash", ErrChainBroken)
			}
			if r.Seq != 0 {
				return records, fmt.Errorf("%w: record 0 has seq %d", ErrChainBroken, r.Seq)
			}
		} else {
			if r.PrevHash != prev.Hash {
				return records, fmt.Errorf("%w: record %d prev_hash %x does not match record %d hash %x",
					ErrChainBroken, r.Seq, r.PrevHash[:8], prev.Seq, prev.Hash[:8])
			}
			if r.Seq != prev.Seq+1 {
				return records, fmt.Errorf("%w: record seq %d follows %d", ErrChainBroken, r.Seq, prev.Seq)
			}
		}
		records = append(records, r)
		prev = r
		off += n
	}
	return records, nil
}

// Log is a file-backed appender maintaining the hash chain across daemon
// restarts: opening an existing file validates the whole chain and resumes
// from its last hash.
type Log struct {
	f        *os.File
	lastHash [HashLen]byte
	nextSeq  uint64
	buf      []byte
}

// OpenLog opens (or creates) the audit log at path, validating any existing
// records and positioning the appender at the chain's tail.
func OpenLog(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	l := &Log{}
	if len(data) > 0 {
		records, err := ReadLog(data)
		if err != nil {
			return nil, fmt.Errorf("audit: open %s: %w", path, err)
		}
		if n := len(records); n > 0 {
			l.lastHash = records[n-1].Hash
			l.nextSeq = records[n-1].Seq + 1
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	return l, nil
}

// NextSeq returns the sequence number the next appended record will carry.
func (l *Log) NextSeq() uint64 { return l.nextSeq }

// Append chains a new record carrying entries onto the log and fsyncs it.
// The returned record includes the assigned Seq, PrevHash, and Hash.
func (l *Log) Append(reason string, entries []Entry) (*Record, error) {
	r := &Record{Seq: l.nextSeq, PrevHash: l.lastHash, Reason: reason, Entries: entries}
	buf, err := EncodeRecord(l.buf[:0], r)
	if err != nil {
		return nil, err
	}
	l.buf = buf[:0]
	if _, err := l.f.Write(buf); err != nil {
		return nil, fmt.Errorf("audit: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return nil, fmt.Errorf("audit: append sync: %w", err)
	}
	l.lastHash = r.Hash
	l.nextSeq++
	return r, nil
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }
