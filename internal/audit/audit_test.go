package audit

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/rng"
)

// envFor sums xs serially and returns the canonical envelope plus counters.
func envFor(t *testing.T, p core.Params, xs []float64, frames uint64) Entry {
	t.Helper()
	b := core.NewBatch(p)
	b.AddSlice(xs)
	env, err := b.Sum().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return Entry{Name: "acc", Frames: frames, Adds: uint64(len(xs)), Digest: DigestEnv(env), Env: env}
}

func TestRecordRoundTrip(t *testing.T) {
	xs := rng.UniformSet(rng.New(1), 100, -1, 1)
	e := envFor(t, core.Params384, xs, 3)
	e.ErrText = "sticky"
	r := &Record{Seq: 0, Reason: "sigterm", Entries: []Entry{e}}
	buf, err := EncodeRecord(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if got.Hash != r.Hash || got.Seq != 0 || got.Reason != "sigterm" {
		t.Fatalf("record mismatch: %+v", got)
	}
	ge := got.Entries[0]
	if ge.Name != "acc" || ge.Frames != 3 || ge.Adds != uint64(len(xs)) ||
		ge.ErrText != "sticky" || !bytes.Equal(ge.Env, e.Env) {
		t.Fatalf("entry mismatch: %+v", ge)
	}
}

func TestLogChainAppendAndValidate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.hpal")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	xs := rng.UniformSet(rng.New(2), 50, -1, 1)
	for i := 0; i < 3; i++ {
		if _, err := l.Append("periodic", []Entry{envFor(t, core.Params384, xs[:10*(i+1)], uint64(i+1))}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Reopen resumes the chain.
	l2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.NextSeq() != 3 {
		t.Fatalf("next seq %d, want 3", l2.NextSeq())
	}
	if _, err := l2.Append("sigterm", []Entry{envFor(t, core.Params384, xs, 5)}); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	records, err := ReadLog(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("%d records, want 4", len(records))
	}
	for i, r := range records {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if i > 0 && r.PrevHash != records[i-1].Hash {
			t.Fatalf("record %d prev_hash does not chain", i)
		}
	}
}

// TestLogTruncationTable truncates a two-record log at every section
// boundary (and one byte past each) and requires a contextual error, no
// panic, and — for mid-chain damage — a report naming the broken link.
func TestLogTruncationTable(t *testing.T) {
	xs := rng.UniformSet(rng.New(3), 40, -1, 1)
	r0 := &Record{Seq: 0, Reason: "periodic", Entries: []Entry{envFor(t, core.Params384, xs[:20], 1)}}
	buf, err := EncodeRecord(nil, r0)
	if err != nil {
		t.Fatal(err)
	}
	rec0Len := len(buf)
	r1 := &Record{Seq: 1, PrevHash: r0.Hash, Reason: "sigterm", Entries: []Entry{envFor(t, core.Params384, xs, 2)}}
	buf, err = EncodeRecord(buf, r1)
	if err != nil {
		t.Fatal(err)
	}

	// Section boundaries of record 1 (offsets relative to the file).
	base := rec0Len
	nameLen := len("acc")
	boundaries := []struct {
		desc string
		off  int
	}{
		{"mid-magic", base + 2},
		{"after-version", base + 5},
		{"mid-prevhash", base + 5 + 16},
		{"after-prevhash", base + 5 + HashLen},
		{"after-seq", base + 5 + HashLen + 8},
		{"after-reason", base + 5 + HashLen + 8 + 1 + len("sigterm")},
		{"after-count", base + 5 + HashLen + 8 + 1 + len("sigterm") + 4},
		{"mid-name", base + 5 + HashLen + 8 + 1 + len("sigterm") + 4 + 2 + 1},
		{"after-counters", base + 5 + HashLen + 8 + 1 + len("sigterm") + 4 + 2 + nameLen + 16},
		{"mid-digest", base + 5 + HashLen + 8 + 1 + len("sigterm") + 4 + 2 + nameLen + 16 + 2 + 10},
		{"mid-env", len(buf) - 20},
		{"mid-crc", len(buf) - 2},
	}
	for _, b := range boundaries {
		trunc := buf[:b.off]
		records, err := ReadLog(trunc)
		if err == nil {
			t.Fatalf("%s (offset %d): truncation accepted", b.desc, b.off)
		}
		if len(records) != 1 {
			t.Fatalf("%s: %d intact records decoded, want 1", b.desc, len(records))
		}
		if !strings.Contains(err.Error(), "record 1") {
			t.Fatalf("%s: error %q does not name the broken record", b.desc, err)
		}
	}
}

// TestLogCorruptionTable flips bits across the encoded log via the fault
// injector's corruption primitive and requires every damaged image to be
// rejected with a contextual error and no panic. (A flip confined to a
// record's reason text would still be caught: the CRC covers every byte.)
func TestLogCorruptionTable(t *testing.T) {
	xs := rng.UniformSet(rng.New(4), 60, -1, 1)
	r0 := &Record{Seq: 0, Reason: "periodic", Entries: []Entry{envFor(t, core.Params384, xs, 1)}}
	buf, err := EncodeRecord(nil, r0)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(99)
	for trial := 0; trial < 64; trial++ {
		bad := faults.CorruptBytes(src, append([]byte(nil), buf...))
		if bytes.Equal(bad, buf) {
			continue
		}
		records, err := ReadLog(bad)
		if err == nil && len(records) == 1 && records[0].Hash == r0.Hash {
			t.Fatalf("trial %d: corrupted log decoded to the original record", trial)
		}
		if err == nil {
			t.Fatalf("trial %d: corrupted log accepted", trial)
		}
	}
}

func TestJournalRoundTripAndCorruption(t *testing.T) {
	var buf []byte
	var err error
	xs := []float64{1.5, -2.25, 3.75}
	fe := &JournalEntry{Kind: JournalFloats, Name: "acc"}
	var fb []byte
	for _, x := range xs {
		fb = appendFloatBits(fb, x)
	}
	fe.Payload = fb
	buf, err = AppendJournalEntry(buf, fe)
	if err != nil {
		t.Fatal(err)
	}
	h := core.New(core.Params384)
	env, _ := h.MarshalBinary()
	buf, err = AppendJournalEntry(buf, &JournalEntry{Kind: JournalSeed, Name: "acc", Frames: 7, Adds: 21, Payload: env})
	if err != nil {
		t.Fatal(err)
	}

	jr := NewJournalReader(bytes.NewReader(buf))
	e1, err := jr.Next()
	if err != nil {
		t.Fatal(err)
	}
	got, err := e1.Floats()
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("value %d: %v != %v", i, got[i], xs[i])
		}
	}
	e2, err := jr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if e2.Kind != JournalSeed || e2.Frames != 7 || e2.Adds != 21 || !bytes.Equal(e2.Payload, env) {
		t.Fatalf("seed entry mismatch: %+v", e2)
	}
	if _, err := jr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected clean EOF, got %v", err)
	}

	// Truncation at every byte: contextual error, never a panic, and the
	// intact prefix still decodes.
	for cut := 1; cut < len(buf); cut++ {
		jr := NewJournalReader(bytes.NewReader(buf[:cut]))
		for {
			_, err := jr.Next()
			if err == nil {
				continue
			}
			if errors.Is(err, io.EOF) {
				// Clean EOF is only legitimate at an entry boundary.
				if cut != journalEntryLen(t, fe) {
					t.Fatalf("cut %d: clean EOF inside an entry", cut)
				}
			}
			break
		}
	}
	// Bit flips: every corrupted image must be rejected.
	src := rng.New(7)
	for trial := 0; trial < 64; trial++ {
		bad := faults.CorruptBytes(src, append([]byte(nil), buf...))
		if bytes.Equal(bad, buf) {
			continue
		}
		jr := NewJournalReader(bytes.NewReader(bad))
		ok := true
		for {
			_, err := jr.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					ok = false
				}
				break
			}
		}
		if ok {
			t.Fatalf("trial %d: corrupted journal fully accepted", trial)
		}
	}
}

func journalEntryLen(t *testing.T, e *JournalEntry) int {
	t.Helper()
	b, err := AppendJournalEntry(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	return len(b)
}

func appendFloatBits(buf []byte, x float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
}
