package audit

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// FuzzAuditLogDecode throws arbitrary bytes at the audit-log reader. The
// invariants: no panic, allocations bounded by input size (enforced by the
// decoder's need() checks — a fuzz input lying about counts cannot balloon),
// and any log that validates must re-encode to the identical image.
func FuzzAuditLogDecode(f *testing.F) {
	b := core.NewBatch(core.Params384)
	b.AddSlice([]float64{1.5, -0.25, 1e-9})
	env, err := b.Sum().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	e := Entry{Name: "acc", Frames: 3, Adds: 3, Digest: DigestEnv(env), Env: env}
	r0 := &Record{Seq: 0, Reason: "periodic", Entries: []Entry{e}}
	seed, err := EncodeRecord(nil, r0)
	if err != nil {
		f.Fatal(err)
	}
	r1 := &Record{Seq: 1, PrevHash: r0.Hash, Reason: "sigterm", Entries: []Entry{e}}
	seed2, err := EncodeRecord(append([]byte(nil), seed...), r1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed2)
	f.Add(seed[:len(seed)-5])
	f.Add([]byte("HPAR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := ReadLog(data)
		if err != nil {
			return
		}
		// A valid log must round-trip byte for byte.
		var out []byte
		for _, r := range records {
			prevHash := r.Hash
			var e2 error
			out, e2 = EncodeRecord(out, r)
			if e2 != nil {
				t.Fatalf("re-encode of validated record %d: %v", r.Seq, e2)
			}
			if r.Hash != prevHash {
				t.Fatalf("re-encode changed record %d hash", r.Seq)
			}
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("validated log does not round-trip: %d bytes in, %d out", len(data), len(out))
		}
	})
}
