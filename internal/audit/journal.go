package audit

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
)

// JournalSchema identifies the frame-journal format.
const JournalSchema = "repro/frame-journal/v1"

// Frame journal wire format — one self-checking entry per accepted ingest
// frame (or restore hand-off):
//
//	'E' | kind(1) | nameLen(2) | name | [frames(8) | adds(8), seed only] |
//	payloadLen(4) | payload | crc32(4)
//
// with kind one of
//
//	'f' — an accepted float64 batch frame; payload is 8 bytes per value,
//	      big-endian IEEE-754 bit patterns (the ingest wire encoding);
//	'h' — an accepted HP hand-off frame; payload is the core.HP
//	      MarshalBinary envelope;
//	's' — a restore seed: the daemon reloaded this accumulator from a
//	      snapshot whose exact state is the payload envelope, with the
//	      frames/adds counters it carried. A seed is not an accepted frame;
//	      replay resets the accumulator to the seed state and counters.
//
// The CRC-32 (IEEE) covers every preceding byte of the entry. Entries for
// one accumulator appear in admission order, and every audit-log watermark
// is taken at a quiescent point, so the first W journaled frames of an
// accumulator are exactly the W frames its audit record attests to.
const (
	JournalFloats byte = 'f'
	JournalHP     byte = 'h'
	JournalSeed   byte = 's'

	journalEntryMark byte = 'E'
)

// MaxJournalPayload bounds one journal entry's payload, mirroring the
// ingest layer's frame cap so a corrupt length prefix cannot balloon
// allocation.
const MaxJournalPayload = 1 << 20

// Journal decoding errors.
var (
	ErrJournalTruncated = errors.New("audit: truncated journal entry")
	ErrJournalCorrupt   = errors.New("audit: corrupt journal entry")
)

// JournalEntry is one decoded journal entry. Payload aliases the reader's
// internal buffer and is only valid until the next call to Next.
type JournalEntry struct {
	Kind    byte
	Name    string
	Frames  uint64 // seed entries only: restored frame watermark
	Adds    uint64 // seed entries only: restored value count
	Payload []byte
}

// Floats decodes a JournalFloats payload.
func (e *JournalEntry) Floats() ([]float64, error) {
	if e.Kind != JournalFloats {
		return nil, fmt.Errorf("audit: Floats on journal kind %q", e.Kind)
	}
	if len(e.Payload)%8 != 0 {
		return nil, fmt.Errorf("%w: float payload of %d bytes", ErrJournalCorrupt, len(e.Payload))
	}
	out := make([]float64, len(e.Payload)/8)
	for i := range out {
		v := math.Float64frombits(binary.BigEndian.Uint64(e.Payload[8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite value %d in float entry", ErrJournalCorrupt, i)
		}
		out[i] = v
	}
	return out, nil
}

// AppendJournalEntry appends e's wire image to buf and returns the extended
// slice.
func AppendJournalEntry(buf []byte, e *JournalEntry) ([]byte, error) {
	if len(e.Name) == 0 || len(e.Name) > maxNameLen {
		return buf, fmt.Errorf("audit: journal entry name of %d bytes", len(e.Name))
	}
	if len(e.Payload) > MaxJournalPayload {
		return buf, fmt.Errorf("audit: journal payload of %d bytes exceeds %d", len(e.Payload), MaxJournalPayload)
	}
	switch e.Kind {
	case JournalFloats, JournalHP, JournalSeed:
	default:
		return buf, fmt.Errorf("audit: unknown journal kind %q", e.Kind)
	}
	start := len(buf)
	buf = append(buf, journalEntryMark, e.Kind)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Name)))
	buf = append(buf, e.Name...)
	if e.Kind == JournalSeed {
		buf = binary.BigEndian.AppendUint64(buf, e.Frames)
		buf = binary.BigEndian.AppendUint64(buf, e.Adds)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Payload)))
	buf = append(buf, e.Payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:])), nil
}

// JournalReader streams entries from a journal image.
type JournalReader struct {
	r   *bufio.Reader
	buf []byte
	off int // bytes consumed so far, for error context
}

// NewJournalReader returns a reader over r.
func NewJournalReader(r io.Reader) *JournalReader {
	return &JournalReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Offset returns the byte offset of the next entry.
func (jr *JournalReader) Offset() int { return jr.off }

// Next reads and verifies the next entry. It returns io.EOF at a clean end
// (no partial entry), ErrJournalTruncated-wrapped errors for mid-entry
// truncation, and ErrJournalCorrupt-wrapped errors for damage. The returned
// entry's Payload is only valid until the following call.
func (jr *JournalReader) Next() (*JournalEntry, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(jr.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w at offset %d: %v", ErrJournalTruncated, jr.off, err)
	}
	if hdr[0] != journalEntryMark {
		return nil, fmt.Errorf("%w at offset %d: bad entry mark 0x%02x", ErrJournalCorrupt, jr.off, hdr[0])
	}
	if _, err := io.ReadFull(jr.r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("%w at offset %d: reading header: %v", ErrJournalTruncated, jr.off, err)
	}
	kind := hdr[1]
	nameLen := int(binary.BigEndian.Uint16(hdr[2:]))
	if nameLen == 0 || nameLen > maxNameLen {
		return nil, fmt.Errorf("%w at offset %d: name length %d", ErrJournalCorrupt, jr.off, nameLen)
	}
	extra := 0
	if kind == JournalSeed {
		extra = 16
	}
	// Read name + optional counters + payload length in one shot, keeping
	// the full entry image for the CRC.
	pre := 4 + nameLen + extra + 4
	if cap(jr.buf) < pre {
		jr.buf = make([]byte, pre, 2*pre)
	}
	jr.buf = jr.buf[:pre]
	copy(jr.buf, hdr[:])
	if _, err := io.ReadFull(jr.r, jr.buf[4:]); err != nil {
		return nil, fmt.Errorf("%w at offset %d: reading entry header: %v", ErrJournalTruncated, jr.off, err)
	}
	plen := int(binary.BigEndian.Uint32(jr.buf[pre-4:]))
	if plen > MaxJournalPayload {
		return nil, fmt.Errorf("%w at offset %d: payload length %d exceeds %d", ErrJournalCorrupt, jr.off, plen, MaxJournalPayload)
	}
	total := pre + plen + 4
	if cap(jr.buf) < total {
		buf := make([]byte, total)
		copy(buf, jr.buf[:pre])
		jr.buf = buf
	}
	jr.buf = jr.buf[:total]
	if _, err := io.ReadFull(jr.r, jr.buf[pre:]); err != nil {
		return nil, fmt.Errorf("%w at offset %d: reading %d payload bytes: %v", ErrJournalTruncated, jr.off, plen, err)
	}
	body := jr.buf[:total-4]
	stored := binary.BigEndian.Uint32(jr.buf[total-4:])
	if got := crc32.ChecksumIEEE(body); got != stored {
		return nil, fmt.Errorf("%w at offset %d: crc mismatch (stored %08x, computed %08x)", ErrJournalCorrupt, jr.off, stored, got)
	}
	e := &JournalEntry{Kind: kind, Name: string(jr.buf[4 : 4+nameLen])}
	switch kind {
	case JournalFloats, JournalHP:
	case JournalSeed:
		e.Frames = binary.BigEndian.Uint64(jr.buf[4+nameLen:])
		e.Adds = binary.BigEndian.Uint64(jr.buf[4+nameLen+8:])
	default:
		return nil, fmt.Errorf("%w at offset %d: unknown kind 0x%02x", ErrJournalCorrupt, jr.off, kind)
	}
	e.Payload = jr.buf[pre : pre+plen]
	jr.off += total
	return e, nil
}

// Journal is the daemon-side appender: a mutex-serialized append-only file.
// Entries are written in admission order; Sync makes the written prefix
// durable before an audit record referencing it is chained.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	buf []byte
}

// OpenJournal opens (or creates) the journal at path for appending.
// Restarted daemons reuse the same path so per-accumulator frame counts
// continue the recorded sequence.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

// Append writes one entry. It is safe for concurrent use; the entry is
// fully written (single Write call) before the mutex is released, so
// entries never interleave.
func (j *Journal) Append(e *JournalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	buf, err := AppendJournalEntry(j.buf[:0], e)
	if err != nil {
		return err
	}
	j.buf = buf[:0]
	_, err = j.f.Write(buf)
	return err
}

// Sync fsyncs the journal file.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
