package audit

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
)

// Divergence is a failed verification: the first link where the journal and
// the log stop telling the same story. It names the record, the
// accumulator, and the reason, so an auditor can point at the exact break.
type Divergence struct {
	Seq    uint64
	Name   string
	Reason string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("audit: divergent link at record %d, accumulator %q: %s", d.Seq, d.Name, d.Reason)
}

// VerifyResult summarizes a replay verification.
type VerifyResult struct {
	Records         int              // audit records verified
	FramesReplayed  uint64           // journal frames folded
	ValuesReplayed  uint64           // float64 values folded
	UnauditedFrames uint64           // journaled frames past the last watermark (not attested yet)
	TornTail        bool             // journal ends mid-entry (crash while appending)
	Final           map[string]Entry // last verified entry per accumulator
}

// replayAcc is one accumulator's replay state.
type replayAcc struct {
	b      *core.BatchAccumulator
	frames uint64
	adds   uint64
}

// Verify replays the journal against the chain-verified records: for each
// record entry it folds journal entries (in order) until that accumulator's
// frame count reaches the entry's watermark, then requires the replayed
// canonical HP envelope and counters to match the record bit for bit.
//
// It returns a *Divergence naming the first broken link, a journal decode
// error, or nil with a summary. Records must already be chain-verified
// (ReadLog); formats are learned from the records' self-describing
// envelopes, so journal entries for accumulators no record attests to are
// counted as unaudited rather than folded.
func Verify(records []*Record, jr *JournalReader) (*VerifyResult, error) {
	// Learn each audited accumulator's HP format from its first envelope.
	params := make(map[string]core.Params)
	for _, r := range records {
		for i := range r.Entries {
			e := &r.Entries[i]
			if _, ok := params[e.Name]; ok {
				continue
			}
			var h core.HP
			if err := h.UnmarshalBinary(e.Env); err != nil {
				return nil, &Divergence{Seq: r.Seq, Name: e.Name, Reason: fmt.Sprintf("undecodable envelope: %v", err)}
			}
			params[e.Name] = h.Params()
		}
	}

	res := &VerifyResult{Final: make(map[string]Entry)}
	accs := make(map[string]*replayAcc)
	pendingEOF := false

	// step folds exactly one journal entry into the replay state. It
	// returns io.EOF at a clean journal end.
	step := func(seq uint64) error {
		e, err := jr.Next()
		if err != nil {
			return err
		}
		p, audited := params[e.Name]
		st := accs[e.Name]
		switch e.Kind {
		case JournalSeed:
			var h core.HP
			if err := h.UnmarshalBinary(e.Payload); err != nil {
				return &Divergence{Seq: seq, Name: e.Name, Reason: fmt.Sprintf("undecodable seed envelope: %v", err)}
			}
			if st != nil {
				// A restore must extend the journaled trajectory exactly:
				// the seeded state is the snapshot of everything accepted
				// before the restart.
				env, err := st.b.Sum().MarshalBinary()
				if err != nil {
					return err
				}
				if !bytes.Equal(env, e.Payload) || st.frames != e.Frames || st.adds != e.Adds {
					return &Divergence{Seq: seq, Name: e.Name,
						Reason: fmt.Sprintf("restore seed does not extend the journaled state (journal frames=%d adds=%d, seed frames=%d adds=%d): accepted frames were lost before the snapshot",
							st.frames, st.adds, e.Frames, e.Adds)}
				}
			}
			nb := core.NewBatch(h.Params())
			nb.AddHP(&h)
			accs[e.Name] = &replayAcc{b: nb, frames: e.Frames, adds: e.Adds}
			return nil
		case JournalFloats:
			if !audited {
				res.UnauditedFrames++
				return nil
			}
			if st == nil {
				st = &replayAcc{b: core.NewBatch(p)}
				accs[e.Name] = st
			}
			xs, err := e.Floats()
			if err != nil {
				return &Divergence{Seq: seq, Name: e.Name, Reason: err.Error()}
			}
			st.b.AddSlice(xs)
			st.frames++
			st.adds += uint64(len(xs))
			res.FramesReplayed++
			res.ValuesReplayed += uint64(len(xs))
			return nil
		case JournalHP:
			if !audited {
				res.UnauditedFrames++
				return nil
			}
			if st == nil {
				st = &replayAcc{b: core.NewBatch(p)}
				accs[e.Name] = st
			}
			var h core.HP
			if err := h.UnmarshalBinary(e.Payload); err != nil {
				return &Divergence{Seq: seq, Name: e.Name, Reason: fmt.Sprintf("undecodable HP frame: %v", err)}
			}
			st.b.AddHP(&h)
			st.frames++
			res.FramesReplayed++
			return nil
		default:
			return &Divergence{Seq: seq, Name: e.Name, Reason: fmt.Sprintf("unknown journal kind %q", e.Kind)}
		}
	}

	for _, r := range records {
		for i := range r.Entries {
			e := &r.Entries[i]
			st := accs[e.Name]
			if st == nil {
				st = &replayAcc{b: core.NewBatch(params[e.Name])}
				accs[e.Name] = st
			}
			for st.frames < e.Frames {
				if err := step(r.Seq); err != nil {
					if err == io.EOF || errors.Is(err, ErrJournalTruncated) {
						res.TornTail = errors.Is(err, ErrJournalTruncated)
						return res, &Divergence{Seq: r.Seq, Name: e.Name,
							Reason: fmt.Sprintf("journal ends at frame %d, watermark is %d: the log attests to frames the journal never recorded", st.frames, e.Frames)}
					}
					return res, err
				}
				// A seed entry swaps in a fresh replay state for its
				// accumulator; follow the map, not the stale pointer.
				st = accs[e.Name]
			}
			if st.frames > e.Frames {
				return res, &Divergence{Seq: r.Seq, Name: e.Name,
					Reason: fmt.Sprintf("journal has %d frames, watermark is %d: the journal recorded frames the log never attested", st.frames, e.Frames)}
			}
			env, err := st.b.Sum().MarshalBinary()
			if err != nil {
				return res, err
			}
			if !bytes.Equal(env, e.Env) {
				got := DigestEnv(env)
				return res, &Divergence{Seq: r.Seq, Name: e.Name,
					Reason: fmt.Sprintf("replayed sum diverges at watermark %d: log digest %x, replay digest %x", e.Frames, e.Digest[:8], got[:8])}
			}
			if st.adds != e.Adds {
				return res, &Divergence{Seq: r.Seq, Name: e.Name,
					Reason: fmt.Sprintf("replayed %d values at watermark %d, log attests %d", st.adds, e.Frames, e.Adds)}
			}
			res.Final[e.Name] = *e
		}
		res.Records++
	}

	// Drain the journal tail: frames accepted after the last snapshot are
	// legitimate but not yet attested. A torn final entry means the daemon
	// died mid-append — report it, but it breaks no verified link.
	for !pendingEOF {
		err := step(^uint64(0))
		switch {
		case err == nil:
		case err == io.EOF:
			pendingEOF = true
		case errors.Is(err, ErrJournalTruncated):
			res.TornTail = true
			pendingEOF = true
		default:
			return res, err
		}
	}
	// Frames folded past an accumulator's last verified watermark are
	// unaudited too.
	for name, st := range accs {
		if fe, ok := res.Final[name]; ok && st.frames > fe.Frames {
			res.UnauditedFrames += st.frames - fe.Frames
		}
	}
	return res, nil
}
