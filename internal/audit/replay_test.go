package audit

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// journalBuilder accumulates a journal image alongside the true replayed
// state, so tests can mint audit records at any watermark.
type journalBuilder struct {
	t    *testing.T
	buf  []byte
	accs map[string]*replayAcc
	p    core.Params
}

func newJournalBuilder(t *testing.T, p core.Params) *journalBuilder {
	return &journalBuilder{t: t, accs: make(map[string]*replayAcc), p: p}
}

func (jb *journalBuilder) acc(name string) *replayAcc {
	st := jb.accs[name]
	if st == nil {
		st = &replayAcc{b: core.NewBatch(jb.p)}
		jb.accs[name] = st
	}
	return st
}

func (jb *journalBuilder) floats(name string, xs []float64) {
	jb.t.Helper()
	var payload []byte
	for _, x := range xs {
		payload = appendFloatBits(payload, x)
	}
	var err error
	jb.buf, err = AppendJournalEntry(jb.buf, &JournalEntry{Kind: JournalFloats, Name: name, Payload: payload})
	if err != nil {
		jb.t.Fatal(err)
	}
	st := jb.acc(name)
	st.b.AddSlice(xs)
	st.frames++
	st.adds += uint64(len(xs))
}

func (jb *journalBuilder) hp(name string, h *core.HP) {
	jb.t.Helper()
	env, err := h.MarshalBinary()
	if err != nil {
		jb.t.Fatal(err)
	}
	jb.buf, err = AppendJournalEntry(jb.buf, &JournalEntry{Kind: JournalHP, Name: name, Payload: env})
	if err != nil {
		jb.t.Fatal(err)
	}
	st := jb.acc(name)
	st.b.AddHP(h)
	st.frames++
}

// seed journals a restore hand-off carrying the accumulator's current state.
func (jb *journalBuilder) seed(name string) {
	jb.t.Helper()
	st := jb.acc(name)
	env, err := st.b.Sum().MarshalBinary()
	if err != nil {
		jb.t.Fatal(err)
	}
	jb.buf, err = AppendJournalEntry(jb.buf, &JournalEntry{
		Kind: JournalSeed, Name: name, Frames: st.frames, Adds: st.adds, Payload: env,
	})
	if err != nil {
		jb.t.Fatal(err)
	}
}

// entry mints the audit-record entry attesting to name's current state.
func (jb *journalBuilder) entry(name string) Entry {
	jb.t.Helper()
	st := jb.acc(name)
	env, err := st.b.Sum().MarshalBinary()
	if err != nil {
		jb.t.Fatal(err)
	}
	return Entry{Name: name, Frames: st.frames, Adds: st.adds, Digest: DigestEnv(env), Env: env}
}

func chain(t *testing.T, entrySets ...[]Entry) []*Record {
	t.Helper()
	var records []*Record
	var buf []byte
	var prev [HashLen]byte
	for i, es := range entrySets {
		r := &Record{Seq: uint64(i), PrevHash: prev, Reason: "periodic", Entries: es}
		var err error
		buf, err = EncodeRecord(buf, r)
		if err != nil {
			t.Fatal(err)
		}
		prev = r.Hash
		records = append(records, r)
	}
	got, err := ReadLog(buf)
	if err != nil {
		t.Fatalf("minted chain does not validate: %v", err)
	}
	return got
}

func TestVerifyCleanMultiRecord(t *testing.T) {
	jb := newJournalBuilder(t, core.Params384)
	src := rng.New(11)
	jb.floats("a", rng.UniformSet(src, 100, -1, 1))
	jb.floats("b", rng.UniformSet(src, 50, -10, 10))
	h, err := core.FromFloat64(core.Params384, 0.0625)
	if err != nil {
		t.Fatal(err)
	}
	jb.hp("a", h)
	rec0 := []Entry{jb.entry("a"), jb.entry("b")}

	jb.floats("a", rng.UniformSet(src, 200, -1, 1))
	jb.floats("b", rng.UniformSet(src, 25, -1, 1))
	rec1 := []Entry{jb.entry("a"), jb.entry("b")}

	res, err := Verify(chain(t, rec0, rec1), NewJournalReader(bytes.NewReader(jb.buf)))
	if err != nil {
		t.Fatalf("clean verify failed: %v", err)
	}
	if res.Records != 2 || res.FramesReplayed != 5 || res.ValuesReplayed != 375 {
		t.Fatalf("summary %+v", res)
	}
	if res.UnauditedFrames != 0 || res.TornTail {
		t.Fatalf("summary %+v", res)
	}
	if fe := res.Final["a"]; fe.Frames != 3 {
		t.Fatalf("final watermark for a: %+v", fe)
	}
}

func TestVerifySeedContinuation(t *testing.T) {
	jb := newJournalBuilder(t, core.Params384)
	src := rng.New(12)
	jb.floats("a", rng.UniformSet(src, 40, -1, 1))
	rec0 := []Entry{jb.entry("a")}
	// Daemon restarts: the restore hand-off carries the snapshot state.
	jb.seed("a")
	jb.floats("a", rng.UniformSet(src, 60, -1, 1))
	rec1 := []Entry{jb.entry("a")}

	res, err := Verify(chain(t, rec0, rec1), NewJournalReader(bytes.NewReader(jb.buf)))
	if err != nil {
		t.Fatalf("seed continuation failed: %v", err)
	}
	if res.Records != 2 {
		t.Fatalf("summary %+v", res)
	}
}

func TestVerifyDivergences(t *testing.T) {
	mk := func() (*journalBuilder, *rng.Source) {
		return newJournalBuilder(t, core.Params384), rng.New(13)
	}

	t.Run("journal-missing-frames", func(t *testing.T) {
		jb, src := mk()
		jb.floats("a", rng.UniformSet(src, 10, -1, 1))
		e := jb.entry("a")
		e.Frames = 2 // the log attests a frame the journal never recorded
		_, err := Verify(chain(t, []Entry{e}), NewJournalReader(bytes.NewReader(jb.buf)))
		var d *Divergence
		if !errors.As(err, &d) || !strings.Contains(d.Reason, "never recorded") {
			t.Fatalf("err = %v", err)
		}
		if d.Seq != 0 || d.Name != "a" {
			t.Fatalf("divergence %+v", d)
		}
	})

	t.Run("journal-extra-frames", func(t *testing.T) {
		jb, src := mk()
		jb.floats("a", rng.UniformSet(src, 10, -1, 1))
		rec0 := []Entry{jb.entry("a")}
		jb.floats("a", rng.UniformSet(src, 10, -1, 1))
		jb.floats("a", rng.UniformSet(src, 10, -1, 1))
		e := jb.entry("a")
		e.Frames = 2 // watermark below what the journal holds by the time it is reached
		// Force overshoot: a second record whose watermark regresses.
		rec1 := []Entry{jb.entry("a")}
		rec1[0].Frames = 3
		recomputed := chain(t, rec0, rec1, []Entry{e})
		_, err := Verify(recomputed, NewJournalReader(bytes.NewReader(jb.buf)))
		var d *Divergence
		if !errors.As(err, &d) || !strings.Contains(d.Reason, "never attested") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("sum-divergence", func(t *testing.T) {
		jb, src := mk()
		jb.floats("a", rng.UniformSet(src, 10, -1, 1))
		e := jb.entry("a")
		// Attest a lying envelope (same format, different value).
		lie := core.NewBatch(core.Params384)
		lie.Add(1.0)
		env, err := lie.Sum().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		e.Env = env
		e.Digest = DigestEnv(env)
		_, verr := Verify(chain(t, []Entry{e}), NewJournalReader(bytes.NewReader(jb.buf)))
		var d *Divergence
		if !errors.As(verr, &d) || !strings.Contains(d.Reason, "replayed sum diverges") {
			t.Fatalf("err = %v", verr)
		}
	})

	t.Run("adds-divergence", func(t *testing.T) {
		jb, src := mk()
		jb.floats("a", rng.UniformSet(src, 10, -1, 1))
		e := jb.entry("a")
		e.Adds = 99
		_, err := Verify(chain(t, []Entry{e}), NewJournalReader(bytes.NewReader(jb.buf)))
		var d *Divergence
		if !errors.As(err, &d) || !strings.Contains(d.Reason, "log attests 99") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("seed-breaks-trajectory", func(t *testing.T) {
		jb, src := mk()
		jb.floats("a", rng.UniformSet(src, 10, -1, 1))
		rec0 := []Entry{jb.entry("a")}
		// A seed claiming fewer frames than journaled: accepted frames were
		// lost before the snapshot it restored from.
		st := jb.acc("a")
		env, err := st.b.Sum().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		jb.buf, err = AppendJournalEntry(jb.buf, &JournalEntry{
			Kind: JournalSeed, Name: "a", Frames: 0, Adds: 0, Payload: env,
		})
		if err != nil {
			t.Fatal(err)
		}
		jb.floats("a", rng.UniformSet(src, 10, -1, 1))
		e := jb.entry("a")
		_, verr := Verify(chain(t, rec0, []Entry{e}), NewJournalReader(bytes.NewReader(jb.buf)))
		var d *Divergence
		if !errors.As(verr, &d) || !strings.Contains(d.Reason, "accepted frames were lost") {
			t.Fatalf("err = %v", verr)
		}
	})
}

func TestVerifyUnauditedAndTornTail(t *testing.T) {
	jb := newJournalBuilder(t, core.Params384)
	src := rng.New(14)
	jb.floats("a", rng.UniformSet(src, 10, -1, 1))
	rec0 := []Entry{jb.entry("a")}
	// Post-watermark traffic: one audited acc, one acc no record attests.
	jb.floats("a", rng.UniformSet(src, 10, -1, 1))
	jb.floats("ghost", rng.UniformSet(src, 5, -1, 1))
	full := append([]byte(nil), jb.buf...)

	res, err := Verify(chain(t, rec0), NewJournalReader(bytes.NewReader(full)))
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if res.UnauditedFrames != 2 {
		t.Fatalf("unaudited %d, want 2 (1 audited tail + 1 ghost)", res.UnauditedFrames)
	}
	if res.TornTail {
		t.Fatal("clean tail reported torn")
	}

	// Torn final entry: the daemon died mid-append. No verified link breaks.
	torn := full[:len(full)-3]
	res, err = Verify(chain(t, rec0), NewJournalReader(bytes.NewReader(torn)))
	if err != nil {
		t.Fatalf("verify with torn tail: %v", err)
	}
	if !res.TornTail {
		t.Fatal("torn tail not reported")
	}
}
