// Package bench is the measurement and reporting harness behind the
// paper-reproduction experiments: repeated-trial timing, formatted ASCII
// tables matching the paper's tables, and CSV emission for the figures'
// data series.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Measure runs f trials times and returns the mean wall-clock duration per
// trial, discarding nothing: the paper reports times "averaged over 10
// trials". Trials must be >= 1.
func Measure(trials int, f func()) time.Duration {
	if trials < 1 {
		panic("bench: trials < 1")
	}
	start := time.Now()
	for i := 0; i < trials; i++ {
		f()
	}
	return time.Since(start) / time.Duration(trials)
}

// MeasureMedian runs f trials times and returns the median duration,
// which is more robust on shared machines.
func MeasureMedian(trials int, f func()) time.Duration {
	if trials < 1 {
		panic("bench: trials < 1")
	}
	ds := make([]time.Duration, trials)
	for i := range ds {
		start := time.Now()
		f()
		ds[i] = time.Since(start)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[trials/2]
}

// Table is a simple column-aligned report.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint writes the table to w with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table as RFC-4180-ish CSV (no quoting needed for our
// numeric content; commas in cells are rejected).
func (t *Table) CSV(w io.Writer) error {
	write := func(cells []string) error {
		for _, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				return fmt.Errorf("bench: cell %q needs quoting", c)
			}
		}
		_, err := fmt.Fprintln(w, strings.Join(cells, ","))
		return err
	}
	if err := write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// Seconds formats a duration as seconds with engineering-friendly
// precision, like the paper's wallclock axes.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.6g", d.Seconds())
}

// F formats a float with %.6g, the default numeric cell format.
func F(v float64) string { return fmt.Sprintf("%.6g", v) }

// N formats an integer with base-2 magnitude suffixes (1K, 16M) when exact,
// matching the paper's axis labels.
func N(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
