package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestMeasureReturnsPerTrialMean(t *testing.T) {
	calls := 0
	d := Measure(5, func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 5 {
		t.Errorf("f called %d times", calls)
	}
	if d < 500*time.Microsecond || d > 50*time.Millisecond {
		t.Errorf("per-trial mean %v implausible", d)
	}
}

func TestMeasureMedian(t *testing.T) {
	calls := 0
	d := MeasureMedian(3, func() { calls++ })
	if calls != 3 {
		t.Errorf("f called %d times", calls)
	}
	if d < 0 {
		t.Errorf("negative duration %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("trials=0 accepted")
		}
	}()
	Measure(0, func() {})
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"n", "time"},
	}
	tbl.AddRow("128", "0.5")
	tbl.AddRow("1048576", "123.25")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Demo", "n", "time", "1048576", "123.25", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: "n" header padded to the width of "1048576".
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatal("too few lines")
	}
	if !strings.Contains(lines[1], "n        time") {
		t.Errorf("header not aligned: %q", lines[1])
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", got)
	}
	bad := &Table{Headers: []string{"a,b"}}
	if err := bad.CSV(&buf); err == nil {
		t.Error("comma cell accepted")
	}
}

func TestFormatters(t *testing.T) {
	if got := N(16 << 20); got != "16M" {
		t.Errorf("N(16M) = %q", got)
	}
	if got := N(2048); got != "2K" {
		t.Errorf("N(2048) = %q", got)
	}
	if got := N(100); got != "100" {
		t.Errorf("N(100) = %q", got)
	}
	if got := N(1500); got != "1500" {
		t.Errorf("N(1500) = %q", got)
	}
	if got := Seconds(1500 * time.Millisecond); got != "1.5" {
		t.Errorf("Seconds = %q", got)
	}
	if got := F(0.125); got != "0.125" {
		t.Errorf("F = %q", got)
	}
}
