package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
)

// SumReportSchema identifies the BENCH_sum.json layout. Bump the suffix on
// any incompatible field change so CI's schema check fails loudly instead
// of silently comparing mismatched reports.
//
// v3 (current): adds the report-level cpu_features string (the detected
// kernel-relevant CPU features, e.g. "adx,avx2,bmi2") and a per-workload
// backend field naming the kernel lane the workload dispatched to
// ("asm+avx2", "asm", "avx2", or "generic") — a committed number is
// meaningless without knowing which kernels produced it.
//
// v2: adds the gomaxprocs field and a per-workload worker-count sweep — a
// workload name may appear once per worker count, so entries are keyed by
// (name, workers).
//
// v1: one entry per workload name. ReadReport still accepts v1 and v2
// files so older committed artifacts remain comparable.
const (
	SumReportSchema   = "repro/bench-sum/v3"
	SumReportSchemaV2 = "repro/bench-sum/v2"
	SumReportSchemaV1 = "repro/bench-sum/v1"
)

// Workload is one measured configuration in a summation benchmark report.
type Workload struct {
	// Name identifies the code path, e.g. "serial-fused" or "atomic-cas".
	Name string `json:"name"`
	// Workers is the thread/worker count used (1 for serial paths). Under
	// schema v2 the same Name may recur with different worker counts.
	Workers int `json:"workers"`
	// SecondsPerTrial is the median wall time of one full pass over the
	// input.
	SecondsPerTrial float64 `json:"seconds_per_trial"`
	// AddsPerSec is Count/SecondsPerTrial — the headline throughput.
	AddsPerSec float64 `json:"adds_per_sec"`
	// Speedup is AddsPerSec relative to the report's Baseline workload.
	Speedup float64 `json:"speedup"`
	// MallocsPerOp is heap allocations per input element during one trial
	// (mallocs, not bytes), measured from runtime.MemStats deltas. The
	// steady-state hot paths are required to hold this at ~0.
	MallocsPerOp float64 `json:"mallocs_per_op"`
	// FramesPerSec is the wire-frame throughput for workloads that stream
	// through the network service (cmd/hpsumd's ingest path) or the gossip
	// layer; zero and omitted for in-process paths.
	FramesPerSec float64 `json:"frames_per_sec,omitempty"`
	// RoundsToConvergence is, for gossip workloads, the number of gossip
	// rounds the slowest node needed before every node's certified read
	// agreed bit-for-bit (from the last timed pass). Zero and omitted for
	// non-gossip workloads. Informational — CompareReports never gates on
	// it, as the count is scheduling-dependent.
	RoundsToConvergence float64 `json:"rounds_to_convergence,omitempty"`
	// Backend names the kernel lane the workload's accumulators dispatched
	// to: "asm+avx2", "asm", "avx2", or "generic" (v3; empty when read
	// from older artifacts). The exact sums are backend-invariant — only
	// the timings depend on it — but a throughput number is not
	// reproducible without it.
	Backend string `json:"backend,omitempty"`
	// Checksum is the rounded float64 result of the workload's sum (the
	// last prefix for scans). All exact paths must agree bit-for-bit —
	// across workloads and across worker counts; it also keeps the
	// compiler from eliding the measured work.
	Checksum float64 `json:"checksum"`
}

// Report is the machine-readable summation benchmark artifact
// (BENCH_sum.json). It is self-describing enough for CI to validate and
// for later sessions to compare runs across commits.
type Report struct {
	Schema    string `json:"schema"`
	CreatedAt string `json:"created_at,omitempty"` // RFC 3339; informational
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is runtime.NumCPU() on the measuring machine; GOMAXPROCS is the
	// scheduler's effective parallelism (v2; 0 when read from a v1 file).
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// CPUFeatures is the comma-joined set of kernel-relevant CPU features
	// the probe detected on the measuring machine (e.g. "adx,avx2,bmi2"),
	// empty when none were detected or on pre-v3 artifacts. Machine
	// identity, not a gate: CompareReports ignores it.
	CPUFeatures string `json:"cpu_features,omitempty"`

	// HPLimbs/HPFrac are the HP format (paper N and k) every workload used.
	HPLimbs int `json:"hp_limbs"`
	HPFrac  int `json:"hp_frac_limbs"`
	// Count is the number of summands per trial; Trials the number of
	// timed repetitions (median reported).
	Count  int `json:"count"`
	Trials int `json:"trials"`
	// Baseline names the workload whose AddsPerSec defines Speedup == 1.
	Baseline  string     `json:"baseline"`
	Workloads []Workload `json:"workloads"`

	// MemBandwidthBytesPerSec is the measured streaming read bandwidth of
	// the benchmark machine over the workload buffer (best of the trials —
	// a ceiling, not a median), from a pure 64-bit load-and-xor pass with
	// no summation arithmetic. CeilingAddsPerSec is that bandwidth divided
	// by 8 bytes per float64: the adds/sec an ideal zero-arithmetic kernel
	// could reach on this machine, the roofline the serial workloads chase.
	// Optional (absent in older artifacts); machine-specific, so
	// CompareReports never gates on them.
	MemBandwidthBytesPerSec float64 `json:"mem_bandwidth_bytes_per_sec,omitempty"`
	CeilingAddsPerSec       float64 `json:"ceiling_adds_per_sec,omitempty"`
}

// Lookup returns the first workload with the given name (after WriteJSON's
// sort, the one with the lowest worker count), or nil.
func (r *Report) Lookup(name string) *Workload {
	for i := range r.Workloads {
		if r.Workloads[i].Name == name {
			return &r.Workloads[i]
		}
	}
	return nil
}

// LookupWorkers returns the workload entry for (name, workers), or nil.
func (r *Report) LookupWorkers(name string, workers int) *Workload {
	for i := range r.Workloads {
		if r.Workloads[i].Name == name && r.Workloads[i].Workers == workers {
			return &r.Workloads[i]
		}
	}
	return nil
}

// Validate checks the report's structural invariants: the schema tag, the
// format and run parameters, per-workload sanity (positive throughput,
// workers >= 1, unique keys), and that the baseline workload exists with
// speedup 1 (within rounding). The current v3 schema and legacy v2/v1
// reports all validate; v1 additionally requires workload names to be
// unique on their own, and v3 requires every workload to name its kernel
// backend.
func (r *Report) Validate() error {
	switch r.Schema {
	case SumReportSchema, SumReportSchemaV2, SumReportSchemaV1:
	default:
		return fmt.Errorf("bench: schema %q, want %q (or legacy %q, %q)",
			r.Schema, SumReportSchema, SumReportSchemaV2, SumReportSchemaV1)
	}
	if r.Schema != SumReportSchemaV1 && r.GOMAXPROCS < 1 {
		return fmt.Errorf("bench: %s report without gomaxprocs", r.Schema)
	}
	if r.HPLimbs < 2 || r.HPFrac < 1 || r.HPFrac >= r.HPLimbs {
		return fmt.Errorf("bench: implausible HP format N=%d k=%d", r.HPLimbs, r.HPFrac)
	}
	if r.Count < 1 || r.Trials < 1 {
		return fmt.Errorf("bench: count=%d trials=%d", r.Count, r.Trials)
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("bench: no workloads")
	}
	type key struct {
		name    string
		workers int
	}
	seen := make(map[key]bool, len(r.Workloads))
	for _, w := range r.Workloads {
		if w.Name == "" {
			return fmt.Errorf("bench: unnamed workload")
		}
		k := key{w.Name, w.Workers}
		if r.Schema == SumReportSchemaV1 {
			k.workers = 0 // v1: names are globally unique
		}
		if seen[k] {
			return fmt.Errorf("bench: duplicate workload %q workers=%d", w.Name, w.Workers)
		}
		seen[k] = true
		if w.Workers < 1 {
			return fmt.Errorf("bench: workload %q: workers=%d", w.Name, w.Workers)
		}
		if !(w.SecondsPerTrial > 0) || !(w.AddsPerSec > 0) {
			return fmt.Errorf("bench: workload %q: non-positive timing", w.Name)
		}
		if !(w.Speedup > 0) {
			return fmt.Errorf("bench: workload %q: speedup %g", w.Name, w.Speedup)
		}
		if w.MallocsPerOp < 0 {
			return fmt.Errorf("bench: workload %q: mallocs_per_op %g", w.Name, w.MallocsPerOp)
		}
		switch w.Backend {
		case "asm+avx2", "asm", "avx2", "generic":
		case "":
			if r.Schema == SumReportSchema {
				return fmt.Errorf("bench: v3 workload %q without kernel backend", w.Name)
			}
		default:
			return fmt.Errorf("bench: workload %q: unknown backend %q", w.Name, w.Backend)
		}
	}
	base := r.Lookup(r.Baseline)
	if base == nil {
		return fmt.Errorf("bench: baseline workload %q missing", r.Baseline)
	}
	if base.Speedup < 0.999 || base.Speedup > 1.001 {
		return fmt.Errorf("bench: baseline speedup %g != 1", base.Speedup)
	}
	if r.MemBandwidthBytesPerSec < 0 || r.CeilingAddsPerSec < 0 {
		return fmt.Errorf("bench: negative bandwidth ceiling")
	}
	return nil
}

// FillSpeedups sets each workload's Speedup from the baseline's
// AddsPerSec. It must be called after all workloads are appended.
func (r *Report) FillSpeedups() error {
	base := r.Lookup(r.Baseline)
	if base == nil {
		return fmt.Errorf("bench: baseline workload %q missing", r.Baseline)
	}
	for i := range r.Workloads {
		r.Workloads[i].Speedup = r.Workloads[i].AddsPerSec / base.AddsPerSec
	}
	return nil
}

// WriteJSON validates the report and writes it as indented JSON, sorted by
// (workload name, workers) for diff-stable artifacts.
func (r *Report) WriteJSON(path string) error {
	sort.Slice(r.Workloads, func(i, j int) bool {
		if r.Workloads[i].Name != r.Workloads[j].Name {
			return r.Workloads[i].Name < r.Workloads[j].Name
		}
		return r.Workloads[i].Workers < r.Workloads[j].Workers
	})
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport parses and validates a BENCH_sum.json file (schema v3, or a
// legacy v2/v1 artifact).
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// RetiredWorkloads is the explicit allowlist of workload names that were
// deliberately removed from the runner after a committed artifact recorded
// them. A committed workload name absent from the current run fails
// CompareReports unless listed here: a silently vanished workload would
// otherwise pass the checksum phase of the gate without comparing anything
// (a rename or deletion looks exactly like a passing run). Retire a name by
// adding it here in the same change that removes the workload.
var RetiredWorkloads = []string{
	// (none currently retired)
}

// CompareReports is the regression gate between a freshly measured report
// and a committed reference. It fails if the runs are not comparable (the
// summand count or HP format differs — checksums would legitimately
// diverge), if any (name, workers) entry present in both reports disagrees
// on its checksum bit pattern — all drifts are collected and reported
// together, not just the first — or if the current speedup of any workload
// named in guard has dropped more than maxDrop (a fraction, e.g. 0.25)
// below the committed speedup. Speedups are relative to each report's own
// baseline, so a uniformly slower machine cancels out.
//
// Missing entries are asymmetric by design: a committed workload NAME with
// no entry at all in the current run is a hard error unless it appears in
// RetiredWorkloads — otherwise deleting or renaming an exact workload would
// silently skip its checksum comparison. A missing specific (name, workers)
// pair whose name is still present is NOT an error: the worker sweep
// includes NumCPU, so the exact worker counts legitimately vary across
// machines. Workloads only the current run has (newer than the artifact)
// are ignored.
func CompareReports(cur, committed *Report, guard []string, maxDrop float64) error {
	if cur.Count != committed.Count || cur.HPLimbs != committed.HPLimbs || cur.HPFrac != committed.HPFrac {
		return fmt.Errorf("bench: runs not comparable: count %d vs %d, format N=%d k=%d vs N=%d k=%d",
			cur.Count, committed.Count, cur.HPLimbs, cur.HPFrac, committed.HPLimbs, committed.HPFrac)
	}
	retired := make(map[string]bool, len(RetiredWorkloads))
	for _, name := range RetiredWorkloads {
		retired[name] = true
	}
	var errs []error
	missing := make(map[string]bool)
	for _, ref := range committed.Workloads {
		w := cur.LookupWorkers(ref.Name, ref.Workers)
		if w == nil {
			if cur.Lookup(ref.Name) == nil && !retired[ref.Name] && !missing[ref.Name] {
				missing[ref.Name] = true
				errs = append(errs, fmt.Errorf(
					"bench: committed workload %q missing from current run (add it to RetiredWorkloads if intentionally removed)",
					ref.Name))
			}
			continue // worker-count sweep differences are machine-dependent
		}
		if math.Float64bits(w.Checksum) != math.Float64bits(ref.Checksum) {
			errs = append(errs, fmt.Errorf(
				"bench: %s workers=%d: checksum %x, committed %x (exact sums diverged)",
				ref.Name, ref.Workers, math.Float64bits(w.Checksum), math.Float64bits(ref.Checksum)))
		}
	}
	for _, name := range guard {
		ref := committed.Lookup(name)
		if ref == nil {
			continue // workload newer than the committed artifact
		}
		w := cur.LookupWorkers(name, ref.Workers)
		if w == nil {
			errs = append(errs, fmt.Errorf(
				"bench: guarded workload %q workers=%d missing from current run",
				name, ref.Workers))
			continue
		}
		if w.Speedup < ref.Speedup*(1-maxDrop) {
			errs = append(errs, fmt.Errorf(
				"bench: %s speedup %.3f dropped >%.0f%% below committed %.3f",
				name, w.Speedup, maxDrop*100, ref.Speedup))
		}
	}
	return errors.Join(errs...)
}
