package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SumReportSchema identifies the BENCH_sum.json layout. Bump the suffix on
// any incompatible field change so CI's schema check fails loudly instead
// of silently comparing mismatched reports.
const SumReportSchema = "repro/bench-sum/v1"

// Workload is one measured configuration in a summation benchmark report.
type Workload struct {
	// Name identifies the code path, e.g. "serial-fused" or "atomic-cas".
	Name string `json:"name"`
	// Workers is the thread/worker count used (1 for serial paths).
	Workers int `json:"workers"`
	// SecondsPerTrial is the median wall time of one full pass over the
	// input.
	SecondsPerTrial float64 `json:"seconds_per_trial"`
	// AddsPerSec is Count/SecondsPerTrial — the headline throughput.
	AddsPerSec float64 `json:"adds_per_sec"`
	// Speedup is AddsPerSec relative to the report's Baseline workload.
	Speedup float64 `json:"speedup"`
	// MallocsPerOp is heap allocations per input element during one trial
	// (mallocs, not bytes), measured from runtime.MemStats deltas. The
	// steady-state hot paths are required to hold this at ~0.
	MallocsPerOp float64 `json:"mallocs_per_op"`
	// Checksum is the rounded float64 result of the workload's sum (the
	// last prefix for scans). All exact paths must agree bit-for-bit; it
	// also keeps the compiler from eliding the measured work.
	Checksum float64 `json:"checksum"`
}

// Report is the machine-readable summation benchmark artifact
// (BENCH_sum.json). It is self-describing enough for CI to validate and
// for later sessions to compare runs across commits.
type Report struct {
	Schema    string `json:"schema"`
	CreatedAt string `json:"created_at,omitempty"` // RFC 3339; informational
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	// HPLimbs/HPFrac are the HP format (paper N and k) every workload used.
	HPLimbs int `json:"hp_limbs"`
	HPFrac  int `json:"hp_frac_limbs"`
	// Count is the number of summands per trial; Trials the number of
	// timed repetitions (median reported).
	Count  int `json:"count"`
	Trials int `json:"trials"`
	// Baseline names the workload whose AddsPerSec defines Speedup == 1.
	Baseline  string     `json:"baseline"`
	Workloads []Workload `json:"workloads"`
}

// Lookup returns the named workload, or nil.
func (r *Report) Lookup(name string) *Workload {
	for i := range r.Workloads {
		if r.Workloads[i].Name == name {
			return &r.Workloads[i]
		}
	}
	return nil
}

// Validate checks the report's structural invariants: the schema tag, the
// format and run parameters, per-workload sanity (positive throughput,
// workers >= 1, unique names), and that the baseline workload exists with
// speedup 1 (within rounding).
func (r *Report) Validate() error {
	if r.Schema != SumReportSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, SumReportSchema)
	}
	if r.HPLimbs < 2 || r.HPFrac < 1 || r.HPFrac >= r.HPLimbs {
		return fmt.Errorf("bench: implausible HP format N=%d k=%d", r.HPLimbs, r.HPFrac)
	}
	if r.Count < 1 || r.Trials < 1 {
		return fmt.Errorf("bench: count=%d trials=%d", r.Count, r.Trials)
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("bench: no workloads")
	}
	seen := make(map[string]bool, len(r.Workloads))
	for _, w := range r.Workloads {
		if w.Name == "" {
			return fmt.Errorf("bench: unnamed workload")
		}
		if seen[w.Name] {
			return fmt.Errorf("bench: duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Workers < 1 {
			return fmt.Errorf("bench: workload %q: workers=%d", w.Name, w.Workers)
		}
		if !(w.SecondsPerTrial > 0) || !(w.AddsPerSec > 0) {
			return fmt.Errorf("bench: workload %q: non-positive timing", w.Name)
		}
		if !(w.Speedup > 0) {
			return fmt.Errorf("bench: workload %q: speedup %g", w.Name, w.Speedup)
		}
		if w.MallocsPerOp < 0 {
			return fmt.Errorf("bench: workload %q: mallocs_per_op %g", w.Name, w.MallocsPerOp)
		}
	}
	base := r.Lookup(r.Baseline)
	if base == nil {
		return fmt.Errorf("bench: baseline workload %q missing", r.Baseline)
	}
	if base.Speedup < 0.999 || base.Speedup > 1.001 {
		return fmt.Errorf("bench: baseline speedup %g != 1", base.Speedup)
	}
	return nil
}

// FillSpeedups sets each workload's Speedup from the baseline's
// AddsPerSec. It must be called after all workloads are appended.
func (r *Report) FillSpeedups() error {
	base := r.Lookup(r.Baseline)
	if base == nil {
		return fmt.Errorf("bench: baseline workload %q missing", r.Baseline)
	}
	for i := range r.Workloads {
		r.Workloads[i].Speedup = r.Workloads[i].AddsPerSec / base.AddsPerSec
	}
	return nil
}

// WriteJSON validates the report and writes it as indented JSON, sorted by
// workload name for diff-stable artifacts.
func (r *Report) WriteJSON(path string) error {
	sort.Slice(r.Workloads, func(i, j int) bool {
		return r.Workloads[i].Name < r.Workloads[j].Name
	})
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport parses and validates a BENCH_sum.json file.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}
