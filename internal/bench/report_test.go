package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testReport() *Report {
	return &Report{
		Schema:      SumReportSchema,
		GoVersion:   "go1.24",
		GOOS:        "linux",
		GOARCH:      "amd64",
		CPUs:        8,
		GOMAXPROCS:  8,
		CPUFeatures: "adx,avx2,bmi2",
		HPLimbs:     6,
		HPFrac:      3,
		Count:       1024,
		Trials:      3,
		Baseline:    "serial-legacy",
		Workloads: []Workload{
			{Name: "serial-legacy", Workers: 1, SecondsPerTrial: 1, AddsPerSec: 1024, Speedup: 1, Checksum: 0.5, Backend: "generic"},
			{Name: "serial-batch", Workers: 1, SecondsPerTrial: 0.25, AddsPerSec: 4096, Speedup: 4, Checksum: 0.5, Backend: "asm+avx2"},
			{Name: "omp-reduce", Workers: 1, SecondsPerTrial: 0.5, AddsPerSec: 2048, Speedup: 2, Checksum: 0.5, Backend: "asm+avx2"},
			{Name: "omp-reduce", Workers: 4, SecondsPerTrial: 0.125, AddsPerSec: 8192, Speedup: 8, Checksum: 0.5, Backend: "asm+avx2"},
		},
	}
}

// TestReadReportAcceptsV1 keeps the legacy artifact readable: one entry per
// name, no gomaxprocs field.
func TestReadReportAcceptsV1(t *testing.T) {
	const v1 = `{
  "schema": "repro/bench-sum/v1",
  "go_version": "go1.24.0",
  "goos": "linux",
  "goarch": "amd64",
  "cpus": 1,
  "hp_limbs": 6,
  "hp_frac_limbs": 3,
  "count": 1024,
  "trials": 3,
  "baseline": "serial-legacy",
  "workloads": [
    {"name": "serial-legacy", "workers": 1, "seconds_per_trial": 1,
     "adds_per_sec": 1024, "speedup": 1, "mallocs_per_op": 0, "checksum": 0.5}
  ]
}`
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := ReadReport(path)
	if err != nil {
		t.Fatalf("v1 report rejected: %v", err)
	}
	if r.Schema != SumReportSchemaV1 || r.GOMAXPROCS != 0 {
		t.Errorf("schema %q gomaxprocs %d", r.Schema, r.GOMAXPROCS)
	}
	// v1 forbids what v2 allows: the same name at two worker counts.
	r.Workloads = append(r.Workloads, Workload{
		Name: "serial-legacy", Workers: 4, SecondsPerTrial: 1,
		AddsPerSec: 1024, Speedup: 1, Checksum: 0.5,
	})
	if err := r.Validate(); err == nil {
		t.Error("v1 report with duplicate name validated")
	}
}

func TestLookupWorkers(t *testing.T) {
	r := testReport()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if w := r.LookupWorkers("omp-reduce", 4); w == nil || w.Speedup != 8 {
		t.Errorf("LookupWorkers(omp-reduce, 4) = %+v", w)
	}
	if w := r.LookupWorkers("omp-reduce", 2); w != nil {
		t.Errorf("unswept worker count found: %+v", w)
	}
	// Lookup finds some entry with the name; after WriteJSON's sort it is
	// the lowest worker count.
	path := filepath.Join(t.TempDir(), "v2.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if w := got.Lookup("omp-reduce"); w == nil || w.Workers != 1 {
		t.Errorf("Lookup after sort = %+v, want workers=1", w)
	}
}

func TestCompareReportsGuards(t *testing.T) {
	cur, committed := testReport(), testReport()
	if err := CompareReports(cur, committed, []string{"serial-batch"}, 0.25); err != nil {
		t.Fatalf("identical reports: %v", err)
	}
	// Within tolerance: 20% drop on a guarded workload passes at 25%.
	cur.LookupWorkers("serial-batch", 1).Speedup = 3.2
	if err := CompareReports(cur, committed, []string{"serial-batch"}, 0.25); err != nil {
		t.Errorf("20%% drop failed a 25%% gate: %v", err)
	}
	cur.LookupWorkers("serial-batch", 1).Speedup = 2.9
	if err := CompareReports(cur, committed, []string{"serial-batch"}, 0.25); err == nil {
		t.Error("28% drop passed a 25% gate")
	}
	// A guarded workload missing from the current run fails; one missing
	// from the committed reference (not yet benchmarked back then) passes.
	cur = testReport()
	cur.Workloads = cur.Workloads[:1]
	if err := CompareReports(cur, committed, []string{"serial-batch"}, 0.25); err == nil {
		t.Error("missing guarded workload passed")
	}
	if err := CompareReports(testReport(), committed, []string{"brand-new"}, 0.25); err != nil {
		t.Errorf("guard absent from committed reference should pass: %v", err)
	}
}

func TestCompareReportsMissingCommittedName(t *testing.T) {
	committed := testReport()
	// A committed workload name with no entry at all in the current run is
	// a hard error even when unguarded — a rename or deletion must not look
	// like a passing gate.
	cur := testReport()
	cur.Workloads = cur.Workloads[:2] // drop both omp-reduce entries
	err := CompareReports(cur, committed, nil, 0.25)
	if err == nil {
		t.Fatal("vanished committed workload passed the gate")
	}
	if !strings.Contains(err.Error(), `"omp-reduce"`) || !strings.Contains(err.Error(), "RetiredWorkloads") {
		t.Errorf("error does not name the workload and the allowlist: %v", err)
	}
	// The error is reported once per name, not once per (name, workers) row.
	if n := strings.Count(err.Error(), "missing from current run"); n != 1 {
		t.Errorf("missing name reported %d times, want 1: %v", n, err)
	}

	// Allowlisted names are exempt: that is how a workload retires.
	defer func(old []string) { RetiredWorkloads = old }(RetiredWorkloads)
	RetiredWorkloads = append(RetiredWorkloads, "omp-reduce")
	if err := CompareReports(cur, committed, nil, 0.25); err != nil {
		t.Errorf("retired workload still failed the gate: %v", err)
	}

	// A missing (name, workers) pair whose name is still present is fine:
	// the worker sweep includes NumCPU, which varies across machines.
	RetiredWorkloads = RetiredWorkloads[:len(RetiredWorkloads)-1]
	cur = testReport()
	cur.Workloads = cur.Workloads[:3] // keep omp-reduce workers=1, drop workers=4
	if err := CompareReports(cur, committed, nil, 0.25); err != nil {
		t.Errorf("machine-dependent worker count failed the gate: %v", err)
	}
}

func TestCompareReportsJoinsAllDrifts(t *testing.T) {
	committed := testReport()
	cur := testReport()
	// Two checksum drifts and one guarded speedup drop must all surface in
	// a single joined error, not just the first.
	cur.LookupWorkers("serial-legacy", 1).Checksum = 0.25
	cur.LookupWorkers("omp-reduce", 4).Checksum = 0.75
	cur.LookupWorkers("serial-batch", 1).Speedup = 1
	err := CompareReports(cur, committed, []string{"serial-batch"}, 0.25)
	if err == nil {
		t.Fatal("drifted reports passed")
	}
	for _, want := range []string{"serial-legacy", "omp-reduce", "serial-batch"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %s drift: %v", want, err)
		}
	}
	if n := strings.Count(err.Error(), "checksum"); n != 2 {
		t.Errorf("%d checksum drifts reported, want 2: %v", n, err)
	}
}

// TestReadReportAcceptsV2 keeps the pre-backend artifact readable: v2
// entries carry no backend, and that is only an error under v3.
func TestReadReportAcceptsV2(t *testing.T) {
	r := testReport()
	r.Schema = SumReportSchemaV2
	r.CPUFeatures = ""
	for i := range r.Workloads {
		r.Workloads[i].Backend = ""
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("v2 report rejected: %v", err)
	}
}

// TestValidateBackend: v3 requires a known backend on every workload.
func TestValidateBackend(t *testing.T) {
	r := testReport()
	r.Workloads[0].Backend = ""
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "backend") {
		t.Errorf("v3 workload without backend validated: %v", err)
	}
	r.Workloads[0].Backend = "sse9"
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "sse9") {
		t.Errorf("unknown backend validated: %v", err)
	}
}
