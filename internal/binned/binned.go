// Package binned implements pre-rounded (binned) reproducible summation in
// the style of Demmel & Nguyen (refs [6-8] of the reproduced paper; the
// approach behind ReproBLAS). It is the third order-invariant summation
// family alongside the HP and Hallberg fixed-point methods, implemented
// here as a comparison baseline.
//
// The double exponent range is divided into fixed, data-independent bins of
// W bits. Each input value is pre-rounded (split) into at most
// ceil(53/W)+1 slices at the fixed bin boundaries using the error-free
// extraction  h = fl((x + M) - M)  with M = 1.5 * 2^(q+52), which rounds x
// to the nearest multiple of 2^q with no rounding error in the remainder.
// Every slice deposited into bin i is a multiple of 2^(q_i) bounded by
// ~2^(q_i+W), so the bin's float64 accumulator performs EXACT integer-like
// additions for up to 2^(52-W) deposits. Because the slices are a function
// of the value alone (never of accumulator state) and all additions are
// exact, the bin vector — and hence the final sum — is bit-identical for
// every summation order.
//
// Like the Hallberg method, the technique has a summand budget fixed by a
// width parameter (W here, M there); unlike both fixed-point methods it
// covers the entire double exponent range with a handful of float64 cells.
package binned

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"repro/internal/telemetry"
)

// Telemetry for cross-method comparison against the HP and Hallberg
// accumulators at /metrics.
var (
	mAdds = telemetry.NewCounter("binned_adds_total",
		"Values deposited into binned accumulators (Acc.Add calls).")
	mBudget = telemetry.NewCounter("binned_budget_exceeded_total",
		"Additions past the 2^(52-W) summand budget, voiding the exactness guarantee.")
)

// Errors reported by the accumulator.
var (
	// ErrNotFinite is returned when adding NaN or infinity.
	ErrNotFinite = errors.New("binned: value is NaN or infinite")
	// ErrTooManySummands is returned when more than MaxSummands values are
	// added, voiding the exactness guarantee.
	ErrTooManySummands = errors.New("binned: summand budget exceeded")
)

// emin is the lowest bin boundary exponent: below the smallest subnormal,
// so every finite double's lowest bit lies above it.
const emin = -1080

// emax bounds the largest double exponent (2^1024 exclusive).
const emax = 1024

// Acc is a binned reproducible accumulator. Create with New.
type Acc struct {
	w     int
	bins  []float64
	count int64
	err   error
}

// New returns an accumulator with W-bit bins. W must lie in [8, 44]; the
// summand budget is 2^(52-W) (W=40 gives 4096 summands, W=26 gives 67M).
func New(w int) *Acc {
	if w < 8 || w > 44 {
		panic(fmt.Sprintf("binned: W=%d outside [8, 44]", w))
	}
	nBins := (emax-emin)/w + 2
	return &Acc{w: w, bins: make([]float64, nBins)}
}

// WFor returns the largest bin width whose budget covers n summands.
func WFor(n int64) (int, error) {
	for w := 44; w >= 8; w-- {
		if int64(1)<<uint(52-w) >= n {
			return w, nil
		}
	}
	return 0, fmt.Errorf("binned: no W accommodates %d summands", n)
}

// W returns the configured bin width.
func (a *Acc) W() int { return a.w }

// MaxSummands returns the exactness budget 2^(52-W).
func (a *Acc) MaxSummands() int64 { return int64(1) << uint(52-a.w) }

// Count returns the number of values added since the last Reset.
func (a *Acc) Count() int64 { return a.count }

// Err returns the sticky error, or nil.
func (a *Acc) Err() error { return a.err }

// binBottom returns the boundary exponent q_i of bin i.
func (a *Acc) binBottom(i int) int { return emin + i*a.w }

// binIndex returns the bin whose range contains exponent e.
func (a *Acc) binIndex(e int) int {
	i := (e - emin) / a.w
	if i < 0 {
		i = 0
	}
	if i >= len(a.bins) {
		i = len(a.bins) - 1
	}
	return i
}

// extract rounds x to the nearest multiple of 2^q error-free and returns
// (h, x-h). Requires |x| < 2^(q+51), which the slicing loop guarantees.
func extract(x float64, q int) (h, rem float64) {
	m := math.Ldexp(1.5, q+52)
	h = (x + m) - m
	return h, x - h
}

// scaleShift returns the power-of-two scaling applied to bin i's contents.
// Bins near the top of the double range store their values scaled by
// 2^-highBinShift so that the extraction constant 1.5*2^(q+52) and the
// rounded slices themselves cannot overflow; scaling by a power of two is
// exact, so the bin arithmetic stays error-free.
func (a *Acc) scaleShift(i int) int {
	if a.binBottom(i) > 800 {
		return highBinShift
	}
	return 0
}

// highBinShift is the exponent offset for high bins: large enough that
// q - highBinShift <= 971 for every bin bottom q, small enough that
// scaled values stay normal (q >= 800 implies x >= 2^543 after scaling).
const highBinShift = 256

// Add deposits x's fixed-boundary slices into the bins. NaN/Inf latch
// ErrNotFinite; exceeding the budget latches ErrTooManySummands (the sum
// keeps accumulating but exactness is no longer guaranteed, as with the
// Hallberg method past its carry budget).
func (a *Acc) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		if a.err == nil {
			a.err = ErrNotFinite
		}
		return
	}
	a.count++
	mAdds.Inc()
	if a.count > a.MaxSummands() {
		mBudget.Inc()
		if a.err == nil {
			a.err = ErrTooManySummands
		}
	}
	if x == 0 {
		return
	}
	_, e := math.Frexp(x) // |x| in [2^(e-1), 2^e)
	i := a.binIndex(e)
	rem := x
	for rem != 0 && i > 0 {
		q := a.binBottom(i)
		if se := a.scaleShift(i); se != 0 {
			hs, rs := extract(math.Ldexp(rem, -se), q-se)
			if hs != 0 {
				a.bins[i] += hs // exact: multiples of 2^(q-se), within budget
			}
			rem = math.Ldexp(rs, se) // exact power-of-two rescale
		} else {
			var h float64
			h, rem = extract(rem, q)
			if h != 0 {
				a.bins[i] += h // exact: both multiples of 2^q, within budget
			}
		}
		i--
	}
	if rem != 0 {
		a.bins[0] += rem // bottom bin holds everything below emin+W exactly
	}
}

// AddAll adds every element of xs.
func (a *Acc) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// Merge folds another accumulator's bins into a (both must share W),
// charging its count against the budget. Bin-wise addition remains exact
// while the combined count respects the budget.
func (a *Acc) Merge(b *Acc) error {
	if a.w != b.w {
		return fmt.Errorf("binned: merging W=%d into W=%d", b.w, a.w)
	}
	if b.err != nil && a.err == nil {
		a.err = b.err
	}
	a.count += b.count
	if a.count > a.MaxSummands() && a.err == nil {
		a.err = ErrTooManySummands
	}
	for i, v := range b.bins {
		a.bins[i] += v
	}
	return nil
}

// Bins returns a copy of the bin vector (diagnostics and tests).
func (a *Acc) Bins() []float64 {
	out := make([]float64, len(a.bins))
	copy(out, a.bins)
	return out
}

// Float64 returns the sum of the bins accumulated from the highest bin
// downward. The bin contents are order-invariant, so this deterministic
// conversion yields a bit-identical result for every input ordering; it is
// within 1 ulp of the correctly rounded exact sum (use Rat for exactness).
func (a *Acc) Float64() float64 {
	s := 0.0
	for i := len(a.bins) - 1; i >= 0; i-- {
		s += math.Ldexp(a.bins[i], a.scaleShift(i))
	}
	return s
}

// Rat returns the exact sum of the bins as a rational number.
func (a *Acc) Rat() *big.Rat {
	sum := new(big.Rat)
	term := new(big.Rat)
	for i, v := range a.bins {
		if v == 0 {
			continue
		}
		term.SetFloat64(v)
		if se := a.scaleShift(i); se != 0 {
			scale := new(big.Int).Lsh(big.NewInt(1), uint(se))
			term.Mul(term, new(big.Rat).SetInt(scale))
		}
		sum.Add(sum, term)
	}
	return sum
}

// IsZero reports whether the exact sum is zero.
func (a *Acc) IsZero() bool { return a.Rat().Sign() == 0 }

// Reset zeroes the bins, the count, and the sticky error.
func (a *Acc) Reset() {
	for i := range a.bins {
		a.bins[i] = 0
	}
	a.count = 0
	a.err = nil
}

// Sum computes the binned reproducible sum of xs with W-bit bins.
func Sum(w int, xs []float64) (float64, error) {
	a := New(w)
	a.AddAll(xs)
	return a.Float64(), a.Err()
}
