package binned

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/rng"
)

func TestExtractErrorFree(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 5000; i++ {
		q := -300 + r.Intn(600)
		// |x| < 2^(q+51): random magnitude within the precondition.
		x := r.Exp2Uniform(q-30, q+50)
		h, rem := extract(x, q)
		// h is a multiple of 2^q.
		scaled := math.Ldexp(h, -q)
		if scaled != math.Trunc(scaled) {
			t.Fatalf("h=%g not a multiple of 2^%d", h, q)
		}
		// The split is exact: h + rem == x with no rounding.
		lhs := exact.New()
		lhs.Add(x)
		rhs := exact.New()
		rhs.AddAll([]float64{h, rem})
		if lhs.Rat().Cmp(rhs.Rat()) != 0 {
			t.Fatalf("extract(%g, %d) lost bits", x, q)
		}
		// The remainder is at most half a unit.
		if math.Abs(rem) > math.Ldexp(1, q-1) {
			t.Fatalf("remainder %g exceeds 2^%d", rem, q-1)
		}
	}
}

func TestExactnessVsOracle(t *testing.T) {
	r := rng.New(2)
	for _, w := range []int{20, 30, 40} {
		// Stay within budget: n <= 2^(52-w).
		n := 2000
		xs := rng.WideRange(r, n, -200, 200)
		a := New(w)
		a.AddAll(xs)
		if a.Err() != nil {
			t.Fatalf("W=%d: %v", w, a.Err())
		}
		oracle := exact.New()
		oracle.AddAll(xs)
		if a.Rat().Cmp(oracle.Rat()) != 0 {
			t.Errorf("W=%d: binned sum diverged from oracle", w)
		}
	}
}

func TestOrderInvariance(t *testing.T) {
	r := rng.New(3)
	xs := rng.WideRange(r, 3000, -300, 300)
	a := New(40)
	a.AddAll(xs)
	for trial := 0; trial < 5; trial++ {
		b := New(40)
		b.AddAll(rng.Reorder(r, xs))
		ba, bb := a.Bins(), b.Bins()
		for i := range ba {
			if ba[i] != bb[i] {
				t.Fatalf("trial %d: bin %d differs (%g vs %g)", trial, i, ba[i], bb[i])
			}
		}
		if a.Float64() != b.Float64() {
			t.Fatalf("trial %d: Float64 differs", trial)
		}
	}
}

func TestZeroSumExact(t *testing.T) {
	r := rng.New(4)
	xs := rng.ZeroSum(r, 4096, 0.001)
	a := New(40)
	a.AddAll(xs)
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
	if !a.IsZero() {
		t.Errorf("zero-sum set: %s", a.Rat().RatString())
	}
	if got := a.Float64(); got != 0 {
		t.Errorf("Float64 = %g", got)
	}
}

func TestFullDoubleRange(t *testing.T) {
	// Unlike the fixed-point methods, binned summation covers the entire
	// double range with no (N, k) choice.
	xs := []float64{
		math.MaxFloat64 / 2, -math.MaxFloat64 / 2,
		math.SmallestNonzeroFloat64, 1e308, -1e308, 42,
	}
	a := New(40)
	a.AddAll(xs)
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
	oracle := exact.New()
	oracle.AddAll(xs)
	if a.Rat().Cmp(oracle.Rat()) != 0 {
		t.Error("full-range sum diverged from oracle")
	}
	// The huge terms cancel exactly; the rounded result is ~42.
	if got, want := a.Float64(), oracle.Float64(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Float64 = %g, want %g", got, want)
	}
}

func TestHighBinScaling(t *testing.T) {
	// Values whose slices land in the scaled bins must still sum exactly.
	r := rng.New(6)
	var xs []float64
	for i := 0; i < 500; i++ {
		xs = append(xs, r.Exp2Uniform(900, 1020))
	}
	a := New(40)
	a.AddAll(xs)
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
	oracle := exact.New()
	oracle.AddAll(xs)
	if a.Rat().Cmp(oracle.Rat()) != 0 {
		t.Error("high-bin sum diverged from oracle")
	}
	if got, want := a.Float64(), oracle.Float64(); got != want && math.Abs(got/want-1) > 1e-15 {
		t.Errorf("Float64 = %g, want %g", got, want)
	}
}

func TestBudgetLatch(t *testing.T) {
	a := New(44) // budget 2^8 = 256
	if a.MaxSummands() != 256 {
		t.Fatalf("MaxSummands = %d", a.MaxSummands())
	}
	for i := 0; i < 256; i++ {
		a.Add(1.0)
	}
	if a.Err() != nil {
		t.Fatalf("within budget: %v", a.Err())
	}
	a.Add(1.0)
	if a.Err() != ErrTooManySummands {
		t.Errorf("Err = %v", a.Err())
	}
	if a.Count() != 257 {
		t.Errorf("Count = %d", a.Count())
	}
}

func TestNonFiniteLatch(t *testing.T) {
	a := New(40)
	a.Add(math.NaN())
	if a.Err() != ErrNotFinite {
		t.Errorf("Err = %v", a.Err())
	}
	a.Reset()
	if a.Err() != nil || a.Count() != 0 || !a.IsZero() {
		t.Error("Reset incomplete")
	}
}

func TestMerge(t *testing.T) {
	r := rng.New(5)
	xs := rng.UniformSet(r, 2000, -0.5, 0.5)
	whole := New(40)
	whole.AddAll(xs)

	a := New(40)
	a.AddAll(xs[:1000])
	b := New(40)
	b.AddAll(xs[1000:])
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
	if a.Count() != 2000 {
		t.Errorf("merged count = %d", a.Count())
	}
	wa, aa := whole.Bins(), a.Bins()
	for i := range wa {
		if wa[i] != aa[i] {
			t.Fatalf("bin %d differs after merge", i)
		}
	}
	if err := a.Merge(New(30)); err == nil {
		t.Error("mismatched W accepted")
	}
}

func TestWFor(t *testing.T) {
	w, err := WFor(4096)
	if err != nil || w != 40 {
		t.Errorf("WFor(4096) = %d, %v", w, err)
	}
	w, err = WFor(32 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if int64(1)<<uint(52-w) < 32<<20 {
		t.Errorf("WFor(32M) = %d too narrow", w)
	}
	if _, err := WFor(1 << 50); err == nil {
		t.Error("absurd budget accepted")
	}
}

func TestNewPanicsOnBadW(t *testing.T) {
	for _, w := range []int{7, 45, 0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("W=%d accepted", w)
				}
			}()
			New(w)
		}()
	}
}

func TestSumHelper(t *testing.T) {
	got, err := Sum(40, []float64{0.1, 0.2, -0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := exact.Sum([]float64{0.1, 0.2, -0.3})
	if got != want {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestSubnormalInputs(t *testing.T) {
	min := math.SmallestNonzeroFloat64
	a := New(40)
	a.AddAll([]float64{min, min, min, -min})
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
	oracle := exact.New()
	oracle.AddAll([]float64{min, min, min, -min})
	if a.Rat().Cmp(oracle.Rat()) != 0 {
		t.Error("subnormal sum diverged")
	}
	if got := a.Float64(); got != 2*min {
		t.Errorf("Float64 = %g, want %g", got, 2*min)
	}
}
