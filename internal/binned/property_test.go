package binned

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/exact"
)

// anyFinite generates arbitrary finite float64 values over the full
// exponent range — binned summation has no range restriction.
type anyFinite float64

func (anyFinite) Generate(r *rand.Rand, _ int) reflect.Value {
	e := -1070 + r.Intn(2090)
	x := math.Ldexp(1+r.Float64(), e)
	if r.Intn(2) == 1 {
		x = -x
	}
	return reflect.ValueOf(anyFinite(x))
}

var quickCfg = &quick.Config{MaxCount: 300}

// Any multiset of finite doubles within the budget sums exactly.
func TestPropExactOverFullRange(t *testing.T) {
	f := func(vs [24]anyFinite) bool {
		a := New(30) // budget 2^22
		o := exact.New()
		for _, v := range vs {
			a.Add(float64(v))
			o.Add(float64(v))
		}
		return a.Err() == nil && a.Rat().Cmp(o.Rat()) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Bin states are identical for any two orderings of the same multiset.
func TestPropBinsOrderInvariant(t *testing.T) {
	f := func(vs [16]anyFinite) bool {
		a := New(40)
		b := New(40)
		for _, v := range vs {
			a.Add(float64(v))
		}
		for i := len(vs) - 1; i >= 0; i-- {
			b.Add(float64(vs[i]))
		}
		ba, bb := a.Bins(), b.Bins()
		for i := range ba {
			if math.Float64bits(ba[i]) != math.Float64bits(bb[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Merging split accumulators equals accumulating whole.
func TestPropMergeEquivalence(t *testing.T) {
	f := func(vs [20]anyFinite, splitAt uint8) bool {
		cut := int(splitAt) % len(vs)
		whole := New(36)
		a := New(36)
		b := New(36)
		for i, v := range vs {
			whole.Add(float64(v))
			if i < cut {
				a.Add(float64(v))
			} else {
				b.Add(float64(v))
			}
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		wa, aa := whole.Bins(), a.Bins()
		for i := range wa {
			if math.Float64bits(wa[i]) != math.Float64bits(aa[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
