package core

// Accumulator is the convenience type for summing many float64 values into
// one HP number. It owns a conversion scratch buffer so the hot
// convert-and-add path performs no allocation, and it records the first
// overflow/underflow sticky error rather than failing mid-stream, so a long
// reduction can be checked once at the end.
//
// An Accumulator is not safe for concurrent use; see Atomic for the
// CAS-based shared accumulator of paper §III.B.2.
type Accumulator struct {
	sum     *HP
	scratch *HP      // product conversion scratch (AddProductExact)
	mag     []uint64 // magnitude scratch for Float64, reused across calls
	err     error
	wrapOK  bool // signed-overflow wraps are expected, not errors
}

// NewAccumulator returns a zeroed accumulator with the given parameters.
func NewAccumulator(p Params) *Accumulator {
	return &Accumulator{sum: New(p), scratch: New(p), mag: make([]uint64, p.N)}
}

// AllowWrap marks signed-overflow wraps as expected rather than errors:
// Add and AddHP let the two's-complement value wrap silently (conversion
// range faults still set the sticky error). Because multi-limb addition is
// exact mod 2^(64N), a wrapped intermediate that is later brought back in
// range by values of the opposite sign loses nothing; parallel drivers
// whose block partials may legitimately wrap (see scan) use this mode so
// the error outcome cannot depend on the decomposition. It returns a.
func (a *Accumulator) AllowWrap() *Accumulator {
	a.wrapOK = true
	return a
}

// Params returns the accumulator's HP parameters.
func (a *Accumulator) Params() Params { return a.sum.p }

// Add converts x and adds it to the running sum via the fused sparse
// kernel ((*HP).AddFloat64): only the limbs selected by x's exponent are
// touched, plus however far the carry propagates. Conversion or addition
// faults set the sticky error (first one wins) and leave the sum unchanged
// for conversion faults; addition overflow wraps, as integer hardware would.
func (a *Accumulator) Add(x float64) {
	overflow, err := a.sum.AddFloat64(x)
	if err != nil {
		if a.err == nil {
			a.err = err
		}
		return
	}
	if overflow && !a.wrapOK {
		mOverflow.Inc()
		if a.err == nil {
			a.err = ErrOverflow
		}
	}
}

// AddAll adds every element of xs.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// AddHP adds a partial sum in HP form (for combining per-worker partials).
func (a *Accumulator) AddHP(x *HP) {
	if x.p != a.sum.p {
		if a.err == nil {
			a.err = ErrParamMismatch
		}
		return
	}
	if a.sum.Add(x) && !a.wrapOK {
		mOverflow.Inc()
		if a.err == nil {
			a.err = ErrOverflow
		}
	}
}

// Merge folds another accumulator's partial sum into a, propagating its
// sticky error: the natural combine step when per-worker partials are
// reduced into a final result.
func (a *Accumulator) Merge(from *Accumulator) {
	if from.err != nil && a.err == nil {
		a.err = from.err
	}
	a.AddHP(from.sum)
}

// Err returns the first overflow/underflow/conversion error, or nil.
func (a *Accumulator) Err() error { return a.err }

// Sum returns the accumulated HP value (not a copy; it remains owned by a).
func (a *Accumulator) Sum() *HP { return a.sum }

// Float64 returns the running sum rounded to float64. Unlike HP.Float64 it
// reuses the accumulator's magnitude scratch buffer, so per-element
// rounding loops (scan phase 2 calls this once per output element) do not
// allocate.
func (a *Accumulator) Float64() float64 {
	return limbsToFloat64(a.sum.limbs, a.sum.p.K, a.mag)
}

// Reset zeroes the sum and clears the sticky error.
func (a *Accumulator) Reset() {
	a.sum.SetZero()
	a.err = nil
}

// Sum computes the HP sum of xs with parameters p, returning the rounded
// float64 result. It reports the first range error encountered, if any.
func Sum(p Params, xs []float64) (float64, error) {
	a := NewAccumulator(p)
	a.AddAll(xs)
	return a.Float64(), a.Err()
}

// SumHP is like Sum but returns the full-precision HP result.
func SumHP(p Params, xs []float64) (*HP, error) {
	a := NewAccumulator(p)
	a.AddAll(xs)
	return a.Sum(), a.Err()
}
