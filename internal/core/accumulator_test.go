package core

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/rng"
)

func TestAccumulatorBasic(t *testing.T) {
	a := NewAccumulator(Params192)
	if a.Params() != Params192 {
		t.Errorf("Params = %v", a.Params())
	}
	a.Add(1.5)
	a.Add(-0.25)
	a.Add(2.0)
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	if got := a.Float64(); got != 3.25 {
		t.Errorf("sum = %g, want 3.25", got)
	}
	a.Reset()
	if !a.Sum().IsZero() || a.Err() != nil {
		t.Error("Reset incomplete")
	}
}

func TestAccumulatorStickyError(t *testing.T) {
	a := NewAccumulator(Params128)
	a.Add(1)
	a.Add(1e300) // overflow: sticky
	a.Add(2)     // still accumulated
	if a.Err() != ErrOverflow {
		t.Errorf("Err = %v, want ErrOverflow", a.Err())
	}
	if got := a.Float64(); got != 3 {
		t.Errorf("sum after skipped conversion = %g, want 3", got)
	}
	// First error wins.
	a.Add(math.Ldexp(1, -100)) // underflow, but overflow came first
	if a.Err() != ErrOverflow {
		t.Errorf("sticky error replaced: %v", a.Err())
	}
}

func TestAccumulatorAddHP(t *testing.T) {
	a := NewAccumulator(Params192)
	a.Add(1.5)
	partial, err := FromFloat64(Params192, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	a.AddHP(partial)
	if got := a.Float64(); got != 4 {
		t.Errorf("sum = %g, want 4", got)
	}
	wrong := New(Params128)
	a.AddHP(wrong)
	if a.Err() != ErrParamMismatch {
		t.Errorf("Err = %v, want ErrParamMismatch", a.Err())
	}
}

func TestSumHelpers(t *testing.T) {
	r := rng.New(11)
	xs := rng.UniformSet(r, 1000, -0.5, 0.5)
	got, err := Sum(Params384, xs)
	if err != nil {
		t.Fatal(err)
	}
	if want := exact.Sum(xs); got != want {
		t.Errorf("Sum = %g, want %g", got, want)
	}
	hp, err := SumHP(Params384, xs)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Float64() != got {
		t.Error("SumHP and Sum disagree")
	}
}

// Splitting a reduction into per-worker partials and combining them with
// AddHP must give the same limbs as one sequential pass — the structure all
// of the paper's parallel experiments rely on.
func TestAccumulatorPartialCombination(t *testing.T) {
	r := rng.New(12)
	xs := rng.UniformSet(r, 4096, -0.5, 0.5)
	whole := NewAccumulator(Params384)
	whole.AddAll(xs)

	for _, pieces := range []int{2, 3, 7, 16} {
		combined := NewAccumulator(Params384)
		chunk := (len(xs) + pieces - 1) / pieces
		for lo := 0; lo < len(xs); lo += chunk {
			hi := lo + chunk
			if hi > len(xs) {
				hi = len(xs)
			}
			part := NewAccumulator(Params384)
			part.AddAll(xs[lo:hi])
			if part.Err() != nil {
				t.Fatal(part.Err())
			}
			combined.AddHP(part.Sum())
		}
		if combined.Err() != nil {
			t.Fatal(combined.Err())
		}
		if !combined.Sum().Equal(whole.Sum()) {
			t.Errorf("pieces=%d: partial combination differs from sequential", pieces)
		}
	}
}
