package core

import (
	"math"
	"math/bits"
)

// Adaptive is an HP accumulator that widens its own format at runtime to
// accommodate any range of inputs — the extension the paper names as future
// work in §V ("extend the HP method to adaptively adjust precision at
// runtime"). It starts from an initial Params and, whenever a value would
// overflow the whole part or underflow the fractional part, grows the
// affected side by exactly the limbs required (plus a configurable slack)
// and remaps the running sum losslessly.
//
// Because every widening is exact and every addition is exact, the final
// value is independent of both the order of the additions and the sequence
// of widenings they trigger: order invariance is preserved even though
// intermediate formats may differ between runs.
type Adaptive struct {
	sum *HP
	// slack limbs added beyond the minimum on each growth, to amortize
	// repeated widenings over monotone workloads.
	slack int
}

// NewAdaptive returns an adaptive accumulator starting at p, growing by at
// least one extra limb of slack per widening.
func NewAdaptive(p Params) *Adaptive {
	return &Adaptive{sum: New(p), slack: 1}
}

// Params returns the current (possibly widened) format.
func (a *Adaptive) Params() Params { return a.sum.p }

// widen grows the format by moreWhole whole limbs and moreFrac fractional
// limbs, remapping the running sum exactly: the limb vector is sign-extended
// at the most significant end and zero-padded at the least significant end.
func (a *Adaptive) widen(moreWhole, moreFrac int) {
	old := a.sum
	p := Params{N: old.p.N + moreWhole + moreFrac, K: old.p.K + moreFrac}
	next := New(p)
	ext := uint64(0)
	if old.IsNeg() {
		ext = ^uint64(0)
	}
	for i := 0; i < moreWhole; i++ {
		next.limbs[i] = ext
	}
	copy(next.limbs[moreWhole:], old.limbs)
	// The trailing moreFrac limbs stay zero: the value is unchanged.
	a.sum = next
	mAdaptiveWidenings.Inc()
	mAdaptiveLimbs.Set(int64(p.N))
}

// need returns how many extra whole/frac limbs are required to represent x
// exactly in the current format (zero values mean it already fits).
func (a *Adaptive) need(x float64) (moreWhole, moreFrac int) {
	if x == 0 {
		return 0, 0
	}
	frac, exp := math.Frexp(x)
	if frac < 0 {
		frac = -frac
	}
	m := uint64(frac * (1 << 53))
	tz := bits.TrailingZeros64(m)
	lowBit := exp - 53 + tz // position of x's lowest set bit (power of two)
	highBit := exp - 1      // position of x's highest set bit
	p := a.sum.p
	if lowBit < -64*p.K {
		moreFrac = (-lowBit - 64*p.K + 63) / 64
	}
	// The magnitude must fit below the sign bit: highBit <= 64*(N-K)-2.
	if highBit > 64*(p.N-p.K)-2 {
		moreWhole = (highBit - (64*(p.N-p.K) - 2) + 63) / 64
	}
	return moreWhole, moreFrac
}

// Add adds x exactly, widening the format first if required. It returns
// ErrNotFinite for NaN/Inf; it cannot overflow or underflow.
func (a *Adaptive) Add(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return ErrNotFinite
	}
	if mw, mf := a.need(x); mw > 0 || mf > 0 {
		if mw > 0 {
			mw += a.slack
		}
		if mf > 0 {
			mf += a.slack
		}
		a.widen(mw, mf)
	}
	// Conversion cannot fail now; addition may still overflow the whole
	// part through accumulation, in which case we widen and retry. The
	// steady-state path is a single fused sparse add with no allocation:
	// rather than cloning the running sum to cover the rare overflow, the
	// wrapped add is rolled back by its exact inverse (two's-complement
	// addition is a group, so subtracting x restores the pre-add limbs
	// bit-for-bit, wrap included).
	overflow, err := a.sum.AddFloat64(x)
	if err != nil {
		return err
	}
	if overflow {
		if _, err := a.sum.SubFloat64(x); err != nil {
			return err
		}
		a.widen(1+a.slack, 0)
		overflow, err = a.sum.AddFloat64(x)
		if err != nil {
			return err
		}
		if overflow {
			// Cannot happen: one extra limb absorbs any single addition.
			return ErrOverflow
		}
	}
	return nil
}

// AddAll adds every element of xs, stopping at the first non-finite value.
func (a *Adaptive) AddAll(xs []float64) error {
	for _, x := range xs {
		if err := a.Add(x); err != nil {
			return err
		}
	}
	return nil
}

// Sum returns the current sum (owned by a; Clone to keep it).
func (a *Adaptive) Sum() *HP { return a.sum }

// Float64 returns the running sum rounded to float64.
func (a *Adaptive) Float64() float64 { return a.sum.Float64() }
