package core

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/rng"
)

func TestAdaptiveNoWidenWhenInRange(t *testing.T) {
	a := NewAdaptive(Params192)
	for _, v := range []float64{1, -0.5, 1e10, math.Ldexp(1, -100)} {
		if err := a.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if a.Params() != Params192 {
		t.Errorf("widened unnecessarily to %v", a.Params())
	}
}

func TestAdaptiveWidensFraction(t *testing.T) {
	a := NewAdaptive(Params128) // resolution 2^-64
	if err := a.Add(math.Ldexp(1, -100)); err != nil {
		t.Fatal(err)
	}
	p := a.Params()
	if p.K < 2 {
		t.Errorf("expected fractional widening, got %v", p)
	}
	if got := a.Float64(); got != math.Ldexp(1, -100) {
		t.Errorf("value after widening = %g", got)
	}
}

func TestAdaptiveWidensWhole(t *testing.T) {
	a := NewAdaptive(Params128) // range < 2^63
	if err := a.Add(math.Ldexp(1, 100)); err != nil {
		t.Fatal(err)
	}
	p := a.Params()
	if p.N-p.K < 3 {
		t.Errorf("expected whole widening, got %v", p)
	}
	if got := a.Float64(); got != math.Ldexp(1, 100) {
		t.Errorf("value after widening = %g", got)
	}
}

func TestAdaptiveWidensOnAccumulatedOverflow(t *testing.T) {
	// Each value fits, but the running sum outgrows the whole part.
	a := NewAdaptive(Params128)
	v := math.Ldexp(1, 62)
	for i := 0; i < 8; i++ {
		if err := a.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	want := math.Ldexp(1, 65)
	if got := a.Float64(); got != want {
		t.Errorf("sum = %g, want %g (params now %v)", got, want, a.Params())
	}
}

func TestAdaptivePreservesNegativeOnWiden(t *testing.T) {
	a := NewAdaptive(Params128)
	if err := a.Add(-3.5); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(math.Ldexp(1, 100)); err != nil { // forces whole widening
		t.Fatal(err)
	}
	if err := a.Add(math.Ldexp(1, -100)); err != nil { // forces frac widening
		t.Fatal(err)
	}
	oracle := exact.New()
	oracle.AddAll([]float64{-3.5, math.Ldexp(1, 100), math.Ldexp(1, -100)})
	if a.Sum().Rat().Cmp(oracle.Rat()) != 0 {
		t.Errorf("widening lost value: %s vs oracle %s",
			a.Sum().Rat().RatString(), oracle.Rat().RatString())
	}
}

func TestAdaptiveFullDoubleRange(t *testing.T) {
	// The whole point of the extension: any finite double works, including
	// extremes of the exponent range, without a priori parameter choice.
	a := NewAdaptive(Params128)
	vals := []float64{
		math.MaxFloat64,
		-math.MaxFloat64 / 4,
		math.SmallestNonzeroFloat64,
		-math.SmallestNonzeroFloat64,
		1.0,
	}
	oracle := exact.New()
	for _, v := range vals {
		if err := a.Add(v); err != nil {
			t.Fatalf("Add(%g): %v", v, err)
		}
		oracle.Add(v)
	}
	if a.Sum().Rat().Cmp(oracle.Rat()) != 0 {
		t.Error("adaptive sum diverged from oracle over full double range")
	}
	if got, want := a.Float64(), oracle.Float64(); got != want {
		t.Errorf("Float64 = %g, want %g", got, want)
	}
}

func TestAdaptiveOrderInvariantAcrossWideningOrders(t *testing.T) {
	// Different input orders trigger different widening sequences, but the
	// final value must be identical.
	r := rng.New(5)
	vals := []float64{1e200, 1e-200, -1, 42.5, math.Ldexp(1, -900), math.Ldexp(1, 900)}
	a := NewAdaptive(Params128)
	if err := a.AddAll(vals); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		b := NewAdaptive(Params128)
		if err := b.AddAll(rng.Reorder(r, vals)); err != nil {
			t.Fatal(err)
		}
		if a.Sum().Rat().Cmp(b.Sum().Rat()) != 0 {
			t.Fatalf("trial %d: order-dependent adaptive result", trial)
		}
		if a.Float64() != b.Float64() {
			t.Fatalf("trial %d: Float64 differs", trial)
		}
	}
}

func TestAdaptiveRejectsNonFinite(t *testing.T) {
	a := NewAdaptive(Params128)
	if err := a.Add(math.NaN()); err != ErrNotFinite {
		t.Errorf("NaN: %v", err)
	}
	if err := a.Add(math.Inf(-1)); err != ErrNotFinite {
		t.Errorf("-Inf: %v", err)
	}
	if !a.Sum().IsZero() {
		t.Error("rejected values must not change the sum")
	}
}
