//go:build amd64 && !purego

package core

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/cpu"
)

// This file proves the amd64 assembly kernels bit-identical to the
// portable Go loops on the machine running the tests: the superaccumulator
// AVX2 front loop against addChunkGeneric across formats, slice shapes,
// and special values; the unrolled ADC limb kernels against the bits.Add64
// chains on full-range random limb vectors; and the stripe fold. The
// purego CI lane runs the same suites with every assembly entry point
// compiled out, so the generic loops remain independently covered.

// requireAVX2 skips differential tests on hardware without the AVX2 lane
// — unless REPRO_REQUIRE_ASM is set (the CI amd64 lane), where silent
// fallback must fail the job, not skip it.
func requireAVX2(t *testing.T) {
	t.Helper()
	if useAVX2() {
		return
	}
	if os.Getenv("REPRO_REQUIRE_ASM") != "" {
		t.Fatalf("REPRO_REQUIRE_ASM set but AVX2 lane unavailable (AsmEnabled=%v, features=%q)",
			AsmEnabled(), cpu.Features())
	}
	t.Skip("AVX2 lane unavailable on this machine")
}

// TestAsmActiveWhenRequired fails loudly when the CI runner that is meant
// to exercise the assembly lane would silently run generic code instead.
func TestAsmActiveWhenRequired(t *testing.T) {
	if os.Getenv("REPRO_REQUIRE_ASM") == "" {
		t.Skip("REPRO_REQUIRE_ASM not set")
	}
	if !cpu.AsmAllowed() {
		t.Fatalf("REPRO_REQUIRE_ASM set but cpu.AsmAllowed() = false (kill switch %v, features %q)",
			cpu.KillSwitch(), cpu.Features())
	}
	if !AsmEnabled() {
		t.Fatal("REPRO_REQUIRE_ASM set but core.AsmEnabled() = false")
	}
	if !cpu.X86.HasAVX2 || !useAVX2() {
		t.Fatalf("REPRO_REQUIRE_ASM set but AVX2 front loop not selected (features %q)", cpu.Features())
	}
	if kernelFor(Params384) == nil || !kernelFor(Params384).asm {
		t.Fatal("REPRO_REQUIRE_ASM set but kernelFor(Params384) is not the assembly kernel")
	}
}

// superTwins builds one superaccumulator on the assembly lane and one on
// the generic lane, regardless of the process-wide dispatch default.
func superTwins(t *testing.T, p Params) (asm, gen *SuperAccumulator) {
	t.Helper()
	prev := SetAsmEnabled(true)
	asm = NewSuper(p)
	SetAsmEnabled(false)
	gen = NewSuper(p)
	SetAsmEnabled(prev)
	if !asm.avx2 {
		t.Fatal("twin construction did not select the AVX2 lane")
	}
	if gen.avx2 {
		t.Fatal("twin construction did not select the generic lane")
	}
	return asm, gen
}

// diffSupers drives both twins through identical AddSlice calls and
// compares every piece of observable state: canonical limbs, rounded
// float64, sticky error, watermark, and per-bin stripe totals.
func diffSupers(t *testing.T, asm, gen *SuperAccumulator, slices [][]float64) {
	t.Helper()
	for _, xs := range slices {
		asm.AddSlice(xs)
		gen.AddSlice(xs)
	}
	if asm.lo != gen.lo || asm.hi != gen.hi {
		t.Fatalf("watermark diverged: asm [%d,%d], generic [%d,%d]", asm.lo, asm.hi, gen.lo, gen.hi)
	}
	for i := 0; i < asm.nbins; i++ {
		if a, g := binTotal(asm, i), binTotal(gen, i); a != g {
			t.Fatalf("bin %d total diverged: asm %d, generic %d", i, a, g)
		}
	}
	if (asm.Err() == nil) != (gen.Err() == nil) || (asm.Err() != nil && asm.Err().Error() != gen.Err().Error()) {
		t.Fatalf("sticky error diverged: asm %v, generic %v", asm.Err(), gen.Err())
	}
	if !asm.Sum().Equal(gen.Sum()) {
		t.Fatalf("canonical sum diverged:\n  asm     %s\n  generic %s", asm.Sum(), gen.Sum())
	}
	if a, g := asm.Float64(), gen.Float64(); math.Float64bits(a) != math.Float64bits(g) {
		t.Fatalf("rounded sum diverged: asm %x, generic %x", math.Float64bits(a), math.Float64bits(g))
	}
}

// TestAsmChunkMatchesGeneric: the AVX2 front loop against the generic loop
// on every shipped and degenerate format, over value streams spanning the
// format range plus the full slow-path menagerie.
func TestAsmChunkMatchesGeneric(t *testing.T) {
	requireAVX2(t)
	specials := []float64{
		0, math.Copysign(0, -1),
		math.Inf(1), math.Inf(-1), math.NaN(),
		0x1p-1074, -0x1p-1074, 0x1p-1022, // subnormals and the normal edge
		math.MaxFloat64, -math.MaxFloat64,
		1, -1, 0.5, 1.5, 1e308, 1e-308,
	}
	for _, p := range batchFormats {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			xs := batchValues(p, 99, 4000)
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 200; i++ {
				xs[r.Intn(len(xs))] = specials[r.Intn(len(specials))]
			}
			// Deliver as ragged sub-slices so chunk boundaries land at
			// every alignment relative to the vector width.
			var slices [][]float64
			for off := 0; off < len(xs); {
				n := r.Intn(97) + 1
				if off+n > len(xs) {
					n = len(xs) - off
				}
				slices = append(slices, xs[off:off+n])
				off += n
			}
			asm, gen := superTwins(t, p)
			diffSupers(t, asm, gen, slices)
		})
	}
}

// TestAsmChunkShortSlices: every length 0..40 from an unaligned backing
// offset, interleaved with spills, so the vector/scalar boundary and the
// sub-4 tail are each hit at every position.
func TestAsmChunkShortSlices(t *testing.T) {
	requireAVX2(t)
	backing := batchValues(Params384, 5, 64)
	backing[7] = 0            // gate miss inside the first vector group
	backing[13] = math.Inf(1) // sticky error mid-stream
	backing[14] = 0x1p-1074   // subnormal slow path
	asm, gen := superTwins(t, Params384)
	for n := 0; n <= 40; n++ {
		for off := 0; off < 3; off++ {
			xs := backing[off : off+n]
			asm.AddSlice(xs)
			gen.AddSlice(xs)
		}
		if n%8 == 0 {
			asm.Spill()
			gen.Spill()
		}
	}
	diffSupers(t, asm, gen, nil)
}

// TestAsmKernelsMatchGeneric: the ADC limb kernels against the bits.Add64
// chains on full-range random vectors — every shipped width, addVec and
// foldCounts, including counts with both signs and the wrap-prone edges.
func TestAsmKernelsMatchGeneric(t *testing.T) {
	if !AsmEnabled() {
		if os.Getenv("REPRO_REQUIRE_ASM") != "" {
			t.Fatal("REPRO_REQUIRE_ASM set but assembly dispatch is off")
		}
		t.Skip("assembly dispatch off")
	}
	r := rand.New(rand.NewSource(11))
	edge := []uint64{0, 1, math.MaxUint64, 1 << 63, 1<<63 - 1, 1<<62 + 1}
	randLimbs := func(n int) []uint64 {
		v := make([]uint64, n)
		for i := range v {
			if r.Intn(4) == 0 {
				v[i] = edge[r.Intn(len(edge))]
			} else {
				v[i] = r.Uint64()
			}
		}
		return v
	}
	for _, n := range []int{2, 3, 6, 8} {
		ka, kg := asmKernelFor(n), kernelForN(n)
		if ka == nil || !ka.asm {
			t.Fatalf("asmKernelFor(%d) missing", n)
		}
		for trial := 0; trial < 5000; trial++ {
			dstA := randLimbs(n)
			dstG := append([]uint64(nil), dstA...)
			src := randLimbs(n)
			ka.addVec(dstA, src)
			kg.addVec(dstG, src)
			for i := range dstA {
				if dstA[i] != dstG[i] {
					t.Fatalf("addVec%d limb %d: asm %#x, generic %#x", n, i, dstA[i], dstG[i])
				}
			}
			if ka.foldCounts == nil {
				continue
			}
			vvA := randLimbs(n)
			vvG := append([]uint64(nil), vvA...)
			cA := randLimbs(n)
			// The live counts obey |count| <= MaxBatchAdds, but the kernels
			// are exact mod 2^64 for any input; fuzz the full range.
			cG := append([]uint64(nil), cA...)
			ka.foldCounts(vvA, cA)
			kg.foldCounts(vvG, cG)
			for i := range vvA {
				if vvA[i] != vvG[i] || cA[i] != cG[i] {
					t.Fatalf("foldCounts%d limb %d: asm (%#x,%#x), generic (%#x,%#x)",
						n, i, vvA[i], cA[i], vvG[i], cG[i])
				}
			}
		}
	}
}

// kernelForN returns the generic Go kernel for a shipped width, bypassing
// the asm-first dispatch in kernelFor.
func kernelForN(n int) *limbKernel {
	switch n {
	case 2:
		return kern2
	case 3:
		return kern3
	case 6:
		return kern6
	case 8:
		return kern8
	}
	return nil
}

// TestFoldStripesAsmMatchesGeneric: the AVX2 stripe fold against the
// portable loop — same sums, same zeroing — on random striped states.
func TestFoldStripesAsmMatchesGeneric(t *testing.T) {
	requireAVX2(t)
	r := rand.New(rand.NewSource(3))
	for _, nb := range []int{1, 2, 3, 7, 64, 331} {
		binsA := make([]int64, superStripes*nb)
		for i := range binsA {
			binsA[i] = int64(r.Uint64())
		}
		binsG := append([]int64(nil), binsA...)
		dstA := make([]int64, nb)
		dstG := make([]int64, nb)
		foldStripesAVX2(&dstA[0], &binsA[0], int64(nb))
		foldStripesGeneric(dstG, binsG)
		for i := range dstA {
			if dstA[i] != dstG[i] {
				t.Fatalf("nb=%d dst[%d]: asm %d, generic %d", nb, i, dstA[i], dstG[i])
			}
		}
		for i := range binsA {
			if binsA[i] != 0 || binsG[i] != 0 {
				t.Fatalf("nb=%d stripe %d not zeroed (asm %d, generic %d)", nb, i, binsA[i], binsG[i])
			}
		}
	}
}

// FuzzAsmKernelDifferential feeds arbitrary byte strings, reinterpreted as
// float64 streams, through the assembly and generic superaccumulator lanes
// and requires bit-identical canonical sums, errors, and watermarks. The
// CI fuzz smoke runs this continuously for a short budget; local `go test
// -fuzz` explores further.
func FuzzAsmKernelDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f})                         // 1.0
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8}) // +Inf then noise
	seed := make([]byte, 8*37)
	r := rand.New(rand.NewSource(23))
	for i := range seed {
		seed[i] = byte(r.Intn(256))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		if !useAVX2() {
			t.Skip("AVX2 lane unavailable")
		}
		xs := make([]float64, 0, len(raw)/8+1)
		for len(raw) >= 8 {
			bits := uint64(raw[0]) | uint64(raw[1])<<8 | uint64(raw[2])<<16 | uint64(raw[3])<<24 |
				uint64(raw[4])<<32 | uint64(raw[5])<<40 | uint64(raw[6])<<48 | uint64(raw[7])<<56
			xs = append(xs, math.Float64frombits(bits))
			raw = raw[8:]
		}
		for _, p := range []Params{Params128, Params384} {
			prev := SetAsmEnabled(true)
			asm := NewSuper(p)
			SetAsmEnabled(false)
			gen := NewSuper(p)
			SetAsmEnabled(prev)
			asm.AddSlice(xs)
			gen.AddSlice(xs)
			if asm.lo != gen.lo || asm.hi != gen.hi {
				t.Fatalf("%s watermark: asm [%d,%d] generic [%d,%d]", p, asm.lo, asm.hi, gen.lo, gen.hi)
			}
			if (asm.Err() == nil) != (gen.Err() == nil) {
				t.Fatalf("%s error: asm %v generic %v", p, asm.Err(), gen.Err())
			}
			if !asm.Sum().Equal(gen.Sum()) {
				t.Fatalf("%s sum: asm %s generic %s", p, asm.Sum(), gen.Sum())
			}
		}
	})
}
