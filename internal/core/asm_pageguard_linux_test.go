//go:build linux && amd64 && !purego

package core

import (
	"syscall"
	"testing"
	"unsafe"
)

// TestAsmChunkAtPageBoundary places input slices flush against an
// mmap-guarded PROT_NONE page and runs the AVX2 front loop over them: any
// vector load that reads even one byte past the slice end faults instead
// of silently returning garbage. This pins the loop's contract that the
// 32-byte loads are only issued when four full elements remain.
func TestAsmChunkAtPageBoundary(t *testing.T) {
	requireAVX2(t)
	pg := syscall.Getpagesize()
	mem, err := syscall.Mmap(-1, 0, 2*pg, syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		t.Fatal(err)
	}
	defer syscall.Munmap(mem)
	if err := syscall.Mprotect(mem[pg:], syscall.PROT_NONE); err != nil {
		t.Fatal(err)
	}
	page := unsafe.Slice((*float64)(unsafe.Pointer(&mem[0])), pg/8)
	vals := batchValues(Params384, 17, len(page))
	copy(page, vals)
	page[len(page)-1] = 0 // gate miss as the very last element before the guard
	asm, gen := superTwins(t, Params384)
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 31, len(page)} {
		xs := page[len(page)-n:] // ends exactly at the guard page
		asm.AddSlice(xs)
		gen.AddSlice(xs)
	}
	diffSupers(t, asm, gen, nil)
}
