package core

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Atomic is an HP accumulator that many goroutines may add to concurrently,
// implementing the paper's §III.B.2 atomicity property: each of the N limb
// additions is performed with one atomic read-modify-write, carries are
// computed thread-locally from the observed old/new values, and the final
// state equals the sequential sum regardless of interleaving (limb-wise
// fetch-adds commute, and each adder injects exactly the carries its own
// addend produced).
//
// Two flavors are provided: AddHP uses the hardware fetch-add
// (atomic.AddUint64, LOCK XADD on amd64); AddHPCAS uses the
// compare-and-swap loop the paper describes, since CAS is the only primitive
// it assumes is available (e.g. in CUDA). Both produce identical results;
// the ablation benchmark compares their throughput under contention.
type Atomic struct {
	p     Params
	limbs []atomic.Uint64 // big-endian, like HP
}

// NewAtomic returns a zeroed atomic accumulator with parameters p.
func NewAtomic(p Params) *Atomic {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Atomic{p: p, limbs: make([]atomic.Uint64, p.N)}
}

// Params returns the accumulator's HP parameters.
func (a *Atomic) Params() Params { return a.p }

// AddHP atomically adds x to the accumulator using fetch-add per limb.
// Carries out of the most significant limb wrap, as in two's-complement
// hardware; the caller is responsible for choosing parameters with enough
// headroom (overflow detection by sign comparison is inherently racy across
// limbs and is therefore not attempted here, matching the paper).
func (a *Atomic) AddHP(x *HP) {
	if x.p != a.p {
		panic(ErrParamMismatch)
	}
	var carry, depth uint64
	for i := a.p.N - 1; i >= 0; i-- {
		if carry != 0 {
			depth++ // local bookkeeping only; free next to the LOCK XADD below
		}
		delta := x.limbs[i] + carry
		carry = 0
		if delta < x.limbs[i] { // delta wrapped: x.limbs[i] was all ones and carry was 1
			carry = 1
		}
		if delta == 0 {
			continue // nothing to add to this limb; carry (if any) moves up
		}
		next := a.limbs[i].Add(delta)
		if next < delta { // the fetch-add wrapped: carry out of this limb
			carry++
		}
	}
	if telemetry.Enabled() {
		mAddHP.Inc()
		mCarryDepth.Observe(float64(depth))
	}
}

// AddHPCAS is AddHP implemented with a compare-and-swap loop per limb, the
// construction the paper demonstrates on CUDA.
func (a *Atomic) AddHPCAS(x *HP) {
	if x.p != a.p {
		panic(ErrParamMismatch)
	}
	var carry, depth, retries uint64
	for i := a.p.N - 1; i >= 0; i-- {
		if carry != 0 {
			depth++
		}
		delta := x.limbs[i] + carry
		carry = 0
		if delta < x.limbs[i] {
			carry = 1
		}
		if delta == 0 {
			continue
		}
		for {
			old := a.limbs[i].Load()
			next, co := bits.Add64(old, delta, 0)
			if a.limbs[i].CompareAndSwap(old, next) {
				carry += co
				break
			}
			retries++ // lost the race to a concurrent adder on this limb
		}
	}
	if telemetry.Enabled() {
		mAddHPCAS.Inc()
		mCASRetries.Add(retries)
		mCarryDepth.Observe(float64(depth))
	}
}

// AddBatch flushes a locally accumulated batch into the shared sum with a
// single full-width pass of fetch-adds: b is normalized, its canonical
// limbs are added like AddHP, and b is reset so the caller can keep
// accumulating into it. A whole block of summands therefore costs at most
// N atomic operations instead of up to two per element. The batch's sticky
// conversion fault (if any) is returned and cleared with the reset.
func (a *Atomic) AddBatch(b *BatchAccumulator) error {
	err := b.Err()
	a.AddHP(b.Sum())
	b.Reset()
	return err
}

// AddFloat64 atomically adds the float64 x via the fused sparse kernel:
// the value decomposes thread-locally into a stack-resident two-limb
// window (no scratch *HP required), and only the limbs the exponent
// selects — plus actual carries — are touched with fetch-adds. The final
// state is identical to converting into an HP scratch and calling AddHP,
// for every interleaving.
func (a *Atomic) AddFloat64(x float64) error {
	if x == 0 {
		return nil
	}
	d, err := decomposeFloat64(a.p, x)
	if err != nil {
		return err
	}
	var depth uint64
	if d.neg {
		depth = atomicSubSparse(a.limbs, d)
	} else {
		depth = atomicAddSparse(a.limbs, d)
	}
	if telemetry.Enabled() {
		mAddHP.Inc()
		mCarryDepth.Observe(float64(depth))
	}
	return nil
}

// AddFloat64CAS is AddFloat64 implemented with compare-and-swap loops per
// touched limb, matching AddHPCAS (the primitive the paper assumes on
// CUDA).
func (a *Atomic) AddFloat64CAS(x float64) error {
	if x == 0 {
		return nil
	}
	d, err := decomposeFloat64(a.p, x)
	if err != nil {
		return err
	}
	var depth, retries uint64
	if d.neg {
		depth, retries = atomicSubSparseCAS(a.limbs, d)
	} else {
		depth, retries = atomicAddSparseCAS(a.limbs, d)
	}
	if telemetry.Enabled() {
		mAddHPCAS.Inc()
		mCASRetries.Add(retries)
		mCarryDepth.Observe(float64(depth))
	}
	return nil
}

// Snapshot copies the current limbs into a plain HP value. Unlike the limb
// additions, a multi-limb read is not atomic as a whole: Snapshot is only
// meaningful once all writers have finished (e.g. after a barrier or
// WaitGroup), which is how the paper's CUDA kernel reads its partial sums
// back after completion.
func (a *Atomic) Snapshot() *HP {
	z := New(a.p)
	for i := range a.limbs {
		z.limbs[i] = a.limbs[i].Load()
	}
	return z
}

// Reset zeroes the accumulator. Like Snapshot, it must not race with adds.
func (a *Atomic) Reset() {
	for i := range a.limbs {
		a.limbs[i].Store(0)
	}
}
