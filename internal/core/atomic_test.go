package core

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestAtomicMatchesSequential is DESIGN.md property 6: concurrent atomic
// accumulation from many goroutines must equal the sequential HP sum
// bit-for-bit, for both the fetch-add and CAS flavors.
func TestAtomicMatchesSequential(t *testing.T) {
	p := Params384
	const workers = 8
	const perWorker = 2000
	r := rng.New(99)
	xs := rng.UniformSet(r, workers*perWorker, -0.5, 0.5)

	seq := NewAccumulator(p)
	seq.AddAll(xs)
	if seq.Err() != nil {
		t.Fatal(seq.Err())
	}

	for _, flavor := range []struct {
		name string
		add  func(a *Atomic, x *HP)
	}{
		{"fetch-add", func(a *Atomic, x *HP) { a.AddHP(x) }},
		{"cas", func(a *Atomic, x *HP) { a.AddHPCAS(x) }},
	} {
		t.Run(flavor.name, func(t *testing.T) {
			acc := NewAtomic(p)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(slice []float64) {
					defer wg.Done()
					scratch := New(p)
					for _, x := range slice {
						if err := scratch.SetFloat64(x); err != nil {
							t.Error(err)
							return
						}
						flavor.add(acc, scratch)
					}
				}(xs[w*perWorker : (w+1)*perWorker])
			}
			wg.Wait()
			if got := acc.Snapshot(); !got.Equal(seq.Sum()) {
				t.Errorf("atomic sum %#x != sequential %#x",
					got.Limbs(), seq.Sum().Limbs())
			}
		})
	}
}

// Carries crossing limb boundaries must survive concurrent interleaving:
// have every worker add a value that saturates the fractional limbs so
// nearly every addition produces inter-limb carries.
func TestAtomicCarryStress(t *testing.T) {
	p := Params{N: 3, K: 2}
	const workers = 8
	const perWorker = 5000
	// 2^-64 - 2^-117: 53 significant bits at the very bottom of limb 1,
	// guaranteeing carry chains into limb 0 as the sum accumulates.
	v := 0x1.fffffffffffffp-65
	seq := NewAccumulator(p)
	for i := 0; i < workers*perWorker; i++ {
		seq.Add(v)
	}
	if seq.Err() != nil {
		t.Fatal(seq.Err())
	}

	acc := NewAtomic(p)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := acc.AddFloat64(v); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := acc.Snapshot(); !got.Equal(seq.Sum()) {
		t.Errorf("carry stress: atomic %#x != sequential %#x",
			got.Limbs(), seq.Sum().Limbs())
	}
}

// Negative and positive values interleaved concurrently must cancel exactly.
func TestAtomicZeroSumConcurrent(t *testing.T) {
	p := Params192
	r := rng.New(3)
	xs := rng.ZeroSum(r, 16384, 0.001)
	acc := NewAtomic(p)
	var wg sync.WaitGroup
	const workers = 16
	chunk := len(xs) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slice []float64) {
			defer wg.Done()
			for _, x := range slice {
				if err := acc.AddFloat64(x); err != nil {
					t.Error(err)
					return
				}
			}
		}(xs[w*chunk : (w+1)*chunk])
	}
	wg.Wait()
	if got := acc.Snapshot(); !got.IsZero() {
		t.Errorf("concurrent zero-sum: got %s, want exact 0", got)
	}
}

func TestAtomicResetAndParams(t *testing.T) {
	p := Params192
	acc := NewAtomic(p)
	if acc.Params() != p {
		t.Errorf("Params = %v", acc.Params())
	}
	if err := acc.AddFloat64(1.5); err != nil {
		t.Fatal(err)
	}
	if acc.Snapshot().Float64() != 1.5 {
		t.Error("add lost")
	}
	acc.Reset()
	if !acc.Snapshot().IsZero() {
		t.Error("Reset did not zero")
	}
}

func TestAtomicParamMismatchPanics(t *testing.T) {
	acc := NewAtomic(Params192)
	x := New(Params128)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	acc.AddHP(x)
}

func TestAtomicRangeErrorPropagates(t *testing.T) {
	acc := NewAtomic(Params128)
	if err := acc.AddFloat64(1e300); err != ErrOverflow {
		t.Errorf("err = %v, want ErrOverflow", err)
	}
	if !acc.Snapshot().IsZero() {
		t.Error("failed conversion must not modify the accumulator")
	}
}
