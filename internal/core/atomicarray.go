package core

import (
	"math/bits"
	"sync/atomic"
)

// AtomicArray is a contiguous bank of HP atomic accumulators — the "256
// partial sums" structure of the paper's CUDA experiment — laid out so
// that no two accumulators share a cache line. With a []*Atomic the limbs
// of neighbouring accumulators can land on one line and every atomic add
// then ping-pongs the line between cores (false sharing); the padded
// layout removes that coupling. BenchmarkAblationPadding quantifies the
// difference.
type AtomicArray struct {
	p      Params
	stride int // limbs per slot, padded to a multiple of the cache line
	limbs  []atomic.Uint64
}

// cacheLineWords is the assumed cache line size in 8-byte words.
const cacheLineWords = 8

// NewAtomicArray returns a bank of count zeroed accumulators with
// parameters p. It panics if p is invalid or count < 1.
func NewAtomicArray(p Params, count int) *AtomicArray {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if count < 1 {
		panic("core: AtomicArray count < 1")
	}
	stride := (p.N + cacheLineWords - 1) / cacheLineWords * cacheLineWords
	return &AtomicArray{
		p:      p,
		stride: stride,
		limbs:  make([]atomic.Uint64, stride*count),
	}
}

// Params returns the accumulators' HP parameters.
func (a *AtomicArray) Params() Params { return a.p }

// Len returns the number of accumulators in the bank.
func (a *AtomicArray) Len() int { return len(a.limbs) / a.stride }

// slot returns the limb window of accumulator i (most significant first).
func (a *AtomicArray) slot(i int) []atomic.Uint64 {
	return a.limbs[i*a.stride : i*a.stride+a.p.N]
}

// AddHP atomically adds x to accumulator i using fetch-add per limb, with
// the same carry hand-off as Atomic.AddHP.
func (a *AtomicArray) AddHP(i int, x *HP) {
	if x.p != a.p {
		panic(ErrParamMismatch)
	}
	s := a.slot(i)
	var carry uint64
	for j := a.p.N - 1; j >= 0; j-- {
		delta := x.limbs[j] + carry
		carry = 0
		if delta < x.limbs[j] {
			carry = 1
		}
		if delta == 0 {
			continue
		}
		next := s[j].Add(delta)
		if next < delta {
			carry++
		}
	}
}

// AddHPCAS is AddHP with compare-and-swap loops, matching Atomic.AddHPCAS.
func (a *AtomicArray) AddHPCAS(i int, x *HP) {
	if x.p != a.p {
		panic(ErrParamMismatch)
	}
	s := a.slot(i)
	var carry uint64
	for j := a.p.N - 1; j >= 0; j-- {
		delta := x.limbs[j] + carry
		carry = 0
		if delta < x.limbs[j] {
			carry = 1
		}
		if delta == 0 {
			continue
		}
		for {
			old := s[j].Load()
			next, co := bits.Add64(old, delta, 0)
			if s[j].CompareAndSwap(old, next) {
				carry += co
				break
			}
		}
	}
}

// AddFloat64 atomically adds the float64 x to accumulator i via the fused
// sparse kernel: the value decomposes into a stack-resident two-limb
// window, so no caller-owned scratch HP is needed.
func (a *AtomicArray) AddFloat64(i int, x float64) error {
	if x == 0 {
		return nil
	}
	d, err := decomposeFloat64(a.p, x)
	if err != nil {
		return err
	}
	s := a.slot(i)
	if d.neg {
		atomicSubSparse(s, d)
	} else {
		atomicAddSparse(s, d)
	}
	return nil
}

// AddFloat64CAS is AddFloat64 with compare-and-swap loops, matching
// AddHPCAS.
func (a *AtomicArray) AddFloat64CAS(i int, x float64) error {
	if x == 0 {
		return nil
	}
	d, err := decomposeFloat64(a.p, x)
	if err != nil {
		return err
	}
	s := a.slot(i)
	if d.neg {
		atomicSubSparseCAS(s, d)
	} else {
		atomicAddSparseCAS(s, d)
	}
	return nil
}

// AddBatch flushes a locally accumulated batch into accumulator i with one
// full-width pass of fetch-adds (at most N atomic operations for the whole
// batch, versus up to two per element through AddFloat64). b is normalized,
// added, and reset so the caller can keep accumulating into it; its sticky
// conversion fault (if any) is returned and cleared with the reset.
func (a *AtomicArray) AddBatch(i int, b *BatchAccumulator) error {
	err := b.Err()
	a.AddHP(i, b.Sum())
	b.Reset()
	return err
}

// AddSlice accumulates xs thread-locally through the carry-save batch
// kernel and flushes the block total into accumulator i with a single
// full-width atomic pass — the bulk path for block-partitioned writers.
// scratch is reset and reused (pass the same one across calls to stay
// allocation-free); a nil scratch allocates a private batch. The first
// conversion fault in xs is returned; faulting elements do not contribute.
func (a *AtomicArray) AddSlice(i int, xs []float64, scratch *BatchAccumulator) error {
	if scratch == nil {
		scratch = NewBatch(a.p)
	} else {
		scratch.Reset()
	}
	scratch.AddSlice(xs)
	return a.AddBatch(i, scratch)
}

// Snapshot copies accumulator i into a plain HP value; as with Atomic, the
// read is only meaningful after all writers have finished.
func (a *AtomicArray) Snapshot(i int) *HP {
	z := New(a.p)
	s := a.slot(i)
	for j := range s {
		z.limbs[j] = s[j].Load()
	}
	return z
}

// Combine folds every accumulator into one HP sum (after writers finish).
func (a *AtomicArray) Combine() (*HP, error) {
	acc := NewAccumulator(a.p)
	for i := 0; i < a.Len(); i++ {
		acc.AddHP(a.Snapshot(i))
	}
	return acc.Sum(), acc.Err()
}

// Reset zeroes every accumulator; must not race with adds.
func (a *AtomicArray) Reset() {
	for i := range a.limbs {
		a.limbs[i].Store(0)
	}
}
