package core

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

func TestAtomicArrayLayout(t *testing.T) {
	a := NewAtomicArray(Params384, 4)
	if a.Len() != 4 {
		t.Errorf("Len = %d", a.Len())
	}
	if a.Params() != Params384 {
		t.Error("Params")
	}
	// Stride is a cache-line multiple and covers N limbs.
	if a.stride%cacheLineWords != 0 || a.stride < Params384.N {
		t.Errorf("stride = %d", a.stride)
	}
	// Adjacent slots do not overlap.
	if err := a.AddFloat64(0, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := a.AddFloat64(1, 2.5); err != nil {
		t.Fatal(err)
	}
	if a.Snapshot(0).Float64() != 1.5 || a.Snapshot(1).Float64() != 2.5 {
		t.Error("slots interfere")
	}
	if a.Snapshot(2).Float64() != 0 {
		t.Error("untouched slot dirty")
	}
	sum, err := a.Combine()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Float64() != 4 {
		t.Errorf("Combine = %g", sum.Float64())
	}
	a.Reset()
	if s, _ := a.Combine(); !s.IsZero() {
		t.Error("Reset incomplete")
	}
}

func TestAtomicArrayConcurrentMatchesSequential(t *testing.T) {
	p := Params384
	const workers = 8
	const perWorker = 2000
	const slots = 16
	r := rng.New(93)
	xs := rng.UniformSet(r, workers*perWorker, -0.5, 0.5)

	seq := NewAccumulator(p)
	seq.AddAll(xs)

	for _, cas := range []bool{false, true} {
		bank := NewAtomicArray(p, slots)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, slice []float64) {
				defer wg.Done()
				scratch := New(p)
				for i, x := range slice {
					if err := scratch.SetFloat64(x); err != nil {
						t.Error(err)
						return
					}
					slot := (w + i) % slots
					if cas {
						bank.AddHPCAS(slot, scratch)
					} else {
						bank.AddHP(slot, scratch)
					}
				}
			}(w, xs[w*perWorker:(w+1)*perWorker])
		}
		wg.Wait()
		got, err := bank.Combine()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(seq.Sum()) {
			t.Errorf("cas=%v: bank sum differs from sequential", cas)
		}
	}
}

func TestAtomicArrayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("count=0 accepted")
		}
	}()
	NewAtomicArray(Params128, 0)
}

func TestAtomicArrayParamMismatch(t *testing.T) {
	a := NewAtomicArray(Params128, 2)
	x := New(Params192)
	defer func() {
		if recover() == nil {
			t.Error("param mismatch accepted")
		}
	}()
	a.AddHP(0, x)
}
