package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/rng"
)

func TestAtomicArrayLayout(t *testing.T) {
	a := NewAtomicArray(Params384, 4)
	if a.Len() != 4 {
		t.Errorf("Len = %d", a.Len())
	}
	if a.Params() != Params384 {
		t.Error("Params")
	}
	// Stride is a cache-line multiple and covers N limbs.
	if a.stride%cacheLineWords != 0 || a.stride < Params384.N {
		t.Errorf("stride = %d", a.stride)
	}
	// Adjacent slots do not overlap.
	if err := a.AddFloat64(0, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := a.AddFloat64(1, 2.5); err != nil {
		t.Fatal(err)
	}
	if a.Snapshot(0).Float64() != 1.5 || a.Snapshot(1).Float64() != 2.5 {
		t.Error("slots interfere")
	}
	if a.Snapshot(2).Float64() != 0 {
		t.Error("untouched slot dirty")
	}
	sum, err := a.Combine()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Float64() != 4 {
		t.Errorf("Combine = %g", sum.Float64())
	}
	a.Reset()
	if s, _ := a.Combine(); !s.IsZero() {
		t.Error("Reset incomplete")
	}
}

func TestAtomicArrayConcurrentMatchesSequential(t *testing.T) {
	p := Params384
	const workers = 8
	const perWorker = 2000
	const slots = 16
	r := rng.New(93)
	xs := rng.UniformSet(r, workers*perWorker, -0.5, 0.5)

	seq := NewAccumulator(p)
	seq.AddAll(xs)

	for _, cas := range []bool{false, true} {
		bank := NewAtomicArray(p, slots)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, slice []float64) {
				defer wg.Done()
				scratch := New(p)
				for i, x := range slice {
					if err := scratch.SetFloat64(x); err != nil {
						t.Error(err)
						return
					}
					slot := (w + i) % slots
					if cas {
						bank.AddHPCAS(slot, scratch)
					} else {
						bank.AddHP(slot, scratch)
					}
				}
			}(w, xs[w*perWorker:(w+1)*perWorker])
		}
		wg.Wait()
		got, err := bank.Combine()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(seq.Sum()) {
			t.Errorf("cas=%v: bank sum differs from sequential", cas)
		}
	}
}

func TestAtomicArrayBatchFlushMatchesSequential(t *testing.T) {
	p := Params384
	const workers = 8
	const perWorker = 2000
	const slots = 4
	xs := rng.UniformSet(rng.New(94), workers*perWorker, -0.5, 0.5)

	seq := NewAccumulator(p)
	seq.AddAll(xs)

	bank := NewAtomicArray(p, slots)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, slice []float64) {
			defer wg.Done()
			// Flush in several sub-blocks through one reused scratch to
			// exercise the reset-and-continue path.
			scratch := NewBatch(p)
			for len(slice) > 0 {
				n := min(512, len(slice))
				if err := bank.AddSlice(w%slots, slice[:n], scratch); err != nil {
					t.Error(err)
					return
				}
				slice = slice[n:]
			}
		}(w, xs[w*perWorker:(w+1)*perWorker])
	}
	wg.Wait()
	got, err := bank.Combine()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seq.Sum()) {
		t.Error("bulk-flushed bank sum differs from sequential")
	}
}

func TestAtomicArrayAddSliceFaults(t *testing.T) {
	p := Params128
	bank := NewAtomicArray(p, 1)
	// nil scratch allocates internally; the NaN is reported and skipped,
	// finite elements still land.
	err := bank.AddSlice(0, []float64{1.5, math.NaN(), 2.5}, nil)
	if err != ErrNotFinite {
		t.Fatalf("err = %v, want ErrNotFinite", err)
	}
	if got := bank.Snapshot(0).Float64(); got != 4 {
		t.Errorf("slot = %g, want 4", got)
	}
	// A reused scratch carries no state or error across calls.
	scratch := NewBatch(p)
	if err := bank.AddSlice(0, []float64{1e300}, scratch); err != ErrOverflow {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
	if err := bank.AddSlice(0, []float64{1}, scratch); err != nil {
		t.Fatal(err)
	}
	if got := bank.Snapshot(0).Float64(); got != 5 {
		t.Errorf("slot = %g, want 5", got)
	}
}

func TestAtomicArrayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("count=0 accepted")
		}
	}()
	NewAtomicArray(Params128, 0)
}

func TestAtomicArrayParamMismatch(t *testing.T) {
	a := NewAtomicArray(Params128, 2)
	x := New(Params192)
	defer func() {
		if recover() == nil {
			t.Error("param mismatch accepted")
		}
	}()
	a.AddHP(0, x)
}
