package core

import (
	"math"
	"math/bits"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// coreFlight records overflow verdicts in the flight recorder. Overflow is
// a cold, sticky-error event, so the always-on recording never touches the
// add hot loops.
var coreFlight = trace.Subsystem("core")

// This file implements the carry-save batch accumulation kernel. The fused
// sparse kernel (sparse.go) already reduced each float64 to a two-limb
// window, but every add still propagates its carry to quiescence and pays a
// data-dependent branch on the value's sign and on each carry step. The
// batch accumulator defers instead: each add touches exactly the two limbs
// the value's exponent selects, and the carry (or borrow) that escapes that
// 128-bit window is recorded as a pending *count* against the next limb up
// — one wrapping integer increment, no loop, no data-dependent branch. A
// counted Normalize folds the pending counts back into the value limbs,
// producing the canonical two's-complement HP bit pattern.
//
// Deferral does not disturb order-invariance or exactness: the represented
// value is
//
//	V + sum_i sext64(c_i) * 2^(64*(N-1-i))   (mod 2^(64N))
//
// where V is the value-limb vector and c_i the pending count into limb i.
// Every add updates that quantity by exactly the addend (mod 2^(64N)),
// limb-window adds and count increments both commute, and Normalize is the
// identity on the represented value — so the canonical result after
// Normalize equals the full-width sequential sum bit for bit, no matter
// when or how often carries were resolved. See DESIGN.md §10 for the
// adds-before-normalize bound and the proof sketch.

// MaxBatchAdds is the provable maximum number of adds a BatchAccumulator
// accepts between normalizations. Each add changes exactly one pending
// counter by at most ±1, so after A adds every counter's signed magnitude
// is at most A; Normalize additionally feeds each counter a running carry
// of at most ±1, so sign-correct folding needs A + 1 < 2^63. The limit is
// held two bits below that with 2^62, leaving margin while remaining
// unreachable in practice (at 10^8 adds/sec, ~1400 years). AddSlice and
// Add normalize automatically when the counted bound is hit.
const MaxBatchAdds = 1 << 62

// BatchAccumulator sums float64 values into an HP number using the
// carry-save kernel: a branch-light two-limb add per value and deferred
// carry normalization. It is the fastest serial hot loop in the package
// (see BENCH_sum.json, workload "serial-batch") and the building block for
// the per-thread partials of the parallel reductions.
//
// Semantics relative to Accumulator: conversion range errors (NaN/Inf,
// overflow, underflow of an input element) are detected identically,
// per element, and recorded as the same sticky first error. Signed-overflow
// *wraps*, however, are not observable per add — carries are deferred, so
// the accumulator operates in wrapping mode (exact mod 2^(64N)), like
// Accumulator.AllowWrap. Callers that need the per-add sign-rule verdict on
// a canonical trajectory use AddChecked, which normalizes around a single
// add (scan phase 2 does this).
//
// A BatchAccumulator is not safe for concurrent use; give each goroutine
// its own and combine with Merge, or flush into an Atomic/AtomicArray.
type BatchAccumulator struct {
	p Params
	// vbuf[1:] holds the value limbs (big-endian, HP layout); vbuf[0] is a
	// spill slot so the window add can write "limb idx-1" unconditionally —
	// when idx is 0 the carry out of the top limb lands there and wraps,
	// exactly as the full-width chain discards it.
	vbuf []uint64
	vv   []uint64 // = vbuf[1:]
	// cbuf[j] counts pending carries into limb j-2 (the first limb above a
	// window at j), as a wrapping two's-complement int64. cbuf[0] and
	// cbuf[1] are spill slots for windows at the top of the format, whose
	// escaped carries wrap away.
	cbuf    []uint64
	pending uint64 // adds since the last fold; bounded by limit
	limit   uint64 // normally MaxBatchAdds; lowered in tests
	// Fast-path gate: a biased exponent e with uint(e-eMin) <= uint(eSpan)
	// is a nonzero normal float64 whose window provably fits the format, so
	// the branchless path applies; everything else (zeros, subnormals,
	// NaN/Inf, range faults) takes the decomposeFloat64 slow path.
	eMin, eSpan int
	sBias       int // s = e + sBias is the bit offset of the significand
	err         error
	sum         *HP         // lazily allocated canonical view, reused by Sum
	mag         []uint64    // magnitude scratch for Float64, reused across calls
	kern        *limbKernel // unrolled full-width kernel, nil for generic formats
}

// NewBatch returns a zeroed batch accumulator with the given parameters.
// It panics if p is invalid; use Params.Validate to check first.
func NewBatch(p Params) *BatchAccumulator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	vbuf := make([]uint64, p.N+1)
	b := &BatchAccumulator{
		p:     p,
		vbuf:  vbuf,
		vv:    vbuf[1:],
		cbuf:  make([]uint64, p.N),
		limit: MaxBatchAdds,
		sBias: 64*p.K - 1075,
		mag:   make([]uint64, p.N),
		kern:  kernelFor(p),
	}
	// Gate bounds: s >= 0 keeps the significand wholly above the fractional
	// cutoff, and 53+s <= 64N-1 keeps its 53 bits (every normal float64 has
	// bit 52 set) inside the signed range. Outside [1, 2046] the exponent
	// encodes a zero, subnormal, or non-finite value. gateBounds clamps the
	// window closed for degenerate formats where it would be empty.
	b.eMin, b.eSpan = gateBounds(p)
	return b
}

// Params returns the accumulator's HP parameters.
func (b *BatchAccumulator) Params() Params { return b.p }

// Err returns the first conversion range error (NaN/Inf, overflow,
// underflow), or nil. Signed-overflow wraps are not errors; see the type
// comment.
func (b *BatchAccumulator) Err() error { return b.err }

// Reset zeroes the accumulator and clears the sticky error.
func (b *BatchAccumulator) Reset() {
	for i := range b.vbuf {
		b.vbuf[i] = 0
	}
	for i := range b.cbuf {
		b.cbuf[i] = 0
	}
	b.pending = 0
	b.err = nil
}

// Add adds one value via the carry-save kernel. For long inputs prefer
// AddSlice, which amortizes the bound check over the whole slice.
func (b *BatchAccumulator) Add(x float64) {
	if b.pending >= b.limit {
		b.Normalize()
	}
	b.pending++
	b.add1(x)
}

// AddSlice adds every element of xs — the batch hot loop. Conversion range
// errors set the sticky error and skip the offending element, exactly as
// Accumulator.AddAll does.
func (b *BatchAccumulator) AddSlice(xs []float64) {
	if telemetry.Enabled() {
		mBatchAdds.Add(uint64(len(xs)))
	}
	for len(xs) > 0 {
		room := b.limit - b.pending
		if room == 0 {
			b.Normalize()
			room = b.limit
		}
		chunk := xs
		if uint64(len(chunk)) > room {
			chunk = xs[:room]
		}
		b.pending += uint64(len(chunk))
		b.addChunk(chunk)
		xs = xs[len(chunk):]
	}
}

// addChunk is the branchless inner loop: per element, one exponent-range
// compare, a handful of ALU ops to form the signed two-limb window, two
// bits.Add64 into the value limbs, and one wrapping counter update. The
// sign is folded in arithmetically (conditional 128-bit negation via the
// sign mask), so mixed-sign streams cost no mispredicted branches.
func (b *BatchAccumulator) addChunk(xs []float64) {
	vv, vbuf, cbuf := b.vv, b.vbuf, b.cbuf
	eMin, eSpan, sBias := b.eMin, b.eSpan, b.sBias
	top := b.p.N - 1
	for _, x := range xs {
		bv := math.Float64bits(x)
		e := int(bv >> 52 & 0x7ff)
		if uint(e-eMin) > uint(eSpan) {
			b.addSlow(x)
			continue
		}
		m := bv&(1<<52-1) | 1<<52
		s := e + sBias
		off := uint(s) & 63
		lo := m << off
		hi := m >> (64 - off) // off==0: shift by 64 reads as 0
		// smask is all-ones for negative x: the window is negated as one
		// 128-bit quantity and the escaped carry count is decremented
		// (all-ones above a two's-complement window is a pending -1).
		smask := uint64(int64(bv) >> 63)
		dlo, c0 := bits.Add64(lo^smask, smask&1, 0)
		dhi, _ := bits.Add64(hi^smask, 0, c0)
		idx := top - s>>6
		var c1, c2 uint64
		vv[idx], c1 = bits.Add64(vv[idx], dlo, 0)
		vbuf[idx], c2 = bits.Add64(vbuf[idx], dhi, c1) // limb idx-1, or spill
		cbuf[idx] += c2 + smask
	}
}

// add1 is addChunk for a single value, kept separate so Add stays cheap to
// inline-call without constructing a slice.
func (b *BatchAccumulator) add1(x float64) {
	bv := math.Float64bits(x)
	e := int(bv >> 52 & 0x7ff)
	if uint(e-b.eMin) > uint(b.eSpan) {
		b.addSlow(x)
		return
	}
	m := bv&(1<<52-1) | 1<<52
	s := e + b.sBias
	off := uint(s) & 63
	lo := m << off
	hi := m >> (64 - off)
	smask := uint64(int64(bv) >> 63)
	dlo, c0 := bits.Add64(lo^smask, smask&1, 0)
	dhi, _ := bits.Add64(hi^smask, 0, c0)
	idx := b.p.N - 1 - s>>6
	var c1, c2 uint64
	b.vv[idx], c1 = bits.Add64(b.vv[idx], dlo, 0)
	b.vbuf[idx], c2 = bits.Add64(b.vbuf[idx], dhi, c1)
	b.cbuf[idx] += c2 + smask
}

// addSlow handles everything the gate rejects: zeros (no-ops), subnormals
// and limb-aligned shifts (via decomposeFloat64, so acceptance and error
// identity match the fused path exactly), and NaN/Inf/range faults (sticky
// error, accumulator untouched).
func (b *BatchAccumulator) addSlow(x float64) {
	if x == 0 {
		return
	}
	d, err := decomposeFloat64(b.p, x)
	if err != nil {
		if b.err == nil {
			b.err = err
		}
		return
	}
	var smask uint64
	if d.neg {
		smask = ^uint64(0)
	}
	dlo, c0 := bits.Add64(d.lo^smask, smask&1, 0)
	dhi, _ := bits.Add64(d.hi^smask, 0, c0)
	var c1, c2 uint64
	b.vv[d.idx], c1 = bits.Add64(b.vv[d.idx], dlo, 0)
	b.vbuf[d.idx], c2 = bits.Add64(b.vbuf[d.idx], dhi, c1)
	b.cbuf[d.idx] += c2 + smask
}

// Normalize folds the pending carry counts into the value limbs, restoring
// the canonical two's-complement form — bit-identical to the fused path's
// state after the same adds, because both compute the same sum mod
// 2^(64N). It is a no-op when nothing is pending; when counts are pending
// but all zero (carries escaped no window since the last fold — the common
// case for well-scaled data) it costs one pass over the counter words.
func (b *BatchAccumulator) Normalize() {
	if b.pending == 0 {
		return
	}
	b.pending = 0
	b.vbuf[0] = 0 // discard wrapped spill from top-of-format windows
	if telemetry.Enabled() {
		mBatchNormalizes.Inc()
	}
	if b.p.N < 3 {
		return // every window reaches the top limb: nothing ever defers
	}
	var any uint64
	for _, c := range b.cbuf[2:] {
		any |= c
	}
	if any == 0 {
		return
	}
	if telemetry.Enabled() {
		mBatchFolds.Inc()
	}
	if b.kern != nil {
		b.kern.foldCounts(b.vv, b.cbuf)
		return
	}
	// Counts are signed and bounded (|count| <= limit < 2^62), and the
	// running inter-limb carry h is at most ±1, so d never overflows and
	// each step is a single Add64 or Sub64. The final carry out of limb 0
	// wraps, exactly as full-width addition would.
	var h int64
	for i := b.p.N - 3; i >= 0; i-- {
		d := h + int64(b.cbuf[i+2])
		b.cbuf[i+2] = 0
		if d >= 0 {
			var co uint64
			b.vv[i], co = bits.Add64(b.vv[i], uint64(d), 0)
			h = int64(co)
		} else {
			var bo uint64
			b.vv[i], bo = bits.Sub64(b.vv[i], uint64(-d), 0)
			h = -int64(bo)
		}
	}
}

// AddHP adds a canonical HP value (a partial sum) in wrapping mode. The
// pending counters are untouched: full-width addition commutes with the
// deferred fold.
func (b *BatchAccumulator) AddHP(x *HP) {
	if x.p != b.p {
		if b.err == nil {
			b.err = ErrParamMismatch
		}
		return
	}
	b.addVec(x.limbs)
}

// addVec adds the big-endian limb vector into the value limbs as one
// wrapping full-width quantity, through the unrolled kernel when one is
// selected for the format.
func (b *BatchAccumulator) addVec(src []uint64) {
	if b.kern != nil {
		b.kern.addVec(b.vv, src)
		return
	}
	var c uint64
	for i := b.p.N - 1; i >= 0; i-- {
		b.vv[i], c = bits.Add64(b.vv[i], src[i], c)
	}
}

// Merge folds another batch accumulator's partial sum into b, propagating
// its sticky error — the combine step when per-worker partials reduce into
// a final result.
func (b *BatchAccumulator) Merge(from *BatchAccumulator) {
	if from.err != nil && b.err == nil {
		b.err = from.err
	}
	if from.p != b.p {
		if b.err == nil {
			b.err = ErrParamMismatch
		}
		return
	}
	from.Normalize()
	b.addVec(from.vv)
}

// MergeChecked is Merge with the paper's sign-rule overflow test applied to
// the combine: both sides are normalized first, and if the two canonical
// partials agree in sign while their sum's sign differs, the combined value
// exceeded the representable range and ErrOverflow is recorded (sticky,
// after any earlier error from either side). Reductions use this so that
// overflow is decided at the deterministic combine points rather than
// inside a block, where the verdict would depend on the decomposition.
func (b *BatchAccumulator) MergeChecked(from *BatchAccumulator) {
	if from.err != nil && b.err == nil {
		b.err = from.err
	}
	if from.p != b.p {
		if b.err == nil {
			b.err = ErrParamMismatch
		}
		return
	}
	b.Normalize()
	from.Normalize()
	s0, s1 := b.vv[0]>>63, from.vv[0]>>63
	b.addVec(from.vv)
	if s0 == s1 && b.vv[0]>>63 != s0 && b.err == nil {
		mOverflow.Inc()
		coreFlight.Event("overflow", trace.Str("op", "merge-checked"))
		b.err = ErrOverflow
	}
}

// Sum normalizes and returns the canonical HP sum. The returned value is
// owned by b and reused across calls; Clone it to keep a copy.
func (b *BatchAccumulator) Sum() *HP {
	b.Normalize()
	if b.sum == nil {
		b.sum = New(b.p)
	}
	copy(b.sum.limbs, b.vv)
	return b.sum
}

// Float64 normalizes and returns the running sum rounded to float64
// (round to nearest, ties to even), through a reused magnitude buffer so
// per-element rounding loops do not allocate.
func (b *BatchAccumulator) Float64() float64 {
	b.Normalize()
	return limbsToFloat64(b.vv, b.p.K, b.mag)
}

// AddChecked adds one value with the paper's §III.B.1 sign-rule overflow
// verdict on the canonical trajectory: it normalizes around the add, so
// the before/after states are exactly the sequential prefix states and the
// verdict is identical to Accumulator.Add's for every decomposition. Scan
// phase 2 uses this to keep overflow detection worker-count-invariant
// while still adding through the batch kernel. Conversion faults set the
// sticky error and report no overflow.
func (b *BatchAccumulator) AddChecked(x float64) (overflow bool) {
	b.Normalize()
	s0 := b.vv[0] >> 63
	var sx uint64
	if math.Signbit(x) {
		sx = 1
	}
	b.pending++
	b.add1(x)
	b.Normalize()
	if s0 == sx && b.vv[0]>>63 != s0 {
		mOverflow.Inc()
		coreFlight.Event("overflow", trace.Str("op", "add-checked"))
		return true
	}
	return false
}

// AddRound is AddChecked followed by Float64, fused for per-element rebuild
// loops (scan phase 2 emits one rounded prefix per input element): the
// state is kept canonical across calls, so instead of scanning every
// pending counter the single carry (±1) the add lets escape its two-limb
// window is folded up the value limbs immediately, and the rounding reads
// the canonical limbs in place. Bit-identical to AddChecked + Float64 in
// value, verdict, and sticky error, for every input.
func (b *BatchAccumulator) AddRound(x float64) (out float64, overflow bool) {
	b.Normalize() // no-op when the previous call left the state canonical
	s0 := b.vv[0] >> 63
	bv := math.Float64bits(x)
	var idx int
	var lo, hi, smask uint64
	if e := int(bv >> 52 & 0x7ff); uint(e-b.eMin) <= uint(b.eSpan) {
		m := bv&(1<<52-1) | 1<<52
		s := e + b.sBias
		off := uint(s) & 63
		lo = m << off
		hi = m >> (64 - off)
		smask = uint64(int64(bv) >> 63)
		idx = b.p.N - 1 - s>>6
	} else {
		if x == 0 {
			return limbsToFloat64(b.vv, b.p.K, b.mag), false
		}
		d, err := decomposeFloat64(b.p, x)
		if err != nil {
			if b.err == nil {
				b.err = err
			}
			return limbsToFloat64(b.vv, b.p.K, b.mag), false
		}
		lo, hi, idx = d.lo, d.hi, d.idx
		if d.neg {
			smask = ^uint64(0)
		}
	}
	dlo, c0 := bits.Add64(lo^smask, smask&1, 0)
	dhi, _ := bits.Add64(hi^smask, 0, c0)
	var c1, c2 uint64
	b.vv[idx], c1 = bits.Add64(b.vv[idx], dlo, 0)
	b.vbuf[idx], c2 = bits.Add64(b.vbuf[idx], dhi, c1)
	if idx == 0 {
		b.vbuf[0] = 0 // carry out of the top limb wraps away
	} else if pend := c2 + smask; pend != 0 && idx >= 2 {
		// Fold the escaped ±1 up from the limb above the window; idx == 1
		// escapes past the top limb and wraps, like the spill above.
		if pend == 1 {
			for i := idx - 2; i >= 0; i-- {
				b.vv[i]++
				if b.vv[i] != 0 {
					break
				}
			}
		} else { // pend == ^uint64(0): a borrow
			for i := idx - 2; i >= 0; i-- {
				b.vv[i]--
				if b.vv[i] != ^uint64(0) {
					break
				}
			}
		}
	}
	if b.vv[0]>>63 != s0 && s0 == bv>>63 {
		mOverflow.Inc()
		coreFlight.Event("overflow", trace.Str("op", "add-round"))
		overflow = true
	}
	return limbsToFloat64(b.vv, b.p.K, b.mag), overflow
}
