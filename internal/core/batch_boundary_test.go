package core

import (
	"math"
	"testing"
)

// Table-driven boundary tests for the eMin/eSpan fast-path gate shared by
// the batch and super accumulators. The gate classifies a float64 by its
// raw biased exponent with a single unsigned compare; these tests pin its
// edges — the exponents just inside and just outside the window, the
// limb-aligned offsets where the window's high word relies on Go's shift
// semantics (m >> 64 == 0), subnormals, signed zeros — and assert every
// case bit-identical to the fused AddFloat64 path, for both kernels, on
// every format shape.

// gateBoundaryValues builds the boundary stream for format p: for each
// edge exponent, a power of two, an all-ones significand, and a half-set
// significand, in both signs.
func gateBoundaryValues(p Params) []float64 {
	eMin, eSpan := gateBounds(p)
	exps := []int{
		eMin - 1, eMin, eMin + 1,
		eMin + eSpan - 1, eMin + eSpan, eMin + eSpan + 1,
	}
	// Limb-aligned offsets inside the window: off = (e + sBias) & 63 == 0,
	// where the window's high word is m >> 64 and must read as zero.
	sBias := 64*p.K - 1075
	for s := 0; s <= eSpan+max(0, eMin+sBias); s += 64 {
		if e := s - sBias; e >= eMin && e <= eMin+eSpan {
			exps = append(exps, e)
		}
	}
	var xs []float64
	for _, e := range exps {
		if e < 0 || e > 2047 {
			continue
		}
		for _, mant := range []uint64{0, 1<<52 - 1, 1 << 51} {
			bv := uint64(e)<<52 | mant
			xs = append(xs, math.Float64frombits(bv), math.Float64frombits(bv|1<<63))
		}
	}
	// Subnormals (e == 0, nonzero mantissa) and signed zeros.
	xs = append(xs,
		math.Float64frombits(1),        // smallest subnormal
		math.Float64frombits(1<<52-1),  // largest subnormal
		-math.Float64frombits(1<<52-1), // negative subnormal
		0, math.Copysign(0, -1),
	)
	return xs
}

// TestGateBoundary: element by element and cumulatively, both deferred
// kernels agree with the fused path on every boundary value — acceptance,
// sticky error identity, and canonical limbs.
func TestGateBoundary(t *testing.T) {
	for _, p := range batchFormats {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			xs := gateBoundaryValues(p)
			oracle := New(p)
			b := NewBatch(p)
			s := NewSuper(p)
			var wantErr error
			for i, x := range xs {
				if _, err := oracle.AddFloat64(x); err != nil && wantErr == nil {
					wantErr = err
				}
				b.Add(x)
				s.Add(x)
				if b.Err() != wantErr || s.Err() != wantErr {
					t.Fatalf("value %d (%g, bits %016x): err batch=%v super=%v, want %v",
						i, x, math.Float64bits(x), b.Err(), s.Err(), wantErr)
				}
				if got := b.Sum(); !got.Equal(oracle) {
					t.Fatalf("value %d (%g, bits %016x): batch limbs diverged\nbatch %016x\nfused %016x",
						i, x, math.Float64bits(x), got.Limbs(), oracle.Limbs())
				}
				if got := s.Sum(); !got.Equal(oracle) {
					t.Fatalf("value %d (%g, bits %016x): super limbs diverged\nsuper %016x\nfused %016x",
						i, x, math.Float64bits(x), got.Limbs(), oracle.Limbs())
				}
			}
		})
	}
}

// TestGateBoundsNonNegative: for every Validate-accepted format the gate
// window is well-formed — eSpan >= 0 needs 64(N-K) >= -1020, which holds
// whenever K <= N — so the defensive clamp in gateBounds is unreachable
// through NewBatch/NewSuper. The sweep goes far past the shipped widths.
func TestGateBoundsNonNegative(t *testing.T) {
	for n := 1; n <= 64; n++ {
		for k := 0; k <= n; k++ {
			p := Params{N: n, K: k}
			if p.Validate() != nil {
				continue
			}
			eMin := max(1, 1075-64*k)
			eSpan := min(2046, 64*n-54+1075-64*k) - eMin
			if eSpan < 0 {
				t.Fatalf("%v: raw eSpan %d < 0 — gate assumptions broken", p, eSpan)
			}
			gm, gs := gateBounds(p)
			if gm != eMin || gs != eSpan {
				t.Fatalf("%v: gateBounds = (%d,%d), want (%d,%d)", p, gm, gs, eMin, eSpan)
			}
		}
	}
}

// TestGateDegenerateClamp: a degenerate window (eSpan < 0, impossible
// through Validate but the failure mode the clamp guards) must route every
// value to the slow path rather than index outside the bins. The clamp is
// exercised directly: an unsigned compare against a negative span would
// accept every exponent.
func TestGateDegenerateClamp(t *testing.T) {
	if eMin, eSpan := gateBounds(Params{N: -1, K: 17}); eSpan != 0 || eMin < 1<<29 {
		t.Fatalf("degenerate gateBounds = (%d,%d), want closed window", eMin, eSpan)
	}
	// With the gate forced closed on a live accumulator, every add takes
	// the slow path and the sum still matches the fused oracle bit for bit.
	p := Params384
	xs := batchValues(p, 8, 300)
	oracle := New(p)
	wantErr := addBatchOracle(oracle, xs)

	b := NewBatch(p)
	b.eMin, b.eSpan = 1<<30, 0
	b.AddSlice(xs)
	if b.Err() != wantErr || !b.Sum().Equal(oracle) {
		t.Fatal("closed-gate batch accumulator diverged from the fused path")
	}

	s := NewSuper(p)
	s.eMin = 1 << 30
	s.nbins = 1
	s.bins = s.bins[:superStripes]
	s.fold = s.fold[:1]
	s.lo, s.hi = 1, -1
	s.AddSlice(xs)
	if s.Err() != wantErr || !s.Sum().Equal(oracle) {
		t.Fatal("closed-gate super accumulator diverged from the fused path")
	}
}
