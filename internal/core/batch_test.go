package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/rng"
)

// batchFormats are the formats the batch kernel differential tests sweep:
// the canonical presets plus the degenerate shapes (N=1, two-limb, K=0,
// K=N) whose windows hit the spill slots.
var batchFormats = []Params{
	Params128, Params192, Params384, Params512,
	{N: 1, K: 0}, {N: 1, K: 1}, {N: 2, K: 0}, {N: 2, K: 2}, {N: 3, K: 3},
}

// batchValues returns a value stream tuned to format p: magnitudes spread
// across the whole representable exponent range, exact dyadic fractions,
// sign flips, zeros, and trailing-zero significands (the lo==0 window).
func batchValues(p Params, seed uint64, n int) []float64 {
	r := rand.New(rand.NewSource(int64(seed)))
	loExp := -64 * p.K
	hiExp := 64*(p.N-p.K) - 2
	xs := make([]float64, 0, n)
	for len(xs) < n {
		switch r.Intn(8) {
		case 0:
			xs = append(xs, 0, math.Copysign(0, -1))
		case 1: // single-bit values at random in-range exponents
			e := loExp + r.Intn(hiExp-loExp+1)
			xs = append(xs, math.Copysign(math.Ldexp(1, e), float64(1-2*r.Intn(2))))
		case 2: // trailing-zero significands: limb-aligned lo==0 windows
			if hiExp-1 < loExp {
				continue
			}
			e := loExp + 1 + r.Intn(hiExp-loExp)
			xs = append(xs, math.Copysign(math.Ldexp(1, e)+math.Ldexp(1, e-1), float64(1-2*r.Intn(2))))
		default:
			// Multi-bit significands placed so every bit is representable:
			// lowest bit at e >= loExp, highest at e+20 <= hiExp.
			span := hiExp - loExp - 20
			if span < 1 {
				continue
			}
			e := loExp + r.Intn(span)
			v := math.Ldexp(float64(1+r.Intn(1<<20)), e)
			if r.Intn(2) == 0 {
				v = -v
			}
			xs = append(xs, v)
		}
	}
	return xs[:n]
}

// addBatchOracle mirrors a batch add stream through the fused kernel,
// skipping exactly the elements the batch path rejects, and returns the
// first error. Wrap-mode: overflow verdicts are ignored, as the batch
// accumulator defines.
func addBatchOracle(z *HP, xs []float64) error {
	var first error
	for _, x := range xs {
		if _, err := z.AddFloat64(x); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TestPropBatchMatchesFused: from arbitrary starting states and value
// streams spanning the format range, AddSlice + Normalize produces limbs
// bit-identical to the fused sparse kernel, with the same sticky error
// identity, across every format shape.
func TestPropBatchMatchesFused(t *testing.T) {
	for _, p := range batchFormats {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for trial := uint64(0); trial < 20; trial++ {
				start := mixedLimbs(p, trial*977+13)
				xs := batchValues(p, trial, 500)

				oracle := start.Clone()
				wantErr := addBatchOracle(oracle, xs)

				b := NewBatch(p)
				b.AddHP(start)
				b.AddSlice(xs)
				if gotErr := b.Err(); gotErr != wantErr {
					t.Fatalf("trial %d: err %v, want %v", trial, gotErr, wantErr)
				}
				if got := b.Sum(); !got.Equal(oracle) {
					t.Fatalf("trial %d: limbs diverged\nbatch %016x\nfused %016x",
						trial, got.Limbs(), oracle.Limbs())
				}
			}
		})
	}
}

// TestPropBatchOrderInvariance: the canonical sum is identical no matter
// where Normalize falls — every batch boundary decomposition of the same
// stream, including per-element normalization, yields the same bits.
func TestPropBatchOrderInvariance(t *testing.T) {
	p := Params384
	xs := batchValues(p, 99, 2000)
	ref := NewBatch(p)
	ref.AddSlice(xs)
	want := ref.Sum().Clone()

	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		b := NewBatch(p)
		rest := xs
		for len(rest) > 0 {
			n := 1 + r.Intn(len(rest))
			b.AddSlice(rest[:n])
			rest = rest[n:]
			if r.Intn(2) == 0 {
				b.Normalize()
			}
		}
		if got := b.Sum(); !got.Equal(want) {
			t.Fatalf("trial %d: batch boundaries changed the sum\ngot  %016x\nwant %016x",
				trial, got.Limbs(), want.Limbs())
		}
	}

	// Shuffling the summands must not change the canonical sum either: the
	// deferred-carry representation is as order-invariant as the HP method.
	shuffled := append([]float64(nil), xs...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := NewBatch(p)
	b.AddSlice(shuffled)
	if got := b.Sum(); !got.Equal(want) {
		t.Fatalf("shuffled stream changed the sum")
	}
}

// TestBatchNormalizeBound: with the counted bound lowered to a handful of
// adds, saturation triggers automatic normalization mid-slice and the
// result still matches the fused oracle — including streams built to hold
// a pending counter at its signed extreme (all same-sign borrows).
func TestBatchNormalizeBound(t *testing.T) {
	p := Params{N: 4, K: 2}
	streams := map[string][]float64{
		"mixed":          batchValues(p, 5, 300),
		"negative-heavy": nil,
		"alternating":    nil,
	}
	negs := make([]float64, 300)
	alts := make([]float64, 300)
	for i := range negs {
		negs[i] = -math.Ldexp(1+float64(i%7)/8, -40)
		alts[i] = math.Ldexp(1, 60) * float64(1-2*(i%2))
	}
	streams["negative-heavy"] = negs
	streams["alternating"] = alts

	for name, xs := range streams {
		t.Run(name, func(t *testing.T) {
			for _, limit := range []uint64{1, 2, 3, 7, 64} {
				oracle := New(p)
				if err := addBatchOracle(oracle, xs); err != nil {
					t.Fatal(err)
				}
				b := NewBatch(p)
				b.limit = limit
				b.AddSlice(xs)
				if b.pending > limit {
					t.Fatalf("limit %d: pending %d exceeds bound", limit, b.pending)
				}
				if got := b.Sum(); !got.Equal(oracle) {
					t.Fatalf("limit %d: sum diverged", limit)
				}
			}
		})
	}
}

// TestBatchNormalizeThenContinue: interleaving Normalize, Sum, Float64,
// and further adds never perturbs the stream's final value.
func TestBatchNormalizeThenContinue(t *testing.T) {
	p := Params384
	xs := batchValues(p, 11, 400)
	oracle := New(p)
	if err := addBatchOracle(oracle, xs); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(p)
	for i, x := range xs {
		b.Add(x)
		switch i % 5 {
		case 1:
			b.Normalize()
		case 3:
			_ = b.Float64()
		case 4:
			_ = b.Sum()
		}
	}
	if got := b.Sum(); !got.Equal(oracle) {
		t.Fatalf("interleaved canonicalization changed the sum\ngot  %016x\nwant %016x",
			got.Limbs(), oracle.Limbs())
	}
	if got, want := b.Float64(), oracle.Float64(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("Float64 = %g, want %g", got, want)
	}
}

// TestBatchGoldenPendingCarries pins the carry-save representation itself:
// adds whose carries escape the two-limb window must land in the pending
// counters, not the value limbs, until Normalize folds them.
func TestBatchGoldenPendingCarries(t *testing.T) {
	p := Params{N: 4, K: 1}
	b := NewBatch(p)
	// Limb 3 (the fractional limb) is all-ones; one more ulp carries out of
	// the window limbs {3, 2} only after the window add overflows limb 2.
	b.AddHP(mustHP(t, p, func(z *HP) error {
		z.limbs = []uint64{0, 0, ^uint64(0), ^uint64(0)}
		return nil
	}))
	b.Add(math.Ldexp(1, -64)) // one ulp: ripples through limbs 3 and 2
	if b.cbuf[3] != 1 {
		t.Fatalf("pending carry into limb 1 = %d, want 1 (cbuf %v)", b.cbuf[3], b.cbuf)
	}
	if b.vv[1] != 0 || b.vv[0] != 0 {
		t.Fatalf("carry folded eagerly: vv %016x", b.vv)
	}
	b.Normalize()
	want := []uint64{0, 1, 0, 0}
	for i, w := range want {
		if b.vv[i] != w {
			t.Fatalf("normalized limbs %016x, want %016x", b.vv, want)
		}
	}

	// The symmetric borrow: subtracting the ulp back records a pending -1
	// (wrapping counter) and normalization restores the original bits.
	b.Reset()
	b.AddHP(mustHP(t, p, func(z *HP) error {
		z.limbs = []uint64{0, 1, 0, 0}
		return nil
	}))
	b.Add(-math.Ldexp(1, -64))
	if b.cbuf[3] != ^uint64(0) {
		t.Fatalf("pending borrow = %d, want -1", int64(b.cbuf[3]))
	}
	b.Normalize()
	want = []uint64{0, 0, ^uint64(0), ^uint64(0)}
	for i, w := range want {
		if b.vv[i] != w {
			t.Fatalf("normalized limbs %016x, want %016x", b.vv, want)
		}
	}
}

func mustHP(t *testing.T, p Params, fill func(*HP) error) *HP {
	t.Helper()
	z := New(p)
	if err := fill(z); err != nil {
		t.Fatal(err)
	}
	return z
}

// TestBatchErrors: conversion faults are sticky (first wins), identical in
// identity to the fused path, and never corrupt the running sum.
func TestBatchErrors(t *testing.T) {
	p := Params128
	b := NewBatch(p)
	b.AddSlice([]float64{1.5, math.Inf(1), math.NaN(), 1e300, 0.25})
	if b.Err() != ErrNotFinite {
		t.Fatalf("sticky err = %v, want first ErrNotFinite", b.Err())
	}
	// The accepted elements still accumulated exactly.
	oracle := New(p)
	oracle.AddFloat64(1.5)
	oracle.AddFloat64(0.25)
	if !b.Sum().Equal(oracle) {
		t.Fatal("faulting elements corrupted the sum")
	}

	b.Reset()
	if b.Err() != nil || !b.Sum().IsZero() {
		t.Fatal("Reset did not clear state")
	}
	b.AddSlice([]float64{1e300})
	if b.Err() != ErrOverflow {
		t.Fatalf("overflow err = %v", b.Err())
	}
	b.Reset()
	b.AddSlice([]float64{math.Ldexp(1, -100)}) // below 2^-64 resolution
	if b.Err() != ErrUnderflow {
		t.Fatalf("underflow err = %v", b.Err())
	}
}

// TestBatchAddChecked: the sign-rule verdict on the canonical trajectory
// matches Accumulator.Add element for element, including through wrap-and-
// return sequences.
func TestBatchAddChecked(t *testing.T) {
	p := Params{N: 2, K: 1}
	big := math.Ldexp(1, 62)
	xs := []float64{big, big, -big, -big, -big, -big, big, big, 1.5, -0.25}
	acc := NewAccumulator(p)
	b := NewBatch(p)
	for i, x := range xs {
		wantOv := false
		{
			pre := acc.Err()
			acc.Add(x)
			wantOv = pre == nil && acc.Err() == ErrOverflow
			if wantOv {
				acc.err = nil // keep observing later verdicts
			}
		}
		if gotOv := b.AddChecked(x); gotOv != wantOv {
			t.Fatalf("element %d (%g): overflow %v, want %v", i, x, gotOv, wantOv)
		}
		if !b.Sum().Equal(acc.Sum()) {
			t.Fatalf("element %d: states diverged", i)
		}
	}
}

// TestBatchMerge: Merge equals AddHP of the normalized partial and
// propagates the sticky error, so parallel combines are exact.
func TestBatchMerge(t *testing.T) {
	p := Params384
	xs := batchValues(p, 3, 1000)
	whole := NewBatch(p)
	whole.AddSlice(xs)

	a := NewBatch(p)
	c := NewBatch(p)
	a.AddSlice(xs[:371])
	c.AddSlice(xs[371:])
	a.Merge(c)
	if !a.Sum().Equal(whole.Sum()) {
		t.Fatal("merged partials differ from the whole")
	}

	bad := NewBatch(p)
	bad.AddSlice([]float64{math.NaN()})
	a.Merge(bad)
	if a.Err() != ErrNotFinite {
		t.Fatalf("Merge did not propagate sticky error: %v", a.Err())
	}
	mismatched := NewBatch(Params128)
	fresh := NewBatch(p)
	fresh.Merge(mismatched)
	if fresh.Err() != ErrParamMismatch {
		t.Fatalf("param mismatch err = %v", fresh.Err())
	}
}

// TestBatchMergeChecked: the checked combine matches Merge bit-for-bit when
// in range and records ErrOverflow exactly when two same-signed canonical
// partials produce an opposite-signed sum.
func TestBatchMergeChecked(t *testing.T) {
	p := Params384
	xs := batchValues(p, 4, 1000)
	whole := NewBatch(p)
	whole.AddSlice(xs)
	a := NewBatch(p)
	c := NewBatch(p)
	a.AddSlice(xs[:619])
	c.AddSlice(xs[619:])
	a.MergeChecked(c)
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	if !a.Sum().Equal(whole.Sum()) {
		t.Fatal("checked merge differs from the whole")
	}

	// Two partials at half the positive range: each fits, their sum does not.
	pp := Params{N: 2, K: 1}
	big := math.Ldexp(1, 62)
	u := NewBatch(pp)
	v := NewBatch(pp)
	u.Add(big)
	v.Add(big)
	u.MergeChecked(v)
	if u.Err() != ErrOverflow {
		t.Fatalf("overflowing combine err = %v, want ErrOverflow", u.Err())
	}

	// Opposite signs can never trip the rule, however large.
	u2 := NewBatch(pp)
	v2 := NewBatch(pp)
	u2.Add(big)
	v2.Add(-big)
	u2.MergeChecked(v2)
	if u2.Err() != nil || u2.Float64() != 0 {
		t.Fatalf("cancelling combine: err=%v sum=%g", u2.Err(), u2.Float64())
	}

	// Sticky errors from either side win over the overflow verdict.
	bad := NewBatch(pp)
	bad.AddSlice([]float64{math.NaN()})
	w := NewBatch(pp)
	w.Add(big)
	bad.Add(big)
	w.MergeChecked(bad)
	if w.Err() != ErrNotFinite {
		t.Fatalf("sticky error lost: %v", w.Err())
	}
}

// TestBatchAtomicFlush: Atomic.AddBatch drains a local batch into the
// shared sum (resetting it for reuse) and reports its sticky fault.
func TestBatchAtomicFlush(t *testing.T) {
	p := Params192
	dst := NewAtomic(p)
	b := NewBatch(p)
	b.AddSlice([]float64{1.5, -0.25, math.NaN()})
	if err := dst.AddBatch(b); err != ErrNotFinite {
		t.Fatalf("flush err = %v, want ErrNotFinite", err)
	}
	if b.Err() != nil || b.Float64() != 0 {
		t.Fatal("batch not reset after flush")
	}
	b.AddSlice([]float64{2})
	if err := dst.AddBatch(b); err != nil {
		t.Fatal(err)
	}
	if got := dst.Snapshot().Float64(); got != 3.25 {
		t.Errorf("atomic sum = %g, want 3.25", got)
	}
}

// TestBatchAddSliceZeroAlloc: the hot loop and its canonicalization points
// are allocation-free in steady state (after Sum's lazy canonical view
// exists).
func TestBatchAddSliceZeroAlloc(t *testing.T) {
	xs := rng.UniformSet(rng.New(21), 4096, -0.5, 0.5)
	b := NewBatch(Params384)
	b.AddSlice(xs)
	_ = b.Sum() // allocate the lazy canonical view once
	if avg := testing.AllocsPerRun(100, func() {
		b.AddSlice(xs)
		b.Normalize()
		_ = b.Float64()
		_ = b.Sum()
	}); avg != 0 {
		t.Errorf("batch hot loop allocates %.2f objects per pass", avg)
	}
}

// TestBatchGoldenUniformSum: the batch kernel reproduces the repository's
// pinned reproducibility certificate (same workload as the fused golden).
func TestBatchGoldenUniformSum(t *testing.T) {
	xs := rng.UniformSet(rng.New(2016), 100000, -0.5, 0.5)
	b := NewBatch(Params384)
	b.AddSlice(xs)
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	got := fmt.Sprintf("%016x", b.Sum().Limbs())
	const want = "[0000000000000000 0000000000000000 0000000000000097 d2fb6ee2a75a8000 0000000000000000 0000000000000000]"
	if got != want {
		t.Errorf("batch golden uniform sum drifted:\n got %s\nwant %s", got, want)
	}
}
