package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// SumCheckpoint is the durable envelope for a rank's in-progress partial
// sum: the number of input values consumed so far plus the exact HP sum of
// that prefix. Because HP addition is exactly associative, a checkpoint
// plus a deterministic replay of the remaining inputs reconstructs the
// rank's full contribution bit-for-bit — which is what lets a fault-
// tolerant reduction (mpi.AllreduceFT) recover a crashed rank's share
// without perturbing the global sum by a single ulp, let alone a bit.
//
// The encoding is self-checking: magic | version | step | HP envelope,
// closed by a CRC-32 over everything before it, so storage-level corruption
// is detected at restore time rather than silently summed.
type SumCheckpoint struct {
	// Step counts the input values already folded into Sum (an input
	// cursor, in whatever deterministic order the writer consumes values).
	Step uint64
	// Sum is the exact partial sum after Step values.
	Sum *HP
}

const (
	sumCheckpointMagic   = "HPCK"
	sumCheckpointVersion = 1
)

// MarshalBinary encodes the checkpoint as
// magic(4) | version(1) | step(8, big-endian) | hp(MarshaledSize) | crc32(4).
func (c *SumCheckpoint) MarshalBinary() ([]byte, error) {
	if c.Sum == nil {
		return nil, fmt.Errorf("core: checkpoint with nil sum")
	}
	hp, err := c.Sum.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 4+1+8+len(hp)+4)
	buf = append(buf, sumCheckpointMagic...)
	buf = append(buf, sumCheckpointVersion)
	buf = binary.BigEndian.AppendUint64(buf, c.Step)
	buf = append(buf, hp...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// UnmarshalBinary decodes and verifies a MarshalBinary encoding, replacing
// c's fields. Any corruption — truncation, bit flips anywhere in the
// envelope — fails with an error naming what went wrong.
func (c *SumCheckpoint) UnmarshalBinary(data []byte) error {
	const minLen = 4 + 1 + 8 + 4
	if len(data) < minLen {
		return fmt.Errorf("core: checkpoint of %d bytes, need at least %d", len(data), minLen)
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return fmt.Errorf("core: checkpoint checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	if string(body[:4]) != sumCheckpointMagic {
		return fmt.Errorf("core: bad checkpoint magic %q", body[:4])
	}
	if body[4] != sumCheckpointVersion {
		return fmt.Errorf("core: unsupported checkpoint version %d", body[4])
	}
	step := binary.BigEndian.Uint64(body[5:13])
	var hp HP
	if err := hp.UnmarshalBinary(body[13:]); err != nil {
		return fmt.Errorf("core: checkpoint payload: %w", err)
	}
	c.Step = step
	c.Sum = &hp
	return nil
}
