package core

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/rng"
)

func TestSumCheckpointRoundTrip(t *testing.T) {
	h, err := FromFloat64(Params384, -123.0625)
	if err != nil {
		t.Fatal(err)
	}
	ck := &SumCheckpoint{Step: 77, Sum: h}
	enc, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got SumCheckpoint
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if got.Step != 77 {
		t.Errorf("Step = %d", got.Step)
	}
	if !got.Sum.Equal(h) || got.Sum.Params() != h.Params() {
		t.Error("restored sum differs")
	}
}

func TestSumCheckpointNilSum(t *testing.T) {
	if _, err := (&SumCheckpoint{Step: 1}).MarshalBinary(); err == nil {
		t.Error("nil sum accepted")
	}
}

func TestSumCheckpointRejectsDamage(t *testing.T) {
	h, err := FromFloat64(Params192, 42.5)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := (&SumCheckpoint{Step: 9, Sum: h}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncations", func(t *testing.T) {
		for cut := 1; cut <= len(enc); cut++ {
			var ck SumCheckpoint
			if err := ck.UnmarshalBinary(enc[:len(enc)-cut]); err == nil {
				t.Fatalf("accepted with %d bytes cut", cut)
			}
		}
	})
	t.Run("single bit flips", func(t *testing.T) {
		for i := range enc {
			for bit := 0; bit < 8; bit++ {
				bad := append([]byte(nil), enc...)
				bad[i] ^= 1 << bit
				var ck SumCheckpoint
				if err := ck.UnmarshalBinary(bad); err == nil {
					t.Fatalf("accepted with byte %d bit %d flipped", i, bit)
				} else if !strings.Contains(err.Error(), "core:") {
					t.Fatalf("unhelpful error: %v", err)
				}
			}
		}
	})
	t.Run("injector corruption", func(t *testing.T) {
		r := rng.New(99)
		for i := 0; i < 200; i++ {
			bad := faults.CorruptBytes(r, append([]byte(nil), enc...))
			var ck SumCheckpoint
			if err := ck.UnmarshalBinary(bad); err == nil {
				t.Fatalf("accepted injector-corrupted encoding %x", bad)
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		var ck SumCheckpoint
		if err := ck.UnmarshalBinary(nil); err == nil {
			t.Error("empty input accepted")
		}
	})
}
