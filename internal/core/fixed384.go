package core

import (
	"math"
	"math/bits"
)

// Accum384 is a specialization of the HP accumulator for the paper's
// strong-scaling format HP(N=6, k=3): the limb vector is a fixed array and
// the conversion and carry chain are fully unrolled, removing the slice
// indirection and loop overhead of the general implementation. It exists
// for the DESIGN.md "fixed-size specialization" ablation
// (BenchmarkAblationFixed384) and for hot paths that know their format at
// compile time. Results are bit-identical to the general HP(6,3) path.
type Accum384 struct {
	// limbs[0] is most significant, as in HP.
	limbs [6]uint64
	err   error
}

// NewAccum384 returns a zeroed fixed-format accumulator.
func NewAccum384() *Accum384 { return &Accum384{} }

// Err returns the sticky range error, or nil.
func (a *Accum384) Err() error { return a.err }

// Reset zeroes the accumulator and clears the sticky error.
func (a *Accum384) Reset() {
	a.limbs = [6]uint64{}
	a.err = nil
}

// Add accumulates x exactly. Range faults latch the sticky error and leave
// the sum unchanged, exactly like Accumulator.Add with Params384.
func (a *Accum384) Add(x float64) {
	if x == 0 {
		return
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		if a.err == nil {
			a.err = ErrNotFinite
		}
		return
	}
	frac, exp := math.Frexp(x)
	neg := false
	if frac < 0 {
		neg = true
		frac = -frac
	}
	m := uint64(frac * (1 << 53))
	s := exp - 53 + 192 // k=3: scale by 2^192
	if s < 0 {
		sh := uint(-s)
		if sh >= 64 || m&((uint64(1)<<sh)-1) != 0 {
			if a.err == nil {
				a.err = ErrUnderflow
			}
			return
		}
		m >>= sh
		s = 0
	}
	if bits.Len64(m)+s > 383 { // 64*6 - 1
		if a.err == nil {
			a.err = ErrOverflow
		}
		return
	}

	var v [6]uint64
	j := s >> 6
	off := uint(s & 63)
	v[5-j] = m << off
	if off != 0 {
		if hi := m >> (64 - off); hi != 0 {
			v[4-j] = hi
		}
	}
	if neg {
		var c uint64
		v[5], c = bits.Add64(^v[5], 0, 1)
		v[4], c = bits.Add64(^v[4], 0, c)
		v[3], c = bits.Add64(^v[3], 0, c)
		v[2], c = bits.Add64(^v[2], 0, c)
		v[1], c = bits.Add64(^v[1], 0, c)
		v[0], _ = bits.Add64(^v[0], 0, c)
	}

	signA := a.limbs[0] >> 63
	signV := v[0] >> 63
	var c uint64
	a.limbs[5], c = bits.Add64(a.limbs[5], v[5], 0)
	a.limbs[4], c = bits.Add64(a.limbs[4], v[4], c)
	a.limbs[3], c = bits.Add64(a.limbs[3], v[3], c)
	a.limbs[2], c = bits.Add64(a.limbs[2], v[2], c)
	a.limbs[1], c = bits.Add64(a.limbs[1], v[1], c)
	a.limbs[0], _ = bits.Add64(a.limbs[0], v[0], c)
	if signA == signV && a.limbs[0]>>63 != signA && a.err == nil {
		a.err = ErrOverflow
	}
}

// AddAll accumulates every element of xs.
func (a *Accum384) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// HP returns the current sum as a general HP value with Params384.
func (a *Accum384) HP() *HP {
	z := New(Params384)
	copy(z.limbs, a.limbs[:])
	return z
}

// Float64 returns the sum rounded to float64 (correctly rounded, like
// HP.Float64).
func (a *Accum384) Float64() float64 { return a.HP().Float64() }
