package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// The specialization must match the general HP(6,3) path bit for bit on
// every input sequence.
func TestAccum384MatchesGeneral(t *testing.T) {
	r := rng.New(61)
	fixed := NewAccum384()
	general := NewAccumulator(Params384)
	for i := 0; i < 20000; i++ {
		x := r.Exp2Uniform(-130, 150) // lowest mantissa bit stays above 2^-192
		fixed.Add(x)
		general.Add(x)
	}
	if fixed.Err() != nil || general.Err() != nil {
		t.Fatalf("errs: %v %v", fixed.Err(), general.Err())
	}
	if !fixed.HP().Equal(general.Sum()) {
		t.Error("fixed-format limbs differ from general path")
	}
	if fixed.Float64() != general.Float64() {
		t.Error("Float64 differs")
	}
}

func TestAccum384PropertyEquivalence(t *testing.T) {
	f := func(raw []float64) bool {
		fixed := NewAccum384()
		general := NewAccumulator(Params384)
		for _, x := range raw {
			// Clamp to the format's range so both paths accept.
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			fixed.Add(x)
			general.Add(x)
		}
		if (fixed.Err() == nil) != (general.Err() == nil) {
			return false
		}
		if fixed.Err() != nil {
			return fixed.Err() == general.Err()
		}
		return fixed.HP().Equal(general.Sum())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccum384Errors(t *testing.T) {
	a := NewAccum384()
	a.Add(math.NaN())
	if a.Err() != ErrNotFinite {
		t.Errorf("NaN: %v", a.Err())
	}
	a.Reset()
	a.Add(math.Ldexp(1, 200)) // beyond 2^191
	if a.Err() != ErrOverflow {
		t.Errorf("overflow: %v", a.Err())
	}
	a.Reset()
	a.Add(math.Ldexp(1, -250)) // below 2^-192
	if a.Err() != ErrUnderflow {
		t.Errorf("underflow: %v", a.Err())
	}
	a.Reset()
	a.Add(1.5)
	a.Add(-0.25)
	if a.Err() != nil || a.Float64() != 1.25 {
		t.Errorf("sum = %g, err %v", a.Float64(), a.Err())
	}
	// Faulting adds must not modify the sum.
	a.Add(math.Ldexp(1, 200))
	if a.Float64() != 1.25 {
		t.Error("faulting add changed the sum")
	}
	// Accumulated overflow (two huge values) is detected.
	b := NewAccum384()
	big := math.Ldexp(1, 190)
	b.Add(big)
	b.Add(big)
	if b.Err() != ErrOverflow {
		t.Errorf("accumulated overflow: %v", b.Err())
	}
}

func TestAccum384ZeroSum(t *testing.T) {
	r := rng.New(62)
	xs := rng.ZeroSum(r, 8192, 0.001)
	a := NewAccum384()
	a.AddAll(xs)
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
	if !a.HP().IsZero() {
		t.Error("zero-sum set not exactly zero")
	}
}
