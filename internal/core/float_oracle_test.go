package core

import (
	"encoding/binary"
	"math"
	"math/big"
	"testing"

	"repro/internal/rng"
)

// float64ViaBig converts x's exact rational value to float64 using
// math/big's correctly rounded conversion, the oracle for HP.Float64.
func float64ViaBig(x *HP) float64 {
	f := new(big.Float).SetPrec(uint(64*x.Params().N) + 64)
	f.SetRat(x.Rat())
	v, _ := f.Float64()
	return v
}

// TestFloat64MatchesBigOracleRandomLimbs drives HP.Float64's rounding logic
// with arbitrary bit patterns — including values unreachable from float64
// conversion — and demands agreement with math/big's correctly rounded
// result, covering normals, subnormal outputs, and overflow saturation.
func TestFloat64MatchesBigOracleRandomLimbs(t *testing.T) {
	r := rng.New(71)
	paramsList := []Params{
		Params128, Params192, Params384, Params512,
		{N: 18, K: 17}, // results reach the subnormal double range
		{N: 18, K: 1},  // results overflow the double range
		{N: 20, K: 19},
	}
	buf := make([]byte, 8*20)
	for _, p := range paramsList {
		z := New(p)
		for trial := 0; trial < 3000; trial++ {
			// Random limbs with random sparsity so leading-zero handling,
			// tie cases, and sticky bits all get exercised.
			for i := 0; i < p.N; i++ {
				var l uint64
				switch r.Intn(4) {
				case 0:
					l = 0
				case 1:
					l = r.Uint64()
				case 2:
					l = uint64(1) << uint(r.Intn(64)) // single bit: tie-prone
				case 3:
					l = r.Uint64() & (r.Uint64() | r.Uint64()) // sparse-ish
				}
				binary.BigEndian.PutUint64(buf[8*i:], l)
			}
			if err := z.SetRawLimbs(buf[:8*p.N]); err != nil {
				t.Fatal(err)
			}
			got := z.Float64()
			want := float64ViaBig(z)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("%v limbs %#x: Float64 = %g, oracle = %g",
					p, z.Limbs(), got, want)
			}
		}
	}
}

// Targeted tie patterns: value = (2^53 + 1) * 2^e has a guard bit exactly
// set and zero sticky, the hardest rounding case.
func TestFloat64ExactTies(t *testing.T) {
	p := Params{N: 4, K: 2}
	z := New(p)
	buf := make([]byte, 32)
	for e := 0; e < 60; e++ {
		// A = (2^54 + 2) << e: mantissa 2^53+1 at scale e+1.
		lo := new(big.Int).Lsh(big.NewInt((1<<54)+2), uint(e))
		limbs := lo.FillBytes(make([]byte, 32))
		copy(buf, limbs)
		if err := z.SetRawLimbs(buf); err != nil {
			t.Fatal(err)
		}
		if got, want := z.Float64(), float64ViaBig(z); got != want {
			t.Fatalf("e=%d: got %g, want %g", e, got, want)
		}
	}
}
