package core

import (
	"bytes"
	"testing"

	"repro/internal/faults"
	"repro/internal/rng"
)

// Fuzz targets for the decoding paths a fault-injected run exercises: a
// corrupted frame that slips past transport checksums lands in
// UnmarshalBinary, SetRawLimbs, or UnmarshalText. The seed corpora are
// produced by the fault injector's own corruption mode (faults.CorruptBytes)
// applied to valid encodings, so the fuzzer starts exactly where chaos runs
// end up. The invariant everywhere: reject or decode to self-consistent
// state — never panic, never huge allocations.

// corruptedSeeds returns valid, lightly corrupted, and heavily corrupted
// variants of enc, mirroring the injector's 1-3 bit flips.
func corruptedSeeds(enc []byte) [][]byte {
	out := [][]byte{enc}
	r := rng.New(0xC0FFEE)
	for i := 0; i < 8; i++ {
		out = append(out, faults.CorruptBytes(r, append([]byte(nil), enc...)))
	}
	// A heavier mauling than the injector produces, for good measure.
	heavy := append([]byte(nil), enc...)
	for i := 0; i < 8; i++ {
		faults.CorruptBytes(r, heavy)
	}
	return append(out, heavy)
}

func validEncodings(f *testing.F) [][]byte {
	f.Helper()
	var encs [][]byte
	for _, p := range []Params{Params128, Params192, Params384, Params512} {
		for _, v := range []float64{0, 1, -12.375, 1e15, -0.001} {
			h, err := FromFloat64(p, v)
			if err != nil {
				f.Fatal(err)
			}
			enc, err := h.MarshalBinary()
			if err != nil {
				f.Fatal(err)
			}
			encs = append(encs, enc)
		}
	}
	return encs
}

// FuzzUnmarshalBinaryCorrupted: bit-flipped envelopes are either rejected
// or decode to an HP that re-encodes to the same bytes.
func FuzzUnmarshalBinaryCorrupted(f *testing.F) {
	for _, enc := range validEncodings(f) {
		for _, seed := range corruptedSeeds(enc) {
			f.Add(seed)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var h HP
		if err := h.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("re-encoding differs: %x vs %x", out, data)
		}
		// The decoded value must be usable: adding zero must not disturb it.
		z := New(h.Params())
		if h.Add(z) {
			t.Fatal("adding zero overflowed")
		}
		if again, _ := h.MarshalBinary(); !bytes.Equal(again, data) {
			t.Fatalf("state damaged by use: %x vs %x", again, data)
		}
	})
}

// FuzzSetRawLimbs: the raw limb path accepts exactly 8*N bytes and installs
// them verbatim; anything else is rejected with the receiver untouched.
func FuzzSetRawLimbs(f *testing.F) {
	for _, enc := range validEncodings(f) {
		for _, seed := range corruptedSeeds(enc[5:]) { // strip envelope header
			f.Add(seed)
		}
	}
	f.Add([]byte{})
	f.Add(make([]byte, 7))
	f.Fuzz(func(t *testing.T, data []byte) {
		h := New(Params384)
		before := h.AppendRawLimbs(nil)
		if err := h.SetRawLimbs(data); err != nil {
			if !bytes.Equal(h.AppendRawLimbs(nil), before) {
				t.Fatal("receiver mutated by rejected input")
			}
			if len(data) == 8*Params384.N {
				t.Fatal("correct-length input rejected")
			}
			return
		}
		if len(data) != 8*Params384.N {
			t.Fatalf("wrong length %d accepted", len(data))
		}
		if !bytes.Equal(h.AppendRawLimbs(nil), data) {
			t.Fatal("limb image not installed verbatim")
		}
	})
}

// FuzzUnmarshalText: arbitrary (and corrupted) certificate strings either
// fail cleanly or round-trip byte-identically.
func FuzzUnmarshalText(f *testing.F) {
	for _, enc := range validEncodings(f) {
		var h HP
		if err := h.UnmarshalBinary(enc); err != nil {
			f.Fatal(err)
		}
		txt, err := h.MarshalText()
		if err != nil {
			f.Fatal(err)
		}
		for _, seed := range corruptedSeeds(txt) {
			f.Add(string(seed))
		}
	}
	f.Add("hp:2,1:0000000000000000.0000000000000000")
	f.Add("hp:9999999,1:00")
	f.Add("hp:2,1:")
	f.Add("not a certificate")
	f.Fuzz(func(t *testing.T, s string) {
		var h HP
		if err := h.UnmarshalText([]byte(s)); err != nil {
			return
		}
		out, err := h.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != s {
			t.Fatalf("re-encoding differs: %q vs %q", out, s)
		}
	})
}
