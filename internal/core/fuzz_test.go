package core

import (
	"math"
	"testing"

	"repro/internal/exact"
)

// Native Go fuzz targets. `go test` runs them over the seed corpus; `go
// test -fuzz=FuzzX ./internal/core` explores further. Each target encodes
// an invariant that must hold for arbitrary float64 bit patterns.

func seedFloats(f *testing.F) {
	for _, v := range []float64{
		0, 1, -1, 0.5, 0.1, -0.001, 1e15, -1e15,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Ldexp(1, 62), math.Ldexp(1, -64), math.Ldexp(-1.5, -60),
		math.Inf(1), math.Inf(-1), math.NaN(),
	} {
		f.Add(v)
	}
}

// FuzzRoundTrip: SetFloat64 either rejects a value or stores it exactly.
func FuzzRoundTrip(f *testing.F) {
	seedFloats(f)
	f.Fuzz(func(t *testing.T, x float64) {
		z := New(Params512)
		err := z.SetFloat64(x)
		if err != nil {
			if !z.IsZero() {
				t.Fatal("receiver not zeroed after rejection")
			}
			return
		}
		if got := z.Float64(); got != x {
			t.Fatalf("round trip %g -> %g", x, got)
		}
		// Exactness stronger than Float64 equality: the stored rational
		// equals the input's rational value.
		o := exact.New()
		o.Add(x)
		if z.Rat().Cmp(o.Rat()) != 0 {
			t.Fatalf("stored value of %g not exact", x)
		}
	})
}

// FuzzListing1Agreement: the paper's conversion loop and the exact bit
// decomposition accept the same inputs and produce identical limbs.
func FuzzListing1Agreement(f *testing.F) {
	seedFloats(f)
	f.Fuzz(func(t *testing.T, x float64) {
		a := New(Params384)
		b := New(Params384)
		errA := a.SetFloat64(x)
		errB := b.SetFloat64Listing1(x)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("acceptance differs for %g: %v vs %v", x, errA, errB)
		}
		if errA == nil && !a.Equal(b) {
			t.Fatalf("limbs differ for %g", x)
		}
	})
}

// FuzzAddMatchesOracle: x + y in HP equals the exact rational sum whenever
// both convert.
func FuzzAddMatchesOracle(f *testing.F) {
	f.Add(1.5, -0.25)
	f.Add(0.1, 0.2)
	f.Add(1e15, 1e-15)
	f.Add(-math.Ldexp(1, 60), math.Ldexp(1, 60))
	f.Fuzz(func(t *testing.T, x, y float64) {
		a := New(Params512)
		b := New(Params512)
		if a.SetFloat64(x) != nil || b.SetFloat64(y) != nil {
			return
		}
		if overflow := a.Add(b); overflow {
			return // wrapped by design; exactness claim void
		}
		o := exact.New()
		o.AddAll([]float64{x, y})
		if a.Rat().Cmp(o.Rat()) != 0 {
			t.Fatalf("%g + %g inexact", x, y)
		}
	})
}

// FuzzProductPaths: the TwoProduct and Kulisch product paths agree with
// the exact rational product wherever they accept the inputs.
func FuzzProductPaths(f *testing.F) {
	f.Add(1.5, -2.25)
	f.Add(0.1, 0.1)
	f.Add(1e20, 1e-20)
	f.Fuzz(func(t *testing.T, x, y float64) {
		acc := NewAccumulator(Params512)
		acc.AddProductExact(x, y)
		if acc.Err() != nil {
			return
		}
		want := exact.New()
		p, e, err := TwoProduct(x, y)
		if err == nil {
			want.AddAll([]float64{p, e})
			if acc.Sum().Rat().Cmp(want.Rat()) != 0 {
				t.Fatalf("product paths disagree for %g * %g", x, y)
			}
		}
	})
}

// FuzzFusedAddDifferential: the fused sparse AddFloat64 must be
// bit-identical to the paper's published path — the Listing 1 conversion
// loop followed by the Listing 2 comparison-based full-width add —
// starting from an arbitrary accumulator state: same acceptance, same
// limbs, same signed-overflow verdict, and an untouched receiver on
// rejection.
func FuzzFusedAddDifferential(f *testing.F) {
	f.Add(uint64(0), 0.5)
	f.Add(uint64(1), -0.1)
	f.Add(uint64(0xfff), 1e15)
	f.Add(^uint64(0), -math.Ldexp(1, 62))
	f.Add(uint64(42), math.Ldexp(1, -64))
	f.Add(uint64(7), math.MaxFloat64)
	f.Add(uint64(7), math.Inf(1))
	f.Fuzz(func(t *testing.T, seed uint64, x float64) {
		p := Params384
		fused := mixedLimbs(p, seed)
		oracle := fused.Clone()
		before := fused.Clone()
		scratch := New(p)
		errO := scratch.SetFloat64Listing1(x)
		ovF, errF := fused.AddFloat64(x)
		if (errF == nil) != (errO == nil) {
			t.Fatalf("acceptance differs for %g: fused %v, listing1 %v", x, errF, errO)
		}
		if errF != nil {
			if !fused.Equal(before) {
				t.Fatalf("rejected AddFloat64(%g) modified the receiver", x)
			}
			return
		}
		ovO := oracle.AddListing2(scratch)
		if ovF != ovO {
			t.Fatalf("overflow verdict differs for %g: fused %v, listing2 %v", x, ovF, ovO)
		}
		if !fused.Equal(oracle) {
			t.Fatalf("limbs differ after adding %g:\nfused   %016x\nlisting %016x",
				x, fused.Limbs(), oracle.Limbs())
		}
	})
}

// FuzzBatchAddDifferential: from an arbitrary accumulator state, the
// carry-save batch kernel must match the fused sparse kernel bit for bit —
// same acceptance, same sticky-error identity, same canonical limbs — for
// any pair of values and any normalize placement between them, including a
// saturated counted bound that forces mid-stream normalization.
func FuzzBatchAddDifferential(f *testing.F) {
	f.Add(uint64(0), 0.5, -0.25, uint8(0))
	f.Add(uint64(1), -0.1, 0.1, uint8(1))
	f.Add(uint64(0xfff), 1e15, -1e15, uint8(2))
	f.Add(^uint64(0), -math.Ldexp(1, 62), math.Ldexp(1, 62), uint8(3))
	f.Add(uint64(42), math.Ldexp(1, -64), 1.0, uint8(4))
	f.Add(uint64(7), math.MaxFloat64, math.Inf(1), uint8(5))
	f.Add(uint64(9), math.NaN(), math.Ldexp(1.5, -60), uint8(6))
	f.Fuzz(func(t *testing.T, seed uint64, x, y float64, mode uint8) {
		p := Params384
		start := mixedLimbs(p, seed)

		oracle := start.Clone()
		var wantErr error
		for _, v := range []float64{x, y} {
			if _, err := oracle.AddFloat64(v); err != nil && wantErr == nil {
				wantErr = err
			}
		}

		b := NewBatch(p)
		if mode%7 == 6 {
			b.limit = 1 // saturate the counted bound on every add
		}
		b.AddHP(start)
		b.Add(x)
		switch mode % 3 {
		case 1:
			b.Normalize()
		case 2:
			_ = b.Float64()
		}
		b.Add(y)
		if gotErr := b.Err(); gotErr != wantErr {
			t.Fatalf("sticky err %v, want %v (x=%g y=%g)", gotErr, wantErr, x, y)
		}
		if got := b.Sum(); !got.Equal(oracle) {
			t.Fatalf("limbs differ after %g, %g (mode %d):\nbatch %016x\nfused %016x",
				x, y, mode, got.Limbs(), oracle.Limbs())
		}
	})
}

// FuzzAddRoundDifferential: the fused per-element rebuild primitive must be
// bit-identical to its unfused spelling — AddChecked followed by Float64 —
// in rounded value, overflow verdict, sticky error identity, and final
// canonical limbs, from arbitrary accumulator states. Its hand-rolled ±1
// carry fold (the idx >= 2 walk, the idx == 0 spill zeroing, the idx == 1
// wrap) is otherwise only reachable through scan phase 2.
func FuzzAddRoundDifferential(f *testing.F) {
	f.Add(uint64(0), 0.5, -0.25, uint8(0))
	f.Add(uint64(1), -0.1, 0.1, uint8(1))
	f.Add(uint64(0xfff), 1e15, -1e15, uint8(2))
	f.Add(^uint64(0), -math.Ldexp(1, 62), math.Ldexp(1, 62), uint8(3))
	f.Add(uint64(42), math.Ldexp(1, -64), 1.0, uint8(0))
	f.Add(uint64(7), math.MaxFloat64, math.Inf(1), uint8(1))
	f.Add(uint64(9), math.NaN(), math.Ldexp(1.5, -60), uint8(2))
	f.Add(uint64(3), math.Ldexp(1, -128), -math.Ldexp(1, -128), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, x, y float64, mode uint8) {
		// Sweep formats so every idx class is reachable: deep windows
		// (idx >= 2, the manual fold), top-of-format windows (idx <= 1,
		// the wrap paths), and a generic width with no unrolled kernel.
		formats := []Params{Params384, {N: 2, K: 1}, {N: 3, K: 3}, {N: 5, K: 2}}
		p := formats[mode%4]
		start := mixedLimbs(p, seed)

		fused := NewBatch(p)
		fused.AddHP(start)
		plain := NewBatch(p)
		plain.AddHP(start)

		for _, v := range []float64{x, y} {
			gotOut, gotOv := fused.AddRound(v)
			wantOv := plain.AddChecked(v)
			wantOut := plain.Float64()
			if math.Float64bits(gotOut) != math.Float64bits(wantOut) {
				t.Fatalf("rounded value differs after %g: fused %x (%g), plain %x (%g)",
					v, math.Float64bits(gotOut), gotOut, math.Float64bits(wantOut), wantOut)
			}
			if gotOv != wantOv {
				t.Fatalf("overflow verdict differs after %g: fused %v, plain %v", v, gotOv, wantOv)
			}
			if fused.Err() != plain.Err() {
				t.Fatalf("sticky err differs after %g: fused %v, plain %v", v, fused.Err(), plain.Err())
			}
		}
		if got, want := fused.Sum(), plain.Sum(); !got.Equal(want) {
			t.Fatalf("limbs differ after %g, %g:\nfused %016x\nplain %016x",
				x, y, got.Limbs(), want.Limbs())
		}
	})
}

// FuzzSuperSpillDifferential: from an arbitrary accumulator state, the
// exponent-indexed superaccumulator must match the fused sparse kernel bit
// for bit — same acceptance, same sticky-error identity, same canonical
// limbs — for any pair of values and any spill placement between them,
// including a saturated spill bound that folds the bins on every add.
func FuzzSuperSpillDifferential(f *testing.F) {
	f.Add(uint64(0), 0.5, -0.25, uint8(0))
	f.Add(uint64(1), -0.1, 0.1, uint8(1))
	f.Add(uint64(0xfff), 1e15, -1e15, uint8(2))
	f.Add(^uint64(0), -math.Ldexp(1, 62), math.Ldexp(1, 62), uint8(3))
	f.Add(uint64(42), math.Ldexp(1, -64), 1.0, uint8(4))
	f.Add(uint64(7), math.MaxFloat64, math.Inf(1), uint8(5))
	f.Add(uint64(9), math.NaN(), math.Ldexp(1.5, -60), uint8(6))
	f.Fuzz(func(t *testing.T, seed uint64, x, y float64, mode uint8) {
		p := Params384
		start := mixedLimbs(p, seed)

		oracle := start.Clone()
		var wantErr error
		for _, v := range []float64{x, y} {
			if _, err := oracle.AddFloat64(v); err != nil && wantErr == nil {
				wantErr = err
			}
		}

		s := NewSuper(p)
		if mode%7 == 6 {
			s.spillEvery = 1 // saturate the spill bound on every add
			s.room = 1
		}
		s.AddHP(start)
		s.Add(x)
		switch mode % 3 {
		case 1:
			s.Spill()
		case 2:
			_ = s.Float64()
		}
		s.Add(y)
		if gotErr := s.Err(); gotErr != wantErr {
			t.Fatalf("sticky err %v, want %v (x=%g y=%g)", gotErr, wantErr, x, y)
		}
		if got := s.Sum(); !got.Equal(oracle) {
			t.Fatalf("limbs differ after %g, %g (mode %d):\nsuper %016x\nfused %016x",
				x, y, mode, got.Limbs(), oracle.Limbs())
		}
	})
}

// FuzzLimbsToFloat64Differential: the branch-light rounding fast path used
// by the per-element hot loops must agree bit-for-bit with the generic
// magnitude path on arbitrary two's-complement states, across formats whose
// ranges sit inside, straddle, and exceed float64's (exercising the
// saturation and subnormal fallbacks).
func FuzzLimbsToFloat64Differential(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), ^uint64(0))
	f.Add(uint64(42), uint64(1)<<63)
	f.Add(^uint64(0), uint64(0xfff))
	f.Fuzz(func(t *testing.T, seed, top uint64) {
		for _, p := range []Params{Params128, Params192, Params384, Params512, {N: 2, K: 0}, {N: 20, K: 17}} {
			h := mixedLimbs(p, seed)
			h.limbs[0] = top // drive the sign and leading-bit cases directly
			fast := limbsToFloat64(h.limbs, p.K, nil)
			mag := make([]uint64, p.N)
			slow := magToFloat64(mag, p.K, magnitudeInto(mag, h.limbs))
			if math.Float64bits(fast) != math.Float64bits(slow) {
				t.Fatalf("%v limbs %016x: fast %x (%g), slow %x (%g)",
					p, h.limbs, math.Float64bits(fast), fast, math.Float64bits(slow), slow)
			}
		}
	})
}

// FuzzMarshalRoundTrip: any accepted encoding decodes to identical state,
// and arbitrary byte mutations never crash the decoder.
func FuzzMarshalRoundTrip(f *testing.F) {
	good, _ := func() ([]byte, error) {
		h, err := FromFloat64(Params192, -12.375)
		if err != nil {
			return nil, err
		}
		return h.MarshalBinary()
	}()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 2, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h HP
		if err := h.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(data) {
			t.Fatalf("re-encoding differs: %x vs %x", out, data)
		}
	})
}
