package core

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// Golden limb snapshots: the HP state after summing canonical seeded
// workloads, pinned as hex. These are reproducibility certificates — the
// exact values must match on EVERY architecture, OS, and Go release this
// repository is built on, and any change to the RNG, the conversion, or
// the carry chain trips them. (The same workloads on the paper's C
// implementation would produce the same limbs: the representation is
// specified exactly by eq. 2.)

func limbsHex(h *HP) string {
	return fmt.Sprintf("%016x", h.Limbs())
}

func TestGoldenUniformSum(t *testing.T) {
	xs := rng.UniformSet(rng.New(2016), 100000, -0.5, 0.5)
	hp, err := SumHP(Params384, xs)
	if err != nil {
		t.Fatal(err)
	}
	got := limbsHex(hp)
	const want = "[0000000000000000 0000000000000000 0000000000000097 d2fb6ee2a75a8000 0000000000000000 0000000000000000]"
	if got != want {
		t.Errorf("golden uniform sum drifted:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenWideRangeSum(t *testing.T) {
	xs := rng.WideRangeQuantized(rng.New(7), 50000, -223, 191, -256)
	hp, err := SumHP(Params512, xs)
	if err != nil {
		t.Fatal(err)
	}
	got := limbsHex(hp)
	const want = "[0000000000000004 ec8cba5e0db9c0df 8045b808c483bef9 facc251edc02a468 cd5572d2828429ca 9faf76de11940af0 cd2dbd9b5fa6d8f2 b14b3158d857b438]"
	if got != want {
		t.Errorf("golden wide-range sum drifted:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenDotProduct(t *testing.T) {
	r := rng.New(99)
	xs := rng.UniformSet(r, 20000, -1, 1)
	ys := rng.UniformSet(r, 20000, -1, 1)
	hp, err := DotHP(Params512, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	got := limbsHex(hp)
	const want = "[ffffffffffffffff ffffffffffffffff ffffffffffffffff ffffffffffffffdf aa1cc4ce6538fe51 89f7df0483000000 0000000000000000 0000000000000000]"
	if got != want {
		t.Errorf("golden dot product drifted:\n got %s\nwant %s", got, want)
	}
}
