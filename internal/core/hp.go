package core

import (
	"math"
	"math/big"
	"math/bits"
)

// HP is a fixed-point high-precision real number in the paper's format: N
// unsigned 64-bit limbs storing a two's-complement integer (limb 0 most
// significant, sign in bit 63 of limb 0) scaled by 2^(-64k).
//
// HP values are mutable accumulators; the arithmetic methods operate in
// place on the receiver. Use New or Params.New to construct one.
type HP struct {
	p     Params
	limbs []uint64 // big-endian: limbs[0] holds the most significant 64 bits
}

// New returns a zero-valued HP number with the given parameters. It panics
// if p is invalid; use Params.Validate to check first.
func New(p Params) *HP {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &HP{p: p, limbs: make([]uint64, p.N)}
}

// FromFloat64 converts x into a new HP number with parameters p. It returns
// an error if x is not finite or does not fit the format exactly.
func FromFloat64(p Params, x float64) (*HP, error) {
	z := New(p)
	if err := z.SetFloat64(x); err != nil {
		return nil, err
	}
	return z, nil
}

// Params returns the (N, k) parameters of x.
func (x *HP) Params() Params { return x.p }

// Limbs returns a copy of the limb vector, most significant limb first.
func (x *HP) Limbs() []uint64 {
	out := make([]uint64, len(x.limbs))
	copy(out, x.limbs)
	return out
}

// SetZero resets x to zero.
func (x *HP) SetZero() *HP {
	for i := range x.limbs {
		x.limbs[i] = 0
	}
	return x
}

// IsZero reports whether x is exactly zero.
func (x *HP) IsZero() bool {
	for _, l := range x.limbs {
		if l != 0 {
			return false
		}
	}
	return true
}

// IsNeg reports whether x is negative (two's-complement sign bit set).
func (x *HP) IsNeg() bool { return x.limbs[0]>>63 == 1 }

// Sign returns -1, 0, or +1.
func (x *HP) Sign() int {
	if x.IsNeg() {
		return -1
	}
	if x.IsZero() {
		return 0
	}
	return 1
}

// Clone returns an independent copy of x.
func (x *HP) Clone() *HP {
	z := &HP{p: x.p, limbs: make([]uint64, len(x.limbs))}
	copy(z.limbs, x.limbs)
	return z
}

// Set copies y into x. The parameters must match.
func (x *HP) Set(y *HP) error {
	if x.p != y.p {
		return ErrParamMismatch
	}
	copy(x.limbs, y.limbs)
	return nil
}

// Equal reports whether x and y have identical parameters and limbs.
func (x *HP) Equal(y *HP) bool {
	if x.p != y.p {
		return false
	}
	for i := range x.limbs {
		if x.limbs[i] != y.limbs[i] {
			return false
		}
	}
	return true
}

// negate replaces x with its two's complement (-x). Negating the minimum
// representable value yields itself, as in machine integer arithmetic.
func (x *HP) negate() {
	carry := uint64(1)
	for i := len(x.limbs) - 1; i >= 0; i-- {
		x.limbs[i], carry = bits.Add64(^x.limbs[i], 0, carry)
	}
}

// Neg replaces x with -x.
func (x *HP) Neg() *HP {
	x.negate()
	return x
}

// SetFloat64 sets x to the exact value of v. The conversion decomposes the
// float64 bit pattern directly (no floating-point arithmetic), so it is
// exact whenever it succeeds. It returns ErrNotFinite for NaN/Inf,
// ErrOverflow if |v| >= 2^(64(N-k)-1), and ErrUnderflow if v has significant
// bits below 2^(-64k); x is reset to zero in every case before conversion.
//
// See also SetFloat64Listing1, the paper's original float-arithmetic
// conversion loop, which produces identical limbs for in-range inputs.
func (x *HP) SetFloat64(v float64) error {
	x.SetZero()
	if v == 0 {
		return nil
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return ErrNotFinite
	}
	frac, exp := math.Frexp(v)
	neg := false
	if frac < 0 {
		neg = true
		frac = -frac
	}
	m := uint64(frac * (1 << 53)) // 53-bit integer significand, in [2^52, 2^53)
	s := exp - 53 + 64*x.p.K      // scaled integer A = m * 2^s
	if s < 0 {
		sh := uint(-s)
		if sh >= 64 || m&((uint64(1)<<sh)-1) != 0 {
			return ErrUnderflow
		}
		m >>= sh
		s = 0
	}
	if bits.Len64(m)+s > 64*x.p.N-1 {
		return ErrOverflow
	}
	j := s / 64 // limb offset from the least significant end
	off := uint(s % 64)
	x.limbs[x.p.N-1-j] = m << off
	if off != 0 {
		if hi := m >> (64 - off); hi != 0 {
			x.limbs[x.p.N-2-j] = hi
		}
	}
	if neg {
		x.negate()
	}
	return nil
}

// magnitude writes |x| into dst as an unsigned limb vector (two's complement
// undone if negative) and reports whether x was negative. dst must have
// length N.
func (x *HP) magnitude(dst []uint64) bool {
	return magnitudeInto(dst, x.limbs)
}

// magnitudeInto writes the magnitude of the big-endian two's-complement limb
// vector src into dst and reports whether src was negative. Shared by HP and
// BatchAccumulator rounding.
func magnitudeInto(dst, src []uint64) bool {
	copy(dst, src)
	if src[0]>>63 == 0 {
		return false
	}
	carry := uint64(1)
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i], carry = bits.Add64(^dst[i], 0, carry)
	}
	return true
}

// magBitLen returns the bit length of the unsigned value in limbs
// (big-endian): the position of the highest set bit plus one, or 0 if zero.
func magBitLen(limbs []uint64) int {
	for i, l := range limbs {
		if l != 0 {
			return 64*(len(limbs)-1-i) + bits.Len64(l)
		}
	}
	return 0
}

// bitAt returns bit pos (0 = least significant) of the big-endian limb
// vector; positions outside the vector read as 0.
func bitAt(limbs []uint64, pos int) uint64 {
	if pos < 0 || pos >= 64*len(limbs) {
		return 0
	}
	i := len(limbs) - 1 - pos/64
	return (limbs[i] >> uint(pos%64)) & 1
}

// window returns the 64 bits of the big-endian limb vector starting at bit
// position pos (0 = least significant); bits beyond the vector read as 0.
func window(limbs []uint64, pos int) uint64 {
	if pos >= 64*len(limbs) {
		return 0
	}
	i := len(limbs) - 1 - pos/64
	off := uint(pos % 64)
	w := limbs[i] >> off
	if off != 0 && i > 0 {
		w |= limbs[i-1] << (64 - off)
	}
	return w
}

// anyBitBelow reports whether any bit at a position < pos is set.
func anyBitBelow(limbs []uint64, pos int) bool {
	if pos <= 0 {
		return false
	}
	if pos >= 64*len(limbs) {
		pos = 64 * len(limbs)
	}
	full := pos / 64
	for i := 0; i < full; i++ {
		if limbs[len(limbs)-1-i] != 0 {
			return true
		}
	}
	if rem := uint(pos % 64); rem != 0 {
		if limbs[len(limbs)-1-full]&((uint64(1)<<rem)-1) != 0 {
			return true
		}
	}
	return false
}

// shiftRightRounded returns the magnitude shifted right by shift bits,
// rounded to nearest with ties to even. The caller guarantees the result
// fits in a uint64 (at most 54 bits: 53 kept plus a possible rounding
// carry).
func shiftRightRounded(limbs []uint64, shift, keepBits int) uint64 {
	var mant uint64
	if keepBits > 0 {
		mant = window(limbs, shift)
		if keepBits < 64 {
			mant &= (uint64(1) << uint(keepBits)) - 1
		}
	}
	if shift == 0 {
		return mant
	}
	guard := bitAt(limbs, shift-1)
	if guard == 0 {
		return mant
	}
	if anyBitBelow(limbs, shift-1) || mant&1 == 1 {
		mant++
	}
	return mant
}

// Float64 converts x to the nearest float64 (round to nearest, ties to
// even). Values beyond float64 range saturate to ±Inf; magnitudes below half
// the smallest subnormal round to ±0. This mirrors the paper's observation
// (§III.B.1) that HP-to-double conversion can itself overflow or underflow
// when the HP range exceeds that of double precision.
func (x *HP) Float64() float64 {
	return limbsToFloat64(x.limbs, x.p.K, nil)
}

// limbsToFloat64 rounds a canonical two's-complement limb vector (big-
// endian, k fractional limbs) to the nearest float64, ties to even. The
// common case — a result that lands in float64's normal range — is handled
// directly on the two's-complement words: the magnitude limbs are derived
// lazily (complement above the lowest nonzero limb, negate at it), so no
// magnitude buffer is written and no math.Ldexp call is made. Everything
// else (zero, subnormal results, saturation to ±Inf, values shorter than
// the target precision) falls back to the generic magnitude path through
// mag, which is allocated only if nil.
func limbsToFloat64(limbs []uint64, k int, mag []uint64) float64 {
	if limbs[0]>>63 == 0 {
		// Positive (or zero): the limbs are the magnitude.
		return roundMagnitude(limbs, k)
	}
	// Negative: the magnitude is ^limbs + 1. The +1 ripples only through
	// the trailing zero limbs, so limb i of the magnitude is ^limbs[i]
	// above the lowest nonzero limb (index lo), -limbs[lo] at it, and 0
	// below — negMagLimb reads it lazily, nothing is written.
	n := len(limbs)
	lo := n - 1
	for limbs[lo] == 0 {
		lo--
	}
	t := 0
	for t < lo && limbs[t] == ^uint64(0) {
		t++
	}
	mt := negMagLimb(limbs, lo, t)
	bl := 64*(n-1-t) + bits.Len64(mt)
	shift := bl - 53
	if shift < 1 {
		return slowNegToFloat64(limbs, k, mag)
	}
	j := n - 1 - shift/64
	off := uint(shift) & 63
	mant := negMagLimb(limbs, lo, j) >> off
	if off != 0 && j > 0 {
		mant |= negMagLimb(limbs, lo, j-1) << (64 - off)
	}
	mant &= 1<<53 - 1
	goff := uint(shift-1) & 63
	jg := n - 1 - (shift-1)/64
	if negMagLimb(limbs, lo, jg)>>goff&1 != 0 {
		// The magnitude's lowest nonzero limb is exactly lo (its value
		// there is -limbs[lo] != 0), so "any magnitude bit in a limb below
		// jg" is just lo > jg — no scan.
		sticky := mant&1 == 1 || lo > jg
		if !sticky && goff != 0 {
			sticky = negMagLimb(limbs, lo, jg)&(1<<goff-1) != 0
		}
		if sticky {
			mant++
		}
	}
	f := float64(mant) // exact: mant <= 2^53
	b := math.Float64bits(f)
	e := shift - 64*k
	if ne := int(b>>52&0x7ff) + e; ne < 1 || ne > 2046 {
		return slowNegToFloat64(limbs, k, mag)
	}
	return -math.Float64frombits(b + uint64(int64(e))<<52)
}

// negMagLimb returns limb i of the magnitude of a negative two's-complement
// limb vector whose lowest nonzero limb is at index lo.
func negMagLimb(limbs []uint64, lo, i int) uint64 {
	if i > lo {
		return 0
	}
	m := ^limbs[i]
	if i == lo {
		m++
	}
	return m
}

// slowNegToFloat64 is the generic fallback for negative values (subnormal,
// saturating, or shorter than the target precision): materialize the
// magnitude into mag (allocated if nil) and round through magToFloat64.
func slowNegToFloat64(limbs []uint64, k int, mag []uint64) float64 {
	if mag == nil {
		mag = make([]uint64, len(limbs))
	}
	magnitudeInto(mag, limbs)
	return magToFloat64(mag, k, true)
}

// roundMagnitude rounds the unsigned big-endian magnitude m (k fractional
// limbs) to float64. Normal-range results are computed with one top-limb
// scan, a two-limb window read, and a sticky scan — no math.Ldexp;
// everything else (zero, subnormal, saturation, values shorter than the
// target precision) defers to the generic magToFloat64.
func roundMagnitude(m []uint64, k int) float64 {
	n := len(m)
	t := 0
	for m[t] == 0 {
		if t++; t == n {
			return 0
		}
	}
	bl := 64*(n-1-t) + bits.Len64(m[t])
	shift := bl - 53
	if shift < 1 {
		// Fewer bits than the target precision (plus guard): exact, rare.
		return magToFloat64(m, k, false)
	}
	// 53-bit window starting at bit `shift` spans at most two limbs; the
	// guard bit at shift-1 and the sticky bits sit at and below limb jg.
	j := n - 1 - shift/64
	off := uint(shift) & 63
	mant := m[j] >> off
	if off != 0 && j > 0 {
		mant |= m[j-1] << (64 - off)
	}
	mant &= 1<<53 - 1
	goff := uint(shift-1) & 63
	jg := n - 1 - (shift-1)/64
	if m[jg]>>goff&1 != 0 {
		sticky := mant&1 == 1 // a tie rounds up iff mant is odd: no scan
		for i := n - 1; !sticky && i > jg; i-- {
			sticky = m[i] != 0
		}
		if !sticky && goff != 0 {
			sticky = m[jg]&(1<<goff-1) != 0
		}
		if sticky {
			mant++
		}
	}
	f := float64(mant) // exact: mant <= 2^53
	b := math.Float64bits(f)
	e := shift - 64*k
	if ne := int(b>>52&0x7ff) + e; ne < 1 || ne > 2046 {
		// Subnormal or out of float64 range: the 53-bit rounding above
		// does not apply; redo generically.
		return magToFloat64(m, k, false)
	}
	return math.Float64frombits(b + uint64(int64(e))<<52)
}

func magToFloat64(mag []uint64, k int, neg bool) float64 {
	bl := magBitLen(mag)
	if bl == 0 {
		return 0
	}
	ebit := bl - 1 - 64*k // exponent of the leading bit
	if ebit > 1023 {
		if neg {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	prec := 53
	if ebit < -1022 { // result is subnormal: fewer effective bits
		prec = 53 + (ebit + 1022)
	}
	shift := bl - prec // may exceed bl when prec <= 0; handled by helpers
	if shift < 0 {
		// The value has fewer significant bits than the target precision:
		// it converts exactly with no rounding.
		shift = 0
		prec = bl
	}
	mant := shiftRightRounded(mag, shift, prec)
	v := math.Ldexp(float64(mant), shift-64*k)
	if neg {
		v = -v
	}
	return v
}

// Add adds y to x in place (x += y) using a full carry chain from the least
// significant limb, and reports whether the signed addition overflowed
// (operands of equal sign producing a result of the opposite sign, the
// paper's §III.B.1 detection rule). On overflow x holds the wrapped value,
// exactly as machine integer arithmetic would.
func (x *HP) Add(y *HP) (overflow bool) {
	if x.p != y.p {
		panic(ErrParamMismatch)
	}
	signX := x.limbs[0] >> 63
	signY := y.limbs[0] >> 63
	var carry uint64
	for i := len(x.limbs) - 1; i >= 0; i-- {
		x.limbs[i], carry = bits.Add64(x.limbs[i], y.limbs[i], carry)
	}
	return signX == signY && x.limbs[0]>>63 != signX
}

// Sub subtracts y from x in place (x -= y) and reports signed overflow.
func (x *HP) Sub(y *HP) (overflow bool) {
	if x.p != y.p {
		panic(ErrParamMismatch)
	}
	signX := x.limbs[0] >> 63
	signY := y.limbs[0] >> 63
	var borrow uint64
	for i := len(x.limbs) - 1; i >= 0; i-- {
		x.limbs[i], borrow = bits.Sub64(x.limbs[i], y.limbs[i], borrow)
	}
	return signX != signY && x.limbs[0]>>63 != signX
}

// Cmp compares x and y as signed fixed-point values, returning -1, 0, or +1.
// It panics on mismatched parameters.
func (x *HP) Cmp(y *HP) int {
	if x.p != y.p {
		panic(ErrParamMismatch)
	}
	const signBit = uint64(1) << 63
	a0 := x.limbs[0] ^ signBit
	b0 := y.limbs[0] ^ signBit
	if a0 != b0 {
		if a0 < b0 {
			return -1
		}
		return 1
	}
	for i := 1; i < len(x.limbs); i++ {
		if x.limbs[i] != y.limbs[i] {
			if x.limbs[i] < y.limbs[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Rat returns the exact value of x as a rational number.
func (x *HP) Rat() *big.Rat {
	mag := make([]uint64, x.p.N)
	neg := x.magnitude(mag)
	num := new(big.Int)
	for _, l := range mag {
		num.Lsh(num, 64)
		num.Or(num, new(big.Int).SetUint64(l))
	}
	if neg {
		num.Neg(num)
	}
	den := new(big.Int).Lsh(big.NewInt(1), uint(64*x.p.K))
	return new(big.Rat).SetFrac(num, den)
}

// BigFloat returns the exact value of x as a big.Float with full precision.
func (x *HP) BigFloat() *big.Float {
	f := new(big.Float).SetPrec(uint(64 * x.p.N))
	return f.SetRat(x.Rat())
}

// String formats x in decimal scientific notation with enough digits to be
// unambiguous for diagnostics (not round-trip exact; use Rat for exactness).
func (x *HP) String() string {
	return x.BigFloat().Text('g', 25)
}
