package core

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/rng"
)

// hpFromLimbs builds an HP value with explicit big-endian limbs for tests
// that need bit patterns unreachable from float64 conversion.
func hpFromLimbs(t *testing.T, p Params, limbs ...uint64) *HP {
	t.Helper()
	if len(limbs) != p.N {
		t.Fatalf("hpFromLimbs: %d limbs for N=%d", len(limbs), p.N)
	}
	var buf []byte
	for _, l := range limbs {
		buf = binary.BigEndian.AppendUint64(buf, l)
	}
	z := New(p)
	if err := z.SetRawLimbs(buf); err != nil {
		t.Fatalf("SetRawLimbs: %v", err)
	}
	return z
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{N: 1, K: 0}, true},
		{Params{N: 1, K: 1}, true},
		{Params{N: 8, K: 4}, true},
		{Params{N: 0, K: 0}, false},
		{Params{N: -1, K: 0}, false},
		{Params{N: 2, K: 3}, false},
		{Params{N: 2, K: -1}, false},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

// TestTable1 reproduces the paper's Table 1: maximum range and smallest
// representable number per (N, k). The N=6 row's bit count is corrected from
// the paper's typo (256 -> 384).
func TestTable1(t *testing.T) {
	cases := []struct {
		p        Params
		bits     int
		maxRange float64
		smallest float64
	}{
		{Params128, 128, 9.223372e18, 5.421011e-20},
		{Params192, 192, 9.223372e18, 2.938736e-39},
		{Params384, 384, 3.138551e57, 1.593092e-58},
		{Params512, 512, 5.789604e76, 8.636169e-78},
	}
	for _, c := range cases {
		if got := c.p.Bits(); got != c.bits {
			t.Errorf("%v Bits = %d, want %d", c.p, got, c.bits)
		}
		if got := c.p.MaxRange(); math.Abs(got/c.maxRange-1) > 1e-6 {
			t.Errorf("%v MaxRange = %g, want %g", c.p, got, c.maxRange)
		}
		if got := c.p.Smallest(); math.Abs(got/c.smallest-1) > 1e-6 {
			t.Errorf("%v Smallest = %g, want %g", c.p, got, c.smallest)
		}
	}
}

func TestSetFloat64KnownPatterns(t *testing.T) {
	p := Params128 // N=2, K=1: limb0 whole (sign bit 63), limb1 fraction
	cases := []struct {
		in    float64
		limbs []uint64
	}{
		{0, []uint64{0, 0}},
		{1, []uint64{1, 0}},
		{2, []uint64{2, 0}},
		{0.5, []uint64{0, 1 << 63}},
		{0.25, []uint64{0, 1 << 62}},
		{1.5, []uint64{1, 1 << 63}},
		{-1, []uint64{^uint64(0), 0}},
		{-0.5, []uint64{^uint64(0), 1 << 63}},
		{-1.5, []uint64{^uint64(0) - 1, 1 << 63}},
		{math.Ldexp(1, 62), []uint64{1 << 62, 0}},
		{math.Ldexp(1, -64), []uint64{0, 1}},
		{math.Ldexp(-1, -64), []uint64{^uint64(0), ^uint64(0)}},
	}
	for _, c := range cases {
		z := New(p)
		if err := z.SetFloat64(c.in); err != nil {
			t.Fatalf("SetFloat64(%g): %v", c.in, err)
		}
		got := z.Limbs()
		for i := range got {
			if got[i] != c.limbs[i] {
				t.Errorf("SetFloat64(%g) limbs = %#x, want %#x", c.in, got, c.limbs)
				break
			}
		}
	}
}

func TestSetFloat64Errors(t *testing.T) {
	p := Params128
	z := New(p)
	if err := z.SetFloat64(math.NaN()); err != ErrNotFinite {
		t.Errorf("NaN: err = %v, want ErrNotFinite", err)
	}
	if err := z.SetFloat64(math.Inf(1)); err != ErrNotFinite {
		t.Errorf("+Inf: err = %v, want ErrNotFinite", err)
	}
	// Overflow: |v| >= 2^63 for (N=2, k=1).
	if err := z.SetFloat64(math.Ldexp(1, 63)); err != ErrOverflow {
		t.Errorf("2^63: err = %v, want ErrOverflow", err)
	}
	if err := z.SetFloat64(math.Ldexp(-1, 63)); err != ErrOverflow {
		t.Errorf("-2^63: err = %v, want ErrOverflow", err)
	}
	// In range: just below.
	if err := z.SetFloat64(math.Ldexp(1, 62)); err != nil {
		t.Errorf("2^62: err = %v, want nil", err)
	}
	// Underflow: bits below 2^-64.
	if err := z.SetFloat64(math.Ldexp(1, -65)); err != ErrUnderflow {
		t.Errorf("2^-65: err = %v, want ErrUnderflow", err)
	}
	if err := z.SetFloat64(1 + math.Ldexp(1, -52)); err != nil {
		t.Errorf("1+2^-52: err = %v, want nil", err)
	}
	// 1 + 2^-52 fits; a value with a set bit below -64 does not.
	if err := z.SetFloat64(math.Ldexp(1+math.Ldexp(1, -52), -20)); err != ErrUnderflow {
		t.Errorf("(1+2^-52)*2^-20: err = %v, want ErrUnderflow", err)
	}
	// After an error the receiver must be zero.
	if !z.IsZero() {
		t.Error("receiver not zeroed after conversion error")
	}
}

func TestRoundTripExhaustiveExponents(t *testing.T) {
	// For HP(3,2) every double with magnitude in [2^-75, 2^62] and full
	// 53-bit mantissa is exactly representable; round-trip must be exact.
	p := Params192
	r := rng.New(1)
	z := New(p)
	for e := -75; e <= 61; e++ {
		for trial := 0; trial < 8; trial++ {
			x := r.Exp2Uniform(e, e+1)
			if err := z.SetFloat64(x); err != nil {
				t.Fatalf("SetFloat64(%g): %v", x, err)
			}
			if got := z.Float64(); got != x {
				t.Fatalf("round trip %g -> %g", x, got)
			}
		}
	}
}

func TestNegAndSign(t *testing.T) {
	p := Params192
	x, err := FromFloat64(p, 3.75)
	if err != nil {
		t.Fatal(err)
	}
	if x.Sign() != 1 || x.IsNeg() {
		t.Error("3.75 should be positive")
	}
	x.Neg()
	if x.Sign() != -1 || !x.IsNeg() {
		t.Error("-3.75 should be negative")
	}
	if got := x.Float64(); got != -3.75 {
		t.Errorf("Neg: got %g, want -3.75", got)
	}
	x.Neg()
	if got := x.Float64(); got != 3.75 {
		t.Errorf("double Neg: got %g, want 3.75", got)
	}
	z := New(p)
	if z.Sign() != 0 {
		t.Error("zero sign")
	}
	z.Neg()
	if !z.IsZero() {
		t.Error("-0 should be zero")
	}
}

func TestAddKnownCases(t *testing.T) {
	p := Params192
	cases := []struct{ a, b, want float64 }{
		{1, 2, 3},
		{1.5, 2.25, 3.75},
		{-1, 1, 0},
		{0.001, -0.001, 0},
		{1e10, 1e-10, 1e10 + 1e-10},
		{-2.5, -3.5, -6},
		{math.Ldexp(1, 60), math.Ldexp(1, 60), math.Ldexp(1, 61)},
	}
	for _, c := range cases {
		a, err := FromFloat64(p, c.a)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FromFloat64(p, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if overflow := a.Add(b); overflow {
			t.Errorf("%g + %g: unexpected overflow", c.a, c.b)
		}
		if got := a.Float64(); got != c.want {
			t.Errorf("%g + %g = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestAddCarryPropagation(t *testing.T) {
	// Sum a telescoping chain of exactly-representable doubles totalling
	// 2^64; the carries must ripple across every limb boundary.
	p := Params{N: 4, K: 2}
	chain := []float64{
		math.Ldexp(1, 64) - math.Ldexp(1, 11),  // 2^11*(2^53-1): 53 bits
		math.Ldexp(1, 11) - math.Ldexp(1, -42), // 2^-42*(2^53-1)
		math.Ldexp(1, -42) - math.Ldexp(1, -64),
		math.Ldexp(1, -64),
	}
	acc := NewAccumulator(p)
	acc.AddAll(chain)
	if err := acc.Err(); err != nil {
		t.Fatal(err)
	}
	if got := acc.Float64(); got != math.Ldexp(1, 64) {
		t.Errorf("carry ripple sum = %g, want 2^64", got)
	}
	// A = 2^64 * 2^(64*2) = 2^192 -> most significant limb only.
	want := hpFromLimbs(t, p, 1, 0, 0, 0)
	if !acc.Sum().Equal(want) {
		t.Errorf("limbs = %#x, want %#x", acc.Sum().Limbs(), want.Limbs())
	}
}

func TestAddOverflowDetection(t *testing.T) {
	p := Params128
	near := math.Ldexp(1, 62)
	// 2^62 + 2^62 = 2^63 lands exactly on the sign bit: positive operands,
	// negative-looking result -> overflow must be reported.
	a, _ := FromFloat64(p, near)
	b, _ := FromFloat64(p, near)
	if overflow := a.Add(b); !overflow {
		t.Error("2^62 + 2^62 must overflow HP(2,1) (max positive < 2^63)")
	}
	// Just inside the range: (2^63 - 2^11) stays positive.
	c1, _ := FromFloat64(p, math.Ldexp(1, 62))
	c2, _ := FromFloat64(p, math.Ldexp(1, 62)-math.Ldexp(1, 11))
	if overflow := c1.Add(c2); overflow {
		t.Error("2^63 - 2^11 should not overflow")
	}
	if c1.Sign() != 1 {
		t.Error("in-range sum lost its sign")
	}
	// Negative overflow.
	c, _ := FromFloat64(p, -near)
	d, _ := FromFloat64(p, -near)
	c.Add(d) // -2^63 is representable as the minimum value: no sign flip
	if c.Float64() != -math.Ldexp(1, 63) {
		t.Errorf("-2^62 + -2^62 = %g, want -2^63", c.Float64())
	}
	e, _ := FromFloat64(p, -near)
	f, _ := FromFloat64(p, -near)
	e.Add(f)
	g, _ := FromFloat64(p, -1)
	if overflow := e.Add(g); !overflow {
		t.Error("-2^63 + -1 must overflow")
	}
	// Mixed signs can never overflow.
	h, _ := FromFloat64(p, math.Ldexp(1, 62))
	i, _ := FromFloat64(p, -math.Ldexp(1, 62))
	if overflow := h.Add(i); overflow {
		t.Error("mixed-sign addition reported overflow")
	}
	if !h.IsZero() {
		t.Error("x + (-x) != 0")
	}
}

func TestSub(t *testing.T) {
	p := Params192
	a, _ := FromFloat64(p, 5.5)
	b, _ := FromFloat64(p, 2.25)
	if overflow := a.Sub(b); overflow {
		t.Error("unexpected overflow")
	}
	if got := a.Float64(); got != 3.25 {
		t.Errorf("5.5 - 2.25 = %g", got)
	}
	c, _ := FromFloat64(p, 2.25)
	d, _ := FromFloat64(p, 5.5)
	c.Sub(d)
	if got := c.Float64(); got != -3.25 {
		t.Errorf("2.25 - 5.5 = %g", got)
	}
}

func TestCmp(t *testing.T) {
	p := Params192
	vals := []float64{-1e10, -2, -1, -0.5, -math.Ldexp(1, -100), 0,
		math.Ldexp(1, -100), 0.25, 1, 3, 1e12}
	hps := make([]*HP, len(vals))
	for i, v := range vals {
		h, err := FromFloat64(p, v)
		if err != nil {
			t.Fatal(err)
		}
		hps[i] = h
	}
	for i := range vals {
		for j := range vals {
			want := 0
			if vals[i] < vals[j] {
				want = -1
			} else if vals[i] > vals[j] {
				want = 1
			}
			if got := hps[i].Cmp(hps[j]); got != want {
				t.Errorf("Cmp(%g, %g) = %d, want %d", vals[i], vals[j], got, want)
			}
		}
	}
}

func TestFloat64CorrectRounding(t *testing.T) {
	// Sum pairs of random doubles exactly in HP; Float64 must equal the
	// correctly rounded exact sum from the big.Int oracle.
	p := Params512
	r := rng.New(42)
	z := New(p)
	w := New(p)
	for trial := 0; trial < 2000; trial++ {
		x := r.Exp2Uniform(-200, 180)
		y := r.Exp2Uniform(-200, 180)
		if err := z.SetFloat64(x); err != nil {
			t.Fatal(err)
		}
		if err := w.SetFloat64(y); err != nil {
			t.Fatal(err)
		}
		z.Add(w)
		want := exact.Sum([]float64{x, y})
		if got := z.Float64(); got != want {
			t.Fatalf("Float64(%g + %g) = %g, want %g", x, y, got, want)
		}
	}
}

func TestFloat64TiesToEven(t *testing.T) {
	p := Params192
	// 1 + 2^-53 is exactly halfway between 1 and 1+2^-52: rounds to 1.
	a, _ := FromFloat64(p, 1)
	b, _ := FromFloat64(p, math.Ldexp(1, -53))
	a.Add(b)
	if got := a.Float64(); got != 1 {
		t.Errorf("1 + 2^-53 rounds to %g, want 1 (tie to even)", got)
	}
	// (1+2^-52) + 2^-53 is halfway with odd low bit: rounds up to 1+2^-51.
	c, _ := FromFloat64(p, 1+math.Ldexp(1, -52))
	c.Add(b)
	want := 1 + math.Ldexp(1, -51)
	if got := c.Float64(); got != want {
		t.Errorf("(1+2^-52) + 2^-53 rounds to %v, want %v", got, want)
	}
	// 1 + 2^-53 + 2^-100: above the tie, rounds up to 1+2^-52.
	d, _ := FromFloat64(p, 1)
	e, _ := FromFloat64(p, math.Ldexp(1, -53)+math.Ldexp(1, -100))
	d.Add(e)
	if got := d.Float64(); got != 1+math.Ldexp(1, -52) {
		t.Errorf("1 + (2^-53+2^-100) rounds to %v, want 1+2^-52", got)
	}
}

func TestFloat64OverflowToInf(t *testing.T) {
	// HP(18,1) has range up to 2^(64*17-1), far beyond float64.
	p := Params{N: 18, K: 1}
	// Value 2^1030: bit position 1030+64 = 1094 -> limb 17 (from LSB), bit 6.
	limbs := make([]uint64, p.N)
	limbs[p.N-1-17] = 1 << 6
	z := hpFromLimbs(t, p, limbs...)
	if got := z.Float64(); !math.IsInf(got, 1) {
		t.Errorf("2^1030 -> %g, want +Inf", got)
	}
	z.Neg()
	if got := z.Float64(); !math.IsInf(got, -1) {
		t.Errorf("-2^1030 -> %g, want -Inf", got)
	}
	// 2^1024 - 2^970: rounds up to 2^1024 -> +Inf (just above MaxFloat64).
	a, err := FromFloat64(p, math.Ldexp(1, 1000))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 23; i++ { // double to 2^1023
		b := a.Clone()
		a.Add(b)
	}
	a.Add(a.Clone()) // 2^1024 as HP
	m, _ := FromFloat64(p, math.Ldexp(1, 970))
	a.Sub(m)
	if got := a.Float64(); !math.IsInf(got, 1) {
		t.Errorf("2^1024 - 2^970 -> %g, want +Inf (round up)", got)
	}
	a.Sub(m) // 2^1024 - 2^971 == MaxFloat64: exact
	if got := a.Float64(); got != math.MaxFloat64 {
		t.Errorf("MaxFloat64 image -> %g, want %g", got, math.MaxFloat64)
	}
}

func TestFloat64SubnormalAndUnderflowToZero(t *testing.T) {
	// K=19 gives resolution 2^-1216, below the smallest subnormal 2^-1074.
	p := Params{N: 20, K: 19}
	minSub := math.Ldexp(1, -1074)

	// Exactly 2^-1074 survives the round trip.
	a, err := FromFloat64(p, minSub)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Float64(); got != minSub {
		t.Errorf("min subnormal round trip: %g, want %g", got, minSub)
	}

	// Exactly 2^-1075 (half of min subnormal): tie rounds to even = 0.
	// Bit position of 2^-1075 in A: 64*19 - 1075 = 141 -> limb 2, bit 13.
	limbs := make([]uint64, p.N)
	limbs[p.N-1-2] = 1 << 13
	half := hpFromLimbs(t, p, limbs...)
	if got := half.Float64(); got != 0 {
		t.Errorf("2^-1075 -> %g, want 0 (tie to even)", got)
	}

	// 2^-1075 + 2^-1200 is above the tie: rounds to min subnormal.
	// 2^-1200 -> bit 16 -> limb 0 (from LSB).
	limbs[p.N-1] = 1 << 16
	above := hpFromLimbs(t, p, limbs...)
	if got := above.Float64(); got != minSub {
		t.Errorf("2^-1075+eps -> %g, want %g", got, minSub)
	}

	// Anything strictly below 2^-1075 rounds to zero.
	limbs2 := make([]uint64, p.N)
	limbs2[p.N-1] = 1
	tiny := hpFromLimbs(t, p, limbs2...)
	if got := tiny.Float64(); got != 0 {
		t.Errorf("2^-1216 -> %g, want 0", got)
	}

	// A subnormal result with reduced precision must round correctly:
	// (2^-1073 + 2^-1075) has a 3-bit pattern wider than the 2-bit
	// subnormal precision at that scale... construct and compare with
	// the oracle via doubles: 2^-1073 + 2^-1074 is exact as double.
	b, err := FromFloat64(p, math.Ldexp(1, -1073))
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromFloat64(p, minSub)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(c)
	want := math.Ldexp(1, -1073) + minSub
	if got := b.Float64(); got != want {
		t.Errorf("subnormal sum -> %g, want %g", got, want)
	}
}

func TestRatExactValues(t *testing.T) {
	p := Params192
	a, _ := FromFloat64(p, 0.5)
	if got := a.Rat().RatString(); got != "1/2" {
		t.Errorf("Rat(0.5) = %s", got)
	}
	b, _ := FromFloat64(p, -3.25)
	if got := b.Rat().RatString(); got != "-13/4" {
		t.Errorf("Rat(-3.25) = %s", got)
	}
	z := New(p)
	if got := z.Rat().Sign(); got != 0 {
		t.Errorf("Rat(0) sign = %d", got)
	}
}

func TestCloneSetEqual(t *testing.T) {
	p := Params192
	a, _ := FromFloat64(p, 1.25)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Neg()
	if a.Equal(b) {
		t.Error("mutating clone affected original comparison")
	}
	if a.Float64() != 1.25 {
		t.Error("mutating clone changed original")
	}
	c := New(p)
	if err := c.Set(a); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(a) {
		t.Error("Set did not copy")
	}
	d := New(Params128)
	if err := d.Set(a); err != ErrParamMismatch {
		t.Errorf("Set with mismatched params: %v", err)
	}
	if !a.Equal(a) {
		t.Error("self equality")
	}
	if a.Equal(d) {
		t.Error("different params compared equal")
	}
}

func TestParamMismatchPanics(t *testing.T) {
	a := New(Params128)
	b := New(Params192)
	for name, fn := range map[string]func(){
		"Add":         func() { a.Add(b) },
		"Sub":         func() { a.Sub(b) },
		"Cmp":         func() { a.Cmp(b) },
		"AddListing2": func() { a.AddListing2(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on param mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestZeroSumExactness(t *testing.T) {
	// The paper's Figure 1 headline: HP(3,2) sums zero-sum sets to exactly
	// zero for every ordering.
	p := Params192
	r := rng.New(7)
	for n := 64; n <= 1024; n *= 2 {
		xs := rng.ZeroSum(r, n, 0.001)
		acc := NewAccumulator(p)
		acc.AddAll(xs)
		if err := acc.Err(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !acc.Sum().IsZero() {
			t.Errorf("n=%d: HP sum = %s, want exact 0", n, acc.Sum())
		}
		if got := acc.Float64(); got != 0 {
			t.Errorf("n=%d: Float64 = %g, want 0", n, got)
		}
	}
}

func TestStringAndBigFloat(t *testing.T) {
	x, _ := FromFloat64(Params192, -2.5)
	if got := x.String(); got != "-2.5" {
		t.Errorf("String = %q", got)
	}
	f := x.BigFloat()
	if v, _ := f.Float64(); v != -2.5 {
		t.Errorf("BigFloat = %g", v)
	}
	z := New(Params128)
	if got := z.String(); got != "0" {
		t.Errorf("String(0) = %q", got)
	}
}

func TestSubOverflow(t *testing.T) {
	p := Params128
	a, _ := FromFloat64(p, -math.Ldexp(1, 62))
	b, _ := FromFloat64(p, math.Ldexp(1, 62))
	// -2^62 - 2^62 = -2^63: representable minimum, no overflow.
	if overflow := a.Sub(b); overflow {
		t.Error("-2^63 flagged as overflow")
	}
	c, _ := FromFloat64(p, 1)
	if overflow := a.Sub(c); !overflow {
		t.Error("-2^63 - 1 must overflow")
	}
	// Same-sign subtraction cannot overflow.
	d, _ := FromFloat64(p, math.Ldexp(1, 62))
	e, _ := FromFloat64(p, math.Ldexp(1, 62))
	if overflow := d.Sub(e); overflow {
		t.Error("x - x overflowed")
	}
	if !d.IsZero() {
		t.Error("x - x != 0")
	}
}

func TestLimbsIsACopy(t *testing.T) {
	x, _ := FromFloat64(Params128, 5)
	limbs := x.Limbs()
	limbs[0] = 0xdeadbeef
	if x.Float64() != 5 {
		t.Error("Limbs exposed internal storage")
	}
}

func TestFloat64Listing1InverseNearExact(t *testing.T) {
	r := rng.New(77)
	z := New(Params512)
	for i := 0; i < 500; i++ {
		x := r.Exp2Uniform(-150, 150)
		if err := z.SetFloat64(x); err != nil {
			t.Fatal(err)
		}
		// A single converted value reconstructs exactly even through the
		// float multiply-accumulate inverse (one nonzero partial per limb
		// pair, no rounding interactions).
		if got := z.Float64Listing1Inverse(); got != x {
			t.Fatalf("inverse of %g = %g", x, got)
		}
	}
}
