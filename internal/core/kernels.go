package core

import (
	"math/bits"
	"sync/atomic"
)

// This file holds the specialized unrolled limb kernels for the shipped HP
// formats, in the spirit of Accum384: the full-width fold, normalize, and
// merge loops of the batch and superaccumulator paths are unrolled per limb
// count, with the slice bound checks hoisted once via a slice-to-array
// pointer conversion so the bits.Add64 chains compile to straight-line
// add-with-carry sequences. NewBatch and NewSuper select a kernel
// automatically when the format's N matches a shipped format; every other
// format falls back to the generic loops. Results are bit-identical either
// way — the kernels are proven against the generic loops by
// TestKernelsMatchGeneric and ride every existing differential (the batch
// and super fuzz targets run on Params384, which selects kern6).
//
// Only N selects a kernel: the fractional split K affects conversion and
// rounding, not the full-width integer arithmetic unrolled here, so one
// kernel serves every K of a given width.

// asmOn gates dispatch to the hand-written amd64 assembly kernels. It is
// initialized by the build-specific dispatch file (true on amd64 outside
// the purego tag unless the REPRO_NOASM kill switch is set, false
// everywhere else) and consulted at accumulator construction — existing
// accumulators keep the kernels they were built with, so toggling is safe
// concurrently with running folds.
var asmOn atomic.Bool

// AsmEnabled reports whether newly constructed accumulators dispatch to
// the assembly kernels.
func AsmEnabled() bool { return asmOn.Load() }

// SetAsmEnabled enables or disables assembly dispatch for accumulators
// constructed after the call, returning the previous setting. Enabling is
// a no-op on builds without assembly (non-amd64, or the purego tag). The
// differential tests use this to pin the assembly kernels against the
// generic loops in one process; it is also the programmatic arm of the
// REPRO_NOASM environment kill switch.
func SetAsmEnabled(on bool) (prev bool) {
	prev = asmOn.Load()
	asmOn.Store(on && haveAsm)
	return prev
}

// KernelBackend describes the kernel lanes a freshly constructed
// accumulator of format p would select, for benchmark reports and
// diagnostics: "asm+avx2" (unrolled assembly limb kernels plus the AVX2
// superaccumulator front loop), "asm" (assembly limb kernels, scalar
// front loop), "avx2" (AVX2 front loop with generic limb loops — formats
// without a shipped unrolled width), or "generic".
func KernelBackend(p Params) string {
	limbAsm := AsmEnabled() && asmKernelFor(p.N) != nil
	switch {
	case limbAsm && useAVX2():
		return "asm+avx2"
	case limbAsm:
		return "asm"
	case useAVX2():
		return "avx2"
	default:
		return "generic"
	}
}

// limbKernel bundles the unrolled full-width primitives for one limb count.
type limbKernel struct {
	n   int
	asm bool // true for the hand-written assembly variants
	// addVec adds src into dst (dst += src) as a single 64n-bit
	// two's-complement quantity, discarding the carry out of the top limb —
	// the wrapping full-width add behind AddHP and the Merge combines.
	addVec func(dst, src []uint64)
	// foldCounts folds the batch accumulator's pending carry counts
	// cbuf[2:] into the value limbs, exactly as the generic loop in
	// Normalize does. Nil for n < 3, where no window ever defers a carry.
	foldCounts func(vv, cbuf []uint64)
}

// kernelFor returns the unrolled kernel for p's limb count — the assembly
// variant when dispatch allows it, the Go one otherwise — or nil when the
// format has no specialization.
func kernelFor(p Params) *limbKernel {
	if AsmEnabled() {
		if k := asmKernelFor(p.N); k != nil {
			return k
		}
	}
	switch p.N {
	case 2:
		return kern2
	case 3:
		return kern3
	case 6:
		return kern6
	case 8:
		return kern8
	default:
		return nil
	}
}

var (
	kern2 = &limbKernel{n: 2, addVec: addVec2}
	kern3 = &limbKernel{n: 3, addVec: addVec3, foldCounts: foldCounts3}
	kern6 = &limbKernel{n: 6, addVec: addVec6, foldCounts: foldCounts6}
	kern8 = &limbKernel{n: 8, addVec: addVec8, foldCounts: foldCounts8}
)

func addVec2(dst, src []uint64) {
	d, s := (*[2]uint64)(dst), (*[2]uint64)(src)
	var c uint64
	d[1], c = bits.Add64(d[1], s[1], 0)
	d[0], _ = bits.Add64(d[0], s[0], c)
}

func addVec3(dst, src []uint64) {
	d, s := (*[3]uint64)(dst), (*[3]uint64)(src)
	var c uint64
	d[2], c = bits.Add64(d[2], s[2], 0)
	d[1], c = bits.Add64(d[1], s[1], c)
	d[0], _ = bits.Add64(d[0], s[0], c)
}

func addVec6(dst, src []uint64) {
	d, s := (*[6]uint64)(dst), (*[6]uint64)(src)
	var c uint64
	d[5], c = bits.Add64(d[5], s[5], 0)
	d[4], c = bits.Add64(d[4], s[4], c)
	d[3], c = bits.Add64(d[3], s[3], c)
	d[2], c = bits.Add64(d[2], s[2], c)
	d[1], c = bits.Add64(d[1], s[1], c)
	d[0], _ = bits.Add64(d[0], s[0], c)
}

func addVec8(dst, src []uint64) {
	d, s := (*[8]uint64)(dst), (*[8]uint64)(src)
	var c uint64
	d[7], c = bits.Add64(d[7], s[7], 0)
	d[6], c = bits.Add64(d[6], s[6], c)
	d[5], c = bits.Add64(d[5], s[5], c)
	d[4], c = bits.Add64(d[4], s[4], c)
	d[3], c = bits.Add64(d[3], s[3], c)
	d[2], c = bits.Add64(d[2], s[2], c)
	d[1], c = bits.Add64(d[1], s[1], c)
	d[0], _ = bits.Add64(d[0], s[0], c)
}

// foldStep adds the signed count d into one value limb and returns the
// outgoing signed carry (+1, 0, or -1), matching one iteration of the
// generic Normalize fold. |d| < 2^62 + 1 by the MaxBatchAdds bound, so the
// uint64 conversions below cannot truncate.
func foldStep(limb *uint64, d int64) int64 {
	if d >= 0 {
		v, co := bits.Add64(*limb, uint64(d), 0)
		*limb = v
		return int64(co)
	}
	v, bo := bits.Sub64(*limb, uint64(-d), 0)
	*limb = v
	return -int64(bo)
}

func foldCounts3(vv, cbuf []uint64) {
	v, c := (*[3]uint64)(vv), (*[3]uint64)(cbuf)
	foldStep(&v[0], int64(c[2]))
	c[2] = 0
}

func foldCounts6(vv, cbuf []uint64) {
	v, c := (*[6]uint64)(vv), (*[6]uint64)(cbuf)
	h := foldStep(&v[3], int64(c[5]))
	h = foldStep(&v[2], h+int64(c[4]))
	h = foldStep(&v[1], h+int64(c[3]))
	foldStep(&v[0], h+int64(c[2]))
	c[5], c[4], c[3], c[2] = 0, 0, 0, 0
}

func foldCounts8(vv, cbuf []uint64) {
	v, c := (*[8]uint64)(vv), (*[8]uint64)(cbuf)
	h := foldStep(&v[5], int64(c[7]))
	h = foldStep(&v[4], h+int64(c[6]))
	h = foldStep(&v[3], h+int64(c[5]))
	h = foldStep(&v[2], h+int64(c[4]))
	h = foldStep(&v[1], h+int64(c[3]))
	foldStep(&v[0], h+int64(c[2]))
	c[7], c[6], c[5], c[4], c[3], c[2] = 0, 0, 0, 0, 0, 0
}

// foldStripesGeneric collapses the superaccumulator's interleaved bin
// stripes: dst[j] receives the sum of the superStripes lanes of bin j and
// the lanes are zeroed. The per-bin stripe sums cannot overflow — the
// absolute values of all stripes together are bounded by the spill bound
// (see MaxSuperAdds) — and any association order yields the same int64.
// The AVX2 variant in kernels_amd64.s is bit-identical.
func foldStripesGeneric(dst, bins []int64) {
	for j := range dst {
		q := bins[superStripes*j : superStripes*j+4 : superStripes*j+4]
		dst[j] = q[0] + q[1] + q[2] + q[3]
		q[0], q[1], q[2], q[3] = 0, 0, 0, 0
	}
}
