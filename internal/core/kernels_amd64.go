//go:build amd64 && !purego

package core

import "repro/internal/cpu"

// haveAsm marks this build as carrying the hand-written amd64 kernels in
// kernels_amd64.s; whether they are dispatched is decided at runtime by
// the feature probe, the REPRO_NOASM kill switch, and SetAsmEnabled.
const haveAsm = true

func init() { asmOn.Store(cpu.AsmAllowed()) }

// useAVX2 reports whether newly constructed superaccumulators select the
// AVX2 front loop and stripe fold: assembly dispatch on, and the CPU/OS
// combination supports YMM state.
func useAVX2() bool { return AsmEnabled() && cpu.X86.HasAVX2 }

// superAddChunkAVX2 is the vectorized superaccumulator front loop
// (kernels_amd64.s): it processes xs[0:stop] — four float64s per
// iteration with a packed exponent gate, falling back to a scalar
// assembly path for short tails — adding each signed significand into the
// stripe of the bin its exponent selects, and maintains the touched-bin
// watermark. stop == n when every element passed the gate; otherwise
// xs[stop] needs the Go slow path (zero, subnormal, out-of-gate, or
// non-finite) and the caller resumes after it. bins must hold
// superStripes*nbins lanes.
//
//go:noescape
func superAddChunkAVX2(bins *int64, nbins, eMin int64, xs *float64, n, lo, hi int64) (stop, newLo, newHi int64)

// foldStripesAVX2 is the vectorized stripe fold (kernels_amd64.s):
// dst[j] = sum of the four stripes of bin j, stripes zeroed — one 256-bit
// load, one horizontal add, and one 256-bit zero store per bin.
//
//go:noescape
func foldStripesAVX2(dst, bins *int64, n int64)

//go:noescape
func addVec2Asm(dst, src []uint64)

//go:noescape
func addVec3Asm(dst, src []uint64)

//go:noescape
func addVec6Asm(dst, src []uint64)

//go:noescape
func addVec8Asm(dst, src []uint64)

//go:noescape
func foldCounts3Asm(vv, cbuf []uint64)

//go:noescape
func foldCounts6Asm(vv, cbuf []uint64)

//go:noescape
func foldCounts8Asm(vv, cbuf []uint64)

// The assembly limb kernels mirror the Go table in kernels.go: plain ADC
// carry chains with every load/store at a fixed offset, so the compiler's
// flag juggling around bits.Add64 disappears. Bit-identical to the
// generic loops by TestAsmKernelsMatchGeneric and the differential fuzz
// target.
var (
	kern2Asm = &limbKernel{n: 2, asm: true, addVec: addVec2Asm}
	kern3Asm = &limbKernel{n: 3, asm: true, addVec: addVec3Asm, foldCounts: foldCounts3Asm}
	kern6Asm = &limbKernel{n: 6, asm: true, addVec: addVec6Asm, foldCounts: foldCounts6Asm}
	kern8Asm = &limbKernel{n: 8, asm: true, addVec: addVec8Asm, foldCounts: foldCounts8Asm}
)

// asmKernelFor returns the assembly limb kernel for a shipped width, or
// nil — callers fall back to the Go table.
func asmKernelFor(n int) *limbKernel {
	switch n {
	case 2:
		return kern2Asm
	case 3:
		return kern3Asm
	case 6:
		return kern6Asm
	case 8:
		return kern8Asm
	default:
		return nil
	}
}

// addChunkAsm drives the AVX2 front loop, bouncing out to the Go slow
// path for each element the packed gate rejects and resuming after it.
func (s *SuperAccumulator) addChunkAsm(xs []float64) {
	lo, hi := int64(s.lo), int64(s.hi)
	for len(xs) > 0 {
		stop, nlo, nhi := superAddChunkAVX2(
			&s.bins[0], int64(s.nbins), int64(s.eMin),
			&xs[0], int64(len(xs)), lo, hi)
		lo, hi = nlo, nhi
		if int(stop) == len(xs) {
			break
		}
		s.addSlow(xs[stop])
		xs = xs[stop+1:]
	}
	s.lo, s.hi = int(lo), int(hi)
}

// foldStripes collapses the bin stripes with the AVX2 fold when this
// accumulator selected the assembly lane, the portable loop otherwise.
func (s *SuperAccumulator) foldStripes(dst, bins []int64) {
	if s.avx2 && len(dst) > 0 {
		foldStripesAVX2(&dst[0], &bins[0], int64(len(dst)))
		return
	}
	foldStripesGeneric(dst, bins)
}
