//go:build amd64 && !purego

#include "textflag.h"

// Hand-written amd64 kernels for the summation hot loops. Three groups:
//
//   - superAddChunkAVX2: the superaccumulator front loop, four float64s
//     per iteration. Exponent extract, gate compare, and the branchless
//     signed-significand build are fully vectorized; the four bin updates
//     are scalar read-modify-write adds (the bins are a scatter — AVX2 has
//     gathers but no scatters, and a scatter would also have to resolve
//     intra-vector duplicate indices). Each vector lane L adds into stripe
//     L of its bin (byte offset 32*i + 8*L), so the four stores in an
//     iteration can never alias even when all four lanes share one
//     exponent — same-magnitude streams are the common case, and striping
//     turns the one serial store-forwarding chain the scalar loop is bound
//     by into four independent ones.
//   - addVec{2,3,6,8}Asm / foldCounts{3,6,8}Asm: straight-line ADC carry
//     chains for the full-width limb kernels. MOVQ does not modify flags,
//     so a load/ADC pair per limb keeps the carry live across the whole
//     chain with no SBB/NEG flag reconstruction.
//   - foldStripesAVX2: per-bin horizontal sum of the four stripes and a
//     256-bit zero store, feeding the spill's scalar window folds.
//
// Exactness: every instruction here implements the same two's-complement
// arithmetic mod 2^64 as the generic Go loops — see DESIGN.md §15 for the
// signed-carry identity the foldCounts chains rely on. Bit-identical
// behavior is enforced by the asm differential tests and the
// FuzzAsmKernelDifferential target.

// func superAddChunkAVX2(bins *int64, nbins, eMin int64, xs *float64, n, lo, hi int64) (stop, newLo, newHi int64)
//
// Register map: DI=bins SI=xs DX=n BX=position R8=eMin R9=nbins
// R10=scalar lo R11=scalar hi R12=mask52 R13=bit52.
// Y6/Y7 carry the vector watermark (per-lane running min/max of gated
// indices), merged with R10/R11 at exit. The scalar tail/bail path updates
// R10/R11 directly; taking min/max across both at the end is order-free.
TEXT ·superAddChunkAVX2(SB), NOSPLIT, $0-80
	MOVQ bins+0(FP), DI
	MOVQ nbins+8(FP), R9
	MOVQ eMin+16(FP), R8
	MOVQ xs+24(FP), SI
	MOVQ n+32(FP), DX
	MOVQ lo+40(FP), R10
	MOVQ hi+48(FP), R11
	XORQ BX, BX
	MOVQ $0x000FFFFFFFFFFFFF, R12
	MOVQ $0x0010000000000000, R13

	VMOVQ R8, X9
	VPBROADCASTQ X9, Y9        // eMin
	VMOVQ R9, X10
	VPBROADCASTQ X10, Y10      // nbins
	MOVQ $0x7ff, AX
	VMOVQ AX, X8
	VPBROADCASTQ X8, Y8        // exponent field mask
	VMOVQ R12, X12
	VPBROADCASTQ X12, Y12      // low 52 bits
	VMOVQ R13, X13
	VPBROADCASTQ X13, Y13      // implicit bit 52
	VPCMPEQQ Y11, Y11, Y11     // -1 in every lane
	VPXOR Y14, Y14, Y14        // zero
	VMOVQ R10, X6
	VPBROADCASTQ X6, Y6        // vector lo watermark
	VMOVQ R11, X7
	VPBROADCASTQ X7, Y7        // vector hi watermark

vecloop:
	MOVQ DX, AX
	SUBQ BX, AX
	CMPQ AX, $4
	JLT  scalar

	VMOVDQU (SI)(BX*8), Y0     // four raw float64 bit patterns
	VPSRLQ  $52, Y0, Y1
	VPAND   Y8, Y1, Y1         // biased exponent e
	VPSUBQ  Y9, Y1, Y1         // i = e - eMin

	// Gate: 0 <= i < nbins in every lane, as two signed compares.
	VPCMPGTQ Y11, Y1, Y2       // i > -1
	VPCMPGTQ Y1, Y10, Y3       // nbins > i
	VPAND    Y3, Y2, Y2
	VMOVMSKPD Y2, AX
	CMPL    AX, $0xf
	JNE     scalar             // any lane gated: scalar path resolves it

	// Signed significand: (m ^ sm) - sm with sm = bv >> 63.
	VPAND    Y12, Y0, Y2
	VPOR     Y13, Y2, Y2       // m = mantissa | 1<<52
	VPCMPGTQ Y0, Y14, Y3       // sm: all-ones where bv < 0
	VPXOR    Y3, Y2, Y2
	VPSUBQ   Y3, Y2, Y2

	// Watermark: lo = min(lo, i), hi = max(hi, i), per lane.
	VPCMPGTQ  Y1, Y6, Y4       // lo > i
	VPBLENDVB Y4, Y1, Y6, Y6
	VPCMPGTQ  Y7, Y1, Y4       // i > hi
	VPBLENDVB Y4, Y1, Y7, Y7

	// Four scalar bin updates: lane L adds into byte offset 32*i + 8*L,
	// with 32*i extracted to a register and the stripe selected by the
	// displacement. Register extraction, not a stack bounce — an 8-byte
	// load from a just-stored 32-byte spill fails store-forwarding and
	// stalls the loop. Lanes cannot alias: the stripe displacement differs
	// even when the exponents match.
	VPSLLQ  $5, Y1, Y4         // 32*i per lane
	VMOVQ   X4, AX
	VPEXTRQ $1, X4, CX
	VMOVQ   X2, R14
	VPEXTRQ $1, X2, R15
	ADDQ    R14, 0(DI)(AX*1)
	ADDQ    R15, 8(DI)(CX*1)
	VEXTRACTI128 $1, Y4, X4
	VEXTRACTI128 $1, Y2, X2
	VMOVQ   X4, AX
	VPEXTRQ $1, X4, CX
	VMOVQ   X2, R14
	VPEXTRQ $1, X2, R15
	ADDQ    R14, 16(DI)(AX*1)
	ADDQ    R15, 24(DI)(CX*1)
	ADDQ    $4, BX
	JMP     vecloop

scalar:
	// One element per pass: the sub-4 tail, and the first element of any
	// vector group with a gated lane. A gate miss returns its index as
	// stop so Go's addSlow resolves it (zero/subnormal/out-of-band/Inf).
	CMPQ BX, DX
	JGE  done
	MOVQ (SI)(BX*8), AX        // bv
	MOVQ AX, CX
	SHRQ $52, CX
	ANDQ $0x7ff, CX
	SUBQ R8, CX                // i = e - eMin
	CMPQ CX, R9
	JAE  done                  // uint(i) >= uint(nbins): gate miss
	MOVQ AX, R14
	ANDQ R12, R14
	ORQ  R13, R14              // m
	SARQ $63, AX               // sm
	XORQ AX, R14
	SUBQ AX, R14               // signed significand
	MOVQ CX, R15
	SHLQ $5, R15               // stripe 0 of bin i
	ADDQ R14, (DI)(R15*1)
	CMPQ CX, R10
	JGE  sc_hi
	MOVQ CX, R10
sc_hi:
	CMPQ CX, R11
	JLE  sc_next
	MOVQ CX, R11
sc_next:
	INCQ BX
	JMP  vecloop

done:
	// Fold the vector watermark lanes into the scalar min/max.
	VEXTRACTI128 $1, Y6, X0
	VPCMPGTQ  X0, X6, X1       // X6 > X0: keep X0
	VPBLENDVB X1, X0, X6, X6
	VPSHUFD   $0x4E, X6, X0    // swap the two qwords
	VPCMPGTQ  X0, X6, X1
	VPBLENDVB X1, X0, X6, X6
	VMOVQ X6, AX
	CMPQ AX, R10
	JGE  lo_done
	MOVQ AX, R10
lo_done:
	VEXTRACTI128 $1, Y7, X0
	VPCMPGTQ  X7, X0, X1       // X0 > X7: keep X0
	VPBLENDVB X1, X0, X7, X7
	VPSHUFD   $0x4E, X7, X0
	VPCMPGTQ  X7, X0, X1
	VPBLENDVB X1, X0, X7, X7
	VMOVQ X7, AX
	CMPQ AX, R11
	JLE  hi_done
	MOVQ AX, R11
hi_done:
	VZEROUPPER
	MOVQ BX, stop+56(FP)
	MOVQ R10, newLo+64(FP)
	MOVQ R11, newHi+72(FP)
	RET

// func foldStripesAVX2(dst, bins *int64, n int64)
//
// dst[j] = sum of the four stripes of bin j; the stripes are zeroed. One
// 256-bit load, two horizontal adds, a 64-bit store, and a 256-bit zero
// store per bin. int64 addition is associative mod 2^64, so the pairwise
// reduction matches the generic left-to-right sum bit for bit.
TEXT ·foldStripesAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ bins+8(FP), SI
	MOVQ n+16(FP), CX
	VPXOR Y3, Y3, Y3
	XORQ BX, BX
floop:
	CMPQ BX, CX
	JGE  fdone
	VMOVDQU (SI), Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDQ  X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VPADDQ  X1, X0, X0
	VMOVQ   X0, (DI)(BX*8)
	VMOVDQU Y3, (SI)
	ADDQ    $32, SI
	INCQ    BX
	JMP     floop
fdone:
	VZEROUPPER
	RET

// func addVec2Asm(dst, src []uint64)
TEXT ·addVec2Asm(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ 8(SI), AX
	ADDQ AX, 8(DI)
	MOVQ 0(SI), AX
	ADCQ AX, 0(DI)
	RET

// func addVec3Asm(dst, src []uint64)
TEXT ·addVec3Asm(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ 16(SI), AX
	ADDQ AX, 16(DI)
	MOVQ 8(SI), AX
	ADCQ AX, 8(DI)
	MOVQ 0(SI), AX
	ADCQ AX, 0(DI)
	RET

// func addVec6Asm(dst, src []uint64)
TEXT ·addVec6Asm(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ 40(SI), AX
	ADDQ AX, 40(DI)
	MOVQ 32(SI), AX
	ADCQ AX, 32(DI)
	MOVQ 24(SI), AX
	ADCQ AX, 24(DI)
	MOVQ 16(SI), AX
	ADCQ AX, 16(DI)
	MOVQ 8(SI), AX
	ADCQ AX, 8(DI)
	MOVQ 0(SI), AX
	ADCQ AX, 0(DI)
	RET

// func addVec8Asm(dst, src []uint64)
TEXT ·addVec8Asm(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ 56(SI), AX
	ADDQ AX, 56(DI)
	MOVQ 48(SI), AX
	ADCQ AX, 48(DI)
	MOVQ 40(SI), AX
	ADCQ AX, 40(DI)
	MOVQ 32(SI), AX
	ADCQ AX, 32(DI)
	MOVQ 24(SI), AX
	ADCQ AX, 24(DI)
	MOVQ 16(SI), AX
	ADCQ AX, 16(DI)
	MOVQ 8(SI), AX
	ADCQ AX, 8(DI)
	MOVQ 0(SI), AX
	ADCQ AX, 0(DI)
	RET

// The foldCounts chains fold the deferred carry counts into the value
// limbs exactly as the generic foldStep does. Per limb, with d the signed
// count to fold: the unsigned ADDQ computes the limb update mod 2^64, and
// the true signed outgoing carry is CF + (d >> 63) — for d >= 0 this is
// the plain carry; for d < 0 the unsigned add of d+2^64 carries unless the
// subtraction would borrow, so CF - 1 is exactly -borrow. SARQ builds the
// sign term before the ADDQ (SARQ clobbers CF), then ADCQ $0 adds the
// add's carry on top. The top limb discards its carry, matching the
// generic wrap.

// func foldCounts3Asm(vv, cbuf []uint64)
TEXT ·foldCounts3Asm(SB), NOSPLIT, $0-48
	MOVQ vv_base+0(FP), DI
	MOVQ cbuf_base+24(FP), SI
	MOVQ 16(SI), AX            // c[2] -> v[0], carry discarded
	ADDQ AX, 0(DI)
	XORQ AX, AX
	MOVQ AX, 16(SI)
	RET

// func foldCounts6Asm(vv, cbuf []uint64)
TEXT ·foldCounts6Asm(SB), NOSPLIT, $0-48
	MOVQ vv_base+0(FP), DI
	MOVQ cbuf_base+24(FP), SI
	MOVQ 40(SI), AX            // d = c[5]
	MOVQ AX, CX
	SARQ $63, CX
	ADDQ AX, 24(DI)            // v[3] += d
	ADCQ $0, CX                // h = (d>>63) + CF
	MOVQ 32(SI), AX            // d = h + c[4]
	ADDQ CX, AX
	MOVQ AX, CX
	SARQ $63, CX
	ADDQ AX, 16(DI)            // v[2] += d
	ADCQ $0, CX
	MOVQ 24(SI), AX            // d = h + c[3]
	ADDQ CX, AX
	MOVQ AX, CX
	SARQ $63, CX
	ADDQ AX, 8(DI)             // v[1] += d
	ADCQ $0, CX
	MOVQ 16(SI), AX            // d = h + c[2] -> v[0], carry discarded
	ADDQ CX, AX
	ADDQ AX, 0(DI)
	XORQ AX, AX
	MOVQ AX, 16(SI)
	MOVQ AX, 24(SI)
	MOVQ AX, 32(SI)
	MOVQ AX, 40(SI)
	RET

// func foldCounts8Asm(vv, cbuf []uint64)
TEXT ·foldCounts8Asm(SB), NOSPLIT, $0-48
	MOVQ vv_base+0(FP), DI
	MOVQ cbuf_base+24(FP), SI
	MOVQ 56(SI), AX            // d = c[7]
	MOVQ AX, CX
	SARQ $63, CX
	ADDQ AX, 40(DI)            // v[5] += d
	ADCQ $0, CX
	MOVQ 48(SI), AX            // d = h + c[6]
	ADDQ CX, AX
	MOVQ AX, CX
	SARQ $63, CX
	ADDQ AX, 32(DI)            // v[4] += d
	ADCQ $0, CX
	MOVQ 40(SI), AX            // d = h + c[5]
	ADDQ CX, AX
	MOVQ AX, CX
	SARQ $63, CX
	ADDQ AX, 24(DI)            // v[3] += d
	ADCQ $0, CX
	MOVQ 32(SI), AX            // d = h + c[4]
	ADDQ CX, AX
	MOVQ AX, CX
	SARQ $63, CX
	ADDQ AX, 16(DI)            // v[2] += d
	ADCQ $0, CX
	MOVQ 24(SI), AX            // d = h + c[3]
	ADDQ CX, AX
	MOVQ AX, CX
	SARQ $63, CX
	ADDQ AX, 8(DI)             // v[1] += d
	ADCQ $0, CX
	MOVQ 16(SI), AX            // d = h + c[2] -> v[0], carry discarded
	ADDQ CX, AX
	ADDQ AX, 0(DI)
	XORQ AX, AX
	MOVQ AX, 16(SI)
	MOVQ AX, 24(SI)
	MOVQ AX, 32(SI)
	MOVQ AX, 40(SI)
	MOVQ AX, 48(SI)
	MOVQ AX, 56(SI)
	RET
