//go:build !amd64 || purego

package core

// haveAsm is false on builds without assembly kernels: non-amd64
// architectures and the purego lane. SetAsmEnabled(true) stays a no-op
// and every dispatch point resolves to the generic Go loops.
const haveAsm = false

// asmKernelFor has no assembly kernels to offer on this build.
func asmKernelFor(int) *limbKernel { return nil }

// useAVX2 is false without assembly: the front loop is always generic.
func useAVX2() bool { return false }

// addChunkAsm is never selected on this build (avx2 is always false); it
// delegates to the generic loop so the dispatch site stays build-agnostic.
func (s *SuperAccumulator) addChunkAsm(xs []float64) { s.addChunkGeneric(xs) }

// foldStripes collapses the bin stripes with the portable loop.
func (s *SuperAccumulator) foldStripes(dst, bins []int64) { foldStripesGeneric(dst, bins) }
