package core

import (
	"math/bits"
	"math/rand"
	"testing"
)

// genericAddVec is the reference full-width wrapping add the kernels must
// reproduce: the loop AddHP and the merges used before unrolling.
func genericAddVec(dst, src []uint64) {
	var c uint64
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i], c = bits.Add64(dst[i], src[i], c)
	}
}

// genericFoldCounts is the reference pending-count fold from Normalize.
func genericFoldCounts(vv, cbuf []uint64) {
	n := len(vv)
	var h int64
	for i := n - 3; i >= 0; i-- {
		d := h + int64(cbuf[i+2])
		cbuf[i+2] = 0
		if d >= 0 {
			var co uint64
			vv[i], co = bits.Add64(vv[i], uint64(d), 0)
			h = int64(co)
		} else {
			var bo uint64
			vv[i], bo = bits.Sub64(vv[i], uint64(-d), 0)
			h = -int64(bo)
		}
	}
}

// kernelWords returns adversarial limb values: carry-chain extremes plus
// random words.
func kernelWords(r *rand.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		switch r.Intn(4) {
		case 0:
			out[i] = ^uint64(0)
		case 1:
			out[i] = 0
		case 2:
			out[i] = 1 << 63
		default:
			out[i] = r.Uint64()
		}
	}
	return out
}

// TestKernelsMatchGeneric: every unrolled kernel is bit-identical to the
// generic loops on adversarial limb patterns — full carry ripples, borrow
// ripples, and signed count extremes at the MaxBatchAdds bound.
func TestKernelsMatchGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, k := range []*limbKernel{kern2, kern3, kern6, kern8} {
		for trial := 0; trial < 500; trial++ {
			dst := kernelWords(r, k.n)
			src := kernelWords(r, k.n)
			wantDst := append([]uint64(nil), dst...)
			genericAddVec(wantDst, src)
			k.addVec(dst, src)
			for i := range dst {
				if dst[i] != wantDst[i] {
					t.Fatalf("n=%d trial %d: addVec limbs %016x, want %016x", k.n, trial, dst, wantDst)
				}
			}

			if k.foldCounts == nil {
				continue
			}
			vv := kernelWords(r, k.n)
			cbuf := make([]uint64, k.n)
			for i := 2; i < k.n; i++ {
				switch r.Intn(5) {
				case 0:
					cbuf[i] = MaxBatchAdds // extreme positive count
				case 1:
					negLimit := int64(MaxBatchAdds)
					cbuf[i] = uint64(-negLimit) // extreme negative count
				case 2:
					cbuf[i] = ^uint64(0) // -1
				case 3:
					cbuf[i] = 0
				default:
					cbuf[i] = uint64(int64(r.Uint64()) % MaxBatchAdds)
				}
			}
			wantVV := append([]uint64(nil), vv...)
			wantC := append([]uint64(nil), cbuf...)
			genericFoldCounts(wantVV, wantC)
			k.foldCounts(vv, cbuf)
			for i := range vv {
				if vv[i] != wantVV[i] {
					t.Fatalf("n=%d trial %d: foldCounts limbs %016x, want %016x", k.n, trial, vv, wantVV)
				}
			}
			for i := range cbuf {
				if cbuf[i] != 0 {
					t.Fatalf("n=%d trial %d: foldCounts left cbuf[%d]=%d", k.n, trial, i, int64(cbuf[i]))
				}
			}
		}
	}
}

// TestKernelSelection: NewBatch and NewSuper pick the unrolled kernel
// exactly for the shipped widths and fall back to generic loops elsewhere,
// and the selected kernel's width matches the format.
func TestKernelSelection(t *testing.T) {
	cases := []struct {
		p    Params
		want int // 0 = generic
	}{
		{Params128, 2}, {Params192, 3}, {Params384, 6}, {Params512, 8},
		{Params{N: 2, K: 0}, 2}, {Params{N: 3, K: 0}, 3},
		{Params{N: 1, K: 0}, 0}, {Params{N: 4, K: 2}, 0},
		{Params{N: 5, K: 4}, 0}, {Params{N: 20, K: 17}, 0},
	}
	for _, c := range cases {
		b := NewBatch(c.p)
		s := NewSuper(c.p)
		if c.want == 0 {
			if b.kern != nil || s.kern != nil {
				t.Errorf("%v: expected generic fallback, got kernel", c.p)
			}
			continue
		}
		if b.kern == nil || b.kern.n != c.want {
			t.Errorf("%v: batch kernel = %v, want n=%d", c.p, b.kern, c.want)
		}
		if s.kern == nil || s.kern.n != c.want {
			t.Errorf("%v: super kernel = %v, want n=%d", c.p, s.kern, c.want)
		}
		if c.want >= 3 && b.kern.foldCounts == nil {
			t.Errorf("%v: kernel missing foldCounts", c.p)
		}
	}
}
