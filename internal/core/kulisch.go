package core

import (
	"math"
	"math/bits"
)

// Kulisch-style exact product accumulation: instead of splitting a product
// with floating-point error-free transformations (TwoProduct, which fails
// near the overflow/underflow boundaries), multiply the two 53-bit integer
// significands into an exact 106-bit integer with math/bits.Mul64 and
// deposit it directly into the fixed-point accumulator at the correct bit
// offset. This is how Kulisch long accumulators implement exact dot
// products in hardware, and it covers the ENTIRE double range — the only
// failure modes are the accumulator's own overflow/underflow bounds.

// AddProductExact accumulates x*y exactly via integer significand
// multiplication. Unlike AddProduct it has no error-free-transformation
// range restrictions; it returns ErrNotFinite for NaN/Inf inputs and
// ErrOverflow/ErrUnderflow only when the exact product does not fit the
// accumulator format. Faults latch the sticky error and leave the sum
// unchanged.
func (a *Accumulator) AddProductExact(x, y float64) {
	if err := a.scratch.setProduct(x, y); err != nil {
		if a.err == nil {
			a.err = err
		}
		return
	}
	if a.sum.Add(a.scratch) && a.err == nil {
		a.err = ErrOverflow
	}
}

// setProduct sets z to the exact value of x*y.
func (z *HP) setProduct(x, y float64) error {
	z.SetZero()
	if x == 0 || y == 0 {
		return nil
	}
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return ErrNotFinite
	}
	fx, ex := math.Frexp(x)
	fy, ey := math.Frexp(y)
	neg := false
	if fx < 0 {
		neg = !neg
		fx = -fx
	}
	if fy < 0 {
		neg = !neg
		fy = -fy
	}
	mx := uint64(fx * (1 << 53)) // in [2^52, 2^53)
	my := uint64(fy * (1 << 53))
	hi, lo := bits.Mul64(mx, my) // exact 106-bit product, in [2^104, 2^106)
	// x*y = (hi*2^64 + lo) * 2^(ex+ey-106); scaled into the accumulator:
	// A = (hi*2^64 + lo) * 2^s with s = ex + ey - 106 + 64k.
	s := ex + ey - 106 + 64*z.p.K
	if s < 0 {
		sh := uint(-s)
		// Shift the 128-bit product right only if no set bits are lost.
		switch {
		case sh >= 128:
			return ErrUnderflow
		case sh >= 64:
			if lo != 0 || hi&(uint64(1)<<(sh-64)-1) != 0 {
				return ErrUnderflow
			}
			lo = hi >> (sh - 64)
			hi = 0
		default:
			if lo&(uint64(1)<<sh-1) != 0 {
				return ErrUnderflow
			}
			lo = lo>>sh | hi<<(64-sh)
			hi >>= sh
		}
		s = 0
	}
	// Bit length of the (possibly shifted) product.
	bl := bits.Len64(hi) + 64
	if hi == 0 {
		bl = bits.Len64(lo)
	}
	if bl+s > 64*z.p.N-1 {
		return ErrOverflow
	}
	// Deposit the two words at limb offset j with intra-limb shift off.
	j := s / 64
	off := uint(s % 64)
	n := z.p.N
	z.limbs[n-1-j] = lo << off
	if off == 0 {
		if hi != 0 {
			z.limbs[n-2-j] = hi
		}
	} else {
		mid := lo>>(64-off) | hi<<off
		if mid != 0 {
			z.limbs[n-2-j] = mid
		}
		if top := hi >> (64 - off); top != 0 {
			z.limbs[n-3-j] = top
		}
	}
	if neg {
		z.negate()
	}
	return nil
}

// MulPow2 multiplies x by 2^e exactly (a limb/bit shift). It returns
// ErrOverflow if magnitude bits would shift past the sign bit and
// ErrUnderflow if set bits would shift out below the lowest limb; x is
// unchanged on error. Negative values are handled via their magnitude so
// truncation semantics never arise.
func (x *HP) MulPow2(e int) error {
	if e == 0 || x.IsZero() {
		return nil
	}
	mag := make([]uint64, x.p.N)
	neg := x.magnitude(mag)
	bl := magBitLen(mag)
	if e > 0 {
		if bl+e > 64*x.p.N-1 {
			return ErrOverflow
		}
		shiftLeft(mag, uint(e))
	} else {
		if anyBitBelow(mag, -e) {
			return ErrUnderflow
		}
		shiftRight(mag, uint(-e))
	}
	copy(x.limbs, mag)
	if neg {
		x.negate()
	}
	return nil
}

// shiftLeft shifts the big-endian limb vector left (toward the most
// significant end) by s bits. The caller guarantees no overflow.
func shiftLeft(limbs []uint64, s uint) {
	n := len(limbs)
	limbShift := int(s / 64)
	bitShift := s % 64
	for i := 0; i < n; i++ {
		var v uint64
		src := i + limbShift
		if src < n {
			v = limbs[src] << bitShift
			if bitShift != 0 && src+1 < n {
				v |= limbs[src+1] >> (64 - bitShift)
			}
		}
		limbs[i] = v
	}
}

// shiftRight shifts the big-endian limb vector right by s bits. The caller
// guarantees no set bits are lost.
func shiftRight(limbs []uint64, s uint) {
	n := len(limbs)
	limbShift := int(s / 64)
	bitShift := s % 64
	for i := n - 1; i >= 0; i-- {
		var v uint64
		src := i - limbShift
		if src >= 0 {
			v = limbs[src] >> bitShift
			if bitShift != 0 && src-1 >= 0 {
				v |= limbs[src-1] << (64 - bitShift)
			}
		}
		limbs[i] = v
	}
}
