package core

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/rng"
)

func TestSetProductMatchesRational(t *testing.T) {
	r := rng.New(81)
	z := New(Params512)
	for i := 0; i < 5000; i++ {
		// Product low bit at ex+ey-106 must stay above 2^-256 (k=4).
		x := r.Exp2Uniform(-70, 120)
		y := r.Exp2Uniform(-70, 120)
		if err := z.setProduct(x, y); err != nil {
			t.Fatalf("setProduct(%g, %g): %v", x, y, err)
		}
		if z.Rat().Cmp(ratProduct(x, y)) != 0 {
			t.Fatalf("setProduct(%g, %g) inexact", x, y)
		}
	}
}

// The Kulisch path must agree with the TwoProduct path wherever both work.
func TestAddProductExactMatchesTwoProduct(t *testing.T) {
	r := rng.New(82)
	a := NewAccumulator(Params512)
	b := NewAccumulator(Params512)
	for i := 0; i < 2000; i++ {
		x := r.Exp2Uniform(-70, 70)
		y := r.Exp2Uniform(-70, 70)
		a.AddProduct(x, y)
		b.AddProductExact(x, y)
	}
	if a.Err() != nil || b.Err() != nil {
		t.Fatalf("errs: %v / %v", a.Err(), b.Err())
	}
	if !a.Sum().Equal(b.Sum()) {
		t.Error("TwoProduct and Kulisch paths disagree")
	}
}

// Where TwoProduct fails (extreme magnitudes), the Kulisch path still
// works, limited only by the accumulator format.
func TestAddProductExactBeyondEFTRange(t *testing.T) {
	// Huge: |x| >= 2^995 breaks the Veltkamp split; a wide format holds it.
	wide := NewAccumulator(Params{N: 40, K: 20})
	x, y := math.Ldexp(1.5, 1000), math.Ldexp(1+math.Ldexp(1, -50), 20)
	if _, _, err := TwoProduct(x, y); err == nil {
		t.Fatal("expected TwoProduct failure for the test to be meaningful")
	}
	wide.AddProductExact(x, y)
	if wide.Err() != nil {
		t.Fatal(wide.Err())
	}
	if wide.Sum().Rat().Cmp(ratProduct(x, y)) != 0 {
		t.Error("huge product inexact")
	}

	// Tiny: product underflows double entirely; still exact in fixed point.
	tiny := NewAccumulator(Params{N: 40, K: 39})
	u, v := math.Ldexp(1.25, -600), math.Ldexp(1.5, -700)
	if _, _, err := TwoProduct(u, v); err == nil {
		t.Fatal("expected TwoProduct failure")
	}
	tiny.AddProductExact(u, v)
	if tiny.Err() != nil {
		t.Fatal(tiny.Err())
	}
	if tiny.Sum().Rat().Cmp(ratProduct(u, v)) != 0 {
		t.Error("tiny product inexact")
	}
}

func TestAddProductExactFaults(t *testing.T) {
	a := NewAccumulator(Params128)
	a.AddProductExact(math.NaN(), 1)
	if a.Err() != ErrNotFinite {
		t.Errorf("NaN: %v", a.Err())
	}
	b := NewAccumulator(Params128)
	b.AddProductExact(1e18, 1e18) // beyond 2^63 range
	if b.Err() != ErrOverflow {
		t.Errorf("overflow: %v", b.Err())
	}
	c := NewAccumulator(Params128)
	c.AddProductExact(1e-12, 1e-12) // bits below 2^-64
	if c.Err() != ErrUnderflow {
		t.Errorf("underflow: %v", c.Err())
	}
	for _, acc := range []*Accumulator{a, b, c} {
		if !acc.Sum().IsZero() {
			t.Error("faulting product changed the sum")
		}
	}
	// Zero operands are fine.
	d := NewAccumulator(Params128)
	d.AddProductExact(0, 1e308)
	d.AddProductExact(2, 3)
	if d.Err() != nil || d.Float64() != 6 {
		t.Errorf("sum = %g, err %v", d.Float64(), d.Err())
	}
}

// Products spanning three limbs (off != 0 and hi bits crossing two limb
// boundaries) must deposit correctly.
func TestSetProductThreeLimbSpan(t *testing.T) {
	p := Params{N: 5, K: 2}
	z := New(p)
	// Choose exponents so s % 64 is large and the 106-bit product straddles
	// three limbs.
	x := math.Ldexp(1+math.Ldexp(1, -52), 30) // full 53-bit mantissa
	y := math.Ldexp(1+math.Ldexp(1, -52), 31)
	if err := z.setProduct(x, y); err != nil {
		t.Fatal(err)
	}
	if z.Rat().Cmp(ratProduct(x, y)) != 0 {
		t.Error("three-limb product inexact")
	}
}

func TestMulPow2(t *testing.T) {
	p := Params192
	x, _ := FromFloat64(p, 3.25)
	if err := x.MulPow2(4); err != nil {
		t.Fatal(err)
	}
	if got := x.Float64(); got != 52 {
		t.Errorf("3.25 * 2^4 = %g", got)
	}
	if err := x.MulPow2(-6); err != nil {
		t.Fatal(err)
	}
	if got := x.Float64(); got != 0.8125 {
		t.Errorf("52 * 2^-6 = %g", got)
	}
	// Negative values.
	y, _ := FromFloat64(p, -1.5)
	if err := y.MulPow2(2); err != nil {
		t.Fatal(err)
	}
	if got := y.Float64(); got != -6 {
		t.Errorf("-1.5 * 2^2 = %g", got)
	}
	if err := y.MulPow2(-126); err != nil { // near the 2^-128 floor (k=2)
		t.Fatal(err)
	}
	want := new(big.Rat).SetInt64(-6)
	want.Quo(want, new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), 126)))
	if y.Rat().Cmp(want) != 0 {
		t.Error("-6 * 2^-126 inexact")
	}
	// Overflow and underflow leave the value unchanged.
	z, _ := FromFloat64(p, 1)
	if err := z.MulPow2(64); err != ErrOverflow {
		t.Errorf("overflow: %v", err)
	}
	if z.Float64() != 1 {
		t.Error("value changed on overflow")
	}
	if err := z.MulPow2(-129); err != ErrUnderflow {
		t.Errorf("underflow: %v", err)
	}
	if z.Float64() != 1 {
		t.Error("value changed on underflow")
	}
	// Zero and identity shifts.
	zero := New(p)
	if err := zero.MulPow2(1000); err != nil || !zero.IsZero() {
		t.Error("zero shift")
	}
	if err := z.MulPow2(0); err != nil || z.Float64() != 1 {
		t.Error("identity shift")
	}
	// Cross-limb shifts round-trip.
	w, _ := FromFloat64(p, 1.0)
	if err := w.MulPow2(62); err != nil {
		t.Fatal(err)
	}
	if err := w.MulPow2(-62); err != nil {
		t.Fatal(err)
	}
	if w.Float64() != 1 {
		t.Errorf("round trip shift = %g", w.Float64())
	}
}

func TestDotExactHelper(t *testing.T) {
	// Mixed magnitudes beyond TwoProduct's comfort, via the wide format.
	xs := []float64{math.Ldexp(1.5, 900), math.Ldexp(1.25, -900), 2}
	ys := []float64{math.Ldexp(1.5, 100), math.Ldexp(1.25, -100), 3}
	p := Params{N: 40, K: 20}
	acc := NewAccumulator(p)
	for i := range xs {
		acc.AddProductExact(xs[i], ys[i])
	}
	if acc.Err() != nil {
		t.Fatal(acc.Err())
	}
	want := new(big.Rat)
	for i := range xs {
		want.Add(want, ratProduct(xs[i], ys[i]))
	}
	if acc.Sum().Rat().Cmp(want) != 0 {
		t.Error("wide-range exact dot diverged")
	}
}
