package core

import (
	"math"
	"math/bits"
)

// This file transcribes the paper's Listings 1 and 2 (C pseudo-code) into
// Go. The primary implementations in hp.go use exact bit decomposition and
// math/bits carry chains; these variants are kept because (a) they document
// the published algorithm faithfully, (b) property tests prove both paths
// produce identical limbs, and (c) the ablation benchmarks compare their
// cost (the paper's operation-count analysis in §IV.A is about this loop).

// SetFloat64Listing1 sets x to v using the paper's Listing 1: a single pass
// of floating-point multiplies that peels 64 bits per iteration, with a
// look-ahead on the remainder to fold the two's-complement +1 into the same
// pass for negative values. Every step is exact for in-range doubles
// (remainder subtraction and power-of-two scaling introduce no rounding).
//
// Range checking is identical to SetFloat64: the published listing assumes
// in-range input, so out-of-range values are rejected before the loop.
func (x *HP) SetFloat64Listing1(v float64) error {
	x.SetZero()
	if v == 0 {
		return nil
	}
	if err := x.checkRange(v); err != nil {
		return err
	}
	n := x.p.N
	// dtmp = fabs(r) * 2^(-64*(N-k-1)): scale so the integer part of dtmp
	// is limb 0. (The listing's exponent is positive in print; the scaling
	// direction follows from eq. 2.)
	dtmp := math.Abs(v) * math.Ldexp(1, -64*(n-x.p.K-1))
	isneg := v < 0
	for i := 0; i < n-1; i++ {
		itmp := uint64(dtmp)
		dtmp = (dtmp - float64(itmp)) * 0x1p64
		if isneg {
			if dtmp <= 0 {
				x.limbs[i] = ^itmp + 1
			} else {
				x.limbs[i] = ^itmp
			}
		} else {
			x.limbs[i] = itmp
		}
	}
	last := uint64(dtmp)
	if isneg {
		x.limbs[n-1] = ^last + 1
	} else {
		x.limbs[n-1] = last
	}
	return nil
}

// checkRange validates that finite v fits the format exactly, mirroring the
// checks in SetFloat64 without touching the limbs.
func (x *HP) checkRange(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return ErrNotFinite
	}
	frac, exp := math.Frexp(v)
	if frac < 0 {
		frac = -frac
	}
	m := uint64(frac * (1 << 53))
	s := exp - 53 + 64*x.p.K
	if s < 0 {
		sh := uint(-s)
		if sh >= 64 || m&((uint64(1)<<sh)-1) != 0 {
			return ErrUnderflow
		}
		m >>= sh
		s = 0
	}
	if bits.Len64(m)+s > 64*x.p.N-1 {
		return ErrOverflow
	}
	return nil
}

// AddListing2 adds y to x using the paper's Listing 2: explicit
// comparison-based carry detection instead of math/bits.Add64. It reports
// signed overflow exactly as Add does.
func (x *HP) AddListing2(y *HP) (overflow bool) {
	if x.p != y.p {
		panic(ErrParamMismatch)
	}
	a, b := x.limbs, y.limbs
	n := len(a)
	signX := a[0] >> 63
	signY := b[0] >> 63

	a[n-1] += b[n-1]
	var co uint64
	if a[n-1] < b[n-1] {
		co = 1
	}
	for i := n - 2; i >= 1; i-- {
		a[i] = a[i] + b[i] + co
		// If a[i] ended equal to b[i], the addition was a[i] += co + 2^64*0
		// with the old a[i] being either 0 (co preserved) or 2^64-co; in
		// both cases the carry-out equals the carry-in, so co is unchanged.
		if a[i] != b[i] {
			if a[i] < b[i] {
				co = 1
			} else {
				co = 0
			}
		}
	}
	a[0] = a[0] + b[0] + co
	return signX == signY && a[0]>>63 != signX
}

// Float64Listing1Inverse converts x to float64 by the inverse of Listing 1:
// accumulate limbs most-significant first with floating-point multiply-adds.
// Unlike Float64 it is subject to double rounding in rare ties; it is kept
// for fidelity with the paper and for the conversion ablation benchmark.
func (x *HP) Float64Listing1Inverse() float64 {
	mag := make([]uint64, x.p.N)
	neg := x.magnitude(mag)
	v := 0.0
	w := math.Ldexp(1, 64*(x.p.N-x.p.K-1))
	for i := 0; i < x.p.N; i++ {
		v += float64(mag[i]) * w
		w *= 0x1p-64
	}
	if neg {
		v = -v
	}
	return v
}
