package core

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Binary serialization, used by the MPI substrate to move HP partial sums
// between ranks and usable for checkpointing. Two layers are provided: a
// self-describing envelope (MarshalBinary/UnmarshalBinary) and a raw limb
// encoding (AppendRawLimbs/SetRawLimbs) for hot paths where both sides
// already agree on Params.

const marshalVersion = 1

// MarshaledSize returns the length in bytes of the self-describing encoding
// for parameters p.
func MarshaledSize(p Params) int { return 5 + 8*p.N }

// MarshalBinary encodes x as version(1) | N(2, big-endian) | K(2) | limbs
// (8 bytes each, big-endian, most significant limb first).
func (x *HP) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, MarshaledSize(x.p))
	buf = append(buf, marshalVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(x.p.N))
	buf = binary.BigEndian.AppendUint16(buf, uint16(x.p.K))
	return x.AppendRawLimbs(buf), nil
}

// UnmarshalBinary decodes data produced by MarshalBinary, replacing x's
// parameters and limbs.
func (x *HP) UnmarshalBinary(data []byte) error {
	if len(data) < 5 {
		return fmt.Errorf("core: truncated HP encoding (%d bytes)", len(data))
	}
	if data[0] != marshalVersion {
		return fmt.Errorf("core: unknown HP encoding version %d", data[0])
	}
	p := Params{
		N: int(binary.BigEndian.Uint16(data[1:3])),
		K: int(binary.BigEndian.Uint16(data[3:5])),
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if want := MarshaledSize(p); len(data) != want {
		return fmt.Errorf("core: HP encoding length %d, want %d", len(data), want)
	}
	x.p = p
	x.limbs = make([]uint64, p.N)
	return x.SetRawLimbs(data[5:])
}

// AppendRawLimbs appends the 8*N-byte big-endian limb image of x to buf and
// returns the extended slice.
func (x *HP) AppendRawLimbs(buf []byte) []byte {
	for _, l := range x.limbs {
		buf = binary.BigEndian.AppendUint64(buf, l)
	}
	return buf
}

// SetRawLimbs replaces x's limbs from an 8*N-byte big-endian image, leaving
// the parameters unchanged.
func (x *HP) SetRawLimbs(data []byte) error {
	if len(data) != 8*x.p.N {
		return fmt.Errorf("core: raw limb length %d, want %d", len(data), 8*x.p.N)
	}
	for i := range x.limbs {
		x.limbs[i] = binary.BigEndian.Uint64(data[8*i:])
	}
	return nil
}

// MarshalText encodes x as "hp:N,k:l0.l1...." with hex limbs (most
// significant first) — the human-diffable form used by reproducibility
// certificates (cmd/verify): two machines computed the same sum iff the
// strings are byte-identical.
func (x *HP) MarshalText() ([]byte, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "hp:%d,%d:", x.p.N, x.p.K)
	for i, l := range x.limbs {
		if i > 0 {
			sb.WriteByte('.')
		}
		fmt.Fprintf(&sb, "%016x", l)
	}
	return []byte(sb.String()), nil
}

// UnmarshalText decodes the MarshalText form, replacing x's parameters and
// limbs.
func (x *HP) UnmarshalText(text []byte) error {
	s := string(text)
	parts := strings.Split(s, ":")
	if len(parts) != 3 || parts[0] != "hp" {
		return fmt.Errorf("core: malformed HP text %q", s)
	}
	nk := strings.Split(parts[1], ",")
	if len(nk) != 2 {
		return fmt.Errorf("core: malformed HP params in %q", s)
	}
	n, err := strconv.Atoi(nk[0])
	if err != nil || strconv.Itoa(n) != nk[0] {
		return fmt.Errorf("core: bad N %q in %q", nk[0], s)
	}
	k, err := strconv.Atoi(nk[1])
	if err != nil || strconv.Itoa(k) != nk[1] {
		return fmt.Errorf("core: bad k %q in %q", nk[1], s)
	}
	p := Params{N: n, K: k}
	if err := p.Validate(); err != nil {
		return err
	}
	hexLimbs := strings.Split(parts[2], ".")
	if len(hexLimbs) != p.N {
		return fmt.Errorf("core: %d limbs in text, want %d", len(hexLimbs), p.N)
	}
	limbs := make([]uint64, p.N)
	for i, h := range hexLimbs {
		if len(h) != 16 {
			return fmt.Errorf("core: limb %d has %d hex digits, want 16", i, len(h))
		}
		// Strict lowercase hex only: a certificate is compared byte-for-byte,
		// so every accepted text must re-encode to itself.
		for _, c := range []byte(h) {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				return fmt.Errorf("core: limb %d in %q is not lowercase hex", i, s)
			}
		}
		v, err := strconv.ParseUint(h, 16, 64)
		if err != nil {
			return fmt.Errorf("core: bad limb %d in %q: %v", i, s, err)
		}
		limbs[i] = v
	}
	x.p = p
	x.limbs = limbs
	return nil
}
