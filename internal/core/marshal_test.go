package core

import (
	"testing"
)

func TestMarshalRoundTripValues(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.001, -123456.7890625, 1e15} {
		x, err := FromFloat64(Params384, v)
		if err != nil {
			t.Fatalf("FromFloat64(%g): %v", v, err)
		}
		data, err := x.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != MarshaledSize(Params384) {
			t.Errorf("encoded length %d, want %d", len(data), MarshaledSize(Params384))
		}
		var y HP
		if err := y.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !y.Equal(x) {
			t.Errorf("round trip of %g: limbs differ", v)
		}
		if y.Params() != Params384 {
			t.Errorf("params lost: %v", y.Params())
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	x, _ := FromFloat64(Params192, 1.5)
	good, _ := x.MarshalBinary()

	var y HP
	if err := y.UnmarshalBinary(nil); err == nil {
		t.Error("nil input accepted")
	}
	if err := y.UnmarshalBinary(good[:3]); err == nil {
		t.Error("truncated header accepted")
	}
	if err := y.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("truncated limbs accepted")
	}
	long := append(append([]byte{}, good...), 0)
	if err := y.UnmarshalBinary(long); err == nil {
		t.Error("oversized input accepted")
	}
	bad := append([]byte{}, good...)
	bad[0] = 99
	if err := y.UnmarshalBinary(bad); err == nil {
		t.Error("unknown version accepted")
	}
	// Invalid params (K > N).
	inv := append([]byte{}, good...)
	inv[3], inv[4] = 0, 9
	if err := y.UnmarshalBinary(inv); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestRawLimbs(t *testing.T) {
	x, _ := FromFloat64(Params192, -2.75)
	raw := x.AppendRawLimbs(nil)
	if len(raw) != 8*3 {
		t.Fatalf("raw length %d", len(raw))
	}
	y := New(Params192)
	if err := y.SetRawLimbs(raw); err != nil {
		t.Fatal(err)
	}
	if !y.Equal(x) {
		t.Error("raw round trip differs")
	}
	if err := y.SetRawLimbs(raw[:8]); err == nil {
		t.Error("short raw buffer accepted")
	}
}

func TestAppendRawLimbsReusesBuffer(t *testing.T) {
	x, _ := FromFloat64(Params128, 7.0)
	buf := make([]byte, 0, 64)
	out := x.AppendRawLimbs(buf)
	if len(out) != 16 {
		t.Fatalf("length %d", len(out))
	}
	if &out[0] != &buf[:1][0] {
		t.Error("append reallocated despite sufficient capacity")
	}
}

func TestMarshalTextRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -0.001, 12345.6875} {
		x, err := FromFloat64(Params384, v)
		if err != nil {
			t.Fatal(err)
		}
		text, err := x.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var y HP
		if err := y.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%s): %v", text, err)
		}
		if !y.Equal(x) {
			t.Errorf("text round trip of %g differs", v)
		}
	}
	// Format spot check.
	one, _ := FromFloat64(Params128, 1)
	text, _ := one.MarshalText()
	if string(text) != "hp:2,1:0000000000000001.0000000000000000" {
		t.Errorf("text = %s", text)
	}
}

func TestUnmarshalTextErrors(t *testing.T) {
	cases := []string{
		"",
		"nope",
		"hp:2:aa",
		"hp:x,1:0000000000000001.0000000000000000",
		"hp:2,y:0000000000000001.0000000000000000",
		"hp:2,3:0000000000000001.0000000000000000", // k > N
		"hp:2,1:0000000000000001",                  // wrong limb count
		"hp:2,1:0001.0000000000000000",             // short limb
		"hp:2,1:000000000000000g.0000000000000000", // bad hex
	}
	for _, c := range cases {
		var h HP
		if err := h.UnmarshalText([]byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}
