package core

import "repro/internal/telemetry"

// Hot-path metrics for the HP accumulators. All recording is gated by
// telemetry.Enabled(), so with telemetry off each instrumented call adds
// only an atomic load and a branch; with it on, the counters are sharded
// and never touch accumulator state, preserving bit-identical sums.
var (
	mAddHP = telemetry.NewCounter("core_addhp_total",
		"Atomic fetch-add HP additions (Atomic.AddHP calls).")
	mAddHPCAS = telemetry.NewCounter("core_addhp_cas_total",
		"Atomic CAS-loop HP additions (Atomic.AddHPCAS calls).")
	mCASRetries = telemetry.NewCounter("core_cas_retries_total",
		"Failed compare-and-swap attempts inside Atomic.AddHPCAS; each retry is one lost race against a concurrent adder.")
	mCarryDepth = telemetry.NewHistogram("core_carry_depth",
		"Limbs receiving a carry-in per atomic HP addition (cross-limb carry propagation depth).",
		telemetry.LinearBuckets(0, 1, 9))
	mOverflow = telemetry.NewCounter("core_overflow_total",
		"Overflow detections: conversions or signed additions exceeding the HP whole-part range.")
	mUnderflow = telemetry.NewCounter("core_underflow_total",
		"Underflow detections: conversions with significant bits below the HP fractional range.")
	mAdaptiveWidenings = telemetry.NewCounter("core_adaptive_widenings_total",
		"Adaptive accumulator precision promotions (format widenings).")
	mBatchAdds = telemetry.NewCounter("core_batch_adds_total",
		"Values accumulated through the carry-save batch kernel (BatchAccumulator.AddSlice elements).")
	mBatchNormalizes = telemetry.NewCounter("core_batch_normalizes_total",
		"BatchAccumulator.Normalize calls that had pending adds to account for.")
	mBatchFolds = telemetry.NewCounter("core_batch_carry_folds_total",
		"Normalize calls that found nonzero pending carry counts and ran the fold loop.")
	mSuperAdds = telemetry.NewCounter("core_super_adds_total",
		"Values accumulated through the exponent-indexed superaccumulator (SuperAccumulator.AddSlice elements).")
	mSuperSpills = telemetry.NewCounter("core_super_spills_total",
		"SuperAccumulator spills that folded at least one touched bin into the canonical limbs.")
	mAdaptiveLimbs = telemetry.NewGauge("core_adaptive_limbs",
		"Current limb count N of the most recently widened adaptive accumulator.")
)

// countRangeErr classifies a conversion/accumulation error into the
// overflow/underflow counters. Called only on error paths.
func countRangeErr(err error) {
	switch err {
	case ErrOverflow:
		mOverflow.Inc()
	case ErrUnderflow:
		mUnderflow.Inc()
	}
}
