// Package core implements the HP (High-Precision) order-invariant summation
// method of Small, Kalia, Nakano and Vashishta (IPDPS 2016).
//
// A real number r is represented by N unsigned 64-bit limbs a[0..N-1]
// (limb 0 most significant) that together form one two's-complement integer
// A of 64*N bits; k of the limbs hold the fractional part, so
//
//	r = A * 2^(-64k) = sum_{i=0..N-1} a_i * 2^(64*(N-k-1-i))   (paper eq. 2)
//
// Addition of two HP numbers is plain multi-limb integer addition, which is
// fully associative and implemented identically on every architecture:
// given sufficient precision, the sum of any multiset of values is therefore
// bit-identical regardless of summation order, thread count, or platform.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/big"
)

// Errors reported by conversions and arithmetic. Overflow and underflow
// correspond to the three overflow points and two underflow points the paper
// enumerates in §III.B.1.
var (
	// ErrNotFinite is returned when converting a NaN or infinity, which have
	// no fixed-point representation.
	ErrNotFinite = errors.New("core: value is NaN or infinite")
	// ErrOverflow is returned when a value's magnitude exceeds the maximum
	// range of the configured HP format, or when an addition wraps past it.
	ErrOverflow = errors.New("core: HP overflow")
	// ErrUnderflow is returned when a nonzero value has significant bits
	// below 2^(-64k) that would be silently lost, breaking exactness.
	ErrUnderflow = errors.New("core: HP underflow")
	// ErrParamMismatch is returned when combining HP values with different
	// (N, k) parameters.
	ErrParamMismatch = errors.New("core: mismatched HP parameters")
)

// Params selects an HP format: N total 64-bit limbs, of which K hold the
// fractional part. The paper's notation is (N, k).
type Params struct {
	N int // total limbs; N >= 1
	K int // fractional limbs; 0 <= K <= N
}

// Common formats used throughout the paper's evaluation.
var (
	// Params128 is HP(N=2, k=1): 128 bits, range ±9.22e18, smallest 5.42e-20.
	Params128 = Params{N: 2, K: 1}
	// Params192 is HP(N=3, k=2), used for the Figure 1 exactness demo.
	Params192 = Params{N: 3, K: 2}
	// Params384 is HP(N=6, k=3), used for the strong-scaling experiments
	// (Figures 5-8). The paper's Table 1 lists this row as "256 bits", a
	// typo: 6 limbs * 64 = 384 bits, consistent with its range columns.
	Params384 = Params{N: 6, K: 3}
	// Params512 is HP(N=8, k=4), used for the Figure 4 comparison versus
	// the Hallberg method.
	Params512 = Params{N: 8, K: 4}
)

// Validate reports whether p is a usable HP format.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("core: N must be >= 1, got %d", p.N)
	}
	if p.K < 0 || p.K > p.N {
		return fmt.Errorf("core: k must be in [0, N], got k=%d N=%d", p.K, p.N)
	}
	return nil
}

// Bits returns the total number of bits in the representation (64*N).
func (p Params) Bits() int { return 64 * p.N }

// PrecisionBits returns the number of bits that carry value precision: all
// bits except the single sign bit (paper §IV.A counts 511 for N=8).
func (p Params) PrecisionBits() int { return 64*p.N - 1 }

// MaxRange returns the magnitude bound of the format as a float64: values v
// with |v| < MaxRange are representable (up to fractional truncation). It
// equals 2^(64*(N-K) - 1) and may be +Inf if it exceeds float64 range.
func (p Params) MaxRange() float64 {
	return math.Ldexp(1, 64*(p.N-p.K)-1)
}

// Smallest returns the smallest positive representable value, 2^(-64K).
func (p Params) Smallest() float64 {
	return math.Ldexp(1, -64*p.K)
}

// MaxRangeBig returns the exact magnitude bound 2^(64*(N-K)-1).
func (p Params) MaxRangeBig() *big.Float {
	f := big.NewFloat(1)
	return f.SetMantExp(f, 64*(p.N-p.K)-1)
}

// SmallestBig returns the exact smallest positive value 2^(-64K).
func (p Params) SmallestBig() *big.Float {
	f := big.NewFloat(1)
	return f.SetMantExp(f, -64*p.K)
}

// String returns a compact description such as "HP(N=6,k=3)".
func (p Params) String() string { return fmt.Sprintf("HP(N=%d,k=%d)", p.N, p.K) }
