package core

import (
	"errors"
	"math"
)

// Exact accumulation of products: the N-body force sums that motivate the
// paper are sums of PRODUCTS (mass * mass / r^2 terms), and the product
// itself rounds before the HP accumulator ever sees it. TwoProduct removes
// that rounding: x*y is split error-free into p + e (Dekker 1971, via
// Veltkamp splitting — no FMA dependency, so results are identical on every
// architecture, in keeping with the paper's portability goal), and both
// halves are accumulated exactly.

// ErrProductRange is returned when a product's magnitude is too extreme
// for the error-free transformation (overflow of the splitting constant,
// or an error term below the subnormal range).
var ErrProductRange = errors.New("core: product outside error-free range")

// splitConst is the Veltkamp splitting constant 2^27 + 1 for float64.
const splitConst = 1<<27 + 1

// veltkamp splits a into hi + lo with hi carrying the top 26 significand
// bits and lo the bottom 27, both exact.
func veltkamp(a float64) (hi, lo float64) {
	c := splitConst * a
	hi = c - (c - a)
	return hi, a - hi
}

// TwoProduct returns p = fl(x*y) and the exact error e with x*y == p + e.
// It reports ErrProductRange when the transformation's preconditions fail:
// |x| or |y| at or above 2^995 (the splitting constant would overflow) or a
// nonzero product with magnitude below 2^-967 (the error term could fall
// below the subnormal range and round).
func TwoProduct(x, y float64) (p, e float64, err error) {
	p = x * y
	if p == 0 {
		if x != 0 && y != 0 {
			return 0, 0, ErrProductRange // product underflowed to zero
		}
		return 0, 0, nil
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return p, 0, ErrProductRange
	}
	if ax := math.Abs(x); ax >= 0x1p995 {
		return p, 0, ErrProductRange
	}
	if ay := math.Abs(y); ay >= 0x1p995 {
		return p, 0, ErrProductRange
	}
	if math.Abs(p) < 0x1p-967 {
		return p, 0, ErrProductRange
	}
	x1, x2 := veltkamp(x)
	y1, y2 := veltkamp(y)
	e = ((x1*y1 - p) + x1*y2 + x2*y1) + x2*y2
	return p, e, nil
}

// AddProduct accumulates x*y exactly: the rounded product and its exact
// rounding error are both added, so the running sum carries the true
// product. Range faults latch the sticky error and leave the sum unchanged.
func (a *Accumulator) AddProduct(x, y float64) {
	p, e, err := TwoProduct(x, y)
	if err != nil {
		if a.err == nil {
			a.err = err
		}
		return
	}
	a.Add(p)
	if e != 0 {
		a.Add(e)
	}
}

// DotHP returns the exact dot product of xs and ys as an HP value. The
// slices must have equal length.
func DotHP(p Params, xs, ys []float64) (*HP, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("core: dot product length mismatch")
	}
	acc := NewAccumulator(p)
	for i := range xs {
		acc.AddProduct(xs[i], ys[i])
	}
	if acc.Err() != nil {
		return nil, acc.Err()
	}
	return acc.Sum(), nil
}

// Dot returns the correctly rounded exact dot product of xs and ys.
func Dot(p Params, xs, ys []float64) (float64, error) {
	hp, err := DotHP(p, xs, ys)
	if err != nil {
		return 0, err
	}
	return hp.Float64(), nil
}
