package core

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/exact"
	"repro/internal/rng"
)

// ratProduct returns the exact rational product of x and y.
func ratProduct(x, y float64) *big.Rat {
	rx := new(big.Rat).SetFloat64(x)
	ry := new(big.Rat).SetFloat64(y)
	return rx.Mul(rx, ry)
}

func TestTwoProductErrorFree(t *testing.T) {
	r := rng.New(51)
	for i := 0; i < 5000; i++ {
		x := r.Exp2Uniform(-300, 300)
		y := r.Exp2Uniform(-300, 300)
		p, e, err := TwoProduct(x, y)
		if err != nil {
			t.Fatalf("TwoProduct(%g, %g): %v", x, y, err)
		}
		sum := exact.New()
		sum.AddAll([]float64{p, e})
		if sum.Rat().Cmp(ratProduct(x, y)) != 0 {
			t.Fatalf("TwoProduct(%g, %g) = %g + %g, not exact", x, y, p, e)
		}
	}
}

func TestTwoProductSpecialCases(t *testing.T) {
	if p, e, err := TwoProduct(0, 5); p != 0 || e != 0 || err != nil {
		t.Error("0 * 5")
	}
	if p, e, err := TwoProduct(3, 0); p != 0 || e != 0 || err != nil {
		t.Error("3 * 0")
	}
	if _, _, err := TwoProduct(1e300, 1e300); err != ErrProductRange {
		t.Errorf("overflow: %v", err)
	}
	if _, _, err := TwoProduct(0x1p996, 2); err != ErrProductRange {
		t.Errorf("split overflow: %v", err)
	}
	if _, _, err := TwoProduct(1e-200, 1e-200); err != ErrProductRange {
		t.Errorf("deep underflow: %v", err)
	}
	if _, _, err := TwoProduct(1e-160, 1e-160); err != ErrProductRange {
		t.Errorf("near-subnormal error term: %v", err)
	}
	if _, _, err := TwoProduct(math.NaN(), 1); err != ErrProductRange {
		t.Errorf("NaN: %v", err)
	}
}

func TestAddProductExactness(t *testing.T) {
	r := rng.New(52)
	acc := NewAccumulator(Params512)
	want := new(big.Rat)
	for i := 0; i < 500; i++ {
		x := r.Exp2Uniform(-60, 60)
		y := r.Exp2Uniform(-60, 60)
		acc.AddProduct(x, y)
		want.Add(want, ratProduct(x, y))
	}
	if acc.Err() != nil {
		t.Fatal(acc.Err())
	}
	if acc.Sum().Rat().Cmp(want) != 0 {
		t.Error("AddProduct sum diverged from exact rational product sum")
	}
}

func TestAddProductRangeFaultLatches(t *testing.T) {
	acc := NewAccumulator(Params512)
	acc.AddProduct(1, 2)
	acc.AddProduct(1e300, 1e300) // faults
	acc.AddProduct(3, 4)
	if acc.Err() != ErrProductRange {
		t.Errorf("Err = %v", acc.Err())
	}
	if got := acc.Float64(); got != 14 {
		t.Errorf("sum = %g, want 14 (faulting product skipped)", got)
	}
}

func TestDotMatchesOracle(t *testing.T) {
	r := rng.New(53)
	n := 2000
	xs := rng.UniformSet(r, n, -1, 1)
	ys := rng.UniformSet(r, n, -1, 1)
	got, err := Dot(Params512, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Rat)
	for i := range xs {
		want.Add(want, ratProduct(xs[i], ys[i]))
	}
	wf := new(big.Float).SetPrec(200)
	wf.SetRat(want)
	wantF, _ := wf.Float64()
	if got != wantF {
		t.Errorf("Dot = %.20g, want %.20g", got, wantF)
	}
	if _, err := Dot(Params512, xs, ys[:10]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDotOrderInvariance(t *testing.T) {
	r := rng.New(54)
	n := 1000
	xs := rng.UniformSet(r, n, -1, 1)
	ys := rng.UniformSet(r, n, -1, 1)
	ref, err := DotHP(Params512, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Same pairs, reversed order.
	rx := make([]float64, n)
	ry := make([]float64, n)
	for i := range xs {
		rx[i] = xs[n-1-i]
		ry[i] = ys[n-1-i]
	}
	rev, err := DotHP(Params512, rx, ry)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(rev) {
		t.Error("dot product not order invariant")
	}
}

// The ill-conditioned dot product that defeats plain float64: large
// cancelling products with a small residual.
func TestDotIllConditioned(t *testing.T) {
	xs := []float64{1e15, -1e15, 1}
	ys := []float64{1e15, 1e15, 0.5}
	got, err := Dot(Params512, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("Dot = %g, want 0.5", got)
	}
}
