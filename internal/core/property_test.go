package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/rng"
)

// inRange512 wraps a float64 guaranteed to be exactly representable in
// HP(8,4): magnitude in [2^-200, 2^200), so the lowest mantissa bit stays
// above the 2^-256 resolution floor. It implements quick.Generator.
type inRange512 float64

func (inRange512) Generate(r *rand.Rand, _ int) reflect.Value {
	e := -200 + r.Intn(400)
	m := 1 + r.Float64()
	x := math.Ldexp(m, e)
	if r.Intn(2) == 1 {
		x = -x
	}
	return reflect.ValueOf(inRange512(x))
}

// smallSet wraps a bounded set of in-range values for multi-operand
// properties.
type smallSet []float64

func (smallSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(64)
	xs := make([]float64, n)
	for i := range xs {
		e := -200 + r.Intn(400)
		xs[i] = math.Ldexp(1+r.Float64(), e)
		if r.Intn(2) == 1 {
			xs[i] = -xs[i]
		}
	}
	return reflect.ValueOf(smallSet(xs))
}

var quickCfg = &quick.Config{MaxCount: 400}

// Property 3 (DESIGN.md): FromFloat64(x).Float64() == x for in-range x.
func TestPropRoundTrip(t *testing.T) {
	f := func(v inRange512) bool {
		z, err := FromFloat64(Params512, float64(v))
		if err != nil {
			return false
		}
		return z.Float64() == float64(v)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property 5: the paper's Listing 1 conversion produces limbs identical to
// the exact bit-decomposition path.
func TestPropListing1MatchesBitDecompose(t *testing.T) {
	for _, p := range []Params{Params128, Params192, Params384, Params512} {
		p := p
		f := func(v inRange512) bool {
			x := float64(v)
			a := New(p)
			b := New(p)
			errA := a.SetFloat64(x)
			errB := b.SetFloat64Listing1(x)
			if (errA == nil) != (errB == nil) {
				return false
			}
			if errA != nil {
				return true // both rejected out-of-range input
			}
			return a.Equal(b)
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

// The paper's Listing 2 addition produces the same limbs and overflow
// verdict as the math/bits carry chain.
func TestPropListing2MatchesAdd(t *testing.T) {
	p := Params{N: 5, K: 2}
	f := func(raw [10]uint64) bool {
		a1 := New(p)
		a2 := New(p)
		b := New(p)
		copy(a1.limbs, raw[:5])
		copy(a2.limbs, raw[:5])
		copy(b.limbs, raw[5:])
		ov1 := a1.Add(b)
		ov2 := a2.AddListing2(b)
		return ov1 == ov2 && a1.Equal(a2)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property 4: x + (-x) == 0 and negation is an exact involution.
func TestPropNegation(t *testing.T) {
	f := func(v inRange512) bool {
		x, err := FromFloat64(Params512, float64(v))
		if err != nil {
			return false
		}
		negX, err := FromFloat64(Params512, -float64(v))
		if err != nil {
			return false
		}
		// Conversion of -x equals two's complement of conversion of x.
		if !x.Clone().Neg().Equal(negX) {
			return false
		}
		sum := x.Clone()
		sum.Add(negX)
		return sum.IsZero()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property 1: order invariance — summing any permutation yields
// bit-identical limbs.
func TestPropOrderInvariance(t *testing.T) {
	f := func(s smallSet, seed uint64) bool {
		xs := []float64(s)
		r := rng.New(seed)
		a := NewAccumulator(Params512)
		a.AddAll(xs)
		b := NewAccumulator(Params512)
		b.AddAll(rng.Reorder(r, xs))
		return a.Err() == nil && b.Err() == nil && a.Sum().Equal(b.Sum())
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property 2: exactness — the HP sum equals the arbitrary-precision oracle.
func TestPropExactnessVsOracle(t *testing.T) {
	f := func(s smallSet) bool {
		xs := []float64(s)
		acc := NewAccumulator(Params512)
		acc.AddAll(xs)
		if acc.Err() != nil {
			return false
		}
		oracle := exact.New()
		oracle.AddAll(xs)
		return acc.Sum().Rat().Cmp(oracle.Rat()) == 0 &&
			acc.Float64() == oracle.Float64()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Addition is commutative and associative at the limb level.
func TestPropAddCommutativeAssociative(t *testing.T) {
	p := Params{N: 4, K: 2}
	f := func(raw [12]uint64) bool {
		mk := func(off int) *HP {
			z := New(p)
			copy(z.limbs, raw[off:off+4])
			z.limbs[0] &= (1 << 62) - 1 // keep positive with headroom: no overflow noise
			return z
		}
		a, b, c := mk(0), mk(4), mk(8)
		ab := a.Clone()
		ab.Add(b)
		ba := b.Clone()
		ba.Add(a)
		if !ab.Equal(ba) {
			return false
		}
		abc1 := ab.Clone()
		abc1.Add(c)
		bc := b.Clone()
		bc.Add(c)
		abc2 := a.Clone()
		abc2.Add(bc)
		return abc1.Equal(abc2)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Cmp is consistent with subtraction sign and with Float64 ordering.
func TestPropCmpConsistent(t *testing.T) {
	f := func(v1, v2 inRange512) bool {
		a, err := FromFloat64(Params512, float64(v1))
		if err != nil {
			return false
		}
		b, err := FromFloat64(Params512, float64(v2))
		if err != nil {
			return false
		}
		cmp := a.Cmp(b)
		diff := a.Clone()
		diff.Sub(b)
		if cmp != diff.Sign() {
			return false
		}
		switch {
		case float64(v1) < float64(v2):
			return cmp == -1
		case float64(v1) > float64(v2):
			return cmp == 1
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Marshal round trip preserves value and parameters exactly.
func TestPropMarshalRoundTrip(t *testing.T) {
	f := func(raw [8]uint64) bool {
		x := New(Params512)
		copy(x.limbs, raw[:])
		data, err := x.MarshalBinary()
		if err != nil {
			return false
		}
		var y HP
		if err := y.UnmarshalBinary(data); err != nil {
			return false
		}
		return y.Equal(x)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// The adaptive accumulator matches the oracle on arbitrary finite doubles,
// including values far outside any fixed format.
func TestPropAdaptiveExactness(t *testing.T) {
	f := func(vals []float64) bool {
		a := NewAdaptive(Params128)
		oracle := exact.New()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if err := a.Add(v); err != nil {
				return false
			}
			oracle.Add(v)
		}
		return a.Sum().Rat().Cmp(oracle.Rat()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
