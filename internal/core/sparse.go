package core

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// This file implements the fused sparse convert-add kernel. A single
// float64 has a 53-bit significand, so under the paper's eq. 2 layout it
// lands in at most two adjacent limbs of an HP number; SetFloat64 followed
// by Add nevertheless zeroes and re-walks all N limbs. The kernel below
// decomposes the float64 bit pattern directly into a two-limb window
// (limbDelta), adds that window in place with bits.Add64/Sub64, and
// propagates the carry or borrow upward only while it is nonzero. Negative
// values are handled by a symmetric sparse subtract of the magnitude, so no
// full-width two's-complement scratch value is ever materialized.
//
// Equivalence to the full-width path (proved by golden vectors, property
// tests, and FuzzFusedAddDifferential): outside the window the full-width
// addend limbs are zero for positive values, so the full carry chain below
// the window is the identity and above it transmits exactly the carry the
// window produced until it dies; for negative values the full-width add of
// the two's complement 2^(64N) - M equals the full-width subtract of the
// magnitude M (mod 2^(64N)), whose borrow chain outside the window is
// likewise the identity once the borrow is absorbed. The signed-overflow
// verdict (paper §III.B.1 sign rule) depends only on the operand signs and
// the result sign, all of which are preserved.

// limbDelta is the sparse decomposition of a nonzero float64 into an HP
// limb window: lo is added into limbs[idx] and hi into limbs[idx-1].
// Normalization guarantees lo != 0 and that hi != 0 implies idx >= 1.
// The struct is small enough to live entirely in registers / on the stack.
type limbDelta struct {
	idx int    // big-endian index of the lower-order affected limb
	lo  uint64 // delta for limbs[idx]; never zero
	hi  uint64 // delta for limbs[idx-1]; zero when the value fits one limb
	neg bool   // true when the decomposed value was negative
}

// decomposeFloat64 splits v into its sparse limb window for format p. It
// performs exactly the range checks of SetFloat64: ErrNotFinite for
// NaN/Inf, ErrOverflow if |v| >= 2^(64(N-K)-1), ErrUnderflow if v has
// significant bits below 2^(-64K). v must be nonzero.
func decomposeFloat64(p Params, v float64) (limbDelta, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return limbDelta{}, ErrNotFinite
	}
	// Range-check failures below are counted here (not in callers) so every
	// fused path — Accumulator, Adaptive, Atomic, AtomicArray — records
	// overflow/underflow conversions exactly once.
	frac, exp := math.Frexp(v)
	neg := false
	if frac < 0 {
		neg = true
		frac = -frac
	}
	m := uint64(frac * (1 << 53)) // 53-bit integer significand, in [2^52, 2^53)
	s := exp - 53 + 64*p.K        // scaled integer A = m * 2^s
	if s < 0 {
		sh := uint(-s)
		if sh >= 64 || m&((uint64(1)<<sh)-1) != 0 {
			mUnderflow.Inc()
			return limbDelta{}, ErrUnderflow
		}
		m >>= sh
		s = 0
	}
	if bits.Len64(m)+s > 64*p.N-1 {
		mOverflow.Inc()
		return limbDelta{}, ErrOverflow
	}
	d := limbDelta{idx: p.N - 1 - s/64, neg: neg}
	off := uint(s % 64)
	d.lo = m << off
	if off != 0 {
		d.hi = m >> (64 - off)
	}
	if d.lo == 0 {
		// All significand bits shifted into the high limb: renormalize so
		// lo is the (single) nonzero limb of the window.
		d.idx--
		d.lo, d.hi = d.hi, 0
	}
	return d, nil
}

// AddFloat64 adds v to x in place using the fused sparse kernel. It is
// bit-identical to SetFloat64 into a scratch value followed by Add,
// including the range-check behavior (x is untouched when err != nil) and
// the signed-overflow verdict (on overflow x holds the wrapped value). It
// touches only the limbs the value's exponent selects plus however far the
// carry or borrow actually propagates.
func (x *HP) AddFloat64(v float64) (overflow bool, err error) {
	if v == 0 {
		return false, nil
	}
	d, err := decomposeFloat64(x.p, v)
	if err != nil {
		return false, err
	}
	signX := x.limbs[0] >> 63
	if d.neg {
		x.subSparse(d)
		// Adding a negative value: overflow iff x was negative and the
		// result is non-negative (Add's sign rule with signY = 1).
		return signX == 1 && x.limbs[0]>>63 == 0, nil
	}
	x.addSparse(d)
	return signX == 0 && x.limbs[0]>>63 == 1, nil
}

// SubFloat64 subtracts v from x in place (x -= v) via the sparse kernel.
// Float64 negation is exact, so this is AddFloat64 of -v.
func (x *HP) SubFloat64(v float64) (overflow bool, err error) {
	return x.AddFloat64(-v)
}

// addSparse adds the (positive-magnitude) window into x's limbs,
// propagating the carry upward only while nonzero. A carry out of the most
// significant limb wraps, exactly as the full-width chain would.
func (x *HP) addSparse(d limbDelta) {
	var c uint64
	x.limbs[d.idx], c = bits.Add64(x.limbs[d.idx], d.lo, 0)
	if d.idx == 0 {
		return
	}
	x.limbs[d.idx-1], c = bits.Add64(x.limbs[d.idx-1], d.hi, c)
	for i := d.idx - 2; i >= 0 && c != 0; i-- {
		x.limbs[i], c = bits.Add64(x.limbs[i], 0, c)
	}
}

// subSparse subtracts the window magnitude from x's limbs, propagating the
// borrow upward only while nonzero.
func (x *HP) subSparse(d limbDelta) {
	var b uint64
	x.limbs[d.idx], b = bits.Sub64(x.limbs[d.idx], d.lo, 0)
	if d.idx == 0 {
		return
	}
	x.limbs[d.idx-1], b = bits.Sub64(x.limbs[d.idx-1], d.hi, b)
	for i := d.idx - 2; i >= 0 && b != 0; i-- {
		x.limbs[i], b = bits.Sub64(x.limbs[i], 0, b)
	}
}

// atomicAddSparse adds the window into a big-endian bank of atomic limbs
// with one fetch-add per touched limb, handing carries up thread-locally
// exactly as Atomic.AddHP does (limb-wise fetch-adds commute and each
// adder injects exactly the carries its own addend produced, so the final
// state equals the sequential sum regardless of interleaving). It returns
// the number of limbs beyond the window that received a carry.
func atomicAddSparse(limbs []atomic.Uint64, d limbDelta) (depth uint64) {
	var carry uint64
	next := limbs[d.idx].Add(d.lo)
	if next < d.lo {
		carry = 1
	}
	if d.idx == 0 {
		return 0
	}
	delta := d.hi + carry
	carry = 0
	if delta < d.hi { // d.hi was all ones and carry was 1: delta wrapped to 0
		carry = 1
	}
	if delta != 0 {
		next = limbs[d.idx-1].Add(delta)
		if next < delta {
			carry++
		}
	}
	for i := d.idx - 2; i >= 0 && carry != 0; i-- {
		depth++
		if next = limbs[i].Add(1); next != 0 {
			carry = 0
		}
	}
	return depth
}

// atomicSubSparse subtracts the window magnitude from the atomic bank.
// Subtraction is the fetch-add of the two's complement 2^(64N) - M: limbs
// below the window contribute 0 (the complement's +1 has already carried
// through them), the window contributes ^lo + 1 and ^hi, and every limb
// above contributes all-ones — which combines with a carry-in of 1 to a
// delta of 0, so the walk stops at the first limb that absorbs the borrow.
func atomicSubSparse(limbs []atomic.Uint64, d limbDelta) (depth uint64) {
	carry := uint64(1) // the complement's +1, carried up through the zeros
	for i := d.idx; i >= 0; i-- {
		var v uint64
		switch i {
		case d.idx:
			v = ^d.lo
		case d.idx - 1:
			v = ^d.hi
		default:
			if carry == 1 {
				return depth // all higher deltas are ^0 + 1 = 0: done
			}
			v = ^uint64(0)
			depth++
		}
		delta := v + carry
		carry = 0
		if delta < v {
			carry = 1
		}
		if delta == 0 {
			continue
		}
		next := limbs[i].Add(delta)
		if next < delta {
			carry++
		}
	}
	return depth
}

// atomicAddSparseCAS is atomicAddSparse with compare-and-swap loops, the
// primitive the paper assumes on CUDA. It additionally returns the number
// of lost races.
func atomicAddSparseCAS(limbs []atomic.Uint64, d limbDelta) (depth, retries uint64) {
	casAdd := func(i int, delta uint64) (carryOut uint64) {
		for {
			old := limbs[i].Load()
			next, co := bits.Add64(old, delta, 0)
			if limbs[i].CompareAndSwap(old, next) {
				return co
			}
			retries++
		}
	}
	carry := casAdd(d.idx, d.lo)
	if d.idx == 0 {
		return 0, retries
	}
	delta := d.hi + carry
	carry = 0
	if delta < d.hi {
		carry = 1
	}
	if delta != 0 {
		carry += casAdd(d.idx-1, delta)
	}
	for i := d.idx - 2; i >= 0 && carry != 0; i-- {
		depth++
		carry = casAdd(i, 1)
	}
	return depth, retries
}

// atomicSubSparseCAS is atomicSubSparse with compare-and-swap loops.
func atomicSubSparseCAS(limbs []atomic.Uint64, d limbDelta) (depth, retries uint64) {
	carry := uint64(1)
	for i := d.idx; i >= 0; i-- {
		var v uint64
		switch i {
		case d.idx:
			v = ^d.lo
		case d.idx - 1:
			v = ^d.hi
		default:
			if carry == 1 {
				return depth, retries
			}
			v = ^uint64(0)
			depth++
		}
		delta := v + carry
		carry = 0
		if delta < v {
			carry = 1
		}
		if delta == 0 {
			continue
		}
		for {
			old := limbs[i].Load()
			next, co := bits.Add64(old, delta, 0)
			if limbs[i].CompareAndSwap(old, next) {
				carry += co
				break
			}
			retries++
		}
	}
	return depth, retries
}
