package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// legacyAdd is the pre-fused reference path: convert into a scratch HP
// (full zeroing + full-width negate for negatives), then run the complete
// N-limb carry chain. The fused kernel must be indistinguishable from it.
func legacyAdd(sum, scratch *HP, x float64) (overflow bool, err error) {
	if err := scratch.SetFloat64(x); err != nil {
		return false, err
	}
	return sum.Add(scratch), nil
}

// mixedLimbs fills an HP with deterministic splitmix-derived limbs so
// fused-vs-legacy comparisons start from arbitrary states (positive,
// negative, all-ones runs) rather than only from zero.
func mixedLimbs(p Params, seed uint64) *HP {
	z := New(p)
	state := seed
	for i := range z.limbs {
		state += 0x9E3779B97F4A7C15
		v := state
		v ^= v >> 30
		v *= 0xBF58476D1CE4E5B9
		v ^= v >> 27
		z.limbs[i] = v
	}
	return z
}

// TestGoldenSparseKernel pins the fused kernel's limbs on handcrafted
// states that exercise every structural case: single-limb windows,
// split-limb windows, full-length carry and borrow chains, the lo==0
// renormalization, sign crossings, and wrap-on-overflow.
func TestGoldenSparseKernel(t *testing.T) {
	cases := []struct {
		name  string
		limbs []uint64 // starting limbs for HP(N=3,k=1), nil = zero
		x     float64
		want  string
		ov    bool
	}{
		{
			// 1.0 has s=12 and m=2^52, so m<<12 wraps the low limb to zero:
			// the lo==0 renormalization path.
			name: "one into empty (lo==0 renormalization)",
			x:    1,
			want: "[0000000000000000 0000000000000001 0000000000000000]",
		},
		{
			name: "split window across frac boundary",
			x:    1.5,
			want: "[0000000000000000 0000000000000001 8000000000000000]",
		},
		{
			name:  "carry chain across every limb",
			limbs: []uint64{0x7ffffffffffffffe, ^uint64(0), ^uint64(0)},
			x:     math.Ldexp(1, -64), // one ulp of the least limb
			want:  "[7fffffffffffffff 0000000000000000 0000000000000000]",
		},
		{
			name:  "borrow chain across every limb",
			limbs: []uint64{1, 0, 0},
			x:     -math.Ldexp(1, -64),
			want:  "[0000000000000000 ffffffffffffffff ffffffffffffffff]",
		},
		{
			name: "window at top of whole limb",
			x:    math.Ldexp(1, 63),
			want: "[0000000000000000 8000000000000000 0000000000000000]",
		},
		{
			name:  "negative crossing zero",
			limbs: []uint64{0, 0, 0x8000000000000000}, // +2^-1
			x:     -0.75,
			want:  "[ffffffffffffffff ffffffffffffffff c000000000000000]",
		},
		{
			name:  "positive overflow wraps",
			limbs: []uint64{0x7fffffffffffffff, ^uint64(0), ^uint64(0)},
			x:     math.Ldexp(1, -64),
			want:  "[8000000000000000 0000000000000000 0000000000000000]",
			ov:    true,
		},
		{
			name:  "negative overflow wraps",
			limbs: []uint64{0x8000000000000000, 0, 0}, // most negative value
			x:     -math.Ldexp(1, -64),
			want:  "[7fffffffffffffff ffffffffffffffff ffffffffffffffff]",
			ov:    true,
		},
	}
	p := Params{N: 3, K: 1}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			z := New(p)
			copy(z.limbs, tc.limbs)
			ov, err := z.AddFloat64(tc.x)
			if err != nil {
				t.Fatal(err)
			}
			if got := fmt.Sprintf("%016x", z.Limbs()); got != tc.want {
				t.Errorf("limbs drifted:\n got %s\nwant %s", got, tc.want)
			}
			if ov != tc.ov {
				t.Errorf("overflow = %v, want %v", ov, tc.ov)
			}
		})
	}
}

// TestGoldenFusedUniformSum re-derives the pinned golden uniform workload
// through the raw fused kernel (no Accumulator), proving the kernel alone
// reproduces the repository's reproducibility certificate.
func TestGoldenFusedUniformSum(t *testing.T) {
	xs := rng.UniformSet(rng.New(2016), 100000, -0.5, 0.5)
	z := New(Params384)
	for _, x := range xs {
		if ov, err := z.AddFloat64(x); err != nil || ov {
			t.Fatalf("AddFloat64(%g): overflow=%v err=%v", x, ov, err)
		}
	}
	got := fmt.Sprintf("%016x", z.Limbs())
	const want = "[0000000000000000 0000000000000000 0000000000000097 d2fb6ee2a75a8000 0000000000000000 0000000000000000]"
	if got != want {
		t.Errorf("fused golden uniform sum drifted:\n got %s\nwant %s", got, want)
	}
}

// TestPropFusedMatchesLegacy: from arbitrary limb states and in-range
// values, the fused kernel is bit-identical to SetFloat64+Add — limbs,
// overflow verdict, and acceptance — across all canonical formats.
func TestPropFusedMatchesLegacy(t *testing.T) {
	for _, p := range []Params{Params128, Params192, Params384, Params512} {
		p := p
		f := func(seed uint64, v inRange512) bool {
			x := float64(v)
			fused := mixedLimbs(p, seed)
			legacy := fused.Clone()
			scratch := New(p)
			ovF, errF := fused.AddFloat64(x)
			ovL, errL := legacyAdd(legacy, scratch, x)
			if (errF == nil) != (errL == nil) {
				return false
			}
			if errF != nil {
				// Rejected input must leave the fused receiver untouched.
				return fused.Equal(legacy)
			}
			return ovF == ovL && fused.Equal(legacy)
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

// denseFloat is a quick.Generator emitting values whose exponents
// concentrate near the limb boundaries of HP(N=3,k=1), where the sparse
// window placement (idx, off, lo==0 renormalization) has its edge cases.
type denseFloat float64

func (denseFloat) Generate(r *rand.Rand, _ int) reflect.Value {
	e := -80 + r.Intn(230) // spans below underflow to above overflow of (3,1)
	x := math.Ldexp(1+r.Float64(), e)
	if r.Intn(2) == 1 {
		x = -x
	}
	return reflect.ValueOf(denseFloat(x))
}

// TestPropFusedMatchesLegacySmallFormat drives the tight HP(3,1) format
// where carries regularly reach the sign limb and rejections are common.
func TestPropFusedMatchesLegacySmallFormat(t *testing.T) {
	p := Params{N: 3, K: 1}
	f := func(seed uint64, v denseFloat) bool {
		x := float64(v)
		fused := mixedLimbs(p, seed)
		legacy := fused.Clone()
		scratch := New(p)
		ovF, errF := fused.AddFloat64(x)
		ovL, errL := legacyAdd(legacy, scratch, x)
		if errF != errL {
			return false
		}
		if errF != nil {
			return fused.Equal(legacy)
		}
		return ovF == ovL && fused.Equal(legacy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropFusedOrderInvariance: summing any permutation through the raw
// fused kernel yields bit-identical limbs (paper property 1 on the new
// hot path).
func TestPropFusedOrderInvariance(t *testing.T) {
	f := func(s smallSet, seed uint64) bool {
		xs := []float64(s)
		a := New(Params512)
		for _, x := range xs {
			if _, err := a.AddFloat64(x); err != nil {
				return false
			}
		}
		b := New(Params512)
		for _, x := range rng.Reorder(rng.New(seed), xs) {
			if _, err := b.AddFloat64(x); err != nil {
				return false
			}
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropAtomicFusedMatchesSequential: the sparse atomic adders (XADD and
// CAS, positive and negative paths) agree with the sequential fused sum.
func TestPropAtomicFusedMatchesSequential(t *testing.T) {
	f := func(s smallSet) bool {
		xs := []float64(s)
		seq := New(Params512)
		xadd := NewAtomic(Params512)
		cas := NewAtomic(Params512)
		for _, x := range xs {
			if _, err := seq.AddFloat64(x); err != nil {
				return false
			}
			if err := xadd.AddFloat64(x); err != nil {
				return false
			}
			if err := cas.AddFloat64CAS(x); err != nil {
				return false
			}
		}
		return xadd.Snapshot().Equal(seq) && cas.Snapshot().Equal(seq)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestFusedRejectionUntouched: conversion faults must leave the target
// exactly as it was (the sticky-error contract Accumulator relies on).
func TestFusedRejectionUntouched(t *testing.T) {
	z := mixedLimbs(Params128, 42)
	before := z.Clone()
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300, math.Ldexp(1, -100)} {
		if _, err := z.AddFloat64(x); err == nil {
			t.Errorf("AddFloat64(%g) accepted by %v", x, Params128)
		}
		if !z.Equal(before) {
			t.Fatalf("AddFloat64(%g) modified the receiver on rejection", x)
		}
	}
}

// TestAccumulatorAddZeroAlloc pins the hot path's allocation budget: the
// fused Accumulator.Add and Float64 must not allocate in steady state.
func TestAccumulatorAddZeroAlloc(t *testing.T) {
	acc := NewAccumulator(Params384)
	xs := rng.UniformSet(rng.New(5), 256, -0.5, 0.5)
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		acc.Add(xs[i%len(xs)])
		i++
	}); avg != 0 {
		t.Errorf("Accumulator.Add allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		_ = acc.Float64()
	}); avg != 0 {
		t.Errorf("Accumulator.Float64 allocates %.1f/op, want 0", avg)
	}
}

// TestAdaptiveAddZeroAlloc pins the adaptive steady state: once the format
// fits the workload, Add must not allocate — the overflow rollback is a
// sparse subtract, not a clone of the running sum.
func TestAdaptiveAddZeroAlloc(t *testing.T) {
	a := NewAdaptive(Params384)
	xs := rng.UniformSet(rng.New(6), 256, -1000, 1000)
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		if err := a.Add(xs[i%len(xs)]); err != nil {
			t.Fatal(err)
		}
		i++
	}); avg != 0 {
		t.Errorf("Adaptive.Add allocates %.1f/op in steady state, want 0", avg)
	}
	if a.Params() != Params384 {
		t.Fatalf("workload unexpectedly widened the format to %v", a.Params())
	}
}

// TestAdaptiveRollbackExact forces the accumulation-overflow path and
// verifies the Sub-based rollback: the widened sum must equal the oracle,
// i.e. nothing was lost rolling back the wrapped add.
func TestAdaptiveRollbackExact(t *testing.T) {
	p := Params{N: 2, K: 1} // whole part: one signed limb, max 2^63
	a := NewAdaptive(p)
	start := a.Params()
	big := math.Ldexp(1, 62) // half the whole-part range: two adds overflow
	vals := []float64{big, big, 0.5, big, -big, 1.25}
	for _, v := range vals {
		if err := a.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if a.Params() == start {
		t.Fatal("workload did not trigger the accumulation-overflow widening")
	}
	// Rebuild the same sum directly in the widened format, where no add
	// overflows: the rollback must have preserved every bit.
	wide := New(a.Params())
	for _, v := range vals {
		if ov, err := wide.AddFloat64(v); err != nil || ov {
			t.Fatalf("oracle add %g: overflow=%v err=%v", v, ov, err)
		}
	}
	if !a.Sum().Equal(wide) {
		t.Errorf("rollback lost state: sum %s, want %s", a.Sum(), wide)
	}
}
