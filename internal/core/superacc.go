package core

import (
	"math"
	"math/bits"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// This file implements the exponent-indexed superaccumulator frontend, in
// the spirit of Neal's small superaccumulator (arXiv:1505.05571) and the
// "procrastination" accumulators of Liguori et al. (arXiv:2406.05866). The
// carry-save batch kernel (batch.go) already removed the data-dependent
// carry ripple, but every add still forms a two-limb window (shift, mask,
// conditional negate, two 64-bit adds with carry, counter update) and the
// window adds for same-magnitude streams serialize on the same limb words.
// The superaccumulator procrastinates harder: values are binned by their
// raw float64 exponent, and an add is ONE signed 64-bit integer add into
// the bin the exponent selects —
//
//	bins[e] += ±(significand of x)
//
// — no shift, no carry, no window. A 53-bit significand leaves 10 bits of
// headroom in an int64 bin, so 2^10 adds are absorbed before any bin could
// overflow; a counted Spill then folds each touched bin into the canonical
// HP representation (bin * 2^(e-1075), an exact scaled add mod 2^(64N))
// and zeroes the bins.
//
// Exactness and order-invariance: every fast-path add changes exactly one
// bin by the value's exact scaled-integer significand, bin adds commute,
// and Spill adds sum_e bins[e]*2^(e-1075+64K) into the canonical limbs —
// the identity on the represented value mod 2^(64N). The canonical state
// after Spill therefore equals the fused sequential sum bit for bit
// regardless of spill placement (proved by TestPropSuperMatchesFused,
// golden vectors, and FuzzSuperSpillDifferential).

// MaxSuperAdds is the number of adds a SuperAccumulator absorbs between
// spills. Each fast-path add contributes a signed significand of magnitude
// at most 2^53 - 1 to exactly one bin stripe, so after A adds the absolute
// values across all stripes of a bin sum to at most A*(2^53 - 1), which
// stays below the int64 capacity 2^63 for every A <= 2^10 — the stripe sum
// the spill computes therefore cannot overflow either. AddSlice amortizes
// the bound over whole chunks.
const MaxSuperAdds = 1 << 10

// superStripes is the number of independent int64 lanes interleaved per
// exponent bin: bins[superStripes*i + lane]. The scalar paths always add
// into lane 0; the AVX2 front loop maps its four vector lanes onto the
// four stripes, so a run of same-exponent values lands on four independent
// store-forwarding chains instead of serializing on one memory word —
// same-magnitude streams are the common case (any well-scaled workload)
// and the dependent add-to-memory latency is what bounds the scalar loop.
// Spill sums the stripes of each touched bin before folding; integer
// addition commutes, so striping is invisible in the canonical result.
const superStripes = 4

// SuperAccumulator sums float64 values into an HP number through the
// exponent-indexed superaccumulator frontend: one indexed 64-bit add per
// value, carries deferred wholesale until a counted Spill folds the bins
// into the canonical representation. It is the fastest serial hot loop in
// the package (BENCH_sum.json workload "serial-super") and the default
// per-worker partial for the parallel reductions.
//
// Semantics match BatchAccumulator: conversion range errors (NaN/Inf,
// overflow, underflow of an input element) are detected identically, per
// element, and recorded as the same sticky first error; signed-overflow
// wraps are not observable per add (the accumulator operates exactly mod
// 2^(64N), like Accumulator.AllowWrap), and reductions apply the sign rule
// at their deterministic combine points via MergeChecked.
//
// A SuperAccumulator is not safe for concurrent use; give each goroutine
// its own and combine with Merge or MergeChecked.
type SuperAccumulator struct {
	p Params
	// bins holds superStripes interleaved signed lanes per in-gate biased
	// exponent: the stripes of bin i are bins[superStripes*i .. +3], and
	// their sum is the signed total of the 53-bit significands of every
	// fast-path value with biased exponent eMin+i since the last spill.
	// len(bins) == superStripes*nbins.
	bins []int64
	// nbins == eSpan+1 is the exponent-bin count, the gate bound the hot
	// loops compare against.
	nbins int
	// fold is the per-spill stripe-sum scratch (nbins entries), reused so
	// Spill stays allocation-free.
	fold []int64
	// lo..hi is the touched-bin watermark in exponent-bin space: Spill
	// walks only this range, so well-scaled streams (a narrow band of
	// exponents) pay a short fold no matter how wide the format's gate is.
	// lo > hi means no bin touched.
	lo, hi int
	// avx2 freezes the front-loop dispatch decision at construction: true
	// selects the AVX2 assembly chunk loop (amd64, !purego, feature probe
	// and kill switches permitting), false the generic Go loop.
	avx2 bool
	// room counts adds until the next forced spill; bounded by spillEvery.
	room       uint64
	spillEvery uint64 // normally MaxSuperAdds; lowered in tests
	// Fast-path gate, identical to BatchAccumulator's: a biased exponent e
	// with uint(e-eMin) <= uint(eSpan) is a nonzero normal float64 whose
	// significand provably fits the format. Everything else (zeros,
	// subnormals, NaN/Inf, range faults) takes the decomposeFloat64 slow
	// path, preserving error identity with the fused kernel.
	eMin, eSpan int
	sBias       int // s = e + sBias is the bit offset of the significand
	sum         *HP // canonical accumulated value; bins are deltas onto it
	kern        *limbKernel
	err         error
	mag         []uint64 // magnitude scratch for Float64, reused across calls
}

// NewSuper returns a zeroed superaccumulator with the given parameters. It
// panics if p is invalid; use Params.Validate to check first. When the
// format matches a shipped width, the unrolled limb kernel is selected for
// the full-width fold and merge loops.
func NewSuper(p Params) *SuperAccumulator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	s := &SuperAccumulator{
		p:          p,
		spillEvery: MaxSuperAdds,
		room:       MaxSuperAdds,
		sBias:      64*p.K - 1075,
		sum:        New(p),
		kern:       kernelFor(p),
		mag:        make([]uint64, p.N),
	}
	s.eMin, s.eSpan = gateBounds(p)
	s.nbins = s.eSpan + 1
	s.bins = make([]int64, superStripes*s.nbins)
	s.fold = make([]int64, s.nbins)
	s.lo, s.hi = s.nbins, -1
	s.avx2 = useAVX2()
	return s
}

// gateBounds computes the [eMin, eMin+eSpan] biased-exponent window whose
// normal float64s provably fit format p: s = e + 64K - 1075 >= 0 keeps the
// significand wholly above the fractional cutoff, and 53+s <= 64N-1 keeps
// its 53 bits inside the signed range. For every Validate-accepted format
// the window is nonempty (eSpan >= 0, see TestGateBoundsNonNegative); if a
// degenerate format ever produced eSpan < 0 the gate is clamped closed —
// an unsigned compare against a negative span would otherwise accept every
// exponent and index outside the bins.
func gateBounds(p Params) (eMin, eSpan int) {
	eMin = max(1, 1075-64*p.K)
	eSpan = min(2046, 64*p.N-54+1075-64*p.K) - eMin
	if eSpan < 0 {
		return 1 << 30, 0 // e - eMin is always negative: nothing passes
	}
	return eMin, eSpan
}

// Params returns the accumulator's HP parameters.
func (s *SuperAccumulator) Params() Params { return s.p }

// Err returns the first conversion range error (NaN/Inf, overflow,
// underflow), or nil. Signed-overflow wraps are not errors; see the type
// comment.
func (s *SuperAccumulator) Err() error { return s.err }

// Reset zeroes the accumulator and clears the sticky error.
func (s *SuperAccumulator) Reset() {
	if s.hi >= s.lo {
		clear(s.bins[superStripes*s.lo : superStripes*(s.hi+1)])
	}
	s.lo, s.hi = s.nbins, -1
	s.room = s.spillEvery
	s.sum.SetZero()
	s.err = nil
}

// Add adds one value through the superaccumulator frontend. For long
// inputs prefer AddSlice, which amortizes the spill bound over the slice.
func (s *SuperAccumulator) Add(x float64) {
	if s.room == 0 {
		s.Spill()
	}
	s.room--
	bv := math.Float64bits(x)
	i := int(bv>>52&0x7ff) - s.eMin
	if uint(i) >= uint(s.nbins) {
		s.addSlow(x)
		return
	}
	m := int64(bv&(1<<52-1) | 1<<52)
	sm := int64(bv) >> 63
	s.bins[superStripes*i] += (m ^ sm) - sm
	if i < s.lo {
		s.lo = i
	}
	if i > s.hi {
		s.hi = i
	}
}

// AddSlice adds every element of xs — the superaccumulator hot loop.
// Conversion range errors set the sticky error and skip the offending
// element, exactly as Accumulator.AddAll does.
func (s *SuperAccumulator) AddSlice(xs []float64) {
	if telemetry.Enabled() {
		mSuperAdds.Add(uint64(len(xs)))
	}
	for len(xs) > 0 {
		if s.room == 0 {
			s.Spill()
		}
		chunk := xs
		if uint64(len(chunk)) > s.room {
			chunk = xs[:s.room]
		}
		s.room -= uint64(len(chunk))
		s.addChunk(chunk)
		xs = xs[len(chunk):]
	}
}

// addChunk dispatches the inner loop: the AVX2 assembly lane when the
// construction-time probe selected it, the generic Go loop otherwise.
// Both produce identical bins, watermarks, and sticky errors — proven by
// the asm differential tests and FuzzAsmKernelDifferential.
func (s *SuperAccumulator) addChunk(xs []float64) {
	if s.avx2 {
		s.addChunkAsm(xs)
		return
	}
	s.addChunkGeneric(xs)
}

// addChunkGeneric is the portable indexed inner loop: per element, one
// exponent extract, one gate compare, a branchless signed-significand
// build, and a single int64 add into stripe 0 of the selected bin. The
// watermark updates are predictable (almost never taken once the stream's
// exponent band is established).
func (s *SuperAccumulator) addChunkGeneric(xs []float64) {
	bins := s.bins
	nb := s.nbins
	eMin := s.eMin
	lo, hi := s.lo, s.hi
	for _, x := range xs {
		bv := math.Float64bits(x)
		i := int(bv>>52&0x7ff) - eMin
		if uint(i) >= uint(nb) {
			s.addSlow(x)
			continue
		}
		m := int64(bv&(1<<52-1) | 1<<52)
		sm := int64(bv) >> 63
		bins[superStripes*i] += (m ^ sm) - sm
		if i < lo {
			lo = i
		}
		if i > hi {
			hi = i
		}
	}
	s.lo, s.hi = lo, hi
}

// addSlow handles everything the gate rejects: zeros (no-ops), subnormals
// and out-of-band normals (via decomposeFloat64, so acceptance and error
// identity match the fused path exactly), and NaN/Inf/range faults (sticky
// error, accumulator untouched). Accepted slow-path windows fold straight
// into the canonical limbs — full-width adds commute with the deferred
// bins, so interleaving preserves the represented value.
func (s *SuperAccumulator) addSlow(x float64) {
	if x == 0 {
		return
	}
	d, err := decomposeFloat64(s.p, x)
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	if d.neg {
		s.sum.subSparse(d)
	} else {
		s.sum.addSparse(d)
	}
}

// Spill folds every touched bin into the canonical limbs and zeroes it:
// the stripes of bin i sum (overflow-free, by the MaxSuperAdds bound) to
// an exact signed 64-bit total of significands at scale 2^(eMin+i-1075),
// which lands as a two-limb window at bit offset s = eMin+i+sBias — the
// same window shape as the fused kernel, with the carry or borrow
// propagated only while nonzero and wrapped past the top limb exactly as
// full-width addition would. The stripe sums are computed (and the
// stripes zeroed) by a single foldStripes pass over the watermarked range
// — vectorized on the AVX2 lane — before the scalar window folds. A spill
// with no touched bins is a cheap no-op, so canonicalization points may
// call it freely.
func (s *SuperAccumulator) Spill() {
	s.room = s.spillEvery
	if s.hi < s.lo {
		return
	}
	if telemetry.Enabled() {
		mSuperSpills.Inc()
	}
	lo := s.lo
	fold := s.fold[lo : s.hi+1]
	s.foldStripes(fold, s.bins[superStripes*lo:superStripes*(s.hi+1)])
	for j, b := range fold {
		if b == 0 {
			continue
		}
		sv := lo + j + s.eMin + s.sBias
		neg := b < 0
		mag := uint64(b)
		if neg {
			mag = uint64(-b)
		}
		off := uint(sv) & 63
		d := limbDelta{
			idx: s.p.N - 1 - sv>>6,
			lo:  mag << off,
			hi:  mag >> (64 - off), // off==0: shift by 64 reads as 0
			neg: neg,
		}
		if neg {
			s.sum.subSparse(d)
		} else {
			s.sum.addSparse(d)
		}
	}
	s.lo, s.hi = s.nbins, -1
}

// AddHP adds a canonical HP value (a partial sum) in wrapping mode,
// directly into the canonical limbs: full-width addition commutes with the
// deferred bins.
func (s *SuperAccumulator) AddHP(x *HP) {
	if x.p != s.p {
		if s.err == nil {
			s.err = ErrParamMismatch
		}
		return
	}
	s.addVec(x.limbs)
}

// addVec adds the big-endian limb vector into the canonical sum through
// the unrolled kernel when one is selected.
func (s *SuperAccumulator) addVec(src []uint64) {
	if s.kern != nil {
		s.kern.addVec(s.sum.limbs, src)
		return
	}
	var c uint64
	for i := s.p.N - 1; i >= 0; i-- {
		s.sum.limbs[i], c = bits.Add64(s.sum.limbs[i], src[i], c)
	}
}

// Merge folds another superaccumulator's partial sum into s, propagating
// its sticky error — the combine step when per-worker partials reduce into
// a final result.
func (s *SuperAccumulator) Merge(from *SuperAccumulator) {
	if from.err != nil && s.err == nil {
		s.err = from.err
	}
	if from.p != s.p {
		if s.err == nil {
			s.err = ErrParamMismatch
		}
		return
	}
	from.Spill()
	s.addVec(from.sum.limbs)
}

// MergeChecked is Merge with the paper's sign-rule overflow test applied
// at the combine: both sides are spilled to canonical form first, and if
// the two partials agree in sign while their sum's sign differs, the
// combined value exceeded the representable range and ErrOverflow is
// recorded (sticky, after any earlier error from either side). Reductions
// use this so overflow is decided at the deterministic combine points,
// mirroring BatchAccumulator.MergeChecked.
func (s *SuperAccumulator) MergeChecked(from *SuperAccumulator) {
	if from.err != nil && s.err == nil {
		s.err = from.err
	}
	if from.p != s.p {
		if s.err == nil {
			s.err = ErrParamMismatch
		}
		return
	}
	s.Spill()
	from.Spill()
	s0, s1 := s.sum.limbs[0]>>63, from.sum.limbs[0]>>63
	s.addVec(from.sum.limbs)
	if s0 == s1 && s.sum.limbs[0]>>63 != s0 && s.err == nil {
		mOverflow.Inc()
		coreFlight.Event("overflow", trace.Str("op", "super-merge-checked"))
		s.err = ErrOverflow
	}
}

// Sum spills and returns the canonical HP sum. The returned value is owned
// by s and mutated by further adds; Clone it to keep a copy.
func (s *SuperAccumulator) Sum() *HP {
	s.Spill()
	return s.sum
}

// Float64 spills and returns the running sum rounded to float64 (round to
// nearest, ties to even), through a reused magnitude buffer so rounding
// loops do not allocate.
func (s *SuperAccumulator) Float64() float64 {
	s.Spill()
	return limbsToFloat64(s.sum.limbs, s.p.K, s.mag)
}
