package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/rng"
)

// TestPropSuperMatchesFused: from arbitrary starting states and value
// streams spanning the format range, the exponent-indexed superaccumulator
// produces limbs bit-identical to the fused sparse kernel, with the same
// sticky error identity, across every format shape — including with the
// spill bound lowered so bins fold mid-stream.
func TestPropSuperMatchesFused(t *testing.T) {
	for _, p := range batchFormats {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for trial := uint64(0); trial < 20; trial++ {
				start := mixedLimbs(p, trial*977+13)
				xs := batchValues(p, trial, 500)

				oracle := start.Clone()
				wantErr := addBatchOracle(oracle, xs)

				s := NewSuper(p)
				if trial%3 == 1 {
					s.spillEvery = 1 + trial%17 // force frequent spills
					s.room = s.spillEvery
				}
				s.AddHP(start)
				s.AddSlice(xs)
				if gotErr := s.Err(); gotErr != wantErr {
					t.Fatalf("trial %d: err %v, want %v", trial, gotErr, wantErr)
				}
				if got := s.Sum(); !got.Equal(oracle) {
					t.Fatalf("trial %d: limbs diverged\nsuper %016x\nfused %016x",
						trial, got.Limbs(), oracle.Limbs())
				}
			}
		})
	}
}

// TestPropSuperOrderInvariance: the canonical sum is identical no matter
// where Spill falls or how the stream is sliced or shuffled — every
// decomposition of the same stream yields the same bits.
func TestPropSuperOrderInvariance(t *testing.T) {
	p := Params384
	xs := batchValues(p, 99, 2000)
	ref := NewSuper(p)
	ref.AddSlice(xs)
	want := ref.Sum().Clone()

	// The batch kernel and the fused kernel agree on the same stream, so
	// all three hot paths are interchangeable.
	b := NewBatch(p)
	b.AddSlice(xs)
	if !b.Sum().Equal(want) {
		t.Fatal("super and batch kernels disagree on the same stream")
	}

	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		s := NewSuper(p)
		rest := xs
		for len(rest) > 0 {
			n := 1 + r.Intn(len(rest))
			s.AddSlice(rest[:n])
			rest = rest[n:]
			if r.Intn(2) == 0 {
				s.Spill()
			}
		}
		if got := s.Sum(); !got.Equal(want) {
			t.Fatalf("trial %d: spill placement changed the sum\ngot  %016x\nwant %016x",
				trial, got.Limbs(), want.Limbs())
		}
	}

	shuffled := append([]float64(nil), xs...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	s := NewSuper(p)
	s.AddSlice(shuffled)
	if got := s.Sum(); !got.Equal(want) {
		t.Fatal("shuffled stream changed the sum")
	}
}

// TestSuperSpillBound: AddSlice never exceeds the counted spill bound, and
// a worst-case stream — every value same sign, same exponent, maximal
// significand, hammering one bin — stays exact through forced spills at
// the MaxSuperAdds boundary and at saturating lowered bounds.
func TestSuperSpillBound(t *testing.T) {
	p := Params384
	// Maximal significand at a fixed exponent: the per-bin magnitude grows
	// by just under 2^53 per add, the worst case for the int64 bins.
	worst := make([]float64, 3*MaxSuperAdds+17)
	for i := range worst {
		worst[i] = -math.Ldexp(float64((1<<53)-1), -53+40)
	}
	oracle := New(p)
	if err := addBatchOracle(oracle, worst); err != nil {
		t.Fatal(err)
	}
	for _, every := range []uint64{1, 2, 3, 7, MaxSuperAdds} {
		s := NewSuper(p)
		s.spillEvery = every
		s.room = every
		s.AddSlice(worst)
		if s.room > every {
			t.Fatalf("spillEvery %d: room %d exceeds bound", every, s.room)
		}
		if got := s.Sum(); !got.Equal(oracle) {
			t.Fatalf("spillEvery %d: worst-case stream diverged", every)
		}
	}

	// The bin bound itself: MaxSuperAdds maximal significands cannot
	// overflow an int64 bin. (Compile-time arithmetic, pinned here so the
	// constant can never be raised past the proof.)
	if maxBin := uint64(MaxSuperAdds) * ((1 << 53) - 1); maxBin >= 1<<63 {
		t.Fatalf("MaxSuperAdds %d overflows the int64 bin bound: %d", MaxSuperAdds, maxBin)
	}
}

// TestSuperWatermark: Spill walks only the touched bin range — a
// well-scaled stream leaves the watermark narrow, and Spill resets it.
func TestSuperWatermark(t *testing.T) {
	p := Params384
	s := NewSuper(p)
	if s.hi >= s.lo {
		t.Fatal("fresh accumulator claims touched bins")
	}
	s.Add(1.0)
	s.Add(2.0)
	s.Add(0.5)
	if s.hi < s.lo {
		t.Fatal("adds did not move the watermark")
	}
	if width := s.hi - s.lo + 1; width > 3 {
		t.Fatalf("three adjacent exponents touched %d bins", width)
	}
	s.Spill()
	if s.hi >= s.lo {
		t.Fatal("Spill did not reset the watermark")
	}
	for _, b := range s.bins {
		if b != 0 {
			t.Fatal("Spill left a nonzero bin")
		}
	}
	if got := s.Float64(); got != 3.5 {
		t.Fatalf("sum = %g, want 3.5", got)
	}
}

// TestSuperMerge: Merge equals AddHP of the spilled partial and propagates
// the sticky error, so parallel combines are exact.
func TestSuperMerge(t *testing.T) {
	p := Params384
	xs := batchValues(p, 3, 1000)
	whole := NewSuper(p)
	whole.AddSlice(xs)

	a := NewSuper(p)
	c := NewSuper(p)
	a.AddSlice(xs[:371])
	c.AddSlice(xs[371:])
	a.Merge(c)
	if !a.Sum().Equal(whole.Sum()) {
		t.Fatal("merged partials differ from the whole")
	}

	bad := NewSuper(p)
	bad.AddSlice([]float64{math.NaN()})
	a.Merge(bad)
	if a.Err() != ErrNotFinite {
		t.Fatalf("Merge did not propagate sticky error: %v", a.Err())
	}
	mismatched := NewSuper(Params128)
	fresh := NewSuper(p)
	fresh.Merge(mismatched)
	if fresh.Err() != ErrParamMismatch {
		t.Fatalf("param mismatch err = %v", fresh.Err())
	}
}

// TestSuperMergeChecked: the checked combine matches Merge bit-for-bit
// when in range and records ErrOverflow exactly when two same-signed
// canonical partials produce an opposite-signed sum — the same verdicts as
// BatchAccumulator.MergeChecked.
func TestSuperMergeChecked(t *testing.T) {
	p := Params384
	xs := batchValues(p, 4, 1000)
	whole := NewSuper(p)
	whole.AddSlice(xs)
	a := NewSuper(p)
	c := NewSuper(p)
	a.AddSlice(xs[:619])
	c.AddSlice(xs[619:])
	a.MergeChecked(c)
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	if !a.Sum().Equal(whole.Sum()) {
		t.Fatal("checked merge differs from the whole")
	}

	pp := Params{N: 2, K: 1}
	big := math.Ldexp(1, 62)
	u := NewSuper(pp)
	v := NewSuper(pp)
	u.Add(big)
	v.Add(big)
	u.MergeChecked(v)
	if u.Err() != ErrOverflow {
		t.Fatalf("overflowing combine err = %v, want ErrOverflow", u.Err())
	}

	u2 := NewSuper(pp)
	v2 := NewSuper(pp)
	u2.Add(big)
	v2.Add(-big)
	u2.MergeChecked(v2)
	if u2.Err() != nil || u2.Float64() != 0 {
		t.Fatalf("cancelling combine: err=%v sum=%g", u2.Err(), u2.Float64())
	}
}

// TestSuperErrors: conversion faults are sticky (first wins), identical in
// identity to the fused path, and never corrupt the running sum; Reset
// restores a zeroed accumulator.
func TestSuperErrors(t *testing.T) {
	p := Params128
	s := NewSuper(p)
	s.AddSlice([]float64{1.5, math.Inf(1), math.NaN(), 1e300, 0.25})
	if s.Err() != ErrNotFinite {
		t.Fatalf("sticky err = %v, want first ErrNotFinite", s.Err())
	}
	oracle := New(p)
	oracle.AddFloat64(1.5)
	oracle.AddFloat64(0.25)
	if !s.Sum().Equal(oracle) {
		t.Fatal("faulting elements corrupted the sum")
	}

	s.Reset()
	if s.Err() != nil || !s.Sum().IsZero() {
		t.Fatal("Reset did not clear state")
	}
	s.AddSlice([]float64{1e300})
	if s.Err() != ErrOverflow {
		t.Fatalf("overflow err = %v", s.Err())
	}
	s.Reset()
	s.AddSlice([]float64{math.Ldexp(1, -100)}) // below 2^-64 resolution
	if s.Err() != ErrUnderflow {
		t.Fatalf("underflow err = %v", s.Err())
	}
}

// TestSuperAddSliceZeroAlloc: the hot loop and its canonicalization points
// are allocation-free in steady state.
func TestSuperAddSliceZeroAlloc(t *testing.T) {
	xs := rng.UniformSet(rng.New(21), 4096, -0.5, 0.5)
	s := NewSuper(Params384)
	s.AddSlice(xs)
	_ = s.Sum()
	if avg := testing.AllocsPerRun(100, func() {
		s.AddSlice(xs)
		s.Spill()
		_ = s.Float64()
		_ = s.Sum()
	}); avg != 0 {
		t.Errorf("super hot loop allocates %.2f objects per pass", avg)
	}
}

// TestSuperGoldenUniformSum: the superaccumulator reproduces the
// repository's pinned reproducibility certificate — the same limbs the
// fused and batch kernels produce for the canonical uniform workload.
func TestSuperGoldenUniformSum(t *testing.T) {
	xs := rng.UniformSet(rng.New(2016), 100000, -0.5, 0.5)
	s := NewSuper(Params384)
	s.AddSlice(xs)
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	got := fmt.Sprintf("%016x", s.Sum().Limbs())
	const want = "[0000000000000000 0000000000000000 0000000000000097 d2fb6ee2a75a8000 0000000000000000 0000000000000000]"
	if got != want {
		t.Errorf("super golden uniform sum drifted:\n got %s\nwant %s", got, want)
	}
}

// binTotal sums the interleaved stripes of bin i — the deferred signed
// significand total regardless of which lane (scalar stripe 0, or any AVX2
// lane) the adds landed in.
func binTotal(s *SuperAccumulator, i int) int64 {
	var t int64
	for l := 0; l < superStripes; l++ {
		t += s.bins[superStripes*i+l]
	}
	return t
}

// TestSuperGoldenBins pins the deferred representation itself: a fast-path
// add must land as a signed significand in the bin its raw exponent
// selects, leaving the canonical limbs untouched until Spill.
func TestSuperGoldenBins(t *testing.T) {
	p := Params384
	s := NewSuper(p)
	one := math.Float64bits(1.0)
	eOne := int(one >> 52 & 0x7ff) // 1023
	s.Add(1.0)
	s.Add(1.0)
	s.Add(-0.5)
	if !s.sum.IsZero() {
		t.Fatal("fast-path adds touched the canonical limbs before Spill")
	}
	if got := binTotal(s, eOne-s.eMin); got != 2<<52 {
		t.Fatalf("bin[1.0] = %d, want %d", got, int64(2)<<52)
	}
	if got := binTotal(s, eOne-1-s.eMin); got != -(1 << 52) {
		t.Fatalf("bin[0.5] = %d, want %d", got, -(int64(1) << 52))
	}
	if got := s.Float64(); got != 1.5 {
		t.Fatalf("sum = %g, want 1.5", got)
	}
}
