package core

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// contendCAS hammers one atomic accumulator with AddHPCAS from several
// goroutines and returns the CAS-retry counter delta it produced.
func contendCAS(t *testing.T, goroutines, adds int) uint64 {
	t.Helper()
	acc := NewAtomic(Params384)
	// A value whose conversion populates multiple limbs, so every add
	// CASes several shared words and collisions are likely.
	before := mCASRetries.Value()
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			x := New(Params384)
			if err := x.SetFloat64(1.0 + 0x1p-40); err != nil {
				panic(err)
			}
			for i := 0; i < adds; i++ {
				acc.AddHPCAS(x)
			}
		}()
	}
	wg.Wait()
	return mCASRetries.Value() - before
}

// TestCASRetriesVisibleUnderContention asserts the satellite requirement:
// the CAS loop's silent retries must surface in core_cas_retries_total
// when parallel adders collide. Without the counter, contention on the
// paper's CAS construction is invisible.
func TestCASRetriesVisibleUnderContention(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs real parallelism for CAS collisions")
	}
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)

	// Retries are probabilistic; with 8 goroutines CASing the same limbs
	// tens of thousands of times a collision is overwhelmingly likely, but
	// give the scheduler a few rounds before declaring failure.
	for round := 0; round < 10; round++ {
		if retries := contendCAS(t, 8, 20000); retries > 0 {
			t.Logf("observed %d CAS retries", retries)
			return
		}
	}
	t.Fatal("no CAS retries recorded under parallel load; counter not wired into AddHPCAS?")
}

// TestCASRetryCounterDisabled checks the gate: with telemetry off the
// counter must not move even under heavy contention.
func TestCASRetryCounterDisabled(t *testing.T) {
	prev := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prev)
	if retries := contendCAS(t, 8, 5000); retries != 0 {
		t.Fatalf("disabled telemetry recorded %d CAS retries", retries)
	}
}

// parallelAtomicSum sums xs into a fresh atomic accumulator with the given
// number of goroutines, using AddHP for even workers and AddHPCAS for odd
// ones (both flavors must behave identically under instrumentation).
func parallelAtomicSum(t *testing.T, xs []float64, workers int) *HP {
	t.Helper()
	acc := NewAtomic(Params384)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			scratch := New(Params384)
			lo := w * len(xs) / workers
			hi := (w + 1) * len(xs) / workers
			for _, x := range xs[lo:hi] {
				if err := scratch.SetFloat64(x); err != nil {
					panic(err)
				}
				if w%2 == 0 {
					acc.AddHP(scratch)
				} else {
					acc.AddHPCAS(scratch)
				}
			}
		}(w)
	}
	wg.Wait()
	return acc.Snapshot()
}

// TestOrderInvarianceWithTelemetry is the regression test for the
// instrumentation itself: a parallel sum with telemetry enabled must be
// bit-identical to the same sum with telemetry disabled and to the
// sequential reference. Counters and histograms live entirely outside
// accumulator state, so any divergence here means the instrumentation
// perturbed the arithmetic.
func TestOrderInvarianceWithTelemetry(t *testing.T) {
	// Deterministic mixed-sign, mixed-magnitude workload (splitmix-style
	// mixing; no shared test fixtures needed).
	xs := make([]float64, 4096)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range xs {
		state += 0x9E3779B97F4A7C15
		z := state
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		mant := float64(z>>11) / (1 << 53) // in [0,1)
		exp := int(z%80) - 40              // magnitudes 2^-40 .. 2^39
		x := (mant + 0.5) * pow2(exp)
		if z&1 == 1 {
			x = -x
		}
		xs[i] = x
	}

	prevOn := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prevOn)

	serial := NewAccumulator(Params384)
	serial.AddAll(xs)
	if err := serial.Err(); err != nil {
		t.Fatal(err)
	}
	off := parallelAtomicSum(t, xs, 8)

	telemetry.SetEnabled(true)
	on := parallelAtomicSum(t, xs, 8)
	telemetry.SetEnabled(false)

	if !off.Equal(serial.Sum()) {
		t.Errorf("parallel sum (telemetry off) differs from sequential:\n  got  %s\n  want %s",
			off, serial.Sum())
	}
	if !on.Equal(off) {
		t.Errorf("telemetry instrumentation perturbed the sum:\n  on  %s\n  off %s", on, off)
	}
}

// pow2 returns 2^e exactly for small |e|.
func pow2(e int) float64 {
	x := 1.0
	for ; e > 0; e-- {
		x *= 2
	}
	for ; e < 0; e++ {
		x /= 2
	}
	return x
}
