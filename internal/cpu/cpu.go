// Package cpu is a zero-dependency runtime feature probe for the hand-
// written assembly kernels in internal/core. On amd64 it queries CPUID and
// XGETBV directly (no cgo, no external modules); everywhere else — and
// under the `purego` build tag — every feature reads false and the generic
// Go kernels are the only lane.
//
// Two kill switches exist beyond the build tag:
//
//   - the REPRO_NOASM environment variable (any value except "" or "0")
//     disables assembly at process start, before any kernel is selected;
//   - core.SetAsmEnabled flips dispatch programmatically, which the
//     differential tests use to pin the assembly kernels against the
//     generic loops inside one process.
//
// The probe reports only the features the kernels dispatch on, not the
// full CPUID surface.
package cpu

import (
	"os"
	"strings"
)

// X86 holds the detected amd64 features the assembly kernels dispatch on.
// All fields are false on other architectures, under the purego build tag,
// and when the REPRO_NOASM kill switch is set.
var X86 struct {
	// HasAVX2 is true when the CPU supports AVX2 and the OS has enabled
	// YMM state (XGETBV), gating the vectorized superaccumulator front
	// loop and the stripe fold.
	HasAVX2 bool
	// HasADX reports the ADX carry-chain extension (ADCX/ADOX). The limb
	// kernels need only baseline ADC, so this is informational: it rides
	// the feature string so committed benchmark artifacts name the
	// machine's carry hardware.
	HasADX bool
	// HasBMI2 reports BMI2 (SHLX/SHRX and friends); informational, like
	// HasADX.
	HasBMI2 bool
}

// killSwitch records that REPRO_NOASM disabled the probe at startup.
var killSwitch bool

// KillSwitch reports whether the REPRO_NOASM environment variable disabled
// assembly dispatch at process start.
func KillSwitch() bool { return killSwitch }

// AsmAllowed reports whether assembly kernels may be dispatched at all:
// true only on amd64, outside the purego build tag, with no kill switch.
// Individual kernels additionally gate on the X86 feature bits.
func AsmAllowed() bool { return asmSupported && !killSwitch }

// Features returns the detected feature set as a stable comma-joined
// string, e.g. "adx,avx2,bmi2". It is empty when nothing beyond baseline
// amd64 is available, on other architectures, and under purego or the
// kill switch — benchmark reports record it so cross-machine comparisons
// are explainable.
func Features() string {
	var fs []string
	if X86.HasADX {
		fs = append(fs, "adx")
	}
	if X86.HasAVX2 {
		fs = append(fs, "avx2")
	}
	if X86.HasBMI2 {
		fs = append(fs, "bmi2")
	}
	return strings.Join(fs, ",")
}

// noasmEnv reads the kill switch from the environment: set and not "0"
// means "disable assembly".
func noasmEnv() bool {
	v := os.Getenv("REPRO_NOASM")
	return v != "" && v != "0"
}
