//go:build amd64 && !purego

package cpu

// asmSupported is true exactly when this build can contain assembly
// kernels: the purego tag swaps in cpu_noasm.go instead.
const asmSupported = true

// cpuid executes the CPUID instruction for (leaf, sub).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv executes XGETBV with XCR0, returning the enabled-state mask the
// OS exposes to user code.
func xgetbv() (eax, edx uint32)

func init() {
	if noasmEnv() {
		killSwitch = true
		return
	}
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	osYMM := false
	if c1&osxsaveBit != 0 {
		// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled before
		// YMM registers are safe to touch.
		lo, _ := xgetbv()
		osYMM = lo&0x6 == 0x6
	}
	_, b7, _, _ := cpuid(7, 0)
	const (
		avx2Bit = 1 << 5
		bmi2Bit = 1 << 8
		adxBit  = 1 << 19
	)
	X86.HasAVX2 = c1&avxBit != 0 && osYMM && b7&avx2Bit != 0
	X86.HasBMI2 = b7&bmi2Bit != 0
	X86.HasADX = b7&adxBit != 0
}
