//go:build !amd64 || purego

package cpu

// asmSupported is false in the purego lane and on architectures without
// assembly kernels; X86 keeps its zero value and dispatch stays generic.
const asmSupported = false

func init() {
	// The kill switch is still recorded so diagnostics (and the feature
	// string in benchmark reports) stay truthful across build modes.
	killSwitch = noasmEnv()
}
