package cpu

import (
	"runtime"
	"strings"
	"testing"
)

// TestFeaturesString: the feature string is a stable comma-joined subset
// of the known names, consistent with the X86 bits, with no stray entries
// — it is embedded verbatim in committed benchmark artifacts.
func TestFeaturesString(t *testing.T) {
	got := Features()
	want := map[string]bool{"adx": X86.HasADX, "avx2": X86.HasAVX2, "bmi2": X86.HasBMI2}
	if got == "" {
		for name, have := range want {
			if have {
				t.Fatalf("Features() empty but %s detected", name)
			}
		}
		return
	}
	seen := map[string]bool{}
	for _, f := range strings.Split(got, ",") {
		have, known := want[f]
		if !known {
			t.Fatalf("Features() contains unknown entry %q in %q", f, got)
		}
		if !have {
			t.Fatalf("Features() lists %q but the X86 bit is false", f)
		}
		if seen[f] {
			t.Fatalf("Features() repeats %q in %q", f, got)
		}
		seen[f] = true
	}
	for name, have := range want {
		if have && !seen[name] {
			t.Fatalf("X86 reports %s but Features() = %q omits it", name, got)
		}
	}
}

// TestAsmAllowedConsistency: features can only be reported when assembly
// dispatch is possible at all — the purego lane and the kill switch must
// zero the probe, not just mask it downstream.
func TestAsmAllowedConsistency(t *testing.T) {
	if !AsmAllowed() && runtime.GOARCH == "amd64" && !KillSwitch() {
		// purego build on amd64: the feature struct must be zero too.
		if X86.HasAVX2 || X86.HasADX || X86.HasBMI2 {
			t.Fatal("purego build reports CPU features")
		}
	}
	if KillSwitch() && (X86.HasAVX2 || X86.HasADX || X86.HasBMI2) {
		t.Fatal("kill switch set but features still reported")
	}
}

// TestNoasmEnvParsing pins the kill-switch parse: empty and "0" mean
// enabled, anything else disables.
func TestNoasmEnvParsing(t *testing.T) {
	cases := []struct {
		val  string
		kill bool
	}{{"", false}, {"0", false}, {"1", true}, {"true", true}, {"no", true}}
	for _, c := range cases {
		t.Setenv("REPRO_NOASM", c.val)
		if got := noasmEnv(); got != c.kill {
			t.Errorf("REPRO_NOASM=%q: noasmEnv() = %v, want %v", c.val, got, c.kill)
		}
	}
}
