// Package cuda is a CUDA-style execution-model simulator standing in for
// the paper's GPU environment (Figure 7, Tesla K20m). A kernel launch runs
// a grid of blocks of threads; every logical thread executes the kernel
// function with its own thread context, but at most MaxResidentThreads are
// in flight at once — the resource cap that produces the paper's throughput
// plateau beyond 2048 launched threads (the K20m holds at most 2496
// resident threads). Atomic operations on shared accumulators are provided
// in the CAS-loop style of pre-Pascal CUDA double-precision atomics.
package cuda

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Device models the execution resources of one GPU.
type Device struct {
	// Name is a free-form label used in reports.
	Name string
	// MaxResidentThreads caps how many logical threads may be in flight
	// concurrently, modeling SM occupancy limits. Zero means unlimited.
	MaxResidentThreads int
}

// TeslaK20m returns a device with the resident-thread capacity the paper
// reports for its GPU: "the Tesla K20m supports a maximum of 2496
// concurrent threads" (§IV.B).
func TeslaK20m() *Device {
	return &Device{Name: "Tesla K20m (simulated)", MaxResidentThreads: 2496}
}

// Config describes a launch geometry.
type Config struct {
	Blocks          int
	ThreadsPerBlock int
}

// Threads returns the total logical thread count of the launch.
func (c Config) Threads() int { return c.Blocks * c.ThreadsPerBlock }

// Validate reports whether the geometry is usable.
func (c Config) Validate() error {
	if c.Blocks < 1 || c.ThreadsPerBlock < 1 {
		return fmt.Errorf("cuda: invalid launch config %dx%d",
			c.Blocks, c.ThreadsPerBlock)
	}
	return nil
}

// ThreadCtx identifies one logical thread within a launch, mirroring
// blockIdx/threadIdx/blockDim/gridDim.
type ThreadCtx struct {
	Block  int // blockIdx.x
	Thread int // threadIdx.x
	Global int // Block*ThreadsPerBlock + Thread
	Cfg    Config
}

// Launch executes kernel once per logical thread of the grid and waits for
// completion, holding in-flight parallelism at MaxResidentThreads. A panic
// in any thread aborts the launch and is returned as an error.
func (d *Device) Launch(cfg Config, kernel func(t ThreadCtx)) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	total := cfg.Threads()
	resident := total
	if d.MaxResidentThreads > 0 && resident > d.MaxResidentThreads {
		resident = d.MaxResidentThreads
	}
	var next atomic.Int64
	var panicked atomic.Value
	var wg sync.WaitGroup
	wg.Add(resident)
	for w := 0; w < resident; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicked.CompareAndSwap(nil, fmt.Sprintf("%v", p))
				}
			}()
			for {
				if panicked.Load() != nil {
					return
				}
				g := int(next.Add(1)) - 1
				if g >= total {
					return
				}
				kernel(ThreadCtx{
					Block:  g / cfg.ThreadsPerBlock,
					Thread: g % cfg.ThreadsPerBlock,
					Global: g,
					Cfg:    cfg,
				})
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		return fmt.Errorf("cuda: kernel panicked: %v", p)
	}
	return nil
}

// AtomicFloat64 is a float64 accumulator updated with a compare-and-swap
// loop on the raw bits — the construction CUDA required for double
// atomicAdd before compute capability 6.0, and the double-precision
// counterpart of the HP atomic adder in the Figure 7 experiment.
type AtomicFloat64 struct {
	bits atomic.Uint64
}

// Add atomically performs a += x.
func (a *AtomicFloat64) Add(x float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (a *AtomicFloat64) Load() float64 {
	return math.Float64frombits(a.bits.Load())
}

// Store sets the value; it must not race with Add.
func (a *AtomicFloat64) Store(x float64) {
	a.bits.Store(math.Float64bits(x))
}
