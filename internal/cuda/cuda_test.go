package cuda

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestLaunchCoversEveryThreadOnce(t *testing.T) {
	d := &Device{MaxResidentThreads: 16}
	cfg := Config{Blocks: 13, ThreadsPerBlock: 37}
	counts := make([]atomic.Int32, cfg.Threads())
	err := d.Launch(cfg, func(tc ThreadCtx) {
		counts[tc.Global].Add(1)
		if tc.Global != tc.Block*cfg.ThreadsPerBlock+tc.Thread {
			t.Errorf("inconsistent ctx: %+v", tc)
		}
		if tc.Thread < 0 || tc.Thread >= cfg.ThreadsPerBlock ||
			tc.Block < 0 || tc.Block >= cfg.Blocks {
			t.Errorf("out-of-range ctx: %+v", tc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for g := range counts {
		if counts[g].Load() != 1 {
			t.Fatalf("thread %d ran %d times", g, counts[g].Load())
		}
	}
}

func TestResidencyCapRespected(t *testing.T) {
	d := &Device{MaxResidentThreads: 8}
	var inFlight, highWater atomic.Int64
	err := d.Launch(Config{Blocks: 64, ThreadsPerBlock: 8}, func(tc ThreadCtx) {
		cur := inFlight.Add(1)
		for {
			hw := highWater.Load()
			if cur <= hw || highWater.CompareAndSwap(hw, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if hw := highWater.Load(); hw > 8 {
		t.Errorf("high-water concurrency %d exceeds cap 8", hw)
	}
}

func TestUnlimitedDevice(t *testing.T) {
	d := &Device{} // MaxResidentThreads == 0: unlimited
	var ran atomic.Int64
	if err := d.Launch(Config{Blocks: 4, ThreadsPerBlock: 32}, func(ThreadCtx) {
		ran.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 128 {
		t.Errorf("ran %d", ran.Load())
	}
}

func TestLaunchValidation(t *testing.T) {
	d := TeslaK20m()
	if d.MaxResidentThreads != 2496 {
		t.Errorf("K20m residency = %d", d.MaxResidentThreads)
	}
	if err := d.Launch(Config{Blocks: 0, ThreadsPerBlock: 4}, func(ThreadCtx) {}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestLaunchPanicIsError(t *testing.T) {
	d := &Device{MaxResidentThreads: 4}
	err := d.Launch(Config{Blocks: 2, ThreadsPerBlock: 8}, func(tc ThreadCtx) {
		if tc.Global == 5 {
			panic("device-side assert")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "device-side assert") {
		t.Errorf("panic not surfaced: %v", err)
	}
}

func TestAtomicFloat64ExactIntegerAdds(t *testing.T) {
	// Integer-valued adds below 2^53 are exact in float64, so the CAS
	// accumulator must reach the exact total under contention.
	var a AtomicFloat64
	const workers = 8
	const per = 10000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := a.Load(); got != workers*per {
		t.Errorf("atomic float sum = %g, want %d", got, workers*per)
	}
	a.Store(0)
	if a.Load() != 0 {
		t.Error("Store failed")
	}
}

// The paper's Figure 7 kernel structure: p threads accumulate a strided
// slice of the input into 256 shared HP partial sums selected by
// t mod 256; the result must be bit-identical to sequential summation for
// any launch geometry.
func TestFigure7KernelStructure(t *testing.T) {
	p := core.Params384
	r := rng.New(77)
	xs := rng.UniformSet(r, 1<<14, -0.5, 0.5)
	seq := core.NewAccumulator(p)
	seq.AddAll(xs)

	d := TeslaK20m()
	for _, threads := range []int{256, 512, 1024} {
		partials := make([]*core.Atomic, 256)
		for i := range partials {
			partials[i] = core.NewAtomic(p)
		}
		cfg := Config{Blocks: threads / 256, ThreadsPerBlock: 256}
		err := d.Launch(cfg, func(tc ThreadCtx) {
			total := tc.Cfg.Threads()
			for i := tc.Global; i < len(xs); i += total {
				if err := partials[tc.Global%256].AddFloat64(xs[i]); err != nil {
					panic(err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		final := core.NewAccumulator(p)
		for _, part := range partials {
			final.AddHP(part.Snapshot())
		}
		if final.Err() != nil {
			t.Fatal(final.Err())
		}
		if !final.Sum().Equal(seq.Sum()) {
			t.Errorf("threads=%d: GPU-style sum differs from sequential", threads)
		}
	}
}
