package cuda_test

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cuda"
)

// A kernel launch: every logical thread of the grid runs once, with
// in-flight parallelism capped at the device's resident-thread limit.
func ExampleDevice_Launch() {
	device := &cuda.Device{Name: "demo", MaxResidentThreads: 64}
	cfg := cuda.Config{Blocks: 8, ThreadsPerBlock: 32}
	var visited atomic.Int64
	err := device.Launch(cfg, func(tc cuda.ThreadCtx) {
		visited.Add(1)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("threads run:", visited.Load())
	// Output:
	// threads run: 256
}

// Block-synchronized launch: __syncthreads-style barriers let a block
// stage data through shared memory.
func ExampleDevice_LaunchSync() {
	device := &cuda.Device{MaxResidentThreads: 128}
	cfg := cuda.Config{Blocks: 2, ThreadsPerBlock: 4}
	shared := [2][4]int{}
	var anomalies atomic.Int64
	err := device.LaunchSync(cfg, func(tc cuda.ThreadCtx, sync func()) {
		shared[tc.Block][tc.Thread] = 1
		sync() // all writes in this block are now visible
		total := 0
		for _, v := range shared[tc.Block] {
			total += v
		}
		if total != 4 {
			anomalies.Add(1)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("anomalies:", anomalies.Load())
	// Output:
	// anomalies: 0
}
