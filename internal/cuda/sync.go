package cuda

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/omp"
)

// LaunchSync executes the grid with intra-block synchronization support:
// every thread of a block runs concurrently and the kernel receives a sync
// function equivalent to CUDA's __syncthreads(), so kernels can stage data
// through block-shared state (e.g. the classic shared-memory tree
// reduction). Blocks are scheduled in waves of up to
// MaxResidentThreads/ThreadsPerBlock concurrent blocks, mirroring SM
// occupancy.
//
// As on real hardware, every thread of a block must reach the same sequence
// of sync calls; a divergent barrier deadlocks the block. A panic in any
// thread aborts the launch and is returned as an error (panics raised while
// other threads wait at a barrier are converted to errors before the
// barrier can deadlock the launch, because each block's goroutines are
// joined independently per wave).
func (d *Device) LaunchSync(cfg Config, kernel func(tc ThreadCtx, sync func())) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	blockSlots := cfg.Blocks
	if d.MaxResidentThreads > 0 {
		blockSlots = d.MaxResidentThreads / cfg.ThreadsPerBlock
		if blockSlots < 1 {
			blockSlots = 1
		}
		if blockSlots > cfg.Blocks {
			blockSlots = cfg.Blocks
		}
	}
	var nextBlock atomic.Int64
	var panicked atomic.Value
	var wg sync.WaitGroup
	wg.Add(blockSlots)
	for w := 0; w < blockSlots; w++ {
		go func() {
			defer wg.Done()
			for {
				if panicked.Load() != nil {
					return
				}
				b := int(nextBlock.Add(1)) - 1
				if b >= cfg.Blocks {
					return
				}
				runBlock(cfg, b, kernel, &panicked)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		return fmt.Errorf("cuda: kernel panicked: %v", p)
	}
	return nil
}

// runBlock executes one block's threads as a goroutine gang sharing a
// barrier.
func runBlock(cfg Config, block int, kernel func(tc ThreadCtx, sync func()),
	panicked *atomic.Value) {
	barrier := omp.NewBarrier(cfg.ThreadsPerBlock)
	var wg sync.WaitGroup
	wg.Add(cfg.ThreadsPerBlock)
	for t := 0; t < cfg.ThreadsPerBlock; t++ {
		go func(t int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicked.CompareAndSwap(nil, fmt.Sprintf("block %d thread %d: %v", block, t, p))
					// Keep the rest of the block from deadlocking on the
					// barrier: release it until every peer has exited.
					// (A real GPU would trap the whole block; releasing the
					// barrier is our equivalent.)
					barrier.Abandon()
				}
			}()
			kernel(ThreadCtx{
				Block:  block,
				Thread: t,
				Global: block*cfg.ThreadsPerBlock + t,
				Cfg:    cfg,
			}, barrier.Wait)
		}(t)
	}
	wg.Wait()
}
