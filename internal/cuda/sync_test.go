package cuda

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestLaunchSyncBarrierSemantics(t *testing.T) {
	d := &Device{MaxResidentThreads: 64}
	cfg := Config{Blocks: 8, ThreadsPerBlock: 16}
	// Shared per-block staging array: every thread writes its slot before
	// the barrier; after the barrier every thread must see all writes.
	shared := make([][]int32, cfg.Blocks)
	for b := range shared {
		shared[b] = make([]int32, cfg.ThreadsPerBlock)
	}
	var violations atomic.Int32
	err := d.LaunchSync(cfg, func(tc ThreadCtx, sync func()) {
		shared[tc.Block][tc.Thread] = int32(tc.Thread + 1)
		sync()
		for i, v := range shared[tc.Block] {
			if v != int32(i+1) {
				violations.Add(1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations.Load() != 0 {
		t.Errorf("%d barrier visibility violations", violations.Load())
	}
}

func TestLaunchSyncMultiPhase(t *testing.T) {
	d := &Device{MaxResidentThreads: 32}
	cfg := Config{Blocks: 4, ThreadsPerBlock: 8}
	counters := make([]atomic.Int32, cfg.Blocks)
	var bad atomic.Int32
	err := d.LaunchSync(cfg, func(tc ThreadCtx, sync func()) {
		for phase := int32(1); phase <= 10; phase++ {
			counters[tc.Block].Add(1)
			sync()
			if got := counters[tc.Block].Load(); got < phase*int32(cfg.ThreadsPerBlock) {
				bad.Add(1)
			}
			sync()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Errorf("%d phase violations", bad.Load())
	}
}

func TestLaunchSyncPanicDoesNotDeadlock(t *testing.T) {
	d := &Device{MaxResidentThreads: 32}
	cfg := Config{Blocks: 2, ThreadsPerBlock: 8}
	err := d.LaunchSync(cfg, func(tc ThreadCtx, sync func()) {
		if tc.Block == 1 && tc.Thread == 3 {
			panic("lost thread")
		}
		sync() // peers must not hang waiting for the dead thread
	})
	if err == nil || !strings.Contains(err.Error(), "lost thread") {
		t.Errorf("err = %v", err)
	}
}

func TestLaunchSyncValidation(t *testing.T) {
	d := TeslaK20m()
	if err := d.LaunchSync(Config{}, func(ThreadCtx, func()) {}); err == nil {
		t.Error("invalid config accepted")
	}
}

// The classic CUDA shared-memory tree reduction, implemented on the
// synchronized launch path: each block reduces its tile into a single HP
// partial with log2(blockDim) barrier phases, then thread 0 performs one
// atomic add per block. The result must match sequential summation exactly.
func TestBlockTreeReductionHP(t *testing.T) {
	p := core.Params384
	r := rng.New(91)
	xs := rng.UniformSet(r, 1<<14, -0.5, 0.5)
	seq := core.NewAccumulator(p)
	seq.AddAll(xs)

	d := TeslaK20m()
	cfg := Config{Blocks: 16, ThreadsPerBlock: 64}
	global := core.NewAtomic(p)
	// Block-shared staging: one HP accumulator per thread slot per block.
	shared := make([][]*core.Accumulator, cfg.Blocks)
	for b := range shared {
		shared[b] = make([]*core.Accumulator, cfg.ThreadsPerBlock)
		for t := range shared[b] {
			shared[b][t] = core.NewAccumulator(p)
		}
	}
	err := d.LaunchSync(cfg, func(tc ThreadCtx, sync func()) {
		mine := shared[tc.Block][tc.Thread]
		total := tc.Cfg.Threads()
		for i := tc.Global; i < len(xs); i += total {
			mine.Add(xs[i])
		}
		sync()
		// Tree combine within the block.
		for stride := tc.Cfg.ThreadsPerBlock / 2; stride > 0; stride /= 2 {
			if tc.Thread < stride {
				shared[tc.Block][tc.Thread].Merge(shared[tc.Block][tc.Thread+stride])
			}
			sync()
		}
		if tc.Thread == 0 {
			if err := shared[tc.Block][0].Err(); err != nil {
				panic(err)
			}
			global.AddHP(shared[tc.Block][0].Sum())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := global.Snapshot(); !got.Equal(seq.Sum()) {
		t.Error("block tree reduction differs from sequential sum")
	}
}
