// Package exact provides an arbitrary-precision, exact accumulator for
// float64 values, used as the ground-truth oracle in tests and experiments.
//
// Every finite float64 is an integer multiple of 2^-1074 (the smallest
// subnormal). The accumulator therefore keeps one big.Int holding the sum
// scaled by 2^1074; addition of any number of float64 values is exact, and
// the result can be recovered either exactly (as a big.Rat or big.Float) or
// correctly rounded to float64.
package exact

import (
	"math"
	"math/big"
)

// scaleBits is the fixed binary scale of the accumulator: 2^-1074 is the
// smallest positive subnormal float64, so every finite float64 value times
// 2^1074 is an integer.
const scaleBits = 1074

// Acc is an exact accumulator for float64 values. The zero value is an
// accumulator holding 0 and is ready to use.
type Acc struct {
	sum big.Int // value = sum * 2^-scaleBits
	tmp big.Int // scratch, avoids per-Add allocation
}

// New returns a new exact accumulator holding zero.
func New() *Acc { return &Acc{} }

// Add adds x to the accumulator. It panics if x is NaN or infinite, since
// those values have no exact rational meaning.
func (a *Acc) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic("exact: Add of NaN or Inf")
	}
	if x == 0 {
		return
	}
	frac, exp := math.Frexp(x) // x = frac * 2^exp, |frac| in [0.5, 1)
	m := int64(frac * (1 << 53))
	shift := exp - 53 + scaleBits // x * 2^scaleBits = m * 2^shift
	a.tmp.SetInt64(m)
	if shift > 0 {
		a.tmp.Lsh(&a.tmp, uint(shift))
	} else if shift < 0 {
		// Subnormal x: m carries trailing zeros from the Frexp
		// normalization, so this right shift is exact.
		a.tmp.Rsh(&a.tmp, uint(-shift))
	}
	a.sum.Add(&a.sum, &a.tmp)
}

// AddAll adds every element of xs.
func (a *Acc) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// IsZero reports whether the exact sum is exactly zero.
func (a *Acc) IsZero() bool { return a.sum.Sign() == 0 }

// Sign returns -1, 0, or +1 according to the sign of the exact sum.
func (a *Acc) Sign() int { return a.sum.Sign() }

// Rat returns the exact sum as a rational number.
func (a *Acc) Rat() *big.Rat {
	r := new(big.Rat).SetInt(&a.sum)
	den := new(big.Int).Lsh(big.NewInt(1), scaleBits)
	return r.Quo(r, new(big.Rat).SetInt(den))
}

// BigFloat returns the exact sum as a big.Float carrying enough precision to
// represent it exactly.
func (a *Acc) BigFloat() *big.Float {
	f := new(big.Float)
	prec := uint(a.sum.BitLen())
	if prec < 64 {
		prec = 64
	}
	f.SetPrec(prec).SetInt(&a.sum)
	// SetMantExp(f, e) yields f * 2^e (it adds e to f's exponent).
	return f.SetMantExp(f, -scaleBits)
}

// Float64 returns the exact sum correctly rounded (to nearest, ties to even)
// to float64.
func (a *Acc) Float64() float64 {
	v, _ := a.BigFloat().Float64()
	return v
}

// Cmp compares the exact sum with the exact value of x, returning -1, 0, +1.
func (a *Acc) Cmp(x float64) int {
	var b Acc
	b.Add(x)
	return a.sum.Cmp(&b.sum)
}

// Reset returns the accumulator to zero.
func (a *Acc) Reset() { a.sum.SetInt64(0) }

// Sum computes the exact sum of xs, correctly rounded to float64. It is a
// convenience wrapper around an Acc.
func Sum(xs []float64) float64 {
	var a Acc
	a.AddAll(xs)
	return a.Float64()
}
