package exact

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestZeroAndSigns(t *testing.T) {
	a := New()
	if !a.IsZero() || a.Sign() != 0 || a.Float64() != 0 {
		t.Error("fresh accumulator not zero")
	}
	a.Add(1.5)
	if a.Sign() != 1 {
		t.Error("sign after positive add")
	}
	a.Add(-3.0)
	if a.Sign() != -1 || a.Float64() != -1.5 {
		t.Errorf("sum = %g, want -1.5", a.Float64())
	}
	a.Add(1.5)
	if !a.IsZero() {
		t.Error("exact cancellation failed")
	}
}

func TestClassicCatastrophicCancellation(t *testing.T) {
	// 2^53 + 1 - 2^53 loses the 1 in double arithmetic (the 1 falls below
	// the ulp and the tie rounds to the even 2^53); the oracle keeps it.
	xs := []float64{1 << 53, 1, -(1 << 53)}
	if got := Sum(xs); got != 1 {
		t.Errorf("oracle sum = %g, want 1", got)
	}
	naive := 0.0
	for _, x := range xs { // runtime loop: constant folding would be exact
		naive += x
	}
	if naive != 0 {
		t.Errorf("naive sum = %g, expected the 1 to be absorbed", naive)
	}
}

func TestSubnormals(t *testing.T) {
	min := math.SmallestNonzeroFloat64
	a := New()
	a.Add(min)
	a.Add(min)
	if got := a.Float64(); got != 2*min {
		t.Errorf("2*minsub = %g, want %g", got, 2*min)
	}
	a.Add(-2 * min)
	if !a.IsZero() {
		t.Error("subnormal cancellation failed")
	}
}

func TestExtremes(t *testing.T) {
	a := New()
	a.Add(math.MaxFloat64)
	a.Add(math.MaxFloat64)
	// Exact value 2*MaxFloat64 overflows float64: must round to +Inf.
	if got := a.Float64(); !math.IsInf(got, 1) {
		t.Errorf("2*MaxFloat64 = %g, want +Inf", got)
	}
	a.Add(-math.MaxFloat64)
	if got := a.Float64(); got != math.MaxFloat64 {
		t.Errorf("back in range: %g", got)
	}
}

func TestRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%g) did not panic", v)
				}
			}()
			New().Add(v)
		}()
	}
}

func TestRatAndCmp(t *testing.T) {
	a := New()
	a.Add(0.5)
	a.Add(0.25)
	if got := a.Rat().RatString(); got != "3/4" {
		t.Errorf("Rat = %s, want 3/4", got)
	}
	if a.Cmp(0.75) != 0 || a.Cmp(1) != -1 || a.Cmp(0) != 1 {
		t.Error("Cmp inconsistent")
	}
	a.Reset()
	if !a.IsZero() {
		t.Error("Reset failed")
	}
}

// Against float64 arithmetic on cases float64 gets exactly right: sums of a
// few same-exponent values are exact in double, so the oracle must agree.
func TestAgreementOnExactDoubleSums(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		// Same-magnitude addition a+a is always exact (or Inf).
		want := a + a
		if math.IsInf(want, 0) {
			return true
		}
		return Sum([]float64{a, a}) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type fullRange float64

func (fullRange) Generate(r *rand.Rand, _ int) reflect.Value {
	e := -1070 + r.Intn(2070)
	x := math.Ldexp(1+r.Float64(), e)
	if r.Intn(2) == 1 {
		x = -x
	}
	return reflect.ValueOf(fullRange(x))
}

// Round-trip: a single value must come back bit-identical.
func TestPropSingleValueRoundTrip(t *testing.T) {
	f := func(v fullRange) bool {
		a := New()
		a.Add(float64(v))
		return a.Float64() == float64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// x + (-x) is exactly zero for any finite x.
func TestPropExactCancellation(t *testing.T) {
	f := func(v fullRange) bool {
		a := New()
		a.Add(float64(v))
		a.Add(-float64(v))
		return a.IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// The oracle is order invariant by construction; verify anyway.
func TestPropOrderInvariance(t *testing.T) {
	f := func(vs [8]fullRange) bool {
		a, b := New(), New()
		for _, v := range vs {
			a.Add(float64(v))
		}
		for i := len(vs) - 1; i >= 0; i-- {
			b.Add(float64(vs[i]))
		}
		return a.Rat().Cmp(b.Rat()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
