package experiments

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/binned"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/floatsum"
	"repro/internal/hallberg"
	"repro/internal/rng"
)

func init() {
	register("compare",
		"cross-method comparison: accuracy, order invariance, and cost of every summation algorithm",
		runCompare)
}

// runCompare extends the paper's evaluation with a side-by-side of every
// summation family in this repository on one workload: plain and
// compensated floating-point summation (order-dependent), and the three
// order-invariant families — Hallberg, HP, and Demmel-Nguyen-style binned
// summation (paper refs [6-8]) — plus the adaptive HP extension. For each
// method it reports the error against the exact oracle, whether two
// different orderings produced bit-identical results, and the per-add cost.
func runCompare(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(1<<20, 1<<10)
	if n%2 == 1 {
		n++
	}
	trials := cfg.trials(5)
	r := rng.New(cfg.Seed)
	xs := rng.ZeroSum(r, n, 0.001) // true sum exactly 0
	ys := rng.Reorder(r, xs)

	w, err := binned.WFor(int64(n))
	if err != nil {
		return nil, err
	}
	hallP, err := hallberg.ParamsFor(256, int64(n))
	if err != nil {
		return nil, err
	}

	type method struct {
		name string
		sum  func(xs []float64) (float64, error)
	}
	methods := []method{
		{"double (naive)", func(v []float64) (float64, error) { return floatsum.Naive(v), nil }},
		{"pairwise", func(v []float64) (float64, error) { return floatsum.Pairwise(v), nil }},
		{"kahan", func(v []float64) (float64, error) { return floatsum.Kahan(v), nil }},
		{"neumaier", func(v []float64) (float64, error) { return floatsum.Neumaier(v), nil }},
		{"expansion (Priest)", func(v []float64) (float64, error) { return floatsum.ExpansionSum(v), nil }},
		{fmt.Sprintf("binned W=%d", w), func(v []float64) (float64, error) { return binned.Sum(w, v) }},
		{hallP.String(), func(v []float64) (float64, error) { return hallberg.Sum(hallP, v) }},
		{"HP(N=3,k=2)", func(v []float64) (float64, error) { return core.Sum(core.Params192, v) }},
		{"HP adaptive", func(v []float64) (float64, error) {
			a := core.NewAdaptive(core.Params128)
			if err := a.AddAll(v); err != nil {
				return 0, err
			}
			return a.Float64(), nil
		}},
	}

	oracle := exact.New()
	oracle.AddAll(xs)
	trueSum := oracle.Float64() // exactly 0 by construction

	tbl := &bench.Table{
		Title: fmt.Sprintf("Method comparison: zero-sum set, n=%s, true sum = 0", bench.N(n)),
		Headers: []string{"method", "error_orderA", "error_orderB",
			"order_invariant", "ns_per_add"},
	}
	for _, m := range methods {
		var a, b float64
		var err error
		d := bench.Measure(trials, func() {
			a, err = m.sum(xs)
		})
		if err != nil {
			return nil, fmt.Errorf("compare: %s: %w", m.name, err)
		}
		if b, err = m.sum(ys); err != nil {
			return nil, fmt.Errorf("compare: %s: %w", m.name, err)
		}
		tbl.AddRow(m.name,
			bench.F(math.Abs(a-trueSum)), bench.F(math.Abs(b-trueSum)),
			fmt.Sprintf("%v", a == b),
			bench.F(d.Seconds()/float64(n)*1e9))
	}

	return &Result{
		Name:   "compare",
		Tables: []*bench.Table{tbl},
		Notes: []string{
			"order_invariant compares two shuffles of the same multiset for bit equality",
			"the three integer/binned families are exact AND order-invariant; compensated methods only shrink the error",
		},
	}, nil
}
