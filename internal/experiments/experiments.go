// Package experiments contains one runnable reproduction per table and
// figure of the paper's evaluation (plus the §IV.A analytic model). Each
// experiment generates its workload deterministically from a seed, runs the
// measured computation, and emits the same rows or series the paper
// reports, formatted as ASCII tables and optionally CSV.
//
// Absolute times depend on the host; the quantities that must match the
// paper are the shapes: which method wins, by what factor, and where the
// crossovers fall. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bench"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives every random workload; the default is 2016 (the paper's
	// publication year, chosen arbitrarily but fixed).
	Seed uint64
	// Scale multiplies the paper's problem sizes and trial counts; 1.0
	// reproduces the published scale, smaller values give quick runs.
	// Defaults to 1.0.
	Scale float64
	// Trials overrides the per-experiment timing repetition (0 = default).
	Trials int
	// MaxThreads caps thread/rank sweeps (0 = the paper's maxima).
	MaxThreads int
	// Out receives the formatted tables (default os.Stdout).
	Out io.Writer
	// CSVDir, when set, receives one CSV file per emitted table.
	CSVDir string
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 2016
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	return c
}

// scaled returns n scaled by c.Scale, floored at min.
func (c Config) scaled(n, min int) int {
	v := int(float64(n) * c.Scale)
	if v < min {
		v = min
	}
	return v
}

// trials returns the timing repetition count: the override if set, else
// def scaled (floored at 1).
func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	t := int(float64(def) * c.Scale)
	if t < 1 {
		t = 1
	}
	return t
}

// Result is one experiment's report.
type Result struct {
	Name   string
	Tables []*bench.Table
	Notes  []string
}

// Fprint writes the full report to w.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "=== %s ===\n", r.Name)
	for _, t := range r.Tables {
		t.Fprint(w)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// writeCSVs emits each table as <dir>/<experiment>_<k>.csv.
func (r *Result) writeCSVs(dir string) error {
	for k, t := range r.Tables {
		name := fmt.Sprintf("%s_%d.csv", strings.ReplaceAll(r.Name, " ", "_"), k)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		err = t.CSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Runner executes one experiment.
type Runner func(Config) (*Result, error)

// Entry describes a registered experiment.
type Entry struct {
	Name string // registry key: "fig1", "table2", ...
	Desc string
	Run  Runner
}

var registry []Entry

func register(name, desc string, run Runner) {
	registry = append(registry, Entry{Name: name, Desc: desc, Run: run})
}

// All returns the registered experiments in evaluation order.
func All() []Entry {
	out := make([]Entry, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the experiment registered under name.
func Lookup(name string) (Entry, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Names returns the registered names, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}

// RunAndReport runs the named experiment under cfg, prints its report to
// cfg.Out, and writes CSVs if requested.
func RunAndReport(name string, cfg Config) error {
	cfg = cfg.withDefaults()
	e, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	res, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", name, err)
	}
	res.Fprint(cfg.Out)
	if cfg.CSVDir != "" {
		if err := os.MkdirAll(cfg.CSVDir, 0o755); err != nil {
			return err
		}
		if err := res.writeCSVs(cfg.CSVDir); err != nil {
			return err
		}
	}
	return nil
}
