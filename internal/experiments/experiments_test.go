package experiments

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyConfig runs every experiment at a scale small enough for unit tests.
func tinyConfig(out io.Writer) Config {
	return Config{
		Seed:       1,
		Scale:      0.0001,
		Trials:     2,
		MaxThreads: 4,
		Out:        out,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"compare", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "model", "table1", "table2"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry = %v, want %v", got, want)
		}
	}
	for _, e := range All() {
		if e.Desc == "" {
			t.Errorf("experiment %s has no description", e.Name)
		}
	}
	if _, ok := Lookup("fig4"); !ok {
		t.Error("Lookup(fig4) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			res, err := e.Run(tinyConfig(&buf))
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if res.Name != e.Name {
				t.Errorf("result name %q", res.Name)
			}
			if len(res.Tables) == 0 {
				t.Error("no tables produced")
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Error("empty table")
				}
			}
			var out bytes.Buffer
			res.Fprint(&out)
			if !strings.Contains(out.String(), e.Name) {
				t.Error("report missing experiment name")
			}
			// Invariance-sensitive experiments must not print warnings.
			for _, note := range res.Notes {
				if strings.Contains(note, "WARNING") {
					t.Errorf("warning note: %s", note)
				}
			}
		})
	}
}

func TestRunAndReportWithCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.CSVDir = dir
	if err := RunAndReport("table1", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("report not written")
	}
	matches, err := filepath.Glob(filepath.Join(dir, "table1_*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV emitted: %v %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "MaxRange") {
		t.Error("CSV content missing header")
	}
}

func TestRunAndReportUnknown(t *testing.T) {
	var buf bytes.Buffer
	err := RunAndReport("figNaN", tinyConfig(&buf))
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed == 0 || c.Scale != 1.0 || c.Out == nil {
		t.Errorf("defaults: %+v", c)
	}
	if got := c.scaled(1000, 10); got != 1000 {
		t.Errorf("scaled at 1.0 = %d", got)
	}
	c.Scale = 0.001
	if got := c.scaled(1000, 10); got != 10 {
		t.Errorf("floor: %d", got)
	}
	if got := c.trials(10); got != 1 {
		t.Errorf("trials floor: %d", got)
	}
	c.Trials = 7
	if got := c.trials(10); got != 7 {
		t.Errorf("trials override: %d", got)
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := powersOfTwo(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("powersOfTwo(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("powersOfTwo(8) = %v", got)
		}
	}
	got = powersOfTwo(240)
	if got[len(got)-1] != 240 || got[len(got)-2] != 128 {
		t.Errorf("powersOfTwo(240) = %v", got)
	}
	got = powersOfTwo(1)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("powersOfTwo(1) = %v", got)
	}
}

func TestBlockOfPartition(t *testing.T) {
	n, size := 103, 7
	seen := 0
	for rank := 0; rank < size; rank++ {
		lo, hi := blockOf(n, size, rank)
		if lo > hi {
			t.Fatalf("rank %d: lo > hi", rank)
		}
		seen += hi - lo
	}
	if seen != n {
		t.Errorf("partition covers %d of %d", seen, n)
	}
}

// Shape assertions at reduced scale: the qualitative claims must hold even
// in quick runs.
func TestFig1ShapeSigmaGrowsWithN(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Seed: 2, Scale: 1, Trials: 300, Out: &buf}
	res, err := Lookup("fig1")
	if !err {
		t.Fatal("fig1 missing")
	}
	r, errr := res.Run(cfg)
	if errr != nil {
		t.Fatal(errr)
	}
	rows := r.Tables[0].Rows
	first, last := rows[0], rows[len(rows)-1]
	var s64, s1024 float64
	fmt.Sscanf(first[1], "%g", &s64)
	fmt.Sscanf(last[1], "%g", &s1024)
	if !(s1024 > s64) {
		t.Errorf("sigma(1024)=%g not greater than sigma(64)=%g", s1024, s64)
	}
	// Every row certifies HP exactness.
	for _, row := range rows {
		if row[4] != "true" {
			t.Errorf("row %v: HP not exact", row)
		}
	}
}

func TestFig4ShapeHPNotSlower(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Seed: 2, Scale: 0.002, Trials: 5, Out: &buf}
	e, ok := Lookup("fig4")
	if !ok {
		t.Fatal("fig4 missing")
	}
	r, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// In this Go implementation HP wins at every n (see EXPERIMENTS.md);
	// assert the weaker, implementation-independent property that the
	// speedup column is positive and finite.
	for _, row := range r.Tables[0].Rows {
		var speedup float64
		fmt.Sscanf(row[4], "%g", &speedup)
		if speedup <= 0 {
			t.Errorf("row %v: bad speedup", row)
		}
	}
}
