package experiments

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/floatsum"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register("fig1",
		"std deviation of random-order double sums of zero-sum sets vs n; HP(3,2) exact",
		runFig1)
}

// runFig1 reproduces Figure 1: for n = 64..1024, build a semi-random set
// whose exact sum is zero, sum it in many random orders with plain double
// arithmetic, and record the standard deviation of the residuals. The HP
// method with (N=3, k=2) must return exactly zero for every trial. The
// paper observes the deviation growing linearly with n.
func runFig1(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	trials := cfg.trials(16384)
	r := rng.New(cfg.Seed)

	tbl := &bench.Table{
		Title: fmt.Sprintf("Figure 1: residual std dev over %d random-order trials", trials),
		Headers: []string{"n", "sigma_double", "max|double|", "max|HP(3,2)|",
			"hp_exact"},
	}
	var ns, sigmas []float64
	hpAllZero := true
	for n := 64; n <= 1024; n += 64 {
		set := rng.ZeroSum(r, n, 0.001)
		var run stats.Running
		maxHP := 0.0
		for t := 0; t < trials; t++ {
			xs := rng.Reorder(r, set)
			run.Add(floatsum.Naive(xs))
			hp, err := core.SumHP(core.Params192, xs)
			if err != nil {
				return nil, fmt.Errorf("fig1: HP sum: %w", err)
			}
			if !hp.IsZero() {
				hpAllZero = false
				if v := math.Abs(hp.Float64()); v > maxHP {
					maxHP = v
				}
			}
		}
		sigma := run.StdDev()
		ns = append(ns, float64(n))
		sigmas = append(sigmas, sigma)
		maxAbs := math.Max(math.Abs(run.Min()), math.Abs(run.Max()))
		tbl.AddRow(fmt.Sprintf("%d", n), bench.F(sigma), bench.F(maxAbs),
			bench.F(maxHP), fmt.Sprintf("%v", maxHP == 0))
	}

	res := &Result{Name: "fig1", Tables: []*bench.Table{tbl}}
	_, slope, r2 := stats.LinearFit(ns, sigmas)
	res.Notes = append(res.Notes,
		fmt.Sprintf("linear fit sigma ~ %.3g * n, r^2 = %.4f (paper: error grows linearly in n)", slope, r2))
	if hpAllZero {
		res.Notes = append(res.Notes,
			"HP(N=3,k=2) returned exactly zero for every set and ordering, as in the paper")
	} else {
		res.Notes = append(res.Notes, "WARNING: HP produced nonzero residuals — invariance violated")
	}
	if r2 > 0.9 {
		res.Notes = append(res.Notes, "shape agreement: linear growth confirmed (r^2 > 0.9)")
	}
	return res, nil
}
