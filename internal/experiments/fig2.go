package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/floatsum"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register("fig2",
		"distribution of random-order double sums for n=1024 (histogram)",
		runFig2)
}

// runFig2 reproduces Figure 2: the distribution of floating-point sums of
// one 1024-element zero-sum set over many random orderings. The paper shows
// an approximately normal distribution centered on zero; HP computes the
// true sum (zero) exactly in every trial.
func runFig2(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	trials := cfg.trials(16384)
	const n = 1024
	r := rng.New(cfg.Seed)
	set := rng.ZeroSum(r, n, 0.001)

	sums := make([]float64, trials)
	var run stats.Running
	hpZero := true
	for t := 0; t < trials; t++ {
		xs := rng.Reorder(r, set)
		sums[t] = floatsum.Naive(xs)
		run.Add(sums[t])
		hp, err := core.SumHP(core.Params192, xs)
		if err != nil {
			return nil, fmt.Errorf("fig2: HP sum: %w", err)
		}
		if !hp.IsZero() {
			hpZero = false
		}
	}
	sigma := run.StdDev()
	lo, hi := -4*sigma, 4*sigma
	if sigma == 0 {
		lo, hi = -1e-18, 1e-18
	}
	const bins = 24
	h := stats.NewHistogram(lo, hi, bins)
	for _, s := range sums {
		h.Add(s)
	}

	tbl := &bench.Table{
		Title: fmt.Sprintf("Figure 2: histogram of %d double sums, n=%d "+
			"(bins over ±4 sigma)", trials, n),
		Headers: []string{"bin_center", "count", "bar"},
	}
	var maxCount int64
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", int(40*c/maxCount))
		}
		tbl.AddRow(bench.F(h.BinCenter(i)), fmt.Sprintf("%d", c), bar)
	}

	res := &Result{Name: "fig2", Tables: []*bench.Table{tbl}}
	res.Notes = append(res.Notes,
		fmt.Sprintf("mean = %.3g, sigma = %.3g (paper: ~normal, mean ~0)", run.Mean(), sigma))
	// Normality sanity: roughly 68% of mass within 1 sigma.
	within := 0
	for _, s := range sums {
		if s >= run.Mean()-sigma && s <= run.Mean()+sigma {
			within++
		}
	}
	frac := float64(within) / float64(trials)
	res.Notes = append(res.Notes,
		fmt.Sprintf("fraction within 1 sigma = %.3f (normal: 0.683)", frac))
	if hpZero {
		res.Notes = append(res.Notes, "HP(N=3,k=2) computed exactly 0 in every trial")
	} else {
		res.Notes = append(res.Notes, "WARNING: HP produced nonzero residuals")
	}
	return res, nil
}
