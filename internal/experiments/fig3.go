package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
)

func init() {
	register("fig3",
		"worked example of HP conversion and addition (the paper's Figure 3 walkthrough)",
		runFig3)
}

// runFig3 regenerates the content of the paper's Figure 3: a step-by-step
// example of adding two floating-point numbers through the HP pipeline —
// each operand converted to limbs (Listing 1), the limb-wise addition with
// carries (Listing 2), and the conversion of the sum back to double. The
// figure in the paper is a diagram; this experiment emits the same
// walkthrough with concrete limb values so a reader can follow every bit.
func runFig3(cfg Config) (*Result, error) {
	p := core.Params192
	// Both literals round to doubles whose lowest bit sits far above the
	// 2^-128 resolution, so the conversions are exact.
	x := 1234.56789012345 // an ordinary positive value
	y := -1234.5678901234 // a close negative value: cancellation case
	a, err := core.FromFloat64(p, x)
	if err != nil {
		return nil, err
	}
	b, err := core.FromFloat64(p, y)
	if err != nil {
		return nil, err
	}
	sum := a.Clone()
	if sum.Add(b) {
		return nil, core.ErrOverflow
	}

	hex := func(h *core.HP) []string {
		limbs := h.Limbs()
		out := make([]string, len(limbs))
		for i, l := range limbs {
			out[i] = fmt.Sprintf("%016x", l)
		}
		return out
	}

	tbl := &bench.Table{
		Title:   fmt.Sprintf("Figure 3: worked HP(%d,%d) addition", p.N, p.K),
		Headers: []string{"step", "limb0 (sign+whole)", "limb1 (frac hi)", "limb2 (frac lo)", "value"},
	}
	la, lb, ls := hex(a), hex(b), hex(sum)
	tbl.AddRow("convert x", la[0], la[1], la[2], fmt.Sprintf("%.17g", a.Float64()))
	tbl.AddRow("convert y", lb[0], lb[1], lb[2], fmt.Sprintf("%.17g", b.Float64()))
	tbl.AddRow("x + y", ls[0], ls[1], ls[2], fmt.Sprintf("%.17g", sum.Float64()))

	// Verify both conversion paths agree, as the figure implies.
	a2 := core.New(p)
	if err := a2.SetFloat64Listing1(x); err != nil {
		return nil, err
	}
	agree := a2.Equal(a)

	res := &Result{Name: "fig3", Tables: []*bench.Table{tbl}}
	res.Notes = append(res.Notes,
		"limb0 bit 63 is the sign; negative operands are stored in two's complement (paper §III.A)",
		fmt.Sprintf("Listing 1 float-loop conversion produced identical limbs: %v", agree),
		"the sum of the close +/- pair retains every surviving bit: no catastrophic cancellation")
	return res, nil
}
