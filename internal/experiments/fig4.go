package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/hallberg"
	"repro/internal/rng"
)

func init() {
	register("fig4",
		"runtime of HP(8,4) vs Hallberg (Table 2 params) for n up to 16M wide-range values",
		runFig4)
}

// runFig4 reproduces Figure 4: single-threaded accumulation of n random
// values spanning [-2^191, 2^191] (smallest ±2^-223) with ~512-bit
// precision — HP with (N=8, k=4) against the Hallberg method with the
// per-n parameters of Table 2. The paper finds Hallberg slightly ahead at
// small n and HP overtaking past ~1M summands as the shrinking M forces
// more Hallberg blocks; the speedup column is the figure's right panel.
//
// Values are quantized to 2^-256 (the HP resolution) so both fixed-point
// formats represent every input exactly; see rng.QuantizeBelow.
func runFig4(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	hpParams := core.Params512

	baseNs := []int{128, 1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22, 1 << 24}
	tbl := &bench.Table{
		Title: "Figure 4: HP vs Hallberg runtime, wide-range values",
		Headers: []string{"n", "hallberg_params", "t_hp_s", "t_hallberg_s",
			"speedup_hall/hp", "ns_per_add_hp", "ns_per_add_hall"},
	}
	notes := []string{}
	var firstSpeedup, lastSpeedup float64
	firstAnchored := false
	prevN := 0
	for idx, baseN := range baseNs {
		n := cfg.scaled(baseN, 128)
		if n == prevN {
			continue // scaling clamped two points together
		}
		prevN = n
		hParams, err := hallberg.ParamsFor(512, int64(n))
		if err != nil {
			return nil, err
		}
		xs := rng.WideRangeQuantized(r, n, -223, 191, -64*hpParams.K)

		trials := cfg.trials(10)
		// Keep total work bounded: fewer trials for the big points, many
		// more for the small ones where timer noise would dominate.
		if n >= 1<<20 && trials > 3 {
			trials = 3
		}
		if n < 10000 && trials < 200 {
			trials = 200
		}

		// Untimed warmup so first-touch page faults and cold caches do not
		// distort the smallest points.
		warm := xs
		if len(warm) > 4096 {
			warm = warm[:4096]
		}
		{
			a := core.NewAccumulator(hpParams)
			a.AddAll(warm)
			h := hallberg.NewAccumulator(hParams)
			h.AddAll(warm)
		}

		var hpSum *core.HP
		tHP := bench.Measure(trials, func() {
			acc := core.NewAccumulator(hpParams)
			acc.AddAll(xs)
			if acc.Err() != nil {
				panic(acc.Err())
			}
			hpSum = acc.Sum()
		})
		var hallSum *hallberg.Num
		tHall := bench.Measure(trials, func() {
			acc := hallberg.NewAccumulator(hParams)
			acc.AddAll(xs)
			if acc.Err() != nil {
				panic(acc.Err())
			}
			hallSum = acc.Sum()
		})

		// Cross-validate both results against the oracle on the smaller
		// points (the oracle is O(n) big.Int work).
		if n <= 1<<16 {
			oracle := exact.New()
			oracle.AddAll(xs)
			if hpSum.Rat().Cmp(oracle.Rat()) != 0 {
				return nil, fmt.Errorf("fig4: n=%d HP sum diverged from oracle", n)
			}
			if hallSum.Rat().Cmp(oracle.Rat()) != 0 {
				return nil, fmt.Errorf("fig4: n=%d Hallberg sum diverged from oracle", n)
			}
		}

		speedup := tHall.Seconds() / tHP.Seconds()
		// Anchor the trend note at the first point with enough work to be
		// timer-noise free (>= 1024 summands).
		if !firstAnchored && (n >= 1024 || idx == len(baseNs)-1) {
			firstSpeedup = speedup
			firstAnchored = true
		}
		lastSpeedup = speedup
		tbl.AddRow(bench.N(n), hParams.String(),
			bench.Seconds(tHP), bench.Seconds(tHall), bench.F(speedup),
			bench.F(tHP.Seconds()/float64(n)*1e9),
			bench.F(tHall.Seconds()/float64(n)*1e9))
	}
	if lastSpeedup > firstSpeedup {
		notes = append(notes, fmt.Sprintf(
			"speedup grows with n (%.3g -> %.3g): HP's advantage increases as the summand budget forces smaller M, as the paper predicts",
			firstSpeedup, lastSpeedup))
	} else {
		notes = append(notes, fmt.Sprintf(
			"speedup did not grow with n (%.3g -> %.3g) on this host", firstSpeedup, lastSpeedup))
	}
	notes = append(notes,
		"paper shape: Hallberg ahead at small n, HP overtakes past ~1M summands",
		"results cross-validated against the exact big-integer oracle for n <= 64K")
	return &Result{Name: "fig4", Tables: []*bench.Table{tbl}, Notes: notes}, nil
}
