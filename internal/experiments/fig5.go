package experiments

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/omp"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register("fig5",
		"OpenMP-style strong scaling of a 32M-value global sum, 1..8 threads",
		runFig5)
}

// runFig5 reproduces Figure 5: strong scaling of a global summation of 32M
// uniform values in [-0.5, 0.5] over a shared-memory thread team, comparing
// double precision, HP(N=6, k=3), and Hallberg(N=10, M=38). Each thread
// reduces its static block; the master combines the partials. The paper
// reports a ~37-38x single-thread HP overhead that amortizes as threads are
// added; the right panel is strong-scaling efficiency.
func runFig5(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(32<<20, 1<<10)
	r := rng.New(cfg.Seed)
	xs := rng.UniformSet(r, n, -0.5, 0.5)
	trials := cfg.trials(10)

	maxThreads := 8
	if cfg.MaxThreads > 0 && cfg.MaxThreads < maxThreads {
		maxThreads = cfg.MaxThreads
	}
	threadCounts := powersOfTwo(maxThreads)

	tbl := &bench.Table{
		Title: fmt.Sprintf("Figure 5 (OpenMP substrate): %s values, %d trials", bench.N(n), trials),
		Headers: []string{"threads", "t_double_s", "t_hp_s", "t_hallberg_s",
			"eff_double", "eff_hp", "eff_hallberg", "hp_overhead_x"},
	}

	var t1 [3]time.Duration
	var hpRef float64
	hpRefSet := false
	hpInvariant := true
	for i, p := range threadCounts {
		team := omp.NewTeam(p)
		var sumErr error
		tDouble := bench.Measure(trials, func() { _ = sumDoubleOMP(team, xs) })
		var hpVal float64
		tHP := bench.Measure(trials, func() {
			v, err := sumHPOMP(team, xs)
			if err != nil {
				sumErr = err
			}
			hpVal = v
		})
		if err := checkScalingErr(methodHP, sumErr); err != nil {
			return nil, err
		}
		tHall := bench.Measure(trials, func() {
			if _, err := sumHallbergOMP(team, xs); err != nil {
				sumErr = err
			}
		})
		if err := checkScalingErr(methodHallberg, sumErr); err != nil {
			return nil, err
		}
		if !hpRefSet {
			hpRef = hpVal
			hpRefSet = true
		} else if hpVal != hpRef {
			hpInvariant = false
		}
		if i == 0 {
			t1 = [3]time.Duration{tDouble, tHP, tHall}
		}
		tbl.AddRow(fmt.Sprintf("%d", p),
			bench.Seconds(tDouble), bench.Seconds(tHP), bench.Seconds(tHall),
			bench.F(stats.Efficiency(t1[0].Seconds(), tDouble.Seconds(), p)),
			bench.F(stats.Efficiency(t1[1].Seconds(), tHP.Seconds(), p)),
			bench.F(stats.Efficiency(t1[2].Seconds(), tHall.Seconds(), p)),
			bench.F(tHP.Seconds()/tDouble.Seconds()))
	}

	notes := []string{
		fmt.Sprintf("single-thread HP overhead vs double: %.3gx (paper: ~37-38x with -O3 SIMD double)",
			t1[1].Seconds()/t1[0].Seconds()),
		"paper shape: high-precision cost amortizes as threads increase",
	}
	if hpInvariant {
		notes = append(notes, "HP result bit-identical across every thread count")
	} else {
		notes = append(notes, "WARNING: HP result varied with thread count")
	}
	return &Result{Name: "fig5", Tables: []*bench.Table{tbl}, Notes: notes}, nil
}
