package experiments

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hallberg"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register("fig6",
		"MPI-style strong scaling of a 32M-value global sum, 1..128 ranks",
		runFig6)
}

// runFig6 reproduces Figure 6: the same 32M-value global summation executed
// over the message-passing substrate with 1..128 ranks. Each rank reduces
// its block locally; the partials meet in a binomial-tree MPI_Reduce with a
// custom reduction operator (OpSumFloat64, OpSumHP, OpSumHallberg), exactly
// the custom-datatype + MPI_Op structure the paper describes for §IV.B.
func runFig6(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(32<<20, 1<<10)
	r := rng.New(cfg.Seed)
	xs := rng.UniformSet(r, n, -0.5, 0.5)
	trials := cfg.trials(10)

	maxRanks := 128
	if cfg.MaxThreads > 0 && cfg.MaxThreads < maxRanks {
		maxRanks = cfg.MaxThreads
	}
	rankCounts := powersOfTwo(maxRanks)

	runDouble := func(size int) error {
		return mpi.Run(size, func(c *Comm) error {
			lo, hi := blockOf(n, size, c.Rank())
			local := 0.0
			for _, x := range xs[lo:hi] {
				local += x
			}
			_, err := c.Reduce(0, mpi.EncodeFloat64s([]float64{local}), mpi.OpSumFloat64)
			return err
		})
	}
	var hpResults []string
	runHP := func(size int, record bool) error {
		op := mpi.OpSumHP(hpScaling)
		return mpi.Run(size, func(c *Comm) error {
			lo, hi := blockOf(n, size, c.Rank())
			acc := core.NewAccumulator(hpScaling)
			acc.AddAll(xs[lo:hi])
			if acc.Err() != nil {
				return acc.Err()
			}
			buf, err := c.Reduce(0, mpi.EncodeHP(acc.Sum()), op)
			if err != nil {
				return err
			}
			if record && c.Rank() == 0 {
				hp, err := mpi.DecodeHP(hpScaling, buf)
				if err != nil {
					return err
				}
				hpResults = append(hpResults, fmt.Sprintf("%x", hp.Limbs()))
			}
			return nil
		})
	}
	runHall := func(size int) error {
		op := mpi.OpSumHallberg(hallbergScaling)
		return mpi.Run(size, func(c *Comm) error {
			lo, hi := blockOf(n, size, c.Rank())
			acc := hallberg.NewAccumulator(hallbergScaling)
			acc.AddAll(xs[lo:hi])
			if acc.Err() != nil {
				return acc.Err()
			}
			_, err := c.Reduce(0, mpi.EncodeHallberg(acc.Sum()), op)
			return err
		})
	}

	tbl := &bench.Table{
		Title: fmt.Sprintf("Figure 6 (MPI substrate): %s values, %d trials", bench.N(n), trials),
		Headers: []string{"ranks", "t_double_s", "t_hp_s", "t_hallberg_s",
			"eff_double", "eff_hp", "eff_hallberg"},
	}
	var t1 [3]time.Duration
	for i, size := range rankCounts {
		var err error
		tDouble := bench.Measure(trials, func() {
			if e := runDouble(size); e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("fig6 double: %w", err)
		}
		tHP := bench.Measure(trials, func() {
			if e := runHP(size, false); e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("fig6 HP: %w", err)
		}
		if e := runHP(size, true); e != nil { // one recorded run for invariance check
			return nil, fmt.Errorf("fig6 HP: %w", e)
		}
		tHall := bench.Measure(trials, func() {
			if e := runHall(size); e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("fig6 hallberg: %w", err)
		}
		if i == 0 {
			t1 = [3]time.Duration{tDouble, tHP, tHall}
		}
		tbl.AddRow(fmt.Sprintf("%d", size),
			bench.Seconds(tDouble), bench.Seconds(tHP), bench.Seconds(tHall),
			bench.F(stats.Efficiency(t1[0].Seconds(), tDouble.Seconds(), size)),
			bench.F(stats.Efficiency(t1[1].Seconds(), tHP.Seconds(), size)),
			bench.F(stats.Efficiency(t1[2].Seconds(), tHall.Seconds(), size)))
	}

	notes := []string{
		"reduction uses a binomial tree with custom ops over serialized limbs (the paper's custom MPI datatype + MPI_Op)",
	}
	invariant := true
	for _, h := range hpResults[1:] {
		if h != hpResults[0] {
			invariant = false
		}
	}
	if invariant {
		notes = append(notes, "HP reduced limbs bit-identical across every rank count")
	} else {
		notes = append(notes, "WARNING: HP result varied with rank count")
	}
	return &Result{Name: "fig6", Tables: []*bench.Table{tbl}, Notes: notes}, nil
}

// blockOf splits [0, n) evenly over size ranks.
func blockOf(n, size, rank int) (lo, hi int) {
	lo = rank * n / size
	hi = (rank + 1) * n / size
	return lo, hi
}

// Comm aliases the substrate's communicator for readability above.
type Comm = mpi.Comm
