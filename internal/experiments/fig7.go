package experiments

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/hallberg"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register("fig7",
		"CUDA-style scaling: 256..32K threads accumulating into 256 atomic partial sums",
		runFig7)
}

// runFig7 reproduces Figure 7: all launched threads accumulate strided
// elements into 256 shared partial sums with atomic operations, where
// thread t updates partial t mod 256 (showcasing the HP method's CAS-based
// atomicity, §III.B.2). The simulated device carries the K20m's
// 2496-resident-thread cap, which produces the paper's plateau beyond 2048
// threads. Double precision uses the CUDA-era CAS loop on raw bits;
// HP and Hallberg use their CAS atomic adders.
func runFig7(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(32<<20, 1<<10)
	r := rng.New(cfg.Seed)
	xs := rng.UniformSet(r, n, -0.5, 0.5)
	trials := cfg.trials(10)
	if trials > 5 {
		trials = 5 // atomic contention runs are expensive; the shape needs few repeats
	}
	device := cuda.TeslaK20m()

	maxThreads := 32 << 10
	if cfg.MaxThreads > 0 && cfg.MaxThreads < maxThreads {
		maxThreads = cfg.MaxThreads
	}
	var threadCounts []int
	for p := 256; p <= maxThreads; p <<= 1 {
		threadCounts = append(threadCounts, p)
	}
	if len(threadCounts) == 0 {
		threadCounts = []int{cfg.MaxThreads}
	}
	const partialCount = 256

	launch := func(threads int, kernel func(tc cuda.ThreadCtx)) error {
		cfg := cuda.Config{Blocks: threads / 256, ThreadsPerBlock: 256}
		if cfg.Blocks == 0 {
			cfg = cuda.Config{Blocks: 1, ThreadsPerBlock: threads}
		}
		return device.Launch(cfg, kernel)
	}

	runDouble := func(threads int) error {
		partials := make([]cuda.AtomicFloat64, partialCount)
		return launch(threads, func(tc cuda.ThreadCtx) {
			// The paper's kernel atomically adds every element into the
			// shared partial selected by t mod 256; the per-element atomic
			// is the measured contention pattern.
			total := tc.Cfg.Threads()
			dst := &partials[tc.Global%partialCount]
			for i := tc.Global; i < n; i += total {
				dst.Add(xs[i])
			}
		})
	}
	runHP := func(threads int) (*core.HP, error) {
		partials := make([]*core.Atomic, partialCount)
		for i := range partials {
			partials[i] = core.NewAtomic(hpScaling)
		}
		err := launch(threads, func(tc cuda.ThreadCtx) {
			// Fused sparse convert-add: the conversion stays thread-local
			// in registers and only the exponent-selected limbs are CASed.
			total := tc.Cfg.Threads()
			dst := partials[tc.Global%partialCount]
			for i := tc.Global; i < n; i += total {
				if err := dst.AddFloat64CAS(xs[i]); err != nil {
					panic(err)
				}
			}
		})
		if err != nil {
			return nil, err
		}
		final := core.NewAccumulator(hpScaling)
		for _, part := range partials {
			final.AddHP(part.Snapshot())
		}
		return final.Sum(), final.Err()
	}
	runHall := func(threads int) error {
		partials := make([]*hallberg.Atomic, partialCount)
		for i := range partials {
			partials[i] = hallberg.NewAtomic(hallbergScaling)
		}
		return launch(threads, func(tc cuda.ThreadCtx) {
			scratch := hallberg.NewNum(hallbergScaling)
			total := tc.Cfg.Threads()
			dst := partials[tc.Global%partialCount]
			for i := tc.Global; i < n; i += total {
				if err := scratch.SetFloat64(xs[i]); err != nil {
					panic(err)
				}
				dst.AddNumCAS(scratch)
			}
		})
	}

	tbl := &bench.Table{
		Title: fmt.Sprintf("Figure 7 (CUDA substrate, %s): %s values, %d trials",
			device.Name, bench.N(n), trials),
		Headers: []string{"threads", "t_double_s", "t_hp_s", "t_hallberg_s",
			"eff_double", "eff_hp", "eff_hallberg", "hp_slowdown_x"},
	}
	var t1 [3]time.Duration
	base := threadCounts[0]
	var hpFirst *core.HP
	hpInvariant := true
	for i, threads := range threadCounts {
		var err error
		tDouble := bench.Measure(trials, func() {
			if e := runDouble(threads); e != nil {
				err = e
			}
		})
		var hpSum *core.HP
		tHP := bench.Measure(trials, func() {
			s, e := runHP(threads)
			if e != nil {
				err = e
			}
			hpSum = s
		})
		tHall := bench.Measure(trials, func() {
			if e := runHall(threads); e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("fig7: %w", err)
		}
		if hpFirst == nil {
			hpFirst = hpSum.Clone()
		} else if !hpSum.Equal(hpFirst) {
			hpInvariant = false
		}
		if i == 0 {
			t1 = [3]time.Duration{tDouble, tHP, tHall}
		}
		scale := threads / base
		tbl.AddRow(bench.N(threads),
			bench.Seconds(tDouble), bench.Seconds(tHP), bench.Seconds(tHall),
			bench.F(stats.Efficiency(t1[0].Seconds(), tDouble.Seconds(), scale)),
			bench.F(stats.Efficiency(t1[1].Seconds(), tHP.Seconds(), scale)),
			bench.F(stats.Efficiency(t1[2].Seconds(), tHall.Seconds(), scale)),
			bench.F(tHP.Seconds()/tDouble.Seconds()))
	}

	notes := []string{
		fmt.Sprintf("device resident-thread cap %d: times plateau once launched threads exceed available concurrency (paper: plateau beyond 2048 on the K20m)",
			device.MaxResidentThreads),
		"paper shape: HP slowdown vs double bounded (~5.6x, memory-op ratio ~4.3x); Hallberg suffers more (more limbs per atomic add)",
	}
	if hpInvariant {
		notes = append(notes, "HP result bit-identical across every launch geometry (atomic adds commute)")
	} else {
		notes = append(notes, "WARNING: HP result varied with launch geometry")
	}
	return &Result{Name: "fig7", Tables: []*bench.Table{tbl}, Notes: notes}, nil
}
