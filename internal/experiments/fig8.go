package experiments

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hallberg"
	"repro/internal/phi"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register("fig8",
		"Xeon Phi offload-style scaling: 1..240 device threads with host-device transfer",
		runFig8)
}

// runFig8 reproduces Figure 8: the 32M-value global sum under the
// heterogeneous offload model — the input array is transferred to the
// coprocessor each trial, reduced on-device by 1..240 threads into
// per-thread partials, and combined. The paper observes a very high
// single-thread cost for the high-precision methods (the Intel compiler
// vectorizes native doubles) that amortizes with threads, and runtimes at
// high thread counts dominated by the host-device transfer — reproduced
// here by the device's modeled PCIe transfer cost.
func runFig8(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(32<<20, 1<<10)
	r := rng.New(cfg.Seed)
	xs := rng.UniformSet(r, n, -0.5, 0.5)
	trials := cfg.trials(10)
	if trials > 5 {
		trials = 5
	}
	device := phi.Phi5110P()

	maxThreads := 240
	if cfg.MaxThreads > 0 && cfg.MaxThreads < maxThreads {
		maxThreads = cfg.MaxThreads
	}
	threadCounts := powersOfTwo(maxThreads)

	offloadSum := func(threads int, reduce func(buf *phi.Buffer, threads int) error) error {
		buf := device.OffloadIn(xs) // charged per trial, as in the offload model
		return reduce(buf, threads)
	}
	reduceDouble := func(buf *phi.Buffer, threads int) error {
		partials := make([]float64, threads)
		used, err := device.Run(threads, buf.Len(), func(tid, lo, hi int) {
			s := 0.0
			data := buf.Data()
			for _, x := range data[lo:hi] {
				s += x
			}
			partials[tid] = s
		})
		if err != nil {
			return err
		}
		total := 0.0
		for _, p := range partials[:used] {
			total += p
		}
		_ = total
		return nil
	}
	var hpResult *core.HP
	reduceHP := func(buf *phi.Buffer, threads int) error {
		partials := make([]*core.Accumulator, threads)
		used, err := device.Run(threads, buf.Len(), func(tid, lo, hi int) {
			acc := core.NewAccumulator(hpScaling)
			acc.AddAll(buf.Data()[lo:hi])
			partials[tid] = acc
		})
		if err != nil {
			return err
		}
		final := core.NewAccumulator(hpScaling)
		for _, p := range partials[:used] {
			final.Merge(p)
		}
		if final.Err() != nil {
			return final.Err()
		}
		hpResult = final.Sum()
		return nil
	}
	reduceHall := func(buf *phi.Buffer, threads int) error {
		partials := make([]*hallberg.Accumulator, threads)
		used, err := device.Run(threads, buf.Len(), func(tid, lo, hi int) {
			acc := hallberg.NewAccumulator(hallbergScaling)
			acc.AddAll(buf.Data()[lo:hi])
			partials[tid] = acc
		})
		if err != nil {
			return err
		}
		final := hallberg.NewAccumulator(hallbergScaling)
		for _, p := range partials[:used] {
			final.AddNum(p.Sum(), p.Count())
			if p.Err() != nil {
				return p.Err()
			}
		}
		return final.Err()
	}

	tbl := &bench.Table{
		Title: fmt.Sprintf("Figure 8 (Xeon Phi substrate, %s): %s values, %d trials",
			device.Name, bench.N(n), trials),
		Headers: []string{"threads", "t_double_s", "t_hp_s", "t_hallberg_s",
			"eff_double", "eff_hp", "eff_hallberg"},
	}
	// Untimed warmup: fault in the device buffer pages once so the first
	// measured offload is not charged for first-touch costs.
	if err := offloadSum(threadCounts[0], reduceDouble); err != nil {
		return nil, fmt.Errorf("fig8 warmup: %w", err)
	}

	var t1 [3]time.Duration
	var hpFirst *core.HP
	hpInvariant := true
	for i, threads := range threadCounts {
		var err error
		tDouble := bench.Measure(trials, func() {
			if e := offloadSum(threads, reduceDouble); e != nil {
				err = e
			}
		})
		tHP := bench.Measure(trials, func() {
			if e := offloadSum(threads, reduceHP); e != nil {
				err = e
			}
		})
		tHall := bench.Measure(trials, func() {
			if e := offloadSum(threads, reduceHall); e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, fmt.Errorf("fig8: %w", err)
		}
		if hpFirst == nil {
			hpFirst = hpResult.Clone()
		} else if !hpResult.Equal(hpFirst) {
			hpInvariant = false
		}
		if i == 0 {
			t1 = [3]time.Duration{tDouble, tHP, tHall}
		}
		tbl.AddRow(fmt.Sprintf("%d", threads),
			bench.Seconds(tDouble), bench.Seconds(tHP), bench.Seconds(tHall),
			bench.F(stats.Efficiency(t1[0].Seconds(), tDouble.Seconds(), threads)),
			bench.F(stats.Efficiency(t1[1].Seconds(), tHP.Seconds(), threads)),
			bench.F(stats.Efficiency(t1[2].Seconds(), tHall.Seconds(), threads)))
	}

	transferS := float64(8*n)/device.TransferBytesPerSec + device.TransferLatency.Seconds()
	notes := []string{
		fmt.Sprintf("modeled host->device transfer per trial: %.4gs (bandwidth %.3g GB/s)",
			transferS, device.TransferBytesPerSec/1e9),
		"paper shape: transfer time dominates all three methods at high thread counts",
	}
	if hpInvariant {
		notes = append(notes, "HP result bit-identical across every thread count")
	} else {
		notes = append(notes, "WARNING: HP result varied with thread count")
	}
	return &Result{Name: "fig8", Tables: []*bench.Table{tbl}, Notes: notes}, nil
}
