package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hallberg"
	"repro/internal/omp"
)

// Shared summation drivers for the strong-scaling experiments: each method
// reduces a slice over a thread team with per-thread partials combined by
// the master, exactly the structure of the paper's OpenMP/MPI/Phi codes.
// The paper's configurations: double precision, HP(N=6, k=3), and
// Hallberg(N=10, M=38).

// hpScaling is the HP format used by Figures 5-8.
var hpScaling = core.Params384

// hallbergScaling is the Hallberg format used by Figures 5-8.
var hallbergScaling = hallberg.New(10, 38)

// sumDoubleOMP reduces xs with plain float64 addition over threads.
func sumDoubleOMP(team *omp.Team, xs []float64) float64 {
	return *omp.Reduce(team, len(xs),
		func(int) *float64 { v := 0.0; return &v },
		func(local *float64, _, lo, hi int) {
			s := 0.0
			for _, x := range xs[lo:hi] {
				s += x
			}
			*local += s
		},
		func(into, from *float64) { *into += *from })
}

// sumHPOMP reduces xs with HP accumulators over threads.
func sumHPOMP(team *omp.Team, xs []float64) (float64, error) {
	total := omp.Reduce(team, len(xs),
		func(int) *core.Accumulator { return core.NewAccumulator(hpScaling) },
		func(local *core.Accumulator, _, lo, hi int) { local.AddAll(xs[lo:hi]) },
		func(into, from *core.Accumulator) { into.Merge(from) })
	return total.Float64(), total.Err()
}

// sumHallbergOMP reduces xs with Hallberg accumulators over threads.
func sumHallbergOMP(team *omp.Team, xs []float64) (float64, error) {
	total := omp.Reduce(team, len(xs),
		func(int) *hallberg.Accumulator { return hallberg.NewAccumulator(hallbergScaling) },
		func(local *hallberg.Accumulator, _, lo, hi int) { local.AddAll(xs[lo:hi]) },
		func(into, from *hallberg.Accumulator) { into.AddNum(from.Sum(), from.Count()) })
	return total.Float64(), total.Err()
}

// method names used consistently across the scaling tables.
const (
	methodDouble   = "double"
	methodHP       = "HP(N=6,k=3)"
	methodHallberg = "Hallberg(N=10,M=38)"
)

// checkScalingErr converts a method error into a fatal experiment error
// with context.
func checkScalingErr(method string, err error) error {
	if err != nil {
		return fmt.Errorf("%s summation failed: %w", method, err)
	}
	return nil
}

// powersOfTwo returns {1, 2, 4, ..., max} (max included even if not a
// power of two, as with the Phi's 240 threads).
func powersOfTwo(max int) []int {
	var out []int
	for p := 1; p < max; p <<= 1 {
		out = append(out, p)
	}
	out = append(out, max)
	if len(out) >= 2 && out[len(out)-2] == max {
		out = out[:len(out)-1]
	}
	return out
}
