package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hallberg"
)

func init() {
	register("table1", "HP max range and smallest value per (N, k)", runTable1)
	register("table2", "Hallberg (N, M) for ~512-bit precision vs summand budget", runTable2)
	register("model", "analytic HP-vs-Hallberg speedup model (eqs. 3-6)", runModel)
}

// runTable1 reproduces Table 1 from the closed forms. The paper's N=6 row
// prints "256" bits, a typo for 384 (= 6*64); the corrected value is
// emitted with a note.
func runTable1(cfg Config) (*Result, error) {
	tbl := &bench.Table{
		Title:   "Table 1: HP range and resolution",
		Headers: []string{"N", "k", "Bits", "MaxRange", "Smallest"},
	}
	for _, p := range []core.Params{
		core.Params128, core.Params192, core.Params384, core.Params512,
	} {
		tbl.AddRow(fmt.Sprintf("%d", p.N), fmt.Sprintf("%d", p.K),
			fmt.Sprintf("%d", p.Bits()),
			fmt.Sprintf("±%.6e", p.MaxRange()),
			fmt.Sprintf("%.6e", p.Smallest()))
	}
	return &Result{
		Name:   "table1",
		Tables: []*bench.Table{tbl},
		Notes: []string{
			"matches the paper's Table 1; the published N=6 'Bits' entry (256) is a typo for 384",
		},
	}, nil
}

// runTable2 reproduces Table 2: the Hallberg parameters chosen for
// near-512-bit precision at each summand budget.
func runTable2(cfg Config) (*Result, error) {
	tbl := &bench.Table{
		Title:   "Table 2: Hallberg parameters for ~512-bit precision",
		Headers: []string{"N", "M", "PrecisionBits", "MaxSummands"},
	}
	for _, budget := range []int64{2048, 1 << 20, 64 << 20} {
		p, err := hallberg.ParamsFor(512, budget)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("%d", p.N), fmt.Sprintf("%d", p.M),
			fmt.Sprintf("%d", p.PrecisionBits()),
			fmt.Sprintf("≤ %s", bench.N(int(p.MaxSummands()))))
	}
	return &Result{
		Name:   "table2",
		Tables: []*bench.Table{tbl},
		Notes:  []string{"selection rule: largest M with 2^(63-M) >= budget, smallest even N reaching 512 bits"},
	}, nil
}

// runModel evaluates the §IV.A speedup model: block counts from eq. 3 and
// the bounds of eqs. 5 and 6 with unit cost ratio, for the configurations
// the paper measures.
func runModel(cfg Config) (*Result, error) {
	tbl := &bench.Table{
		Title: "Analytic model (eqs. 3-6), cost ratio c_b/c_p = 1",
		Headers: []string{"precision_b", "M", "N_hp", "N_hallberg",
			"S_eq4", "S_eq5_bound", "S_eq6_bound"},
	}
	for _, row := range []struct{ b, m int }{
		{511, 52}, {511, 43}, {511, 37}, // Figure 4 regime
		{383, 38}, // Figures 5-8 regime
	} {
		tbl.AddRow(
			fmt.Sprintf("%d", row.b), fmt.Sprintf("%d", row.m),
			fmt.Sprintf("%d", hallberg.BlocksHP(row.b)),
			fmt.Sprintf("%d", hallberg.BlocksHallberg(row.b, row.m)),
			bench.F(hallberg.PredictedSpeedup(1, row.b, row.m)),
			bench.F(hallberg.SpeedupBoundEq5(1, row.b, row.m)),
			bench.F(hallberg.SpeedupLowerBound(1, row.m)))
	}
	return &Result{
		Name:   "model",
		Tables: []*bench.Table{tbl},
		Notes: []string{
			"S > 1 predicts HP faster than Hallberg at equal per-block cost",
			"lower M (more summands) raises the predicted HP advantage (paper's central claim)",
		},
	}, nil
}
