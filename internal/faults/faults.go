// Package faults is a deterministic fault-injection framework for the
// message-passing substrate in internal/mpi. A Plan is a seeded list of
// rules — drop, delay, duplicate, corrupt, and rank-crash — each targeting
// an edge pattern (src, dst, tag); an Injector evaluates the plan against
// every frame a rank sends. Decisions are drawn from per-edge xoshiro
// streams derived from the plan seed, so for a fixed sequence of frames on
// an edge the injected faults are identical on every run and platform —
// chaos runs are reproducible from a seed, which is what lets a test assert
// that the recovered sum is byte-identical to the fault-free one.
//
// The package deliberately knows nothing about mpi types (mpi imports
// faults, not the reverse): the contract is OnSend(src, dst, tag, frame),
// returning the frames to deliver (zero when dropped, two when duplicated,
// corrupted copies when corruption fires), an optional delivery delay, and
// whether the sending rank must crash now.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// Class enumerates the injectable fault classes.
type Class int

const (
	// Drop discards the frame: the receiver never sees it.
	Drop Class = iota
	// Delay defers delivery by the rule's duration, breaking the
	// substrate's per-edge FIFO ordering.
	Delay
	// Duplicate delivers the frame twice.
	Duplicate
	// Corrupt flips 1-3 bits of the delivered copy, leaving the sender's
	// buffer untouched.
	Corrupt
	// Crash kills the sending rank at its After-th outgoing frame.
	Crash
)

var classNames = map[Class]string{
	Drop: "drop", Delay: "delay", Duplicate: "dup", Corrupt: "corrupt", Crash: "crash",
}

func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// AnyRank matches every rank (or tag) in a Rule pattern.
const AnyRank = -1

// Rule is one fault clause of a Plan.
type Rule struct {
	Class Class
	// Prob is the per-frame firing probability in (0, 1] for Drop, Delay,
	// Duplicate, and Corrupt rules. Crash rules ignore it.
	Prob float64
	// Src, Dst restrict the rule to frames on matching edges; AnyRank
	// matches all. Crash rules use Rank instead.
	Src, Dst int
	// HasTag restricts the rule to frames with exactly tag Tag (internal
	// collective tags are negative and matchable).
	HasTag bool
	Tag    int
	// Delay is the delivery deferral for Delay rules.
	Delay time.Duration
	// Rank and After configure Crash rules: rank Rank panics on its
	// (After+1)-th outgoing frame, counted across all edges (acks and
	// retransmissions included).
	Rank  int
	After int
	// Limit caps how many times the rule fires across the whole run;
	// 0 means unlimited. Firings are counted in global arrival order.
	Limit int
}

func (r Rule) matches(src, dst, tag int) bool {
	if r.Src != AnyRank && r.Src != src {
		return false
	}
	if r.Dst != AnyRank && r.Dst != dst {
		return false
	}
	if r.HasTag && r.Tag != tag {
		return false
	}
	return true
}

// String renders the rule in the ParsePlan clause syntax.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Class.String())
	sep := byte(':')
	field := func(k, v string) {
		b.WriteByte(sep)
		sep = ','
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	if r.Class == Crash {
		field("rank", strconv.Itoa(r.Rank))
		field("after", strconv.Itoa(r.After))
	} else {
		field("p", strconv.FormatFloat(r.Prob, 'g', -1, 64))
		if r.Src != AnyRank {
			field("src", strconv.Itoa(r.Src))
		}
		if r.Dst != AnyRank {
			field("dst", strconv.Itoa(r.Dst))
		}
		if r.HasTag {
			field("tag", strconv.Itoa(r.Tag))
		}
		if r.Class == Delay {
			field("d", r.Delay.String())
		}
	}
	if r.Limit > 0 {
		field("limit", strconv.Itoa(r.Limit))
	}
	return b.String()
}

// Plan is a seeded set of fault rules, the parsed form of a -fault-plan
// flag value.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// String renders the plan in ParsePlan syntax; ParsePlan(p.String()) is
// equivalent to p.
func (p *Plan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	for _, r := range p.Rules {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, ";")
}

// ParsePlan parses the -fault-plan syntax: semicolon-separated clauses,
// optionally starting with seed=N, each remaining clause
// class:key=val[,key=val...] with class one of drop, delay, dup, corrupt,
// crash. Examples:
//
//	seed=42;drop:p=0.1
//	delay:p=0.5,d=2ms,src=0,dst=1
//	corrupt:p=0.3,tag=7;crash:rank=3,after=10
//	drop:src=2,dst=0,limit=1          (p defaults to 1: a targeted, certain fault)
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{Seed: 1}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed in %q: %v", clause, err)
			}
			p.Seed = seed
			continue
		}
		name, params, _ := strings.Cut(clause, ":")
		rule := Rule{Prob: 1, Src: AnyRank, Dst: AnyRank, Rank: AnyRank}
		switch strings.TrimSpace(name) {
		case "drop":
			rule.Class = Drop
		case "delay":
			rule.Class = Delay
			rule.Delay = time.Millisecond
		case "dup", "duplicate":
			rule.Class = Duplicate
		case "corrupt":
			rule.Class = Corrupt
		case "crash":
			rule.Class = Crash
		default:
			return nil, fmt.Errorf("faults: unknown fault class %q (want drop, delay, dup, corrupt, or crash)", name)
		}
		if params != "" {
			for _, kv := range strings.Split(params, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("faults: malformed parameter %q in %q", kv, clause)
				}
				if err := setRuleParam(&rule, strings.TrimSpace(k), strings.TrimSpace(v)); err != nil {
					return nil, fmt.Errorf("faults: %v in %q", err, clause)
				}
			}
		}
		if err := validateRule(rule); err != nil {
			return nil, fmt.Errorf("faults: %v in %q", err, clause)
		}
		p.Rules = append(p.Rules, rule)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("faults: plan %q has no fault clauses", s)
	}
	return p, nil
}

func setRuleParam(r *Rule, k, v string) error {
	atoi := func() (int, error) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("bad %s %q", k, v)
		}
		return n, nil
	}
	switch k {
	case "p":
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("bad probability %q", v)
		}
		r.Prob = f
	case "src":
		n, err := atoi()
		if err != nil {
			return err
		}
		r.Src = n
	case "dst":
		n, err := atoi()
		if err != nil {
			return err
		}
		r.Dst = n
	case "tag":
		n, err := atoi()
		if err != nil {
			return err
		}
		r.HasTag, r.Tag = true, n
	case "d", "delay":
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("bad duration %q", v)
		}
		r.Delay = d
	case "rank":
		n, err := atoi()
		if err != nil {
			return err
		}
		r.Rank = n
	case "after":
		n, err := atoi()
		if err != nil {
			return err
		}
		r.After = n
	case "limit":
		n, err := atoi()
		if err != nil {
			return err
		}
		r.Limit = n
	default:
		return fmt.Errorf("unknown parameter %q", k)
	}
	return nil
}

func validateRule(r Rule) error {
	if r.Class == Crash {
		if r.Rank < 0 {
			return fmt.Errorf("crash rule needs rank=N (N >= 0)")
		}
		if r.After < 0 {
			return fmt.Errorf("crash after=%d must be >= 0", r.After)
		}
		return nil
	}
	if r.Prob <= 0 || r.Prob > 1 {
		return fmt.Errorf("probability %g outside (0, 1]", r.Prob)
	}
	if r.Class == Delay && r.Delay <= 0 {
		return fmt.Errorf("delay %v must be positive", r.Delay)
	}
	return nil
}

// Decision is the injector's verdict on one outgoing frame.
type Decision struct {
	// Crash: the sending rank must terminate immediately; Frames is empty.
	Crash bool
	// Delay defers delivery of Frames by this duration (0 = immediate).
	Delay time.Duration
	// Frames are the byte buffers to enqueue at the receiver: empty when
	// the frame was dropped, two entries when duplicated. Each entry is
	// either the original slice or a fresh copy — never an alias of
	// another entry.
	Frames [][]byte
}

// Injector applies a Plan to a stream of frames. It is safe for concurrent
// use by the ranks of one world; decisions on each (src, dst) edge are
// drawn from that edge's own deterministic stream.
type Injector struct {
	plan *Plan

	mu    sync.Mutex
	edges map[[2]int]*rng.Source
	fired []uint64 // per-rule firing counts
	sends []uint64 // per-src outgoing frame counts, grown on demand
}

// New returns an injector for plan. A nil plan yields a pass-through
// injector (every frame delivered unmodified).
func New(plan *Plan) *Injector {
	inj := &Injector{plan: plan, edges: make(map[[2]int]*rng.Source)}
	if plan != nil {
		inj.fired = make([]uint64, len(plan.Rules))
	}
	return inj
}

// Parse is ParsePlan followed by New.
func Parse(s string) (*Injector, error) {
	plan, err := ParsePlan(s)
	if err != nil {
		return nil, err
	}
	return New(plan), nil
}

// Plan returns the injector's plan (nil for a pass-through injector).
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// edgeStream returns the decision stream for edge (src, dst), creating it
// deterministically from the plan seed on first use.
func (in *Injector) edgeStream(src, dst int) *rng.Source {
	key := [2]int{src, dst}
	st := in.edges[key]
	if st == nil {
		// Mix the edge into the seed; rng.New scrambles via splitmix64.
		st = rng.New(in.plan.Seed ^ (uint64(src+1)<<32 | uint64(dst+1)))
		in.edges[key] = st
	}
	return st
}

func (in *Injector) underLimit(i int) bool {
	limit := in.plan.Rules[i].Limit
	return limit == 0 || in.fired[i] < uint64(limit)
}

// OnSend decides the fate of one outgoing frame. The returned Decision's
// Frames either reference frame itself (pass-through) or fresh copies; the
// caller must treat every returned buffer as owned by the receiver.
func (in *Injector) OnSend(src, dst, tag int, frame []byte) Decision {
	if in == nil || in.plan == nil {
		return Decision{Frames: [][]byte{frame}}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for len(in.sends) <= src {
		in.sends = append(in.sends, 0)
	}
	in.sends[src]++
	// Crash rules trigger on the sender's cumulative frame count, before
	// any per-edge draws, so a crash point is independent of edge traffic.
	for i, r := range in.plan.Rules {
		if r.Class == Crash && r.Rank == src && in.sends[src] > uint64(r.After) && in.underLimit(i) {
			in.fired[i]++
			mCrashes.Inc()
			return Decision{Crash: true}
		}
	}
	st := in.edgeStream(src, dst)
	var d Decision
	var dropped, duplicated, corrupted bool
	for i, r := range in.plan.Rules {
		if r.Class == Crash || !r.matches(src, dst, tag) || !in.underLimit(i) {
			continue
		}
		// One draw per candidate rule per frame keeps the edge stream
		// aligned regardless of which rules fire.
		if st.Float64() >= r.Prob {
			continue
		}
		in.fired[i]++
		switch r.Class {
		case Drop:
			dropped = true
			mDrops.Inc()
		case Delay:
			d.Delay = r.Delay
			mDelays.Inc()
		case Duplicate:
			duplicated = true
			mDuplicates.Inc()
		case Corrupt:
			corrupted = true
			mCorruptions.Inc()
		}
	}
	if dropped {
		return d // no frames: the message vanishes (delay moot)
	}
	out := frame
	if corrupted {
		out = CorruptBytes(st, append([]byte(nil), frame...))
	}
	d.Frames = [][]byte{out}
	if duplicated {
		d.Frames = append(d.Frames, append([]byte(nil), out...))
	}
	return d
}

// CorruptBytes flips 1-3 bits of buf in place at positions drawn from r,
// returning buf. It is exported so tests and fuzz seed corpora can produce
// the same corruptions the injector's corrupt mode does.
func CorruptBytes(r *rng.Source, buf []byte) []byte {
	if len(buf) == 0 {
		return buf
	}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		pos := r.Intn(len(buf))
		buf[pos] ^= 1 << (r.Uint64() % 8)
	}
	return buf
}

// Fired returns the number of times rule i has fired.
func (in *Injector) Fired(i int) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[i]
}

// TotalFired returns the total firing count across all rules.
func (in *Injector) TotalFired() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var total uint64
	for _, n := range in.fired {
		total += n
	}
	return total
}

// Summary returns "class=count" pairs for every rule that fired, sorted,
// for chaos-run reports.
func (in *Injector) Summary() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	counts := map[string]uint64{}
	for i, r := range in.plan.Rules {
		if in.fired[i] > 0 {
			counts[r.Class.String()] += in.fired[i]
		}
	}
	if len(counts) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, counts[k])
	}
	return strings.Join(parts, " ")
}

// CrashError is the error recorded for a rank killed by a Crash rule. The
// mpi substrate converts the injected panic into this error; surviving
// ranks are expected to recover, so a run whose only errors are
// CrashErrors still produced a valid (recovered) result.
type CrashError struct {
	Rank int
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("faults: rank %d crashed (injected)", e.Rank)
}

// OnlyCrashes reports whether err consists solely of injected rank crashes
// — the condition under which a chaos run's result is trustworthy despite
// a non-nil world error. It unwraps joined and wrapped errors.
func OnlyCrashes(err error) bool {
	if err == nil {
		return false
	}
	return onlyCrashes(err)
}

func onlyCrashes(err error) bool {
	if _, ok := err.(*CrashError); ok {
		return true
	}
	switch u := err.(type) {
	case interface{ Unwrap() []error }:
		errs := u.Unwrap()
		if len(errs) == 0 {
			return false
		}
		for _, e := range errs {
			if !onlyCrashes(e) {
				return false
			}
		}
		return true
	case interface{ Unwrap() error }:
		inner := u.Unwrap()
		return inner != nil && onlyCrashes(inner)
	}
	return false
}
