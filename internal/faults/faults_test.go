package faults

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/rng"
)

func mustPlan(t *testing.T, s string) *Plan {
	t.Helper()
	p, err := ParsePlan(s)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", s, err)
	}
	return p
}

func TestParsePlan(t *testing.T) {
	p := mustPlan(t, "seed=42;drop:p=0.1;delay:p=0.5,d=2ms,src=0,dst=1;dup:p=0.2;corrupt:p=0.3,tag=7;crash:rank=3,after=10")
	if p.Seed != 42 {
		t.Errorf("seed = %d", p.Seed)
	}
	if len(p.Rules) != 5 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	d := p.Rules[1]
	if d.Class != Delay || d.Delay != 2*time.Millisecond || d.Src != 0 || d.Dst != 1 {
		t.Errorf("delay rule = %+v", d)
	}
	c := p.Rules[3]
	if c.Class != Corrupt || !c.HasTag || c.Tag != 7 {
		t.Errorf("corrupt rule = %+v", c)
	}
	cr := p.Rules[4]
	if cr.Class != Crash || cr.Rank != 3 || cr.After != 10 {
		t.Errorf("crash rule = %+v", cr)
	}
	// Probability defaults to 1 for targeted deterministic faults.
	one := mustPlan(t, "drop:src=2,dst=0,limit=1")
	if r := one.Rules[0]; r.Prob != 1 || r.Limit != 1 {
		t.Errorf("default rule = %+v", r)
	}
}

func TestParsePlanStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"seed=42;drop:p=0.1",
		"seed=7;delay:p=0.5,src=0,dst=1,d=2ms;crash:rank=3,after=10",
		"seed=1;dup:p=0.25,tag=-3;corrupt:p=1,limit=2",
	} {
		p := mustPlan(t, s)
		q := mustPlan(t, p.String())
		if p.String() != q.String() {
			t.Errorf("round trip changed %q -> %q", p.String(), q.String())
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, s := range []string{
		"",                      // no clauses
		"seed=42",               // seed only
		"explode:p=0.5",         // unknown class
		"drop:p=0",              // p out of range
		"drop:p=1.5",            // p out of range
		"drop:p=x",              // bad float
		"drop:frequency=1",      // unknown key
		"drop:p",                // malformed kv
		"delay:p=0.5,d=-1ms",    // non-positive delay
		"delay:p=0.5,d=fast",    // bad duration
		"crash:after=2",         // crash without rank
		"crash:rank=-2",         // negative rank
		"crash:rank=1,after=-1", // negative after
		"seed=nope;drop:p=0.5",  // bad seed
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted", s)
		}
	}
}

// callSeq replays a fixed send sequence through an injector and returns a
// fingerprint of every decision.
func callSeq(in *Injector) string {
	var buf bytes.Buffer
	frame := []byte("payload-payload-payload")
	for i := 0; i < 200; i++ {
		src, dst := i%3, (i+1)%3
		d := in.OnSend(src, dst, 5, append([]byte(nil), frame...))
		fmt.Fprintf(&buf, "%d:%v:%v:%d", i, d.Crash, d.Delay, len(d.Frames))
		for _, f := range d.Frames {
			fmt.Fprintf(&buf, ":%x", f)
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}

func TestInjectorDeterministic(t *testing.T) {
	const plan = "seed=99;drop:p=0.2;delay:p=0.1,d=1ms;dup:p=0.2;corrupt:p=0.2"
	a, err := Parse(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Parse(plan)
	if callSeq(a) != callSeq(b) {
		t.Error("identical plans and call sequences produced different decisions")
	}
	c, _ := Parse("seed=100;drop:p=0.2;delay:p=0.1,d=1ms;dup:p=0.2;corrupt:p=0.2")
	if callSeq(a) == callSeq(c) {
		t.Error("different seeds produced identical decisions")
	}
}

func TestInjectorDropDupDelayCorrupt(t *testing.T) {
	frame := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	drop := New(mustPlan(t, "drop:p=1"))
	if d := drop.OnSend(0, 1, 0, frame); len(d.Frames) != 0 {
		t.Errorf("drop delivered %d frames", len(d.Frames))
	}
	dup := New(mustPlan(t, "dup:p=1"))
	if d := dup.OnSend(0, 1, 0, frame); len(d.Frames) != 2 {
		t.Errorf("dup delivered %d frames", len(d.Frames))
	} else if !bytes.Equal(d.Frames[0], d.Frames[1]) {
		t.Error("duplicate differs from original")
	} else if &d.Frames[0][0] == &d.Frames[1][0] {
		t.Error("duplicate aliases original")
	}
	del := New(mustPlan(t, "delay:p=1,d=3ms"))
	if d := del.OnSend(0, 1, 0, frame); d.Delay != 3*time.Millisecond || len(d.Frames) != 1 {
		t.Errorf("delay decision = %+v", d)
	}
	orig := append([]byte(nil), frame...)
	cor := New(mustPlan(t, "corrupt:p=1"))
	d := cor.OnSend(0, 1, 0, frame)
	if len(d.Frames) != 1 || bytes.Equal(d.Frames[0], orig) {
		t.Error("corruption did not change the delivered frame")
	}
	if !bytes.Equal(frame, orig) {
		t.Error("corruption mutated the sender's buffer")
	}
}

func TestInjectorEdgeTargeting(t *testing.T) {
	in := New(mustPlan(t, "drop:p=1,src=1,dst=2"))
	if d := in.OnSend(0, 2, 0, []byte{1}); len(d.Frames) != 1 {
		t.Error("rule fired on non-matching src")
	}
	if d := in.OnSend(1, 0, 0, []byte{1}); len(d.Frames) != 1 {
		t.Error("rule fired on non-matching dst")
	}
	if d := in.OnSend(1, 2, 0, []byte{1}); len(d.Frames) != 0 {
		t.Error("rule did not fire on matching edge")
	}
	tagged := New(mustPlan(t, "drop:p=1,tag=7"))
	if d := tagged.OnSend(0, 1, 6, []byte{1}); len(d.Frames) != 1 {
		t.Error("tag rule fired on wrong tag")
	}
	if d := tagged.OnSend(0, 1, 7, []byte{1}); len(d.Frames) != 0 {
		t.Error("tag rule did not fire on its tag")
	}
}

func TestInjectorLimit(t *testing.T) {
	in := New(mustPlan(t, "drop:p=1,limit=2"))
	dropped := 0
	for i := 0; i < 10; i++ {
		if d := in.OnSend(0, 1, 0, []byte{1}); len(d.Frames) == 0 {
			dropped++
		}
	}
	if dropped != 2 {
		t.Errorf("limit=2 rule dropped %d frames", dropped)
	}
	if in.Fired(0) != 2 || in.TotalFired() != 2 {
		t.Errorf("fired counts = %d/%d", in.Fired(0), in.TotalFired())
	}
}

func TestInjectorCrashAfter(t *testing.T) {
	in := New(mustPlan(t, "crash:rank=1,after=2"))
	for i := 0; i < 5; i++ {
		if d := in.OnSend(0, 1, 0, []byte{1}); d.Crash {
			t.Fatal("crash fired for wrong rank")
		}
	}
	for i := 0; i < 2; i++ {
		if d := in.OnSend(1, 0, 0, []byte{1}); d.Crash {
			t.Fatalf("crashed on send %d, want after 2", i+1)
		}
	}
	if d := in.OnSend(1, 0, 0, []byte{1}); !d.Crash {
		t.Fatal("did not crash on the third send")
	}
	if in.Summary() != "crash=1" {
		t.Errorf("summary = %q", in.Summary())
	}
}

func TestNilInjectorPassThrough(t *testing.T) {
	var in *Injector
	frame := []byte{9, 9}
	d := in.OnSend(0, 1, 0, frame)
	if len(d.Frames) != 1 || &d.Frames[0][0] != &frame[0] || d.Crash || d.Delay != 0 {
		t.Errorf("nil injector decision = %+v", d)
	}
}

func TestCorruptBytes(t *testing.T) {
	r := rng.New(5)
	orig := bytes.Repeat([]byte{0xAA}, 64)
	got := CorruptBytes(r, append([]byte(nil), orig...))
	if bytes.Equal(got, orig) {
		t.Error("CorruptBytes changed nothing")
	}
	// Deterministic for a fixed stream.
	again := CorruptBytes(rng.New(5), append([]byte(nil), orig...))
	if !bytes.Equal(got, again) {
		t.Error("CorruptBytes not deterministic")
	}
	if out := CorruptBytes(r, nil); out != nil {
		t.Error("empty buffer grew")
	}
}

func TestOnlyCrashes(t *testing.T) {
	crash := &CrashError{Rank: 2}
	if !OnlyCrashes(crash) {
		t.Error("single crash rejected")
	}
	if !OnlyCrashes(errors.Join(crash, &CrashError{Rank: 0})) {
		t.Error("joined crashes rejected")
	}
	if !OnlyCrashes(fmt.Errorf("wrapped: %w", crash)) {
		t.Error("wrapped crash rejected")
	}
	if OnlyCrashes(nil) {
		t.Error("nil accepted")
	}
	if OnlyCrashes(errors.New("boom")) {
		t.Error("plain error accepted")
	}
	if OnlyCrashes(errors.Join(crash, errors.New("boom"))) {
		t.Error("mixed join accepted")
	}
}

// FuzzParsePlan: arbitrary strings either parse into a plan whose String
// form re-parses equivalently, or fail cleanly — never panic.
func FuzzParsePlan(f *testing.F) {
	f.Add("seed=42;drop:p=0.1")
	f.Add("delay:p=0.5,d=2ms,src=0,dst=1;crash:rank=3,after=10")
	f.Add("dup:p=1;corrupt:p=0.3,tag=7,limit=9")
	f.Add(";;;")
	f.Add("drop:p=1e309")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			return
		}
		q, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", p.String(), err)
		}
		if p.String() != q.String() {
			t.Fatalf("canonical form unstable: %q -> %q", p.String(), q.String())
		}
	})
}
