package faults

import "repro/internal/telemetry"

// Every injected fault is counted, so a chaos run's /metrics snapshot
// records exactly how much adversity the substrate absorbed alongside the
// mpi_* detection/recovery counters.
var (
	mDrops = telemetry.NewCounter("faults_dropped_total",
		"Frames discarded by the fault injector's drop rules.")
	mDelays = telemetry.NewCounter("faults_delayed_total",
		"Frames whose delivery the fault injector deferred.")
	mDuplicates = telemetry.NewCounter("faults_duplicated_total",
		"Frames the fault injector delivered twice.")
	mCorruptions = telemetry.NewCounter("faults_corrupted_total",
		"Frames the fault injector bit-flipped before delivery.")
	mCrashes = telemetry.NewCounter("faults_crashes_total",
		"Rank crashes triggered by the fault injector.")
	mReplicaLies = telemetry.NewCounter("faults_replica_lies_total",
		"Replica reports the injector corrupted (lie and equivocate rules).")
	mReplicaReplays = telemetry.NewCounter("faults_replica_replays_total",
		"Replica reports the injector replaced with frozen stale state (replay rules).")
)
