package faults

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/rng"
)

// Replica fault rules model Byzantine replicas in the k-of-n certified
// serving layer (internal/server): a replica whose *reported* state is wrong
// even though the substrate delivered every frame faithfully. The injector
// sits on the replica's report path — it rewrites the canonical HP envelope
// a replica hands to the certifier — so a test or a chaos daemon can make a
// replica lie, equivocate, or replay stale state without touching the
// accumulator engine itself. Decisions are deterministic in the plan seed
// and the per-replica report index, matching the package's reproducibility
// contract: the same plan produces the same corruptions on every run.

// ReplicaClass enumerates the Byzantine replica fault classes.
type ReplicaClass int

const (
	// Lie corrupts the reported HP envelope once per firing (1-3 bit flips
	// via CorruptBytes), so the replica's digest disagrees with its peers.
	Lie ReplicaClass = iota
	// Equivocate alternates honest and corrupted reports, so the replica
	// tells different stories to successive reads.
	Equivocate
	// Replay freezes the replica's first in-window report and returns that
	// stale envelope forever after, as if the replica lost every frame since.
	Replay
)

var replicaClassNames = map[ReplicaClass]string{
	Lie: "lie", Equivocate: "equivocate", Replay: "replay",
}

func (c ReplicaClass) String() string {
	if s, ok := replicaClassNames[c]; ok {
		return s
	}
	return fmt.Sprintf("ReplicaClass(%d)", int(c))
}

// AnyReplica matches every replica in a ReplicaRule.
const AnyReplica = -1

// ReplicaRule is one fault clause of a ReplicaPlan.
type ReplicaRule struct {
	Class ReplicaClass
	// Replica restricts the rule to one replica id; AnyReplica matches all.
	Replica int
	// After is how many reports the targeted replica answers honestly
	// before the rule arms (0 = armed from the first report).
	After int
	// Limit caps how many reports the rule corrupts; 0 means unlimited.
	// Replay ignores it (a frozen replica stays frozen).
	Limit int
}

func (r ReplicaRule) matches(replica int) bool {
	return r.Replica == AnyReplica || r.Replica == replica
}

// String renders the rule in ParseReplicaPlan clause syntax.
func (r ReplicaRule) String() string {
	var b strings.Builder
	b.WriteString(r.Class.String())
	sep := byte(':')
	field := func(k, v string) {
		b.WriteByte(sep)
		sep = ','
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	if r.Replica != AnyReplica {
		field("replica", strconv.Itoa(r.Replica))
	}
	if r.After > 0 {
		field("after", strconv.Itoa(r.After))
	}
	if r.Limit > 0 {
		field("limit", strconv.Itoa(r.Limit))
	}
	return b.String()
}

// ReplicaPlan is a seeded set of replica fault rules, the parsed form of a
// -replica-fault-plan flag value.
type ReplicaPlan struct {
	Seed  uint64
	Rules []ReplicaRule
}

// String renders the plan in ParseReplicaPlan syntax;
// ParseReplicaPlan(p.String()) is equivalent to p.
func (p *ReplicaPlan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	for _, r := range p.Rules {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, ";")
}

// ParseReplicaPlan parses the -replica-fault-plan syntax, mirroring
// ParsePlan: semicolon-separated clauses, optionally starting with seed=N,
// each remaining clause class:key=val[,key=val...] with class one of lie,
// equivocate, replay. Examples:
//
//	seed=7;lie:replica=1,limit=1
//	equivocate:replica=0,after=2
//	replay:replica=2,after=1
func ParseReplicaPlan(s string) (*ReplicaPlan, error) {
	p := &ReplicaPlan{Seed: 1}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed in %q: %v", clause, err)
			}
			p.Seed = seed
			continue
		}
		name, params, _ := strings.Cut(clause, ":")
		rule := ReplicaRule{Replica: AnyReplica}
		switch strings.TrimSpace(name) {
		case "lie":
			rule.Class = Lie
		case "equivocate":
			rule.Class = Equivocate
		case "replay":
			rule.Class = Replay
		default:
			return nil, fmt.Errorf("faults: unknown replica fault class %q (want lie, equivocate, or replay)", name)
		}
		if params != "" {
			for _, kv := range strings.Split(params, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("faults: malformed parameter %q in %q", kv, clause)
				}
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil {
					return nil, fmt.Errorf("faults: bad %s %q in %q", k, v, clause)
				}
				switch strings.TrimSpace(k) {
				case "replica":
					rule.Replica = n
				case "after":
					rule.After = n
				case "limit":
					rule.Limit = n
				default:
					return nil, fmt.Errorf("faults: unknown parameter %q in %q", k, clause)
				}
			}
		}
		if rule.After < 0 || rule.Limit < 0 || (rule.Replica != AnyReplica && rule.Replica < 0) {
			return nil, fmt.Errorf("faults: negative parameter in %q", clause)
		}
		p.Rules = append(p.Rules, rule)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("faults: replica plan %q has no fault clauses", s)
	}
	return p, nil
}

// replicaState is the injector's per-replica bookkeeping.
type replicaState struct {
	reports uint64 // reports answered so far (honest or not)
	rng     *rng.Source
	frozen  []byte // Replay: the cached stale envelope
}

// ReplicaInjector applies a ReplicaPlan to the report stream of a replica
// set. Safe for concurrent use; each replica's corruption stream is
// deterministic in (plan seed, replica id, report index).
type ReplicaInjector struct {
	plan *ReplicaPlan

	mu       sync.Mutex
	replicas map[int]*replicaState
	fired    []uint64 // per-rule firing counts
}

// NewReplicaInjector compiles the plan into a live injector.
func (p *ReplicaPlan) NewReplicaInjector() *ReplicaInjector {
	return &ReplicaInjector{
		plan:     p,
		replicas: make(map[int]*replicaState),
		fired:    make([]uint64, len(p.Rules)),
	}
}

// Fired returns how many times rule i has corrupted a report.
func (ri *ReplicaInjector) Fired(i int) uint64 {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.fired[i]
}

// OnReport evaluates the plan against one replica report. env is the
// replica's canonical HP envelope; the returned slice is either env itself
// (honest report) or a fresh corrupted/stale copy — the caller's buffer is
// never modified in place.
func (ri *ReplicaInjector) OnReport(replica int, env []byte) []byte {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	st := ri.replicas[replica]
	if st == nil {
		st = &replicaState{rng: rng.New(ri.plan.Seed ^ (uint64(replica)+1)*0x9e3779b97f4a7c15)}
		ri.replicas[replica] = st
	}
	idx := st.reports
	st.reports++
	out := env
	for i, rule := range ri.plan.Rules {
		if !rule.matches(replica) || idx < uint64(rule.After) {
			continue
		}
		switch rule.Class {
		case Lie:
			if rule.Limit > 0 && ri.fired[i] >= uint64(rule.Limit) {
				continue
			}
			out = CorruptBytes(st.rng, append([]byte(nil), out...))
			ri.fired[i]++
			mReplicaLies.Inc()
		case Equivocate:
			// Corrupt every other in-window report: reads i, i+2, ... get a
			// different story than reads i+1, i+3, ...
			if (idx-uint64(rule.After))%2 != 0 {
				continue
			}
			if rule.Limit > 0 && ri.fired[i] >= uint64(rule.Limit) {
				continue
			}
			out = CorruptBytes(st.rng, append([]byte(nil), out...))
			ri.fired[i]++
			mReplicaLies.Inc()
		case Replay:
			if st.frozen == nil {
				// First in-window report: freeze the honest state, answer
				// truthfully this once so there is something stale to replay.
				st.frozen = append([]byte(nil), out...)
				continue
			}
			out = append([]byte(nil), st.frozen...)
			ri.fired[i]++
			mReplicaReplays.Inc()
		}
	}
	return out
}
