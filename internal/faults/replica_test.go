package faults

import (
	"bytes"
	"testing"
)

func TestParseReplicaPlanRoundTrip(t *testing.T) {
	cases := []string{
		"seed=7;lie:replica=1,limit=1",
		"seed=1;equivocate:replica=0,after=2",
		"seed=1;replay:replica=2,after=1",
		"seed=9;lie;equivocate:after=3,limit=2",
	}
	for _, s := range cases {
		p, err := ParseReplicaPlan(s)
		if err != nil {
			t.Fatalf("ParseReplicaPlan(%q): %v", s, err)
		}
		p2, err := ParseReplicaPlan(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if p.String() != p2.String() {
			t.Fatalf("round trip %q -> %q -> %q", s, p.String(), p2.String())
		}
	}
}

func TestParseReplicaPlanRejects(t *testing.T) {
	for _, s := range []string{
		"", "seed=1", "drop:p=1", "lie:replica=x", "lie:bogus=1",
		"lie:after=-1", "seed=zzz;lie",
	} {
		if _, err := ParseReplicaPlan(s); err == nil {
			t.Fatalf("plan %q accepted", s)
		}
	}
}

func TestReplicaLieFiresOnceWithLimit(t *testing.T) {
	p, err := ParseReplicaPlan("seed=3;lie:replica=1,limit=1")
	if err != nil {
		t.Fatal(err)
	}
	ri := p.NewReplicaInjector()
	env := bytes.Repeat([]byte{0xAA}, 53)

	// Untargeted replica is always honest (same slice back).
	for i := 0; i < 5; i++ {
		if got := ri.OnReport(0, env); !bytes.Equal(got, env) {
			t.Fatalf("replica 0 report %d corrupted", i)
		}
	}
	// Targeted replica lies exactly once, with a fresh buffer.
	first := ri.OnReport(1, env)
	if bytes.Equal(first, env) {
		t.Fatal("lie rule did not corrupt the first report")
	}
	if bytes.Equal(env, bytes.Repeat([]byte{0xAA}, 53)) == false {
		t.Fatal("caller's buffer was modified in place")
	}
	if got := ri.OnReport(1, env); !bytes.Equal(got, env) {
		t.Fatal("lie fired past its limit")
	}
	if ri.Fired(0) != 1 {
		t.Fatalf("fired %d, want 1", ri.Fired(0))
	}
}

func TestReplicaEquivocateAlternates(t *testing.T) {
	p, err := ParseReplicaPlan("seed=5;equivocate:replica=0")
	if err != nil {
		t.Fatal(err)
	}
	ri := p.NewReplicaInjector()
	env := bytes.Repeat([]byte{0x42}, 53)
	a := ri.OnReport(0, env) // corrupted
	b := ri.OnReport(0, env) // honest
	c := ri.OnReport(0, env) // corrupted (differently seeded draw)
	if bytes.Equal(a, env) {
		t.Fatal("first report should be corrupted")
	}
	if !bytes.Equal(b, env) {
		t.Fatal("second report should be honest")
	}
	if bytes.Equal(c, env) {
		t.Fatal("third report should be corrupted")
	}
	if bytes.Equal(a, c) {
		t.Fatal("equivocation should draw fresh corruptions")
	}
}

func TestReplicaReplayFreezesState(t *testing.T) {
	p, err := ParseReplicaPlan("seed=2;replay:replica=1,after=1")
	if err != nil {
		t.Fatal(err)
	}
	ri := p.NewReplicaInjector()
	s1 := []byte("state-1")
	s2 := []byte("state-2")
	s3 := []byte("state-3")
	if got := ri.OnReport(1, s1); !bytes.Equal(got, s1) {
		t.Fatal("report before the window must be honest")
	}
	if got := ri.OnReport(1, s2); !bytes.Equal(got, s2) {
		t.Fatal("first in-window report freezes but stays honest")
	}
	if got := ri.OnReport(1, s3); !bytes.Equal(got, s2) {
		t.Fatalf("replayed %q, want frozen %q", got, s2)
	}
	if got := ri.OnReport(1, s3); !bytes.Equal(got, s2) {
		t.Fatal("replay must persist")
	}
}

func TestReplicaInjectorDeterminism(t *testing.T) {
	env := bytes.Repeat([]byte{0x11}, 53)
	run := func() [][]byte {
		p, err := ParseReplicaPlan("seed=13;lie:replica=0")
		if err != nil {
			t.Fatal(err)
		}
		ri := p.NewReplicaInjector()
		var out [][]byte
		for i := 0; i < 4; i++ {
			out = append(out, ri.OnReport(0, env))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("report %d differs across identically seeded runs", i)
		}
	}
}
