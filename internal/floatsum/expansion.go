package floatsum

// Floating-point expansions (Priest 1991, paper ref. [19]; Shewchuk 1997):
// a number represented as an unevaluated sum of nonoverlapping float64
// components, ordered by increasing magnitude. Growing an expansion by one
// value is exact, so an expansion-based accumulator is another EXACT
// summation scheme — but unlike the fixed-point methods its size can grow
// with the data's dynamic range, and its component layout (though not its
// value) depends on input order, which is why the paper's fixed-size
// integer representation wins for parallel reduction. It is implemented
// here as the remaining member of the exact-summation design space.

// Expansion is a nonoverlapping, increasing-magnitude list of components.
// The zero value is an empty expansion representing 0.
type Expansion struct {
	comp []float64
}

// NewExpansion returns an empty expansion.
func NewExpansion() *Expansion { return &Expansion{} }

// Len returns the number of components.
func (e *Expansion) Len() int { return len(e.comp) }

// Components returns a copy of the component list (diagnostics/tests).
func (e *Expansion) Components() []float64 {
	out := make([]float64, len(e.comp))
	copy(out, e.comp)
	return out
}

// Add grows the expansion by x exactly (Shewchuk's GROW-EXPANSION):
// TwoSum x through every component, keeping the error terms.
func (e *Expansion) Add(x float64) {
	q := x
	out := e.comp[:0]
	for _, c := range e.comp {
		var err float64
		q, err = TwoSum(q, c)
		if err != 0 {
			out = append(out, err)
		}
	}
	if q != 0 {
		out = append(out, q)
	}
	e.comp = out
}

// AddAll grows the expansion by every element of xs.
func (e *Expansion) AddAll(xs []float64) {
	for _, x := range xs {
		e.Add(x)
	}
}

// AddExpansion adds another expansion exactly (EXPANSION-SUM).
func (e *Expansion) AddExpansion(f *Expansion) {
	for _, c := range f.comp {
		e.Add(c)
	}
}

// Compress renormalizes the expansion to its minimal nonoverlapping form
// (Shewchuk's COMPRESS), preserving the exact value. Afterwards the largest
// component is a faithful approximation of the total.
func (e *Expansion) Compress() {
	n := len(e.comp)
	if n < 2 {
		return
	}
	// Downward pass: absorb from largest to smallest.
	g := make([]float64, 0, n)
	q := e.comp[n-1]
	for i := n - 2; i >= 0; i-- {
		sum, err := FastTwoSum(q, e.comp[i])
		if err != 0 {
			g = append(g, sum) // sum is the new larger part
			q = err
		} else {
			q = sum
		}
	}
	// g holds larger parts in decreasing order; q is the smallest residue.
	// Upward pass: rebuild increasing-magnitude, nonoverlapping list.
	out := make([]float64, 0, len(g)+1)
	for i := len(g) - 1; i >= 0; i-- {
		sum, err := FastTwoSum(g[i], q)
		if err != 0 {
			out = append(out, err)
		}
		q = sum
	}
	if q != 0 {
		out = append(out, q)
	}
	e.comp = out
}

// Float64 returns the expansion's value rounded to one float64: after a
// compress, summing components smallest-first gives the faithfully rounded
// total.
func (e *Expansion) Float64() float64 {
	c := &Expansion{comp: append([]float64(nil), e.comp...)}
	c.Compress()
	s := 0.0
	for _, v := range c.comp {
		s += v
	}
	return s
}

// ExpansionSum returns the exact sum of xs via an expansion accumulator,
// rounded once at the end.
func ExpansionSum(xs []float64) float64 {
	e := NewExpansion()
	e.AddAll(xs)
	return e.Float64()
}
