package floatsum

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/rng"
)

// exactValue returns the exact rational value of an expansion via the
// oracle.
func expansionRatEquals(t *testing.T, e *Expansion, want *exact.Acc) bool {
	t.Helper()
	got := exact.New()
	got.AddAll(e.Components())
	return got.Rat().Cmp(want.Rat()) == 0
}

func TestExpansionGrowIsExact(t *testing.T) {
	r := rng.New(21)
	e := NewExpansion()
	oracle := exact.New()
	for i := 0; i < 2000; i++ {
		x := r.Exp2Uniform(-300, 300)
		e.Add(x)
		oracle.Add(x)
	}
	if !expansionRatEquals(t, e, oracle) {
		t.Error("expansion value diverged from oracle")
	}
}

func TestExpansionNonOverlappingAfterCompress(t *testing.T) {
	r := rng.New(22)
	e := NewExpansion()
	for i := 0; i < 500; i++ {
		e.Add(r.Exp2Uniform(-100, 100))
	}
	oracle := exact.New()
	oracle.AddAll(e.Components())
	e.Compress()
	if !expansionRatEquals(t, e, oracle) {
		t.Fatal("Compress changed the value")
	}
	comp := e.Components()
	// Increasing magnitude and nonoverlapping: each component is smaller
	// than the ulp of the next.
	for i := 0; i+1 < len(comp); i++ {
		if math.Abs(comp[i]) >= math.Abs(comp[i+1]) {
			t.Fatalf("components not increasing at %d: %g vs %g",
				i, comp[i], comp[i+1])
		}
	}
}

func TestExpansionFloat64FaithfulRounding(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 200; trial++ {
		xs := rng.ZeroSum(r, 256, 0.001)
		xs = append(xs, r.Exp2Uniform(-40, -20))
		e := NewExpansion()
		e.AddAll(xs)
		got := e.Float64()
		want := exact.Sum(xs)
		if got != want {
			// Faithful rounding allows 1 ulp; correctly rounded expected
			// in practice for these sizes.
			if math.Abs(got-want) > math.Abs(want)*1e-15 {
				t.Fatalf("trial %d: %g vs %g", trial, got, want)
			}
		}
	}
}

func TestExpansionCancellation(t *testing.T) {
	e := NewExpansion()
	e.Add(1e16)
	e.Add(1)
	e.Add(-1e16)
	if got := e.Float64(); got != 1 {
		t.Errorf("1e16 + 1 - 1e16 = %g, want 1", got)
	}
	// Exact cancellation empties the expansion.
	f := NewExpansion()
	f.Add(3.25)
	f.Add(-3.25)
	if f.Len() != 0 || f.Float64() != 0 {
		t.Errorf("exact cancellation left %d components", f.Len())
	}
}

func TestExpansionAddExpansion(t *testing.T) {
	r := rng.New(24)
	xs := rng.UniformSet(r, 1000, -1, 1)
	a := NewExpansion()
	a.AddAll(xs[:500])
	b := NewExpansion()
	b.AddAll(xs[500:])
	a.AddExpansion(b)
	oracle := exact.New()
	oracle.AddAll(xs)
	if !expansionRatEquals(t, a, oracle) {
		t.Error("AddExpansion diverged from oracle")
	}
}

func TestExpansionSizeGrowsWithDynamicRange(t *testing.T) {
	// The structural weakness the fixed-point methods avoid: components
	// accumulate with wide-range data.
	r := rng.New(25)
	e := NewExpansion()
	for i := 0; i < 200; i++ {
		e.Add(r.Exp2Uniform(-300, 300))
	}
	if e.Len() < 4 {
		t.Errorf("expected multi-component expansion, got %d", e.Len())
	}
	// Same-scale data stays compact.
	f := NewExpansion()
	for i := 0; i < 200; i++ {
		f.Add(r.Uniform(-1, 1))
	}
	if f.Len() > 8 {
		t.Errorf("same-scale expansion unexpectedly wide: %d", f.Len())
	}
}

func TestExpansionSumHelper(t *testing.T) {
	if got := ExpansionSum([]float64{0.1, 0.2, -0.3}); got != exact.Sum([]float64{0.1, 0.2, -0.3}) {
		t.Errorf("ExpansionSum = %g", got)
	}
	if got := ExpansionSum(nil); got != 0 {
		t.Errorf("ExpansionSum(nil) = %g", got)
	}
}
