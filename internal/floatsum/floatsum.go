// Package floatsum provides the conventional floating-point summation
// algorithms the paper compares against (plain double precision) plus the
// standard error-compensation techniques its related-work section surveys:
// Kahan and Neumaier compensated summation, pairwise (cascade) summation,
// and magnitude-sorted summation. All are order-DEPENDENT to varying
// degrees; they exist here to quantify the rounding error that the
// order-invariant methods eliminate.
package floatsum

import (
	"math"
	"sort"
)

// Naive returns the left-to-right floating-point sum of xs: the baseline
// whose error the paper's Figures 1 and 2 characterize.
func Naive(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// TwoSum is the Knuth error-free transformation: it returns s = fl(a+b) and
// the exact rounding error e such that a + b == s + e exactly.
func TwoSum(a, b float64) (s, e float64) {
	s = a + b
	bv := s - a
	e = (a - (s - bv)) + (b - bv)
	return s, e
}

// FastTwoSum is the Dekker error-free transformation, valid when |a| >= |b|:
// it returns s = fl(a+b) and the exact error e with one fewer operation.
func FastTwoSum(a, b float64) (s, e float64) {
	s = a + b
	e = b - (s - a)
	return s, e
}

// Kahan returns the Kahan compensated sum of xs, carrying a single running
// error term (Kahan 1965, paper ref. [15]).
func Kahan(xs []float64) float64 {
	var s, c float64
	for _, x := range xs {
		y := x - c
		t := s + y
		c = (t - s) - y
		s = t
	}
	return s
}

// Neumaier returns the improved Kahan-Babuska sum, which remains accurate
// when individual summands exceed the running sum in magnitude.
func Neumaier(xs []float64) float64 {
	var s, c float64
	for _, x := range xs {
		t := s + x
		if math.Abs(s) >= math.Abs(x) {
			c += (s - t) + x
		} else {
			c += (x - t) + s
		}
		s = t
	}
	return s + c
}

// Pairwise returns the cascade sum of xs: recursively splitting the input
// halves the error growth from O(n) to O(log n) (paper §I, "manipulating
// the summation order"). Blocks below pairwiseCutoff sum naively, as
// practical implementations do.
func Pairwise(xs []float64) float64 {
	const pairwiseCutoff = 64
	n := len(xs)
	if n <= pairwiseCutoff {
		return Naive(xs)
	}
	return Pairwise(xs[:n/2]) + Pairwise(xs[n/2:])
}

// SortedByMagnitude returns the sum of xs taken in increasing order of
// magnitude, the classical error-reduction ordering. It copies the input;
// the cost is the O(n log n) sort the paper calls "prohibitive at large
// scales" for distributed operands.
func SortedByMagnitude(xs []float64) float64 {
	ys := make([]float64, len(xs))
	copy(ys, xs)
	sort.Slice(ys, func(i, j int) bool {
		return math.Abs(ys[i]) < math.Abs(ys[j])
	})
	return Naive(ys)
}

// CompensatedPartials accumulates xs with TwoSum into a running sum plus an
// error accumulator and returns both; summing partial error terms across
// workers gives a cheap distributed compensated reduction.
func CompensatedPartials(xs []float64) (sum, err float64) {
	for _, x := range xs {
		var e float64
		sum, e = TwoSum(sum, x)
		err += e
	}
	return sum, err
}
