package floatsum

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/rng"
)

func TestNaiveBasic(t *testing.T) {
	if got := Naive([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Naive = %g", got)
	}
	if got := Naive(nil); got != 0 {
		t.Errorf("Naive(nil) = %g", got)
	}
}

type finitePair struct{ A, B float64 }

func (finitePair) Generate(r *rand.Rand, _ int) reflect.Value {
	g := func() float64 {
		x := math.Ldexp(1+r.Float64(), -500+r.Intn(1000))
		if r.Intn(2) == 1 {
			x = -x
		}
		return x
	}
	return reflect.ValueOf(finitePair{g(), g()})
}

// TwoSum is error-free: a + b == s + e exactly (verified with the oracle).
func TestPropTwoSumErrorFree(t *testing.T) {
	f := func(p finitePair) bool {
		s, e := TwoSum(p.A, p.B)
		if math.IsInf(s, 0) {
			return true // overflow voids the transform; out of scope
		}
		lhs := exact.New()
		lhs.AddAll([]float64{p.A, p.B})
		rhs := exact.New()
		rhs.AddAll([]float64{s, e})
		return lhs.Rat().Cmp(rhs.Rat()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FastTwoSum matches TwoSum whenever |a| >= |b|.
func TestPropFastTwoSum(t *testing.T) {
	f := func(p finitePair) bool {
		a, b := p.A, p.B
		if math.Abs(a) < math.Abs(b) {
			a, b = b, a
		}
		s1, e1 := TwoSum(a, b)
		s2, e2 := FastTwoSum(a, b)
		return s1 == s2 && e1 == e2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKahanRecoversLostBits(t *testing.T) {
	// 1 + 1e-16 repeated: naive loses everything, Kahan keeps it.
	xs := make([]float64, 1001)
	xs[0] = 1
	for i := 1; i <= 1000; i++ {
		xs[i] = 1e-16
	}
	want := 1 + 1000*1e-16
	if got := Kahan(xs); math.Abs(got-want) > 1e-18 {
		t.Errorf("Kahan = %.20g, want ~%.20g", got, want)
	}
	naive := Naive(xs)
	if math.Abs(naive-want) < math.Abs(Kahan(xs)-want) {
		t.Skip("naive happened to be accurate on this platform")
	}
}

func TestNeumaierBeatsKahanOnLargeSummand(t *testing.T) {
	// The classic Kahan failure: a summand much larger than the sum.
	xs := []float64{1, 1e100, 1, -1e100}
	if got := Neumaier(xs); got != 2 {
		t.Errorf("Neumaier = %g, want 2", got)
	}
	if got := Kahan(xs); got == 2 {
		t.Log("Kahan also got 2 on this input (platform-dependent)")
	}
}

func TestPairwiseMatchesNaiveOnExactData(t *testing.T) {
	// Integers sum exactly under any scheme.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	want := float64(999 * 1000 / 2)
	for name, fn := range map[string]func([]float64) float64{
		"Naive": Naive, "Kahan": Kahan, "Neumaier": Neumaier,
		"Pairwise": Pairwise, "Sorted": SortedByMagnitude,
	} {
		if got := fn(xs); got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
}

// Compensated methods must be at least as accurate as naive summation on
// the paper's zero-sum workload, and the error ranking naive >= pairwise
// >= compensated should hold on average.
func TestAccuracyRanking(t *testing.T) {
	r := rng.New(31)
	var naiveErr, pairErr, kahanErr, neumErr float64
	const trials = 50
	for i := 0; i < trials; i++ {
		xs := rng.ZeroSum(r, 4096, 0.001)
		naiveErr += math.Abs(Naive(xs))
		pairErr += math.Abs(Pairwise(xs))
		kahanErr += math.Abs(Kahan(xs))
		neumErr += math.Abs(Neumaier(xs))
	}
	if kahanErr > naiveErr {
		t.Errorf("Kahan total error %g > naive %g", kahanErr, naiveErr)
	}
	if neumErr > naiveErr {
		t.Errorf("Neumaier total error %g > naive %g", neumErr, naiveErr)
	}
	if pairErr > naiveErr {
		t.Errorf("pairwise total error %g > naive %g", pairErr, naiveErr)
	}
}

// CompensatedPartials: sum + err equals the exact sum far more closely than
// the naive result, and the pair is combinable across splits.
func TestCompensatedPartials(t *testing.T) {
	r := rng.New(32)
	xs := rng.UniformSet(r, 10000, -0.5, 0.5)
	want := exact.Sum(xs)
	s, e := CompensatedPartials(xs)
	if got := s + e; math.Abs(got-want) > 1e-12*math.Abs(want)+1e-18 {
		t.Errorf("compensated = %.20g, want %.20g", got, want)
	}
	// Split in two and combine.
	s1, e1 := CompensatedPartials(xs[:5000])
	s2, e2 := CompensatedPartials(xs[5000:])
	combined := Neumaier([]float64{s1, s2, e1, e2})
	if math.Abs(combined-want) > 1e-12*math.Abs(want)+1e-18 {
		t.Errorf("split compensated = %.20g, want %.20g", combined, want)
	}
}

func TestSortedByMagnitudeDoesNotMutate(t *testing.T) {
	xs := []float64{3, -1, 2}
	_ = SortedByMagnitude(xs)
	if xs[0] != 3 || xs[1] != -1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}
