package gossip

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/server"
)

// The acceptance property of the gossip layer: a 5-node cluster whose every
// frame crosses a fault injector (drops, duplicates, corruption) — and one
// of whose nodes crashes mid-ingest and restarts from its checkpoint under
// a bumped epoch — converges on every surviving node to a certified cluster
// read that is bit-identical across nodes AND bit-identical to a serial
// oracle over all values, proven by the SHA-256 envelope digest. Rank 0
// additionally journals its local ingest and must replay cleanly through
// the audit chain afterwards.

const (
	chaosNodes     = 5
	chaosAcc       = "chaos"
	chaosPerRank   = 120
	chaosCrashRank = 2
	chaosBatch     = 40
)

func chaosValues(r int) []float64 {
	return rng.UniformSet(rng.New(uint64(3000+r)), chaosPerRank, -1, 1)
}

// chaosOracle computes the reference HP text serially, outside every layer
// under test.
func chaosOracle(t *testing.T) string {
	t.Helper()
	var all []float64
	for r := 0; r < chaosNodes; r++ {
		all = append(all, chaosValues(r)...)
	}
	hp, err := core.SumHP(core.Params384, all)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := hp.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	return string(txt)
}

// swapSink routes Pump callbacks to whichever node is currently installed,
// so a crashed-and-restarted node takes over the same transport.
type swapSink struct{ p atomic.Pointer[Node] }

func (s *swapSink) Handle(frame []byte) error { return s.p.Load().Handle(frame) }
func (s *swapSink) NoteUnreachable(pr Peer)   { s.p.Load().NoteUnreachable(pr) }

// chaosBoard is the side channel the test uses to detect convergence: each
// rank publishes its latest cluster read, and convergence means every rank
// reports the full add count with one identical digest. It deliberately
// does not touch the gossip substrate — a rank that crashed simply stops
// publishing, holding convergence open until its successor catches up.
type chaosBoard struct {
	mu   sync.Mutex
	info map[int]ClusterInfo
}

func newChaosBoard() *chaosBoard {
	return &chaosBoard{info: make(map[int]ClusterInfo)}
}

func (b *chaosBoard) publish(rank int, info ClusterInfo) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.info[rank] = info
}

func (b *chaosBoard) converged(wantAdds uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.info) != chaosNodes {
		return false
	}
	first := b.info[0]
	for _, info := range b.info {
		if info.Adds != wantAdds || info.Digest == "" || info.Digest != first.Digest {
			return false
		}
	}
	return true
}

// chaosServer builds the local summation engine for one rank.
func chaosServer(t *testing.T, auditDir string) (*server.Server, *server.Accumulator) {
	t.Helper()
	s := server.New(server.Config{Shards: 2, Replicas: 3, Quorum: 2})
	if auditDir != "" {
		if err := os.MkdirAll(auditDir, 0o755); err != nil {
			t.Fatal(err)
		}
		jpath := filepath.Join(auditDir, "frames.hpfj")
		lpath := filepath.Join(auditDir, "audit.hpal")
		if err := s.EnableAudit(jpath, lpath); err != nil {
			t.Fatal(err)
		}
	}
	acc, _, err := s.Create(chaosAcc, core.Params384)
	if err != nil {
		t.Fatal(err)
	}
	return s, acc
}

func chaosIngest(acc *server.Accumulator, xs []float64) error {
	for off := 0; off < len(xs); off += chaosBatch {
		end := off + chaosBatch
		if end > len(xs) {
			end = len(xs)
		}
		if err := acc.AddFloats(append([]float64(nil), xs[off:end]...)); err != nil {
			return err
		}
	}
	return nil
}

// awaitLocalAdds polls the engine until the quiescent checkpoint reflects
// every add — ingest is applied by shard workers, so a checkpoint cut
// immediately after AddFloats returns may lag by a batch.
func awaitLocalAdds(acc *server.Accumulator, want uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		_, adds, _, err := acc.Envelope()
		if err == nil && adds >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("local adds %d never reached %d (err=%v)", adds, want, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// pollConverged publishes this rank's cluster reads until the whole board
// converges (or the deadline passes).
func pollConverged(rank int, sink *swapSink, board *chaosBoard, wantAdds uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if info, err := sink.p.Load().ClusterRead(chaosAcc); err == nil {
			board.publish(rank, info)
		}
		if board.converged(wantAdds) {
			return nil
		}
		if time.Now().After(deadline) {
			info, err := sink.p.Load().ClusterRead(chaosAcc)
			return fmt.Errorf("rank %d never converged: last read %+v (err=%v)", rank, info, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func chaosSeeds(self int) []Peer {
	var seeds []Peer
	for r := 0; r < chaosNodes; r++ {
		if r != self {
			seeds = append(seeds, MPIPeer(r))
		}
	}
	return seeds
}

func chaosNode(t *testing.T, rank int, epoch uint64, s *server.Server, tr Transport, recovery []byte) *Node {
	t.Helper()
	n, err := NewNode(Config{
		Self:      MPIPeer(rank),
		Epoch:     epoch,
		Params:    core.Params384,
		Seeds:     chaosSeeds(rank),
		Interval:  4 * time.Millisecond,
		Fanout:    2,
		Local:     ServerLocal{S: s},
		Transport: tr,
		Recovery:  recovery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// chaosRank is one rank's life: ingest, gossip, converge. The crash rank
// ingests 60%, checkpoints, drops off the network without a goodbye (its
// leave frames are discarded with the transport queue, exactly as a crash
// would lose them), then restarts from the checkpoint under epoch+1, a
// fresh empty engine, and anti-entropy catch-up for the remaining 40%.
func chaosRank(t *testing.T, c *mpi.Comm, board *chaosBoard, ckstore *mpi.CheckpointStore, auditDir string, finals []ClusterInfo) error {
	const convergeTimeout = 45 * time.Second
	rank := c.Rank()
	vals := chaosValues(rank)
	wantAdds := uint64(chaosNodes * chaosPerRank)

	dir := ""
	if rank == 0 {
		dir = auditDir
	}
	srv, acc := chaosServer(t, dir)
	tr := NewMPITransport(512)
	sink := &swapSink{}

	node := chaosNode(t, rank, 1, srv, tr, nil)
	sink.p.Store(node)
	node.Start()

	if rank == chaosCrashRank {
		// Phase 1: partial ingest, checkpoint, crash.
		cut := len(vals) * 60 / 100
		crash := make(chan struct{})
		var phase1Err error
		go func() {
			defer close(crash)
			phase1Err = func() error {
				if err := chaosIngest(acc, vals[:cut]); err != nil {
					return err
				}
				if err := awaitLocalAdds(acc, uint64(cut), convergeTimeout); err != nil {
					return err
				}
				blob, err := node.Checkpoint()
				if err != nil {
					return err
				}
				ckstore.Put(rank, blob)
				return nil
			}()
		}()
		tr.Pump(c, sink, crash)
		if phase1Err != nil {
			return fmt.Errorf("rank %d phase 1: %w", rank, phase1Err)
		}
		node.Close()
		srv.Close()
		// The crash loses everything still queued — including the leave
		// frames Close just enqueued. Peers must rediscover the node, not
		// be told.
		for len(tr.sendq) > 0 {
			<-tr.sendq
		}

		blob, ok := ckstore.Get(rank)
		if !ok {
			return fmt.Errorf("rank %d: checkpoint missing after crash", rank)
		}
		srv, acc = chaosServer(t, "") // the engine's state died with the process
		node = chaosNode(t, rank, 2, srv, tr, blob)
		sink.p.Store(node)
		node.Start()
		vals = vals[cut:] // phase 2 ingests only the post-checkpoint tail
	}

	stop := make(chan struct{})
	var driveErr error
	go func() {
		defer close(stop)
		driveErr = func() error {
			if err := chaosIngest(acc, vals); err != nil {
				return err
			}
			return pollConverged(rank, sink, board, wantAdds, convergeTimeout)
		}()
	}()
	tr.Pump(c, sink, stop)
	if driveErr != nil {
		return fmt.Errorf("rank %d: %w", rank, driveErr)
	}

	info, err := node.ClusterRead(chaosAcc)
	if err != nil {
		return fmt.Errorf("rank %d final read: %w", rank, err)
	}
	finals[rank] = info
	node.Close()

	if rank == 0 {
		if _, err := srv.AuditRecord("chaos-final"); err != nil {
			return fmt.Errorf("rank 0 audit record: %w", err)
		}
	}
	srv.Close()
	if rank == 0 {
		if err := srv.CloseAudit(); err != nil {
			return fmt.Errorf("rank 0 audit close: %w", err)
		}
	}
	return nil
}

// verifyChaosAudit replays rank 0's hash-linked audit log against its frame
// journal in-process — the same check `hpaudit -log ... -journal ...` runs
// in CI against the files this test leaves in REPRO_GOSSIP_AUDIT_DIR.
func verifyChaosAudit(t *testing.T, auditDir string) {
	t.Helper()
	logData, err := os.ReadFile(filepath.Join(auditDir, "audit.hpal"))
	if err != nil {
		t.Fatal(err)
	}
	records, err := audit.ReadLog(logData)
	if err != nil {
		t.Fatalf("audit log corrupt: %v", err)
	}
	jf, err := os.Open(filepath.Join(auditDir, "frames.hpfj"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if _, err := audit.Verify(records, audit.NewJournalReader(jf)); err != nil {
		t.Fatalf("audit replay diverged: %v", err)
	}
}

func TestClusterChaos(t *testing.T) {
	plans := []struct {
		name string
		plan string
	}{
		{"drop", "seed=11;drop:p=0.15"},
		{"dup", "seed=12;dup:p=0.25"},
		{"corrupt", "seed=13;corrupt:p=0.2"},
		{"mixed", "seed=14;drop:p=0.1;dup:p=0.15;corrupt:p=0.1"},
	}
	only := os.Getenv("REPRO_GOSSIP_PLAN")
	auditBase := os.Getenv("REPRO_GOSSIP_AUDIT_DIR")
	if auditBase == "" {
		auditBase = t.TempDir()
	}
	oracle := chaosOracle(t)

	for _, tc := range plans {
		if only != "" && tc.name != only {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			inj, err := faults.Parse(tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			auditDir := filepath.Join(auditBase, tc.name)
			board := newChaosBoard()
			ckstore := mpi.NewCheckpointStore()
			finals := make([]ClusterInfo, chaosNodes)

			werr := mpi.RunWith(chaosNodes, mpi.RunOpts{Inject: inj}, func(c *mpi.Comm) error {
				return chaosRank(t, c, board, ckstore, auditDir, finals)
			})
			if werr != nil {
				t.Fatalf("world error: %v", werr)
			}

			for r, info := range finals {
				if info.HP != oracle {
					t.Errorf("rank %d merged HP differs from serial oracle:\n got %s\nwant %s", r, info.HP, oracle)
				}
				if info.Digest != finals[0].Digest {
					t.Errorf("rank %d digest %s != rank 0 digest %s", r, info.Digest, finals[0].Digest)
				}
				if info.Adds != uint64(chaosNodes*chaosPerRank) {
					t.Errorf("rank %d adds %d, want %d", r, info.Adds, chaosNodes*chaosPerRank)
				}
			}
			// 4 steady nodes + the crash rank's two epochs.
			if finals[0].Contributors != chaosNodes+1 || finals[0].Nodes != chaosNodes {
				t.Errorf("contributors=%d nodes=%d, want %d/%d",
					finals[0].Contributors, finals[0].Nodes, chaosNodes+1, chaosNodes)
			}

			verifyChaosAudit(t, auditDir)
			assertNoLeakedGoroutines(t)
		})
	}
}
