package gossip

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/trace"
)

// FuzzGossipFrameDecode hammers the wire decoder with valid frames, frames
// corrupted by the fault injector's own mutation primitive, truncations,
// and arbitrary bytes. The invariants: never panic, never over-consume, and
// anything that decodes cleanly must re-encode to a frame that decodes to
// the same message (the decoder accepts only canonical encodings).
func FuzzGossipFrameDecode(f *testing.F) {
	seedMsgs := []*Message{
		{Kind: MsgLeave, From: Peer{ID: "n0"}},
		{Kind: MsgPush, From: Peer{ID: "n1", Addr: "http://h:1"}, Epoch: 1,
			View: []Peer{{ID: "n2", Addr: "http://h:2"}},
			Digests: []Digest{{Acc: "a", Node: "n1", Epoch: 1, Version: 3,
				Sum: [8]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x00, 0x11}}}},
		{Kind: MsgPullReq, From: Peer{ID: "n3"}, Epoch: 9,
			Trace:   trace.Context{TraceID: 5, SpanID: 6},
			Digests: []Digest{{Acc: "b", Node: "n3", Version: 1}}},
		{Kind: MsgDelta, From: Peer{ID: "n4"}, Epoch: 2,
			Entries: []Entry{{Acc: "a", Node: "n4", Epoch: 2, Version: 5, Adds: 10, Frames: 5,
				Env: []byte{'h', 0, 0, 0, 5, 1, 0, 1, 0, 1, 0xde, 0xad, 0xbe, 0xef}}}},
	}
	r := rng.New(0xf0221)
	for _, m := range seedMsgs {
		frame, err := AppendMessage(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(faults.CorruptBytes(r, append([]byte(nil), frame...)))
		f.Add(frame[:len(frame)/2])
		f.Add(append(append([]byte(nil), frame...), frame...)) // stream of two
	}
	f.Add([]byte{})
	f.Add([]byte{MsgPush, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, used, err := DecodeMessage(data)
		if err != nil {
			return
		}
		if used <= 0 || used > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", used, len(data))
		}
		re, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("decoded message fails to re-encode: %v", err)
		}
		m2, used2, err := DecodeMessage(re)
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if used2 != len(re) || !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode/decode not a fixed point:\n got %+v\nwant %+v", m2, m)
		}
	})
}
