package gossip

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTPTransport delivers gossip frames by POSTing them to a peer's
// /gossip endpoint. Peer addresses are base URLs ("http://host:port").
type HTTPTransport struct {
	Client *http.Client
}

// NewHTTPTransport returns a transport with a dedicated client; timeout 0
// defaults to 2s — gossip frames are small and loss is repaired by later
// rounds, so a slow peer should fail fast rather than wedge a sender.
func NewHTTPTransport(timeout time.Duration) *HTTPTransport {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &HTTPTransport{Client: &http.Client{Timeout: timeout}}
}

// Send implements Transport.
func (t *HTTPTransport) Send(dst Peer, frame []byte) error {
	if dst.Addr == "" {
		return errors.New("gossip: peer has no address")
	}
	url := strings.TrimSuffix(dst.Addr, "/") + "/gossip"
	resp, err := t.Client.Post(url, "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("gossip: peer %s returned %s", dst.ID, resp.Status)
	}
	return nil
}

// Handler returns the node's HTTP surface:
//
//	POST /gossip            — one or more concatenated gossip frames
//	GET  /gossip/sum/{name} — merged cluster read (ClusterInfo JSON)
//	GET  /gossip/peers      — membership view + self + epoch (JSON)
//
// Mount it at both "/gossip" and "/gossip/" on the daemon mux.
func (n *Node) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimPrefix(r.URL.Path, "/gossip")
		switch {
		case path == "" || path == "/":
			if r.Method != http.MethodPost {
				w.Header().Set("Allow", http.MethodPost)
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			body, err := io.ReadAll(io.LimitReader(r.Body, 4*(MaxFramePayload+frameOverhead)))
			if err != nil {
				http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := n.HandleAll(body); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case strings.HasPrefix(path, "/sum/"):
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			name := strings.TrimPrefix(path, "/sum/")
			info, err := n.ClusterRead(name)
			if err != nil && info.Err == "" {
				info.Err = err.Error()
			}
			writeJSON(w, info)
		case path == "/peers":
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			st := n.Stats()
			writeJSON(w, peersReply{
				Self:   n.Self(),
				Epoch:  n.Epoch(),
				Rounds: st.Rounds,
				Peers:  n.Peers(),
			})
		default:
			http.NotFound(w, r)
		}
	})
}

type peersReply struct {
	Self   Peer   `json:"self"`
	Epoch  uint64 `json:"epoch"`
	Rounds uint64 `json:"rounds"`
	Peers  []Peer `json:"peers"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
