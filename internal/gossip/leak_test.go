package gossip

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// gossipGoroutines returns the stacks of goroutines currently parked inside
// this package — the round loop ticker, the sender workers, the watchdog,
// and any transport pump. Mirrors the mpi leak-test convention.
func gossipGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "repro/internal/gossip.") &&
			!strings.Contains(g, "testing.tRunner") &&
			!strings.Contains(g, "testing.runFuzzing") {
			out = append(out, g)
		}
	}
	return out
}

// assertNoLeakedGoroutines polls (goroutine exit is asynchronous after
// Close returns only once the WaitGroups drain, but runtime bookkeeping can
// lag) and fails the test with the offending stacks if any gossip goroutine
// survives 5s past teardown.
func assertNoLeakedGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var leaked []string
	for {
		leaked = gossipGoroutines()
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("%d gossip goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
}
