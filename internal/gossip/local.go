package gossip

import (
	"errors"

	"repro/internal/server"
)

// ServerLocal adapts a *server.Server as a gossip contribution source: each
// named accumulator's quiescent HP partial (via the engine's checkpoint
// path, so it is the same fixed-order merged state snapshots and certified
// reads see) becomes one contribution.
//
// The local engine holds ONLY locally-ingested frames; remote partials live
// in the gossip store and are never folded back into the engine. That
// separation is what keeps re-gossip from double-counting a non-idempotent
// sum.
type ServerLocal struct {
	S *server.Server
}

// Contributions implements Local. Accumulators that are busy or diverged
// are skipped this round rather than failing the whole refresh — gossip
// retries every interval.
func (l ServerLocal) Contributions() ([]Contribution, error) {
	if l.S == nil {
		return nil, errors.New("gossip: nil server")
	}
	var out []Contribution
	for _, name := range l.S.Names() {
		acc := l.S.Lookup(name)
		if acc == nil {
			continue // deleted between Names and Lookup
		}
		h, adds, frames, err := acc.Envelope()
		if err != nil {
			continue // busy/diverged this round; retry next interval
		}
		if frames == 0 {
			continue // nothing ingested yet; an empty entry adds no information
		}
		out = append(out, Contribution{Acc: name, HP: h, Adds: adds, Frames: frames})
	}
	return out, nil
}
