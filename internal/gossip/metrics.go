package gossip

import "repro/internal/telemetry"

// Gossip telemetry: round cadence, anti-entropy repair pressure
// (digest mismatches), merge activity, and failure-detector churn.
var (
	mRounds = telemetry.NewCounter("gossip_rounds_total",
		"Gossip rounds completed.")
	mSent = telemetry.NewCounter("gossip_frames_sent_total",
		"Gossip frames handed to the transport.")
	mRecv = telemetry.NewCounter("gossip_frames_received_total",
		"Gossip frames decoded and handled.")
	mBadFrames = telemetry.NewCounter("gossip_bad_frames_total",
		"Inbound gossip frames rejected (checksum, truncation, bounds).")
	mDigestMismatch = telemetry.NewCounter("gossip_digest_mismatches_total",
		"Digest comparisons that disagreed and triggered anti-entropy repair.")
	mEquivocations = telemetry.NewCounter("gossip_equivocations_total",
		"Contributions rejected for same-version different-bytes conflicts.")
	mEntriesApplied = telemetry.NewCounter("gossip_entries_applied_total",
		"Remote contributions joined into the local store.")
	mClusterMerges = telemetry.NewCounter("gossip_cluster_merges_total",
		"Fixed-order cluster merges served (ClusterRead calls).")
	mSendFailures = telemetry.NewCounter("gossip_send_failures_total",
		"Transport send failures.")
	mSuspected = telemetry.NewCounter("gossip_peers_suspected_total",
		"Peers evicted by the failure detector.")
	mOutboundDropped = telemetry.NewCounter("gossip_outbound_dropped_total",
		"Outbound frames dropped on a full queue (repaired by later rounds).")
	mStalls = telemetry.NewCounter("gossip_round_stalls_total",
		"Watchdog detections of a stalled round loop.")
	mViewSize = telemetry.NewGauge("gossip_view_size",
		"Current membership view size.")
	mRoundDur = telemetry.NewHistogram("gossip_round_duration_seconds",
		"Wall time per gossip round.", telemetry.DurationBuckets())
)
