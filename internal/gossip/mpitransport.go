package gossip

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/mpi"
)

// MPITag is the mpi user tag all gossip frames travel on.
const MPITag = 9

// MPIPeer returns the canonical Peer identity for a rank in an mpi-backed
// cluster: the address is the decimal rank the transport routes by.
func MPIPeer(rank int) Peer {
	return Peer{ID: "rank-" + strconv.Itoa(rank), Addr: strconv.Itoa(rank)}
}

// MPITransport routes gossip frames over an in-process mpi world, riding
// the checksummed-frame substrate in internal/mpi: every frame is
// integrity-checked and sequence-deduplicated on receive, and the fault
// injector sits on the send path, so chaos plans exercise the whole gossip
// stack.
//
// Frames travel on the eager (ack-free) path deliberately. A gossip pump
// is a single goroutine that must keep receiving to keep its peers'
// deliveries acked; blocking it in an acked SendTimeout makes every pump
// stall on every other pump and the cluster livelocks under loss. Gossip
// needs no per-frame reliability anyway — the anti-entropy digest exchange
// IS the retransmission protocol, re-shipping anything a dropped or
// corrupted frame failed to deliver.
//
// A Comm is single-goroutine-owned, but the node's sender workers and the
// inbound path are concurrent, so the transport funnels everything through
// one Pump goroutine that owns the Comm: Send only enqueues (dropping on a
// full queue), and Pump alternates between flushing the queue and polling
// every peer with the non-blocking TryRecv.
type MPITransport struct {
	sendq chan mpiOut
}

type mpiOut struct {
	rank  int
	peer  Peer
	frame []byte
}

// NewMPITransport returns a transport with the given queue depth (default
// 256).
func NewMPITransport(queue int) *MPITransport {
	if queue <= 0 {
		queue = 256
	}
	return &MPITransport{sendq: make(chan mpiOut, queue)}
}

// Send implements Transport by enqueueing for the pump. A full queue drops
// the frame rather than blocking a sender worker; anti-entropy re-ships
// anything that mattered.
func (t *MPITransport) Send(dst Peer, frame []byte) error {
	rank, err := strconv.Atoi(dst.Addr)
	if err != nil {
		return fmt.Errorf("gossip: mpi peer %q has non-rank address %q", dst.ID, dst.Addr)
	}
	select {
	case t.sendq <- mpiOut{rank: rank, peer: dst, frame: frame}:
	default:
		mOutboundDropped.Inc()
	}
	return nil
}

// Sink is the node-side surface Pump feeds: inbound frames and delivery
// failures. *Node implements it; a restartable harness can interpose an
// atomically-swapped pointer so a crashed-and-restarted node takes over the
// same transport.
type Sink interface {
	Handle(frame []byte) error
	NoteUnreachable(p Peer)
}

// Pump runs the transport event loop on the goroutine that owns c,
// delivering outbound frames and feeding inbound ones to sink.Handle until
// stop closes. Unroutable destinations and crashed peers feed the failure
// detector via NoteUnreachable. On stop it makes one best-effort pass over
// the remaining queue — that is what carries the leave frames a Close
// enqueues.
//
// Under a fault plan with a crash class, the injected panic unwinds the
// calling goroutine; run Pump on the rank's main goroutine so mpi.RunWith
// converts it to a *faults.CrashError.
func (t *MPITransport) Pump(c *mpi.Comm, sink Sink, stop <-chan struct{}) {
	deliver := func(f mpiOut) {
		if f.rank < 0 || f.rank >= c.Size() || f.rank == c.Rank() || c.Crashed(f.rank) {
			sink.NoteUnreachable(f.peer)
			return
		}
		if err := c.Send(f.rank, MPITag, f.frame); err != nil {
			sink.NoteUnreachable(f.peer)
		}
	}
	for {
		select {
		case <-stop:
			for {
				select {
				case f := <-t.sendq:
					deliver(f)
				default:
					return
				}
			}
		default:
		}
		progress := false
	sends:
		for i := 0; i < 16; i++ {
			select {
			case f := <-t.sendq:
				deliver(f)
				progress = true
			default:
				break sends
			}
		}
		for src := 0; src < c.Size(); src++ {
			if src == c.Rank() {
				continue
			}
			for {
				payload, ok, err := c.TryRecv(src, MPITag)
				if err != nil || !ok {
					break
				}
				progress = true
				sink.Handle(payload)
			}
		}
		if !progress {
			time.Sleep(200 * time.Microsecond)
		}
	}
}
