package gossip

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
)

var flight = trace.Subsystem("gossip")

// Transport delivers one encoded gossip frame to a peer. Implementations
// exist for HTTP (POST to the peer's /gossip endpoint) and for in-process
// mpi worlds (reliable checksummed frames). Send may be called from
// multiple sender workers concurrently; a transport that cannot deliver
// concurrently serializes internally (the mpi transport funnels through a
// single pump goroutine that owns the Comm).
type Transport interface {
	Send(dst Peer, frame []byte) error
}

// Contribution is one accumulator's local partial as reported by the node's
// summation engine: the exact HP envelope plus the counters gossip
// advertises with it. Frames doubles as the entry version — it increases
// exactly when the partial changes.
type Contribution struct {
	Acc    string
	HP     *core.HP
	Adds   uint64
	Frames uint64
}

// Local is the node's view of its own summation engine; nil means the node
// only relays (useful in tests).
type Local interface {
	Contributions() ([]Contribution, error)
}

// Config configures a Node. Zero values get defaults where noted.
type Config struct {
	Self        Peer          // this node's identity (required)
	Epoch       uint64        // lifetime epoch; restarts must bump past the recovered epoch
	Params      core.Params   // cluster HP parameters (required, must validate)
	Seeds       []Peer        // initial peers to join through
	Interval    time.Duration // gossip round period (default 1s)
	Fanout      int           // push and pull targets per round (default 2)
	ViewSize    int           // bounded membership view (default 8)
	SamplerSize int           // history sampler slots (default 16)
	SuspectAfter int          // consecutive send failures before eviction (default 3)
	QueueLen    int           // outbound frame queue (default 256)
	Senders     int           // sender worker goroutines (default 2)
	Seed        uint64        // PRNG seed for peer selection (default from Self.ID)
	Local       Local         // local contribution source (may be nil)
	Transport   Transport     // frame delivery (required)
	Recovery    []byte        // checkpoint blob to restore, or nil
}

// Node is one gossip cluster member: Brahms membership plus CRDT
// anti-entropy over the contribution store. Create with NewNode, launch the
// round loop with Start, feed inbound frames to Handle, and drain
// everything with Close.
type Node struct {
	cfg Config

	mu     sync.Mutex // guards store, view, samp, rnd, pushed, pulled
	store  *Store
	view   *view
	samp   *sampler
	rnd    *rng.Source
	pushed []Peer // peers that pushed at us since the last round
	pulled []Peer // peers learned from pull replies since the last round

	outMu   sync.RWMutex
	closing bool
	out     chan outFrame

	quit      chan struct{}
	loopWG    sync.WaitGroup // round loop + watchdog
	sendWG    sync.WaitGroup // sender workers
	started   bool
	closeOnce sync.Once

	rounds  atomic.Uint64
	sent    atomic.Uint64
	recv    atomic.Uint64
	applied atomic.Uint64
}

type outFrame struct {
	dst   Peer
	frame []byte
}

// NewNode validates cfg, restores the recovery blob if present, and returns
// a node ready to Start.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self.ID == "" {
		return nil, errors.New("gossip: Config.Self.ID is required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("gossip: Config.Transport is required")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("gossip: %w", err)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.ViewSize <= 0 {
		cfg.ViewSize = 8
	}
	if cfg.SamplerSize <= 0 {
		cfg.SamplerSize = 16
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	if cfg.Senders <= 0 {
		cfg.Senders = 2
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = idHash(0x676f73736970, cfg.Self.ID) // deterministic per id
	}
	n := &Node{
		cfg:   cfg,
		store: NewStore(cfg.Params),
		view:  newView(cfg.Self.ID, cfg.ViewSize),
		samp:  newSampler(cfg.SamplerSize, seed),
		rnd:   rng.New(seed),
		out:   make(chan outFrame, cfg.QueueLen),
		quit:  make(chan struct{}),
	}
	if cfg.Recovery != nil {
		epoch, err := n.store.RestoreCheckpoint(cfg.Recovery)
		if err != nil {
			return nil, err
		}
		if cfg.Epoch <= epoch {
			return nil, fmt.Errorf("gossip: configured epoch %d does not bump past recovered epoch %d", cfg.Epoch, epoch)
		}
		flight.Event("gossip-recover",
			trace.Str("node", cfg.Self.ID),
			trace.Int("entries", int64(n.store.Len())),
			trace.Int("old_epoch", int64(epoch)))
	}
	for _, p := range cfg.Seeds {
		if n.isSelf(p) {
			continue
		}
		n.view.learn(p)
		n.samp.observe(p, cfg.Self.ID)
	}
	return n, nil
}

// isSelf reports whether p is this node under either identity: its ID or
// its advertised address. Seed lists name peers by URL before their real
// IDs are known, so a peer's gossip can echo this node back as a
// URL-identified alias; learning that alias would burn a view slot and a
// fanout target on self-sends.
func (n *Node) isSelf(p Peer) bool {
	return p.ID == n.cfg.Self.ID || (p.Addr != "" && p.Addr == n.cfg.Self.Addr)
}

// Self returns the node's identity; Epoch its lifetime epoch.
func (n *Node) Self() Peer    { return n.cfg.Self }
func (n *Node) Epoch() uint64 { return n.cfg.Epoch }

// Start launches the round loop, the sender workers, and the watchdog.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()

	n.loopWG.Add(2)
	go n.loop()
	go n.watchdog()
	n.sendWG.Add(n.cfg.Senders)
	for i := 0; i < n.cfg.Senders; i++ {
		go n.sender()
	}
}

// Close stops the round loop and watchdog, sends best-effort leave frames
// to the current view, then drains and stops the sender workers. It is
// idempotent and safe to call concurrently with Handle.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.quit)
		n.loopWG.Wait()

		n.mu.Lock()
		peers := n.view.snapshot()
		n.mu.Unlock()
		if lf, err := AppendMessage(nil, &Message{Kind: MsgLeave, From: n.cfg.Self, Epoch: n.cfg.Epoch}); err == nil {
			for _, p := range peers {
				select {
				case n.out <- outFrame{dst: p, frame: lf}:
				default:
				}
			}
		}

		n.outMu.Lock()
		n.closing = true
		close(n.out)
		n.outMu.Unlock()
		n.sendWG.Wait()
	})
}

// Stats is a point-in-time snapshot of the node's gossip activity.
type Stats struct {
	Rounds   uint64
	Sent     uint64
	Received uint64
	Applied  uint64
	View     int
	StoreLen int
}

// Stats returns the node's counters; tests and benchmarks use it to report
// frames/sec and rounds-to-convergence without relying on the global
// telemetry registry.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	view, entries := n.view.size(), n.store.Len()
	n.mu.Unlock()
	return Stats{
		Rounds:   n.rounds.Load(),
		Sent:     n.sent.Load(),
		Received: n.recv.Load(),
		Applied:  n.applied.Load(),
		View:     view,
		StoreLen: entries,
	}
}

// Peers returns the current membership view in deterministic order.
func (n *Node) Peers() []Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.snapshot()
}

// Accs lists the accumulators with contributions, local state included.
func (n *Node) Accs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.refreshLocked()
	return n.store.Accs()
}

// ClusterRead merges every known contribution for acc in fixed sorted-key
// order and returns the cluster total with its SHA-256 convergence digest.
// The node's own latest partial is folded in first, so a read always
// reflects local ingest even before the next round gossips it.
func (n *Node) ClusterRead(acc string) (ClusterInfo, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.refreshLocked()
	mClusterMerges.Inc()
	return n.store.ClusterSum(acc)
}

// Checkpoint serializes the contribution store (own contributions
// refreshed) plus the node's epoch for a CheckpointStore snapshot.
func (n *Node) Checkpoint() ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.refreshLocked()
	return n.store.Checkpoint(n.cfg.Epoch)
}

// NoteUnreachable records a delivery failure for p: suspicion accrues and
// crossing the threshold evicts the peer from both the view and the history
// sampler. Transports with asynchronous failure detection (the mpi pump)
// call this; the sender workers call it for synchronous transports.
func (n *Node) NoteUnreachable(p Peer) {
	mSendFailures.Inc()
	n.mu.Lock()
	evicted := n.view.miss(p.ID, n.cfg.SuspectAfter)
	if evicted {
		n.samp.invalidate(p.ID)
	}
	n.mu.Unlock()
	if evicted {
		mSuspected.Inc()
		flight.Event("gossip-suspect", trace.Str("peer", p.ID))
	}
}

// refreshLocked folds the local engine's current partials into the store
// under the node's own (id, epoch) keys. Caller holds n.mu.
func (n *Node) refreshLocked() {
	if n.cfg.Local == nil {
		return
	}
	cs, err := n.cfg.Local.Contributions()
	if err != nil {
		flight.Event("gossip-local-error", trace.Str("error", err.Error()))
		return
	}
	for _, c := range cs {
		if _, err := n.store.PutOwn(c.Acc, n.cfg.Self.ID, n.cfg.Epoch, c.HP, c.Adds, c.Frames); err != nil {
			flight.Event("gossip-local-error", trace.Str("error", err.Error()))
		}
	}
}

func (n *Node) loop() {
	defer n.loopWG.Done()
	n.round() // join immediately: push/pull at the seeds before the first tick
	t := time.NewTicker(n.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-t.C:
			n.round()
		}
	}
}

// round is one Brahms push/pull round: refresh own contributions, rebuild
// the view from last round's buffered pushes and pulls, then push (self +
// view sample + digests) and pull (digests) at independently sampled
// fanout targets. Rounds never block on the network — frames go through
// the bounded outbound queue.
func (n *Node) round() {
	start := time.Now()
	span := trace.StartRoot("gossip.round")

	n.mu.Lock()
	n.refreshLocked()
	digests := n.store.Digests()
	if len(digests) > MaxDigests {
		digests = digests[:MaxDigests]
	}
	pushed, pulled := n.pushed, n.pulled
	n.pushed, n.pulled = nil, nil
	n.view.rebuild(pushed, pulled, n.samp, n.rnd)
	mViewSize.Set(int64(n.view.size()))
	pushTargets := n.targetsLocked()
	pullTargets := n.targetsLocked()
	viewSample := n.view.sample(MaxViewEntries-1, n.rnd)
	n.mu.Unlock()

	tctx := span.Context()
	for _, p := range pushTargets {
		n.send(p, &Message{Kind: MsgPush, From: n.cfg.Self, Epoch: n.cfg.Epoch,
			Trace: tctx, View: viewSample, Digests: digests})
	}
	for _, p := range pullTargets {
		n.send(p, &Message{Kind: MsgPullReq, From: n.cfg.Self, Epoch: n.cfg.Epoch,
			Trace: tctx, Digests: digests})
	}

	r := n.rounds.Add(1)
	mRounds.Inc()
	mRoundDur.Observe(time.Since(start).Seconds())
	span.Attr(trace.Int("round", int64(r)))
	span.Attr(trace.Int("view", int64(len(viewSample))))
	span.Attr(trace.Int("digests", int64(len(digests))))
	span.Attr(trace.Int("push_targets", int64(len(pushTargets))))
	span.End()
}

// targetsLocked samples fanout round targets from the view, falling back to
// the configured seeds while the view is still empty (join). Caller holds
// n.mu.
func (n *Node) targetsLocked() []Peer {
	if n.view.size() == 0 {
		return dedupPeers(append([]Peer(nil), n.cfg.Seeds...), n.cfg.Self.ID)
	}
	return n.view.sample(n.cfg.Fanout, n.rnd)
}

// Handle decodes and processes one inbound gossip frame. It is safe to call
// from any goroutine, including after Close (replies are silently dropped
// then).
func (n *Node) Handle(frame []byte) error {
	m, _, err := DecodeMessage(frame)
	if err != nil {
		mBadFrames.Inc()
		flight.Event("gossip-bad-frame", trace.Str("error", err.Error()))
		return err
	}
	n.handleMsg(m)
	return nil
}

// HandleAll walks a stream of concatenated frames (an HTTP POST body may
// batch several), stopping at the first undecodable one.
func (n *Node) HandleAll(data []byte) error {
	for len(data) > 0 {
		m, used, err := DecodeMessage(data)
		if err != nil {
			mBadFrames.Inc()
			flight.Event("gossip-bad-frame", trace.Str("error", err.Error()))
			return err
		}
		n.handleMsg(m)
		data = data[used:]
	}
	return nil
}

func (n *Node) handleMsg(m *Message) {
	span := trace.Start(m.Trace, "gossip.handle")
	defer span.End()
	span.Attr(trace.Str("kind", string(m.Kind)))
	span.Attr(trace.Str("from", m.From.ID))
	mRecv.Inc()
	n.recv.Add(1)

	n.mu.Lock()
	if m.Kind == MsgLeave {
		n.view.remove(m.From.ID)
		n.samp.invalidate(m.From.ID)
		n.mu.Unlock()
		return
	}
	if !n.isSelf(m.From) {
		n.view.learn(m.From)
		n.samp.observe(m.From, n.cfg.Self.ID)
	}
	for _, p := range m.View {
		if !n.isSelf(p) {
			n.samp.observe(p, n.cfg.Self.ID)
		}
	}
	switch m.Kind {
	case MsgPush:
		if !n.isSelf(m.From) {
			n.pushed = append(n.pushed, m.From)
		}
	case MsgPullRep:
		for _, p := range m.View {
			if !n.isSelf(p) {
				n.pulled = append(n.pulled, p)
			}
		}
	}

	var applied, equivocations, rejected int
	for _, e := range m.Entries {
		ok, err := n.store.Put(e)
		switch {
		case errors.Is(err, ErrEquivocation):
			equivocations++
		case err != nil:
			rejected++
		case ok:
			applied++
		}
	}

	// Anti-entropy: kinds that carry a digest summary get a delta
	// computed against it. A push from an empty store (a fresh joiner)
	// legitimately ships everything we have.
	var ship []Entry
	var want []Digest
	var mismatches int
	switch m.Kind {
	case MsgPush, MsgPullReq, MsgPullRep:
		ship, want, mismatches = n.store.Delta(m.Digests)
	}
	var myDigests []Digest
	var viewSample []Peer
	if m.Kind == MsgPullReq {
		myDigests = n.store.Digests()
		if len(myDigests) > MaxDigests {
			myDigests = myDigests[:MaxDigests]
		}
		viewSample = n.view.sample(MaxViewEntries-1, n.rnd)
	}
	n.mu.Unlock()

	if applied > 0 {
		mEntriesApplied.Add(uint64(applied))
		n.applied.Add(uint64(applied))
	}
	if equivocations > 0 {
		mEquivocations.Add(uint64(equivocations))
		flight.Event("gossip-equivocation",
			trace.Str("from", m.From.ID), trace.Int("count", int64(equivocations)))
	}
	if rejected > 0 {
		mBadFrames.Add(uint64(rejected))
	}
	if mismatches > 0 {
		mDigestMismatch.Add(uint64(mismatches))
	}
	span.Attr(trace.Int("entries", int64(len(m.Entries))))
	span.Attr(trace.Int("applied", int64(applied)))
	span.Attr(trace.Int("mismatches", int64(mismatches)))

	tctx := span.Context()
	reply := func(kind byte, view []Peer, digests []Digest, entries []Entry) {
		n.send(m.From, &Message{Kind: kind, From: n.cfg.Self, Epoch: n.cfg.Epoch,
			Trace: tctx, View: view, Digests: digests, Entries: entries})
	}
	switch m.Kind {
	case MsgPush:
		if len(ship) > 0 {
			reply(MsgDelta, nil, nil, ship)
		}
		if len(want) > 0 {
			reply(MsgPullReq, nil, n.digestsSnapshot(), nil)
		}
	case MsgPullReq:
		reply(MsgPullRep, viewSample, myDigests, ship)
	case MsgPullRep:
		if len(want) > 0 {
			reply(MsgPullReq, nil, n.digestsSnapshot(), nil)
		}
	}
}

func (n *Node) digestsSnapshot() []Digest {
	n.mu.Lock()
	defer n.mu.Unlock()
	ds := n.store.Digests()
	if len(ds) > MaxDigests {
		ds = ds[:MaxDigests]
	}
	return ds
}

// send encodes m and enqueues it for the sender workers; a full queue drops
// the frame (the next round repairs any loss).
func (n *Node) send(dst Peer, m *Message) {
	frame, err := AppendMessage(nil, m)
	if err != nil {
		flight.Event("gossip-encode-error", trace.Str("error", err.Error()))
		return
	}
	n.outMu.RLock()
	defer n.outMu.RUnlock()
	if n.closing {
		return
	}
	select {
	case n.out <- outFrame{dst: dst, frame: frame}:
	default:
		mOutboundDropped.Inc()
	}
}

func (n *Node) sender() {
	defer n.sendWG.Done()
	for f := range n.out {
		if err := n.cfg.Transport.Send(f.dst, f.frame); err != nil {
			n.NoteUnreachable(f.dst)
			continue
		}
		n.sent.Add(1)
		mSent.Inc()
	}
}

// watchdog flags a wedged round loop: if no round completes across four
// intervals the flight recorder and telemetry record a stall.
func (n *Node) watchdog() {
	defer n.loopWG.Done()
	iv := 4 * n.cfg.Interval
	if iv < 500*time.Millisecond {
		iv = 500 * time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	last := n.rounds.Load()
	for {
		select {
		case <-n.quit:
			return
		case <-t.C:
			cur := n.rounds.Load()
			if cur == last {
				mStalls.Inc()
				flight.Event("gossip-stall", trace.Int("rounds", int64(cur)))
			}
			last = cur
		}
	}
}
