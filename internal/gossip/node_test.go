package gossip

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// memNet delivers frames synchronously between in-process nodes — the
// simplest Transport, with optional per-destination outage injection.
type memNet struct {
	mu    sync.Mutex
	nodes map[string]*Node
	down  map[string]bool
}

func newMemNet() *memNet {
	return &memNet{nodes: make(map[string]*Node), down: make(map[string]bool)}
}

func (m *memNet) add(n *Node) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[n.Self().ID] = n
}

func (m *memNet) setDown(id string, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[id] = down
}

func (m *memNet) Send(dst Peer, frame []byte) error {
	m.mu.Lock()
	n, down := m.nodes[dst.ID], m.down[dst.ID]
	var fromDown bool
	if msg, _, err := DecodeMessage(frame); err == nil {
		fromDown = m.down[msg.From.ID]
	}
	m.mu.Unlock()
	if fromDown {
		return nil // a dark node's frames vanish; it doesn't know it's dark
	}
	if n == nil || down {
		return fmt.Errorf("memnet: no route to %s", dst.ID)
	}
	return n.Handle(frame)
}

// staticLocal reports fixed contributions, mutable under a lock.
type staticLocal struct {
	mu sync.Mutex
	cs []Contribution
}

func (l *staticLocal) set(cs ...Contribution) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cs = cs
}

func (l *staticLocal) Contributions() ([]Contribution, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Contribution(nil), l.cs...), nil
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestNodeConvergence: three nodes, each contributing a distinct slice of
// values, converge to bit-identical cluster reads that match a serial
// oracle over all values.
func TestNodeConvergence(t *testing.T) {
	net := newMemNet()
	parts := [][]float64{
		{1.5, -2.25, 1e30, -1e30},
		{3.75, 1e-30},
		{-0.125, 2.5, 42.0},
	}
	var all []float64
	var nodes []*Node
	for i, part := range parts {
		all = append(all, part...)
		local := &staticLocal{}
		local.set(Contribution{
			Acc: "t", HP: mkHP(t, core.Params384, part...),
			Adds: uint64(len(part)), Frames: uint64(len(part)),
		})
		var seeds []Peer
		if i > 0 {
			seeds = []Peer{{ID: "n0", Addr: "n0"}} // star join through n0
		}
		n, err := NewNode(Config{
			Self:      Peer{ID: fmt.Sprintf("n%d", i), Addr: fmt.Sprintf("n%d", i)},
			Epoch:     1,
			Params:    core.Params384,
			Seeds:     seeds,
			Interval:  3 * time.Millisecond,
			Fanout:    2,
			Local:     local,
			Transport: net,
		})
		if err != nil {
			t.Fatal(err)
		}
		net.add(n)
		t.Cleanup(n.Close)
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.Start()
	}

	wantAdds := uint64(len(all))
	reads := make([]ClusterInfo, len(nodes))
	waitFor(t, "cluster convergence", 10*time.Second, func() bool {
		for i, n := range nodes {
			info, err := n.ClusterRead("t")
			if err != nil {
				return false
			}
			reads[i] = info
		}
		for _, r := range reads {
			if r.Adds != wantAdds || r.Digest != reads[0].Digest {
				return false
			}
		}
		return true
	})

	oracle, err := mkHP(t, core.Params384, all...).MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reads {
		if r.HP != string(oracle) {
			t.Fatalf("node %d merged HP %s != oracle %s", i, r.HP, oracle)
		}
		if r.Contributors != 3 || r.Nodes != 3 {
			t.Fatalf("node %d: contributors=%d nodes=%d, want 3/3", i, r.Contributors, r.Nodes)
		}
	}

	// Membership converged too: everyone learned everyone.
	waitFor(t, "full membership", 10*time.Second, func() bool {
		for _, n := range nodes {
			if len(n.Peers()) != len(nodes)-1 {
				return false
			}
		}
		return true
	})

	// A later local update (more frames = higher version) propagates.
	grown := append(append([]float64(nil), parts[1]...), 9.5, -1.25)
	nodes[1].cfg.Local.(*staticLocal).set(Contribution{
		Acc: "t", HP: mkHP(t, core.Params384, grown...),
		Adds: uint64(len(grown)), Frames: uint64(len(grown)),
	})
	all2 := append(append([]float64(nil), all...), 9.5, -1.25)
	oracle2, err := mkHP(t, core.Params384, all2...).MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "update propagation", 10*time.Second, func() bool {
		for _, n := range nodes {
			info, err := n.ClusterRead("t")
			if err != nil || info.HP != string(oracle2) {
				return false
			}
		}
		return true
	})

	// Satellite: ticker loop, push/pull sender workers, and watchdog all
	// drain on Close.
	for _, n := range nodes {
		n.Close()
	}
	assertNoLeakedGoroutines(t)
}

// TestNodeLeaveAndSuspicion: a departing node's leave frame removes it from
// peers' views immediately; an unreachable peer is evicted by suspicion
// after SuspectAfter consecutive send failures.
func TestNodeLeaveAndSuspicion(t *testing.T) {
	net := newMemNet()
	mk := func(id string, seeds ...Peer) *Node {
		n, err := NewNode(Config{
			Self:         Peer{ID: id, Addr: id},
			Epoch:        1,
			Params:       core.Params384,
			Seeds:        seeds,
			Interval:     3 * time.Millisecond,
			SuspectAfter: 3,
			Transport:    net,
		})
		if err != nil {
			t.Fatal(err)
		}
		net.add(n)
		t.Cleanup(n.Close)
		return n
	}
	a := mk("a")
	b := mk("b", Peer{ID: "a", Addr: "a"})
	c := mk("c", Peer{ID: "a", Addr: "a"})
	for _, n := range []*Node{a, b, c} {
		n.Start()
	}
	waitFor(t, "mesh", 10*time.Second, func() bool {
		return len(a.Peers()) == 2 && len(b.Peers()) == 2 && len(c.Peers()) == 2
	})

	// Graceful leave: c announces its departure on Close.
	c.Close()
	waitFor(t, "leave to propagate", 10*time.Second, func() bool {
		for _, p := range a.Peers() {
			if p.ID == "c" {
				return false
			}
		}
		for _, p := range b.Peers() {
			if p.ID == "c" {
				return false
			}
		}
		return true
	})

	// Crash (no leave): b goes dark; a's failure detector evicts it.
	net.setDown("b", true)
	waitFor(t, "suspicion eviction", 10*time.Second, func() bool {
		for _, p := range a.Peers() {
			if p.ID == "b" {
				return false
			}
		}
		return true
	})

	a.Close()
	b.Close()
	assertNoLeakedGoroutines(t)
}

// TestNodeRecoveryEpochBump: restarting from a checkpoint must bump the
// epoch; the restored node's old-epoch entries survive and new activity
// lands in the new epoch.
func TestNodeRecoveryEpochBump(t *testing.T) {
	net := newMemNet()
	local := &staticLocal{}
	local.set(Contribution{Acc: "t", HP: mkHP(t, core.Params384, 5.0), Adds: 1, Frames: 1})
	n1, err := NewNode(Config{
		Self: Peer{ID: "r", Addr: "r"}, Epoch: 1, Params: core.Params384,
		Interval: 3 * time.Millisecond, Local: local, Transport: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := n1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	n1.Close()

	// Same epoch: refused.
	if _, err := NewNode(Config{
		Self: Peer{ID: "r", Addr: "r"}, Epoch: 1, Params: core.Params384,
		Transport: net, Recovery: blob,
	}); err == nil {
		t.Fatal("restart without an epoch bump was accepted")
	}

	local2 := &staticLocal{}
	local2.set(Contribution{Acc: "t", HP: mkHP(t, core.Params384, 7.0), Adds: 1, Frames: 1})
	n3, err := NewNode(Config{
		Self: Peer{ID: "r", Addr: "r"}, Epoch: 2, Params: core.Params384,
		Interval: 3 * time.Millisecond, Local: local2, Transport: net,
		Recovery: blob,
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := n3.ClusterRead("t")
	if err != nil {
		t.Fatal(err)
	}
	// Old-epoch contribution (5.0) + new-epoch contribution (7.0).
	oracle, _ := mkHP(t, core.Params384, 5.0, 7.0).MarshalText()
	if info.HP != string(oracle) {
		t.Fatalf("recovered read %s != oracle %s", info.HP, oracle)
	}
	if info.Contributors != 2 || info.Nodes != 1 {
		t.Fatalf("contributors=%d nodes=%d, want 2/1", info.Contributors, info.Nodes)
	}
	n3.Close()
	assertNoLeakedGoroutines(t)
}

// TestNodeIgnoresSelfAlias: seed lists and peers' views name nodes by URL
// before their real IDs are known, so a node can be echoed its own address
// under a URL identity. Learning that alias would waste a view slot and a
// fanout target on self-sends; the node must drop it at every learn path.
func TestNodeIgnoresSelfAlias(t *testing.T) {
	self := Peer{ID: "a", Addr: "http://a"}
	alias := Peer{ID: "http://a", Addr: "http://a"}
	other := Peer{ID: "b", Addr: "http://b"}
	net := &memNet{nodes: map[string]*Node{}, down: map[string]bool{}}
	n, err := NewNode(Config{
		Self:      self,
		Epoch:     1,
		Params:    core.Params384,
		Seeds:     []Peer{alias, other},
		Transport: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)

	assertNoAlias := func(stage string) {
		t.Helper()
		for _, p := range n.Peers() {
			if p.ID == alias.ID {
				t.Fatalf("%s: self alias %q in view %v", stage, alias.ID, n.Peers())
			}
		}
	}
	assertNoAlias("after seeding")
	if len(n.Peers()) != 1 {
		t.Fatalf("view %v, want just %q", n.Peers(), other.ID)
	}

	// A push claiming to come from the alias, carrying the alias in its
	// view, must not teach the node about itself either.
	frame, err := AppendMessage(nil, &Message{
		Kind: MsgPush, From: alias, Epoch: 1, View: []Peer{alias, other},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Handle(frame); err != nil {
		t.Fatal(err)
	}
	assertNoAlias("after aliased push")
}
