package gossip

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/server"
)

// entryKey is a contribution's identity: one accumulator name, one origin
// node, one epoch of that node's life. Only the owner ever writes a key
// (with a monotone version), which is what makes the map a join-semilattice
// despite HP addition being non-idempotent.
type entryKey struct {
	acc   string
	node  string
	epoch uint64
}

// Store errors.
var (
	// ErrEquivocation marks two envelopes with the same (key, version) but
	// different bytes — an owner violating the monotone-version contract
	// (or a corrupt peer). The store keeps its existing entry.
	ErrEquivocation = errors.New("gossip: equivocating contribution (same version, different envelope)")
	// ErrParams marks an entry whose HP envelope disagrees with the
	// cluster's configured (N, k) parameters.
	ErrParams = errors.New("gossip: contribution parameters mismatch cluster parameters")
	// ErrBadCheckpoint marks an unparseable recovery blob.
	ErrBadCheckpoint = errors.New("gossip: invalid checkpoint blob")
)

// Store is the replicated state: a grow-only map of contributions. Join
// rule per key: keep the higher version; equal versions must carry
// identical bytes. Every mutation validates the envelope decodes to an HP
// partial with the cluster parameters, so junk can never reach a merge.
type Store struct {
	params  core.Params
	entries map[entryKey]Entry // Env slices are owned by the store
}

// NewStore returns an empty contribution store for cluster parameters p.
func NewStore(p core.Params) *Store {
	return &Store{params: p, entries: make(map[entryKey]Entry)}
}

// Params returns the cluster HP parameters the store enforces.
func (s *Store) Params() core.Params { return s.params }

// Len returns the number of contributions held.
func (s *Store) Len() int { return len(s.entries) }

// decodeEnv unwraps one server FrameHP hand-off envelope and checks its
// parameters against the cluster's.
func (s *Store) decodeEnv(env []byte) (*core.HP, error) {
	d := server.NewFrameDecoder(bytes.NewReader(env), MaxFramePayload)
	f, err := d.Next()
	if err != nil {
		return nil, fmt.Errorf("gossip: bad contribution envelope: %w", err)
	}
	if f.Type != server.FrameHP {
		return nil, fmt.Errorf("gossip: contribution envelope is frame type %q, want %q", f.Type, server.FrameHP)
	}
	h, err := f.HP()
	if err != nil {
		return nil, fmt.Errorf("gossip: bad contribution envelope: %w", err)
	}
	if h.Params() != s.params {
		return nil, fmt.Errorf("%w: got %+v, want %+v", ErrParams, h.Params(), s.params)
	}
	return h, nil
}

// Put joins one remote entry into the map. It returns applied=true when the
// entry replaced (or created) local state. Equal-version envelopes that
// differ byte-for-byte return ErrEquivocation and leave the store
// unchanged; stale or identical entries are a silent no-op.
func (s *Store) Put(e Entry) (applied bool, err error) {
	if _, err := s.decodeEnv(e.Env); err != nil {
		return false, err
	}
	k := e.key()
	cur, ok := s.entries[k]
	if ok {
		if e.Version < cur.Version {
			return false, nil
		}
		if e.Version == cur.Version {
			if bytes.Equal(e.Env, cur.Env) && e.Adds == cur.Adds && e.Frames == cur.Frames {
				return false, nil
			}
			return false, fmt.Errorf("%w: %s/%s@%d v%d", ErrEquivocation, e.Acc, e.Node, e.Epoch, e.Version)
		}
	}
	e.Env = append([]byte(nil), e.Env...)
	s.entries[k] = e
	return true, nil
}

// PutOwn records this node's current partial for one accumulator. The
// version is the owner's frame count: it increases exactly when the partial
// changes, so (key, version) names one unique byte string forever.
func (s *Store) PutOwn(acc, node string, epoch uint64, h *core.HP, adds, frames uint64) (changed bool, err error) {
	if h.Params() != s.params {
		return false, fmt.Errorf("%w: got %+v, want %+v", ErrParams, h.Params(), s.params)
	}
	k := entryKey{acc: acc, node: node, epoch: epoch}
	if cur, ok := s.entries[k]; ok && cur.Version >= frames {
		return false, nil
	}
	env, err := server.AppendHPFrame(nil, h)
	if err != nil {
		return false, err
	}
	s.entries[k] = Entry{
		Acc: acc, Node: node, Epoch: epoch,
		Version: frames, Adds: adds, Frames: frames, Env: env,
	}
	return true, nil
}

// Digests returns the anti-entropy summary: one Digest per contribution, in
// deterministic sorted-key order, each carrying the truncated SHA-256 of
// the envelope.
func (s *Store) Digests() []Digest {
	out := make([]Digest, 0, len(s.entries))
	for _, e := range s.entries {
		sum := sha256.Sum256(e.Env)
		d := Digest{Acc: e.Acc, Node: e.Node, Epoch: e.Epoch, Version: e.Version}
		copy(d.Sum[:], sum[:8])
		out = append(out, d)
	}
	sortDigests(out)
	return out
}

func sortDigests(ds []Digest) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := &ds[i], &ds[j]
		if a.Acc != b.Acc {
			return a.Acc < b.Acc
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Epoch < b.Epoch
	})
}

// Delta compares a peer's digest summary against local state. It returns
// the entries the peer is missing or stale on (ship, capped at MaxEntries —
// the next round repairs the remainder), the digests naming state the peer
// has that is newer than ours (want — triggers a pull request), and the
// number of keys where the summaries disagreed (mismatches, the
// digest-mismatch telemetry signal; it also counts same-version digests
// whose truncated hashes differ, i.e. suspected equivocation).
func (s *Store) Delta(theirs []Digest) (ship []Entry, want []Digest, mismatches int) {
	remote := make(map[entryKey]Digest, len(theirs))
	for _, d := range theirs {
		remote[entryKey{acc: d.Acc, node: d.Node, epoch: d.Epoch}] = d
	}
	var keys []entryKey
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
	// Byte budget keeps a delta inside one frame even with large envelopes;
	// whatever does not fit is repaired by the next round's digests.
	const maxShipBytes = 1 << 19
	shipBytes := 0
	for _, k := range keys {
		e := s.entries[k]
		d, ok := remote[k]
		switch {
		case !ok || d.Version < e.Version:
			mismatches++
			if len(ship) < MaxEntries && shipBytes+len(e.Env) <= maxShipBytes {
				ship = append(ship, e)
				shipBytes += len(e.Env)
			}
		case d.Version == e.Version:
			sum := sha256.Sum256(e.Env)
			if !bytes.Equal(d.Sum[:], sum[:8]) {
				mismatches++ // equivocation suspicion; keep ours, surface via telemetry
			}
		default: // d.Version > e.Version: they are ahead
			mismatches++
			if len(want) < MaxDigests {
				want = append(want, d)
			}
		}
		delete(remote, k)
	}
	// Keys only the peer has.
	for _, d := range theirs {
		if _, ok := remote[entryKey{acc: d.Acc, node: d.Node, epoch: d.Epoch}]; ok {
			mismatches++
			if len(want) < MaxDigests {
				want = append(want, d)
			}
		}
	}
	return ship, want, mismatches
}

func lessKey(a, b entryKey) bool {
	if a.acc != b.acc {
		return a.acc < b.acc
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.epoch < b.epoch
}

// Accs returns the accumulator names with at least one contribution,
// sorted.
func (s *Store) Accs() []string {
	seen := make(map[string]bool)
	for k := range s.entries {
		seen[k.acc] = true
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ClusterInfo is one merged cluster read: the fixed-order join of every
// contribution for one accumulator. Digest is the hex SHA-256 of the merged
// canonical envelope — two nodes have converged on an accumulator iff their
// Digests are equal, and exactness makes that equality bit-for-bit rather
// than approximate.
type ClusterInfo struct {
	Name         string  `json:"name"`
	Sum          float64 `json:"sum"`
	HP           string  `json:"hp"`
	Digest       string  `json:"digest"`
	Adds         uint64  `json:"adds"`
	Frames       uint64  `json:"frames"`
	Contributors int     `json:"contributors"`
	Nodes        int     `json:"nodes"`
	Err          string  `json:"error,omitempty"`
}

// ClusterSum merges every contribution for acc in sorted-key order through
// the engine's checked HP combine. Because HP addition is exact and the
// order is deterministic, every node holding the same contribution map
// returns byte-identical HP text and SHA-256 digest.
func (s *Store) ClusterSum(acc string) (ClusterInfo, error) {
	var keys []entryKey
	nodes := make(map[string]bool)
	for k := range s.entries {
		if k.acc == acc {
			keys = append(keys, k)
			nodes[k.node] = true
		}
	}
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })

	info := ClusterInfo{Name: acc, Contributors: len(keys), Nodes: len(nodes)}
	merged := core.NewAccumulator(s.params)
	for _, k := range keys {
		e := s.entries[k]
		h, err := s.decodeEnv(e.Env)
		if err != nil {
			return info, err
		}
		merged.AddHP(h)
		info.Adds += e.Adds
		info.Frames += e.Frames
	}
	if err := merged.Err(); err != nil {
		info.Err = err.Error()
		return info, err
	}
	env, err := merged.Sum().MarshalBinary()
	if err != nil {
		return info, err
	}
	dg := audit.DigestEnv(env)
	info.Digest = fmt.Sprintf("%x", dg[:])
	text, err := merged.Sum().MarshalText()
	if err != nil {
		return info, err
	}
	info.HP = string(text)
	info.Sum = merged.Float64()
	return info, nil
}

// Checkpoint blob: magic | version | node epoch | entry count | entries
// (wire encoding) | crc32. The node's epoch rides along so a restart can
// bump past it.
var checkpointMagic = []byte("HPGC")

const checkpointVersion = 1

// Checkpoint serializes the contribution map plus the owning node's epoch
// into a self-verifying blob for a CheckpointStore.
func (s *Store) Checkpoint(epoch uint64) ([]byte, error) {
	buf := append([]byte(nil), checkpointMagic...)
	buf = append(buf, checkpointVersion)
	buf = binary.BigEndian.AppendUint64(buf, epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.entries)))
	var keys []entryKey
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
	var err error
	for _, k := range keys {
		e := s.entries[k]
		if buf, err = appendEntry(buf, &e); err != nil {
			return nil, err
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// RestoreCheckpoint joins a checkpoint blob's entries into the store and
// returns the epoch the blob was taken in. The restart bumps past that
// epoch, freezing the old entries (they keep converging via anti-entropy)
// while new local frames accrue under the new epoch.
func (s *Store) RestoreCheckpoint(data []byte) (epoch uint64, err error) {
	const headLen = 4 + 1 + 8 + 4
	if len(data) < headLen+4 || !bytes.Equal(data[:4], checkpointMagic) {
		return 0, fmt.Errorf("%w: bad header", ErrBadCheckpoint)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return 0, fmt.Errorf("%w: checksum mismatch", ErrBadCheckpoint)
	}
	if body[4] != checkpointVersion {
		return 0, fmt.Errorf("%w: version %d", ErrBadCheckpoint, body[4])
	}
	epoch = binary.BigEndian.Uint64(body[5:13])
	count := int(binary.BigEndian.Uint32(body[13:17]))
	d := wireReader{buf: body[headLen:]}
	for i := 0; i < count && d.err == nil; i++ {
		e := d.entry()
		if d.err != nil {
			break
		}
		if _, err := s.Put(e); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	}
	if d.err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, d.err)
	}
	if len(d.buf) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(d.buf))
	}
	return epoch, nil
}
