package gossip

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func mkHP(t testing.TB, p core.Params, xs ...float64) *core.HP {
	t.Helper()
	a := core.NewAccumulator(p)
	a.AddAll(xs)
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	return a.Sum().Clone()
}

// testEnv512 builds an envelope in the wrong (512-bit) format for
// parameter-mismatch cases.
func testEnv512(t testing.TB, xs ...float64) []byte {
	t.Helper()
	return testEnv(t, core.Params512, xs...)
}

func mkEntry(t testing.TB, acc, node string, epoch, version uint64, xs ...float64) Entry {
	t.Helper()
	return Entry{
		Acc: acc, Node: node, Epoch: epoch, Version: version,
		Adds: uint64(len(xs)), Frames: version,
		Env: testEnv(t, core.Params384, xs...),
	}
}

func TestStoreJoinSemantics(t *testing.T) {
	s := NewStore(core.Params384)

	e1 := mkEntry(t, "acc", "n1", 1, 3, 1.0, 2.0, 3.0)
	if applied, err := s.Put(e1); err != nil || !applied {
		t.Fatalf("fresh put: applied=%v err=%v", applied, err)
	}
	// Idempotent: the identical entry is a no-op, not a double count.
	if applied, err := s.Put(e1); err != nil || applied {
		t.Fatalf("duplicate put: applied=%v err=%v", applied, err)
	}
	// Stale version ignored.
	if applied, err := s.Put(mkEntry(t, "acc", "n1", 1, 2, 1.0, 2.0)); err != nil || applied {
		t.Fatalf("stale put: applied=%v err=%v", applied, err)
	}
	// Newer version wins.
	if applied, err := s.Put(mkEntry(t, "acc", "n1", 1, 5, 1.0, 2.0, 3.0, 4.0, 5.0)); err != nil || !applied {
		t.Fatalf("newer put: applied=%v err=%v", applied, err)
	}
	// Same version, different bytes: equivocation.
	if _, err := s.Put(mkEntry(t, "acc", "n1", 1, 5, 9.0)); !errors.Is(err, ErrEquivocation) {
		t.Fatalf("equivocating put: err=%v, want ErrEquivocation", err)
	}
	// Wrong parameters rejected before touching the map.
	bad := mkEntry(t, "acc", "n1", 1, 9)
	bad.Env = testEnv512(t, 1.0)
	if _, err := s.Put(bad); !errors.Is(err, ErrParams) {
		t.Fatalf("param-mismatched put: err=%v, want ErrParams", err)
	}
	// Garbage envelope rejected.
	bad.Env = []byte{1, 2, 3}
	if _, err := s.Put(bad); err == nil {
		t.Fatal("garbage envelope accepted")
	}
	if s.Len() != 1 {
		t.Fatalf("store has %d entries, want 1", s.Len())
	}
}

// TestStoreClusterSumOrderInvariant: two stores fed the same contributions
// in different orders (and with different stale/duplicate interleavings)
// must produce bit-identical cluster reads — HP text and SHA-256 digest.
func TestStoreClusterSumOrderInvariant(t *testing.T) {
	entries := []Entry{
		mkEntry(t, "acc", "n1", 1, 2, 1.5, -2.25),
		mkEntry(t, "acc", "n2", 1, 3, 1e30, -1e30, 4.125),
		mkEntry(t, "acc", "n3", 5, 1, 1e-30),
		mkEntry(t, "acc", "n3", 7, 2, 0.125, 0.25), // same node, later epoch
	}
	a, b := NewStore(core.Params384), NewStore(core.Params384)
	for _, e := range entries {
		if _, err := a.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	// Reverse order, with a stale version and a duplicate mixed in.
	for i := len(entries) - 1; i >= 0; i-- {
		if _, err := b.Put(entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	b.Put(mkEntry(t, "acc", "n2", 1, 1, 7.0)) // stale: ignored
	b.Put(entries[0])                         // duplicate: ignored

	ia, err := a.ClusterSum("acc")
	if err != nil {
		t.Fatal(err)
	}
	ib, err := b.ClusterSum("acc")
	if err != nil {
		t.Fatal(err)
	}
	if ia.HP != ib.HP || ia.Digest != ib.Digest {
		t.Fatalf("cluster reads diverge:\n a: %s %s\n b: %s %s", ia.HP, ia.Digest, ib.HP, ib.Digest)
	}
	if ia.Contributors != 4 || ia.Nodes != 3 {
		t.Fatalf("contributors=%d nodes=%d, want 4/3", ia.Contributors, ia.Nodes)
	}

	// And the merged bits must equal a serial oracle over all values.
	oracle := mkHP(t, core.Params384, 1.5, -2.25, 1e30, -1e30, 4.125, 1e-30, 0.125, 0.25)
	txt, err := oracle.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if ia.HP != string(txt) {
		t.Fatalf("merged HP %s != oracle %s", ia.HP, txt)
	}
}

func TestStoreDelta(t *testing.T) {
	local, remote := NewStore(core.Params384), NewStore(core.Params384)
	shared := mkEntry(t, "acc", "n1", 1, 4, 1.0)
	local.Put(shared)
	remote.Put(shared)
	onlyLocal := mkEntry(t, "acc", "n2", 1, 2, 2.0)
	local.Put(onlyLocal)
	remoteNewer := mkEntry(t, "acc", "n3", 1, 9, 3.0)
	remote.Put(remoteNewer)
	remote.Put(mkEntry(t, "acc", "n4", 1, 1, 4.0))

	ship, want, mismatches := local.Delta(remote.Digests())
	if len(ship) != 1 || ship[0].Node != "n2" {
		t.Fatalf("ship=%+v, want just n2's entry", ship)
	}
	if len(want) != 2 {
		t.Fatalf("want=%+v, want n3 and n4 digests", want)
	}
	if mismatches != 3 {
		t.Fatalf("mismatches=%d, want 3", mismatches)
	}

	// Identical stores: no traffic, no mismatches.
	ship, want, mismatches = local.Delta(local.Digests())
	if len(ship) != 0 || len(want) != 0 || mismatches != 0 {
		t.Fatalf("self-delta not empty: ship=%d want=%d mismatches=%d", len(ship), len(want), mismatches)
	}
}

func TestStoreCheckpointRoundTrip(t *testing.T) {
	s := NewStore(core.Params384)
	s.Put(mkEntry(t, "acc", "n1", 1, 2, 1.0, 2.0))
	s.Put(mkEntry(t, "other", "n2", 3, 1, -7.5))
	blob, err := s.Checkpoint(42)
	if err != nil {
		t.Fatal(err)
	}

	restored := NewStore(core.Params384)
	epoch, err := restored.RestoreCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 42 {
		t.Fatalf("restored epoch %d, want 42", epoch)
	}
	for _, acc := range []string{"acc", "other"} {
		a, err := s.ClusterSum(acc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.ClusterSum(acc)
		if err != nil {
			t.Fatal(err)
		}
		if a.HP != b.HP || a.Digest != b.Digest {
			t.Fatalf("%s: restored read diverges", acc)
		}
	}

	// Corruption is rejected, not half-applied.
	for _, corrupt := range [][]byte{
		nil,
		blob[:len(blob)-1],
		append([]byte("XXXX"), blob[4:]...),
	} {
		if _, err := NewStore(core.Params384).RestoreCheckpoint(corrupt); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("corrupt blob: err=%v, want ErrBadCheckpoint", err)
		}
	}
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := NewStore(core.Params384).RestoreCheckpoint(flipped); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("bit-flipped blob: err=%v, want ErrBadCheckpoint", err)
	}
}
