package gossip

import (
	"sort"

	"repro/internal/rng"
)

// view is the bounded Brahms membership sample plus per-peer failure
// suspicion. It is not safe for concurrent use; the Node serializes access
// under its own mutex (like Store).
type view struct {
	self  string // own node id, never stored
	max   int
	peers map[string]*peerState
}

type peerState struct {
	peer   Peer
	misses int // consecutive send failures; reset by any sign of life
}

func newView(self string, max int) *view {
	return &view{self: self, max: max, peers: make(map[string]*peerState)}
}

// learn inserts or refreshes a peer and clears its suspicion counter. A
// full view only rotates through rebuild (the Brahms round step), so a
// single pushy sender cannot crowd the view between rounds.
func (v *view) learn(p Peer) {
	if p.ID == "" || p.ID == v.self {
		return
	}
	if st, ok := v.peers[p.ID]; ok {
		st.peer = p // addr may move across restarts
		st.misses = 0
		return
	}
	if len(v.peers) >= v.max {
		return
	}
	v.peers[p.ID] = &peerState{peer: p}
}

// remove drops a peer (leave message or suspicion eviction).
func (v *view) remove(id string) { delete(v.peers, id) }

// miss records one failed send. It reports true when the peer crossed the
// suspicion threshold and was evicted.
func (v *view) miss(id string, threshold int) bool {
	st, ok := v.peers[id]
	if !ok {
		return false
	}
	st.misses++
	if st.misses >= threshold {
		delete(v.peers, id)
		return true
	}
	return false
}

// alive resets a peer's suspicion counter after a successful send.
func (v *view) alive(id string) {
	if st, ok := v.peers[id]; ok {
		st.misses = 0
	}
}

// snapshot returns the current membership in deterministic (sorted-id)
// order.
func (v *view) snapshot() []Peer {
	out := make([]Peer, 0, len(v.peers))
	for _, st := range v.peers {
		out = append(out, st.peer)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (v *view) size() int { return len(v.peers) }

// sample draws up to k distinct peers uniformly from the view.
func (v *view) sample(k int, r *rng.Source) []Peer {
	all := v.snapshot()
	if k >= len(all) {
		return all
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(all)-i)
		all[i], all[j] = all[j], all[i]
	}
	return all[:k]
}

// rebuild is the Brahms round-end view update: the next view mixes peers
// pushed at us, peers learned from pull replies, and the history sampler's
// long-memory slots in roughly the classic 45/45/10 split. Two defenses
// from the paper are kept: a push flood (more pushers in one round than the
// view can hold) skips the update entirely, so an attacker spraying
// addresses cannot take the view over in one round; and the sampler's
// min-wise slots contribute peers an adversary cannot displace without
// winning independent hash minima.
func (v *view) rebuild(pushed, pulled []Peer, s *sampler, r *rng.Source) {
	pushed = dedupPeers(pushed, v.self)
	pulled = dedupPeers(pulled, v.self)
	if len(pushed) > v.max {
		return // push flood: distrust the round
	}
	if len(pushed) == 0 && len(pulled) == 0 {
		return
	}
	alpha := (v.max*45 + 99) / 100
	beta := (v.max*45 + 99) / 100
	gamma := v.max - min(alpha, len(pushed)) - min(beta, len(pulled))
	if gamma < 0 {
		gamma = 0
	}

	next := make(map[string]Peer, v.max)
	add := func(ps []Peer) {
		for _, p := range ps {
			if len(next) >= v.max {
				return
			}
			if _, ok := next[p.ID]; !ok {
				next[p.ID] = p
			}
		}
	}
	add(samplePeers(pushed, alpha, r))
	add(samplePeers(pulled, beta, r))
	add(s.sample(gamma, r))
	// Backfill from the current view so a quiet round does not shrink
	// membership below the bound.
	add(v.snapshot())

	fresh := make(map[string]*peerState, len(next))
	for id, p := range next {
		if st, ok := v.peers[id]; ok {
			st.peer = p
			fresh[id] = st
		} else {
			fresh[id] = &peerState{peer: p}
		}
	}
	v.peers = fresh
}

func dedupPeers(ps []Peer, self string) []Peer {
	seen := make(map[string]bool, len(ps))
	out := ps[:0:0]
	for _, p := range ps {
		if p.ID == "" || p.ID == self || seen[p.ID] {
			continue
		}
		seen[p.ID] = true
		out = append(out, p)
	}
	return out
}

func samplePeers(ps []Peer, k int, r *rng.Source) []Peer {
	if k >= len(ps) {
		return ps
	}
	ps = append([]Peer(nil), ps...)
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(ps)-i)
		ps[i], ps[j] = ps[j], ps[i]
	}
	return ps[:k]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sampler is the Brahms history sampler: a fixed bank of min-wise
// independent hash slots. Each slot keeps the peer whose seeded hash is the
// minimum over every id ever observed, so the bank converges to a uniform
// sample of the node's full history — an eclipse attacker flooding fresh
// addresses cannot displace an old honest peer from a slot without finding
// an id that hashes below it under that slot's seed.
type sampler struct {
	slots []samplerSlot
}

type samplerSlot struct {
	seed uint64
	min  uint64
	peer Peer // zero ID = unset
}

func newSampler(size int, seed uint64) *sampler {
	s := &sampler{slots: make([]samplerSlot, size)}
	x := seed
	for i := range s.slots {
		x = splitmix64(x + 0x9e3779b97f4a7c15)
		s.slots[i] = samplerSlot{seed: x, min: ^uint64(0)}
	}
	return s
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func idHash(seed uint64, id string) uint64 {
	// FNV-1a folded through splitmix so each slot's seed yields an
	// independent ordering over ids.
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return splitmix64(h ^ seed)
}

// observe offers a peer to every slot.
func (s *sampler) observe(p Peer, self string) {
	if p.ID == "" || p.ID == self {
		return
	}
	for i := range s.slots {
		sl := &s.slots[i]
		h := idHash(sl.seed, p.ID)
		switch {
		case sl.peer.ID == "" || h < sl.min:
			sl.min, sl.peer = h, p
		case sl.peer.ID == p.ID:
			sl.peer = p // refresh a moved address
		}
	}
}

// invalidate clears every slot holding id (Brahms slot re-validation after
// a peer is suspected dead), letting live peers win the slots back.
func (s *sampler) invalidate(id string) {
	for i := range s.slots {
		if s.slots[i].peer.ID == id {
			s.slots[i].peer = Peer{}
			s.slots[i].min = ^uint64(0)
		}
	}
}

// sample draws up to k distinct peers from the populated slots.
func (s *sampler) sample(k int, r *rng.Source) []Peer {
	if k <= 0 {
		return nil
	}
	byID := make(map[string]Peer)
	for i := range s.slots {
		if p := s.slots[i].peer; p.ID != "" {
			byID[p.ID] = p
		}
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if k < len(ids) {
		for i := 0; i < k; i++ {
			j := i + r.Intn(len(ids)-i)
			ids[i], ids[j] = ids[j], ids[i]
		}
		ids = ids[:k]
	}
	out := make([]Peer, 0, len(ids))
	for _, id := range ids {
		out = append(out, byID[id])
	}
	return out
}
