package gossip

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

func TestViewBoundsAndSuspicion(t *testing.T) {
	v := newView("self", 4)
	for i := 0; i < 10; i++ {
		v.learn(Peer{ID: fmt.Sprintf("p%d", i), Addr: "a"})
	}
	if v.size() != 4 {
		t.Fatalf("view size %d, want bound 4", v.size())
	}
	v.learn(Peer{ID: "self"})
	for _, p := range v.snapshot() {
		if p.ID == "self" {
			t.Fatal("view contains self")
		}
	}

	// Two misses keep the peer; the third evicts.
	id := v.snapshot()[0].ID
	if v.miss(id, 3) || v.miss(id, 3) {
		t.Fatal("evicted before threshold")
	}
	if !v.miss(id, 3) {
		t.Fatal("not evicted at threshold")
	}
	if v.size() != 3 {
		t.Fatalf("view size %d after eviction, want 3", v.size())
	}
	// A sign of life resets the counter.
	id2 := v.snapshot()[0].ID
	v.miss(id2, 3)
	v.miss(id2, 3)
	v.learn(Peer{ID: id2, Addr: "a"})
	if v.miss(id2, 3) {
		t.Fatal("learn did not reset the suspicion counter")
	}
}

// TestViewRebuildFloodDefense: a round where more distinct peers pushed
// than the view can hold is treated as an eclipse attempt and the update is
// skipped entirely.
func TestViewRebuildFloodDefense(t *testing.T) {
	r := rng.New(1)
	s := newSampler(8, 1)
	v := newView("self", 4)
	honest := []Peer{{ID: "h1"}, {ID: "h2"}}
	for _, p := range honest {
		v.learn(p)
		s.observe(p, "self")
	}
	before := v.snapshot()

	var flood []Peer
	for i := 0; i < 20; i++ {
		flood = append(flood, Peer{ID: fmt.Sprintf("evil%d", i)})
	}
	v.rebuild(flood, nil, s, r)
	after := v.snapshot()
	if len(after) != len(before) {
		t.Fatalf("flooded rebuild changed the view: %v -> %v", before, after)
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("flooded rebuild changed the view: %v -> %v", before, after)
		}
	}

	// A sane rebuild does rotate pushed peers in.
	v.rebuild([]Peer{{ID: "h3"}}, []Peer{{ID: "h4"}}, s, r)
	found := map[string]bool{}
	for _, p := range v.snapshot() {
		found[p.ID] = true
	}
	if !found["h3"] || !found["h4"] {
		t.Fatalf("rebuild dropped fresh peers: %v", v.snapshot())
	}
}

// TestSamplerMinWise: each slot keeps the minimum-hash id over the whole
// observation history, so the bank depends only on the SET of ids observed,
// never on their order or repetition count. That is the eclipse defense: an
// attacker gains nothing by flooding last, flooding often, or racing the
// honest peers — its ids only win slots where they genuinely hash lowest.
func TestSamplerMinWise(t *testing.T) {
	old := Peer{ID: "old-peer", Addr: "a"}
	s := newSampler(16, 42)
	s.observe(old, "self")
	for i := 0; i < 1000; i++ {
		s.observe(Peer{ID: fmt.Sprintf("fresh%d", i)}, "self")
	}

	// Same set, reversed order, with repetitions: identical slots.
	s2 := newSampler(16, 42)
	for i := 999; i >= 0; i-- {
		s2.observe(Peer{ID: fmt.Sprintf("fresh%d", i)}, "self")
		s2.observe(Peer{ID: fmt.Sprintf("fresh%d", i)}, "self")
	}
	s2.observe(old, "self")
	for i := range s.slots {
		if s.slots[i].peer != s2.slots[i].peer {
			t.Fatal("sampler bank depends on observation order")
		}
	}

	// Invalidation clears exactly the dead peer's slots and lets live
	// peers win them back.
	s3 := newSampler(8, 7)
	s3.observe(old, "self")
	s3.invalidate(old.ID)
	for _, sl := range s3.slots {
		if sl.peer.ID != "" {
			t.Fatal("invalidate left the dead peer in a slot")
		}
	}
	s3.observe(Peer{ID: "newcomer"}, "self")
	got := s3.sample(8, rng.New(7))
	if len(got) != 1 || got[0].ID != "newcomer" {
		t.Fatalf("sample after re-observation = %v, want just newcomer", got)
	}
}
