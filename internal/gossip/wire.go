// Package gossip clusters hpsumd daemons into a convergent summation
// fabric: a Brahms-style membership/peer-sampling layer (push/pull rounds,
// bounded views, a min-wise history sampler for eclipse resistance, failure
// suspicion) carrying an anti-entropy protocol over per-node HP envelope
// contributions.
//
// The replication model leans on the paper's central property: HP
// fixed-point addition is exactly associative and commutative, so a partial
// sum is a state-based CRDT — almost. Addition is NOT idempotent, so nodes
// never gossip "my current total" (re-merging it would double-count).
// Instead the replicated object is a grow-only map of contributions keyed
// by (accumulator, origin node, epoch): only the owner writes a key, each
// write carries a monotone version (the owner's frame count), and the join
// keeps the higher version per key. That map IS a join-semilattice, so any
// gossip schedule, any duplication, and any message loss converge every
// node to the same map — and because the merge of the map's envelopes runs
// in fixed sorted-key order through the engine's checked combine, every
// node's cluster read is bit-identical.
package gossip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/trace"
)

// Wire format: one gossip frame is
//
//	kind(1) | payloadLen(4, big-endian) | payload | crc32(4, big-endian)
//
// with the CRC-32 (IEEE, matching the server ingest frames and the
// core.SumCheckpoint convention) covering everything before it. Four frame
// kinds exist, all asynchronous one-way messages so neither transport (HTTP
// POST or mpi reliable frames) needs blocking request/response matching:
//
//	'P' — push: the sender advertises itself, a bounded view sample, and
//	      its contribution digests (Brahms push + anti-entropy probe);
//	'Q' — pull request: the sender asks for the receiver's view and for
//	      any contributions newer than the digests it encloses;
//	'R' — pull reply: view sample + digests + the entries the requester
//	      was missing;
//	'D' — delta: entries only — the anti-entropy repair a digest mismatch
//	      triggers;
//	'L' — leave: the sender is departing; drop it from views and samplers.
//
// The payload is a self-contained Message: sender identity and epoch, a
// trace context (zero = untraced) so gossip rounds stitch into end-to-end
// traces, and bounded view/digest/entry sections.
const (
	MsgPush    byte = 'P'
	MsgPullReq byte = 'Q'
	MsgPullRep byte = 'R'
	MsgDelta   byte = 'D'
	MsgLeave   byte = 'L'

	wireVersion = 1

	frameHeaderLen  = 5 // kind + payload length
	frameTrailerLen = 4 // crc32
	frameOverhead   = frameHeaderLen + frameTrailerLen
)

// MaxFramePayload caps one gossip frame's payload, mirroring the server
// ingest bound: the decoder rejects larger length prefixes before
// allocating or trusting anything past the header.
const MaxFramePayload = 1 << 20

// Section bounds: a frame that claims more is rejected before its contents
// are walked, so a corrupt count cannot force a huge allocation.
const (
	MaxViewEntries = 64
	MaxDigests     = 1024
	MaxEntries     = 256

	maxIDLen   = 128
	maxAddrLen = 256
	maxAccLen  = 128
	maxEnvLen  = 1 << 16
)

// Frame decoding errors; use errors.Is to classify.
var (
	ErrFrameTooLarge = errors.New("gossip: frame payload exceeds limit")
	ErrFrameChecksum = errors.New("gossip: frame checksum mismatch")
	ErrFrameKind     = errors.New("gossip: unknown frame kind")
	ErrFrameTrunc    = errors.New("gossip: truncated frame")
	ErrFrameVersion  = errors.New("gossip: unknown wire version")
	ErrFrameBounds   = errors.New("gossip: frame section exceeds bounds")
)

// Peer identifies one cluster member: a stable node id plus the address its
// transport delivers to (a base URL for HTTP, a decimal rank for mpi).
type Peer struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Digest summarizes one contribution for anti-entropy: its key, the owner's
// monotone version, and the first 8 bytes of the SHA-256 of the envelope
// frame — enough to detect both staleness (version) and equivocation (same
// version, different bytes) without shipping the envelope.
type Digest struct {
	Acc     string
	Node    string
	Epoch   uint64
	Version uint64
	Sum     [8]byte
}

// Entry is one shipped contribution: the owner's exact HP partial for one
// accumulator, wrapped in the server's FrameHP hand-off envelope ('h' frame
// bytes), plus the counters a cluster read reports.
type Entry struct {
	Acc     string
	Node    string
	Epoch   uint64
	Version uint64
	Adds    uint64
	Frames  uint64
	Env     []byte
}

// key is an Entry's identity in the contribution map.
func (e *Entry) key() entryKey { return entryKey{acc: e.Acc, node: e.Node, epoch: e.Epoch} }

// Message is one decoded gossip frame.
type Message struct {
	Kind    byte
	From    Peer
	Epoch   uint64
	Trace   trace.Context
	View    []Peer
	Digests []Digest
	Entries []Entry
}

// AppendMessage encodes m as one gossip frame appended to buf. Sections
// beyond the wire bounds are an error — callers bound them when building
// messages, so an oversize here is a bug, not an input condition.
func AppendMessage(buf []byte, m *Message) ([]byte, error) {
	switch m.Kind {
	case MsgPush, MsgPullReq, MsgPullRep, MsgDelta, MsgLeave:
	default:
		return buf, fmt.Errorf("%w 0x%02x", ErrFrameKind, m.Kind)
	}
	if len(m.View) > MaxViewEntries || len(m.Digests) > MaxDigests || len(m.Entries) > MaxEntries {
		return buf, fmt.Errorf("%w: %d view, %d digests, %d entries",
			ErrFrameBounds, len(m.View), len(m.Digests), len(m.Entries))
	}
	start := len(buf)
	buf = append(buf, m.Kind)
	buf = binary.BigEndian.AppendUint32(buf, 0) // payload length, patched below
	payloadStart := len(buf)

	buf = append(buf, wireVersion)
	var err error
	if buf, err = appendPeer(buf, m.From); err != nil {
		return buf[:start], err
	}
	buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, m.Trace.TraceID)
	buf = binary.BigEndian.AppendUint64(buf, m.Trace.SpanID)

	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.View)))
	for _, p := range m.View {
		if buf, err = appendPeer(buf, p); err != nil {
			return buf[:start], err
		}
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Digests)))
	for i := range m.Digests {
		if buf, err = appendDigest(buf, &m.Digests[i]); err != nil {
			return buf[:start], err
		}
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Entries)))
	for i := range m.Entries {
		if buf, err = appendEntry(buf, &m.Entries[i]); err != nil {
			return buf[:start], err
		}
	}

	plen := len(buf) - payloadStart
	if plen > MaxFramePayload {
		return buf[:start], fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, plen, MaxFramePayload)
	}
	binary.BigEndian.PutUint32(buf[start+1:], uint32(plen))
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:])), nil
}

func appendPeer(buf []byte, p Peer) ([]byte, error) {
	if len(p.ID) == 0 || len(p.ID) > maxIDLen {
		return buf, fmt.Errorf("gossip: peer id length %d (want 1..%d)", len(p.ID), maxIDLen)
	}
	if len(p.Addr) > maxAddrLen {
		return buf, fmt.Errorf("gossip: peer addr length %d > %d", len(p.Addr), maxAddrLen)
	}
	buf = append(buf, byte(len(p.ID)))
	buf = append(buf, p.ID...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Addr)))
	buf = append(buf, p.Addr...)
	return buf, nil
}

func appendDigest(buf []byte, d *Digest) ([]byte, error) {
	if err := checkNames(d.Acc, d.Node); err != nil {
		return buf, err
	}
	buf = append(buf, byte(len(d.Acc)))
	buf = append(buf, d.Acc...)
	buf = append(buf, byte(len(d.Node)))
	buf = append(buf, d.Node...)
	buf = binary.BigEndian.AppendUint64(buf, d.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, d.Version)
	buf = append(buf, d.Sum[:]...)
	return buf, nil
}

func appendEntry(buf []byte, e *Entry) ([]byte, error) {
	if err := checkNames(e.Acc, e.Node); err != nil {
		return buf, err
	}
	if len(e.Env) == 0 || len(e.Env) > maxEnvLen {
		return buf, fmt.Errorf("gossip: entry envelope length %d (want 1..%d)", len(e.Env), maxEnvLen)
	}
	buf = append(buf, byte(len(e.Acc)))
	buf = append(buf, e.Acc...)
	buf = append(buf, byte(len(e.Node)))
	buf = append(buf, e.Node...)
	buf = binary.BigEndian.AppendUint64(buf, e.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, e.Version)
	buf = binary.BigEndian.AppendUint64(buf, e.Adds)
	buf = binary.BigEndian.AppendUint64(buf, e.Frames)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Env)))
	buf = append(buf, e.Env...)
	return buf, nil
}

func checkNames(acc, node string) error {
	if len(acc) == 0 || len(acc) > maxAccLen {
		return fmt.Errorf("gossip: accumulator name length %d (want 1..%d)", len(acc), maxAccLen)
	}
	if len(node) == 0 || len(node) > maxIDLen {
		return fmt.Errorf("gossip: node id length %d (want 1..%d)", len(node), maxIDLen)
	}
	return nil
}

// DecodeMessage decodes the first gossip frame in data, returning the
// message and the number of bytes consumed so callers can walk a stream of
// concatenated frames. Every length and count is checked against the wire
// bounds before it is trusted; the checksum is verified before any section
// is walked. Decoded byte slices (entry envelopes) are copies — they do not
// alias data.
func DecodeMessage(data []byte) (*Message, int, error) {
	if len(data) < frameOverhead {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrFrameTrunc, len(data))
	}
	kind := data[0]
	switch kind {
	case MsgPush, MsgPullReq, MsgPullRep, MsgDelta, MsgLeave:
	default:
		return nil, 0, fmt.Errorf("%w 0x%02x", ErrFrameKind, kind)
	}
	plen := int(binary.BigEndian.Uint32(data[1:5]))
	if plen > MaxFramePayload {
		return nil, 0, fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, plen, MaxFramePayload)
	}
	total := frameHeaderLen + plen + frameTrailerLen
	if len(data) < total {
		return nil, 0, fmt.Errorf("%w: frame claims %d bytes, have %d", ErrFrameTrunc, total, len(data))
	}
	body := data[:frameHeaderLen+plen]
	stored := binary.BigEndian.Uint32(data[frameHeaderLen+plen:])
	if got := crc32.ChecksumIEEE(body); got != stored {
		return nil, 0, fmt.Errorf("%w (stored %08x, computed %08x)", ErrFrameChecksum, stored, got)
	}

	d := wireReader{buf: body[frameHeaderLen:]}
	if v := d.u8(); v != wireVersion {
		return nil, 0, fmt.Errorf("%w %d", ErrFrameVersion, v)
	}
	m := &Message{Kind: kind}
	m.From = d.peer()
	m.Epoch = d.u64()
	m.Trace = trace.Context{TraceID: d.u64(), SpanID: d.u64()}

	nview := int(d.u16())
	if nview > MaxViewEntries {
		return nil, 0, fmt.Errorf("%w: %d view entries > %d", ErrFrameBounds, nview, MaxViewEntries)
	}
	for i := 0; i < nview && d.err == nil; i++ {
		m.View = append(m.View, d.peer())
	}
	ndig := int(d.u16())
	if d.err == nil && ndig > MaxDigests {
		return nil, 0, fmt.Errorf("%w: %d digests > %d", ErrFrameBounds, ndig, MaxDigests)
	}
	for i := 0; i < ndig && d.err == nil; i++ {
		m.Digests = append(m.Digests, d.digest())
	}
	nent := int(d.u16())
	if d.err == nil && nent > MaxEntries {
		return nil, 0, fmt.Errorf("%w: %d entries > %d", ErrFrameBounds, nent, MaxEntries)
	}
	for i := 0; i < nent && d.err == nil; i++ {
		m.Entries = append(m.Entries, d.entry())
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	if len(d.buf) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrFrameTrunc, len(d.buf))
	}
	if m.From.ID == "" {
		return nil, 0, fmt.Errorf("gossip: frame without sender id")
	}
	return m, total, nil
}

// wireReader is a bounds-checked cursor over one frame's payload. The first
// failed read latches err and every later read returns zero values, so the
// decode loop stays linear without per-field error plumbing.
type wireReader struct {
	buf []byte
	err error
}

func (d *wireReader) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: reading %s", ErrFrameTrunc, what)
	}
}

func (d *wireReader) u8() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail("byte")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *wireReader) u16() uint16 {
	if d.err != nil || len(d.buf) < 2 {
		d.fail("uint16")
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v
}

func (d *wireReader) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail("uint64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *wireReader) bytes(n int, what string) []byte {
	if d.err != nil || n < 0 || len(d.buf) < n {
		d.fail(what)
		return nil
	}
	v := d.buf[:n]
	d.buf = d.buf[n:]
	return v
}

func (d *wireReader) str(n int, max int, what string) string {
	if d.err == nil && n > max {
		d.err = fmt.Errorf("%w: %s length %d > %d", ErrFrameBounds, what, n, max)
		return ""
	}
	return string(d.bytes(n, what))
}

func (d *wireReader) peer() Peer {
	var p Peer
	p.ID = d.str(int(d.u8()), maxIDLen, "peer id")
	p.Addr = d.str(int(d.u16()), maxAddrLen, "peer addr")
	if d.err == nil && p.ID == "" {
		d.err = fmt.Errorf("gossip: empty peer id")
	}
	return p
}

func (d *wireReader) digest() Digest {
	var g Digest
	g.Acc = d.str(int(d.u8()), maxAccLen, "digest acc")
	g.Node = d.str(int(d.u8()), maxIDLen, "digest node")
	g.Epoch = d.u64()
	g.Version = d.u64()
	copy(g.Sum[:], d.bytes(8, "digest sum"))
	if d.err == nil && (g.Acc == "" || g.Node == "") {
		d.err = fmt.Errorf("gossip: empty digest key")
	}
	return g
}

func (d *wireReader) entry() Entry {
	var e Entry
	e.Acc = d.str(int(d.u8()), maxAccLen, "entry acc")
	e.Node = d.str(int(d.u8()), maxIDLen, "entry node")
	e.Epoch = d.u64()
	e.Version = d.u64()
	e.Adds = d.u64()
	e.Frames = d.u64()
	elen := int(d.u32())
	if d.err == nil && (elen == 0 || elen > maxEnvLen) {
		d.err = fmt.Errorf("%w: entry envelope length %d", ErrFrameBounds, elen)
		return e
	}
	env := d.bytes(elen, "entry envelope")
	if d.err == nil && (e.Acc == "" || e.Node == "") {
		d.err = fmt.Errorf("gossip: empty entry key")
	}
	if d.err == nil {
		e.Env = append([]byte(nil), env...)
	}
	return e
}

func (d *wireReader) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail("uint32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}
