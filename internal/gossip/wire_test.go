package gossip

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/trace"
)

// testEnv builds a valid server FrameHP envelope for the given values.
func testEnv(t testing.TB, p core.Params, xs ...float64) []byte {
	t.Helper()
	a := core.NewAccumulator(p)
	a.AddAll(xs)
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	env, err := server.AppendHPFrame(nil, a.Sum())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func testMessage(t testing.TB) *Message {
	t.Helper()
	return &Message{
		Kind:  MsgPullRep,
		From:  Peer{ID: "node-a", Addr: "http://127.0.0.1:9001"},
		Epoch: 7,
		Trace: trace.Context{TraceID: 0x1122334455667788, SpanID: 0x99aabbccddeeff00},
		View: []Peer{
			{ID: "node-b", Addr: "http://127.0.0.1:9002"},
			{ID: "node-c", Addr: "http://127.0.0.1:9003"},
		},
		Digests: []Digest{
			{Acc: "metrics", Node: "node-a", Epoch: 7, Version: 42,
				Sum: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{Acc: "metrics", Node: "node-b", Epoch: 3, Version: 9,
				Sum: [8]byte{8, 7, 6, 5, 4, 3, 2, 1}},
		},
		Entries: []Entry{
			{Acc: "metrics", Node: "node-a", Epoch: 7, Version: 42, Adds: 1000, Frames: 42,
				Env: testEnv(t, core.Params384, 1.5, -0.25, 1e-9)},
		},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	want := testMessage(t)
	frame, err := AppendMessage(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, used, err := DecodeMessage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(frame) {
		t.Fatalf("consumed %d of %d bytes", used, len(frame))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Two concatenated frames decode as a stream.
	double, err := AppendMessage(append([]byte(nil), frame...), want)
	if err != nil {
		t.Fatal(err)
	}
	m1, u1, err := DecodeMessage(double)
	if err != nil {
		t.Fatal(err)
	}
	m2, u2, err := DecodeMessage(double[u1:])
	if err != nil {
		t.Fatal(err)
	}
	if u1+u2 != len(double) || !reflect.DeepEqual(m1, m2) {
		t.Fatal("concatenated frames did not decode identically")
	}
}

// TestMessageTruncation: every strict prefix of a valid frame must fail to
// decode — no prefix may silently parse as a shorter valid message.
func TestMessageTruncation(t *testing.T) {
	frame, err := AppendMessage(nil, testMessage(t))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(frame); n++ {
		if _, _, err := DecodeMessage(frame[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(frame))
		}
	}
}

// TestMessageBitFlips: every single-bit corruption of a valid frame must be
// rejected — the CRC covers the kind, the length, and the whole payload, so
// no flipped bit can yield a clean decode.
func TestMessageBitFlips(t *testing.T) {
	frame, err := AppendMessage(nil, testMessage(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(frame); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			if _, _, err := DecodeMessage(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded successfully", i, bit)
			}
		}
	}
}

// reframe recomputes the length and CRC trailer after a payload mutation,
// so the table below tests the payload validators rather than the checksum.
func reframe(frame []byte) []byte {
	body := frame[:len(frame)-frameTrailerLen]
	binary.BigEndian.PutUint32(body[1:5], uint32(len(body)-frameHeaderLen))
	return binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

func TestMessageDecodeTable(t *testing.T) {
	valid, err := AppendMessage(nil, testMessage(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error // nil = any non-nil error
	}{
		{"empty", func(f []byte) []byte { return nil }, ErrFrameTrunc},
		{"header only", func(f []byte) []byte { return f[:frameHeaderLen] }, ErrFrameTrunc},
		{"unknown kind", func(f []byte) []byte {
			f[0] = 'Z'
			return reframe(f)
		}, ErrFrameKind},
		{"bad wire version", func(f []byte) []byte {
			f[frameHeaderLen] = 99
			return reframe(f)
		}, ErrFrameVersion},
		{"oversize length prefix", func(f []byte) []byte {
			binary.BigEndian.PutUint32(f[1:5], MaxFramePayload+1)
			return f
		}, ErrFrameTooLarge},
		{"length prefix past buffer", func(f []byte) []byte {
			binary.BigEndian.PutUint32(f[1:5], uint32(len(f)))
			return f
		}, ErrFrameTrunc},
		{"corrupt payload byte", func(f []byte) []byte {
			f[frameHeaderLen+3] ^= 0xff
			return f
		}, ErrFrameChecksum},
		{"trailing garbage inside payload", func(f []byte) []byte {
			f = append(f[:len(f)-frameTrailerLen], 0xde, 0xad)
			return reframe(f)
		}, ErrFrameTrunc},
		{"view count beyond bound", func(f []byte) []byte {
			// View count sits after version + From peer + epoch + trace.
			off := frameHeaderLen + 1 + (1 + len("node-a")) + (2 + len("http://127.0.0.1:9001")) + 8 + 16
			binary.BigEndian.PutUint16(f[off:], MaxViewEntries+1)
			return reframe(f)
		}, ErrFrameBounds},
		{"view count claims more than present", func(f []byte) []byte {
			off := frameHeaderLen + 1 + (1 + len("node-a")) + (2 + len("http://127.0.0.1:9001")) + 8 + 16
			binary.BigEndian.PutUint16(f[off:], 60)
			return reframe(f)
		}, nil}, // garbage parsed as peers: bounds or truncation, either rejects
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeMessage(tc.mutate(append([]byte(nil), valid...)))
			if err == nil {
				t.Fatal("corrupt frame decoded successfully")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("got error %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestMessageEncodeBounds(t *testing.T) {
	big := testMessage(t)
	big.Entries = nil
	for i := 0; i <= MaxDigests; i++ {
		big.Digests = append(big.Digests, Digest{Acc: "a", Node: "n", Version: uint64(i)})
	}
	if _, err := AppendMessage(nil, big); !errors.Is(err, ErrFrameBounds) {
		t.Fatalf("got %v, want ErrFrameBounds", err)
	}

	m := testMessage(t)
	m.From.ID = strings.Repeat("x", maxIDLen+1)
	if _, err := AppendMessage(nil, m); err == nil {
		t.Fatal("oversize peer id encoded successfully")
	}
	m = testMessage(t)
	m.Kind = 'X'
	if _, err := AppendMessage(nil, m); !errors.Is(err, ErrFrameKind) {
		t.Fatal("unknown kind encoded successfully")
	}
}
