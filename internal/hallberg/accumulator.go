package hallberg

// Accumulator sums float64 values in Hallberg form while tracking the
// summand budget: once more than Params.MaxSummands values have been added,
// the no-carry guarantee is void and ErrTooManySummands is latched. This is
// the runtime embodiment of the method's a-priori-count requirement that
// the paper contrasts with HP (§II.B).
type Accumulator struct {
	sum     *Num
	scratch *Num
	count   int64
	err     error
}

// NewAccumulator returns a zeroed accumulator with format p.
func NewAccumulator(p Params) *Accumulator {
	return &Accumulator{sum: NewNum(p), scratch: NewNum(p)}
}

// Params returns the accumulator's format.
func (a *Accumulator) Params() Params { return a.sum.p }

// Count returns how many values have been added since the last Reset.
func (a *Accumulator) Count() int64 { return a.count }

// Add converts x and adds it limb-wise. Conversion faults and budget
// exhaustion latch the sticky error (first one wins); conversion faults
// leave the sum unchanged.
func (a *Accumulator) Add(x float64) {
	if err := a.scratch.SetFloat64(x); err != nil {
		if a.err == nil {
			a.err = err
		}
		return
	}
	a.count++
	if a.count > a.sum.p.MaxSummands() && a.err == nil {
		a.err = ErrTooManySummands
	}
	a.sum.Add(a.scratch)
}

// AddAll adds every element of xs.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// AddNum adds a partial sum produced by another accumulator, charging its
// summand count against the budget.
func (a *Accumulator) AddNum(x *Num, count int64) {
	if x.p != a.sum.p {
		if a.err == nil {
			a.err = ErrParamMismatch
		}
		return
	}
	a.count += count
	if a.count > a.sum.p.MaxSummands() && a.err == nil {
		a.err = ErrTooManySummands
	}
	a.sum.Add(x)
}

// Err returns the sticky error, or nil.
func (a *Accumulator) Err() error { return a.err }

// Sum returns the accumulated value (owned by a, not normalized).
func (a *Accumulator) Sum() *Num { return a.sum }

// Float64 returns the running sum converted to float64 (normalizing a
// copy first).
func (a *Accumulator) Float64() float64 { return a.sum.Float64() }

// Reset zeroes the sum, count, and sticky error.
func (a *Accumulator) Reset() {
	a.sum.SetZero()
	a.count = 0
	a.err = nil
}

// Sum computes the Hallberg sum of xs with format p, returning the rounded
// float64 result and the first error (range fault or budget exhaustion).
func Sum(p Params, xs []float64) (float64, error) {
	a := NewAccumulator(p)
	a.AddAll(xs)
	return a.Float64(), a.Err()
}
