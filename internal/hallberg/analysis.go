package hallberg

// Analytic performance model from the paper's §IV.A (equations 3-6),
// predicting the speedup of the HP method over the Hallberg method as a
// function of precision and the Hallberg payload width M.

// BlocksHP returns the paper's N_p = ceil((b+1)/64): the HP limb count
// needed for b precision bits plus the sign bit (eq. 3, left).
func BlocksHP(precisionBits int) int {
	return (precisionBits + 1 + 63) / 64
}

// BlocksHallberg returns the paper's N_b = ceil(b/M): the Hallberg limb
// count needed for b precision bits at M payload bits per limb (eq. 3,
// right).
func BlocksHallberg(precisionBits, m int) int {
	return (precisionBits + m - 1) / m
}

// PredictedSpeedup returns S = T_b/T_p = (c_b * N_b) / (c_p * N_p) from
// eq. 4: the exact ratio of the two methods' block counts weighted by their
// per-block costs c_b and c_p (empirically calibrated constants).
func PredictedSpeedup(costRatio float64, precisionBits, m int) float64 {
	return costRatio * float64(BlocksHallberg(precisionBits, m)) /
		float64(BlocksHP(precisionBits))
}

// SpeedupLowerBound returns the paper's eq. 6 bound, valid for
// precisionBits > 64:
//
//	S >= (c_b/c_p) * 32/M
//
// derived from eq. 5 by bounding b/(b+65) >= 1/2. Reducing M (to
// accommodate more summands) therefore raises the guaranteed advantage of
// the HP method — the formal statement of "HP wins at scale".
func SpeedupLowerBound(costRatio float64, m int) float64 {
	return costRatio * 32 / float64(m)
}

// SpeedupBoundEq5 returns the intermediate eq. 5 bound
// S >= (c_b/c_p) * (64/M) * (b/(b+65)), which retains the weak dependence
// of the speedup on the precision b that the paper notes.
func SpeedupBoundEq5(costRatio float64, precisionBits, m int) float64 {
	b := float64(precisionBits)
	return costRatio * (64 / float64(m)) * (b / (b + 65))
}
