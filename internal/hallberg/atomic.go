package hallberg

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// Telemetry mirroring the HP atomic adder's counters, so the two methods'
// contention behavior (paper Figure 7) can be compared live at /metrics.
var (
	mAddNum = telemetry.NewCounter("hallberg_addnum_total",
		"Atomic fetch-add Hallberg additions (Atomic.AddNum calls).")
	mAddNumCAS = telemetry.NewCounter("hallberg_addnum_cas_total",
		"Atomic CAS-loop Hallberg additions (Atomic.AddNumCAS calls).")
	mCASRetries = telemetry.NewCounter("hallberg_cas_retries_total",
		"Failed compare-and-swap attempts inside Atomic.AddNumCAS.")
)

// Atomic is a Hallberg accumulator safe for concurrent addition. Because
// the method performs no carry propagation, each limb is an independent
// atomic counter; unlike the HP atomic adder no carry hand-off between
// limbs is needed, but each addition still touches N limbs of shared
// memory (the paper's Figure 7 discussion counts eleven 64-bit reads and
// ten writes per add for N=10, versus seven/six for HP(6,3)).
type Atomic struct {
	p     Params
	limbs []atomic.Int64
}

// NewAtomic returns a zeroed atomic accumulator with format p.
func NewAtomic(p Params) *Atomic {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Atomic{p: p, limbs: make([]atomic.Int64, p.N)}
}

// Params returns the accumulator's format.
func (a *Atomic) Params() Params { return a.p }

// AddNum atomically adds x limb-wise using fetch-add.
func (a *Atomic) AddNum(x *Num) {
	if x.p != a.p {
		panic(ErrParamMismatch)
	}
	for i, l := range x.limbs {
		if l != 0 {
			a.limbs[i].Add(l)
		}
	}
	mAddNum.Inc()
}

// AddNumCAS atomically adds x limb-wise using compare-and-swap loops, the
// primitive available in the paper's CUDA environment.
func (a *Atomic) AddNumCAS(x *Num) {
	if x.p != a.p {
		panic(ErrParamMismatch)
	}
	var retries uint64
	for i, l := range x.limbs {
		if l == 0 {
			continue
		}
		for {
			old := a.limbs[i].Load()
			if a.limbs[i].CompareAndSwap(old, old+l) {
				break
			}
			retries++
		}
	}
	if telemetry.Enabled() {
		mAddNumCAS.Inc()
		mCASRetries.Add(retries)
	}
}

// AddFloat64 converts x into scratch (caller-owned, matching format) and
// atomically adds it.
func (a *Atomic) AddFloat64(x float64, scratch *Num) error {
	if err := scratch.SetFloat64(x); err != nil {
		return err
	}
	a.AddNum(scratch)
	return nil
}

// Snapshot copies the limbs into a plain Num. As with the HP Atomic, the
// multi-limb read is only meaningful after all writers have finished.
func (a *Atomic) Snapshot() *Num {
	z := NewNum(a.p)
	for i := range a.limbs {
		z.limbs[i] = a.limbs[i].Load()
	}
	return z
}

// Reset zeroes the accumulator; must not race with adds.
func (a *Atomic) Reset() {
	for i := range a.limbs {
		a.limbs[i].Store(0)
	}
}
