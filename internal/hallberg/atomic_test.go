package hallberg

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

func TestAtomicMatchesSequential(t *testing.T) {
	p := New(10, 38)
	const workers = 8
	const perWorker = 2000
	r := rng.New(21)
	xs := rng.UniformSet(r, workers*perWorker, -0.5, 0.5)

	seq := NewAccumulator(p)
	seq.AddAll(xs)
	if seq.Err() != nil {
		t.Fatal(seq.Err())
	}

	for _, flavor := range []struct {
		name string
		add  func(a *Atomic, x *Num)
	}{
		{"fetch-add", func(a *Atomic, x *Num) { a.AddNum(x) }},
		{"cas", func(a *Atomic, x *Num) { a.AddNumCAS(x) }},
	} {
		t.Run(flavor.name, func(t *testing.T) {
			acc := NewAtomic(p)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(slice []float64) {
					defer wg.Done()
					scratch := NewNum(p)
					for _, x := range slice {
						if err := scratch.SetFloat64(x); err != nil {
							t.Error(err)
							return
						}
						flavor.add(acc, scratch)
					}
				}(xs[w*perWorker : (w+1)*perWorker])
			}
			wg.Wait()
			got := acc.Snapshot()
			la, lb := got.Limbs(), seq.Sum().Limbs()
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("limb %d: atomic %d != sequential %d", i, la[i], lb[i])
				}
			}
		})
	}
}

func TestAtomicZeroSum(t *testing.T) {
	p := New(6, 40)
	r := rng.New(22)
	xs := rng.ZeroSum(r, 8192, 0.001)
	acc := NewAtomic(p)
	var wg sync.WaitGroup
	const workers = 8
	chunk := len(xs) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slice []float64) {
			defer wg.Done()
			scratch := NewNum(p)
			for _, x := range slice {
				if err := acc.AddFloat64(x, scratch); err != nil {
					t.Error(err)
					return
				}
			}
		}(xs[w*chunk : (w+1)*chunk])
	}
	wg.Wait()
	if got := acc.Snapshot(); !got.IsZero() {
		t.Errorf("concurrent zero-sum = %s", got.Rat().RatString())
	}
}

func TestAtomicResetAndMismatch(t *testing.T) {
	p := New(4, 30)
	acc := NewAtomic(p)
	scratch := NewNum(p)
	if err := acc.AddFloat64(2.5, scratch); err != nil {
		t.Fatal(err)
	}
	if acc.Snapshot().Float64() != 2.5 {
		t.Error("add lost")
	}
	acc.Reset()
	if !acc.Snapshot().IsZero() {
		t.Error("Reset failed")
	}
	if acc.Params() != p {
		t.Error("Params")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched params")
		}
	}()
	acc.AddNum(NewNum(New(2, 20)))
}
