// Package hallberg implements the order-invariant real-to-integer
// conversion sum of Hallberg & Adcroft (Parallel Computing 40, 2014),
// reference [11] of the reproduced paper and its principal baseline.
//
// A real number r is represented by N signed 64-bit limbs a[0..N-1]
// (limb 0 least significant here) with
//
//	r = sum_{i=0..N-1} a_i * 2^(M*(i-F))        (paper eq. 1, F = N/2)
//
// where M < 63 is the number of payload bits per limb. The remaining
// 63 - M bits of each limb are headroom: two numbers are added by summing
// their limbs independently with NO carry propagation, so up to
// 2^(63-M) - 1 values can be accumulated before any limb can overflow.
// The price, relative to the HP method, is threefold (paper §II.B):
// bookkeeping bits reduce information density, the representation aliases
// (many limb vectors denote the same real), and the summand count must be
// known a priori to choose M safely.
package hallberg

import (
	"errors"
	"fmt"
	"math"
	"math/big"
)

// Errors reported by conversions and checked accumulation.
var (
	// ErrNotFinite is returned when converting NaN or infinity.
	ErrNotFinite = errors.New("hallberg: value is NaN or infinite")
	// ErrOverflow is returned when a value exceeds the representable range.
	ErrOverflow = errors.New("hallberg: overflow")
	// ErrUnderflow is returned when a value has bits below the resolution
	// 2^(-M*F) that would be silently truncated.
	ErrUnderflow = errors.New("hallberg: underflow")
	// ErrTooManySummands is returned by the checked accumulator when more
	// than MaxSummands values are added, voiding the no-carry guarantee.
	ErrTooManySummands = errors.New("hallberg: summand budget exceeded")
	// ErrParamMismatch is returned when mixing numbers of different formats.
	ErrParamMismatch = errors.New("hallberg: mismatched parameters")
)

// Params selects a Hallberg format: N limbs of M payload bits, F of which
// are fractional. The original method fixes F = N/2, splitting precision
// evenly around the binary point.
type Params struct {
	N int // total limbs, >= 1
	M int // payload bits per limb, 1 <= M <= 62
	F int // fractional limbs, 0 <= F <= N
}

// New returns the canonical format with F = N/2, as in Hallberg & Adcroft.
func New(n, m int) Params { return Params{N: n, M: m, F: n / 2} }

// Validate reports whether p is usable.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("hallberg: N must be >= 1, got %d", p.N)
	}
	if p.M < 1 || p.M > 62 {
		return fmt.Errorf("hallberg: M must be in [1, 62], got %d", p.M)
	}
	if p.F < 0 || p.F > p.N {
		return fmt.Errorf("hallberg: F must be in [0, N], got F=%d N=%d", p.F, p.N)
	}
	return nil
}

// PrecisionBits returns the total payload precision N*M (the paper's
// Table 2 "Precision Bits" column).
func (p Params) PrecisionBits() int { return p.N * p.M }

// MaxCarries returns the number of carries the per-limb headroom absorbs:
// 2^(63-M) - 1 (paper §II.B).
func (p Params) MaxCarries() int64 { return (int64(1) << uint(63-p.M)) - 1 }

// MaxSummands returns how many values can be accumulated before a limb
// could overflow: one more than MaxCarries, matching the paper's Table 2
// (M=52 -> 2048 summands, M=43 -> 1M, M=37 -> 64M).
func (p Params) MaxSummands() int64 { return int64(1) << uint(63-p.M) }

// MaxRange returns the magnitude bound 2^(M*(N-F)) of representable values.
func (p Params) MaxRange() float64 { return math.Ldexp(1, p.M*(p.N-p.F)) }

// Smallest returns the resolution 2^(-M*F).
func (p Params) Smallest() float64 { return math.Ldexp(1, -p.M*p.F) }

// String returns a compact description such as "Hallberg(N=10,M=38)".
func (p Params) String() string {
	return fmt.Sprintf("Hallberg(N=%d,M=%d)", p.N, p.M)
}

// ParamsFor returns the format with at least precisionBits of payload that
// safely accommodates maxSummands additions, reproducing the paper's
// Table 2 selection rule: pick the largest M whose headroom covers the
// summand count, then the smallest N reaching the precision target.
func ParamsFor(precisionBits int, maxSummands int64) (Params, error) {
	if precisionBits < 1 || maxSummands < 1 {
		return Params{}, fmt.Errorf("hallberg: invalid targets (%d bits, %d summands)",
			precisionBits, maxSummands)
	}
	for m := 62; m >= 1; m-- {
		if int64(1)<<uint(63-m) >= maxSummands {
			n := (precisionBits + m - 1) / m
			if n%2 == 1 {
				n++ // keep the even split of the original method
			}
			p := New(n, m)
			if err := p.Validate(); err != nil {
				return Params{}, err
			}
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("hallberg: no M accommodates %d summands", maxSummands)
}

// Num is a Hallberg-format number. Limb 0 is least significant, with weight
// 2^(M*(0-F)). The zero value is unusable; use NewNum.
type Num struct {
	p     Params
	limbs []int64
}

// NewNum returns a zero number with parameters p, panicking if p is invalid.
func NewNum(p Params) *Num {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Num{p: p, limbs: make([]int64, p.N)}
}

// NumFromLimbs builds a number directly from a limb vector (least
// significant first), e.g. when deserializing a partial sum received from
// another process. The limbs are copied.
func NumFromLimbs(p Params, limbs []int64) (*Num, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(limbs) != p.N {
		return nil, fmt.Errorf("hallberg: %d limbs for N=%d", len(limbs), p.N)
	}
	z := NewNum(p)
	copy(z.limbs, limbs)
	return z, nil
}

// Params returns the number's format.
func (x *Num) Params() Params { return x.p }

// Limbs returns a copy of the limb vector, least significant first.
func (x *Num) Limbs() []int64 {
	out := make([]int64, len(x.limbs))
	copy(out, x.limbs)
	return out
}

// SetZero resets x to zero (the canonical zero: all limbs zero).
func (x *Num) SetZero() *Num {
	for i := range x.limbs {
		x.limbs[i] = 0
	}
	return x
}

// Clone returns an independent copy.
func (x *Num) Clone() *Num {
	z := &Num{p: x.p, limbs: make([]int64, len(x.limbs))}
	copy(z.limbs, x.limbs)
	return z
}

// SetFloat64 converts v exactly into x, peeling M bits per limb from the
// most significant limb downward with 2 floating-point multiplies and 1 add
// per limb, as in the original method ([11]; the paper's §IV.A op counts
// describe this loop). Every step is exact: the truncated part of v is
// representable, so the remainder subtraction incurs no rounding.
func (x *Num) SetFloat64(v float64) error {
	x.SetZero()
	if v == 0 {
		return nil
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return ErrNotFinite
	}
	if math.Abs(v) >= p2(x.p.M*(x.p.N-x.p.F)) {
		return ErrOverflow
	}
	rem := v
	for i := x.p.N - 1; i >= 0 && rem != 0; i-- {
		w := p2(x.p.M * (i - x.p.F))                // weight of limb i
		a := math.Trunc(rem * p2(-x.p.M*(i-x.p.F))) // rem / w, toward zero
		x.limbs[i] = int64(a)
		rem -= a * w
	}
	if rem != 0 {
		// Bits below the resolution 2^(-M*F) remain: silently truncating
		// them would break exactness, so reject (the original method has
		// no such check; the checked path makes the comparison fair).
		x.SetZero()
		return ErrUnderflow
	}
	return nil
}

// p2 returns 2^e as a float64.
func p2(e int) float64 { return math.Ldexp(1, e) }

// Add adds y into x limb-wise with no carry propagation — the core of the
// method's speed. The caller must respect the MaxSummands budget; use
// Accumulator for a checked wrapper.
func (x *Num) Add(y *Num) {
	if x.p != y.p {
		panic(ErrParamMismatch)
	}
	for i, l := range y.limbs {
		x.limbs[i] += l
	}
}

// Neg negates x limb-wise.
func (x *Num) Neg() *Num {
	for i := range x.limbs {
		x.limbs[i] = -x.limbs[i]
	}
	return x
}

// Normalize rewrites x into canonical form, resolving the aliasing inherent
// in the representation: afterwards every limb except the most significant
// lies in [0, 2^M), and the most significant carries the sign. Two limb
// vectors denote the same real number iff their normalized forms are
// identical. Returns x, or an error if the value cannot be normalized
// because the most significant limb overflows.
func (x *Num) Normalize() (*Num, error) {
	var carry int64
	m := uint(x.p.M)
	base := int64(1) << m
	for i := 0; i < x.p.N; i++ {
		v := x.limbs[i] + carry
		// Floor division by 2^M.
		carry = v >> m
		x.limbs[i] = v - carry<<m
	}
	if carry != 0 && carry != -1 {
		return x, ErrOverflow
	}
	if carry == -1 {
		// Negative value: fold the sign into the most significant limb.
		x.limbs[x.p.N-1] -= base
		// Re-canonicalize: sweep the negative sign downward so that all
		// lower limbs stay in [0, 2^M) and only the top limb is negative.
		// One pass suffices because only the top limb changed.
	}
	return x, nil
}

// IsZero reports whether x denotes exactly zero. It normalizes a copy, so
// it is alias-safe.
func (x *Num) IsZero() bool {
	c := x.Clone()
	if _, err := c.Normalize(); err != nil {
		return false
	}
	for _, l := range c.limbs {
		if l != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether x and y denote the same real number (comparing
// normalized forms, so aliased representations compare equal).
func (x *Num) Equal(y *Num) bool {
	if x.p != y.p {
		return false
	}
	a := x.Clone()
	b := y.Clone()
	if _, err := a.Normalize(); err != nil {
		return false
	}
	if _, err := b.Normalize(); err != nil {
		return false
	}
	for i := range a.limbs {
		if a.limbs[i] != b.limbs[i] {
			return false
		}
	}
	return true
}

// Float64 converts x to float64 by normalizing a copy and accumulating the
// limbs most-significant first. This mirrors the original method's
// conversion; the result can differ from correct rounding by double
// rounding in rare cases (use Rat for exact comparisons).
func (x *Num) Float64() float64 {
	c := x.Clone()
	if _, err := c.Normalize(); err != nil {
		return math.Inf(sign(x))
	}
	v := 0.0
	for i := c.p.N - 1; i >= 0; i-- {
		v += float64(c.limbs[i]) * p2(c.p.M*(i-c.p.F))
	}
	return v
}

// sign returns the sign of the most significant nonzero limb.
func sign(x *Num) int {
	for i := len(x.limbs) - 1; i >= 0; i-- {
		if x.limbs[i] != 0 {
			if x.limbs[i] < 0 {
				return -1
			}
			return 1
		}
	}
	return 1
}

// Rat returns the exact value of x as a rational number.
func (x *Num) Rat() *big.Rat {
	sum := new(big.Rat)
	term := new(big.Rat)
	two := big.NewInt(2)
	for i, l := range x.limbs {
		if l == 0 {
			continue
		}
		e := x.p.M * (i - x.p.F)
		term.SetInt64(l)
		if e >= 0 {
			scale := new(big.Int).Exp(two, big.NewInt(int64(e)), nil)
			term.Mul(term, new(big.Rat).SetInt(scale))
		} else {
			scale := new(big.Int).Exp(two, big.NewInt(int64(-e)), nil)
			term.Quo(term, new(big.Rat).SetInt(scale))
		}
		sum.Add(sum, term)
	}
	return sum
}
