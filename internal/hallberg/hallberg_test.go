package hallberg

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/exact"
	"repro/internal/rng"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{New(10, 38), true},
		{New(2, 62), true},
		{Params{N: 4, M: 32, F: 0}, true},
		{Params{N: 4, M: 32, F: 4}, true},
		{Params{N: 0, M: 38, F: 0}, false},
		{Params{N: 4, M: 0, F: 2}, false},
		{Params{N: 4, M: 63, F: 2}, false},
		{Params{N: 4, M: 32, F: 5}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

// TestTable2 reproduces the paper's Table 2: (N, M) pairs giving ~512-bit
// precision for increasing summand budgets.
func TestTable2(t *testing.T) {
	cases := []struct {
		maxSummands int64
		wantN       int
		wantM       int
		wantBits    int
	}{
		{2048, 10, 52, 520},
		{1 << 20, 12, 43, 516},
		{64 << 20, 14, 37, 518},
	}
	for _, c := range cases {
		p, err := ParamsFor(512, c.maxSummands)
		if err != nil {
			t.Fatal(err)
		}
		if p.N != c.wantN || p.M != c.wantM {
			t.Errorf("ParamsFor(512, %d) = (N=%d, M=%d), want (N=%d, M=%d)",
				c.maxSummands, p.N, p.M, c.wantN, c.wantM)
		}
		if got := p.PrecisionBits(); got != c.wantBits {
			t.Errorf("PrecisionBits = %d, want %d", got, c.wantBits)
		}
		if p.MaxSummands() < c.maxSummands {
			t.Errorf("MaxSummands = %d < requested %d", p.MaxSummands(), c.maxSummands)
		}
	}
}

func TestMaxSummandsFormula(t *testing.T) {
	// Paper §II.B: the carry buffer holds 2^(63-M) - 1 carries, i.e.
	// 2^(63-M) summands (Table 2).
	if got := New(10, 52).MaxCarries(); got != 2047 {
		t.Errorf("M=52 carries: %d, want 2047", got)
	}
	if got := New(10, 52).MaxSummands(); got != 2048 {
		t.Errorf("M=52 summands: %d, want 2048", got)
	}
	if got := New(12, 43).MaxSummands(); got != 1<<20 {
		t.Errorf("M=43 summands: %d, want 2^20", got)
	}
}

func TestSetFloat64RoundTrip(t *testing.T) {
	p := New(10, 38) // the paper's strong-scaling baseline format
	r := rng.New(1)
	n := NewNum(p)
	for i := 0; i < 2000; i++ {
		x := r.Exp2Uniform(-120, 120)
		if err := n.SetFloat64(x); err != nil {
			t.Fatalf("SetFloat64(%g): %v", x, err)
		}
		if got := n.Float64(); got != x {
			t.Fatalf("round trip %g -> %g", x, got)
		}
		if n.Rat().Cmp(exactRat(x)) != 0 {
			t.Fatalf("Rat(%g) inexact", x)
		}
	}
}

func exactRat(x float64) *big.Rat {
	a := exact.New()
	a.Add(x)
	return a.Rat()
}

func TestSetFloat64Errors(t *testing.T) {
	p := New(4, 30) // range 2^60, resolution 2^-60
	n := NewNum(p)
	if err := n.SetFloat64(math.NaN()); err != ErrNotFinite {
		t.Errorf("NaN: %v", err)
	}
	if err := n.SetFloat64(math.Inf(1)); err != ErrNotFinite {
		t.Errorf("Inf: %v", err)
	}
	if err := n.SetFloat64(math.Ldexp(1, 61)); err != ErrOverflow {
		t.Errorf("2^61: %v", err)
	}
	if err := n.SetFloat64(math.Ldexp(1, -61)); err != ErrUnderflow {
		t.Errorf("2^-61: %v", err)
	}
	if err := n.SetFloat64(math.Ldexp(1, 59)); err != nil {
		t.Errorf("2^59: %v", err)
	}
	n.SetFloat64(math.Ldexp(1, -61))
	for _, l := range n.Limbs() {
		if l != 0 {
			t.Error("failed conversion left residue")
		}
	}
}

func TestAddAndOrderInvariance(t *testing.T) {
	p := New(10, 38)
	r := rng.New(2)
	xs := rng.UniformSet(r, 5000, -0.5, 0.5)
	a := NewAccumulator(p)
	a.AddAll(xs)
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
	b := NewAccumulator(p)
	b.AddAll(rng.Reorder(r, xs))
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	// Limb-wise sums are integer additions: bit-identical across orders.
	la, lb := a.Sum().Limbs(), b.Sum().Limbs()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("limb %d differs across orders", i)
		}
	}
	// And the value matches the exact oracle.
	oracle := exact.New()
	oracle.AddAll(xs)
	if a.Sum().Rat().Cmp(oracle.Rat()) != 0 {
		t.Error("Hallberg sum diverged from oracle")
	}
}

func TestZeroSumExactness(t *testing.T) {
	p := New(6, 40)
	r := rng.New(3)
	xs := rng.ZeroSum(r, 1024, 0.001)
	a := NewAccumulator(p)
	a.AddAll(xs)
	if a.Err() != nil {
		t.Fatal(a.Err())
	}
	if !a.Sum().IsZero() {
		t.Errorf("zero-sum set: got %s", a.Sum().Rat().RatString())
	}
	if got := a.Float64(); got != 0 {
		t.Errorf("Float64 = %g, want 0", got)
	}
}

// Aliasing (paper §II.B): different limb vectors can denote the same value;
// Normalize must canonicalize them and Equal must see through the aliasing.
func TestAliasingAndNormalize(t *testing.T) {
	p := New(4, 20)
	// Build 1.0 two ways: directly, and as 0.5 + 0.5 (which leaves a
	// different pre-normalization limb pattern than the direct encoding
	// of 1.0 only if intermediate carries differ — force a clearly
	// aliased pattern instead via 2^20 lower-limb units).
	direct := NewNum(p)
	if err := direct.SetFloat64(1); err != nil {
		t.Fatal(err)
	}
	aliased := NewNum(p)
	// 1.0 = 2^20 * 2^-20... wait: limb F=2 has weight 2^0; limb 1 has
	// weight 2^-20. Put 2^20 units in limb 1: same value, different limbs.
	aliased.limbs[1] = 1 << 20
	if !direct.Equal(aliased) {
		t.Error("aliased forms not Equal")
	}
	la, lb := direct.Limbs(), aliased.Limbs()
	sameRaw := true
	for i := range la {
		if la[i] != lb[i] {
			sameRaw = false
		}
	}
	if sameRaw {
		t.Error("test did not construct a genuine alias")
	}
	if _, err := aliased.Normalize(); err != nil {
		t.Fatal(err)
	}
	lb = aliased.Limbs()
	for i := range la {
		if la[i] != lb[i] {
			t.Errorf("normalized alias differs at limb %d: %d vs %d", i, la[i], lb[i])
		}
	}
}

func TestNormalizeNegative(t *testing.T) {
	p := New(4, 20)
	n := NewNum(p)
	if err := n.SetFloat64(-1.5); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Normalize(); err != nil {
		t.Fatal(err)
	}
	limbs := n.Limbs()
	for i := 0; i < p.N-1; i++ {
		if limbs[i] < 0 || limbs[i] >= 1<<20 {
			t.Errorf("limb %d = %d not in [0, 2^20)", i, limbs[i])
		}
	}
	if got := n.Float64(); got != -1.5 {
		t.Errorf("value after normalize = %g", got)
	}
	if n.Rat().Cmp(exactRat(-1.5)) != 0 {
		t.Error("exact value changed by normalize")
	}
}

func TestNegAndCancellation(t *testing.T) {
	p := New(10, 38)
	r := rng.New(4)
	x := r.Uniform(-0.5, 0.5)
	a := NewNum(p)
	if err := a.SetFloat64(x); err != nil {
		t.Fatal(err)
	}
	b := a.Clone().Neg()
	a.Add(b)
	if !a.IsZero() {
		t.Error("x + (-x) != 0")
	}
}

func TestAccumulatorBudget(t *testing.T) {
	p := New(2, 61) // MaxSummands = 4
	a := NewAccumulator(p)
	for i := 0; i < 4; i++ {
		a.Add(0.5)
	}
	if a.Err() != nil {
		t.Fatalf("within budget: %v", a.Err())
	}
	a.Add(0.5)
	if a.Err() != ErrTooManySummands {
		t.Errorf("Err = %v, want ErrTooManySummands", a.Err())
	}
	if a.Count() != 5 {
		t.Errorf("Count = %d", a.Count())
	}
}

func TestAccumulatorAddNum(t *testing.T) {
	p := New(10, 38)
	a := NewAccumulator(p)
	a.Add(1.5)
	part := NewAccumulator(p)
	part.Add(2.5)
	part.Add(-1.0)
	a.AddNum(part.Sum(), part.Count())
	if got := a.Float64(); got != 3 {
		t.Errorf("combined = %g, want 3", got)
	}
	if a.Count() != 3 {
		t.Errorf("Count = %d, want 3", a.Count())
	}
	wrong := NewNum(New(4, 20))
	a.AddNum(wrong, 1)
	if a.Err() != ErrParamMismatch {
		t.Errorf("Err = %v", a.Err())
	}
}

// A carry-budget violation really does corrupt the sum: overflow a limb by
// exceeding MaxSummands with same-signed values at one scale.
func TestBudgetViolationCorrupts(t *testing.T) {
	p := New(2, 61) // 1 headroom bit: limbs overflow after ~4 adds
	v := 0.75       // two payload bits in the fractional limb
	a := NewAccumulator(p)
	oracle := exact.New()
	for i := 0; i < 10; i++ {
		a.Add(v)
		oracle.Add(v)
	}
	if a.Err() != ErrTooManySummands {
		t.Fatalf("expected budget error, got %v", a.Err())
	}
	if a.Sum().Rat().Cmp(oracle.Rat()) == 0 {
		t.Skip("limb happened not to overflow; value pattern too benign")
	}
	// The corruption is what the error is for: reaching here proves the
	// detection fired exactly when needed.
}

func TestFloat64OnOverflowedNormalize(t *testing.T) {
	p := New(2, 20)
	n := NewNum(p)
	n.limbs[1] = 1 << 62 // far beyond canonical range for the top limb
	if _, err := n.Normalize(); err != ErrOverflow {
		t.Errorf("Normalize: %v, want ErrOverflow", err)
	}
}

func TestSumHelper(t *testing.T) {
	p := New(10, 38)
	r := rng.New(5)
	xs := rng.UniformSet(r, 1000, -0.5, 0.5)
	got, err := Sum(p, xs)
	if err != nil {
		t.Fatal(err)
	}
	want := exact.Sum(xs)
	// Hallberg's float conversion is not guaranteed correctly rounded;
	// allow 1 ulp.
	if math.Abs(got-want) > math.Abs(want)*1e-15 {
		t.Errorf("Sum = %g, oracle %g", got, want)
	}
}

func TestAnalysisModel(t *testing.T) {
	// Block counts (eq. 3).
	if got := BlocksHP(511); got != 8 {
		t.Errorf("BlocksHP(511) = %d, want 8", got)
	}
	if got := BlocksHallberg(512, 43); got != 12 {
		t.Errorf("BlocksHallberg(512,43) = %d, want 12", got)
	}
	// eq. 6: lower M raises the guaranteed HP advantage.
	if SpeedupLowerBound(1, 37) <= SpeedupLowerBound(1, 52) {
		t.Error("speedup bound must increase as M decreases")
	}
	// eq. 5 approaches eq. 6 * 2 as b grows and exceeds eq. 6 for b > 65.
	if SpeedupBoundEq5(1, 512, 43) <= SpeedupLowerBound(1, 43) {
		t.Error("eq.5 bound should exceed eq.6 bound at b=512")
	}
	// eq. 4 with equal per-block costs is just the block ratio.
	if got := PredictedSpeedup(1, 512, 43); got != 12.0/9.0 {
		t.Errorf("PredictedSpeedup = %g, want 12/9", got)
	}
}

func TestParamsAccessors(t *testing.T) {
	p := New(10, 38)
	if got := p.MaxRange(); got != math.Ldexp(1, 38*5) {
		t.Errorf("MaxRange = %g", got)
	}
	if got := p.Smallest(); got != math.Ldexp(1, -38*5) {
		t.Errorf("Smallest = %g", got)
	}
	if got := p.String(); got != "Hallberg(N=10,M=38)" {
		t.Errorf("String = %q", got)
	}
	n := NewNum(p)
	if n.Params() != p {
		t.Error("Num.Params")
	}
	acc := NewAccumulator(p)
	if acc.Params() != p {
		t.Error("Accumulator.Params")
	}
	acc.Add(1.5)
	acc.Reset()
	if acc.Count() != 0 || acc.Err() != nil || !acc.Sum().IsZero() {
		t.Error("Reset incomplete")
	}
}

func TestParamsForErrors(t *testing.T) {
	if _, err := ParamsFor(0, 100); err == nil {
		t.Error("zero precision accepted")
	}
	if _, err := ParamsFor(512, 0); err == nil {
		t.Error("zero summands accepted")
	}
	// M=1 still accommodates 2^62 summands; one more is impossible.
	if _, err := ParamsFor(512, int64(1)<<62+1); err == nil {
		t.Error("absurd budget accepted")
	}
}

func TestNumFromLimbs(t *testing.T) {
	p := New(4, 20)
	orig := NewNum(p)
	if err := orig.SetFloat64(-7.25); err != nil {
		t.Fatal(err)
	}
	n, err := NumFromLimbs(p, orig.Limbs())
	if err != nil {
		t.Fatal(err)
	}
	if !n.Equal(orig) {
		t.Error("NumFromLimbs round trip differs")
	}
	if _, err := NumFromLimbs(p, make([]int64, 3)); err == nil {
		t.Error("wrong limb count accepted")
	}
	if _, err := NumFromLimbs(Params{N: 2, M: 99, F: 1}, make([]int64, 2)); err == nil {
		t.Error("invalid params accepted")
	}
	// The limbs were copied, not aliased.
	limbs := orig.Limbs()
	limbs[0] = 42
	n2, _ := NumFromLimbs(p, limbs)
	limbs[0] = 7777
	if n2.Limbs()[0] != 42 {
		t.Error("NumFromLimbs aliased its input")
	}
}

func TestNewNumPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid params accepted")
		}
	}()
	NewNum(Params{N: 1, M: 70, F: 0})
}

func TestAccumulatorAddFaultPaths(t *testing.T) {
	p := New(4, 30)
	acc := NewAccumulator(p)
	acc.Add(math.NaN())
	if acc.Err() != ErrNotFinite {
		t.Errorf("NaN: %v", acc.Err())
	}
	// First error sticks.
	acc.Add(math.Ldexp(1, 100))
	if acc.Err() != ErrNotFinite {
		t.Errorf("sticky error replaced: %v", acc.Err())
	}
}

func TestIsZeroAndEqualOnOverflowedState(t *testing.T) {
	p := New(2, 20)
	a := NewNum(p)
	a.limbs[1] = 1 << 62 // normalization overflows
	if a.IsZero() {
		t.Error("overflowed state reported zero")
	}
	b := NewNum(p)
	if a.Equal(b) || b.Equal(a) {
		t.Error("overflowed state compared equal to zero")
	}
	if a.Equal(NewNum(New(4, 20))) {
		t.Error("different params compared equal")
	}
}
