package hallberg

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/exact"
)

// inRange wraps a float64 exactly representable in Hallberg(10, 38):
// range 2^190, resolution 2^-190, so full 53-bit mantissas fit for
// exponents in [-130, 180).
type inRange float64

func (inRange) Generate(r *rand.Rand, _ int) reflect.Value {
	e := -130 + r.Intn(310)
	x := math.Ldexp(1+r.Float64(), e)
	if r.Intn(2) == 1 {
		x = -x
	}
	return reflect.ValueOf(inRange(x))
}

var quickCfg = &quick.Config{MaxCount: 300}

func TestPropRoundTrip(t *testing.T) {
	p := New(10, 38)
	f := func(v inRange) bool {
		n := NewNum(p)
		if err := n.SetFloat64(float64(v)); err != nil {
			return false
		}
		if n.Float64() != float64(v) {
			return false
		}
		o := exact.New()
		o.Add(float64(v))
		return n.Rat().Cmp(o.Rat()) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropSumMatchesOracle(t *testing.T) {
	p := New(10, 38)
	f := func(vs [16]inRange) bool {
		acc := NewAccumulator(p)
		o := exact.New()
		for _, v := range vs {
			acc.Add(float64(v))
			o.Add(float64(v))
		}
		return acc.Err() == nil && acc.Sum().Rat().Cmp(o.Rat()) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropOrderInvariance(t *testing.T) {
	p := New(10, 38)
	f := func(vs [12]inRange) bool {
		a := NewAccumulator(p)
		b := NewAccumulator(p)
		for _, v := range vs {
			a.Add(float64(v))
		}
		for i := len(vs) - 1; i >= 0; i-- {
			b.Add(float64(vs[i]))
		}
		la, lb := a.Sum().Limbs(), b.Sum().Limbs()
		for i := range la {
			if la[i] != lb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Normalization is idempotent and value-preserving for arbitrary in-budget
// accumulated states.
func TestPropNormalizeIdempotent(t *testing.T) {
	p := New(6, 40)
	f := func(vs [20]inRange) bool {
		acc := NewAccumulator(p)
		for _, v := range vs {
			// Scale into (6,40) range: resolution 2^-120, range 2^120.
			x := float64(v)
			if math.Abs(x) > 0x1p60 || (x != 0 && math.Abs(x) < 0x1p-60) {
				continue
			}
			acc.Add(x)
		}
		before := acc.Sum().Rat()
		c := acc.Sum().Clone()
		if _, err := c.Normalize(); err != nil {
			return false
		}
		if c.Rat().Cmp(before) != 0 {
			return false
		}
		limbs1 := c.Limbs()
		if _, err := c.Normalize(); err != nil {
			return false
		}
		limbs2 := c.Limbs()
		for i := range limbs1 {
			if limbs1[i] != limbs2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
