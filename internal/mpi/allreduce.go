package mpi

import "fmt"

// Alternative reduction topologies. The binomial-tree Reduce+Bcast pair in
// mpi.go is latency-optimal for short messages; recursive doubling halves
// the round count for Allreduce; reduce-scatter distributes partial
// ownership. For EXACTLY associative operators (the HP and Hallberg ops)
// every topology produces bit-identical results — the property the
// topology ablation test certifies. For float64 ops, topology changes the
// combine order and hence the bits, which is precisely the paper's
// motivating problem.

// tagAllreduceRD is the internal tag space for recursive doubling; each
// round gets a distinct tag so concurrent rounds cannot be confused when a
// fast rank laps a slow one.
const tagAllreduceRDBase = -100

// AllreduceRD performs an allreduce with the recursive-doubling algorithm:
// ceil(log2 P) rounds in which rank r exchanges its running buffer with
// r XOR 2^k and both combine. For non-power-of-two worlds, the excess ranks
// fold into the power-of-two core first and receive the result afterwards.
// Every rank returns the combined buffer.
func (c *Comm) AllreduceRD(data []byte, op Op) ([]byte, error) {
	done := timeAllreduce()
	size := c.w.size
	acc := make([]byte, len(data))
	copy(acc, data)
	if size == 1 {
		done()
		return acc, nil
	}
	// Largest power of two <= size.
	pof2 := 1
	for pof2*2 <= size {
		pof2 *= 2
	}
	rem := size - pof2
	// Phase 1: ranks >= pof2 send their data into the core.
	const tagFold = tagAllreduceRDBase - 1
	const tagUnfold = tagAllreduceRDBase - 2
	if c.rank >= pof2 {
		if err := c.send(c.rank-pof2, tagFold, acc); err != nil {
			return nil, err
		}
		// Wait for the final result.
		out, err := c.recv(c.rank-pof2, tagUnfold)
		if err == nil {
			done()
		}
		return out, err
	}
	if c.rank < rem {
		in, err := c.recv(c.rank+pof2, tagFold)
		if err != nil {
			return nil, err
		}
		if err := op(acc, in); err != nil {
			return nil, err
		}
	}
	// Phase 2: recursive doubling among the pof2 core.
	for k, mask := 0, 1; mask < pof2; k, mask = k+1, mask<<1 {
		partner := c.rank ^ mask
		tag := tagAllreduceRDBase - 3 - k
		if err := c.send(partner, tag, acc); err != nil {
			return nil, err
		}
		in, err := c.recv(partner, tag)
		if err != nil {
			return nil, err
		}
		// Combine in a rank-independent canonical order (lower rank's data
		// first) so all ranks end with IDENTICAL bytes even for
		// non-associative, non-commutative-rounding ops like float64 sum.
		if c.rank < partner {
			if err := op(acc, in); err != nil {
				return nil, err
			}
		} else {
			merged := make([]byte, len(in))
			copy(merged, in)
			if err := op(merged, acc); err != nil {
				return nil, err
			}
			acc = merged
		}
	}
	// Phase 3: deliver to the folded ranks.
	if c.rank < rem {
		if err := c.send(c.rank+pof2, tagUnfold, acc); err != nil {
			return nil, err
		}
	}
	done()
	return acc, nil
}

// ReduceScatterBlock reduces equal-size blocks element-wise across ranks
// and leaves rank r owning combined block r (MPI_Reduce_scatter_block):
// data must be size*blockLen bytes, laid out as size consecutive blocks.
// Implemented as a tree reduce at rank 0 followed by a scatter, which is
// simple and — for exact ops — bit-identical to any other schedule.
func (c *Comm) ReduceScatterBlock(data []byte, blockLen int, op Op) ([]byte, error) {
	size := c.w.size
	if blockLen <= 0 || len(data) != size*blockLen {
		return nil, fmt.Errorf("mpi: reduce-scatter buffer %d bytes, want %d*%d",
			len(data), size, blockLen)
	}
	combined, err := c.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	var parts [][]byte
	if c.rank == 0 {
		parts = make([][]byte, size)
		for r := 0; r < size; r++ {
			parts[r] = combined[r*blockLen : (r+1)*blockLen]
		}
	}
	return c.Scatter(0, parts)
}
