package mpi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestAllreduceRDMatchesTreeForHP(t *testing.T) {
	p := core.Params384
	r := rng.New(57)
	xs := rng.UniformSet(r, 1<<10, -0.5, 0.5)
	for _, size := range []int{1, 2, 3, 5, 8, 13, 16} {
		err := Run(size, func(c *Comm) error {
			lo := c.Rank() * len(xs) / size
			hi := (c.Rank() + 1) * len(xs) / size
			acc := core.NewAccumulator(p)
			acc.AddAll(xs[lo:hi])
			if acc.Err() != nil {
				return acc.Err()
			}
			local := EncodeHP(acc.Sum())

			tree, err := c.Allreduce(local, OpSumHP(p))
			if err != nil {
				return err
			}
			rd, err := c.AllreduceRD(local, OpSumHP(p))
			if err != nil {
				return err
			}
			if !bytes.Equal(tree, rd) {
				return fmt.Errorf("rank %d: topology changed the exact result", c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

// With the float64 op, recursive doubling must still leave every rank with
// IDENTICAL bytes (the canonical combine order), even though the value may
// differ from the tree reduction's.
func TestAllreduceRDConsistentAcrossRanks(t *testing.T) {
	for _, size := range []int{2, 3, 6, 8} {
		var mu sync.Mutex
		results := map[int][]byte{}
		err := Run(size, func(c *Comm) error {
			local := EncodeFloat64s([]float64{0.1 * float64(c.Rank()+1)})
			out, err := c.AllreduceRD(local, OpSumFloat64)
			if err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()] = out
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		for rank, buf := range results {
			if !bytes.Equal(buf, results[0]) {
				t.Errorf("size %d: rank %d bytes differ from rank 0", size, rank)
			}
		}
	}
}

func TestReduceScatterBlock(t *testing.T) {
	const size = 4
	err := Run(size, func(c *Comm) error {
		// Each rank contributes blocks [rank+1, rank+1, ...]: combined
		// block value = sum over ranks = 1+2+3+4 = 10 in every block.
		local := make([]float64, size)
		for i := range local {
			local[i] = float64(c.Rank() + 1)
		}
		mine, err := c.ReduceScatterBlock(EncodeFloat64s(local), 8, OpSumFloat64)
		if err != nil {
			return err
		}
		vals, err := DecodeFloat64s(mine)
		if err != nil {
			return err
		}
		if len(vals) != 1 || vals[0] != 10 {
			return fmt.Errorf("rank %d owns %v, want [10]", c.Rank(), vals)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterBlockValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if _, err := c.ReduceScatterBlock(make([]byte, 7), 8, OpSumFloat64); err == nil {
			return fmt.Errorf("ragged buffer accepted")
		}
		if _, err := c.ReduceScatterBlock(make([]byte, 16), 0, OpSumFloat64); err == nil {
			return fmt.Errorf("zero block accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
