package mpi

import (
	"fmt"
	"strings"
	"time"
)

// Typed failure modes of the hardened substrate. All of them name the
// edge or rank involved, so a failed chaos run reads as a diagnosis, not a
// hang: which rank was waiting on whom, with which tag, and why it gave up.

// TimeoutError reports a deadline expiring on a reliable operation. Src is
// the rank the data flows from, Dst the rank it flows to (so for a failed
// SendTimeout, Src is the caller; for a RecvTimeout, Dst is).
type TimeoutError struct {
	Src, Dst, Tag int
	Op            string // "send", "recv", or "ack"
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("mpi: %s timeout on edge %d->%d (tag %d)", e.Op, e.Src, e.Dst, e.Tag)
}

// Timeout marks the error as a timeout in the net.Error idiom.
func (e *TimeoutError) Timeout() bool { return true }

// PeerCrashedError reports a receive that can never complete: the sending
// rank crashed and left no matching message behind.
type PeerCrashedError struct {
	Rank int // the crashed peer
	Dst  int // the rank that was receiving
	Tag  int
}

func (e *PeerCrashedError) Error() string {
	return fmt.Sprintf("mpi: rank %d waiting on crashed rank %d (tag %d)", e.Dst, e.Rank, e.Tag)
}

// AbortError reports a world torn down by Comm.Abort.
type AbortError struct {
	Rank  int // the rank that called Abort
	Cause error
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("mpi: world aborted by rank %d: %v", e.Rank, e.Cause)
}

func (e *AbortError) Unwrap() error { return e.Cause }

// BlockedEdge identifies one receive that was blocked when the stall
// watchdog fired.
type BlockedEdge struct {
	Src, Dst, Tag int
	Since         time.Time
}

func (b BlockedEdge) String() string {
	return fmt.Sprintf("rank %d <- rank %d (tag %d)", b.Dst, b.Src, b.Tag)
}

// StallError is the actionable form of a silent deadlock: the watchdog
// found at least one receive blocked longer than the stall timeout and
// aborted the world, naming every blocked (src, dst, tag) edge so the wait
// cycle is visible in the error message itself.
type StallError struct {
	After time.Duration
	Edges []BlockedEdge
}

func (e *StallError) Error() string {
	parts := make([]string, len(e.Edges))
	for i, b := range e.Edges {
		parts[i] = b.String()
	}
	return fmt.Sprintf("mpi: stall watchdog fired after %v; blocked receives: %s",
		e.After, strings.Join(parts, ", "))
}
