package mpi_test

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/mpi"
)

// A world of ranks computing a global HP sum with a custom reduction
// operator — the paper's Figure 6 structure in miniature.
func ExampleComm_Reduce() {
	const size = 4
	params := core.Params192
	err := mpi.Run(size, func(c *mpi.Comm) error {
		local, err := core.FromFloat64(params, float64(c.Rank()+1))
		if err != nil {
			return err
		}
		buf, err := c.Reduce(0, mpi.EncodeHP(local), mpi.OpSumHP(params))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			sum, err := mpi.DecodeHP(params, buf)
			if err != nil {
				return err
			}
			fmt.Println("global sum:", sum.Float64())
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// global sum: 10
}

// Point-to-point messaging with tags.
func ExampleComm_Send() {
	var mu sync.Mutex
	var lines []string
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 42, []byte("hello rank 1"))
		}
		msg, err := c.Recv(0, 42)
		if err != nil {
			return err
		}
		mu.Lock()
		lines = append(lines, string(msg))
		mu.Unlock()
		return nil
	})
	if err != nil {
		panic(err)
	}
	sort.Strings(lines)
	fmt.Println(lines[0])
	// Output:
	// hello rank 1
}
