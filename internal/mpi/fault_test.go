package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/rng"
)

// The acceptance property of the fault-tolerant substrate: for every fault
// class the injector produces — drop, delay, duplicate, corrupt, rank crash
// — an AllreduceFT of HP values on P >= 4 ranks returns, on every surviving
// rank, a sum byte-identical to the fault-free (and serial) one, with zero
// leaked goroutines afterwards. Exact associativity of the HP operator is
// what upgrades "recovered" to "bit-identical".

const chaosRanks = 5

var chaosParams = core.Params384

// chaosContribution builds rank r's deterministic HP contribution: the HP
// sum of a rank-seeded uniform value set.
func chaosContribution(t *testing.T, r int) []byte {
	t.Helper()
	xs := rng.UniformSet(rng.New(uint64(1000+r)), 512, -1, 1)
	hp, err := core.SumHP(chaosParams, xs)
	if err != nil {
		t.Fatalf("contribution %d: %v", r, err)
	}
	return EncodeHP(hp)
}

// chaosGolden computes the reference sum serially, outside the substrate.
func chaosGolden(t *testing.T) []byte {
	t.Helper()
	op := OpSumHP(chaosParams)
	acc := append([]byte(nil), chaosContribution(t, 0)...)
	for r := 1; r < chaosRanks; r++ {
		if err := op(acc, chaosContribution(t, r)); err != nil {
			t.Fatal(err)
		}
	}
	return acc
}

// runChaosAllreduce performs one AllreduceFT under the given fault plan
// ("" = fault-free) and returns each rank's result (nil for ranks that
// crashed) plus the world error.
func runChaosAllreduce(t *testing.T, plan string) ([][]byte, error) {
	t.Helper()
	var inj *faults.Injector
	if plan != "" {
		var err error
		inj, err = faults.Parse(plan)
		if err != nil {
			t.Fatalf("plan %q: %v", plan, err)
		}
	}
	store := NewCheckpointStore()
	op := OpSumHP(chaosParams)
	outs := make([][]byte, chaosRanks)
	werr := RunWith(chaosRanks, RunOpts{Inject: inj, StallTimeout: 30 * time.Second}, func(c *Comm) error {
		data := chaosContribution(t, c.Rank())
		out, err := c.AllreduceFT(data, op, FTOpts{Store: store, Timeout: 3 * time.Second})
		if err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		outs[c.Rank()] = out
		return nil
	})
	return outs, werr
}

func TestAllreduceFTBitIdenticalUnderEveryFaultClass(t *testing.T) {
	golden := chaosGolden(t)
	cases := []struct {
		name    string
		plan    string
		crashed []int // ranks the plan kills; their outs entry must be nil
	}{
		{name: "fault-free", plan: ""},
		{name: "drop", plan: "seed=7;drop:p=0.25"},
		{name: "delay", plan: "seed=3;delay:p=0.5,d=1ms"},
		{name: "duplicate", plan: "seed=5;dup:p=0.5"},
		{name: "corrupt", plan: "seed=9;corrupt:p=0.25"},
		{name: "crash-follower", plan: "seed=11;crash:rank=2,after=0", crashed: []int{2}},
		{name: "crash-leader", plan: "seed=12;crash:rank=0,after=0", crashed: []int{0}},
		{name: "all-classes",
			plan:    "seed=13;drop:p=0.1;delay:p=0.2,d=500us;dup:p=0.15;corrupt:p=0.1;crash:rank=3,after=1",
			crashed: []int{3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			outs, werr := runChaosAllreduce(t, tc.plan)
			if len(tc.crashed) == 0 {
				if werr != nil {
					t.Fatalf("world error: %v", werr)
				}
			} else {
				if werr == nil {
					t.Fatalf("crash plan produced no world error")
				}
				if !faults.OnlyCrashes(werr) {
					t.Fatalf("world error beyond injected crashes: %v", werr)
				}
			}
			isCrashed := make(map[int]bool, len(tc.crashed))
			for _, r := range tc.crashed {
				isCrashed[r] = true
				var ce *faults.CrashError
				if !errors.As(werr, &ce) {
					t.Errorf("world error does not carry CrashError: %v", werr)
				}
			}
			for r, out := range outs {
				if isCrashed[r] {
					if out != nil {
						t.Errorf("crashed rank %d reported a result", r)
					}
					continue
				}
				if out == nil {
					t.Errorf("surviving rank %d has no result", r)
					continue
				}
				if !bytes.Equal(out, golden) {
					t.Errorf("rank %d sum differs from fault-free golden:\n got %x\nwant %x", r, out, golden)
				}
			}
			assertNoLeakedGoroutines(t)
		})
	}
}

// A repeated chaos run must stay bit-identical call after call: tags are
// unique per invocation, so residue from an abandoned attempt in round i
// cannot contaminate round i+1.
func TestAllreduceFTRepeatedRoundsStayIdentical(t *testing.T) {
	golden := chaosGolden(t)
	inj, err := faults.Parse("seed=21;drop:p=0.15;dup:p=0.15;corrupt:p=0.1")
	if err != nil {
		t.Fatal(err)
	}
	store := NewCheckpointStore()
	op := OpSumHP(chaosParams)
	const rounds = 4
	werr := RunWith(chaosRanks, RunOpts{Inject: inj}, func(c *Comm) error {
		data := chaosContribution(t, c.Rank())
		for round := 0; round < rounds; round++ {
			out, err := c.AllreduceFT(data, op, FTOpts{Store: store, Timeout: 3 * time.Second})
			if err != nil {
				return fmt.Errorf("rank %d round %d: %w", c.Rank(), round, err)
			}
			if !bytes.Equal(out, golden) {
				return fmt.Errorf("rank %d round %d: sum drifted", c.Rank(), round)
			}
		}
		return nil
	})
	if werr != nil {
		t.Fatal(werr)
	}
	if inj.TotalFired() == 0 {
		t.Error("fault plan never fired; test exercised nothing")
	}
	assertNoLeakedGoroutines(t)
}

// Recovery must work from a caller-maintained checkpoint too: the crashed
// rank never reaches AllreduceFT, so only the periodic checkpoint (plus a
// deterministic replay Recover) can supply its contribution — the cmd/hpsum
// recovery path in miniature.
func TestAllreduceFTRecoversFromExternalCheckpoint(t *testing.T) {
	golden := chaosGolden(t)
	inj, err := faults.Parse("seed=17;crash:rank=1,after=0")
	if err != nil {
		t.Fatal(err)
	}
	store := NewCheckpointStore()
	op := OpSumHP(chaosParams)
	outs := make([][]byte, chaosRanks)
	werr := RunWith(chaosRanks, RunOpts{Inject: inj}, func(c *Comm) error {
		data := chaosContribution(t, c.Rank())
		// Every rank checkpoints its contribution before communicating, as a
		// periodic checkpointer would; rank 1 then dies on its first send.
		store.Put(c.Rank(), data)
		if c.Rank() == 1 {
			_ = c.Send(0, 99, []byte("heartbeat")) // panics via the crash rule
			return fmt.Errorf("rank 1 survived its crash rule")
		}
		out, err := c.AllreduceFT(data, op, FTOpts{
			Store:            store,
			Timeout:          2 * time.Second,
			NoSelfCheckpoint: true,
			Recover: func(rank int, ckpt []byte, ok bool) ([]byte, error) {
				if !ok {
					return nil, fmt.Errorf("no checkpoint for rank %d", rank)
				}
				return ckpt, nil
			},
		})
		if err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		outs[c.Rank()] = out
		return nil
	})
	if !faults.OnlyCrashes(werr) {
		t.Fatalf("world error beyond the injected crash: %v", werr)
	}
	for r, out := range outs {
		if r == 1 {
			continue
		}
		if !bytes.Equal(out, golden) {
			t.Errorf("rank %d recovered sum differs from golden", r)
		}
	}
	assertNoLeakedGoroutines(t)
}

func TestAllreduceFTRequiresStore(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		_, err := c.AllreduceFT([]byte{0}, OpSumFloat64, FTOpts{})
		if err == nil {
			return errors.New("missing store accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointStore(t *testing.T) {
	s := NewCheckpointStore()
	if _, ok := s.Get(0); ok {
		t.Error("empty store returned a checkpoint")
	}
	buf := []byte{1, 2, 3}
	s.Put(3, buf)
	buf[0] = 99 // Put must have copied
	got, ok := s.Get(3)
	if !ok || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Get = %v, %v", got, ok)
	}
	got[1] = 99 // Get must return a copy
	again, _ := s.Get(3)
	if !bytes.Equal(again, []byte{1, 2, 3}) {
		t.Error("Get aliases stored bytes")
	}
	s.Put(1, nil)
	if ranks := s.Ranks(); len(ranks) != 2 || ranks[0] != 1 || ranks[1] != 3 {
		t.Errorf("Ranks = %v", ranks)
	}
}
