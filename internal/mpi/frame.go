package mpi

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/trace"
)

// Wire framing. Every point-to-point payload (user sends and
// collective-internal traffic alike) travels inside a checksummed,
// sequence-numbered frame so the receiving side can detect corruption and
// suppress duplicates — the integrity layer the fault injector attacks and
// the reliable SendTimeout/RecvTimeout pair depends on.
//
// Layout (big-endian):
//
//	version(1) | flags(1) | seq(8) | crc32(4) | [traceID(8) | spanID(8)] | payload
//
// seq is assigned from a per-(src, dst) edge counter, so it identifies a
// logical message uniquely on its edge: retransmissions reuse the seq of
// the original send and are deduplicated at the receiver. The CRC covers
// version, flags, seq, the optional trace context, and the payload, so a
// bit flip anywhere in the frame (checksum field included) is detected.
//
// The trace-context extension exists only when flagTraced is set: a sender
// inside a sampled trace stamps its current span's (trace id, span id)
// into the header, and the receive path parents an mpi.recv span under it —
// which is how one AllreduceFT round stays a single trace across every
// rank, retransmits included (a retransmitted frame is byte-identical, so
// it carries the same context). Untraced frames pay zero bytes and zero
// branches beyond the flag test.

const (
	frameVersion   = 1
	frameHeaderLen = 14

	// frameTraceLen is the size of the optional trace-context header
	// extension: traceID(8) | spanID(8).
	frameTraceLen = 16

	// flagAckWanted marks frames sent by SendTimeout: every receive path
	// answers them with an ack frame carrying the seq on tagAck.
	flagAckWanted = 1 << 0
	// flagTraced marks frames whose header carries a trace context.
	flagTraced = 1 << 1
)

func encodeFrame(seq uint64, flags byte, tctx trace.Context, payload []byte) []byte {
	hlen := frameHeaderLen
	if tctx.Valid() {
		flags |= flagTraced
		hlen += frameTraceLen
	} else {
		flags &^= flagTraced
	}
	f := make([]byte, hlen+len(payload))
	f[0] = frameVersion
	f[1] = flags
	binary.BigEndian.PutUint64(f[2:], seq)
	if flags&flagTraced != 0 {
		binary.BigEndian.PutUint64(f[frameHeaderLen:], tctx.TraceID)
		binary.BigEndian.PutUint64(f[frameHeaderLen+8:], tctx.SpanID)
	}
	copy(f[hlen:], payload)
	binary.BigEndian.PutUint32(f[10:], frameCRC(f))
	return f
}

func frameCRC(f []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write(f[:10])
	h.Write(f[frameHeaderLen:])
	return h.Sum32()
}

// decodeFrame validates and splits a frame. The returned payload aliases
// f's backing array (each queued frame is owned by exactly one receiver);
// tctx is the invalid context on untraced frames.
func decodeFrame(f []byte) (seq uint64, flags byte, tctx trace.Context, payload []byte, err error) {
	if len(f) < frameHeaderLen {
		return 0, 0, trace.Context{}, nil, fmt.Errorf("mpi: frame truncated to %d bytes", len(f))
	}
	if f[0] != frameVersion {
		return 0, 0, trace.Context{}, nil, fmt.Errorf("mpi: unknown frame version %d", f[0])
	}
	hlen := frameHeaderLen
	if f[1]&flagTraced != 0 {
		hlen += frameTraceLen
		if len(f) < hlen {
			return 0, 0, trace.Context{}, nil, fmt.Errorf("mpi: traced frame truncated to %d bytes", len(f))
		}
	}
	if binary.BigEndian.Uint32(f[10:]) != frameCRC(f) {
		return 0, 0, trace.Context{}, nil, fmt.Errorf("mpi: frame checksum mismatch")
	}
	if f[1]&flagTraced != 0 {
		tctx = trace.Context{
			TraceID: binary.BigEndian.Uint64(f[frameHeaderLen:]),
			SpanID:  binary.BigEndian.Uint64(f[frameHeaderLen+8:]),
		}
	}
	return binary.BigEndian.Uint64(f[2:]), f[1], tctx, f[hlen:], nil
}
