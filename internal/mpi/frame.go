package mpi

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Wire framing. Every point-to-point payload (user sends and
// collective-internal traffic alike) travels inside a checksummed,
// sequence-numbered frame so the receiving side can detect corruption and
// suppress duplicates — the integrity layer the fault injector attacks and
// the reliable SendTimeout/RecvTimeout pair depends on.
//
// Layout (big-endian):
//
//	version(1) | flags(1) | seq(8) | crc32(4) | payload
//
// seq is assigned from a per-(src, dst) edge counter, so it identifies a
// logical message uniquely on its edge: retransmissions reuse the seq of
// the original send and are deduplicated at the receiver. The CRC covers
// version, flags, seq, and payload, so a bit flip anywhere in the frame
// (checksum field included) is detected.

const (
	frameVersion   = 1
	frameHeaderLen = 14

	// flagAckWanted marks frames sent by SendTimeout: every receive path
	// answers them with an ack frame carrying the seq on tagAck.
	flagAckWanted = 1 << 0
)

func encodeFrame(seq uint64, flags byte, payload []byte) []byte {
	f := make([]byte, frameHeaderLen+len(payload))
	f[0] = frameVersion
	f[1] = flags
	binary.BigEndian.PutUint64(f[2:], seq)
	copy(f[frameHeaderLen:], payload)
	binary.BigEndian.PutUint32(f[10:], frameCRC(f))
	return f
}

func frameCRC(f []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write(f[:10])
	h.Write(f[frameHeaderLen:])
	return h.Sum32()
}

// decodeFrame validates and splits a frame. The returned payload aliases
// f's backing array (each queued frame is owned by exactly one receiver).
func decodeFrame(f []byte) (seq uint64, flags byte, payload []byte, err error) {
	if len(f) < frameHeaderLen {
		return 0, 0, nil, fmt.Errorf("mpi: frame truncated to %d bytes", len(f))
	}
	if f[0] != frameVersion {
		return 0, 0, nil, fmt.Errorf("mpi: unknown frame version %d", f[0])
	}
	if binary.BigEndian.Uint32(f[10:]) != frameCRC(f) {
		return 0, 0, nil, fmt.Errorf("mpi: frame checksum mismatch")
	}
	return binary.BigEndian.Uint64(f[2:]), f[1], f[frameHeaderLen:], nil
}
