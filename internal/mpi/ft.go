package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/trace"
)

// Fault-tolerant allreduce with checkpointed recovery.
//
// AllreduceFT tolerates every fault class the injector produces: drops,
// delays, duplicates, and corruptions are absorbed by the reliable layer's
// retransmission, and rank crashes are absorbed by shrinking to the
// surviving ranks and recovering the lost rank's contribution from its
// last checkpoint in a CheckpointStore. Because the HP reduction operator
// is exactly associative and a rank's checkpoint equals (or deterministically
// replays to) its exact contribution, the recovered global sum is
// BIT-IDENTICAL to the fault-free one — the paper's order-invariance
// guarantee extended from "any summation order" to "any failure pattern
// with recoverable checkpoints". The same property makes the protocol
// idempotent: if a leader dies mid-broadcast and a new leader recomputes
// the result from checkpoints, ranks that already received the old result
// hold exactly the same bytes.
//
// The protocol is a leader-based star, chosen over a tree because
// fault-time control flow stays legible: for attempt a = 0, 1, ... the
// leader is rank a (skipping known-crashed ranks). The leader collects
// every live rank's contribution with RecvTimeout, substitutes the
// checkpointed contribution for ranks that crashed or timed out, combines
// in ascending rank order, and reliably sends the result to all live
// ranks. A follower that cannot reach the leader (crash or timeout)
// advances to the next attempt; tags are unique per (call, attempt), so
// late traffic from an abandoned attempt can never be confused with the
// current one.

// CheckpointStore holds each rank's most recent checkpoint, standing in
// for storage that survives rank crashes (a burst buffer or parallel file
// system in a real deployment). It is safe for concurrent use.
type CheckpointStore struct {
	mu sync.Mutex
	m  map[int][]byte
}

// NewCheckpointStore returns an empty store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{m: make(map[int][]byte)}
}

// Put records rank's latest checkpoint (a copy of data), replacing any
// previous one.
func (s *CheckpointStore) Put(rank int, data []byte) {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.m[rank] = cp
	s.mu.Unlock()
	mCheckpoints.Inc()
}

// Get returns a copy of rank's latest checkpoint.
func (s *CheckpointStore) Get(rank int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[rank]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Ranks returns the ranks with a stored checkpoint, ascending.
func (s *CheckpointStore) Ranks() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.m))
	for r := range s.m {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// FTOpts configures AllreduceFT.
type FTOpts struct {
	// Store is the checkpoint store recoveries read from (required).
	Store *CheckpointStore
	// Timeout bounds each peer exchange (contribution receive, result
	// send/receive). Default 2s. The watchdog's StallTimeout, if armed,
	// should comfortably exceed it.
	Timeout time.Duration
	// Recover converts rank's last checkpoint into its full contribution
	// in the operator's domain; checkpoint is nil and ok false when the
	// store has nothing for the rank. nil Recover uses the checkpoint
	// bytes as-is (they must then be op-domain buffers, as the automatic
	// self-checkpoint guarantees). Callers with richer checkpoints — for
	// example a partial sum plus an input cursor — supply a Recover that
	// deterministically replays the lost tail (see cmd/hpsum).
	Recover func(rank int, checkpoint []byte, ok bool) ([]byte, error)
	// NoSelfCheckpoint skips the automatic Store.Put of this rank's
	// contribution at entry. Set it when the caller already maintains
	// periodic checkpoints in the store.
	NoSelfCheckpoint bool
}

// tagFTBase anchors the internal tag space of AllreduceFT; each (call,
// attempt) pair consumes two tags below it.
const tagFTBase = -1 << 20

// AllreduceFT combines every rank's data with op and returns the combined
// buffer on all surviving ranks, tolerating message loss, delay,
// duplication, corruption, and rank crashes. Recovery substitutes a
// crashed (or unresponsive) rank's checkpoint — see FTOpts — so with an
// exactly associative op (HP, Hallberg) the result is bit-identical to the
// fault-free run. It is collective: every live rank must call it, the same
// number of times, with the same op and opts.
func (c *Comm) AllreduceFT(data []byte, op Op, opts FTOpts) ([]byte, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("mpi: AllreduceFT requires a CheckpointStore")
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	done := timeAllreduce()
	c.ftRound++
	if !opts.NoSelfCheckpoint {
		opts.Store.Put(c.rank, data)
	}
	// Root the round's span on the Comm's context when the caller set one,
	// else open a fresh (sampled) trace; every send in the round stamps the
	// round context into its frames, so all ranks' spans — retransmits and
	// recoveries included — stitch into one trace.
	parent := c.tctx
	if !parent.Valid() {
		parent = trace.NewTrace()
	}
	roundSpan := trace.Start(parent, "mpi.allreduce_ft")
	roundSpan.Attr(trace.Int("rank", int64(c.rank)))
	roundSpan.Attr(trace.Int("round", int64(c.ftRound)))
	roundSpan.Attr(trace.Int("bytes", int64(len(data))))
	prevCtx := c.tctx
	if roundSpan.Context().Valid() {
		c.tctx = roundSpan.Context()
	}
	defer func() {
		c.tctx = prevCtx
		roundSpan.End()
	}()
	size := c.w.size
	for attempt := 0; attempt < size; attempt++ {
		leader := attempt
		tagContrib := tagFTBase - 2*(c.ftRound*size+attempt)
		tagResult := tagContrib - 1
		if c.w.isCrashed(leader) && c.rank != leader {
			continue
		}
		attemptSpan := trace.Start(c.tctx, "mpi.ft_attempt")
		attemptSpan.Attr(trace.Int("attempt", int64(attempt)))
		attemptSpan.Attr(trace.Int("leader", int64(leader)))
		var out []byte
		var err error
		if c.rank == leader {
			out, err = c.ftLead(data, op, opts, tagContrib, tagResult, timeout)
		} else {
			out, err = c.ftFollow(data, leader, tagContrib, tagResult, timeout)
		}
		if err == nil {
			attemptSpan.End()
			done()
			return out, nil
		}
		attemptSpan.Attr(trace.Str("error", err.Error()))
		attemptSpan.End()
		var te *TimeoutError
		var pc *PeerCrashedError
		if errors.As(err, &te) || errors.As(err, &pc) {
			mpiFlight.Event("ft-leader-unreachable",
				trace.Int("rank", int64(c.rank)),
				trace.Int("leader", int64(leader)),
				trace.Int("attempt", int64(attempt)))
			continue // leader unreachable: next attempt, next leader
		}
		return nil, err
	}
	return nil, fmt.Errorf("mpi: AllreduceFT: rank %d found no reachable leader in %d attempts",
		c.rank, size)
}

// ftLead runs the leader side: collect, recover, combine, distribute.
func (c *Comm) ftLead(data []byte, op Op, opts FTOpts, tagContrib, tagResult int, timeout time.Duration) ([]byte, error) {
	size := c.w.size
	var acc []byte
	for r := 0; r < size; r++ {
		contrib, err := c.ftContribution(r, data, opts, tagContrib, timeout)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = append([]byte(nil), contrib...)
			continue
		}
		if err := op(acc, contrib); err != nil {
			return nil, err
		}
	}
	for r := 0; r < size; r++ {
		if r == c.rank || c.w.isCrashed(r) {
			continue
		}
		// Best effort: a rank that died or moved on will recover the
		// identical result from the next leader's recomputation.
		_ = c.sendReliable(r, tagResult, acc, timeout)
	}
	return acc, nil
}

// ftContribution obtains rank r's contribution: live receipt when
// possible, checkpoint recovery when r is crashed, unresponsive, or was
// corrupted past the reliable layer's patience.
func (c *Comm) ftContribution(r int, own []byte, opts FTOpts, tagContrib int, timeout time.Duration) ([]byte, error) {
	if r == c.rank {
		return own, nil
	}
	if !c.w.isCrashed(r) {
		contrib, err := c.recvReliable(r, tagContrib, timeout)
		if err == nil {
			return contrib, nil
		}
		var te *TimeoutError
		var pc *PeerCrashedError
		if !errors.As(err, &te) && !errors.As(err, &pc) {
			return nil, err
		}
	}
	sp := trace.Start(c.tctx, "mpi.recover")
	sp.Attr(trace.Int("lost_rank", int64(r)))
	sp.Attr(trace.Int("leader", int64(c.rank)))
	defer sp.End()
	ckpt, ok := opts.Store.Get(r)
	recover := opts.Recover
	if recover == nil {
		recover = func(rank int, checkpoint []byte, ok bool) ([]byte, error) {
			if !ok {
				return nil, fmt.Errorf("mpi: no checkpoint for rank %d", rank)
			}
			return checkpoint, nil
		}
	}
	contrib, err := recover(r, ckpt, ok)
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d lost and unrecoverable: %w", r, err)
	}
	mRecoveries.Inc()
	mpiFlight.Event("ft-recovery",
		trace.Int("lost_rank", int64(r)),
		trace.Int("leader", int64(c.rank)),
		trace.Int("checkpoint", boolInt(ok)))
	return contrib, nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ftFollow runs the follower side: offer the contribution, await the
// result. A send failure alone is not fatal — the leader will fall back to
// this rank's checkpoint, which holds the same contribution.
func (c *Comm) ftFollow(data []byte, leader, tagContrib, tagResult int, timeout time.Duration) ([]byte, error) {
	if err := c.sendReliable(leader, tagContrib, data, timeout); err != nil {
		var te *TimeoutError
		if !errors.As(err, &te) {
			return nil, err
		}
	}
	return c.recvReliable(leader, tagResult, timeout)
}
