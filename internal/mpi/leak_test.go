package mpi

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// mpiGoroutines returns the stacks of goroutines currently executing
// substrate code — blocked receives, watchdogs, delayed deliveries — but
// not the test goroutines themselves. A healthy teardown leaves none.
func mpiGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var leaked []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(g, "repro/internal/mpi.") {
			continue
		}
		// Test goroutines (and their subtests) run under testing.tRunner and
		// legitimately hold mpi test frames; only goroutines the substrate
		// itself spawned count as leaks.
		if strings.Contains(g, "testing.tRunner") || strings.Contains(g, "testing.runFuzzing") {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// assertNoLeakedGoroutines fails the test if substrate goroutines survive
// past a world's teardown. Exiting goroutines need a moment to leave the
// scheduler, so it polls briefly before declaring a leak.
func assertNoLeakedGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var leaked []string
	for {
		leaked = mpiGoroutines()
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("%d substrate goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
}
