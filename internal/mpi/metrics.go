package mpi

import "repro/internal/telemetry"

// Telemetry for the simulated message-passing substrate. Counters are
// incremented per point-to-point delivery (including the internal
// messages collectives exchange), so traffic shape under different
// reduction topologies is directly visible at /metrics.
var (
	mMessages = telemetry.NewCounter("mpi_messages_total",
		"Point-to-point messages delivered (user sends plus collective-internal traffic).")
	mBytes = telemetry.NewCounter("mpi_bytes_total",
		"Payload bytes delivered across all point-to-point messages.")
	mAllreduce = telemetry.NewCounter("mpi_allreduce_total",
		"Allreduce operations completed (binomial-tree and recursive-doubling), counted once per participating rank.")
	mAllreduceLatency = telemetry.NewHistogram("mpi_allreduce_seconds",
		"Per-rank wall time of allreduce operations.",
		telemetry.DurationBuckets())
)
