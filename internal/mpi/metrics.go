package mpi

import "repro/internal/telemetry"

// Telemetry for the simulated message-passing substrate. Counters are
// incremented per point-to-point delivery (including the internal
// messages collectives exchange), so traffic shape under different
// reduction topologies is directly visible at /metrics. The robustness
// counters (corruption detections, duplicate suppressions, retransmits,
// timeouts, stalls, aborts, recoveries) pair with the faults_* injection
// counters to show how much adversity a chaos run absorbed and how it was
// repaired.
var (
	mMessages = telemetry.NewCounter("mpi_messages_total",
		"Point-to-point frames sent (user sends plus collective-internal traffic, acks and retransmits included).")
	mBytes = telemetry.NewCounter("mpi_bytes_total",
		"Frame bytes sent across all point-to-point messages (14-byte frame header included).")
	mAllreduce = telemetry.NewCounter("mpi_allreduce_total",
		"Allreduce operations completed (binomial-tree, recursive-doubling, and fault-tolerant), counted once per participating rank.")
	mAllreduceLatency = telemetry.NewHistogram("mpi_allreduce_seconds",
		"Per-rank wall time of allreduce operations.",
		telemetry.DurationBuckets())

	mCorruptDetected = telemetry.NewCounter("mpi_corrupt_frames_total",
		"Frames discarded on receive because their checksum did not verify.")
	mDupSuppressed = telemetry.NewCounter("mpi_duplicate_frames_total",
		"Frames discarded on receive as duplicates of an already-delivered sequence number.")
	mRetransmits = telemetry.NewCounter("mpi_retransmits_total",
		"Reliable-send retransmissions after a missing acknowledgement.")
	mAcks = telemetry.NewCounter("mpi_acks_total",
		"Acknowledgement frames sent for ack-wanted messages.")
	mSendTimeouts = telemetry.NewCounter("mpi_send_timeouts_total",
		"SendTimeout calls that exhausted their deadline without an ack.")
	mRecvTimeouts = telemetry.NewCounter("mpi_recv_timeouts_total",
		"RecvTimeout calls that exhausted their deadline without a valid message.")
	mStalls = telemetry.NewCounter("mpi_stalls_total",
		"Stall-watchdog firings (worlds aborted after a receive blocked past the stall timeout).")
	mAborts = telemetry.NewCounter("mpi_aborts_total",
		"Worlds torn down by Comm.Abort, a rank panic, or the stall watchdog.")
	mCrashesObserved = telemetry.NewCounter("mpi_rank_crashes_total",
		"Rank crashes observed by the substrate (injected crash faults).")
	mCheckpoints = telemetry.NewCounter("mpi_ft_checkpoints_total",
		"Partial-sum checkpoints written to a CheckpointStore.")
	mRecoveries = telemetry.NewCounter("mpi_ft_recoveries_total",
		"Contributions recovered from checkpoints during AllreduceFT (crashed or unresponsive ranks).")
)
