package mpi

import (
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// scrapeMetrics GETs /metrics off the telemetry handler and returns the
// counter values by name.
func scrapeMetrics(t *testing.T) map[string]uint64 {
	t.Helper()
	srv := httptest.NewServer(telemetry.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]uint64)
	for _, m := range regexp.MustCompile(`(?m)^([a-z_]+) (\d+)$`).FindAllStringSubmatch(string(body), -1) {
		v, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			t.Fatalf("metric %s: %v", m[1], err)
		}
		vals[m[1]] = v
	}
	return vals
}

// A chaos run must leave its tracks in /metrics: fault firings, protocol
// retransmissions, duplicate suppression, crash observations, and the FT
// recovery of the crashed rank's contribution all have counters, and an
// operator watching the scrape during a chaos drill sees them move.
func TestMetricsExportAfterChaosRun(t *testing.T) {
	defer telemetry.SetEnabled(telemetry.SetEnabled(true))
	before := scrapeMetrics(t)

	inj, err := faults.Parse("seed=77;drop:p=0.3,limit=20;dup:p=0.3,limit=20;corrupt:p=0.2,limit=10;crash:rank=2,after=0")
	if err != nil {
		t.Fatal(err)
	}
	store := NewCheckpointStore()
	contrib := make([][]byte, chaosRanks)
	for r := 0; r < chaosRanks; r++ {
		contrib[r] = chaosContribution(t, r)
	}
	werr := RunWith(chaosRanks, RunOpts{Inject: inj, StallTimeout: 30 * time.Second},
		func(c *Comm) error {
			_, err := c.AllreduceFT(contrib[c.Rank()], OpSumHP(chaosParams), FTOpts{
				Store:   store,
				Timeout: 3 * time.Second,
			})
			return err
		})
	if werr != nil && !faults.OnlyCrashes(werr) {
		t.Fatalf("world error beyond crashes: %v", werr)
	}

	// The chaos run's corruptions can land on late retransmits nobody is
	// still listening for, so corruption *detection* is not guaranteed
	// there. This exchange is: with p=1 the first (and only eligible) frame
	// is corrupted, the receiver must detect it, and the retransmit must
	// carry the message through.
	inj2, err := faults.Parse("seed=4;corrupt:p=1,limit=1")
	if err != nil {
		t.Fatal(err)
	}
	werr = RunWith(2, RunOpts{Inject: inj2}, func(c *Comm) error {
		if c.Rank() == 1 {
			return c.SendTimeout(0, 3, []byte("payload"), 2*time.Second)
		}
		_, err := c.RecvTimeout(1, 3, 2*time.Second)
		return err
	})
	if werr != nil {
		t.Fatalf("corrupt exchange: %v", werr)
	}

	after := scrapeMetrics(t)
	grew := func(name string) uint64 { return after[name] - before[name] }
	for _, name := range []string{
		// The injector's own account of what it did to the transport...
		"faults_dropped_total",
		"faults_duplicated_total",
		"faults_corrupted_total",
		"faults_crashes_total",
		// ...and the substrate's account of surviving it.
		"mpi_retransmits_total",
		"mpi_corrupt_frames_total",
		"mpi_duplicate_frames_total",
		"mpi_rank_crashes_total",
		"mpi_ft_recoveries_total",
		"mpi_ft_checkpoints_total",
		"mpi_messages_total",
		"mpi_acks_total",
	} {
		if _, present := after[name]; !present {
			t.Errorf("counter %s missing from /metrics", name)
		} else if grew(name) == 0 {
			t.Errorf("counter %s did not move during the chaos run", name)
		}
	}
	t.Logf("chaos snapshot: drops=%d dups=%d corrupt=%d crashes=%d retransmits=%d recoveries=%d",
		grew("faults_dropped_total"), grew("faults_duplicated_total"),
		grew("faults_corrupted_total"), grew("faults_crashes_total"),
		grew("mpi_retransmits_total"), grew("mpi_ft_recoveries_total"))
	assertNoLeakedGoroutines(t)
}

// Counters are free when telemetry is off: a run with telemetry disabled
// must not move any counter.
func TestMetricsGatedOnEnable(t *testing.T) {
	defer telemetry.SetEnabled(telemetry.SetEnabled(false))
	before := scrapeMetrics(t)
	werr := Run(3, func(c *Comm) error {
		got, err := c.Allreduce([]byte{byte(c.Rank())}, func(inout, in []byte) error {
			inout[0] += in[0]
			return nil
		})
		if err != nil {
			return err
		}
		if got[0] != 3 {
			return fmt.Errorf("sum = %d", got[0])
		}
		return nil
	})
	if werr != nil {
		t.Fatal(werr)
	}
	after := scrapeMetrics(t)
	for name, v := range after {
		if v != before[name] {
			t.Errorf("counter %s moved (%d -> %d) with telemetry disabled", name, before[name], v)
		}
	}
}
