// Package mpi is an in-process message-passing substrate standing in for
// the MPI environment of the paper's Figure 6. A world of P ranks runs as P
// goroutines; each rank owns a Comm handle providing point-to-point sends
// and receives (eager, buffered, FIFO-ordered per sender/receiver pair with
// tag matching) and the collectives the experiment needs: Barrier, Bcast,
// Reduce, Allreduce, Gather, and Scatter, with binomial-tree reduction and
// user-defined reduction operators over byte buffers — the analogue of the
// custom MPI datatype + MPI_Op the paper builds for HP values.
//
// The substrate is hardened against an adversarial network (see
// internal/faults): every message travels in a checksummed,
// sequence-numbered frame (frame.go) giving corruption detection and
// duplicate suppression on all receive paths; SendTimeout/RecvTimeout
// (reliable.go) add deadlines, acks, and bounded exponential-backoff
// retransmission; a stall watchdog (RunOpts.StallTimeout) converts silent
// deadlocks into errors naming the blocked (src, dst, tag) edges;
// Comm.Abort tears the world down so no rank is left hanging; and
// AllreduceFT (ft.go) survives rank crashes by recovering the lost rank's
// contribution from a checkpoint store.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// mpiFlight is the substrate's flight-recorder ring: rank crashes,
// retransmissions, send timeouts, stalled edges, and FT recoveries land
// here. Always on, written only from fault and failure paths.
var mpiFlight = trace.Subsystem("mpi")

// Op combines two encoded values: inout = combine(inout, in). Ops used with
// Reduce must be commutative and associative over the encoded domain (the
// HP and Hallberg ops are; the float64 op is commutative but only
// approximately associative, which is exactly the paper's problem).
type Op func(inout, in []byte) error

// message is one in-flight frame.
type message struct {
	tag   int
	frame []byte
}

// dedupWindow bounds the per-mailbox set of remembered sequence numbers.
// Because a sender retransmits a reliable message before issuing the next
// one, duplicates arrive close to their originals; a window this large only
// lets a duplicate slip through after 64k intervening messages on the edge.
const dedupWindow = 1 << 16

// mailbox is the unbounded FIFO queue for one (src, dst) pair.
type mailbox struct {
	w        *world
	src, dst int

	mu    sync.Mutex
	cond  *sync.Cond
	queue []message

	// Delivered frame seqs for duplicate suppression, pruned FIFO.
	seen      map[uint64]struct{}
	seenOrder []uint64
}

func newMailbox(w *world, dst, src int) *mailbox {
	m := &mailbox{w: w, src: src, dst: dst, seen: make(map[uint64]struct{})}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(tag int, frame []byte) {
	m.mu.Lock()
	m.queue = append(m.queue, message{tag: tag, frame: frame})
	m.cond.Broadcast()
	m.mu.Unlock()
}

// wake nudges every goroutine blocked in take so it can re-check the
// world's abort/crash state.
func (m *mailbox) wake() {
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}

// take removes and returns the earliest frame with the given tag, blocking
// until one arrives, the deadline passes (zero deadline = wait forever),
// the world aborts, or the sending rank is known to have crashed with no
// matching frame left.
//
// Every pass also sweeps the queue for stale retransmits — verified
// ack-wanted frames whose seq was already delivered, parked under a tag
// nobody is receiving anymore because the consumer moved on. Their seqs are
// returned in stale (possibly alongside a nil frame and nil error) so the
// caller can re-ack them; without this, one lost ack would pin the sender
// in its retransmission loop until its full deadline expired.
func (m *mailbox) take(tag int, deadline time.Time) (frame []byte, stale []uint64, err error) {
	w := m.w
	if w.watching() {
		key := blockKey{src: m.src, dst: m.dst, tag: tag}
		w.noteBlocked(key)
		defer w.noteUnblocked(key)
	}
	if !deadline.IsZero() {
		if d := time.Until(deadline); d > 0 {
			timer := time.AfterFunc(d, m.wake)
			defer timer.Stop()
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if err := w.abortErr(); err != nil {
			return nil, nil, err
		}
		stale = m.sweepStaleLocked()
		for i, msg := range m.queue {
			if msg.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg.frame, stale, nil
			}
		}
		if len(stale) > 0 {
			return nil, stale, nil // let the caller ack, then come back
		}
		if w.isCrashed(m.src) {
			return nil, nil, &PeerCrashedError{Rank: m.src, Dst: m.dst, Tag: tag}
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, nil, &TimeoutError{Src: m.src, Dst: m.dst, Tag: tag, Op: "recv"}
		}
		m.cond.Wait()
	}
}

// sweepStaleLocked removes queued frames that are checksum-valid, ack-wanted
// retransmits of already-delivered seqs and returns those seqs. Requires
// m.mu. Frames whose seq has not been delivered yet stay queued whatever
// their tag: they belong to a receive that has not happened.
func (m *mailbox) sweepStaleLocked() []uint64 {
	var stale []uint64
	kept := m.queue[:0]
	for _, msg := range m.queue {
		if seq, flags, _, _, err := decodeFrame(msg.frame); err == nil && flags&flagAckWanted != 0 {
			if _, delivered := m.seen[seq]; delivered {
				stale = append(stale, seq)
				mDupSuppressed.Inc()
				continue
			}
		}
		kept = append(kept, msg)
	}
	m.queue = kept
	return stale
}

// delivered reports whether seq has already been taken by the receiver.
// The reliable sender consults it between retransmissions: when the ack for
// the final message of an exchange is lost, no future receive on the edge
// exists to re-ack the retransmits, and the receiver-side delivery record is
// the only witness that the exchange in fact completed. (A real MPI would
// get the equivalent from its transport's completion semantics; in-process,
// the mailbox IS the transport.)
func (m *mailbox) delivered(seq uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.seen[seq]
	return ok
}

// firstDelivery records seq as delivered and reports whether this is the
// first time it has been seen on this edge.
func (m *mailbox) firstDelivery(seq uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.seen[seq]; dup {
		return false
	}
	m.seen[seq] = struct{}{}
	m.seenOrder = append(m.seenOrder, seq)
	if len(m.seenOrder) > dedupWindow {
		delete(m.seen, m.seenOrder[0])
		m.seenOrder = m.seenOrder[1:]
	}
	return true
}

// world is the shared state of one Run invocation (or one Split group).
type world struct {
	size  int
	boxes [][]*mailbox // boxes[dst][src]
	seqs  [][]atomic.Uint64

	inject  *faults.Injector
	delayWG sync.WaitGroup // in-flight fault-delayed deliveries

	aborted  atomic.Bool
	abortMu  sync.Mutex
	abortWhy error

	crashed []atomic.Bool

	watch     atomic.Bool
	blockedMu sync.Mutex
	blocked   map[blockKey]time.Time

	splitMu sync.Mutex
	split   *splitState
}

// newWorld allocates the mailbox matrix for size ranks.
func newWorld(size int) *world {
	w := &world{
		size:    size,
		boxes:   make([][]*mailbox, size),
		seqs:    make([][]atomic.Uint64, size),
		crashed: make([]atomic.Bool, size),
		blocked: make(map[blockKey]time.Time),
	}
	for dst := range w.boxes {
		w.boxes[dst] = make([]*mailbox, size)
		w.seqs[dst] = make([]atomic.Uint64, size)
		for src := range w.boxes[dst] {
			w.boxes[dst][src] = newMailbox(w, dst, src)
		}
	}
	return w
}

// errWorldClosed is the teardown cause RunWith uses to release straggler
// receives (an Irecv nobody matched) once every rank has returned. It is
// bookkeeping, not a failure, so it does not count as an abort.
var errWorldClosed = errors.New("mpi: world closed")

// abort poisons the world: blocked and future operations on every rank
// fail with err. Only the first cause is retained.
func (w *world) abort(err error) {
	w.abortMu.Lock()
	first := w.abortWhy == nil
	if first {
		w.abortWhy = err
		w.aborted.Store(true)
		if !errors.Is(err, errWorldClosed) {
			mAborts.Inc()
		}
	}
	w.abortMu.Unlock()
	if !first {
		return
	}
	for _, row := range w.boxes {
		for _, m := range row {
			m.wake()
		}
	}
	w.splitMu.Lock()
	if s := w.split; s != nil {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	w.splitMu.Unlock()
}

// abortErr returns the abort cause, or nil while the world is healthy.
func (w *world) abortErr() error {
	if !w.aborted.Load() {
		return nil
	}
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.abortWhy
}

// noteCrashed marks rank dead and wakes every receive blocked on it, so
// peers observe a PeerCrashedError instead of hanging.
func (w *world) noteCrashed(rank int) {
	if w.crashed[rank].Swap(true) {
		return
	}
	mCrashesObserved.Inc()
	mpiFlight.Event("rank-crash", trace.Int("rank", int64(rank)))
	trace.TripDump("crash", fmt.Sprintf("mpi: rank %d crashed (injected fault)", rank))
	for dst := range w.boxes {
		w.boxes[dst][rank].wake()
	}
}

func (w *world) isCrashed(rank int) bool {
	return rank >= 0 && rank < w.size && w.crashed[rank].Load()
}

// Comm is a rank's communicator handle. A Comm is owned by one goroutine
// and must not be shared (Irecv's completion goroutine is the one sanctioned
// exception).
type Comm struct {
	rank    int
	w       *world
	ftRound int           // AllreduceFT invocation counter, for collision-free tags
	tctx    trace.Context // current trace context, stamped into frame headers
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// SetTraceContext installs ctx as the communicator's current trace context:
// subsequent sends stamp it into their frame headers (so receivers parent
// their recv spans under it) and collectives parent their spans under it.
// It returns the previous context; the Comm is single-goroutine-owned, so
// no synchronization is involved.
func (c *Comm) SetTraceContext(ctx trace.Context) trace.Context {
	prev := c.tctx
	c.tctx = ctx
	return prev
}

// TraceContext returns the communicator's current trace context (invalid
// when untraced).
func (c *Comm) TraceContext() trace.Context { return c.tctx }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Crashed reports whether rank is known to have crashed (via an injected
// fault) in this world.
func (c *Comm) Crashed(rank int) bool { return c.w.isCrashed(rank) }

// Abort tears down the world: every rank's pending and future operations
// fail with an *AbortError naming this rank and wrapping cause. It is the
// escape hatch a rank uses when it cannot continue, so its peers fail fast
// instead of deadlocking.
func (c *Comm) Abort(cause error) {
	c.w.abort(&AbortError{Rank: c.rank, Cause: cause})
}

// Internal tag space: user tags must be >= 0.
const (
	tagBarrier = -1 - iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
)

// crashPanic is the panic value an injected rank crash unwinds with.
type crashPanic struct{ rank int }

// RunOpts configures a world's robustness features.
type RunOpts struct {
	// Inject applies a fault plan to every frame sent in the world (nil =
	// fault-free). Sub-worlds created by Split run fault-free.
	Inject *faults.Injector
	// StallTimeout arms the stall watchdog: if any receive stays blocked
	// longer than this, the world aborts with a *StallError naming every
	// blocked (src, dst, tag) edge. Zero disables the watchdog. Set it
	// well above any SendTimeout/RecvTimeout deadlines in use.
	StallTimeout time.Duration
}

// Run executes fn on every rank of a size-rank world concurrently and
// returns the joined errors of all ranks (nil if every rank succeeded).
func Run(size int, fn func(c *Comm) error) error {
	return RunWith(size, RunOpts{}, fn)
}

// RunWith is Run with fault injection and watchdog options. A rank that
// panics aborts the world (peers fail fast rather than deadlock); a rank
// killed by an injected crash fault records a *faults.CrashError without
// aborting, leaving its peers to recover (see AllreduceFT).
func RunWith(size int, opts RunOpts, fn func(c *Comm) error) error {
	if size < 1 {
		return fmt.Errorf("mpi: world size %d", size)
	}
	w := newWorld(size)
	w.inject = opts.Inject
	stopWatchdog := func() {}
	if opts.StallTimeout > 0 {
		stopWatchdog = w.startWatchdog(opts.StallTimeout)
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if cp, ok := p.(crashPanic); ok {
						errs[rank] = &faults.CrashError{Rank: cp.rank}
						return
					}
					err := fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					errs[rank] = err
					w.abort(fmt.Errorf("mpi: world aborted: %w", err))
				}
			}()
			errs[rank] = fn(&Comm{rank: rank, w: w})
		}(r)
	}
	wg.Wait()
	stopWatchdog()
	// Release any receive still parked in the mailboxes — an Irecv whose
	// sender never materialized, for example — so no substrate goroutine
	// outlives the world.
	w.abort(errWorldClosed)
	w.delayWG.Wait()
	return errors.Join(errs...)
}

// Send delivers data to rank dst with the given user tag (tag >= 0). The
// send is eager: it buffers a copy and returns immediately, like an
// MPI_Send of a small message.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if tag < 0 {
		return fmt.Errorf("mpi: user tag %d must be >= 0", tag)
	}
	return c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []byte) error {
	_, frame, err := c.packFrame(dst, data, 0, c.tctx)
	if err != nil {
		return err
	}
	return c.deliver(dst, tag, frame)
}

// packFrame assigns the next sequence number on the (rank, dst) edge and
// encodes data into a frame stamped with tctx (invalid = untraced).
// Reliable sends keep the frame so retransmissions reuse the same seq
// (letting the receiver deduplicate) and the same trace context.
func (c *Comm) packFrame(dst int, data []byte, flags byte, tctx trace.Context) (uint64, []byte, error) {
	if dst < 0 || dst >= c.w.size {
		return 0, nil, fmt.Errorf("mpi: send to invalid rank %d (size %d)", dst, c.w.size)
	}
	seq := c.w.seqs[c.rank][dst].Add(1)
	return seq, encodeFrame(seq, flags, tctx, data), nil
}

// deliver pushes one framed message toward dst, applying the world's fault
// plan. The frame's ownership passes to the receiver; retransmissions must
// pass a fresh copy.
func (c *Comm) deliver(dst, tag int, frame []byte) error {
	w := c.w
	if err := w.abortErr(); err != nil {
		return err
	}
	box := w.boxes[dst][c.rank]
	mMessages.Inc()
	mBytes.Add(uint64(len(frame)))
	if inj := w.inject; inj != nil {
		d := inj.OnSend(c.rank, dst, tag, frame)
		if d.Crash {
			w.noteCrashed(c.rank)
			panic(crashPanic{rank: c.rank})
		}
		for _, f := range d.Frames {
			if d.Delay > 0 {
				w.delayWG.Add(1)
				f := f
				time.AfterFunc(d.Delay, func() {
					defer w.delayWG.Done()
					box.put(tag, f)
				})
			} else {
				box.put(tag, f)
			}
		}
		return nil
	}
	box.put(tag, frame)
	return nil
}

// Recv blocks until a message with the given tag arrives from rank src and
// returns its payload. Messages from the same sender are matched in send
// order (MPI's non-overtaking guarantee; fault-injected delays may reorder).
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpi: user tag %d must be >= 0", tag)
	}
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) ([]byte, error) {
	return c.recvFrame(src, tag, time.Time{})
}

// recvFrame is the single receive path: it takes frames from the (src,
// rank) mailbox until a valid, first-time frame with the tag arrives.
// Corrupt frames (checksum mismatch) are counted and discarded; duplicate
// seqs are counted and suppressed; frames requesting acknowledgement are
// acked — duplicates included, since a duplicate usually means the
// sender's previous ack was lost.
func (c *Comm) recvFrame(src, tag int, deadline time.Time) ([]byte, error) {
	if src < 0 || src >= c.w.size {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d (size %d)", src, c.w.size)
	}
	var tstart time.Time
	if trace.Enabled() {
		tstart = time.Now()
	}
	box := c.w.boxes[c.rank][src]
	for {
		raw, stale, err := box.take(tag, deadline)
		// Re-ack swept retransmits first: their sender is spinning on them.
		for _, s := range stale {
			c.sendAck(src, s)
		}
		if err != nil {
			return nil, err
		}
		if raw == nil {
			continue
		}
		seq, flags, fctx, payload, derr := decodeFrame(raw)
		if derr != nil {
			mCorruptDetected.Inc()
			continue
		}
		fresh := box.firstDelivery(seq)
		if flags&flagAckWanted != 0 {
			c.sendAck(src, seq)
		}
		if !fresh {
			mDupSuppressed.Inc()
			continue
		}
		if fctx.Valid() {
			// Parent under the SENDER's span, stitching the cross-rank
			// edge into one trace.
			sp := trace.Start(fctx, "mpi.recv")
			sp.Attr(trace.Int("src", int64(src)))
			sp.Attr(trace.Int("dst", int64(c.rank)))
			sp.Attr(trace.Int("tag", int64(tag)))
			sp.Attr(trace.Int("seq", int64(seq)))
			if !tstart.IsZero() {
				sp.Attr(trace.Int("wait_ns", time.Since(tstart).Nanoseconds()))
			}
			sp.End()
		}
		return payload, nil
	}
}

// Barrier blocks until every rank has entered the barrier, using the
// dissemination algorithm (ceil(log2 P) rounds).
func (c *Comm) Barrier() error {
	size := c.w.size
	for dist := 1; dist < size; dist <<= 1 {
		to := (c.rank + dist) % size
		from := (c.rank - dist%size + size) % size
		if err := c.send(to, tagBarrier, nil); err != nil {
			return err
		}
		if _, err := c.recv(from, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns each rank's copy. Non-root ranks pass data = nil.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	size := c.w.size
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: bcast root %d", root)
	}
	vrank := (c.rank - root + size) % size
	// Receive once from the parent (unless root)...
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % size
			var err error
			data, err = c.recv(parent, tagBcast)
			if err != nil {
				return nil, err
			}
			break
		}
		mask <<= 1
	}
	// ...then forward to children below the split point.
	mask >>= 1
	for mask > 0 {
		if vrank+mask < size {
			child := (vrank + mask + root) % size
			if err := c.send(child, tagBcast, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// Reduce combines every rank's data with op along a binomial tree rooted at
// root. On root it returns the combined buffer; on other ranks it returns
// nil. The combine order is fixed by the tree, so results are bit-identical
// across runs for a fixed world size (and identical for ANY size when op is
// truly associative, as with HP).
func (c *Comm) Reduce(root int, data []byte, op Op) ([]byte, error) {
	size := c.w.size
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: reduce root %d", root)
	}
	vrank := (c.rank - root + size) % size
	acc := make([]byte, len(data))
	copy(acc, data)
	for mask := 1; mask < size; mask <<= 1 {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % size
			return nil, c.send(parent, tagReduce, acc)
		}
		partner := vrank + mask
		if partner < size {
			in, err := c.recv((partner+root)%size, tagReduce)
			if err != nil {
				return nil, err
			}
			if err := op(acc, in); err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// Allreduce is Reduce to rank 0 followed by Bcast: every rank receives the
// combined buffer.
func (c *Comm) Allreduce(data []byte, op Op) ([]byte, error) {
	done := timeAllreduce()
	acc, err := c.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	out, err := c.Bcast(0, acc)
	if err == nil {
		done()
	}
	return out, err
}

// timeAllreduce starts timing one rank's allreduce and returns the
// completion hook; when telemetry is off it is a no-op and reads no clock.
func timeAllreduce() func() {
	if !telemetry.Enabled() {
		return func() {}
	}
	start := time.Now()
	return func() {
		mAllreduce.Inc()
		mAllreduceLatency.ObserveDuration(time.Since(start).Seconds())
	}
}

// Gather collects every rank's buffer at root. On root it returns a slice
// indexed by rank; on other ranks it returns nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	size := c.w.size
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: gather root %d", root)
	}
	if c.rank != root {
		return nil, c.send(root, tagGather, data)
	}
	out := make([][]byte, size)
	cp := make([]byte, len(data))
	copy(cp, data)
	out[root] = cp
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		buf, err := c.recv(r, tagGather)
		if err != nil {
			return nil, err
		}
		out[r] = buf
	}
	return out, nil
}

// Allgather collects every rank's buffer at every rank: each rank returns
// a slice indexed by rank. Implemented as Gather to rank 0 followed by a
// broadcast of the concatenation.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	all, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	// Root flattens with a length prefix per part; everyone unpacks.
	var flat []byte
	if c.rank == 0 {
		for _, part := range all {
			flat = appendUint32(flat, uint32(len(part)))
			flat = append(flat, part...)
		}
	}
	flat, err = c.Bcast(0, flat)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.w.size)
	off := 0
	for r := range out {
		if off+4 > len(flat) {
			return nil, fmt.Errorf("mpi: allgather decode underrun at rank %d", r)
		}
		n := int(uint32(flat[off])<<24 | uint32(flat[off+1])<<16 |
			uint32(flat[off+2])<<8 | uint32(flat[off+3]))
		off += 4
		if off+n > len(flat) {
			return nil, fmt.Errorf("mpi: allgather decode underrun at rank %d", r)
		}
		out[r] = append([]byte(nil), flat[off:off+n]...)
		off += n
	}
	return out, nil
}

func appendUint32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Scatter distributes parts[r] from root to each rank r and returns this
// rank's part. Non-root ranks pass parts = nil.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	size := c.w.size
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: scatter root %d", root)
	}
	if c.rank == root {
		if len(parts) != size {
			return nil, fmt.Errorf("mpi: scatter with %d parts for %d ranks",
				len(parts), size)
		}
		for r := 0; r < size; r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tagScatter, parts[r]); err != nil {
				return nil, err
			}
		}
		cp := make([]byte, len(parts[root]))
		copy(cp, parts[root])
		return cp, nil
	}
	return c.recv(root, tagScatter)
}

// OpSumFloat64 is the reduction operator for buffers of big-endian float64
// vectors: element-wise floating-point addition (the conventional
// MPI_SUM / MPI_DOUBLE pairing whose non-associativity the paper targets).
func OpSumFloat64(inout, in []byte) error {
	if len(inout) != len(in) || len(inout)%8 != 0 {
		return fmt.Errorf("mpi: float64 op on %d/%d bytes", len(inout), len(in))
	}
	for i := 0; i < len(inout); i += 8 {
		a := math.Float64frombits(binary.BigEndian.Uint64(inout[i:]))
		b := math.Float64frombits(binary.BigEndian.Uint64(in[i:]))
		binary.BigEndian.PutUint64(inout[i:], math.Float64bits(a+b))
	}
	return nil
}

// EncodeFloat64s packs xs into a big-endian byte buffer for OpSumFloat64.
func EncodeFloat64s(xs []float64) []byte {
	buf := make([]byte, 0, 8*len(xs))
	for _, x := range xs {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// DecodeFloat64s unpacks a buffer written by EncodeFloat64s.
func DecodeFloat64s(buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mpi: float64 buffer of %d bytes", len(buf))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
