// Package mpi is an in-process message-passing substrate standing in for
// the MPI environment of the paper's Figure 6. A world of P ranks runs as P
// goroutines; each rank owns a Comm handle providing point-to-point sends
// and receives (eager, buffered, FIFO-ordered per sender/receiver pair with
// tag matching) and the collectives the experiment needs: Barrier, Bcast,
// Reduce, Allreduce, Gather, and Scatter, with binomial-tree reduction and
// user-defined reduction operators over byte buffers — the analogue of the
// custom MPI datatype + MPI_Op the paper builds for HP values.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Op combines two encoded values: inout = combine(inout, in). Ops used with
// Reduce must be commutative and associative over the encoded domain (the
// HP and Hallberg ops are; the float64 op is commutative but only
// approximately associative, which is exactly the paper's problem).
type Op func(inout, in []byte) error

// message is one in-flight payload.
type message struct {
	tag  int
	data []byte
}

// mailbox is the unbounded FIFO queue for one (src, dst) pair.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(tag int, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.queue = append(m.queue, message{tag: tag, data: cp})
	m.cond.Signal()
	m.mu.Unlock()
}

// take removes and returns the earliest message with the given tag,
// blocking until one arrives. Messages with other tags stay queued.
func (m *mailbox) take(tag int) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.queue {
			if msg.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg.data
			}
		}
		m.cond.Wait()
	}
}

// world is the shared state of one Run invocation (or one Split group).
type world struct {
	size  int
	boxes [][]*mailbox // boxes[dst][src]

	splitMu sync.Mutex
	split   *splitState
}

// newWorld allocates the mailbox matrix for size ranks.
func newWorld(size int) *world {
	w := &world{size: size, boxes: make([][]*mailbox, size)}
	for dst := range w.boxes {
		w.boxes[dst] = make([]*mailbox, size)
		for src := range w.boxes[dst] {
			w.boxes[dst][src] = newMailbox()
		}
	}
	return w
}

// Comm is a rank's communicator handle. A Comm is owned by one goroutine
// and must not be shared.
type Comm struct {
	rank int
	w    *world
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Internal tag space: user tags must be >= 0.
const (
	tagBarrier = -1 - iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
)

// Run executes fn on every rank of a size-rank world concurrently and
// returns the joined errors of all ranks (nil if every rank succeeded).
func Run(size int, fn func(c *Comm) error) error {
	if size < 1 {
		return fmt.Errorf("mpi: world size %d", size)
	}
	w := newWorld(size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(&Comm{rank: rank, w: w})
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Send delivers data to rank dst with the given user tag (tag >= 0). The
// send is eager: it buffers a copy and returns immediately, like an
// MPI_Send of a small message.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if tag < 0 {
		return fmt.Errorf("mpi: user tag %d must be >= 0", tag)
	}
	return c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= c.w.size {
		return fmt.Errorf("mpi: send to invalid rank %d (size %d)", dst, c.w.size)
	}
	c.w.boxes[dst][c.rank].put(tag, data)
	mMessages.Inc()
	mBytes.Add(uint64(len(data)))
	return nil
}

// Recv blocks until a message with the given tag arrives from rank src and
// returns its payload. Messages from the same sender are matched in send
// order (MPI's non-overtaking guarantee).
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpi: user tag %d must be >= 0", tag)
	}
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) ([]byte, error) {
	if src < 0 || src >= c.w.size {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d (size %d)", src, c.w.size)
	}
	return c.w.boxes[c.rank][src].take(tag), nil
}

// Barrier blocks until every rank has entered the barrier, using the
// dissemination algorithm (ceil(log2 P) rounds).
func (c *Comm) Barrier() error {
	size := c.w.size
	for dist := 1; dist < size; dist <<= 1 {
		to := (c.rank + dist) % size
		from := (c.rank - dist%size + size) % size
		if err := c.send(to, tagBarrier, nil); err != nil {
			return err
		}
		if _, err := c.recv(from, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns each rank's copy. Non-root ranks pass data = nil.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	size := c.w.size
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: bcast root %d", root)
	}
	vrank := (c.rank - root + size) % size
	// Receive once from the parent (unless root)...
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % size
			var err error
			data, err = c.recv(parent, tagBcast)
			if err != nil {
				return nil, err
			}
			break
		}
		mask <<= 1
	}
	// ...then forward to children below the split point.
	mask >>= 1
	for mask > 0 {
		if vrank+mask < size {
			child := (vrank + mask + root) % size
			if err := c.send(child, tagBcast, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// Reduce combines every rank's data with op along a binomial tree rooted at
// root. On root it returns the combined buffer; on other ranks it returns
// nil. The combine order is fixed by the tree, so results are bit-identical
// across runs for a fixed world size (and identical for ANY size when op is
// truly associative, as with HP).
func (c *Comm) Reduce(root int, data []byte, op Op) ([]byte, error) {
	size := c.w.size
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: reduce root %d", root)
	}
	vrank := (c.rank - root + size) % size
	acc := make([]byte, len(data))
	copy(acc, data)
	for mask := 1; mask < size; mask <<= 1 {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % size
			return nil, c.send(parent, tagReduce, acc)
		}
		partner := vrank + mask
		if partner < size {
			in, err := c.recv((partner+root)%size, tagReduce)
			if err != nil {
				return nil, err
			}
			if err := op(acc, in); err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// Allreduce is Reduce to rank 0 followed by Bcast: every rank receives the
// combined buffer.
func (c *Comm) Allreduce(data []byte, op Op) ([]byte, error) {
	done := timeAllreduce()
	acc, err := c.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	out, err := c.Bcast(0, acc)
	if err == nil {
		done()
	}
	return out, err
}

// timeAllreduce starts timing one rank's allreduce and returns the
// completion hook; when telemetry is off it is a no-op and reads no clock.
func timeAllreduce() func() {
	if !telemetry.Enabled() {
		return func() {}
	}
	start := time.Now()
	return func() {
		mAllreduce.Inc()
		mAllreduceLatency.ObserveDuration(time.Since(start).Seconds())
	}
}

// Gather collects every rank's buffer at root. On root it returns a slice
// indexed by rank; on other ranks it returns nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	size := c.w.size
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: gather root %d", root)
	}
	if c.rank != root {
		return nil, c.send(root, tagGather, data)
	}
	out := make([][]byte, size)
	cp := make([]byte, len(data))
	copy(cp, data)
	out[root] = cp
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		buf, err := c.recv(r, tagGather)
		if err != nil {
			return nil, err
		}
		out[r] = buf
	}
	return out, nil
}

// Allgather collects every rank's buffer at every rank: each rank returns
// a slice indexed by rank. Implemented as Gather to rank 0 followed by a
// broadcast of the concatenation.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	all, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	// Root flattens with a length prefix per part; everyone unpacks.
	var flat []byte
	if c.rank == 0 {
		for _, part := range all {
			flat = appendUint32(flat, uint32(len(part)))
			flat = append(flat, part...)
		}
	}
	flat, err = c.Bcast(0, flat)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.w.size)
	off := 0
	for r := range out {
		if off+4 > len(flat) {
			return nil, fmt.Errorf("mpi: allgather decode underrun at rank %d", r)
		}
		n := int(uint32(flat[off])<<24 | uint32(flat[off+1])<<16 |
			uint32(flat[off+2])<<8 | uint32(flat[off+3]))
		off += 4
		if off+n > len(flat) {
			return nil, fmt.Errorf("mpi: allgather decode underrun at rank %d", r)
		}
		out[r] = append([]byte(nil), flat[off:off+n]...)
		off += n
	}
	return out, nil
}

func appendUint32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Scatter distributes parts[r] from root to each rank r and returns this
// rank's part. Non-root ranks pass parts = nil.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	size := c.w.size
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: scatter root %d", root)
	}
	if c.rank == root {
		if len(parts) != size {
			return nil, fmt.Errorf("mpi: scatter with %d parts for %d ranks",
				len(parts), size)
		}
		for r := 0; r < size; r++ {
			if r == root {
				continue
			}
			if err := c.send(r, tagScatter, parts[r]); err != nil {
				return nil, err
			}
		}
		cp := make([]byte, len(parts[root]))
		copy(cp, parts[root])
		return cp, nil
	}
	return c.recv(root, tagScatter)
}

// OpSumFloat64 is the reduction operator for buffers of big-endian float64
// vectors: element-wise floating-point addition (the conventional
// MPI_SUM / MPI_DOUBLE pairing whose non-associativity the paper targets).
func OpSumFloat64(inout, in []byte) error {
	if len(inout) != len(in) || len(inout)%8 != 0 {
		return fmt.Errorf("mpi: float64 op on %d/%d bytes", len(inout), len(in))
	}
	for i := 0; i < len(inout); i += 8 {
		a := math.Float64frombits(binary.BigEndian.Uint64(inout[i:]))
		b := math.Float64frombits(binary.BigEndian.Uint64(in[i:]))
		binary.BigEndian.PutUint64(inout[i:], math.Float64bits(a+b))
	}
	return nil
}

// EncodeFloat64s packs xs into a big-endian byte buffer for OpSumFloat64.
func EncodeFloat64s(xs []float64) []byte {
	buf := make([]byte, 0, 8*len(xs))
	for _, x := range xs {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// DecodeFloat64s unpacks a buffer written by EncodeFloat64s.
func DecodeFloat64s(buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mpi: float64 buffer of %d bytes", len(buf))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
