package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

func TestRunBasics(t *testing.T) {
	var ran atomic.Int32
	err := Run(5, func(c *Comm) error {
		if c.Size() != 5 {
			t.Errorf("Size = %d", c.Size())
		}
		if c.Rank() < 0 || c.Rank() >= 5 {
			t.Errorf("Rank = %d", c.Rank())
		}
		ran.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 5 {
		t.Errorf("ran %d ranks", ran.Load())
	}
	if err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestRunCollectsErrorsAndPanics(t *testing.T) {
	sentinel := errors.New("boom")
	err := Run(4, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return sentinel
		case 2:
			panic("kaboom")
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("error lost: %v", err)
	}
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("kaboom")) {
		t.Errorf("panic not captured: %v", err)
	}
}

func TestSendRecvRing(t *testing.T) {
	const size = 8
	err := Run(size, func(c *Comm) error {
		next := (c.Rank() + 1) % size
		prev := (c.Rank() - 1 + size) % size
		if err := c.Send(next, 7, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		got, err := c.Recv(prev, 7)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != byte(prev) {
			return fmt.Errorf("rank %d got %v from %d", c.Rank(), got, prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvOrderingPerPair(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 100; i++ {
			got, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if got[0] != byte(i) {
				return fmt.Errorf("message %d arrived as %d", i, got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 10, []byte("first-tag10")); err != nil {
				return err
			}
			return c.Send(1, 20, []byte("then-tag20"))
		}
		// Receive in the opposite tag order: the tag-20 message must be
		// matched even though a tag-10 message is queued ahead of it.
		got20, err := c.Recv(0, 20)
		if err != nil {
			return err
		}
		got10, err := c.Recv(0, 10)
		if err != nil {
			return err
		}
		if string(got20) != "then-tag20" || string(got10) != "first-tag10" {
			return fmt.Errorf("mismatched: %q %q", got20, got10)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("invalid dst accepted")
		}
		if err := c.Send(0, -3, nil); err == nil {
			return errors.New("negative tag accepted")
		}
		if _, err := c.Recv(9, 0); err == nil {
			return errors.New("invalid src accepted")
		}
		if _, err := c.Recv(0, -1); err == nil {
			return errors.New("negative recv tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not affect the delivered message
			return nil
		}
		got, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if got[0] != 1 {
			return fmt.Errorf("payload aliased: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	for _, size := range []int{1, 2, 3, 7, 16} {
		var phase atomic.Int32
		err := Run(size, func(c *Comm) error {
			for round := int32(0); round < 20; round++ {
				phase.Add(1)
				if err := c.Barrier(); err != nil {
					return err
				}
				if got := phase.Load(); got < (round+1)*int32(size) {
					return fmt.Errorf("rank %d escaped barrier early: %d", c.Rank(), got)
				}
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for _, size := range []int{1, 2, 5, 8, 13} {
		for root := 0; root < size; root++ {
			err := Run(size, func(c *Comm) error {
				var buf []byte
				if c.Rank() == root {
					buf = []byte(fmt.Sprintf("payload-from-%d", root))
				}
				got, err := c.Bcast(root, buf)
				if err != nil {
					return err
				}
				want := fmt.Sprintf("payload-from-%d", root)
				if string(got) != want {
					return fmt.Errorf("rank %d got %q", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("size %d root %d: %v", size, root, err)
			}
		}
	}
}

func TestReduceSumFloat64(t *testing.T) {
	for _, size := range []int{1, 2, 4, 7, 16} {
		for root := 0; root < size; root += max(1, size/3) {
			err := Run(size, func(c *Comm) error {
				local := []float64{float64(c.Rank()), 1}
				got, err := c.Reduce(root, EncodeFloat64s(local), OpSumFloat64)
				if err != nil {
					return err
				}
				if c.Rank() != root {
					if got != nil {
						return errors.New("non-root received data")
					}
					return nil
				}
				vals, err := DecodeFloat64s(got)
				if err != nil {
					return err
				}
				wantSum := float64(size*(size-1)) / 2
				if vals[0] != wantSum || vals[1] != float64(size) {
					return fmt.Errorf("reduce = %v, want [%g %g]", vals, wantSum, float64(size))
				}
				return nil
			})
			if err != nil {
				t.Fatalf("size %d root %d: %v", size, root, err)
			}
		}
	}
}

func TestAllreduce(t *testing.T) {
	const size = 9
	err := Run(size, func(c *Comm) error {
		local := []float64{1}
		got, err := c.Allreduce(EncodeFloat64s(local), OpSumFloat64)
		if err != nil {
			return err
		}
		vals, err := DecodeFloat64s(got)
		if err != nil {
			return err
		}
		if vals[0] != size {
			return fmt.Errorf("rank %d: allreduce = %g", c.Rank(), vals[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	const size = 6
	const root = 2
	err := Run(size, func(c *Comm) error {
		// Scatter rank-specific payloads from root...
		var parts [][]byte
		if c.Rank() == root {
			parts = make([][]byte, size)
			for r := range parts {
				parts[r] = []byte{byte(r * 3)}
			}
		}
		mine, err := c.Scatter(root, parts)
		if err != nil {
			return err
		}
		if len(mine) != 1 || mine[0] != byte(c.Rank()*3) {
			return fmt.Errorf("rank %d scattered %v", c.Rank(), mine)
		}
		// ...transform and gather back.
		mine[0]++
		all, err := c.Gather(root, mine)
		if err != nil {
			return err
		}
		if c.Rank() != root {
			if all != nil {
				return errors.New("non-root gather returned data")
			}
			return nil
		}
		for r, buf := range all {
			if len(buf) != 1 || buf[0] != byte(r*3+1) {
				return fmt.Errorf("gathered[%d] = %v", r, buf)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterValidatesParts(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Scatter(0, [][]byte{{1}}); err == nil {
				return errors.New("short parts accepted")
			}
			// Unblock rank 1 with a proper scatter.
			_, err := c.Scatter(0, [][]byte{{1}, {2}})
			return err
		}
		_, err := c.Scatter(0, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The double-precision tree reduction is deterministic for a fixed world
// size but generally differs across sizes — the phenomenon motivating the
// paper. The HP op (ops_test.go) must not differ.
func TestFloat64ReduceDeterministicPerSize(t *testing.T) {
	r := rng.New(61)
	xs := rng.UniformSet(r, 1<<12, -0.5, 0.5)
	sumWith := func(size int) float64 {
		var result float64
		err := Run(size, func(c *Comm) error {
			lo := c.Rank() * len(xs) / size
			hi := (c.Rank() + 1) * len(xs) / size
			local := 0.0
			for _, x := range xs[lo:hi] {
				local += x
			}
			got, err := c.Reduce(0, EncodeFloat64s([]float64{local}), OpSumFloat64)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				vals, err := DecodeFloat64s(got)
				if err != nil {
					return err
				}
				result = vals[0]
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return result
	}
	if sumWith(8) != sumWith(8) {
		t.Error("tree reduction not deterministic for fixed size")
	}
}

func TestDecodeFloat64sRejectsRagged(t *testing.T) {
	if _, err := DecodeFloat64s(make([]byte, 11)); err == nil {
		t.Error("ragged buffer accepted")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestIsendIrecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{7, 8, 9}
			req := c.Isend(1, 5, buf)
			buf[0] = 99 // reuse immediately: payload was copied
			_, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 5)
		// Overlap "computation" with the receive.
		sum := 0
		for i := 0; i < 1000; i++ {
			sum += i
		}
		got, err := req.Wait()
		if err != nil {
			return err
		}
		if got[0] != 7 || len(got) != 3 {
			return fmt.Errorf("Irecv got %v (sum %d)", got, sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvValidation(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if _, err := c.Irecv(5, 0).Wait(); err == nil {
			return errors.New("invalid src accepted")
		}
		if _, err := c.Irecv(0, -1).Wait(); err == nil {
			return errors.New("invalid tag accepted")
		}
		var nilReq *Request
		if _, err := nilReq.Wait(); err == nil {
			return errors.New("nil request accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRingExchange(t *testing.T) {
	// Every rank simultaneously exchanges with both neighbors: the classic
	// pattern that deadlocks with naive blocking sends.
	const size = 8
	err := Run(size, func(c *Comm) error {
		next := (c.Rank() + 1) % size
		prev := (c.Rank() - 1 + size) % size
		got, err := c.Sendrecv(next, 2, []byte{byte(c.Rank())}, prev, 2)
		if err != nil {
			return err
		}
		if got[0] != byte(prev) {
			return fmt.Errorf("rank %d got %d", c.Rank(), got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, size := range []int{1, 2, 5, 8} {
		err := Run(size, func(c *Comm) error {
			// Rank-dependent payload lengths exercise the length prefixes.
			mine := make([]byte, c.Rank()+1)
			for i := range mine {
				mine[i] = byte(c.Rank() * 10)
			}
			all, err := c.Allgather(mine)
			if err != nil {
				return err
			}
			if len(all) != size {
				return fmt.Errorf("got %d parts", len(all))
			}
			for r, part := range all {
				if len(part) != r+1 {
					return fmt.Errorf("part %d has length %d", r, len(part))
				}
				for _, b := range part {
					if b != byte(r*10) {
						return fmt.Errorf("part %d content %v", r, part)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}
