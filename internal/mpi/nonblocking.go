package mpi

import (
	"fmt"
	"time"
)

// Nonblocking point-to-point operations and combined send-receive, rounding
// out the substrate to the MPI subset a real global-summation code uses
// (overlapping the local reduction with partial-sum exchange).

// Request represents an in-flight nonblocking operation. Wait must be
// called exactly once.
type Request struct {
	done chan result
}

type result struct {
	data []byte
	err  error
}

// Wait blocks until the operation completes, returning the received
// payload for receives (nil for sends).
func (r *Request) Wait() ([]byte, error) {
	if r == nil || r.done == nil {
		return nil, fmt.Errorf("mpi: Wait on nil request")
	}
	res := <-r.done
	return res.data, res.err
}

// Isend starts a nonblocking send. The payload is copied before Isend
// returns, so the caller may reuse the buffer immediately (like MPI_Isend
// followed by a completed MPI_Wait for small eager messages).
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	req := &Request{done: make(chan result, 1)}
	err := c.Send(dst, tag, data) // eager: buffers and returns
	req.done <- result{err: err}
	return req
}

// Irecv starts a nonblocking receive; Wait returns the payload. The
// completion goroutine exits on world abort or a crashed sender, so an
// unmatched Irecv cannot outlive its world's teardown.
func (c *Comm) Irecv(src, tag int) *Request {
	req := &Request{done: make(chan result, 1)}
	if tag < 0 {
		req.done <- result{err: fmt.Errorf("mpi: user tag %d must be >= 0", tag)}
		return req
	}
	if src < 0 || src >= c.w.size {
		req.done <- result{err: fmt.Errorf("mpi: recv from invalid rank %d (size %d)", src, c.w.size)}
		return req
	}
	go func() {
		data, err := c.recvFrame(src, tag, time.Time{})
		req.done <- result{data: data, err: err}
	}()
	return req
}

// Sendrecv performs a combined send and receive that cannot deadlock even
// when every rank exchanges with a partner simultaneously (MPI_Sendrecv).
func (c *Comm) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, error) {
	if err := c.Send(dst, sendTag, data); err != nil {
		return nil, err
	}
	return c.Recv(src, recvTag)
}
