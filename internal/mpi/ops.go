package mpi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/hallberg"
)

// Custom reduction operators for the high-precision formats — the analogue
// of the custom MPI datatype and MPI_Op the paper registers to reduce HP
// values with MPI_Reduce (§IV.B). Values travel as raw limb images; the
// operators are exactly associative, so the reduced result is bit-identical
// for every world size and reduction topology.

// OpSumHP returns the reduction operator for raw HP limb buffers (8*N bytes
// big-endian, as produced by core.HP.AppendRawLimbs) with format p. The
// returned Op is safe for concurrent use by multiple ranks.
func OpSumHP(p core.Params) Op {
	return func(inout, in []byte) error {
		want := 8 * p.N
		if len(inout) != want || len(in) != want {
			return fmt.Errorf("mpi: HP op on %d/%d bytes, want %d",
				len(inout), len(in), want)
		}
		a := core.New(p)
		b := core.New(p)
		if err := a.SetRawLimbs(inout); err != nil {
			return err
		}
		if err := b.SetRawLimbs(in); err != nil {
			return err
		}
		if a.Add(b) {
			return core.ErrOverflow
		}
		copy(inout, a.AppendRawLimbs(inout[:0]))
		return nil
	}
}

// EncodeHP packs x's limbs for OpSumHP.
func EncodeHP(x *core.HP) []byte { return x.AppendRawLimbs(nil) }

// DecodeHP unpacks a buffer written by EncodeHP into a new HP with format p.
func DecodeHP(p core.Params, buf []byte) (*core.HP, error) {
	z := core.New(p)
	if err := z.SetRawLimbs(buf); err != nil {
		return nil, err
	}
	return z, nil
}

// OpSumHallberg returns the reduction operator for Hallberg limb buffers
// (8*N bytes big-endian two's-complement int64s) with format p.
func OpSumHallberg(p hallberg.Params) Op {
	return func(inout, in []byte) error {
		want := 8 * p.N
		if len(inout) != want || len(in) != want {
			return fmt.Errorf("mpi: Hallberg op on %d/%d bytes, want %d",
				len(inout), len(in), want)
		}
		for i := 0; i < want; i += 8 {
			a := int64(binary.BigEndian.Uint64(inout[i:]))
			b := int64(binary.BigEndian.Uint64(in[i:]))
			binary.BigEndian.PutUint64(inout[i:], uint64(a+b))
		}
		return nil
	}
}

// EncodeHallberg packs x's limbs for OpSumHallberg.
func EncodeHallberg(x *hallberg.Num) []byte {
	limbs := x.Limbs()
	buf := make([]byte, 0, 8*len(limbs))
	for _, l := range limbs {
		buf = binary.BigEndian.AppendUint64(buf, uint64(l))
	}
	return buf
}

// DecodeHallberg unpacks a buffer written by EncodeHallberg into a Num with
// format p, returning its float64 value via the package's normalization.
func DecodeHallberg(p hallberg.Params, buf []byte) (*hallberg.Num, error) {
	if len(buf) != 8*p.N {
		return nil, fmt.Errorf("mpi: Hallberg buffer of %d bytes, want %d",
			len(buf), 8*p.N)
	}
	limbs := make([]int64, p.N)
	for i := range limbs {
		limbs[i] = int64(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return hallberg.NumFromLimbs(p, limbs)
}
