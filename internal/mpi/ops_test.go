package mpi

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/hallberg"
	"repro/internal/rng"
)

// distributedHPSum reduces xs over a world of the given size with the HP
// custom op and returns root's limbs.
func distributedHPSum(t *testing.T, xs []float64, size int, p core.Params) *core.HP {
	t.Helper()
	var result *core.HP
	err := Run(size, func(c *Comm) error {
		lo := c.Rank() * len(xs) / size
		hi := (c.Rank() + 1) * len(xs) / size
		local := core.NewAccumulator(p)
		local.AddAll(xs[lo:hi])
		if local.Err() != nil {
			return local.Err()
		}
		buf, err := c.Reduce(0, EncodeHP(local.Sum()), OpSumHP(p))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			result, err = DecodeHP(p, buf)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return result
}

// The HP reduction is bit-identical for EVERY world size and equals the
// exact oracle — the Figure 6 invariance claim.
func TestHPReduceInvariantAcrossWorldSizes(t *testing.T) {
	p := core.Params384
	r := rng.New(71)
	xs := rng.UniformSet(r, 1<<13, -0.5, 0.5)
	oracle := exact.New()
	oracle.AddAll(xs)

	ref := distributedHPSum(t, xs, 1, p)
	if ref.Rat().Cmp(oracle.Rat()) != 0 {
		t.Fatal("size-1 HP reduce diverged from oracle")
	}
	for _, size := range []int{2, 3, 7, 8, 16, 32} {
		got := distributedHPSum(t, xs, size, p)
		if !got.Equal(ref) {
			t.Errorf("size %d: HP reduce differs from size 1", size)
		}
	}
}

func TestHallbergReduceMatchesOracle(t *testing.T) {
	p := hallberg.New(10, 38)
	r := rng.New(72)
	xs := rng.UniformSet(r, 1<<12, -0.5, 0.5)
	oracle := exact.New()
	oracle.AddAll(xs)

	for _, size := range []int{1, 4, 9} {
		var result *hallberg.Num
		err := Run(size, func(c *Comm) error {
			lo := c.Rank() * len(xs) / size
			hi := (c.Rank() + 1) * len(xs) / size
			local := hallberg.NewAccumulator(p)
			local.AddAll(xs[lo:hi])
			if local.Err() != nil {
				return local.Err()
			}
			buf, err := c.Reduce(0, EncodeHallberg(local.Sum()), OpSumHallberg(p))
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				result, err = DecodeHallberg(p, buf)
				return err
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if result.Rat().Cmp(oracle.Rat()) != 0 {
			t.Errorf("size %d: Hallberg reduce diverged from oracle", size)
		}
	}
}

func TestHPAllreduce(t *testing.T) {
	p := core.Params192
	const size = 5
	err := Run(size, func(c *Comm) error {
		local, err := core.FromFloat64(p, float64(c.Rank())+0.5)
		if err != nil {
			return err
		}
		buf, err := c.Allreduce(EncodeHP(local), OpSumHP(p))
		if err != nil {
			return err
		}
		got, err := DecodeHP(p, buf)
		if err != nil {
			return err
		}
		want := float64(size*(size-1))/2 + 0.5*size
		if got.Float64() != want {
			return fmt.Errorf("rank %d: allreduce = %g, want %g",
				c.Rank(), got.Float64(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpValidation(t *testing.T) {
	op := OpSumHP(core.Params192)
	if err := op(make([]byte, 8), make([]byte, 24)); err == nil {
		t.Error("short inout accepted")
	}
	if err := op(make([]byte, 24), make([]byte, 8)); err == nil {
		t.Error("short in accepted")
	}
	hop := OpSumHallberg(hallberg.New(4, 20))
	if err := hop(make([]byte, 8), make([]byte, 32)); err == nil {
		t.Error("short Hallberg inout accepted")
	}
	if err := OpSumFloat64(make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("mismatched float64 op accepted")
	}
	if err := OpSumFloat64(make([]byte, 9), make([]byte, 9)); err == nil {
		t.Error("ragged float64 op accepted")
	}
	if _, err := DecodeHallberg(hallberg.New(4, 20), make([]byte, 3)); err == nil {
		t.Error("ragged Hallberg buffer accepted")
	}
}

func TestOpSumHPOverflowSurfaces(t *testing.T) {
	p := core.Params128
	big, err := core.FromFloat64(p, 0x1p62)
	if err != nil {
		t.Fatal(err)
	}
	op := OpSumHP(p)
	a := EncodeHP(big)
	b := EncodeHP(big)
	if err := op(a, b); err != core.ErrOverflow {
		t.Errorf("overflowing reduce op: %v, want ErrOverflow", err)
	}
}
