package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/trace"
)

// Reliable point-to-point layer: deadline-bounded send and receive with
// positive acknowledgement, duplicate-safe retransmission, and exponential
// backoff. Together with the frame checksums this turns the lossy,
// corrupting, reordering channel the fault injector simulates back into a
// reliable one — or fails with a TimeoutError naming the edge, never a
// silent hang.
//
// Protocol: SendTimeout encodes data once (fixing the frame's sequence
// number), delivers it with the ack-wanted flag, and waits for an ack
// carrying that seq on the internal ack tag. If no ack arrives within the
// current retransmission timeout, the SAME frame is re-delivered (same seq,
// so the receiver suppresses the duplicate) and the timeout doubles, up to
// rtoMax, until the caller's deadline expires. Every receive path
// (Recv, RecvTimeout, Irecv) acks ack-wanted frames — duplicates included,
// because a duplicate's arrival usually means the previous ack was lost.

// tagAck is the internal tag carrying acknowledgement frames; the payload
// is the 8-byte big-endian seq of the data frame being acked. Seqs are
// unique per edge, so one ack tag serves all concurrent logical streams.
const tagAck = -50

// Retransmission timing: start aggressive (the in-process channel is
// fast), back off exponentially to avoid flooding a genuinely slow peer.
const (
	rtoInitial = 2 * time.Millisecond
	rtoMax     = 50 * time.Millisecond
)

// SendTimeout delivers data to rank dst with at-least-once retransmission
// and duplicate suppression at the receiver, returning nil once the
// receiver acknowledges it, or a *TimeoutError if no ack arrives within
// timeout. The receiving rank must consume the message through any receive
// path (Recv, RecvTimeout, or Irecv); acks are automatic.
func (c *Comm) SendTimeout(dst, tag int, data []byte, timeout time.Duration) error {
	if tag < 0 {
		return fmt.Errorf("mpi: user tag %d must be >= 0", tag)
	}
	return c.sendReliable(dst, tag, data, timeout)
}

func (c *Comm) sendReliable(dst, tag int, data []byte, timeout time.Duration) error {
	if timeout <= 0 {
		return fmt.Errorf("mpi: non-positive timeout %v", timeout)
	}
	deadline := time.Now().Add(timeout)
	sp := trace.Start(c.tctx, "mpi.send")
	sp.Attr(trace.Int("src", int64(c.rank)))
	sp.Attr(trace.Int("dst", int64(dst)))
	sp.Attr(trace.Int("tag", int64(tag)))
	retransmits := 0
	defer func() {
		sp.Attr(trace.Int("retransmits", int64(retransmits)))
		sp.End()
	}()
	// The frame carries the send span's context (falling back to the Comm's
	// when untraced), so every retransmission — a byte-identical copy —
	// carries the same context and the receiver stitches to this attempt.
	tctx := sp.Context()
	if !tctx.Valid() {
		tctx = c.tctx
	}
	seq, frame, err := c.packFrame(dst, data, flagAckWanted, tctx)
	if err != nil {
		return err
	}
	rto := rtoInitial
	for attempt := 0; ; attempt++ {
		f := frame
		if attempt > 0 {
			// The queued copy of the previous attempt may still be owned
			// by the receiver; never alias delivered buffers.
			f = append([]byte(nil), frame...)
			mRetransmits.Inc()
			retransmits++
			mpiFlight.Event("retransmit",
				trace.Int("src", int64(c.rank)), trace.Int("dst", int64(dst)),
				trace.Int("tag", int64(tag)), trace.Int("seq", int64(seq)),
				trace.Int("attempt", int64(attempt)))
		}
		if err := c.deliver(dst, tag, f); err != nil {
			return err
		}
		ackBy := time.Now().Add(rto)
		if ackBy.After(deadline) {
			ackBy = deadline
		}
		err := c.awaitAck(dst, seq, ackBy)
		if err == nil {
			return nil
		}
		var te *TimeoutError
		if !errors.As(err, &te) {
			return err // abort, peer crash: retrying cannot help
		}
		if c.w.boxes[dst][c.rank].delivered(seq) {
			return nil // taken at the far end; only the ack was lost
		}
		if !time.Now().Before(deadline) {
			mSendTimeouts.Inc()
			mpiFlight.Event("send-timeout",
				trace.Int("src", int64(c.rank)), trace.Int("dst", int64(dst)),
				trace.Int("tag", int64(tag)), trace.Int("seq", int64(seq)))
			return &TimeoutError{Src: c.rank, Dst: dst, Tag: tag, Op: "send"}
		}
		if rto *= 2; rto > rtoMax {
			rto = rtoMax
		}
	}
}

// awaitAck consumes ack frames from dst until one carries want or the
// deadline passes. Acks for other seqs are stale duplicates from earlier
// exchanges on this edge and are discarded.
func (c *Comm) awaitAck(dst int, want uint64, deadline time.Time) error {
	for {
		payload, err := c.recvFrame(dst, tagAck, deadline)
		if err != nil {
			return err
		}
		if len(payload) == 8 && binary.BigEndian.Uint64(payload) == want {
			return nil
		}
	}
}

// sendAck answers an ack-wanted frame. Best effort: a lost ack is repaired
// by the sender's retransmission.
func (c *Comm) sendAck(src int, seq uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seq)
	mAcks.Inc()
	_ = c.send(src, tagAck, buf[:])
}

// RecvTimeout is Recv with a deadline: it returns a *TimeoutError if no
// valid message with the tag arrives from src within timeout, and a
// *PeerCrashedError as soon as src is known dead with nothing left queued.
func (c *Comm) RecvTimeout(src, tag int, timeout time.Duration) ([]byte, error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpi: user tag %d must be >= 0", tag)
	}
	return c.recvReliable(src, tag, timeout)
}

func (c *Comm) recvReliable(src, tag int, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		return nil, fmt.Errorf("mpi: non-positive timeout %v", timeout)
	}
	payload, err := c.recvFrame(src, tag, time.Now().Add(timeout))
	if err != nil {
		var te *TimeoutError
		if errors.As(err, &te) {
			mRecvTimeouts.Inc()
		}
		return nil, err
	}
	return payload, nil
}
