package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
)

func TestSendRecvTimeoutHappyPath(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendTimeout(1, 4, []byte("reliable"), time.Second)
		}
		got, err := c.RecvTimeout(0, 4, time.Second)
		if err != nil {
			return err
		}
		if string(got) != "reliable" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertNoLeakedGoroutines(t)
}

func TestRecvTimeoutNamesTheEdge(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		_, err := c.RecvTimeout(1, 9, 30*time.Millisecond)
		var te *TimeoutError
		if !errors.As(err, &te) {
			return fmt.Errorf("got %v, want TimeoutError", err)
		}
		if te.Src != 1 || te.Dst != 0 || te.Tag != 9 || te.Op != "recv" || !te.Timeout() {
			return fmt.Errorf("edge misnamed: %+v", te)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendTimeoutWithoutReceiver(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil // never receives, never acks
		}
		start := time.Now()
		err := c.SendTimeout(1, 2, []byte("unheard"), 60*time.Millisecond)
		var te *TimeoutError
		if !errors.As(err, &te) {
			return fmt.Errorf("got %v, want TimeoutError", err)
		}
		if te.Src != 0 || te.Dst != 1 || te.Tag != 2 || te.Op != "send" {
			return fmt.Errorf("edge misnamed: %+v", te)
		}
		if time.Since(start) < 60*time.Millisecond {
			return errors.New("gave up before the deadline")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertNoLeakedGoroutines(t)
}

func TestReliableValidation(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.SendTimeout(0, -1, nil, time.Second); err == nil {
			return errors.New("negative tag accepted")
		}
		if err := c.SendTimeout(0, 1, nil, 0); err == nil {
			return errors.New("zero timeout accepted")
		}
		if _, err := c.RecvTimeout(0, -1, time.Second); err == nil {
			return errors.New("negative recv tag accepted")
		}
		if _, err := c.RecvTimeout(0, 1, -time.Second); err == nil {
			return errors.New("negative timeout accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// One dropped frame: the reliable layer retransmits and the payload still
// arrives exactly once.
func TestSendTimeoutSurvivesDrop(t *testing.T) {
	inj, err := faults.Parse("seed=2;drop:p=1,limit=1")
	if err != nil {
		t.Fatal(err)
	}
	werr := RunWith(2, RunOpts{Inject: inj}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendTimeout(1, 6, []byte("persistent"), time.Second)
		}
		got, err := c.RecvTimeout(0, 6, time.Second)
		if err != nil {
			return err
		}
		if string(got) != "persistent" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
	if werr != nil {
		t.Fatal(werr)
	}
	if inj.TotalFired() != 1 {
		t.Errorf("drop rule fired %d times", inj.TotalFired())
	}
	assertNoLeakedGoroutines(t)
}

// One corrupted frame: the receiver's checksum rejects it, the sender's
// retransmission repairs it, and the payload arrives intact.
func TestSendTimeoutSurvivesCorruption(t *testing.T) {
	inj, err := faults.Parse("seed=4;corrupt:p=1,limit=1")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 128)
	werr := RunWith(2, RunOpts{Inject: inj}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendTimeout(1, 6, payload, time.Second)
		}
		got, err := c.RecvTimeout(0, 6, time.Second)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("payload damaged: %x", got)
		}
		return nil
	})
	if werr != nil {
		t.Fatal(werr)
	}
	if inj.TotalFired() != 1 {
		t.Errorf("corrupt rule fired %d times", inj.TotalFired())
	}
}

// A duplicated frame must be delivered exactly once: the second copy is
// suppressed by its sequence number, so a follow-up receive times out
// instead of seeing the payload twice.
func TestDuplicateDeliveredExactlyOnce(t *testing.T) {
	inj, err := faults.Parse("seed=6;dup:p=1,limit=1")
	if err != nil {
		t.Fatal(err)
	}
	werr := RunWith(2, RunOpts{Inject: inj}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendTimeout(1, 8, []byte("once"), time.Second)
		}
		got, err := c.RecvTimeout(0, 8, time.Second)
		if err != nil {
			return err
		}
		if string(got) != "once" {
			return fmt.Errorf("got %q", got)
		}
		if extra, err := c.RecvTimeout(0, 8, 50*time.Millisecond); err == nil {
			return fmt.Errorf("duplicate leaked through: %q", extra)
		}
		return nil
	})
	if werr != nil {
		t.Fatal(werr)
	}
}

func TestStallWatchdogNamesBlockedEdges(t *testing.T) {
	// Classic circular wait: both ranks receive first. The watchdog must
	// convert the deadlock into a StallError naming both blocked edges.
	err := RunWith(2, RunOpts{StallTimeout: 80 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Recv(1, 9)
			return err
		}
		_, err := c.Recv(0, 8)
		return err
	})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want StallError", err)
	}
	if len(se.Edges) != 2 {
		t.Fatalf("named %d edges, want 2: %v", len(se.Edges), se.Edges)
	}
	if e := se.Edges[0]; e.Src != 1 || e.Dst != 0 || e.Tag != 9 {
		t.Errorf("edge 0 = %+v", e)
	}
	if e := se.Edges[1]; e.Src != 0 || e.Dst != 1 || e.Tag != 8 {
		t.Errorf("edge 1 = %+v", e)
	}
	for _, want := range []string{"rank 0 <- rank 1 (tag 9)", "rank 1 <- rank 0 (tag 8)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
	assertNoLeakedGoroutines(t)
}

func TestCommAbortReleasesPeers(t *testing.T) {
	sentinel := errors.New("input file vanished")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			c.Abort(sentinel)
			return sentinel
		}
		_, err := c.Recv(2, 1) // would block forever without the abort
		return err
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("abort cause lost: %v", err)
	}
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Rank != 2 {
		t.Fatalf("got %v, want AbortError from rank 2", err)
	}
	assertNoLeakedGoroutines(t)
}

// A rank that panics must abort the world so blocked peers fail fast
// instead of stranding their goroutines — the "kaboom" leak this layer was
// hardened against.
func TestPanickingRankDoesNotStrandPeers(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			panic("kaboom")
		}
		_, err := c.Recv(2, 1) // never sent; released by the abort
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", err)
	}
	assertNoLeakedGoroutines(t)
}

// A receive on a crashed rank fails fast with PeerCrashedError rather than
// waiting out its deadline, and the crash surfaces as faults.CrashError.
func TestPeerCrashFailsFast(t *testing.T) {
	inj, err := faults.Parse("seed=1;crash:rank=1,after=0")
	if err != nil {
		t.Fatal(err)
	}
	werr := RunWith(2, RunOpts{Inject: inj}, func(c *Comm) error {
		if c.Rank() == 1 {
			_ = c.Send(0, 5, []byte("last words")) // crash rule fires here
			return errors.New("rank 1 survived its crash rule")
		}
		start := time.Now()
		_, err := c.Recv(1, 5)
		var pc *PeerCrashedError
		if !errors.As(err, &pc) {
			return fmt.Errorf("got %v, want PeerCrashedError", err)
		}
		if pc.Rank != 1 || pc.Dst != 0 || pc.Tag != 5 {
			return fmt.Errorf("crash misattributed: %+v", pc)
		}
		if !c.Crashed(1) {
			return errors.New("Crashed(1) = false")
		}
		if time.Since(start) > 2*time.Second {
			return errors.New("receive did not fail fast")
		}
		return nil
	})
	var ce *faults.CrashError
	if !errors.As(werr, &ce) || ce.Rank != 1 {
		t.Fatalf("world error = %v, want CrashError for rank 1", werr)
	}
	assertNoLeakedGoroutines(t)
}

// An Irecv nobody ever matches must not leak its goroutine: world teardown
// releases it and Wait reports the closed world.
func TestUnmatchedIrecvReleasedAtTeardown(t *testing.T) {
	var req *Request
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req = c.Irecv(1, 3)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := req.Wait(); werr == nil {
		t.Error("unmatched Irecv completed successfully")
	}
	assertNoLeakedGoroutines(t)
}
