package mpi

import (
	"fmt"
	"sort"
	"sync"
)

// Communicator splitting (MPI_Comm_split): ranks calling Split with the
// same color form a new sub-world whose collectives are independent of the
// parent's; ranks are ordered by key (ties broken by parent rank). A
// hierarchical reduction — reduce within node groups, then across group
// leaders — is the standard pattern this enables, and with the HP operator
// every grouping produces bit-identical results.

// splitState coordinates one collective Split call per world.
type splitState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	epoch   int
	entries []splitEntry
	arrived int
	result  map[int]*world // parent rank -> sub-world
	subRank map[int]int    // parent rank -> rank in sub-world
}

type splitEntry struct {
	rank  int
	color int
	key   int
}

func (w *world) splitOnce() *splitState {
	w.splitMu.Lock()
	defer w.splitMu.Unlock()
	if w.split == nil {
		s := &splitState{}
		s.cond = sync.NewCond(&s.mu)
		w.split = s
	}
	return w.split
}

// Split partitions the communicator: every rank of the world must call it
// (it is collective). Ranks passing the same color receive a Comm on a
// fresh sub-world containing exactly those ranks, ordered by key then by
// parent rank. A negative color returns nil (the rank opts out), mirroring
// MPI_UNDEFINED.
func (c *Comm) Split(color, key int) (*Comm, error) {
	s := c.w.splitOnce()
	s.mu.Lock()
	epoch := s.epoch
	s.entries = append(s.entries, splitEntry{rank: c.rank, color: color, key: key})
	s.arrived++
	if s.arrived == c.w.size {
		// Last arrival builds all sub-worlds.
		s.buildLocked(c.w.size)
		s.arrived = 0
		s.epoch++
		s.cond.Broadcast()
	} else {
		for epoch == s.epoch {
			if err := c.w.abortErr(); err != nil {
				s.mu.Unlock()
				return nil, err
			}
			s.cond.Wait()
		}
	}
	sub := s.result[c.rank]
	rank := s.subRank[c.rank]
	s.mu.Unlock()
	if sub == nil {
		return nil, nil
	}
	if sub.size < 1 {
		return nil, fmt.Errorf("mpi: internal split error")
	}
	return &Comm{rank: rank, w: sub}, nil
}

// buildLocked constructs the sub-worlds from the collected entries.
func (s *splitState) buildLocked(size int) {
	byColor := map[int][]splitEntry{}
	for _, e := range s.entries {
		if e.color >= 0 {
			byColor[e.color] = append(byColor[e.color], e)
		}
	}
	s.result = make(map[int]*world, size)
	s.subRank = make(map[int]int, size)
	for _, group := range byColor {
		sort.Slice(group, func(i, j int) bool {
			if group[i].key != group[j].key {
				return group[i].key < group[j].key
			}
			return group[i].rank < group[j].rank
		})
		sub := newWorld(len(group))
		for subRank, e := range group {
			s.result[e.rank] = sub
			s.subRank[e.rank] = subRank
		}
	}
	s.entries = nil
}
