package mpi

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/rng"
)

func TestSplitBasic(t *testing.T) {
	const size = 8
	err := Run(size, func(c *Comm) error {
		// Even ranks form one group, odd ranks the other.
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub == nil {
			return errors.New("unexpected nil sub-communicator")
		}
		if sub.Size() != size/2 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// Keys were parent ranks: order within the group follows them.
		if want := c.Rank() / 2; sub.Rank() != want {
			return fmt.Errorf("rank %d: sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		// Sub-collectives are independent per group.
		buf, err := sub.Allreduce(EncodeFloat64s([]float64{1}), OpSumFloat64)
		if err != nil {
			return err
		}
		vals, err := DecodeFloat64s(buf)
		if err != nil {
			return err
		}
		if vals[0] != float64(size/2) {
			return fmt.Errorf("sub allreduce = %g", vals[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitOptOutAndKeys(t *testing.T) {
	const size = 6
	err := Run(size, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1 // opt out, like MPI_UNDEFINED
		}
		// Reverse ordering via keys.
		sub, err := c.Split(color, -c.Rank())
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				return errors.New("opted-out rank got a communicator")
			}
			return nil
		}
		if sub.Size() != size-1 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// Highest parent rank becomes rank 0.
		wantRank := map[int]int{5: 0, 4: 1, 2: 2, 1: 3, 0: 4}[c.Rank()]
		if sub.Rank() != wantRank {
			return fmt.Errorf("parent %d: sub rank %d, want %d",
				c.Rank(), sub.Rank(), wantRank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Hierarchical HP reduction: reduce within groups, then across group
// leaders; the result must be bit-identical to the flat reduction — every
// grouping of an exact reduction commutes.
func TestSplitHierarchicalReductionInvariant(t *testing.T) {
	p := core.Params384
	r := rng.New(55)
	xs := rng.UniformSet(r, 1<<12, -0.5, 0.5)
	oracle := exact.New()
	oracle.AddAll(xs)

	const size = 8
	const groups = 2
	var flat, hier *core.HP
	err := Run(size, func(c *Comm) error {
		lo := c.Rank() * len(xs) / size
		hi := (c.Rank() + 1) * len(xs) / size
		local := core.NewAccumulator(p)
		local.AddAll(xs[lo:hi])
		if local.Err() != nil {
			return local.Err()
		}

		// Flat reduction.
		buf, err := c.Reduce(0, EncodeHP(local.Sum()), OpSumHP(p))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			flat, err = DecodeHP(p, buf)
			if err != nil {
				return err
			}
		}

		// Hierarchical: group reduce, then leader reduce.
		sub, err := c.Split(c.Rank()%groups, c.Rank())
		if err != nil {
			return err
		}
		gbuf, err := sub.Reduce(0, EncodeHP(local.Sum()), OpSumHP(p))
		if err != nil {
			return err
		}
		leaderColor := -1
		if sub.Rank() == 0 {
			leaderColor = 0
		}
		leaders, err := c.Split(leaderColor, c.Rank())
		if err != nil {
			return err
		}
		if leaders != nil {
			lbuf, err := leaders.Reduce(0, gbuf, OpSumHP(p))
			if err != nil {
				return err
			}
			if leaders.Rank() == 0 {
				hier, err = DecodeHP(p, lbuf)
				if err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if flat == nil || hier == nil {
		t.Fatal("missing results")
	}
	if !flat.Equal(hier) {
		t.Error("hierarchical reduction differs from flat reduction")
	}
	if flat.Rat().Cmp(oracle.Rat()) != 0 {
		t.Error("flat reduction diverged from oracle")
	}
}

func TestSplitRepeated(t *testing.T) {
	// Consecutive splits on the same world must not interfere.
	const size = 4
	err := Run(size, func(c *Comm) error {
		for round := 0; round < 5; round++ {
			sub, err := c.Split(c.Rank()%2, 0)
			if err != nil {
				return err
			}
			if sub.Size() != 2 {
				return fmt.Errorf("round %d: size %d", round, sub.Size())
			}
			if err := sub.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
