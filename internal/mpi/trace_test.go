package mpi

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/trace"
)

// Tracing an AllreduceFT round — including a chaos round with drops,
// duplicates, corruption, and a crash-recovery — must not move a single
// bit of the result. The traced run is compared against the untraced
// golden, and the recorded spans must actually cover the round: a root
// allreduce span, per-attempt spans, cross-rank recv spans parented under
// the senders' wire contexts, and a recovery span for the crashed rank.
func TestAllreduceFTBitIdenticalWithTracingOn(t *testing.T) {
	golden := chaosGolden(t)

	defer trace.SetEnabled(trace.SetEnabled(true))
	defer trace.SetSampling(trace.SetSampling(1))
	trace.Reset()
	defer trace.Reset()

	outs, werr := runChaosAllreduce(t,
		"seed=13;drop:p=0.1;delay:p=0.2,d=500us;dup:p=0.15;corrupt:p=0.1;crash:rank=3,after=1")
	if werr == nil || !faults.OnlyCrashes(werr) {
		t.Fatalf("world error: %v (want injected crashes only)", werr)
	}
	for r, out := range outs {
		if r == 3 {
			continue
		}
		if !bytes.Equal(out, golden) {
			t.Fatalf("rank %d traced sum differs from untraced golden:\n got %x\nwant %x", r, out, golden)
		}
	}
	assertNoLeakedGoroutines(t)

	spans := map[string]int{}
	roots := map[uint64]bool{} // trace ids of allreduce round roots
	for _, rec := range trace.Snapshot() {
		spans[rec.Name]++
		if rec.Name == "mpi.allreduce_ft" {
			roots[rec.TraceID] = true
		}
	}
	for _, name := range []string{"mpi.allreduce_ft", "mpi.ft_attempt", "mpi.send", "mpi.recv", "mpi.recover"} {
		if spans[name] == 0 {
			t.Errorf("no %s spans recorded during a traced chaos round (got %v)", name, spans)
		}
	}
	// Cross-rank stitching: recv spans on the receiving rank must belong to
	// traces rooted by some rank's allreduce round — the (trace, span)
	// context rode the wire header, retransmits included.
	stitched := 0
	for _, rec := range trace.Snapshot() {
		if rec.Name == "mpi.recv" && roots[rec.TraceID] {
			stitched++
		}
	}
	if stitched == 0 {
		t.Error("no mpi.recv span shares a trace with an allreduce round root: wire context did not stitch")
	}
}

// A stall-watchdog trip must leave a flight-recorder dump on disk naming
// the blocked (src, dst, tag) edges — the acceptance scenario for debugging
// a wedged distributed run after the fact.
func TestStallTripWritesFlightDumpNamingBlockedEdge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stall.json")
	prev := trace.SetDumpPath(path)
	defer trace.SetDumpPath(prev)

	err := RunWith(2, RunOpts{StallTimeout: 80 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Recv(1, 9)
			return err
		}
		_, err := c.Recv(0, 8)
		return err
	})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want StallError", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("watchdog trip left no flight dump: %v", err)
	}
	d, err := trace.ValidateDump(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "stall-watchdog" {
		t.Fatalf("dump reason %q, want stall-watchdog", d.Reason)
	}
	// Both blocked edges (1->0 tag 9 and 0->1 tag 8) must be named as
	// stall-edge events with src/dst/tag attributes.
	edges := map[[3]int64]bool{}
	for _, ev := range d.Subsystems["mpi"] {
		if ev.Name != "stall-edge" {
			continue
		}
		var key [3]int64
		for _, a := range ev.Attrs {
			switch a.Key {
			case "src":
				key[0] = a.Int
			case "dst":
				key[1] = a.Int
			case "tag":
				key[2] = a.Int
			}
		}
		edges[key] = true
	}
	if !edges[[3]int64{1, 0, 9}] || !edges[[3]int64{0, 1, 8}] {
		t.Fatalf("dump does not name both blocked edges; got %v", edges)
	}
	assertNoLeakedGoroutines(t)
}

// An injected rank crash must leave a rank-crash flight event and (with a
// dump path armed) a crash trip dump.
func TestCrashTripWritesFlightDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.json")
	prev := trace.SetDumpPath(path)
	defer trace.SetDumpPath(prev)

	if _, werr := runChaosAllreduce(t, "seed=11;crash:rank=2,after=0"); werr == nil || !faults.OnlyCrashes(werr) {
		t.Fatalf("world error: %v (want injected crash)", werr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("crash left no flight dump: %v", err)
	}
	d, err := trace.ValidateDump(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "crash" {
		t.Fatalf("dump reason %q, want crash", d.Reason)
	}
	found := false
	for _, ev := range d.Subsystems["mpi"] {
		if ev.Name == "rank-crash" {
			for _, a := range ev.Attrs {
				if a.Key == "rank" && a.Int == 2 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("dump has no rank-crash event for rank 2")
	}
	assertNoLeakedGoroutines(t)
}
