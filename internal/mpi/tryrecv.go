package mpi

import (
	"errors"
	"fmt"
	"time"
)

// TryRecv is a non-blocking receive: it returns (payload, true, nil) when a
// valid message with tag from src is already queued, (nil, false, nil) when
// nothing is pending, and a non-nil error when the receive can never
// complete (src crashed with nothing left queued, or the world aborted).
//
// It rides the ordinary reliable receive path with an already-expired
// deadline: corrupt frames are still discarded, duplicates still absorbed,
// and acks still sent — so a TryRecv poll loop composes with SendTimeout on
// the far side exactly like RecvTimeout does. An expired deadline never
// allocates a timer in the mailbox wait, so polling an empty mailbox is
// cheap. Like every Comm receive, TryRecv must be called from the single
// goroutine that owns the Comm.
func (c *Comm) TryRecv(src, tag int) ([]byte, bool, error) {
	if tag < 0 {
		return nil, false, fmt.Errorf("mpi: user tag %d must be >= 0", tag)
	}
	payload, err := c.recvFrame(src, tag, time.Now())
	if err != nil {
		var te *TimeoutError
		if errors.As(err, &te) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return payload, true, nil
}
