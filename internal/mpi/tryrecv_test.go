package mpi

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestTryRecvPolling: TryRecv reports "nothing pending" without blocking,
// returns a queued payload exactly once, and keeps the reliable-path
// semantics (a SendTimeout on the far side completes against a TryRecv
// poll loop, acks included).
func TestTryRecvPolling(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		const tag = 5
		if c.Rank() == 1 {
			time.Sleep(10 * time.Millisecond) // let rank 0 poll empty first
			return c.SendTimeout(0, tag, []byte("payload"), 2*time.Second)
		}

		if _, _, err := c.TryRecv(1, -3); err == nil {
			t.Error("negative tag accepted")
		}
		if payload, ok, err := c.TryRecv(1, tag); err != nil || ok || payload != nil {
			t.Errorf("empty mailbox: payload=%q ok=%v err=%v", payload, ok, err)
		}

		deadline := time.Now().Add(5 * time.Second)
		for {
			payload, ok, err := c.TryRecv(1, tag)
			if err != nil {
				t.Fatalf("TryRecv: %v", err)
			}
			if ok {
				if !bytes.Equal(payload, []byte("payload")) {
					t.Errorf("payload %q", payload)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("message never arrived")
			}
			time.Sleep(100 * time.Microsecond)
		}

		// Consumed: the same message is not delivered twice.
		if _, ok, err := c.TryRecv(1, tag); err != nil || ok {
			t.Errorf("message delivered twice: ok=%v err=%v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertNoLeakedGoroutines(t)
}

// TestTryRecvCrashedPeer: once the source rank is dead with nothing queued,
// TryRecv must return a hard *PeerCrashedError rather than "try again" —
// that is what lets a poll loop feed a failure detector.
func TestTryRecvCrashedPeer(t *testing.T) {
	inj, err := faults.Parse("seed=21;crash:rank=1,after=0")
	if err != nil {
		t.Fatal(err)
	}
	werr := RunWith(2, RunOpts{Inject: inj}, func(c *Comm) error {
		const tag = 5
		if c.Rank() == 1 {
			return c.Send(0, tag, []byte("never arrives")) // crash fires here
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, ok, err := c.TryRecv(1, tag)
			if err != nil {
				var pce *PeerCrashedError
				if !errors.As(err, &pce) {
					t.Fatalf("got %v, want PeerCrashedError", err)
				}
				return nil
			}
			if ok {
				t.Fatal("crashed rank's frame was delivered")
			}
			if time.Now().After(deadline) {
				t.Fatal("crash never surfaced through TryRecv")
			}
			time.Sleep(100 * time.Microsecond)
		}
	})
	if !faults.OnlyCrashes(werr) {
		t.Fatalf("world error beyond the injected crash: %v", werr)
	}
	assertNoLeakedGoroutines(t)
}
