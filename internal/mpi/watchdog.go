package mpi

import (
	"sort"
	"time"

	"repro/internal/trace"
)

// Stall watchdog: a per-world monitor that turns silent deadlocks into
// errors. Every blocking take registers its (src, dst, tag) edge; the
// watchdog periodically scans the registry and, when any receive has been
// blocked past the stall timeout, aborts the world with a *StallError
// listing every blocked edge — so a circular wait shows up as the cycle
// itself rather than a test timeout with no stack to blame.

type blockKey struct{ src, dst, tag int }

func (w *world) watching() bool { return w.watch.Load() }

func (w *world) noteBlocked(key blockKey) {
	w.blockedMu.Lock()
	w.blocked[key] = time.Now()
	w.blockedMu.Unlock()
}

func (w *world) noteUnblocked(key blockKey) {
	w.blockedMu.Lock()
	delete(w.blocked, key)
	w.blockedMu.Unlock()
}

// stalledEdges returns the edges blocked for longer than stall, and every
// currently blocked edge when at least one has stalled (the full picture
// is what makes the error actionable), sorted for deterministic messages.
func (w *world) stalledEdges(stall time.Duration) []BlockedEdge {
	now := time.Now()
	w.blockedMu.Lock()
	defer w.blockedMu.Unlock()
	tripped := false
	for _, since := range w.blocked {
		if now.Sub(since) > stall {
			tripped = true
			break
		}
	}
	if !tripped {
		return nil
	}
	edges := make([]BlockedEdge, 0, len(w.blocked))
	for key, since := range w.blocked {
		edges = append(edges, BlockedEdge{Src: key.src, Dst: key.dst, Tag: key.tag, Since: since})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Dst != edges[j].Dst {
			return edges[i].Dst < edges[j].Dst
		}
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Tag < edges[j].Tag
	})
	return edges
}

// startWatchdog arms the stall monitor and returns its stop function.
func (w *world) startWatchdog(stall time.Duration) (stop func()) {
	w.watch.Store(true)
	interval := stall / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if edges := w.stalledEdges(stall); len(edges) > 0 {
					mStalls.Inc()
					// Name every blocked edge in the flight recorder, then
					// dump: the trip is the moment the recent-event rings
					// and in-flight spans explain the hang.
					for _, e := range edges {
						mpiFlight.Event("stall-edge",
							trace.Int("src", int64(e.Src)),
							trace.Int("dst", int64(e.Dst)),
							trace.Int("tag", int64(e.Tag)),
							trace.Int("blocked_ms", time.Since(e.Since).Milliseconds()))
					}
					err := &StallError{After: stall, Edges: edges}
					trace.TripDump("stall-watchdog", err.Error())
					w.abort(err)
					return
				}
			}
		}
	}()
	return func() { close(done) }
}
