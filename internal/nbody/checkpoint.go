package nbody

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpointing: the System state (positions, velocities, masses) written
// as exact float64 bit patterns, so a restarted simulation continues
// bit-identically — restart-reproducibility being the operational payoff
// of order-invariant arithmetic (a job rescheduled onto a different node
// count produces the same trajectory).

const checkpointMagic = "NBCK"
const checkpointVersion = 1

// WriteCheckpoint serializes the system to w.
func (s *System) WriteCheckpoint(w io.Writer) error {
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return err
	}
	header := []uint64{checkpointVersion, uint64(s.N())}
	for _, v := range header {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	writeF := func(v float64) error {
		return binary.Write(w, binary.BigEndian, math.Float64bits(v))
	}
	for i := 0; i < s.N(); i++ {
		for _, v := range []float64{
			s.Pos[i].X, s.Pos[i].Y, s.Pos[i].Z,
			s.Vel[i].X, s.Vel[i].Y, s.Vel[i].Z,
			s.Mass[i],
		} {
			if err := writeF(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadCheckpoint deserializes a system written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*System, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("nbody: checkpoint header: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("nbody: bad checkpoint magic %q", magic)
	}
	var version, n uint64
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, err
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("nbody: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("nbody: implausible particle count %d", n)
	}
	s := &System{
		Pos:  make([]Vec3, n),
		Vel:  make([]Vec3, n),
		Mass: make([]float64, n),
	}
	readF := func() (float64, error) {
		var bits uint64
		if err := binary.Read(r, binary.BigEndian, &bits); err != nil {
			return 0, err
		}
		return math.Float64frombits(bits), nil
	}
	for i := 0; i < int(n); i++ {
		vals := [7]float64{}
		for j := range vals {
			v, err := readF()
			if err != nil {
				return nil, fmt.Errorf("nbody: truncated checkpoint at particle %d: %w", i, err)
			}
			vals[j] = v
		}
		s.Pos[i] = Vec3{vals[0], vals[1], vals[2]}
		s.Vel[i] = Vec3{vals[3], vals[4], vals[5]}
		s.Mass[i] = vals[6]
	}
	return s, nil
}
