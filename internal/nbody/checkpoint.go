package nbody

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpointing: the System state (positions, velocities, masses) written
// as exact float64 bit patterns, so a restarted simulation continues
// bit-identically — restart-reproducibility being the operational payoff
// of order-invariant arithmetic (a job rescheduled onto a different node
// count produces the same trajectory).

const checkpointMagic = "NBCK"
const checkpointVersion = 1

// maxCheckpointParticles bounds the particle count a checkpoint header may
// claim: far above any simulation this repo runs, far below anything that
// could be used to exhaust memory through a corrupted header.
const maxCheckpointParticles = 1 << 24

// checkpointChunk is the initial slice capacity granted to a checkpoint
// read; growth beyond it is driven by data actually read, not by the header.
const checkpointChunk = 4096

// WriteCheckpoint serializes the system to w.
func (s *System) WriteCheckpoint(w io.Writer) error {
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return err
	}
	header := []uint64{checkpointVersion, uint64(s.N())}
	for _, v := range header {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	writeF := func(v float64) error {
		return binary.Write(w, binary.BigEndian, math.Float64bits(v))
	}
	for i := 0; i < s.N(); i++ {
		for _, v := range []float64{
			s.Pos[i].X, s.Pos[i].Y, s.Pos[i].Z,
			s.Vel[i].X, s.Vel[i].Y, s.Vel[i].Z,
			s.Mass[i],
		} {
			if err := writeF(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadCheckpoint deserializes a system written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*System, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("nbody: checkpoint header: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("nbody: bad checkpoint magic %q", magic)
	}
	var version, n uint64
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("nbody: checkpoint version field: %w", err)
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("nbody: unsupported checkpoint version %d (want %d)",
			version, checkpointVersion)
	}
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, fmt.Errorf("nbody: checkpoint particle count field: %w", err)
	}
	if n > maxCheckpointParticles {
		return nil, fmt.Errorf("nbody: implausible particle count %d (max %d)",
			n, maxCheckpointParticles)
	}
	// Grow incrementally instead of trusting the header's count: a corrupt
	// or hostile header then costs at most one chunk of allocation beyond
	// the data actually present in the file.
	preallocate := int(n)
	if preallocate > checkpointChunk {
		preallocate = checkpointChunk
	}
	s := &System{
		Pos:  make([]Vec3, 0, preallocate),
		Vel:  make([]Vec3, 0, preallocate),
		Mass: make([]float64, 0, preallocate),
	}
	var rec [7 * 8]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("nbody: truncated checkpoint at particle %d of %d: %w",
				i, n, err)
		}
		var vals [7]float64
		for j := range vals {
			vals[j] = math.Float64frombits(binary.BigEndian.Uint64(rec[8*j:]))
		}
		s.Pos = append(s.Pos, Vec3{vals[0], vals[1], vals[2]})
		s.Vel = append(s.Vel, Vec3{vals[3], vals[4], vals[5]})
		s.Mass = append(s.Mass, vals[6])
	}
	return s, nil
}
