package nbody

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestCheckpointRoundTrip(t *testing.T) {
	sys := RandomSystem(rng.New(31), 20)
	var buf bytes.Buffer
	if err := sys.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != sys.N() {
		t.Fatalf("N = %d", got.N())
	}
	for i := range sys.Pos {
		if got.Pos[i] != sys.Pos[i] || got.Vel[i] != sys.Vel[i] || got.Mass[i] != sys.Mass[i] {
			t.Fatalf("particle %d differs", i)
		}
	}
}

// The reproducibility payoff: run 2k steps straight, versus run 1k steps,
// checkpoint, restore (with a DIFFERENT worker count), run 1k more — the
// fingerprints must match exactly in HP mode.
func TestCheckpointRestartBitIdentical(t *testing.T) {
	const half = 25
	base := RandomSystem(rng.New(32), 16)
	cfg := Config{Force: Gravity{G: 1, Softening2: 0.05}, DT: 1e-3, Workers: 2, Mode: HPMode}

	straight, err := New(base.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := straight.Steps(2 * half); err != nil {
		t.Fatal(err)
	}

	first, err := New(base.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Steps(half); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := first.System().WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Workers = 5 // different decomposition after restart
	second, err := New(restored, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Steps(half); err != nil {
		t.Fatal(err)
	}

	if straight.Fingerprint() != second.Fingerprint() {
		t.Error("restart changed the trajectory despite HP accumulation")
	}
}

func TestCheckpointErrors(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated body.
	sys := RandomSystem(rng.New(33), 4)
	var buf bytes.Buffer
	if err := sys.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadCheckpoint(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	// Corrupted version.
	bad := append([]byte(nil), data...)
	bad[11] = 99
	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}
