package nbody

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestCheckpointRoundTrip(t *testing.T) {
	sys := RandomSystem(rng.New(31), 20)
	var buf bytes.Buffer
	if err := sys.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != sys.N() {
		t.Fatalf("N = %d", got.N())
	}
	for i := range sys.Pos {
		if got.Pos[i] != sys.Pos[i] || got.Vel[i] != sys.Vel[i] || got.Mass[i] != sys.Mass[i] {
			t.Fatalf("particle %d differs", i)
		}
	}
}

// The reproducibility payoff: run 2k steps straight, versus run 1k steps,
// checkpoint, restore (with a DIFFERENT worker count), run 1k more — the
// fingerprints must match exactly in HP mode.
func TestCheckpointRestartBitIdentical(t *testing.T) {
	const half = 25
	base := RandomSystem(rng.New(32), 16)
	cfg := Config{Force: Gravity{G: 1, Softening2: 0.05}, DT: 1e-3, Workers: 2, Mode: HPMode}

	straight, err := New(base.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := straight.Steps(2 * half); err != nil {
		t.Fatal(err)
	}

	first, err := New(base.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Steps(half); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := first.System().WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Workers = 5 // different decomposition after restart
	second, err := New(restored, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Steps(half); err != nil {
		t.Fatal(err)
	}

	if straight.Fingerprint() != second.Fingerprint() {
		t.Error("restart changed the trajectory despite HP accumulation")
	}
}

func TestCheckpointErrors(t *testing.T) {
	sys := RandomSystem(rng.New(33), 4)
	var buf bytes.Buffer
	if err := sys.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	mutate := func(off int, b byte) []byte {
		bad := append([]byte(nil), data...)
		bad[off] = b
		return bad
	}
	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"empty", nil, "checkpoint header"},
		{"short magic", []byte("NB"), "checkpoint header"},
		{"bad magic", []byte("XXXX" + string(data[4:])), "bad checkpoint magic"},
		{"truncated version", data[:6], "version field"},
		{"bad version", mutate(11, 99), "unsupported checkpoint version 99"},
		{"truncated count", data[:14], "particle count field"},
		// Header claims 2^56 particles; the read must fail on plausibility
		// without attempting a matching allocation.
		{"absurd count", mutate(13, 1), "implausible particle count"},
		// Header claims 5 particles but the body holds 4.
		{"body shorter than count", mutate(19, 5), "truncated checkpoint at particle 4 of 5"},
		{"truncated mid-particle", data[:len(data)-5], "truncated checkpoint at particle 3"},
		{"truncated first particle", data[:21], "truncated checkpoint at particle 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCheckpoint(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// A header that exaggerates the particle count must not translate into a
// proportional allocation: the reader grows with the data it actually gets.
func TestCheckpointHeaderCannotForceHugeAllocation(t *testing.T) {
	var buf bytes.Buffer
	if err := RandomSystem(rng.New(34), 1).WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Claim the maximum plausible count with a one-particle body.
	for i := 0; i < 8; i++ {
		data[12+i] = 0
	}
	data[12+4] = 1 // n = 1<<24 = maxCheckpointParticles
	var m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("oversized count with short body accepted")
	}
	runtime.ReadMemStats(&m2)
	// 1<<24 particles would need ~900 MB up front; the incremental reader
	// must spend no more than a small chunk on this one-particle body.
	if grew := m2.TotalAlloc - m1.TotalAlloc; grew > 8<<20 {
		t.Fatalf("lying header forced %d bytes of allocation", grew)
	}
}
