// Package nbody is a small molecular/N-body dynamics engine built around
// reproducible force accumulation — the application class the paper's
// introduction motivates ("accumulation of forces or displacements at each
// time step, each contribution consisting of a small positive or negative
// floating point value", §II.A).
//
// Per-particle forces are sums over all other particles. With float64
// accumulation the sum depends on the traversal/worker order, and a
// symplectic integrator amplifies the resulting perturbations step after
// step until trajectories from different decompositions diverge
// completely. With HP accumulation the force sums are exact, so the
// simulation is bit-reproducible for every worker count — the property the
// Fingerprint method certifies.
package nbody

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/omp"
	"repro/internal/rng"
)

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Norm2 returns |v|^2.
func (v Vec3) Norm2() float64 { return v.X*v.X + v.Y*v.Y + v.Z*v.Z }

// System holds particle state.
type System struct {
	Pos  []Vec3
	Vel  []Vec3
	Mass []float64
}

// N returns the particle count.
func (s *System) N() int { return len(s.Pos) }

// Clone returns a deep copy.
func (s *System) Clone() *System {
	c := &System{
		Pos:  append([]Vec3(nil), s.Pos...),
		Vel:  append([]Vec3(nil), s.Vel...),
		Mass: append([]float64(nil), s.Mass...),
	}
	return c
}

// RandomSystem returns n particles uniformly placed in a [-1,1]^3 box with
// small random velocities and masses in [0.5, 1.5], deterministically from
// the source.
func RandomSystem(r *rng.Source, n int) *System {
	s := &System{
		Pos:  make([]Vec3, n),
		Vel:  make([]Vec3, n),
		Mass: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s.Pos[i] = Vec3{r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1)}
		s.Vel[i] = Vec3{r.Uniform(-0.1, 0.1), r.Uniform(-0.1, 0.1), r.Uniform(-0.1, 0.1)}
		s.Mass[i] = r.Uniform(0.5, 1.5)
	}
	return s
}

// Force computes the pairwise interaction. Pair must be antisymmetric:
// Pair(s, j, i) == Pair(s, i, j).Neg() exactly (bit-wise), which every
// force law built from the displacement satisfies automatically.
type Force interface {
	// Pair returns the force exerted on particle i by particle j.
	Pair(s *System, i, j int) Vec3
	// Potential returns the potential energy of the (i, j) pair.
	Potential(s *System, i, j int) float64
	// Name identifies the law in reports.
	Name() string
}

// Gravity is softened Newtonian gravity.
type Gravity struct {
	G          float64
	Softening2 float64
}

// Pair implements Force.
func (g Gravity) Pair(s *System, i, j int) Vec3 {
	d := Vec3{s.Pos[j].X - s.Pos[i].X, s.Pos[j].Y - s.Pos[i].Y, s.Pos[j].Z - s.Pos[i].Z}
	r2 := d.Norm2() + g.Softening2
	inv := g.G * s.Mass[i] * s.Mass[j] / (r2 * math.Sqrt(r2))
	return d.Scale(inv)
}

// Potential implements Force.
func (g Gravity) Potential(s *System, i, j int) float64 {
	d := Vec3{s.Pos[j].X - s.Pos[i].X, s.Pos[j].Y - s.Pos[i].Y, s.Pos[j].Z - s.Pos[i].Z}
	return -g.G * s.Mass[i] * s.Mass[j] / math.Sqrt(d.Norm2()+g.Softening2)
}

// Name implements Force.
func (Gravity) Name() string { return "gravity" }

// LennardJones is the 12-6 Lennard-Jones potential used by molecular
// dynamics codes.
type LennardJones struct {
	Epsilon float64
	Sigma   float64
}

// Pair implements Force.
func (lj LennardJones) Pair(s *System, i, j int) Vec3 {
	d := Vec3{s.Pos[j].X - s.Pos[i].X, s.Pos[j].Y - s.Pos[i].Y, s.Pos[j].Z - s.Pos[i].Z}
	r2 := d.Norm2()
	if r2 == 0 {
		return Vec3{}
	}
	s2 := lj.Sigma * lj.Sigma / r2
	s6 := s2 * s2 * s2
	// F = 24 eps (2 s^12 - s^6) / r^2 * d  (attractive toward j when s6
	// dominates).
	mag := 24 * lj.Epsilon * (2*s6*s6 - s6) / r2
	return d.Scale(-mag)
}

// Potential implements Force.
func (lj LennardJones) Potential(s *System, i, j int) float64 {
	d := Vec3{s.Pos[j].X - s.Pos[i].X, s.Pos[j].Y - s.Pos[i].Y, s.Pos[j].Z - s.Pos[i].Z}
	r2 := d.Norm2()
	if r2 == 0 {
		return 0
	}
	s2 := lj.Sigma * lj.Sigma / r2
	s6 := s2 * s2 * s2
	return 4 * lj.Epsilon * (s6*s6 - s6)
}

// Name implements Force.
func (LennardJones) Name() string { return "lennard-jones" }

// Mode selects the force-accumulation arithmetic.
type Mode int

const (
	// Float64Mode accumulates forces with plain float64 adds: fast, but
	// the result depends on the worker decomposition.
	Float64Mode Mode = iota
	// HPMode accumulates forces into HP fixed-point sums: bit-identical
	// for every worker count.
	HPMode
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Float64Mode:
		return "float64"
	case HPMode:
		return "hp"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config selects the integration setup.
type Config struct {
	Force   Force
	DT      float64
	Workers int
	Mode    Mode
	// Params is the HP format for HPMode (Params384 when zero).
	Params core.Params
}

// Sim advances a System under a Config with leapfrog (kick-drift)
// integration.
type Sim struct {
	sys  *System
	cfg  Config
	step int
}

// New returns a simulation over sys (which it owns) with cfg. It returns
// an error for invalid configuration.
func New(sys *System, cfg Config) (*Sim, error) {
	if cfg.Force == nil {
		return nil, fmt.Errorf("nbody: nil force")
	}
	if cfg.DT <= 0 {
		return nil, fmt.Errorf("nbody: DT = %g", cfg.DT)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.Params384
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	return &Sim{sys: sys, cfg: cfg}, nil
}

// System returns the simulation's state (owned by the Sim).
func (s *Sim) System() *System { return s.sys }

// StepCount returns the number of completed steps.
func (s *Sim) StepCount() int { return s.step }

// forces computes all per-particle forces with the configured arithmetic
// and worker decomposition: workers own blocks of SOURCE particles j and
// accumulate contributions into per-worker partial force arrays, which are
// merged in worker order (exactly the structure of a domain-decomposed
// force pass).
func (s *Sim) forces() ([]Vec3, error) {
	n := s.sys.N()
	team := omp.NewTeam(s.cfg.Workers)
	if s.cfg.Mode == Float64Mode {
		type partial struct{ f []Vec3 }
		total := omp.Reduce(team, n,
			func(int) *partial { return &partial{f: make([]Vec3, n)} },
			func(p *partial, _, lo, hi int) {
				for j := lo; j < hi; j++ {
					for i := 0; i < n; i++ {
						if i == j {
							continue
						}
						p.f[i] = p.f[i].Add(s.cfg.Force.Pair(s.sys, i, j))
					}
				}
			},
			func(into, from *partial) {
				for i := range into.f {
					into.f[i] = into.f[i].Add(from.f[i])
				}
			})
		return total.f, nil
	}

	// HPMode: three HP accumulators per particle.
	type partial struct{ fx, fy, fz []*core.Accumulator }
	mk := func(int) *partial {
		p := &partial{
			fx: make([]*core.Accumulator, n),
			fy: make([]*core.Accumulator, n),
			fz: make([]*core.Accumulator, n),
		}
		for i := 0; i < n; i++ {
			p.fx[i] = core.NewAccumulator(s.cfg.Params)
			p.fy[i] = core.NewAccumulator(s.cfg.Params)
			p.fz[i] = core.NewAccumulator(s.cfg.Params)
		}
		return p
	}
	total := omp.Reduce(team, n, mk,
		func(p *partial, _, lo, hi int) {
			for j := lo; j < hi; j++ {
				for i := 0; i < n; i++ {
					if i == j {
						continue
					}
					f := s.cfg.Force.Pair(s.sys, i, j)
					p.fx[i].Add(f.X)
					p.fy[i].Add(f.Y)
					p.fz[i].Add(f.Z)
				}
			}
		},
		func(into, from *partial) {
			for i := 0; i < n; i++ {
				into.fx[i].Merge(from.fx[i])
				into.fy[i].Merge(from.fy[i])
				into.fz[i].Merge(from.fz[i])
			}
		})
	out := make([]Vec3, n)
	for i := 0; i < n; i++ {
		for _, acc := range []*core.Accumulator{total.fx[i], total.fy[i], total.fz[i]} {
			if err := acc.Err(); err != nil {
				return nil, fmt.Errorf("nbody: force accumulation: %w", err)
			}
		}
		out[i] = Vec3{total.fx[i].Float64(), total.fy[i].Float64(), total.fz[i].Float64()}
	}
	return out, nil
}

// Step advances one leapfrog step.
func (s *Sim) Step() error {
	f, err := s.forces()
	if err != nil {
		return err
	}
	dt := s.cfg.DT
	for i := range s.sys.Pos {
		s.sys.Vel[i] = s.sys.Vel[i].Add(f[i].Scale(dt / s.sys.Mass[i]))
	}
	for i := range s.sys.Pos {
		s.sys.Pos[i] = s.sys.Pos[i].Add(s.sys.Vel[i].Scale(dt))
	}
	s.step++
	return nil
}

// Steps advances n steps.
func (s *Sim) Steps(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// NetForce returns the HP-exact sum of every pair force component over the
// whole system. Because pair forces are exactly antisymmetric in float64,
// the exact sum is exactly zero — a conservation certificate that float64
// accumulation cannot provide.
func (s *Sim) NetForce() (*core.HP, *core.HP, *core.HP, error) {
	n := s.sys.N()
	fx := core.NewAccumulator(s.cfg.Params)
	fy := core.NewAccumulator(s.cfg.Params)
	fz := core.NewAccumulator(s.cfg.Params)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			f := s.cfg.Force.Pair(s.sys, i, j)
			fx.Add(f.X)
			fy.Add(f.Y)
			fz.Add(f.Z)
		}
	}
	for _, acc := range []*core.Accumulator{fx, fy, fz} {
		if err := acc.Err(); err != nil {
			return nil, nil, nil, err
		}
	}
	return fx.Sum(), fy.Sum(), fz.Sum(), nil
}

// Energy returns the kinetic and potential energy, each accumulated
// reproducibly (exact sum of the per-particle/per-pair float64 terms).
func (s *Sim) Energy() (kinetic, potential float64, err error) {
	n := s.sys.N()
	ke := core.NewAccumulator(s.cfg.Params)
	pe := core.NewAccumulator(s.cfg.Params)
	for i := 0; i < n; i++ {
		ke.Add(0.5 * s.sys.Mass[i] * s.sys.Vel[i].Norm2())
		for j := i + 1; j < n; j++ {
			pe.Add(s.cfg.Force.Potential(s.sys, i, j))
		}
	}
	if err := ke.Err(); err != nil {
		return 0, 0, err
	}
	if err := pe.Err(); err != nil {
		return 0, 0, err
	}
	return ke.Float64(), pe.Float64(), nil
}

// Fingerprint returns a SHA-256 digest of the exact bit patterns of every
// position and velocity: two simulations evolved identically iff their
// fingerprints match.
func (s *Sim) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	w := func(v float64) {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for i := range s.sys.Pos {
		w(s.sys.Pos[i].X)
		w(s.sys.Pos[i].Y)
		w(s.sys.Pos[i].Z)
		w(s.sys.Vel[i].X)
		w(s.sys.Vel[i].Y)
		w(s.sys.Vel[i].Z)
	}
	return hex.EncodeToString(h.Sum(nil))
}
