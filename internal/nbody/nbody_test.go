package nbody

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func smallGravity() Config {
	return Config{
		Force:   Gravity{G: 1, Softening2: 1e-4},
		DT:      1e-3,
		Workers: 1,
		Mode:    HPMode,
	}
}

func TestVec3(t *testing.T) {
	v := Vec3{1, 2, 3}
	if got := v.Add(Vec3{1, 1, 1}); got != (Vec3{2, 3, 4}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); got != (Vec3{-1, -2, -3}) {
		t.Errorf("Neg = %v", got)
	}
	if got := v.Norm2(); got != 14 {
		t.Errorf("Norm2 = %g", got)
	}
}

func TestRandomSystemDeterministic(t *testing.T) {
	a := RandomSystem(rng.New(5), 32)
	b := RandomSystem(rng.New(5), 32)
	if a.N() != 32 {
		t.Fatalf("N = %d", a.N())
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] || a.Mass[i] != b.Mass[i] {
			t.Fatal("same seed produced different systems")
		}
	}
	c := a.Clone()
	c.Pos[0].X = 99
	if a.Pos[0].X == 99 {
		t.Error("Clone aliases storage")
	}
}

func TestConfigValidation(t *testing.T) {
	sys := RandomSystem(rng.New(1), 4)
	if _, err := New(sys, Config{DT: 1e-3}); err == nil {
		t.Error("nil force accepted")
	}
	if _, err := New(sys, Config{Force: Gravity{G: 1}, DT: 0}); err == nil {
		t.Error("zero DT accepted")
	}
	s, err := New(sys, Config{Force: Gravity{G: 1, Softening2: 1e-4}, DT: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Workers != 1 || s.cfg.Params != core.Params384 {
		t.Error("defaults not applied")
	}
}

// Pair forces must be exactly antisymmetric bit-for-bit — the property the
// NetForce certificate relies on.
func TestPairAntisymmetry(t *testing.T) {
	sys := RandomSystem(rng.New(7), 16)
	for _, f := range []Force{
		Gravity{G: 1, Softening2: 1e-4},
		LennardJones{Epsilon: 1, Sigma: 0.3},
	} {
		for i := 0; i < sys.N(); i++ {
			for j := 0; j < sys.N(); j++ {
				if i == j {
					continue
				}
				fij := f.Pair(sys, i, j)
				fji := f.Pair(sys, j, i)
				if fij != fji.Neg() {
					t.Fatalf("%s: Pair(%d,%d)=%v not antisymmetric with %v",
						f.Name(), i, j, fij, fji)
				}
			}
		}
	}
}

// Newton's third law, certified exactly: the HP sum of all pair forces is
// exactly zero.
func TestNetForceExactlyZero(t *testing.T) {
	for _, force := range []Force{
		Gravity{G: 1, Softening2: 1e-4},
		LennardJones{Epsilon: 1, Sigma: 0.3},
	} {
		sys := RandomSystem(rng.New(8), 24)
		cfg := smallGravity()
		cfg.Force = force
		s, err := New(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fx, fy, fz, err := s.NetForce()
		if err != nil {
			t.Fatal(err)
		}
		if !fx.IsZero() || !fy.IsZero() || !fz.IsZero() {
			t.Errorf("%s: net force (%s, %s, %s), want exact 0",
				force.Name(), fx, fy, fz)
		}
	}
}

// The headline property: HP-mode trajectories are bit-identical for every
// worker count; float64-mode trajectories generally are not.
func TestReproducibilityAcrossWorkers(t *testing.T) {
	const steps = 50
	base := RandomSystem(rng.New(9), 24)

	run := func(mode Mode, workers int) string {
		cfg := smallGravity()
		cfg.Mode = mode
		cfg.Workers = workers
		s, err := New(base.Clone(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Steps(steps); err != nil {
			t.Fatal(err)
		}
		if s.StepCount() != steps {
			t.Fatalf("StepCount = %d", s.StepCount())
		}
		return s.Fingerprint()
	}

	ref := run(HPMode, 1)
	for _, w := range []int{2, 3, 5, 8} {
		if got := run(HPMode, w); got != ref {
			t.Errorf("HP mode: workers=%d fingerprint differs", w)
		}
	}
	// float64 mode: same worker count must still be deterministic.
	f2a := run(Float64Mode, 2)
	f2b := run(Float64Mode, 2)
	if f2a != f2b {
		t.Error("float64 mode not deterministic for fixed workers")
	}
}

func TestEnergyTracking(t *testing.T) {
	sys := RandomSystem(rng.New(10), 24)
	cfg := smallGravity()
	// Strong softening keeps close encounters integrable at this dt, so
	// the leapfrog energy bound below is meaningful.
	cfg.Force = Gravity{G: 1, Softening2: 0.05}
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ke0, pe0, err := s.Energy()
	if err != nil {
		t.Fatal(err)
	}
	if ke0 <= 0 {
		t.Errorf("kinetic energy %g", ke0)
	}
	if pe0 >= 0 {
		t.Errorf("gravitational potential %g should be negative", pe0)
	}
	if err := s.Steps(100); err != nil {
		t.Fatal(err)
	}
	ke1, pe1, err := s.Energy()
	if err != nil {
		t.Fatal(err)
	}
	e0, e1 := ke0+pe0, ke1+pe1
	// Leapfrog conserves energy to O(dt^2); allow a loose bound.
	if math.Abs(e1-e0) > 0.05*math.Abs(e0)+0.05 {
		t.Errorf("energy drifted: %g -> %g", e0, e1)
	}
}

func TestLennardJonesSim(t *testing.T) {
	sys := RandomSystem(rng.New(11), 16)
	cfg := Config{
		Force:   LennardJones{Epsilon: 0.1, Sigma: 0.3},
		DT:      1e-4,
		Workers: 2,
		Mode:    HPMode,
	}
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Steps(20); err != nil {
		t.Fatal(err)
	}
	for _, p := range s.System().Pos {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsNaN(p.Z) {
			t.Fatal("NaN position")
		}
	}
}

func TestModeString(t *testing.T) {
	if Float64Mode.String() != "float64" || HPMode.String() != "hp" {
		t.Error("mode names")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode name")
	}
}
