package omp_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/omp"
)

// A parallel region: every thread runs the body once.
func ExampleTeam_Run() {
	team := omp.NewTeam(4)
	results := make([]int, team.Threads())
	team.Run(func(tid int) {
		results[tid] = tid * tid
	})
	fmt.Println(results)
	// Output:
	// [0 1 4 9]
}

// A statically scheduled loop: each thread receives one contiguous block.
func ExampleTeam_For() {
	team := omp.NewTeam(3)
	data := make([]int, 10)
	team.For(len(data), func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = tid
		}
	})
	fmt.Println(data)
	// Output:
	// [0 0 0 0 1 1 1 2 2 2]
}

// A reduction with per-thread locals combined in deterministic thread
// order — with HP accumulators the result is bit-identical for every team
// size.
func ExampleReduce() {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 0.001
	}
	for _, threads := range []int{1, 4} {
		team := omp.NewTeam(threads)
		total := omp.Reduce(team, len(xs),
			func(int) *core.Accumulator { return core.NewAccumulator(core.Params384) },
			func(acc *core.Accumulator, _, lo, hi int) { acc.AddAll(xs[lo:hi]) },
			func(into, from *core.Accumulator) { into.Merge(from) })
		fmt.Printf("%d threads: %.17g\n", threads, total.Float64())
	}
	// Output:
	// 1 threads: 1
	// 4 threads: 1
}
