// Package omp is a small OpenMP-style fork-join substrate built on
// goroutines. It stands in for the paper's OpenMP environment (Figure 5):
// a Team of a fixed number of threads executes parallel regions, loops are
// partitioned with static, dynamic, or guided scheduling, and reductions
// combine per-thread partials in deterministic thread order (as the paper's
// master thread does).
package omp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Telemetry for the fork-join substrate. Chunk counters are sharded, so
// concurrent workers recording dispatches do not contend; the reduction
// histogram times whole Reduce calls (fork, per-thread fold, combine).
var (
	mRegions = telemetry.NewCounter("omp_parallel_regions_total",
		"Parallel regions executed (Team.Run calls, including those forked by For/Reduce).")
	mChunks = telemetry.NewCounter("omp_chunks_total",
		"Loop chunks dispatched to workers across all schedules (one per non-empty body invocation; empty static blocks are not chunks).")
	mReduceLatency = telemetry.NewHistogram("omp_reduce_seconds",
		"Wall time of Reduce calls: fork, per-thread fold, and deterministic combine.",
		telemetry.DurationBuckets())
)

// Schedule selects how loop iterations are assigned to threads, mirroring
// OpenMP's schedule(static|dynamic|guided) clauses.
type Schedule int

const (
	// Static partitions the range into one contiguous block per thread.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter.
	Dynamic
	// Guided hands out geometrically shrinking chunks.
	Guided
)

// String returns the OpenMP clause name.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Team is a fixed-size group of worker threads. Creating a Team allocates
// nothing persistent; each parallel region forks fresh goroutines and joins
// them, like an OpenMP parallel region with a fixed OMP_NUM_THREADS.
type Team struct {
	threads int
}

// NewTeam returns a team of n threads. It panics if n < 1.
func NewTeam(n int) *Team {
	if n < 1 {
		panic(fmt.Sprintf("omp: team size %d", n))
	}
	return &Team{threads: n}
}

// Threads returns the team size.
func (t *Team) Threads() int { return t.threads }

// Run executes body(tid) on every thread of the team concurrently and
// waits for all of them — the bare "parallel" construct.
func (t *Team) Run(body func(tid int)) {
	mRegions.Inc()
	var wg sync.WaitGroup
	wg.Add(t.threads)
	for tid := 0; tid < t.threads; tid++ {
		go func(tid int) {
			defer wg.Done()
			body(tid)
		}(tid)
	}
	wg.Wait()
}

// For executes body over [0, n) with static scheduling: thread tid receives
// one contiguous block [lo, hi), with the remainder spread over the leading
// threads. Threads whose block is empty still run with lo == hi.
func (t *Team) For(n int, body func(tid, lo, hi int)) {
	if n < 0 {
		panic("omp: negative trip count")
	}
	t.Run(func(tid int) {
		lo, hi := StaticBlock(n, t.threads, tid)
		if hi > lo {
			mChunks.Inc()
		}
		body(tid, lo, hi)
	})
}

// StaticBlock returns the [lo, hi) block of a static partition of n items
// over p threads for thread tid, balancing remainders across the leading
// threads.
func StaticBlock(n, p, tid int) (lo, hi int) {
	q, r := n/p, n%p
	lo = tid*q + min(tid, r)
	hi = lo + q
	if tid < r {
		hi++
	}
	return lo, hi
}

// ForSchedule executes body over [0, n) under the given schedule. For
// Dynamic, chunk is the fixed chunk size; for Guided, chunk is the minimum
// chunk size; for Static, chunk is ignored. body may be called many times
// per thread with disjoint [lo, hi) ranges that exactly cover [0, n).
func (t *Team) ForSchedule(n, chunk int, sched Schedule, body func(tid, lo, hi int)) {
	if n < 0 {
		panic("omp: negative trip count")
	}
	if sched == Static {
		t.For(n, body)
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	t.Run(func(tid int) {
		for {
			// Check for exhaustion before claiming: a thread arriving after
			// the range is fully distributed must not bump the shared
			// counter past n (the Guided sizing below would otherwise add a
			// minimum chunk per late thread, inflating the claim counter and
			// feeding negative remainders into other threads' size
			// computations).
			claimed := next.Load()
			if claimed >= int64(n) {
				return
			}
			var take int
			switch sched {
			case Dynamic:
				take = chunk
			case Guided:
				take = (n - int(claimed)) / t.threads
				if take < chunk {
					take = chunk
				}
			}
			lo := int(next.Add(int64(take))) - take
			if lo >= n {
				return
			}
			hi := lo + take
			if hi > n {
				hi = n
			}
			mChunks.Inc()
			body(tid, lo, hi)
		}
	})
}

// Barrier is a reusable (cyclic) synchronization barrier for n parties,
// equivalent to OpenMP's "#pragma omp barrier" inside a parallel region.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
	broken  bool
}

// NewBarrier returns a barrier for n parties. It panics if n < 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic(fmt.Sprintf("omp: barrier size %d", n))
	}
	b := &Barrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n parties have called Wait, then releases them and
// resets for the next phase. After Abandon, Wait returns immediately.
func (b *Barrier) Wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return
	}
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase && !b.broken {
		b.cond.Wait()
	}
}

// Abandon permanently breaks the barrier: every current and future Wait
// returns immediately. Call it when a party dies (e.g. panics) so the
// surviving parties cannot deadlock waiting for it.
func (b *Barrier) Abandon() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// cacheLineSize is the false-sharing granularity assumed for per-thread
// state. 128 bytes covers the 64-byte lines on x86-64 plus the adjacent-line
// prefetcher pairing them, and the 128-byte lines on apple silicon.
const cacheLineSize = 128

// paddedLocal spaces per-thread reduction locals at least a cache line
// apart so threads writing adjacent slice slots (small value-typed locals
// in particular) never invalidate each other's lines.
type paddedLocal[L any] struct {
	v L
	_ [cacheLineSize]byte
}

// Reduce runs a parallel reduction over [0, n): each thread builds a local
// accumulator with newLocal, folds its statically assigned block with body,
// and the master combines the locals in ascending thread order — the
// deterministic combine structure used by all of the paper's strong-scaling
// experiments. The combined value for thread 0's local is returned.
//
// Locals are stored cache-line padded: each thread's slot is at least
// cacheLineSize bytes from its neighbours, so concurrent folds into
// value-typed locals do not false-share.
func Reduce[L any](t *Team, n int, newLocal func(tid int) L,
	body func(local L, tid, lo, hi int), combine func(into, from L)) L {
	var start time.Time
	if telemetry.Enabled() {
		start = time.Now() // clock reads only when recording is on
	}
	span := trace.StartRoot("omp.reduce")
	span.Attr(trace.Int("n", int64(n)))
	span.Attr(trace.Int("threads", int64(t.threads)))
	locals := make([]paddedLocal[L], t.threads)
	t.Run(func(tid int) {
		locals[tid].v = newLocal(tid)
		lo, hi := StaticBlock(n, t.threads, tid)
		if hi > lo {
			mChunks.Inc()
		}
		body(locals[tid].v, tid, lo, hi)
	})
	csp := trace.Start(span.Context(), "omp.combine")
	for i := 1; i < t.threads; i++ {
		combine(locals[0].v, locals[i].v)
	}
	csp.End()
	if !start.IsZero() {
		mReduceLatency.ObserveDuration(time.Since(start).Seconds())
	}
	span.End()
	return locals[0].v
}
