package omp

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

func TestStaticBlockCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 100, 1023} {
		for _, p := range []int{1, 2, 3, 8, 16} {
			covered := make([]int, n)
			prevHi := 0
			for tid := 0; tid < p; tid++ {
				lo, hi := StaticBlock(n, p, tid)
				if lo != prevHi {
					t.Fatalf("n=%d p=%d tid=%d: gap (lo=%d, prevHi=%d)", n, p, tid, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d p=%d tid=%d: hi < lo", n, p, tid)
				}
				for i := lo; i < hi; i++ {
					covered[i]++
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d p=%d: coverage ends at %d", n, p, prevHi)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d p=%d: index %d covered %d times", n, p, i, c)
				}
			}
			// Balance: block sizes differ by at most one.
			minSz, maxSz := n, 0
			for tid := 0; tid < p; tid++ {
				lo, hi := StaticBlock(n, p, tid)
				if sz := hi - lo; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
			}
			if p <= n && maxSz-minSz > 1 {
				t.Fatalf("n=%d p=%d: imbalance %d..%d", n, p, minSz, maxSz)
			}
		}
	}
}

func TestRunRunsEveryThreadConcurrently(t *testing.T) {
	const p = 8
	team := NewTeam(p)
	seen := make([]atomic.Int32, p)
	b := NewBarrier(p) // would deadlock unless all p run concurrently
	team.Run(func(tid int) {
		seen[tid].Add(1)
		b.Wait()
	})
	for tid := range seen {
		if seen[tid].Load() != 1 {
			t.Errorf("tid %d ran %d times", tid, seen[tid].Load())
		}
	}
}

func TestForSchedulesCoverAllIterations(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, n := range []int{0, 1, 100, 1000, 1024} {
			for _, p := range []int{1, 3, 8} {
				team := NewTeam(p)
				counts := make([]atomic.Int32, n)
				team.ForSchedule(n, 7, sched, func(tid, lo, hi int) {
					for i := lo; i < hi; i++ {
						counts[i].Add(1)
					}
				})
				for i := range counts {
					if counts[i].Load() != 1 {
						t.Fatalf("%v n=%d p=%d: index %d visited %d times",
							sched, n, p, i, counts[i].Load())
					}
				}
			}
		}
	}
}

func TestDynamicSharesWork(t *testing.T) {
	// With a stalling thread, dynamic scheduling must let other threads
	// take the remaining chunks; static would assign a fixed block.
	const p = 4
	team := NewTeam(p)
	var firstChunk sync.Once
	stall := make(chan struct{})
	var processedByOthers atomic.Int64
	team.ForSchedule(1000, 10, Dynamic, func(tid, lo, hi int) {
		isFirst := false
		firstChunk.Do(func() { isFirst = true })
		if isFirst {
			<-stall // hold one thread until everyone else finishes
			return
		}
		processedByOthers.Add(int64(hi - lo))
		if processedByOthers.Load() == 990 {
			close(stall)
		}
	})
	if processedByOthers.Load() != 990 {
		t.Errorf("other threads processed %d iterations, want 990",
			processedByOthers.Load())
	}
}

func TestBarrierPhases(t *testing.T) {
	const p = 6
	const phases = 50
	team := NewTeam(p)
	b := NewBarrier(p)
	var counter atomic.Int64
	team.Run(func(tid int) {
		for ph := 0; ph < phases; ph++ {
			counter.Add(1)
			b.Wait()
			// After the barrier, every thread must observe all p
			// increments of this phase.
			if got := counter.Load(); got < int64((ph+1)*p) {
				t.Errorf("phase %d: counter %d < %d", ph, got, (ph+1)*p)
			}
			b.Wait()
		}
	})
	if counter.Load() != phases*p {
		t.Errorf("total = %d", counter.Load())
	}
}

func TestReduceIntSum(t *testing.T) {
	team := NewTeam(5)
	total := Reduce(team, 1000,
		func(tid int) *int64 { v := int64(0); return &v },
		func(local *int64, tid, lo, hi int) {
			for i := lo; i < hi; i++ {
				*local += int64(i)
			}
		},
		func(into, from *int64) { *into += *from })
	if *total != 499500 {
		t.Errorf("sum = %d, want 499500", *total)
	}
}

// The HP reduction through the team must be bit-identical to sequential
// accumulation for every thread count — the Figure 5 invariance claim.
func TestReduceHPOrderInvariantAcrossThreadCounts(t *testing.T) {
	r := rng.New(41)
	xs := rng.UniformSet(r, 20000, -0.5, 0.5)
	seq := core.NewAccumulator(core.Params384)
	seq.AddAll(xs)

	for _, p := range []int{1, 2, 3, 4, 8} {
		team := NewTeam(p)
		got := Reduce(team, len(xs),
			func(tid int) *core.Accumulator { return core.NewAccumulator(core.Params384) },
			func(local *core.Accumulator, tid, lo, hi int) {
				local.AddAll(xs[lo:hi])
			},
			func(into, from *core.Accumulator) { into.AddHP(from.Sum()) })
		if got.Err() != nil {
			t.Fatal(got.Err())
		}
		if !got.Sum().Equal(seq.Sum()) {
			t.Errorf("p=%d: HP reduction differs from sequential", p)
		}
	}
}

func TestReduceDoubleIsDeterministicPerThreadCount(t *testing.T) {
	r := rng.New(42)
	xs := rng.UniformSet(r, 20000, -0.5, 0.5)
	sumWith := func(p int) float64 {
		team := NewTeam(p)
		return *Reduce(team, len(xs),
			func(tid int) *float64 { v := 0.0; return &v },
			func(local *float64, tid, lo, hi int) {
				for i := lo; i < hi; i++ {
					*local += xs[i]
				}
			},
			func(into, from *float64) { *into += *from })
	}
	// Same thread count twice: identical (deterministic combine order).
	if sumWith(4) != sumWith(4) {
		t.Error("double reduction not deterministic for fixed p")
	}
	// Different thread counts generally differ — that is the paper's
	// motivating problem. (Not asserted: equality is unlikely but legal.)
	if sumWith(1) != sumWith(1) {
		t.Error("sequential sum not deterministic")
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"NewTeam(0)":    func() { NewTeam(0) },
		"NewBarrier(0)": func() { NewBarrier(0) },
		"For(-1)":       func() { NewTeam(1).For(-1, func(int, int, int) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" ||
		Guided.String() != "guided" {
		t.Error("schedule names")
	}
	if Schedule(9).String() != "Schedule(9)" {
		t.Error("unknown schedule name")
	}
}

func TestBarrierAbandon(t *testing.T) {
	b := NewBarrier(3)
	done := make(chan struct{})
	go func() {
		b.Wait() // only 1 of 3 parties: would block forever
		close(done)
	}()
	b.Abandon()
	<-done // must return promptly after Abandon
	// Subsequent waits return immediately.
	b.Wait()
	b.Wait()
}

// chunkDelta runs fn and returns how much omp_chunks_total moved, with
// telemetry forced on for the duration.
func chunkDelta(t *testing.T, fn func()) uint64 {
	t.Helper()
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	before := mChunks.Value()
	fn()
	return mChunks.Value() - before
}

// TestChunkAccounting pins omp_chunks_total for deterministic schedules:
// a chunk is one non-empty body invocation. Empty static blocks (n smaller
// than the team) and post-exhaustion polls of the dynamic/guided claim
// counter must not count.
func TestChunkAccounting(t *testing.T) {
	cases := []struct {
		name string
		run  func()
		want uint64
	}{
		// n=0: every static block is empty; the paper's loops dispatch no work.
		{"For n=0 threads=4", func() {
			NewTeam(4).For(0, func(tid, lo, hi int) {})
		}, 0},
		// n=3 over 8 threads: exactly 3 one-element blocks, 5 empty ones.
		{"For n=3 threads=8", func() {
			NewTeam(8).For(3, func(tid, lo, hi int) {})
		}, 3},
		// Static ForSchedule shares For's accounting.
		{"ForSchedule static n=2 threads=4", func() {
			NewTeam(4).ForSchedule(2, 1, Static, func(tid, lo, hi int) {})
		}, 2},
		// Dynamic: ceil(10/3) = 4 chunks regardless of thread count; the
		// threads that poll the exhausted counter afterwards add nothing.
		{"ForSchedule dynamic n=10 chunk=3 threads=2", func() {
			NewTeam(2).ForSchedule(10, 3, Dynamic, func(tid, lo, hi int) {})
		}, 4},
		// Guided with one thread takes the whole remainder in one chunk.
		{"ForSchedule guided n=100 chunk=4 threads=1", func() {
			NewTeam(1).ForSchedule(100, 4, Guided, func(tid, lo, hi int) {})
		}, 1},
		// Reduce: 2 non-empty blocks over a 4-thread team.
		{"Reduce n=2 threads=4", func() {
			Reduce(NewTeam(4), 2,
				func(int) *int { v := 0; return &v },
				func(local *int, _, lo, hi int) { *local += hi - lo },
				func(into, from *int) { *into += *from })
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := chunkDelta(t, tc.run); got != tc.want {
				t.Errorf("omp_chunks_total moved by %d, want %d", got, tc.want)
			}
		})
	}
}

// TestGuidedCounterStopsAtExhaustion drives the guided schedule with a
// team much larger than the trip count and verifies both that the chunk
// accounting stays exact (n one-element chunks when chunk=1 and
// remaining/threads rounds to zero) and that iterations are covered
// exactly once — the regression shape for the claim-counter overshoot,
// where each late thread used to bump the shared counter past n.
func TestGuidedCounterStopsAtExhaustion(t *testing.T) {
	const n, threads = 5, 16
	var covered [n]atomic.Int64
	got := chunkDelta(t, func() {
		NewTeam(threads).ForSchedule(n, 1, Guided, func(tid, lo, hi int) {
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("iteration %d covered %d times", i, covered[i].Load())
		}
	}
	// With remaining/threads == 0 every take clamps to the minimum chunk
	// of 1, so exactly n chunks are dispatched; the other 11 threads find
	// the counter exhausted and must record nothing.
	if got != n {
		t.Errorf("omp_chunks_total moved by %d, want %d", got, n)
	}
}
