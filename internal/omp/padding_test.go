package omp

import (
	"runtime"
	"strconv"
	"testing"
	"time"
	"unsafe"
)

// TestReduceLocalsPadded pins the layout contract: per-thread reduction
// locals live at least a cache line apart, so a thread folding into its
// local never invalidates a neighbour's line.
func TestReduceLocalsPadded(t *testing.T) {
	if s := unsafe.Sizeof(paddedLocal[uint64]{}); s < cacheLineSize {
		t.Fatalf("paddedLocal[uint64] size %d < cache line %d", s, cacheLineSize)
	}
	locals := make([]paddedLocal[uint64], 2)
	d := uintptr(unsafe.Pointer(&locals[1].v)) - uintptr(unsafe.Pointer(&locals[0].v))
	if d < cacheLineSize {
		t.Fatalf("adjacent locals %d bytes apart, want >= %d", d, cacheLineSize)
	}
}

// hammer has each of the team's threads perform iters dependent read-modify-
// writes against its own slot, reported as the best-of-reps wall time —
// min, not mean, because false sharing only adds time, never removes it.
func hammer(team *Team, iters, reps int, slot func(tid int) *uint64) time.Duration {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		team.Run(func(tid int) {
			p := slot(tid)
			v := *p
			for i := 0; i < iters; i++ {
				v = v*2862933555777941757 + 3037000493 // cheap LCG keeps the store hot
				*p = v
			}
		})
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestReducePaddingImprovesLatency demonstrates why Reduce pads: with four
// or more threads folding concurrently, per-thread slots spaced a cache
// line apart (Reduce's locals layout) must not be slower than packed
// adjacent slots, and on real multicore hardware they are substantially
// faster. The comparison needs genuinely concurrent cache traffic, so it
// skips on machines without 4 cores.
func TestReducePaddingImprovesLatency(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to provoke false sharing, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	const workers = 4
	const iters = 1 << 20
	const reps = 5
	team := NewTeam(workers)

	packed := make([]uint64, workers)
	padded := make([]paddedLocal[uint64], workers)
	// Interleave the measurements so frequency scaling hits both equally.
	_ = hammer(team, iters/16, 1, func(tid int) *uint64 { return &padded[tid].v }) // warm-up
	dPacked := hammer(team, iters, reps, func(tid int) *uint64 { return &packed[tid] })
	dPadded := hammer(team, iters, reps, func(tid int) *uint64 { return &padded[tid].v })

	t.Logf("4-worker hammer: packed %v, padded %v (%.2fx)",
		dPacked, dPadded, float64(dPacked)/float64(dPadded))
	// False sharing typically costs 2-10x here; allow generous noise margin
	// in the other direction so the assertion is robust on shared CI boxes.
	if float64(dPadded) > 1.25*float64(dPacked) {
		t.Errorf("padded locals slower than packed: %v vs %v", dPadded, dPacked)
	}
}

// BenchmarkReducePadding reports both layouts so the improvement is visible
// in benchmark output on any machine (compare the two sub-benchmarks).
func BenchmarkReducePadding(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		team := NewTeam(workers)
		packed := make([]uint64, workers)
		padded := make([]paddedLocal[uint64], workers)
		b.Run("packed/"+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = hammer(team, 1<<14, 1, func(tid int) *uint64 { return &packed[tid] })
			}
		})
		b.Run("padded/"+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = hammer(team, 1<<14, 1, func(tid int) *uint64 { return &padded[tid].v })
			}
		})
	}
}
